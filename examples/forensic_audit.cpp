// Forensic audit (Section 8.3): a buggy third-party queue is deployed behind
// the self-enforced wrapper.  The wrapper flags the first inconsistent
// response, every later operation keeps returning ERROR (Theorem 8.2(2)),
// and the certificate convicts the implementation offline: the auditor
// replays the witness history through the public membership test and pins
// down the exact failing prefix — no access to the implementation needed.
//
//   $ ./forensic_audit
#include <iostream>
#include <thread>
#include <vector>

#include "selin/selin.hpp"

int main() {
  using namespace selin;
  constexpr size_t kProcs = 3;

  // A vendor queue that silently drops ~1/8 of enqueues (returns true
  // anyway) — the classic lost-update bug.
  auto vendor_queue = make_lossy_queue(1, 8, /*seed=*/20230619);
  auto object = make_linearizable_object(make_queue_spec());
  SelfEnforced verified(kProcs, *vendor_queue, *object);

  std::atomic<bool> flagged{false};
  std::atomic<long> ops_before_detection{0};
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 13 + 5);
      for (int i = 0; i < 5000 && !flagged.load(); ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        auto out = verified.apply(p, m, arg);
        if (out.error) {
          flagged.store(true);
        } else {
          ops_before_detection.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::cout << "forensic audit — lossy vendor queue behind V_{O,A}\n";
  if (!flagged.load()) {
    std::cout << "  fault not triggered in this run (drop rate 1/8); rerun\n";
    return 0;
  }
  std::cout << "  fault detected after ~" << ops_before_detection.load()
            << " verified operations\n";

  // --- The forensic stage -------------------------------------------------
  // The wrapper hands out a witness history; the auditor needs nothing else.
  History witness;
  for (ProcId p = 0; p < kProcs; ++p) {
    History c = verified.certificate(p);
    if (c.size() > witness.size()) witness = c;
  }
  std::cout << "  witness history  : " << witness.size() << " events\n";
  std::cout << "  witness verdict  : "
            << (object->contains(witness) ? "linearizable (??)"
                                          : "NOT linearizable — convicted")
            << "\n";

  // Minimal failing prefix: replay event by event.
  auto monitor = object->monitor();
  size_t fail_at = witness.size();
  for (size_t i = 0; i < witness.size(); ++i) {
    monitor->feed(witness[i]);
    if (!monitor->ok()) {
      fail_at = i;
      break;
    }
  }
  std::cout << "  first inconsistent event at index " << fail_at << ":\n";
  size_t from = fail_at > 6 ? fail_at - 6 : 0;
  for (size_t i = from; i <= fail_at && i < witness.size(); ++i) {
    std::cout << "    [" << i << "] " << to_string(witness[i]) << "\n";
  }

  // Accountability continues: every new operation is refused with ERROR.
  auto after = verified.apply(0, Method::kEnqueue, 424242);
  std::cout << "  post-detection op: "
            << (after.error ? "ERROR (service correctly fenced off)"
                            : "accepted (unexpected)")
            << "\n";
  return 0;
}
