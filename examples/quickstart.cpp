// Quickstart: wrap any concurrent object into its self-enforced version
// (Figure 11) in three lines, run a multithreaded workload, and observe that
// every response is runtime verified.
//
//   $ ./quickstart
//
// The pattern:
//   1. pick/build an implementation A (here: a lock-free Michael–Scott queue),
//   2. pick the abstract object O (here: histories linearizable w.r.t. the
//      sequential queue),
//   3. construct SelfEnforced(n, A, O) and call apply() instead of A.
#include <iostream>
#include <thread>
#include <vector>

#include "selin/selin.hpp"

int main() {
  using namespace selin;
  constexpr size_t kProcs = 4;
  constexpr int kOpsPerProc = 2000;

  // 1. The implementation under inspection (a black box from here on).
  auto queue = make_ms_queue();

  // 2. The correctness condition: linearizability w.r.t. the FIFO queue.
  auto object = make_linearizable_object(make_queue_spec());

  // 3. The self-enforced wrapper V_{O,A}.
  SelfEnforced verified_queue(kProcs, *queue, *object);

  std::atomic<long> enqueued{0}, dequeued{0}, empties{0}, errors{0};
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 71 + 9);
      for (int i = 0; i < kOpsPerProc; ++i) {
        if (rng.chance(1, 2)) {
          auto out = verified_queue.apply(p, Method::kEnqueue,
                                          static_cast<Value>(p * 10000 + i));
          if (out.error) ++errors;
          else ++enqueued;
        } else {
          auto out = verified_queue.apply(p, Method::kDequeue);
          if (out.error) ++errors;
          else if (out.value == kEmpty) ++empties;
          else ++dequeued;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::cout << "selin quickstart — self-enforced Michael–Scott queue\n"
            << "  processes        : " << kProcs << "\n"
            << "  operations       : " << kProcs * kOpsPerProc << "\n"
            << "  enqueued         : " << enqueued.load() << "\n"
            << "  dequeued (value) : " << dequeued.load() << "\n"
            << "  dequeued (empty) : " << empties.load() << "\n"
            << "  ERROR responses  : " << errors.load() << "\n";

  // Theorem 8.2(3): a certificate — a history similar to the current one —
  // is available on demand and can be audited offline by anyone.
  History cert = verified_queue.certificate(0);
  std::cout << "  certificate size : " << cert.size() << " events, "
            << (object->contains(cert) ? "linearizable ✓" : "NOT linearizable")
            << "\n";

  if (errors.load() != 0) {
    std::cerr << "unexpected: a correct queue was flagged\n";
    return 1;
  }
  std::cout << "every response was runtime verified — no ERRORs, as Theorem "
               "8.2 promises for a correct A.\n";
  return 0;
}
