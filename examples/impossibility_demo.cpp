// The Theorem 5.1 impossibility, narrated (Figure 4): two executions of the
// generic verifier that no process — hence no verifier, whatever base
// objects it uses — can tell apart, although one contains a linearizability
// violation and the other does not.
//
//   $ ./impossibility_demo
#include <iostream>

#include "selin/selin.hpp"

using namespace selin;

static void print_history(const char* title, const History& h) {
  std::cout << "  " << title << "\n";
  for (const Event& e : h) std::cout << "    " << to_string(e) << "\n";
}

int main() {
  std::cout <<
      "Theorem 5.1 — linearizability is not runtime verifiable\n"
      "--------------------------------------------------------\n"
      "A is the adversarial queue: Enqueue->true, Dequeue->empty, except\n"
      "p1's (index 1) first Dequeue, which returns 1.  The generic verifier\n"
      "(Figure 2) announces each operation in shared memory before invoking\n"
      "A and records the response afterwards.  Asynchrony can stretch the\n"
      "gap between announce and invoke arbitrarily.\n\n";

  Thm51Scenario s = build_thm51_scenario(/*extra_rounds=*/1);
  auto spec = make_queue_spec();

  History aE = actual_history(s.exec_E);
  History aF = actual_history(s.exec_F);
  History dE = detected_history(s.exec_E);
  History dF = detected_history(s.exec_F);

  std::cout << "Execution E — p1's Dequeue():1 takes effect BEFORE the "
               "Enqueue(1):\n";
  print_history("actual history of A (invisible to processes):", aE);
  std::cout << "    => linearizable? "
            << (linearizable(*spec, aE) ? "YES" : "NO") << "\n\n";

  std::cout << "Execution F — same local events, Enqueue first:\n";
  print_history("actual history of A (invisible to processes):", aF);
  std::cout << "    => linearizable? "
            << (linearizable(*spec, aF) ? "YES" : "NO") << "\n\n";

  std::cout << "What any verifier can reconstruct from shared memory:\n";
  print_history("detected history (identical in E and F):", dE);
  std::cout << "    => identical in F? "
            << (std::equal(dE.begin(), dE.end(), dF.begin(), dF.end(),
                           [](const Event& a, const Event& b) { return a == b; })
                    ? "YES"
                    : "NO")
            << "\n"
            << "    => linearizable? "
            << (linearizable(*spec, dE) ? "YES" : "NO") << "\n\n";

  std::cout << "Per-process indistinguishability: "
            << (indistinguishable(s.exec_E, s.exec_F) ? "every process sees "
                   "the same local sequence in E and F"
                                                      : "DISTINGUISHABLE (bug)")
            << ".\n\n";

  std::cout <<
      "Consequence: a sound verifier must stay silent in F, hence (by\n"
      "indistinguishability) in E too — violating completeness.  A complete\n"
      "verifier must report in E, hence in F — violating soundness.  No\n"
      "consensus object helps: the missing information is the real-time\n"
      "order of *local* events, which no shared object ever sees.\n\n"
      "The way out (Sections 6-8): wrap A as A* so the announce/snapshot\n"
      "steps DELIMIT the operation — the detected history then shrinks\n"
      "instead of stretching, reversing the implication, which is exactly\n"
      "what the class DRV and the predictive verifier exploit.  Run\n"
      "./quickstart and ./forensic_audit to see that side.\n";
  return 0;
}
