// Decoupled monitoring (Figure 12, Section 9.2): response production and
// verification split across thread pools.  Producers run at near-A* speed;
// a monitoring pool polls the shared λ-records and raises the alarm.
//
// The demo runs two phases over the same deployment shape:
//   phase 1 — correct queue: monitors stay quiet;
//   phase 2 — queue with duplicate deliveries: monitors detect, print the
//             witness, and measure the detection lag in producer operations.
//
//   $ ./decoupled_monitoring
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "selin/selin.hpp"

using namespace selin;

struct PhaseResult {
  long producer_ops = 0;
  uint64_t reports = 0;
  History witness;
};

static PhaseResult run_phase(IConcurrent& impl, const GenLinObject& object,
                             int ops_per_producer) {
  constexpr size_t kProducers = 3;
  constexpr size_t kVerifiers = 2;
  PhaseResult result;

  std::mutex wmu;
  Decoupled d(kProducers, kVerifiers, impl, object,
              [&](size_t, const History& w) {
                std::lock_guard<std::mutex> lock(wmu);
                if (result.witness.empty()) result.witness = w;
              });

  std::atomic<bool> stop{false};
  std::atomic<long> ops{0};
  std::vector<std::thread> verifiers;
  for (size_t v = 0; v < kVerifiers; ++v) {
    verifiers.emplace_back([&, v] {
      while (!stop.load(std::memory_order_acquire) && d.error_count() == 0) {
        d.verify_once(v);
      }
      d.verify_once(v);  // final sweep
    });
  }
  std::vector<std::thread> producers;
  for (ProcId p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(p * 31 + 2);
      for (int i = 0; i < ops_per_producer && d.error_count() == 0; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        d.apply(p, m, arg);
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : verifiers) t.join();

  result.producer_ops = ops.load();
  result.reports = d.error_count();
  return result;
}

int main() {
  auto object = make_linearizable_object(make_queue_spec());

  std::cout << "decoupled monitoring — D_{O,A} with 3 producers + 2 verifiers\n\n";

  {
    auto good = make_ms_queue();
    PhaseResult r = run_phase(*good, *object, 4000);
    std::cout << "phase 1 (correct Michael–Scott queue)\n"
              << "  producer ops : " << r.producer_ops << "\n"
              << "  ERROR reports: " << r.reports
              << (r.reports == 0 ? "  — monitors quiet, as expected\n\n"
                                 : "  — UNEXPECTED\n\n");
  }

  {
    auto bad = make_dup_queue(1, 6, /*seed=*/77);
    PhaseResult r = run_phase(*bad, *object, 20000);
    std::cout << "phase 2 (queue that redelivers ~1/6 of dequeues)\n"
              << "  producer ops before detection: " << r.producer_ops << "\n"
              << "  ERROR reports                : " << r.reports << "\n";
    if (!r.witness.empty()) {
      std::cout << "  witness (" << r.witness.size()
                << " events), tail:\n";
      size_t from = r.witness.size() > 8 ? r.witness.size() - 8 : 0;
      for (size_t i = from; i < r.witness.size(); ++i) {
        std::cout << "    " << to_string(r.witness[i]) << "\n";
      }
      std::cout << "  witness ∈ O ? "
                << (object->contains(r.witness) ? "yes (??)" : "no — violation certified")
                << "\n";
    } else {
      std::cout << "  fault not triggered this run; rerun the demo\n";
    }
  }
  return 0;
}
