// Consensus validity through views (Section 10's comparison with
// Fraigniaud-Rajsbaum-Travers): by observing only (input, output) pairs it
// is impossible to detect a process that ran solo and decided a value
// different from its input — but the views of the class DRV capture the
// real-time structure, so the verifier catches it.
//
// The demo runs a consensus object that violates validity (the first
// decider's response is corrupted) under the self-enforced wrapper, solo:
// no (input,output)-only monitor could flag 'Decide(5) -> 7' without knowing
// whether some other process proposing 7 was concurrent; the views show
// nobody was.
//
//   $ ./consensus_validity
#include <iostream>
#include <thread>

#include "selin/selin.hpp"

using namespace selin;

int main() {
  std::cout << "consensus validity enforcement via views\n"
            << "-----------------------------------------\n\n";

  // Phase 1: correct CAS consensus under concurrency — never flagged.
  {
    constexpr size_t kProcs = 4;
    auto impl = make_cas_consensus();
    auto object = make_linearizable_object(make_consensus_spec());
    SelfEnforced se(kProcs, *impl, *object);
    std::vector<std::thread> threads;
    std::atomic<int> errors{0};
    std::vector<Value> decisions(kProcs);
    for (ProcId p = 0; p < kProcs; ++p) {
      threads.emplace_back([&, p] {
        auto out = se.apply(p, Method::kDecide, 100 + p);
        if (out.error) errors.fetch_add(1);
        decisions[p] = out.value;
      });
    }
    for (auto& t : threads) t.join();
    std::cout << "phase 1 — correct consensus, 4 concurrent Decide calls\n";
    for (ProcId p = 0; p < kProcs; ++p) {
      std::cout << "  p" << p << " proposed " << 100 + p << ", decided "
                << value_string(decisions[p]) << "\n";
    }
    std::cout << "  ERROR responses: " << errors.load()
              << (errors.load() == 0 ? " — agreement & validity verified\n\n"
                                     : " — UNEXPECTED\n\n");
  }

  // Phase 2: validity-violating consensus, SOLO run.  Decide(5) returns 7.
  {
    auto impl = make_invalid_consensus(/*corruption=*/2);  // 5 ^ 2 = 7
    auto object = make_linearizable_object(make_consensus_spec());
    SelfEnforced se(2, *impl, *object);

    auto out = se.apply(0, Method::kDecide, 5);
    std::cout << "phase 2 — corrupted consensus, p0 runs solo\n"
              << "  p0 proposed 5, raw A would answer 7\n"
              << "  self-enforced response: "
              << (out.error ? "ERROR — validity violation caught"
                            : ("accepted " + value_string(out.value) +
                               " (UNEXPECTED)"))
              << "\n";

    History w = se.certificate(0);
    std::cout << "  witness:\n";
    for (const Event& e : w) std::cout << "    " << to_string(e) << "\n";
    std::cout
        << "  The witness shows Decide(5):7 with no concurrent operation in\n"
        << "  its view — no extension can justify 7, so the membership test\n"
        << "  X(τ) ∈ consensus rejects.  An (input,output)-pairs monitor\n"
        << "  without real-time structure could not distinguish this from a\n"
        << "  run where some p1 proposing 7 won the race.\n\n";
  }

  // Phase 3: the same corrupted object under real contention where another
  // process DOES propose the corrupted value — now the response pattern is
  // plausible... except the first decider still returns a non-proposed value
  // in its solo prefix, which the views pin down whenever the snapshot shows
  // no concurrency.
  {
    auto impl = make_invalid_consensus(2);
    auto object = make_linearizable_object(make_consensus_spec());
    SelfEnforced se(2, *impl, *object);
    auto a = se.apply(0, Method::kDecide, 5);   // solo: flagged
    auto b = se.apply(1, Method::kDecide, 7);   // would have matched!
    std::cout << "phase 3 — corruption masked by a matching later proposal\n"
              << "  p0: Decide(5) -> " << (a.error ? "ERROR" : "ok") << "\n"
              << "  p1: Decide(7) -> " << (b.error ? "ERROR" : "ok")
              << "  (ERROR persists: the bad prefix is already certified)\n";
  }
  return 0;
}
