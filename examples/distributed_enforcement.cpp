// Distributed enforcement (Section 9.4): the complete selin stack running
// over an asynchronous message-passing system with crash failures — the
// shared-memory simulation of Attiya, Bar-Noy and Dolev [5] realized by ABD
// replicated registers.
//
// Setup: 5 replica nodes hold every base object (the verified register
// itself, the announcement object N, and the record object M).  3 client
// processes run the self-enforced register.  Mid-run we crash 2 replicas —
// a minority — and everything keeps going, runtime verified.
//
//   $ ./distributed_enforcement
#include <iostream>
#include <thread>
#include <vector>

#include "selin/selin.hpp"

int main() {
  using namespace selin;
  constexpr size_t kReplicas = 5;
  constexpr size_t kProcs = 3;
  constexpr int kOpsPerProc = 60;

  auto service = std::make_shared<AbdService>(kReplicas, /*seed=*/2023,
                                              /*max_delay_us=*/10);

  // The implementation under inspection is itself distributed: an ABD
  // register.  N and M ride the same replica group, on disjoint keys.
  auto reg = make_abd_register(service, /*key=*/900'000);
  auto object = make_linearizable_object(make_register_spec());
  SelfEnforced verified(
      kProcs, *reg, *object,
      std::make_unique<AbdSnapshot<const SetNode*>>(service, kProcs, nullptr,
                                                    /*key_base=*/100),
      std::make_unique<AbdSnapshot<const RecNode*>>(service, kProcs, nullptr,
                                                    /*key_base=*/200));

  std::cout << "distributed enforcement — self-enforced register over "
            << kReplicas << " ABD replicas, " << kProcs << " clients\n";

  std::atomic<int> errors{0};
  std::atomic<long> ops{0};
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 101 + 7);
      for (int i = 0; i < kOpsPerProc; ++i) {
        if (p == 0 && i == 15) {
          service->crash(1);
          std::cout << "  !! replica 1 crashed (" << service->alive()
                    << "/5 alive)\n";
        }
        if (p == 1 && i == 30) {
          service->crash(3);
          std::cout << "  !! replica 3 crashed (" << service->alive()
                    << "/5 alive)\n";
        }
        auto [m, arg] = random_op(ObjectKind::kRegister, rng);
        auto out = verified.apply(p, m, arg);
        if (out.error) errors.fetch_add(1);
        ops.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  History cert = verified.certificate(0);
  std::cout << "  client operations   : " << ops.load() << "\n"
            << "  ERROR responses     : " << errors.load() << "\n"
            << "  replicas alive      : " << service->alive() << "/5\n"
            << "  messages processed  : " << service->messages_processed()
            << "\n"
            << "  certificate         : " << cert.size() << " events, "
            << (object->contains(cert) ? "linearizable ✓" : "NOT linearizable")
            << "\n\n"
            << "Every response was produced and verified through majority\n"
            << "quorums only — the minority of crashed replicas never\n"
            << "blocked a client, exactly the fault-tolerance the paper\n"
            << "inherits from the ABD simulation [5].\n";
  return errors.load() == 0 ? 0 : 1;
}
