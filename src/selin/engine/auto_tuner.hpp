// Stats-feedback auto-tuning of the adaptive engine's knobs.
//
// The adaptive engine (frontier_engine.hpp) decides per feed round whether
// to run sequential or sharded by comparing the frontier width against an
// engage/retreat hysteresis pair, and it dispatches parallel rounds onto a
// fixed lane count.  PR 3 shipped those as constants (384 / 96 / hardware
// clamped to 8) tuned on one workload family; the stats facility it also
// shipped measures, per monitor, exactly the quantities that determine
// whether the constants are right for *this* workload:
//
//   * dedup hit rate — the fraction of emitted successors that are
//     duplicates.  High hit rates mean closure rounds do little real work
//     per configuration, so shard dispatch amortizes worse and the engine
//     should demand a wider frontier before engaging (and vice versa).
//   * peak frontier width — how much parallelism the workload can feed.
//     Lanes beyond width/kWidthPerLane starve on outbox routing, so the
//     lane count follows the observed width.
//   * sequential/parallel round ratio and representation switches — a
//     window that keeps flipping modes is oscillating around one threshold;
//     widening the hysteresis gap is the classic fix.
//
// AutoTuner closes that loop.  The engine accumulates a TunerWindow of
// signals and calls tick() every kWindow response rounds; tick() moves each
// knob at most one bounded multiplicative step toward what the window's
// stats imply.  One step per window (and at most one window boundary per
// feed) means the knobs are monotone within any single feed — a feed can
// never observe a threshold move up and then back down — and bounded steps
// with a fixed hysteresis ratio keep the engage/retreat gap open, so the
// tuner cannot introduce the very thrashing it exists to damp.  All inputs
// are the engine's own deterministic counters: same history, same knob
// trajectory, every run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "selin/engine/stats.hpp"

namespace selin::engine {

/// One tuning window's worth of engine signals (deltas, not totals).
struct TunerWindow {
  size_t peak_width = 0;        ///< widest post-feed frontier in the window
  uint64_t rounds_sequential = 0;
  uint64_t rounds_parallel = 0;
  uint64_t dedup_probes = 0;
  uint64_t dedup_hits = 0;
  uint64_t mode_switches = 0;   ///< representation migrations in the window

  void clear() { *this = TunerWindow{}; }
};

class AutoTuner {
 public:
  /// Response rounds per tuning window (one tick() per window).
  static constexpr uint64_t kWindow = 32;
  /// Bounds on the engage threshold; retreat tracks engage/kHysteresisRatio.
  static constexpr size_t kMinEngage = 64;
  static constexpr size_t kMaxEngage = 8192;
  static constexpr size_t kHysteresisRatio = 4;
  /// Frontier width one lane can keep busy; the lane target follows
  /// peak_width / kWidthPerLane.  Matches the engage constant's provenance:
  /// at the default 384-wide engage point, ~2 lanes pay off.
  static constexpr size_t kWidthPerLane = 192;
  /// Window switch count past which the hysteresis gap is considered too
  /// narrow for the workload (each switch is a full frontier migration).
  static constexpr uint64_t kThrashSwitches = 3;

  AutoTuner(size_t engage, size_t retreat, size_t lanes, size_t max_lanes)
      : engage_(engage), retreat_(retreat), lanes_(lanes),
        max_lanes_(max_lanes == 0 ? 1 : max_lanes) {}

  size_t engage() const { return engage_; }
  size_t retreat() const { return retreat_; }
  /// The lane count parallel rounds should use (applied by the engine only
  /// while the frontier is in its sequential representation).
  size_t lanes() const { return lanes_; }
  uint64_t updates() const { return updates_; }

  /// Digest one window of signals; returns true iff any knob moved.  Each
  /// knob moves at most one step per tick, toward the signal:
  ///   thrashing        → engage up, gap widened (damp oscillation first);
  ///   dup-heavy rounds → engage up (parallel rounds amortize worse);
  ///   wide + dup-light → engage down (engage the shards earlier);
  ///   peak width       → lane target = clamp(peak / kWidthPerLane).
  bool tick(const TunerWindow& w) {
    const size_t old_engage = engage_;
    const size_t old_lanes = lanes_;
    const uint64_t rounds = w.rounds_sequential + w.rounds_parallel;
    const double hit_rate =
        w.dedup_probes == 0
            ? 0.0
            : static_cast<double>(w.dedup_hits) /
                  static_cast<double>(w.dedup_probes);
    if (w.mode_switches >= kThrashSwitches) {
      engage_ = std::min(engage_ * 2, kMaxEngage);
    } else if (rounds > 0 && w.rounds_parallel > 0 && hit_rate > 0.55) {
      engage_ = std::min(engage_ + engage_ / 4, kMaxEngage);
    } else if (rounds > 0 && hit_rate < 0.35 &&
               w.peak_width >= engage_ / 2 && w.peak_width < engage_) {
      // The workload hovers just under the threshold with cheap dedup:
      // lowering engage converts near-miss sequential rounds to parallel.
      engage_ = std::max(engage_ - engage_ / 5, kMinEngage);
    }
    retreat_ = std::max<size_t>(engage_ / kHysteresisRatio, 1);

    const size_t lane_target = std::clamp<size_t>(
        w.peak_width / kWidthPerLane, 1, max_lanes_);
    if (lane_target > lanes_) {
      lanes_ = std::min(lanes_ * 2, lane_target);
    } else if (lane_target < lanes_ && w.rounds_parallel == 0) {
      // Shrink only when the window ran no parallel round at the current
      // count — a busy pool is evidence the width still feeds the lanes.
      lanes_ = std::max<size_t>(lanes_ - 1, lane_target);
    }

    const bool changed = engage_ != old_engage || lanes_ != old_lanes;
    if (changed) ++updates_;
    return changed;
  }

 private:
  size_t engage_;
  size_t retreat_;
  size_t lanes_;
  size_t max_lanes_;
  uint64_t updates_ = 0;
};

/// Derive warm-start engine seeds from a recorded run's stats: the engage
/// threshold lands just under the observed peak width (so comparable storms
/// engage promptly instead of spending kWindow rounds re-learning it),
/// retreat keeps the fixed hysteresis ratio, and the lane seed follows the
/// same peak/kWidthPerLane rule the tuner steps toward.  Deterministic —
/// same stats, same priors.  Returns all-zero (no priors) when the recorded
/// run never saw a frontier.
inline TunerPriors priors_from_stats(const EngineStats& s) {
  TunerPriors p;
  if (s.peak_frontier == 0) return p;
  p.engage = std::clamp<size_t>(s.peak_frontier / 2, AutoTuner::kMinEngage,
                                AutoTuner::kMaxEngage);
  p.retreat = std::max<size_t>(p.engage / AutoTuner::kHysteresisRatio, 1);
  p.lanes = std::max<size_t>(s.peak_frontier / AutoTuner::kWidthPerLane, 1);
  return p;
}

}  // namespace selin::engine
