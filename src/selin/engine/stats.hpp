// Thread-knob encoding and execution counters of the frontier engine.
//
// This header is deliberately tiny and dependency-free so the checker
// headers (lincheck/checker.hpp etc.) can expose EngineStats without pulling
// the engine template — frontier_engine.hpp includes the sharded frontier,
// which includes the checker headers for CheckerOverflow.
//
// The `threads` knob every monitor takes is a plain size_t with one twist:
// values with the high bit set request the *adaptive* engine, which decides
// per feed round whether to run the sequential or the sharded path (see
// frontier_engine.hpp for the hysteresis).  The low bits carry the lane
// count to use when the round goes parallel; 0 means "resolve from the
// hardware".  kAutoThreads — what `selin_check --threads auto` passes — is
// the common spelling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace selin::engine {

/// High bit of the `threads` knob: adaptive sequential↔sharded execution.
inline constexpr size_t kAutoFlag = size_t{1} << (sizeof(size_t) * 8 - 1);

/// Second-highest bit: self-tuning.  Only meaningful together with
/// kAutoFlag — an engine::AutoTuner feeds the engine's own execution stats
/// back into the engage/retreat hysteresis thresholds and the lane count
/// (see auto_tuner.hpp), replacing the fixed constants.  Spelled
/// `selin_check --threads auto --tune` at the CLI.
inline constexpr size_t kTuneFlag = size_t{1} << (sizeof(size_t) * 8 - 2);

/// Adaptive execution with hardware-resolved lane count.
inline constexpr size_t kAutoThreads = kAutoFlag;

/// Adaptive execution with stats-feedback tuning of the thresholds/lanes.
inline constexpr size_t kAutoTunedThreads = kAutoFlag | kTuneFlag;

/// Adaptive execution with an explicit lane count (tests, tuned deploys).
constexpr size_t auto_threads(size_t lanes) { return kAutoFlag | lanes; }

/// Adaptive self-tuning execution with an explicit initial lane count.
constexpr size_t auto_tuned_threads(size_t lanes) {
  return kAutoFlag | kTuneFlag | lanes;
}

constexpr bool is_auto_threads(size_t threads) {
  return (threads & kAutoFlag) != 0;
}

constexpr bool is_tuned_threads(size_t threads) {
  return (threads & kAutoFlag) != 0 && (threads & kTuneFlag) != 0;
}

/// The lane-count request carried by an adaptive knob (0 = hardware).
constexpr size_t auto_lane_request(size_t threads) {
  return threads & ~(kAutoFlag | kTuneFlag);
}

/// Execution counters of one FrontierEngine, aggregated across its
/// sequential dedup engine and every shard lane.  Clones inherit the counts
/// accumulated up to the fork (their fresh lanes then count from zero).
struct EngineStats {
  size_t lanes = 1;              ///< resolved lane count (1 = no pool)
  uint64_t events_fed = 0;       ///< events accepted by feed()
  uint64_t rounds_sequential = 0;  ///< response rounds run sequentially
  uint64_t rounds_parallel = 0;    ///< response rounds dispatched to shards
  size_t peak_frontier = 0;      ///< widest post-feed frontier observed
  uint64_t dedup_probes = 0;     ///< fingerprint probes across all dedup sets
  uint64_t dedup_hits = 0;       ///< probes that found a duplicate
  uint64_t states_recycled = 0;  ///< StatePool acquisitions served from pool

  // Adaptive-engine signals (meaningful when the knob carries kAutoFlag;
  // static engines report their construction-time constants).
  size_t engage_width = 0;       ///< current sequential→sharded threshold
  size_t retreat_width = 0;      ///< current sharded→sequential threshold
  uint64_t mode_switches = 0;    ///< representation migrations either way
  uint64_t tuner_updates = 0;    ///< AutoTuner windows that changed a knob

  // Data-oriented hot-path counters (PR 8).
  uint64_t probe_batches = 0;    ///< batched dedup probe groups resolved
  uint64_t prefetch_batches = 0;  ///< groups that issued slot prefetches
  uint64_t filter_in_place_rounds = 0;  ///< in-place swap-partition filters
  uint64_t priors_applied = 0;   ///< tuner knobs seeded from TunerPriors
};

/// Merge `from` into `into`: counters add, widths/lane counts take the
/// maximum.  The aggregation callers use to report one EngineStats for a
/// group of engines (MonitorCore's per-checker monitors, a cluster's
/// sessions) under the same 16-key JSON schema as a single engine.
inline void accumulate(EngineStats& into, const EngineStats& from) {
  into.lanes = into.lanes > from.lanes ? into.lanes : from.lanes;
  into.events_fed += from.events_fed;
  into.rounds_sequential += from.rounds_sequential;
  into.rounds_parallel += from.rounds_parallel;
  into.peak_frontier =
      into.peak_frontier > from.peak_frontier ? into.peak_frontier
                                              : from.peak_frontier;
  into.dedup_probes += from.dedup_probes;
  into.dedup_hits += from.dedup_hits;
  into.states_recycled += from.states_recycled;
  into.engage_width = into.engage_width > from.engage_width
                          ? into.engage_width
                          : from.engage_width;
  into.retreat_width = into.retreat_width > from.retreat_width
                           ? into.retreat_width
                           : from.retreat_width;
  into.mode_switches += from.mode_switches;
  into.tuner_updates += from.tuner_updates;
  into.probe_batches += from.probe_batches;
  into.prefetch_batches += from.prefetch_batches;
  into.filter_in_place_rounds += from.filter_in_place_rounds;
  into.priors_applied += from.priors_applied;
}

/// Warm-start seeds for the adaptive engine and the leveled checker,
/// derived from a *recorded* run over a similar workload (engine stats for
/// the engage/retreat/lane knobs, LeveledChecker counters for the
/// checkpointing knobs).  Zero fields mean "no prior — keep the default";
/// a monitor constructed with priors counts each knob it seeds in
/// EngineStats::priors_applied.  Derivation helpers live next to the
/// consumers: engine::priors_from_stats (auto_tuner.hpp) and
/// LeveledChecker::recommend_priors (views/leveled_history.hpp).
struct TunerPriors {
  size_t engage = 0;   ///< sequential→sharded width threshold seed
  size_t retreat = 0;  ///< sharded→sequential width threshold seed
  size_t lanes = 0;    ///< parallel-round lane count seed
  size_t stride = 0;   ///< leveled checkpoint stride seed
  size_t stripe = 0;   ///< leveled async snapshot stripe width seed

  bool any_engine() const { return engage != 0 || retreat != 0 || lanes != 0; }
};

/// Aggregate op-set footprint of a live frontier (bench_frontier_memory).
/// `opset_bytes` is what the run-length sets actually occupy;
/// `opset_smallvec_bytes` is what the flat SmallVec representation they
/// replaced would occupy for the same contents (small_vec_model_bytes in
/// util/interval_set.hpp).
struct FrontierFootprint {
  size_t configs = 0;
  size_t opset_elems = 0;
  size_t opset_bytes = 0;
  size_t opset_smallvec_bytes = 0;
};

}  // namespace selin::engine
