// The three membership semantics as FrontierEngine policies.
//
// Each policy supplies exactly what differs between the checkers: the
// configuration type, the closure moves (expand), and the response filter
// (match).  Everything else — frontier maintenance, dedup, recycling,
// sharding, adaptive execution, overflow discipline, stats — lives once in
// FrontierEngine (frontier_engine.hpp).
//
//   LinPolicy       one open operation linearizes per move (Wing & Gong
//                   configurations; Definition 4.2).
//   SetLinPolicy    a non-empty *batch* of open operations linearizes
//                   simultaneously through the set-sequential transition
//                   (Neiger [81]; Section 7.1).
//   IntervalPolicy  two moves: machine-invoke a non-empty subset of
//                   history-open operations, or machine-respond a
//                   machine-open operation (Castañeda–Rajsbaum–Raynal [17]).
//
// Scratch structs are per-lane (the engine allocates one per shard lane) and
// cache-line aligned so neighboring lanes never share a line while the
// expansion loops rewrite the vector headers.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"
#include "selin/lincheck/intervallin.hpp"
#include "selin/spec/spec.hpp"

namespace selin::engine {

// ---------------------------------------------------------------------------
// Linearizability
// ---------------------------------------------------------------------------

struct LinPolicy {
  using Config = lincheck::Config;
  struct alignas(64) Scratch {};

  const SeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch&,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    for (const OpDesc& od : open) {
      const Config& c = cfg();  // re-fetch: the previous emit may have moved it
      if (c.find(od.id) != nullptr) continue;
      Config next = c.clone_with(pool);
      Value assigned = next.state->step(od.method, od.arg);
      next.add(od.id, assigned);
      emit(std::move(next));
    }
  }

  // Every surviving configuration must have linearized e.op with exactly the
  // observed result; the op then leaves the linearized set.
  bool match(Config& c, const Event& e) const {
    const lincheck::LinearizedOp* l = c.find(e.op.id);
    if (l == nullptr || l->assigned != e.result) return false;
    c.remove(e.op.id);
    return true;
  }
};

// ---------------------------------------------------------------------------
// Set-linearizability
// ---------------------------------------------------------------------------

struct SetLinPolicy {
  using Config = lincheck::Config;
  struct alignas(64) Scratch {
    std::vector<OpDesc> cand;
    std::vector<OpDesc> batch;
    std::vector<Value> out;
  };

  const SetSeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch& sc,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    {
      const Config& c = cfg();  // no emit happens while cand is gathered
      sc.cand.clear();
      for (const OpDesc& od : open) {
        if (c.find(od.id) == nullptr) sc.cand.push_back(od);
      }
    }
    if (sc.cand.empty()) return;
    if (sc.cand.size() > 20) throw CheckerOverflow{};
    for (uint32_t mask = 1; mask < (1u << sc.cand.size()); ++mask) {
      sc.batch.clear();
      for (size_t b = 0; b < sc.cand.size(); ++b) {
        if (mask & (1u << b)) sc.batch.push_back(sc.cand[b]);
      }
      Config next = cfg().clone_with(pool);  // re-fetch per emit round
      sc.out.assign(sc.batch.size(), kNoArg);
      if (!spec->step_set(*next.state, sc.batch, sc.out)) {
        pool.release(std::move(next.state));
        continue;
      }
      for (size_t b = 0; b < sc.batch.size(); ++b) {
        next.add(sc.batch[b].id, sc.out[b]);
      }
      emit(std::move(next));
    }
  }

  bool match(Config& c, const Event& e) const {
    const lincheck::LinearizedOp* l = c.find(e.op.id);
    if (l == nullptr || l->assigned != e.result) return false;
    c.remove(e.op.id);
    return true;
  }
};

// ---------------------------------------------------------------------------
// Interval-linearizability
// ---------------------------------------------------------------------------

struct AssignedOp {
  OpId id;
  Value v;
};

/// A configuration of the interval machine: machine state, the operations
/// currently open *inside* the machine, and the responses already assigned
/// (machine-responded, awaiting the history's response event).  Deduplicated
/// by a 64-bit fingerprint: state fingerprint XOR one Zobrist component per
/// set-shaped member, each maintained incrementally at the mutation sites.
struct IConfig {
  std::unique_ptr<SeqState> state;
  SmallVec<OpId, 8> machine_open;    // sorted by packed()
  SmallVec<AssignedOp, 8> assigned;  // sorted by packed()
  uint64_t open_hash = 0;  // XOR of fph::open_op over machine_open
  uint64_t asg_hash = 0;   // XOR of fph::lin_op over assigned

  IConfig clone() const {
    IConfig c;
    c.state = state->clone();
    c.machine_open = machine_open;
    c.assigned = assigned;
    c.open_hash = open_hash;
    c.asg_hash = asg_hash;
    return c;
  }

  IConfig clone_with(lincheck::StatePool& pool) const {
    IConfig c;
    c.state = pool.acquire(*state);
    c.machine_open = machine_open;
    c.assigned = assigned;
    c.open_hash = open_hash;
    c.asg_hash = asg_hash;
    return c;
  }

  uint64_t fingerprint() const {
    return state->fingerprint() ^ open_hash ^ asg_hash;
  }

  /// Canonical key (ground truth; audit + diagnostics only).
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    for (OpId id : machine_open) os << id.pid << "." << id.seq << ",";
    os << "|";
    for (const auto& [id, v] : assigned) {
      os << id.pid << "." << id.seq << "=" << v << ";";
    }
    return os.str();
  }

  bool is_machine_open(OpId id) const {
    return std::binary_search(
        machine_open.begin(), machine_open.end(), id,
        [](OpId a, OpId b) { return a.packed() < b.packed(); });
  }

  void machine_invoke(OpId id) {
    auto it = std::upper_bound(
        machine_open.begin(), machine_open.end(), id,
        [](OpId a, OpId b) { return a.packed() < b.packed(); });
    machine_open.insert_at(static_cast<size_t>(it - machine_open.begin()), id);
    open_hash ^= fph::open_op(id.packed());
  }

  void machine_respond(OpId id, Value v) {
    auto it = std::upper_bound(
        assigned.begin(), assigned.end(), id,
        [](OpId a, const AssignedOp& b) { return a.packed() < b.id.packed(); });
    assigned.insert_at(static_cast<size_t>(it - assigned.begin()),
                       AssignedOp{id, v});
    asg_hash ^= fph::lin_op(id.packed(), v);
  }

  /// Remove `id` from both machine bookkeeping sets (the op's history
  /// response has been observed).
  void retire(OpId id) {
    for (size_t i = 0; i < assigned.size(); ++i) {
      if (assigned[i].id == id) {
        asg_hash ^= fph::lin_op(id.packed(), assigned[i].v);
        assigned.erase_at(i);
        break;
      }
    }
    for (size_t i = 0; i < machine_open.size(); ++i) {
      if (machine_open[i] == id) {
        open_hash ^= fph::open_op(id.packed());
        machine_open.erase_at(i);
        break;
      }
    }
  }

  const Value* find_assigned(OpId id) const {
    for (const auto& [aid, v] : assigned) {
      if (aid == id) return &v;
    }
    return nullptr;
  }
};

struct IntervalPolicy {
  using Config = IConfig;
  struct alignas(64) Scratch {
    std::vector<OpDesc> eligible;
    std::vector<OpDesc> batch;
  };

  const IntervalSeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch& sc,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    // (a) machine-invoke any non-empty subset of history-open ops that are
    // not yet in the machine.
    {
      const IConfig& c = cfg();  // no emit happens while eligible is gathered
      sc.eligible.clear();
      for (const OpDesc& od : open) {
        if (!c.is_machine_open(od.id) && c.find_assigned(od.id) == nullptr) {
          sc.eligible.push_back(od);
        }
      }
    }
    if (sc.eligible.size() > 16) throw CheckerOverflow{};
    for (uint32_t mask = 1; mask < (1u << sc.eligible.size()); ++mask) {
      sc.batch.clear();
      for (size_t b = 0; b < sc.eligible.size(); ++b) {
        if (mask & (1u << b)) sc.batch.push_back(sc.eligible[b]);
      }
      IConfig next = cfg().clone_with(pool);  // re-fetch per emit round
      if (!spec->invoke_set(*next.state, sc.batch)) {
        pool.release(std::move(next.state));
        continue;
      }
      for (const OpDesc& od : sc.batch) next.machine_invoke(od.id);
      emit(std::move(next));
    }
    // (b) machine-respond any machine-open op lacking an assignment.
    for (size_t k = 0; k < cfg().machine_open.size(); ++k) {
      const IConfig& c = cfg();  // re-fetch: the previous emit may have moved it
      OpId id = c.machine_open[k];
      if (c.find_assigned(id) != nullptr) continue;
      const OpDesc* od = find_open(open, id);
      if (od == nullptr) continue;  // already history-responded earlier
      IConfig next = c.clone_with(pool);
      Value v = spec->respond(*next.state, *od);
      next.machine_respond(id, v);
      emit(std::move(next));
    }
  }

  bool match(IConfig& c, const Event& e) const {
    const Value* v = c.find_assigned(e.op.id);
    if (v == nullptr || *v != e.result) return false;
    // The op leaves the machine and the history bookkeeping.
    c.retire(e.op.id);
    return true;
  }

 private:
  static const OpDesc* find_open(std::span<const OpDesc> open, OpId id) {
    for (const OpDesc& od : open) {
      if (od.id == id) return &od;
    }
    return nullptr;
  }
};

}  // namespace selin::engine
