// The three membership semantics as FrontierEngine policies.
//
// Each policy supplies exactly what differs between the checkers: the
// configuration type, the closure moves (expand), and the response filter
// (match).  Everything else — frontier maintenance, dedup, recycling,
// sharding, adaptive execution, overflow discipline, stats — lives once in
// FrontierEngine (frontier_engine.hpp).
//
//   LinPolicy       one open operation linearizes per move (Wing & Gong
//                   configurations; Definition 4.2).
//   SetLinPolicy    a non-empty *batch* of open operations linearizes
//                   simultaneously through the set-sequential transition
//                   (Neiger [81]; Section 7.1).
//   IntervalPolicy  two moves: machine-invoke a non-empty subset of
//                   history-open operations, or machine-respond a
//                   machine-open operation (Castañeda–Rajsbaum–Raynal [17]).
//
// Scratch structs are per-lane (the engine allocates one per shard lane) and
// cache-line aligned so neighboring lanes never share a line while the
// expansion loops rewrite the vector headers.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"
#include "selin/lincheck/intervallin.hpp"
#include "selin/spec/spec.hpp"

namespace selin::engine {

// ---------------------------------------------------------------------------
// Linearizability
// ---------------------------------------------------------------------------

struct LinPolicy {
  using Config = lincheck::Config;
  struct alignas(64) Scratch {};

  /// The sequential engine runs this policy through expand_lazy (candidate
  /// fingerprints first, Config assembly only after the dedup probe admits).
  static constexpr bool kLazyExpand = true;

  const SeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch&,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    for (const OpDesc& od : open) {
      const Config& c = cfg();  // re-fetch: the previous emit may have moved it
      if (c.find(od.id) != nullptr) continue;
      Config next = c.clone_with(pool);
      Value assigned = next.state->step(od.method, od.arg);
      next.add(od.id, assigned);
      emit(std::move(next));
    }
  }

  /// Two-stage expansion for the batched-probe closure: per applicable open
  /// op, step a pooled state clone and hand the engine the successor's
  /// fingerprint *without* building the Config — the linearized set of the
  /// successor is the parent's plus one entry, so its hash (and hence the
  /// full fingerprint) is one XOR away from the parent's cached hash.  The
  /// engine probes the fingerprints in a prefetched batch and copies the
  /// parent's set only for admitted candidates; rejected ones cost a state
  /// round-trip through the pool and nothing else.
  /// emit(state, id, assigned, fp); same emission order as expand().
  template <typename GetCfg, typename EmitCand>
  void expand_lazy(lincheck::StatePool& pool, Scratch&,
                   std::span<const OpDesc> open, GetCfg&& cfg,
                   EmitCand&& emit) const {
    for (const OpDesc& od : open) {
      const Config& c = cfg();  // re-fetch: emit may flush and move the parent
      if (c.find(od.id) != nullptr) continue;
      std::unique_ptr<SeqState> st = pool.acquire(*c.state);
      Value assigned = st->step(od.method, od.arg);
      const uint64_t fp =
          st->fingerprint() ^ c.linearized.hash() ^
          lincheck::lin_elem(lincheck::seq_major(od.id), assigned);
      emit(std::move(st), od.id, assigned, fp);
    }
  }

  /// Canonical key of a lazy candidate (audit builds): what the materialized
  /// Config's key() would be — the stepped state, then the parent's entries
  /// with (id, assigned) spliced in seq-major order.
  static std::string candidate_key(const SeqState& st,
                                   const lincheck::LinSet& parent, OpId id,
                                   Value assigned) {
    std::ostringstream os;
    os << st.encode() << "|";
    const uint64_t nk = lincheck::seq_major(id);
    bool placed = false;
    auto put = [&os](uint64_t k, Value v) {
      OpId i = lincheck::id_of_key(k);
      os << i.pid << "." << i.seq << "=" << v << ";";
    };
    parent.for_each([&](uint64_t k, Value v) {
      if (!placed && nk < k) {
        put(nk, assigned);
        placed = true;
      }
      put(k, v);
    });
    if (!placed) put(nk, assigned);
    return os.str();
  }

  // Every surviving configuration must have linearized e.op with exactly the
  // observed result; the op then leaves the linearized set.  Fused into one
  // run search (remove_if_equals) — the filter runs once per response per
  // closure configuration.
  bool match(Config& c, const Event& e) const {
    return c.remove_if_equals(e.op.id, e.result);
  }

  /// Fingerprint delta of a successful match(c, e): match only removes the
  /// (op, result) entry from the linearized set — machine state is never
  /// touched — so the post-match fingerprint is the pre-match one XOR this,
  /// computable once per event instead of once per survivor (the SoA filter
  /// pass keys on it; the collision audit cross-checks the arithmetic).
  uint64_t match_delta(const Event& e) const {
    return lincheck::lin_elem(lincheck::seq_major(e.op.id), e.result);
  }

  /// Bloom bits of the response-relevant set (the linearized ops): the SoA
  /// hot-row over-approximation the filter pass consults before match().
  uint64_t hot_bits(const Config& c) const {
    uint64_t bits = 0;
    c.linearized.for_each(
        [&bits](uint64_t k, Value) { bits |= lincheck::match_bit(k); });
    return bits;
  }
};

// ---------------------------------------------------------------------------
// Set-linearizability
// ---------------------------------------------------------------------------

struct SetLinPolicy {
  using Config = lincheck::Config;
  struct alignas(64) Scratch {
    std::vector<OpDesc> cand;
    std::vector<OpDesc> batch;
    std::vector<Value> out;
    std::vector<std::pair<uint64_t, Value>> kv;  // sorted (key, value) runs
  };

  /// Successor sets here add a whole batch of entries, so the engine buffers
  /// full Configs and batch-probes their fingerprints instead (the lazy
  /// one-XOR delta trick is LinPolicy-shaped).
  static constexpr bool kLazyExpand = false;

  const SetSeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch& sc,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    {
      const Config& c = cfg();  // no emit happens while cand is gathered
      sc.cand.clear();
      for (const OpDesc& od : open) {
        if (c.find(od.id) == nullptr) sc.cand.push_back(od);
      }
    }
    if (sc.cand.empty()) return;
    if (sc.cand.size() > 20) throw CheckerOverflow{};
    for (uint32_t mask = 1; mask < (1u << sc.cand.size()); ++mask) {
      sc.batch.clear();
      for (size_t b = 0; b < sc.cand.size(); ++b) {
        if (mask & (1u << b)) sc.batch.push_back(sc.cand[b]);
      }
      Config next = cfg().clone_with(pool);  // re-fetch per emit round
      sc.out.assign(sc.batch.size(), kNoArg);
      if (!spec->step_set(*next.state, sc.batch, sc.out)) {
        pool.release(std::move(next.state));
        continue;
      }
      // The whole batch linearizes at once; union each consecutive
      // same-value key run into the set with one range operation instead of
      // per-op point inserts (a lockstep cohort acking uniformly is the
      // common shape and lands as a single run).
      sc.kv.clear();
      for (size_t b = 0; b < sc.batch.size(); ++b) {
        sc.kv.emplace_back(lincheck::seq_major(sc.batch[b].id), sc.out[b]);
      }
      std::sort(sc.kv.begin(), sc.kv.end());
      for (size_t b = 0; b < sc.kv.size();) {
        size_t r = b + 1;
        while (r < sc.kv.size() && sc.kv[r].first == sc.kv[b].first + (r - b) &&
               sc.kv[r].second == sc.kv[b].second) {
          ++r;
        }
        next.linearized.add_run(sc.kv[b].first, static_cast<uint32_t>(r - b),
                                sc.kv[b].second);
        b = r;
      }
      emit(std::move(next));
    }
  }

  bool match(Config& c, const Event& e) const {
    return c.remove_if_equals(e.op.id, e.result);
  }

  /// Same filter as LinPolicy: match removes one (op, result) entry.
  uint64_t match_delta(const Event& e) const {
    return lincheck::lin_elem(lincheck::seq_major(e.op.id), e.result);
  }

  uint64_t hot_bits(const Config& c) const {
    uint64_t bits = 0;
    c.linearized.for_each(
        [&bits](uint64_t k, Value) { bits |= lincheck::match_bit(k); });
    return bits;
  }
};

// ---------------------------------------------------------------------------
// Interval-linearizability
// ---------------------------------------------------------------------------

/// Element hash of a seq-major machine-open key: un-swapped back to the
/// pid-major packed id before fph::open_op, keeping the hash contract (and
/// every fingerprint) bit-identical to the flat-vector representation.
constexpr uint64_t open_elem(uint64_t key) {
  return fph::open_op((key << 32) | (key >> 32));
}

/// The interval machine's open set: seq-major keys, run-length compressed
/// with the incremental fph::open_op hash.  A write-snapshot round where
/// every process has entered the machine is a single run.
using OpenSet = HashedIntervalSet<open_elem>;

/// A configuration of the interval machine: machine state, the operations
/// currently open *inside* the machine, and the responses already assigned
/// (machine-responded, awaiting the history's response event).  Deduplicated
/// by a 64-bit fingerprint: state fingerprint XOR one cached Zobrist
/// component per set-shaped member, each maintained incrementally by the
/// interval-set wrappers at the mutation sites.
struct IConfig {
  std::unique_ptr<SeqState> state;
  OpenSet machine_open;          // run-length id set, seq-major keys
  lincheck::LinSet assigned;     // run-length (key -> value) set

  IConfig clone() const {
    IConfig c;
    c.state = state->clone();
    c.machine_open = machine_open;
    c.assigned = assigned;
    return c;
  }

  IConfig clone_with(lincheck::StatePool& pool) const {
    IConfig c;
    c.state = pool.acquire(*state);
    c.machine_open = machine_open;
    c.assigned = assigned;
    return c;
  }

  uint64_t fingerprint() const {
    return state->fingerprint() ^ machine_open.hash() ^ assigned.hash();
  }

  /// Canonical key (ground truth; audit + diagnostics only).  Deterministic
  /// and injective; both sets stream in seq-major key order.
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    machine_open.for_each([&os](uint64_t k) {
      OpId id = lincheck::id_of_key(k);
      os << id.pid << "." << id.seq << ",";
    });
    os << "|";
    assigned.for_each([&os](uint64_t k, Value v) {
      OpId id = lincheck::id_of_key(k);
      os << id.pid << "." << id.seq << "=" << v << ";";
    });
    return os.str();
  }

  bool is_machine_open(OpId id) const {
    return machine_open.contains(lincheck::seq_major(id));
  }

  void machine_invoke(OpId id) {
    machine_open.insert(lincheck::seq_major(id));
  }

  /// Machine-invoke a whole batch, unioning each consecutive key run in one
  /// range operation (`keys` is mutated scratch; typically the batch is a
  /// lockstep cohort and lands as a single run).
  void machine_invoke_batch(std::vector<uint64_t>& keys) {
    std::sort(keys.begin(), keys.end());
    for (size_t b = 0; b < keys.size();) {
      size_t r = b + 1;
      while (r < keys.size() && keys[r] == keys[b] + (r - b)) ++r;
      machine_open.insert_range(keys[b], r - b);
      b = r;
    }
  }

  void machine_respond(OpId id, Value v) {
    assigned.add(lincheck::seq_major(id), v);
  }

  /// Remove `id` from both machine bookkeeping sets (the op's history
  /// response has been observed).
  void retire(OpId id) {
    uint64_t key = lincheck::seq_major(id);
    assigned.remove(key);
    machine_open.erase(key);
  }

  /// Fused response filter: iff `id` is machine-responded with exactly the
  /// observed value, retire it from both sets.  One run search on the
  /// assigned set (machine_respond guarantees assigned ⊆ machine_open).
  bool retire_if_assigned(OpId id, Value expect) {
    uint64_t key = lincheck::seq_major(id);
    if (!assigned.remove_if_equals(key, expect)) return false;
    machine_open.erase(key);
    return true;
  }

  const Value* find_assigned(OpId id) const {
    return assigned.find(lincheck::seq_major(id));
  }

  /// Footprint accounting for the memory facet (bench_frontier_memory).
  size_t opset_elems() const { return machine_open.size() + assigned.size(); }
  size_t opset_bytes() const {
    return machine_open.resident_bytes() + assigned.resident_bytes();
  }
  /// What the pre-interval flat representation would occupy for these sets:
  /// SmallVec<OpId, 8> + SmallVec<{OpId, Value}, 8> plus two hash words.
  size_t opset_smallvec_bytes() const {
    return small_vec_model_bytes(machine_open.size(), 8, 8) +
           small_vec_model_bytes(assigned.size(), 8, 16) +
           2 * sizeof(uint64_t);
  }
};

struct IntervalPolicy {
  using Config = IConfig;
  struct alignas(64) Scratch {
    std::vector<OpDesc> eligible;
    std::vector<OpDesc> batch;
    std::vector<uint64_t> keys;  // seq-major batch keys for the range union
  };

  /// Invoke-subset successors mutate two sets at once; the engine uses the
  /// generic buffered batch-probe path.
  static constexpr bool kLazyExpand = false;

  const IntervalSeqSpec* spec;

  std::unique_ptr<SeqState> initial_state() const { return spec->initial(); }

  template <typename GetCfg, typename Emit>
  void expand(lincheck::StatePool& pool, Scratch& sc,
              std::span<const OpDesc> open, GetCfg&& cfg, Emit&& emit) const {
    // (a) machine-invoke any non-empty subset of history-open ops that are
    // not yet in the machine.
    {
      const IConfig& c = cfg();  // no emit happens while eligible is gathered
      sc.eligible.clear();
      for (const OpDesc& od : open) {
        if (!c.is_machine_open(od.id) && c.find_assigned(od.id) == nullptr) {
          sc.eligible.push_back(od);
        }
      }
    }
    if (sc.eligible.size() > 16) throw CheckerOverflow{};
    for (uint32_t mask = 1; mask < (1u << sc.eligible.size()); ++mask) {
      sc.batch.clear();
      for (size_t b = 0; b < sc.eligible.size(); ++b) {
        if (mask & (1u << b)) sc.batch.push_back(sc.eligible[b]);
      }
      IConfig next = cfg().clone_with(pool);  // re-fetch per emit round
      if (!spec->invoke_set(*next.state, sc.batch)) {
        pool.release(std::move(next.state));
        continue;
      }
      sc.keys.clear();
      for (const OpDesc& od : sc.batch) {
        sc.keys.push_back(lincheck::seq_major(od.id));
      }
      next.machine_invoke_batch(sc.keys);  // consecutive runs union at once
      emit(std::move(next));
    }
    // (b) machine-respond any machine-open op lacking an assignment.
    for (size_t k = 0; k < cfg().machine_open.size(); ++k) {
      const IConfig& c = cfg();  // re-fetch: the previous emit may have moved it
      OpId id = lincheck::id_of_key(c.machine_open.nth(k));
      if (c.find_assigned(id) != nullptr) continue;
      const OpDesc* od = find_open(open, id);
      if (od == nullptr) continue;  // already history-responded earlier
      IConfig next = c.clone_with(pool);
      Value v = spec->respond(*next.state, *od);
      next.machine_respond(id, v);
      emit(std::move(next));
    }
  }

  // The op leaves the machine and the history bookkeeping.
  bool match(IConfig& c, const Event& e) const {
    return c.retire_if_assigned(e.op.id, e.result);
  }

  /// Fingerprint delta of a successful match: retire_if_assigned removes
  /// the (op, result) entry from `assigned` AND the op's key from
  /// `machine_open` (machine state untouched), so the post-match
  /// fingerprint is pre-match XOR both element hashes.
  uint64_t match_delta(const Event& e) const {
    const uint64_t k = lincheck::seq_major(e.op.id);
    return lincheck::lin_elem(k, e.result) ^ open_elem(k);
  }

  /// The response-relevant set is `assigned` alone: match() fails whenever
  /// the op lacks an assignment, regardless of machine_open membership.
  uint64_t hot_bits(const IConfig& c) const {
    uint64_t bits = 0;
    c.assigned.for_each(
        [&bits](uint64_t k, Value) { bits |= lincheck::match_bit(k); });
    return bits;
  }

 private:
  static const OpDesc* find_open(std::span<const OpDesc> open, OpId id) {
    for (const OpDesc& od : open) {
      if (od.id == id) return &od;
    }
    return nullptr;
  }
};

}  // namespace selin::engine
