// The generic frontier engine behind all three membership checkers.
//
// The paper's membership test P_O is instantiated three times in this repo —
// linearizability, set-linearizability, interval-linearizability — and all
// three share the same skeleton: maintain the frontier of configurations
// consistent with the events fed so far; on every response event, expand the
// frontier to its closure under the semantics' linearization moves, then
// filter on the observed response value.  FrontierEngine<Policy> owns that
// skeleton once:
//
//   * the sequential engine (a plain vector + one DedupEngine),
//   * the sharded parallel engine (ShardPool + fingerprint-routed
//     ShardedFrontier, lazily constructed),
//   * adaptive sequential↔sharded execution (`threads` with the auto bit,
//     see stats.hpp) chosen per feed round by frontier-width hysteresis,
//   * open-op bookkeeping, dedup, state recycling, cloning,
//   * the feed-boundary exception discipline (sticky overflowed(), every
//     in-flight state released, CheckerOverflow rethrown),
//   * execution stats (EngineStats).
//
// A Policy captures everything semantics-specific:
//
//   struct Policy {
//     using Config = ...;            // lincheck::Config or engine::IConfig
//     struct alignas(64) Scratch {}; // per-lane expansion scratch
//     std::unique_ptr<SeqState> initial_state() const;
//     template <typename GetCfg, typename Emit>
//     void expand(lincheck::StatePool& pool, Scratch& scratch,
//                 std::span<const OpDesc> open, GetCfg&& cfg,
//                 Emit&& emit) const;         // successors of one config;
//         // cfg() returns the configuration and MUST be re-fetched after
//         // every emit (the sequential engine expands in place and emit may
//         // reallocate the closure vector)
//     bool match(Config& c, const Event& res) const;  // response filter;
//         // true keeps (and mutates) the configuration, false drops it
//   };
//
// The closure set and the filtered frontier are fixpoints, independent of
// how work is split, so verdicts and frontier sizes are identical across
// threads ∈ {1, N, auto} — tests/engine_parity_test.cpp asserts this per
// event across every concrete spec.
//
// Adaptive mode: sharding pays off only when a round has enough work to
// amortize dispatch, and the round's work is governed by the width of the
// frontier being expanded.  An adaptive engine therefore watches the
// frontier width between feeds: at or above kAutoEngageWidth it migrates the
// frontier into the sharded representation (routing by fingerprint; the
// frontier is already deduplicated, so migration is a move), below
// kAutoRetreatWidth it drains the shards back into the flat vector.  The gap
// between the thresholds is hysteresis — a frontier oscillating around one
// boundary does not thrash representations.  Narrow-frontier feeds skip
// shard dispatch (and its outbox/routing overhead) entirely; the worker
// threads themselves are spawned lazily by the pool on the first genuinely
// wide phase.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "selin/engine/auto_tuner.hpp"
#include "selin/engine/stats.hpp"
#include "selin/obs/hooks.hpp"
#include "selin/parallel/sharded_frontier.hpp"

namespace selin::engine {

/// Frontier width at/above which an adaptive engine runs the round sharded.
inline constexpr size_t kAutoEngageWidth = 384;
/// Width below which it falls back to the sequential representation.
inline constexpr size_t kAutoRetreatWidth = 96;
/// Lane cap when the auto knob resolves the lane count from the hardware
/// (beyond this the outbox handoff dominates on the workloads we model).
inline constexpr size_t kAutoMaxLanes = 8;

/// Lanes an adaptive engine uses for its parallel rounds: the explicit
/// request, or hardware_concurrency clamped to [1, kAutoMaxLanes].
inline size_t resolve_auto_lanes(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 1, kAutoMaxLanes);
}

template <typename Policy>
class FrontierEngine {
 public:
  using Config = typename Policy::Config;

  /// `executor`: shared lane provider for the parallel rounds (nullptr =
  /// the pool creates a private one lazily, the single-tenant shape).  A
  /// multi-tenant deployment hands every engine the same executor so N
  /// concurrent monitors share one set of worker threads sized to the
  /// hardware instead of spawning lanes each.
  ///
  /// `priors`: warm-start seeds for the tuned adaptive engine (recorded from
  /// an earlier run over a similar workload; see priors_from_stats).  Only
  /// consulted when the knob carries kTuneFlag — they seed exactly the knobs
  /// the AutoTuner owns, so a non-tuned engine keeps its static constants.
  /// Nonzero fields clamp into the tuner's bounds; each applied knob counts
  /// in EngineStats::priors_applied.  Priors shift only *when* the adaptive
  /// engine changes representation, never what any round computes, so
  /// verdicts/digests stay bit-identical with or without them.
  FrontierEngine(Policy policy, size_t max_configs, size_t threads,
                 std::shared_ptr<parallel::Executor> executor = nullptr,
                 TunerPriors priors = {})
      : policy_(std::move(policy)), max_configs_(max_configs),
        exec_(std::move(executor)) {
    if (is_auto_threads(threads)) {
      adaptive_ = true;
      lanes_ = resolve_auto_lanes(auto_lane_request(threads));
      if (is_tuned_threads(threads)) {
        const size_t max_lanes = std::max(lanes_, resolve_auto_lanes(0));
        if (priors.engage != 0) {
          engage_ = std::clamp(priors.engage, AutoTuner::kMinEngage,
                               AutoTuner::kMaxEngage);
          ++base_stats_.priors_applied;
        }
        if (priors.retreat != 0) {
          // Keep the hysteresis gap open no matter what was recorded.
          retreat_ = std::clamp<size_t>(priors.retreat, 1, engage_ / 2);
          ++base_stats_.priors_applied;
        }
        if (priors.lanes != 0 && auto_lane_request(threads) == 0) {
          // An explicit lane request on the knob outranks the prior.
          lanes_ = std::clamp<size_t>(priors.lanes, 1, max_lanes);
          ++base_stats_.priors_applied;
        }
        tuner_ =
            std::make_unique<AutoTuner>(engage_, retreat_, lanes_, max_lanes);
      }
    } else {
      // Strip stray flag bits (e.g. kTuneFlag without kAutoFlag) so a
      // malformed knob degrades to a plain lane count instead of a ~2^62
      // allocation; tuning is only meaningful on the adaptive engine.
      const size_t plain = auto_lane_request(threads);
      lanes_ = plain == 0 ? 1 : plain;
    }
    scratch_.resize(lanes_);
    Config c;
    c.state = policy_.initial_state();
    if (!adaptive_ && lanes_ > 1) {
      make_shards();
      shards_->seed(std::move(c));
      parallel_active_ = true;
    } else {
      frontier_.push_back(std::move(c));
    }
  }

  FrontierEngine(const FrontierEngine& o)
      : policy_(o.policy_), max_configs_(o.max_configs_), exec_(o.exec_),
        lanes_(o.lanes_), adaptive_(o.adaptive_), ok_(o.ok_),
        overflowed_(o.overflowed_), engage_(o.engage_), retreat_(o.retreat_),
        obs_(o.obs_), open_(o.open_), base_stats_(o.stats()) {
    if (o.tuner_ != nullptr) tuner_ = std::make_unique<AutoTuner>(*o.tuner_);
    // The clone's window starts empty; anchor the dedup-delta snapshots at
    // the inherited totals so its first tick sees only its own probes.
    last_probes_ = base_stats_.dedup_probes;
    last_hits_ = base_stats_.dedup_hits;
    scratch_.resize(lanes_);
    if (o.parallel_active_) {
      make_shards();
      shards_->clone_from(*o.shards_);
      parallel_active_ = true;
    } else {
      frontier_.reserve(o.frontier_.size());
      for (const Config& c : o.frontier_) frontier_.push_back(c.clone());
    }
  }

  FrontierEngine& operator=(const FrontierEngine&) = delete;

  void feed(const Event& e) { feed_batch({&e, 1}); }

  /// Batched feed: the per-event closure/dedup work is amortized across
  /// every *consecutive run of responses* in the batch.  One closure round
  /// services the whole run — the closure set is a fixpoint, and filtering
  /// a response only removes the op from surviving configurations, so the
  /// filtered set is already closed under the remaining open operations
  /// (the intermediate re-closure the per-event path performs adds nothing;
  /// see feed_res_run).  Verdicts and post-response frontier sizes are
  /// bit-identical to feeding the same events one at a time
  /// (tests/engine_parity_test.cpp asserts this per spec and per mode);
  /// only the stats differ: a run counts as one round, not one per
  /// response, and the tuner ticks once per run.
  void feed_batch(std::span<const Event> events) {
    size_t i = 0;
    while (i < events.size()) {
      if (!ok_ || overflowed_) return;
      if (events[i].is_inv()) {
        ++base_stats_.events_fed;
        open_.push_back(events[i].op);
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < events.size() && events[j].is_res()) ++j;
      feed_res_run(events.subspan(i, j - i));
      i = j;
    }
  }

  bool ok() const { return ok_; }
  bool overflowed() const { return overflowed_; }

  /// Attach observability instruments (obs/hooks.hpp; nullptr detaches).
  /// The bundle (and everything it points at) must outlive the engine or a
  /// later set_obs(nullptr).  When detached — the default — the hot path
  /// pays exactly one pointer test per closure round; clones inherit the
  /// attachment, so replay monitors forked from an instrumented one report
  /// into the same instruments.
  void set_obs(const obs::EngineHooks* hooks) { obs_ = hooks; }

  size_t frontier_size() const {
    return parallel_active_ ? shards_->size() : frontier_.size();
  }

  /// Counters aggregated across the sequential engine and every lane.
  EngineStats stats() const {
    EngineStats s = base_stats_;
    s.lanes = lanes_;
    accumulate(s, eng_);
    if (pool_ != nullptr) {
      for (size_t i = 0; i < pool_->threads(); ++i) {
        accumulate(s, pool_->engine(i));
      }
    }
    s.engage_width = engage_;
    s.retreat_width = retreat_;
    s.tuner_updates = tuner_ == nullptr ? base_stats_.tuner_updates
                                        : tuner_->updates();
    return s;
  }

  /// Order-independent digest of the live frontier: XOR of the mixed
  /// fingerprint of every configuration.  The frontier is a fixpoint, so
  /// the digest is identical across execution modes and — because the
  /// fingerprints are representation-independent — across op-set storage
  /// layouts (tests/engine_parity_test.cpp asserts both).
  uint64_t frontier_digest() const {
    uint64_t d = 0;
    for_each_config(
        [&d](const Config& c) { d ^= fph::mix(c.fingerprint()); });
    return d;
  }

  /// Walks every live configuration, so it is deliberately not folded into
  /// stats() (which the auto-tuner reads every window).
  FrontierFootprint footprint() const {
    FrontierFootprint f;
    for_each_config([&f](const Config& c) {
      ++f.configs;
      f.opset_elems += c.opset_elems();
      f.opset_bytes += c.opset_bytes();
      f.opset_smallvec_bytes += c.opset_smallvec_bytes();
    });
    return f;
  }

 private:
  template <typename Fn>
  void for_each_config(Fn&& fn) const {
    if (parallel_active_) {
      shards_->for_each(fn);
    } else {
      for (const Config& c : frontier_) fn(c);
    }
  }

  static void accumulate(EngineStats& s, const lincheck::DedupEngine& e) {
    s.dedup_probes += e.probes;
    s.dedup_hits += e.hits;
    s.states_recycled += e.pool.recycled();
    s.probe_batches += e.batches;
    s.prefetch_batches += e.prefetch_batches;
  }

  void make_shards() {
    pool_ = std::make_unique<parallel::ShardPool>(lanes_, exec_);
    shards_ =
        std::make_unique<parallel::ShardedFrontier<Config>>(*pool_,
                                                            max_configs_);
  }

  std::span<const OpDesc> open_span() const {
    return {open_.data(), open_.size()};
  }

  /// Adaptive representation switch, between feeds only (both directions
  /// move already-deduplicated configurations, so the frontier's content is
  /// untouched and verdicts cannot depend on when a switch happens).
  void adapt() {
    if (lanes_ <= 1) return;
    const size_t width = frontier_size();
    if (!parallel_active_ && width >= engage_) {
      if (shards_ == nullptr) make_shards();
      shards_->adopt(std::move(frontier_));
      frontier_.clear();
      parallel_active_ = true;
      ++base_stats_.mode_switches;
      ++window_.mode_switches;
    } else if (parallel_active_ && width < retreat_) {
      shards_->drain(frontier_);
      parallel_active_ = false;
      ++base_stats_.mode_switches;
      ++window_.mode_switches;
    }
  }

  /// One AutoTuner step per kWindow response rounds: hand the tuner the
  /// window's signal deltas and adopt whatever thresholds/lane count it
  /// settles on.  Lane retargeting rebuilds the dormant pool, so it is
  /// applied only while the frontier lives in the sequential representation
  /// (the next engage simply constructs the pool at the new width).
  void tune() {
    if (++window_rounds_ < AutoTuner::kWindow) return;
    window_rounds_ = 0;
    const EngineStats totals = stats();  // base + every live engine
    window_.dedup_probes = totals.dedup_probes - last_probes_;
    window_.dedup_hits = totals.dedup_hits - last_hits_;
    last_probes_ = totals.dedup_probes;
    last_hits_ = totals.dedup_hits;
    if (tuner_->tick(window_)) {
      const size_t engage_before = engage_;
      const size_t retreat_before = retreat_;
      const size_t lanes_before = lanes_;
      engage_ = tuner_->engage();
      retreat_ = tuner_->retreat();
      if (!parallel_active_ && tuner_->lanes() != lanes_) {
        // Fold the retiring lanes' counters into the base stats before the
        // pool (and its engines) goes away, then rebuild at the new width.
        if (pool_ != nullptr) {
          for (size_t i = 0; i < pool_->threads(); ++i) {
            accumulate(base_stats_, pool_->engine(i));
          }
        }
        shards_.reset();
        pool_.reset();
        lanes_ = tuner_->lanes();
        scratch_.clear();
        scratch_.resize(lanes_);
      }
      if (obs_ != nullptr && obs_->trace != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::SpanKind::kTunerDecision;
        ev.session = obs_->session;
        ev.start_ns = obs::now_ns();
        ev.p0 = engage_before;
        ev.p1 = engage_;
        ev.p2 = retreat_before;
        ev.p3 = retreat_;
        ev.p4 = lanes_before;
        ev.p5 = lanes_;
        obs_->trace->record(ev);
      }
    }
    window_.clear();
  }

  /// Post-round observability (only reached with hooks attached): the round
  /// latency histogram for the mode that ran, and the kFeedRound span.
  void observe_round(bool par, uint64_t t0, size_t run_len) {
    const uint64_t dur = obs::now_ns() - t0;
    obs::Histogram* h = par ? obs_->round_ns_par : obs_->round_ns_seq;
    if (h != nullptr) h->record(dur);
    if (obs_->trace != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::SpanKind::kFeedRound;
      ev.session = obs_->session;
      ev.start_ns = t0;
      ev.dur_ns = dur;
      ev.p0 = par ? 1 : 0;
      ev.p1 = frontier_size();
      ev.p2 = run_len;
      ev.p3 = base_stats_.events_fed;
      obs_->trace->record(ev);
    }
  }

  // All configurations reachable from the frontier by any sequence of the
  // policy's linearization moves (index-based BFS with dedup; `result` may
  // reallocate under emit, which is why the policy receives the
  // configuration as a re-fetching accessor rather than a reference — see
  // the policy contract in policies.hpp).
  //
  // Data-oriented layout: candidates are buffered and their fingerprints
  // probed in prefetched batches (probe order — and with it every dedup
  // outcome, the result order, and the overflow point — is the emission
  // order, exactly as the probe-per-emit loop produced).  Alongside the
  // result the engine fills two parallel SoA rows per configuration:
  // hot_fp_ (the fingerprint) and hot_bloom_ (the policy's match-key Bloom
  // bits), which the response filter then scans contiguously without
  // touching the Configs of dropped rows.  `seen` is pre-sized from the
  // previous round's closure width so no FpSet grow lands mid-closure.
  std::vector<Config> closure() {
    eng_.seen.clear();
    eng_.seen.reserve(std::max(frontier_.size(), last_width_));
    hot_fp_.clear();
    hot_bloom_.clear();
    std::vector<Config> result;
    result.reserve(std::max(frontier_.size() * 2, last_width_));
    // Seed: the frontier is already deduplicated, so every probe is fresh —
    // the batch registers the fingerprints in `seen` and the configurations
    // *move* in (no clone; a round where nothing expands now costs one
    // probe batch and |frontier| moves instead of |frontier| state clones
    // immediately released again).
    fp_buf_.clear();
    for (const Config& c : frontier_) fp_buf_.push_back(c.fingerprint());
    for (size_t b = 0; b < fp_buf_.size(); b += FpSet::kMaxBatch) {
      const size_t n = std::min(FpSet::kMaxBatch, fp_buf_.size() - b);
      const uint64_t fresh =
          eng_.probe_batch(eng_.seen, fp_buf_.data() + b, n,
                           [&](size_t i) { return frontier_[b + i].key(); });
      for (size_t i = 0; i < n; ++i) {
        if (((fresh >> i) & 1) != 0) {
          hot_fp_.push_back(fp_buf_[b + i]);
          hot_bloom_.push_back(policy_.hot_bits(frontier_[b + i]));
          result.push_back(std::move(frontier_[b + i]));
        } else {
          eng_.pool.release(std::move(frontier_[b + i].state));
        }
      }
    }
    frontier_.clear();
    if constexpr (Policy::kLazyExpand) {
      expand_closure_lazy(result);
    } else {
      expand_closure_buffered(result);
    }
    last_width_ = result.size();
    return result;
  }

  /// Expansion loop for policies with expand_lazy (LinPolicy): candidates
  /// arrive as (stepped state, op, value, fingerprint) — no Config yet.
  /// Fingerprints batch-probe into `seen`; only admitted candidates pay the
  /// linearized-set copy, so the duplicate-heavy case skips the
  /// clone-then-release churn entirely.  Buffers flush at every expand()
  /// return (and at kMaxBatch mid-expand), preserving emission order.
  void expand_closure_lazy(std::vector<Config>& result) {
    auto flush = [&] {
      const size_t n = lazy_.size();
      if (n == 0) return;
      fp_buf_.clear();
      for (const LazyCand& lc : lazy_) fp_buf_.push_back(lc.fp);
      const uint64_t fresh =
          eng_.probe_batch(eng_.seen, fp_buf_.data(), n, [&](size_t i) {
            const LazyCand& lc = lazy_[i];
            return Policy::candidate_key(
                *lc.st, result[lc.parent].linearized, lc.id, lc.v);
          });
      for (size_t i = 0; i < n; ++i) {
        LazyCand& lc = lazy_[i];
        if (((fresh >> i) & 1) == 0) {
          eng_.pool.release(std::move(lc.st));
          continue;
        }
        if (result.size() >= max_configs_) throw CheckerOverflow{};
        Config next;
        next.state = std::move(lc.st);
        next.linearized = result[lc.parent].linearized;
        next.add(lc.id, lc.v);
        hot_fp_.push_back(lc.fp);
        hot_bloom_.push_back(hot_bloom_[lc.parent] |
                             lincheck::match_bit(lincheck::seq_major(lc.id)));
        result.push_back(std::move(next));
      }
      lazy_.clear();
    };
    for (size_t i = 0; i < result.size(); ++i) {
      auto cfg = [&result, i]() -> const Config& { return result[i]; };
      policy_.expand_lazy(
          eng_.pool, scratch_[0], open_span(), cfg,
          [&](std::unique_ptr<SeqState> st, OpId id, Value v, uint64_t fp) {
            lazy_.push_back(LazyCand{std::move(st), id, v, fp, i});
            if (lazy_.size() == FpSet::kMaxBatch) flush();
          });
      flush();
    }
  }

  /// Expansion loop for batch-linearizing policies (SetLin/Interval):
  /// candidates are full Configs, but probes still resolve in prefetched
  /// batches with the grow check hoisted out of the per-probe path.
  void expand_closure_buffered(std::vector<Config>& result) {
    auto flush = [&] {
      const size_t n = pend_.size();
      if (n == 0) return;
      fp_buf_.clear();
      for (const Config& c : pend_) fp_buf_.push_back(c.fingerprint());
      const uint64_t fresh =
          eng_.probe_batch(eng_.seen, fp_buf_.data(), n,
                           [&](size_t i) { return pend_[i].key(); });
      for (size_t i = 0; i < n; ++i) {
        if (((fresh >> i) & 1) == 0) {
          eng_.pool.release(std::move(pend_[i].state));
          continue;
        }
        if (result.size() >= max_configs_) throw CheckerOverflow{};
        hot_fp_.push_back(fp_buf_[i]);
        hot_bloom_.push_back(policy_.hot_bits(pend_[i]));
        result.push_back(std::move(pend_[i]));
      }
      pend_.clear();
    };
    for (size_t i = 0; i < result.size(); ++i) {
      auto cfg = [&result, i]() -> const Config& { return result[i]; };
      policy_.expand(eng_.pool, scratch_[0], open_span(), cfg,
                     [&](Config&& next) {
                       pend_.push_back(std::move(next));
                       if (pend_.size() == FpSet::kMaxBatch) flush();
                     });
      flush();
    }
  }

  /// One closure round servicing a run of consecutive response events.
  ///
  /// Why a single closure is enough: let S be the closure of the frontier
  /// under the current open set O.  Filtering response r keeps exactly the
  /// configurations of S that linearized r with the observed value, with r
  /// removed from their bookkeeping (match never touches machine state).
  /// Any closure move applicable to a filtered configuration F = C∖r
  /// (C ∈ S) corresponds to the same move on C — the move cannot involve r,
  /// which left the open set — and S is a fixpoint, so the moved C is in S
  /// and still matches r.  The filtered set is therefore already closed
  /// under O∖{r}, and the next response of the run can be filtered
  /// directly.  This holds for all three policies (linearize-one,
  /// linearize-batch, machine-invoke/machine-respond).
  void feed_res_run(std::span<const Event> run) {
    try {
      if (adaptive_) adapt();
      const bool par = parallel_active_;
      const uint64_t t0 = obs_ != nullptr ? obs::now_ns() : 0;
      if (par) {
        ++base_stats_.rounds_parallel;
        ++window_.rounds_parallel;
        run_res_parallel(run);
      } else {
        ++base_stats_.rounds_sequential;
        ++window_.rounds_sequential;
        run_res_sequential(run);
      }
      if (obs_ != nullptr) observe_round(par, t0, run.size());
      if (tuner_ != nullptr) tune();
    } catch (...) {
      // The half-expanded frontier no longer reflects the fed prefix.
      // Release everything and poison the engine (sticky overflowed())
      // rather than leave it open to undefined reuse; the exception still
      // propagates so one-shot callers see CheckerOverflow as before.
      overflowed_ = true;
      release_everything();
      throw;
    }
  }

  /// Response bookkeeping shared by both representations: the op leaves the
  /// open set, the width counters see the post-filter frontier.  Returns
  /// false once the frontier is empty (verdict settled; the rest of the run
  /// is ignored, exactly as per-event feeds ignore events after !ok()).
  bool settle_response(const Event& e, size_t width) {
    erase_open(e.op.id);
    base_stats_.peak_frontier = std::max(base_stats_.peak_frontier, width);
    window_.peak_width = std::max(window_.peak_width, width);
    if (obs_ != nullptr && obs_->frontier_width != nullptr) {
      obs_->frontier_width->record(width);
    }
    if (width == 0) {
      ok_ = false;
      return false;
    }
    return true;
  }

  void run_res_sequential(std::span<const Event> run) {
    std::vector<Config> cur = closure();
    for (const Event& e : run) {
      ++base_stats_.events_fed;
      filter_in_place(cur, e);
      if (!settle_response(e, cur.size())) break;
    }
    // closure() moved the old frontier out, so `cur` simply takes its place.
    frontier_ = std::move(cur);
  }

  /// Allocation-free response filter over the closure set: no `filtered`
  /// vector — survivors compact to the front of `cur` in place (stable, so
  /// the surviving order matches the old copy-out loop bit for bit).  The
  /// pass scans the SoA hot rows closure() built: a configuration whose
  /// Bloom bits exclude the event's op provably cannot match and drops
  /// without the exact match() call; survivors' fingerprints are patched by
  /// the policy's per-event match delta (match never touches machine state)
  /// instead of recomputed, then dedup in prefetched batches against a
  /// filter_seen pre-sized to the survivor count.  The collision audit
  /// cross-checks every patched fingerprint against the mutated
  /// configuration's canonical key, so the delta arithmetic is verified in
  /// debug/audit builds.
  void filter_in_place(std::vector<Config>& cur, const Event& e) {
    ++base_stats_.filter_in_place_rounds;
    const uint64_t bit = lincheck::match_bit(lincheck::seq_major(e.op.id));
    const uint64_t delta = policy_.match_delta(e);
    size_t w = 0;
    for (size_t i = 0; i < cur.size(); ++i) {
      if ((hot_bloom_[i] & bit) == 0 || !policy_.match(cur[i], e)) {
        eng_.pool.release(std::move(cur[i].state));
        continue;
      }
      if (w != i) {
        cur[w] = std::move(cur[i]);
        hot_bloom_[w] = hot_bloom_[i];
      }
      hot_fp_[w] = hot_fp_[i] ^ delta;
      ++w;
    }
    eng_.filter_seen.clear();
    eng_.filter_seen.reserve(w);
    size_t out = 0;
    for (size_t b = 0; b < w; b += FpSet::kMaxBatch) {
      const size_t n = std::min(FpSet::kMaxBatch, w - b);
      const uint64_t fresh =
          eng_.probe_batch(eng_.filter_seen, hot_fp_.data() + b, n,
                           [&](size_t i) { return cur[b + i].key(); });
      for (size_t i = 0; i < n; ++i) {
        if (((fresh >> i) & 1) == 0) {
          eng_.pool.release(std::move(cur[b + i].state));
          continue;
        }
        if (out != b + i) {
          cur[out] = std::move(cur[b + i]);
          hot_fp_[out] = hot_fp_[b + i];
          hot_bloom_[out] = hot_bloom_[b + i];
        }
        ++out;
      }
    }
    cur.resize(out);
    hot_fp_.resize(out);
    hot_bloom_.resize(out);
  }

  void run_res_parallel(std::span<const Event> run) {
    shards_->closure([this](size_t s, const Config& c, auto& emit) {
      auto cfg = [&c]() -> const Config& { return c; };
      policy_.expand(pool_->engine(s).pool, scratch_[s], open_span(), cfg,
                     emit);
    });
    for (const Event& e : run) {
      ++base_stats_.events_fed;
      shards_->filter(
          [this, &e](size_t, Config& c) { return policy_.match(c, e); });
      if (!settle_response(e, shards_->size())) break;
    }
  }

  void release_everything() {
    for (Config& c : frontier_) eng_.pool.release(std::move(c.state));
    frontier_.clear();
    for (LazyCand& lc : lazy_) eng_.pool.release(std::move(lc.st));
    lazy_.clear();
    for (Config& c : pend_) eng_.pool.release(std::move(c.state));
    pend_.clear();
    hot_fp_.clear();
    hot_bloom_.clear();
    if (shards_ != nullptr) shards_->release_all();
  }

  void erase_open(OpId id) {
    for (size_t i = 0; i < open_.size(); ++i) {
      if (open_[i].id == id) {
        open_[i] = open_.back();  // order is irrelevant: swap-erase
        open_.pop_back();
        break;
      }
    }
  }

  Policy policy_;
  size_t max_configs_;
  // Shared worker lanes for the parallel path; clones inherit it, so every
  // monitor forked from a service-owned one stays on the service's pool.
  std::shared_ptr<parallel::Executor> exec_;
  size_t lanes_ = 1;        // shard/lane count of the parallel path
  bool adaptive_ = false;   // per-round engine choice (threads = auto)
  bool parallel_active_ = false;  // which representation holds the frontier
  bool ok_ = true;
  bool overflowed_ = false;

  // Adaptive thresholds: the static constants unless an AutoTuner is
  // attached (threads knob carries kTuneFlag), which then owns them.
  size_t engage_ = kAutoEngageWidth;
  size_t retreat_ = kAutoRetreatWidth;
  std::unique_ptr<AutoTuner> tuner_;
  // Borrowed instrumentation bundle (obs/hooks.hpp); null when detached, so
  // the unobserved hot path costs one pointer test per closure round.
  const obs::EngineHooks* obs_ = nullptr;
  TunerWindow window_;        // signal deltas since the last tuner tick
  uint64_t window_rounds_ = 0;
  uint64_t last_probes_ = 0;  // dedup totals at the last tick (for deltas)
  uint64_t last_hits_ = 0;

  std::vector<OpDesc> open_;  // invoked, response not yet fed

  // Sequential representation.
  std::vector<Config> frontier_;
  lincheck::DedupEngine eng_;

  // Data-oriented hot-path storage for the sequential engine.  hot_fp_ and
  // hot_bloom_ are SoA rows parallel to the closure vector (fingerprint and
  // match-key Bloom bits of result[i]); fp_buf_ is the batch-probe scratch;
  // lazy_/pend_ buffer not-yet-admitted expansion candidates between probe
  // flushes.  All retain capacity across rounds — steady state allocates
  // nothing here.
  struct LazyCand {
    std::unique_ptr<SeqState> st;
    OpId id;
    Value v;
    uint64_t fp;
    size_t parent;  // index into the closure vector
  };
  size_t last_width_ = 0;          // previous closure width (pre-sizing seed)
  std::vector<uint64_t> hot_fp_;
  std::vector<uint64_t> hot_bloom_;
  std::vector<uint64_t> fp_buf_;
  std::vector<LazyCand> lazy_;     // lazy candidates (Policy::kLazyExpand)
  std::vector<Config> pend_;       // buffered Configs (batch policies)

  // Sharded representation (constructed lazily; adaptive engines may never
  // need it, and eagerly cloned monitors must stay cheap while dormant).
  std::unique_ptr<parallel::ShardPool> pool_;
  std::unique_ptr<parallel::ShardedFrontier<Config>> shards_;

  std::vector<typename Policy::Scratch> scratch_;  // one per lane

  // Rounds/peak/events live here; dedup and recycling counters are read
  // from the engines at stats() time.  Copies snapshot the source's full
  // aggregate into base_stats_, so stats survive cloning.
  EngineStats base_stats_;
};

}  // namespace selin::engine
