// Ground-truth instrumentation (test/bench infrastructure only).
//
// The whole point of Theorem 5.1 is that the *algorithms* cannot observe the
// real-time order of invocations and responses.  The test-suite, however,
// must: soundness tests need the actual history of A to confirm it was
// correct, completeness tests need it to confirm it was not.  The recorder
// stamps events with a global atomic counter and reassembles the actual
// history afterwards — instrumentation the verifier never sees, mirroring
// the paper's distinction between the execution and the processes' views.
#pragma once

#include <atomic>
#include <cstring>
#include <vector>

#include "selin/core/astar.hpp"
#include "selin/history/tight.hpp"
#include "selin/impls/concurrent.hpp"

namespace selin {

/// Wraps an IConcurrent, recording the real-time history of its operations.
/// Recording is lock-free: events are claimed with one fetch_add into a
/// pre-sized slab.
class RecordingConcurrent final : public IConcurrent {
 public:
  /// `capacity` bounds the number of recorded events (2 per operation).
  RecordingConcurrent(IConcurrent& inner, size_t capacity)
      : inner_(&inner), slots_(capacity) {}

  const char* name() const override { return inner_->name(); }

  Value apply(ProcId p, const OpDesc& op) override {
    append(Event::inv(op));
    Value y = inner_->apply(p, op);
    append(Event::res(op, y));
    return y;
  }

  /// The actual history of A recorded so far.  Call only while no apply() is
  /// in flight (e.g. after joining worker threads).
  History history() const {
    size_t n = next_.load(std::memory_order_acquire);
    if (n > slots_.size()) n = slots_.size();
    return History(slots_.begin(), slots_.begin() + static_cast<long>(n));
  }

  bool overflowed() const {
    return next_.load(std::memory_order_relaxed) > slots_.size();
  }

 private:
  void append(const Event& e) {
    size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    if (i < slots_.size()) slots_[i] = e;
  }

  IConcurrent* inner_;
  std::vector<Event> slots_;
  std::atomic<size_t> next_{0};
};

/// Records the Write/Snapshot marks of an AStar (Definition 7.5 structure) so
/// tests can build T(E) of the actual execution and validate Lemmas 7.3/7.4.
class TraceRecorder final : public AStarTraceSink {
 public:
  explicit TraceRecorder(size_t capacity) : slots_(capacity) {}

  void on_write(const OpDesc& op) override {
    append(AStarMark{AStarMark::Kind::kWrite, op, kNoArg});
  }
  void on_snap(const OpDesc& op, Value y) override {
    append(AStarMark{AStarMark::Kind::kSnap, op, y});
  }

  /// Call only when no apply() is in flight.
  AStarTrace trace() const {
    size_t n = next_.load(std::memory_order_acquire);
    if (n > slots_.size()) n = slots_.size();
    return AStarTrace(slots_.begin(), slots_.begin() + static_cast<long>(n));
  }

 private:
  void append(const AStarMark& m) {
    size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    if (i < slots_.size()) slots_[i] = m;
  }

  std::vector<AStarMark> slots_;
  std::atomic<size_t> next_{0};
};

}  // namespace selin
