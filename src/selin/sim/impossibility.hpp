// Executable rendition of the Theorem 5.1 impossibility argument (Figure 4).
//
// The generic verifier of Figure 2 performs, per operation: an *announce*
// (Line 05, encode the upcoming invocation in M), the *invocation* of A
// (Line 06), the *response* from A (Line 07), and a *record* (Line 08,
// encode the response in M).  Because the system is asynchronous, the only
// information any process can extract from M is the order of announce/record
// events — the "detected" history — while the actual history of A is defined
// by the order of the invocation/response events, which are local and
// unobservable.
//
// build_thm51_scenario() constructs the two executions E and F of the proof:
// they have *identical* detected histories and identical per-process local
// event sequences (so every verifier behaves identically in both), yet the
// actual history of A is non-linearizable in E and linearizable in F.  The
// impossibility test then confirms all three facts mechanically.
#pragma once

#include <vector>

#include "selin/history/history.hpp"

namespace selin {

/// One step of the generic verifier's interaction (Figure 2).
struct VerifierEvent {
  enum class Kind : uint8_t {
    kAnnounce,  ///< Line 05: encode upcoming invocation in M
    kInvoke,    ///< Line 06: local invocation of A
    kRespond,   ///< Line 07: local response from A
    kRecord,    ///< Line 08: encode response in M
  };
  Kind kind;
  OpDesc op;
  Value y = kNoArg;  ///< meaningful for kRespond/kRecord
};

using VerifierExecution = std::vector<VerifierEvent>;

/// The actual history of A: invocation at kInvoke, response at kRespond.
History actual_history(const VerifierExecution& exec);

/// The history detectable through M: invocation at kAnnounce, response at
/// kRecord — operations "stretched" exactly as in Figure 5.
History detected_history(const VerifierExecution& exec);

/// The local event sequence of process p (what p can observe of itself).
std::vector<VerifierEvent> local_view(const VerifierExecution& exec, ProcId p);

struct Thm51Scenario {
  VerifierExecution exec_E;  ///< actual history non-linearizable
  VerifierExecution exec_F;  ///< actual history linearizable
};

/// The executions E and F of the Theorem 5.1 proof for the queue, padded
/// with `extra_rounds` of the infinite Dequeue()->empty tail (step 7 of the
/// proof construction).
Thm51Scenario build_thm51_scenario(size_t extra_rounds = 2);

/// True iff the two executions are indistinguishable to every process:
/// identical local event sequences (kind, op, response value).
bool indistinguishable(const VerifierExecution& a, const VerifierExecution& b);

}  // namespace selin
