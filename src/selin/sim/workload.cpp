#include "selin/sim/workload.hpp"

namespace selin {

const char* object_kind_name(ObjectKind k) {
  switch (k) {
    case ObjectKind::kQueue: return "queue";
    case ObjectKind::kStack: return "stack";
    case ObjectKind::kSet: return "set";
    case ObjectKind::kPqueue: return "pqueue";
    case ObjectKind::kCounter: return "counter";
    case ObjectKind::kRegister: return "register";
    case ObjectKind::kConsensus: return "consensus";
  }
  return "?";
}

std::pair<Method, Value> random_op(ObjectKind kind, Rng& rng) {
  switch (kind) {
    case ObjectKind::kQueue:
      if (rng.chance(1, 2)) return {Method::kEnqueue, rng.range(1, 1'000'000)};
      return {Method::kDequeue, kNoArg};
    case ObjectKind::kStack:
      if (rng.chance(1, 2)) return {Method::kPush, rng.range(1, 1'000'000)};
      return {Method::kPop, kNoArg};
    case ObjectKind::kSet: {
      uint64_t r = rng.below(3);
      Value v = rng.range(1, 16);  // small domain: collisions matter
      if (r == 0) return {Method::kInsert, v};
      if (r == 1) return {Method::kRemove, v};
      return {Method::kContains, v};
    }
    case ObjectKind::kPqueue:
      if (rng.chance(1, 2)) return {Method::kPqInsert, rng.range(1, 1000)};
      return {Method::kPqExtractMin, kNoArg};
    case ObjectKind::kCounter:
      if (rng.chance(2, 3)) return {Method::kInc, kNoArg};
      return {Method::kCounterRead, kNoArg};
    case ObjectKind::kRegister:
      if (rng.chance(1, 2)) return {Method::kWrite, rng.range(1, 64)};
      return {Method::kRead, kNoArg};
    case ObjectKind::kConsensus:
      return {Method::kDecide, rng.range(1, 1'000'000)};
  }
  return {Method::kRead, kNoArg};
}

std::unique_ptr<SeqSpec> make_spec(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue: return make_queue_spec();
    case ObjectKind::kStack: return make_stack_spec();
    case ObjectKind::kSet: return make_set_spec();
    case ObjectKind::kPqueue: return make_pqueue_spec();
    case ObjectKind::kCounter: return make_counter_spec();
    case ObjectKind::kRegister: return make_register_spec();
    case ObjectKind::kConsensus: return make_consensus_spec();
  }
  return nullptr;
}

std::unique_ptr<IConcurrent> make_correct_impl(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue: return make_ms_queue();
    case ObjectKind::kStack: return make_treiber_stack();
    case ObjectKind::kSet: return make_universal(make_set_spec());
    case ObjectKind::kPqueue: return make_universal(make_pqueue_spec());
    case ObjectKind::kCounter: return make_atomic_counter();
    case ObjectKind::kRegister: return make_cas_register();
    case ObjectKind::kConsensus: return make_cas_consensus();
  }
  return nullptr;
}

}  // namespace selin
