#include "selin/sim/impossibility.hpp"

#include <algorithm>

namespace selin {

History actual_history(const VerifierExecution& exec) {
  History h;
  for (const VerifierEvent& e : exec) {
    if (e.kind == VerifierEvent::Kind::kInvoke) {
      h.push_back(Event::inv(e.op));
    } else if (e.kind == VerifierEvent::Kind::kRespond) {
      h.push_back(Event::res(e.op, e.y));
    }
  }
  return h;
}

History detected_history(const VerifierExecution& exec) {
  History h;
  for (const VerifierEvent& e : exec) {
    if (e.kind == VerifierEvent::Kind::kAnnounce) {
      h.push_back(Event::inv(e.op));
    } else if (e.kind == VerifierEvent::Kind::kRecord) {
      h.push_back(Event::res(e.op, e.y));
    }
  }
  return h;
}

std::vector<VerifierEvent> local_view(const VerifierExecution& exec,
                                      ProcId p) {
  std::vector<VerifierEvent> out;
  for (const VerifierEvent& e : exec) {
    if (e.op.id.pid == p) out.push_back(e);
  }
  return out;
}

bool indistinguishable(const VerifierExecution& a,
                       const VerifierExecution& b) {
  ProcId max_pid = 0;
  for (const VerifierEvent& e : a) max_pid = std::max(max_pid, e.op.id.pid);
  for (const VerifierEvent& e : b) max_pid = std::max(max_pid, e.op.id.pid);
  for (ProcId p = 0; p <= max_pid; ++p) {
    auto va = local_view(a, p);
    auto vb = local_view(b, p);
    if (va.size() != vb.size()) return false;
    for (size_t i = 0; i < va.size(); ++i) {
      if (va[i].kind != vb[i].kind || !(va[i].op == vb[i].op) ||
          va[i].y != vb[i].y) {
        return false;
      }
    }
  }
  return true;
}

namespace {

using K = VerifierEvent::Kind;

void push_op(VerifierExecution& out, const OpDesc& op, Value y) {
  out.push_back({K::kAnnounce, op, kNoArg});
  out.push_back({K::kInvoke, op, kNoArg});
  out.push_back({K::kRespond, op, y});
  out.push_back({K::kRecord, op, y});
}

}  // namespace

Thm51Scenario build_thm51_scenario(size_t extra_rounds) {
  // A is the adversarial queue of the proof: Enqueue -> true, Dequeue ->
  // empty, except p2's (pid 1) first Dequeue which returns 1.
  Thm51Scenario s;

  OpDesc enq{OpId{0, 0}, Method::kEnqueue, 1};
  OpDesc deq{OpId{1, 0}, Method::kDequeue, kNoArg};

  // Execution E (steps 1-6 of the proof):
  //   p2 announces deq; p1 announces enq;
  //   p2 invokes and responds (deq -> 1); p1 invokes and responds (enq);
  //   p2 records; p1 records.
  s.exec_E.push_back({K::kAnnounce, deq, kNoArg});
  s.exec_E.push_back({K::kAnnounce, enq, kNoArg});
  s.exec_E.push_back({K::kInvoke, deq, kNoArg});
  s.exec_E.push_back({K::kRespond, deq, 1});
  s.exec_E.push_back({K::kInvoke, enq, kNoArg});
  s.exec_E.push_back({K::kRespond, enq, kTrue});
  s.exec_E.push_back({K::kRecord, deq, 1});
  s.exec_E.push_back({K::kRecord, enq, kTrue});

  // Execution F: identical except steps 3 and 4 are swapped — p1's enqueue
  // takes effect first, so deq() -> 1 is legitimate.
  s.exec_F.push_back({K::kAnnounce, deq, kNoArg});
  s.exec_F.push_back({K::kAnnounce, enq, kNoArg});
  s.exec_F.push_back({K::kInvoke, enq, kNoArg});
  s.exec_F.push_back({K::kRespond, enq, kTrue});
  s.exec_F.push_back({K::kInvoke, deq, kNoArg});
  s.exec_F.push_back({K::kRespond, deq, 1});
  s.exec_F.push_back({K::kRecord, deq, 1});
  s.exec_F.push_back({K::kRecord, enq, kTrue});

  // Step 7: both executions continue with alternating Dequeue() -> empty.
  for (size_t k = 0; k < extra_rounds; ++k) {
    for (ProcId p = 0; p < 2; ++p) {
      OpDesc d{OpId{p, static_cast<uint32_t>(k) + 1}, Method::kDequeue,
               kNoArg};
      push_op(s.exec_E, d, kEmpty);
      push_op(s.exec_F, d, kEmpty);
    }
  }
  return s;
}

}  // namespace selin
