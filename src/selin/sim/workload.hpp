// Workload generation: the "non-deterministically chosen operation" of
// Figure 2 Line 03 / Figure 10 Line 03, drawn from a seeded RNG so every
// test and benchmark is reproducible.
#pragma once

#include <memory>
#include <utility>

#include "selin/impls/concurrent.hpp"
#include "selin/spec/spec.hpp"
#include "selin/util/rng.hpp"

namespace selin {

/// The sequential-object families of Theorem 5.1.
enum class ObjectKind {
  kQueue,
  kStack,
  kSet,
  kPqueue,
  kCounter,
  kRegister,
  kConsensus,
};

const char* object_kind_name(ObjectKind k);

/// A random operation appropriate for the object family.  Mutator/observer
/// mix is roughly balanced; arguments are small so observers exercise
/// interesting state.
std::pair<Method, Value> random_op(ObjectKind kind, Rng& rng);

/// The sequential specification of the family.
std::unique_ptr<SeqSpec> make_spec(ObjectKind kind);

/// A correct lock-free implementation of the family.
std::unique_ptr<IConcurrent> make_correct_impl(ObjectKind kind);

}  // namespace selin
