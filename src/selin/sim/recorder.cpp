// recorder.hpp is header-only; this TU provides its compile check.
#include "selin/sim/recorder.hpp"
