// The snapshot object (Definition 7.3): a shared array MEM with n entries,
// Write(v) to the caller's entry and Snapshot() returning the whole array
// atomically.  All of the paper's algorithms (Figures 7, 10, 11, 12)
// communicate exclusively through linearizable snapshot objects, which are
// wait-free implementable from read/write registers [1, 63] — that is why
// the constructions need no consensus.
//
// T must be trivially copyable (in selin it is always a pointer to an
// immutable linked-list node, per the bounded-register scheme of Section
// 9.1).  Every base-register access calls StepCounter::bump() so step
// complexity is measurable (Claim 8.1).
#pragma once

#include <memory>
#include <vector>

#include "selin/util/step_counter.hpp"
#include "selin/util/types.hpp"

namespace selin {

template <typename T>
class Snapshot {
 public:
  virtual ~Snapshot() = default;

  /// Write v into entry i (i = index of the calling process).
  virtual void write(ProcId i, T v) = 0;

  /// Atomically read all n entries.
  virtual std::vector<T> scan(ProcId i) = 0;

  virtual size_t size() const = 0;
  virtual const char* name() const = 0;
};

enum class SnapshotKind {
  kMutex,          ///< blocking baseline (differential testing only)
  kDoubleCollect,  ///< lock-free double collect; fast, scans may retry
  kAfek,           ///< wait-free with helping (Afek et al. [1]), O(n^2) steps
};

const char* snapshot_kind_name(SnapshotKind k);

template <typename T>
std::unique_ptr<Snapshot<T>> make_snapshot(SnapshotKind kind, size_t n,
                                           T initial);

}  // namespace selin

#include "selin/snapshot/afek_snapshot.hpp"
#include "selin/snapshot/double_collect_snapshot.hpp"
#include "selin/snapshot/mutex_snapshot.hpp"

namespace selin {

template <typename T>
std::unique_ptr<Snapshot<T>> make_snapshot(SnapshotKind kind, size_t n,
                                           T initial) {
  switch (kind) {
    case SnapshotKind::kMutex:
      return std::make_unique<MutexSnapshot<T>>(n, initial);
    case SnapshotKind::kDoubleCollect:
      return std::make_unique<DoubleCollectSnapshot<T>>(n, initial);
    case SnapshotKind::kAfek:
      return std::make_unique<AfekSnapshot<T>>(n, initial);
  }
  return nullptr;
}

}  // namespace selin
