#include "selin/snapshot/snapshot.hpp"

namespace selin {

template class DoubleCollectSnapshot<const void*>;
template class DoubleCollectSnapshot<uint64_t>;

}  // namespace selin
