// Wait-free atomic snapshot of Afek, Attiya, Dolev, Gafni, Merritt and
// Shavit [1] — the implementation the paper's Lines 02/05 (Figure 7) and
// Lines 07/08 (Figure 10) assume: linearizable, wait-free, built from
// single-writer read/write registers only (consensus number 1).
//
// Each register holds (value, seq, embedded scan).  A Write first performs an
// embedded Scan, then publishes (v, seq+1, scan).  A Scan repeatedly double
// collects; a clean double collect is returned directly, and otherwise some
// writer moved — after a writer is seen to move *twice* during one Scan, its
// embedded scan is entirely contained in the Scan's interval and is borrowed.
// At most n+1 double collects, hence O(n^2) reads per Scan and per Write.
#pragma once

#include <atomic>
#include <vector>

#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"
#include "selin/util/types.hpp"

namespace selin {

template <typename T>
class Snapshot;

template <typename T>
class AfekSnapshot final : public Snapshot<T> {
 public:
  AfekSnapshot(size_t n, T initial) : entries_(n) {
    // The initial embedded scan is the all-initial vector.
    std::vector<T> init(n, initial);
    const T* vec = arena_.copy_range(init.data(), n);
    for (auto& e : entries_) {
      e.cell.store(arena_.create<Cell>(Cell{initial, 0, vec}),
                   std::memory_order_relaxed);
    }
  }

  void write(ProcId i, T v) override {
    std::vector<T> embedded = scan(i);
    Cell* old = entries_[i].cell.load(std::memory_order_relaxed);
    Cell* neu = arena_.create<Cell>(
        Cell{v, old->seq + 1, arena_.copy_range(embedded.data(),
                                                embedded.size())});
    StepCounter::bump();
    entries_[i].cell.store(neu, std::memory_order_release);
  }

  std::vector<T> scan(ProcId /*i*/) override {
    const size_t n = entries_.size();
    std::vector<const Cell*> a(n), b(n);
    std::vector<uint8_t> moved(n, 0);
    collect(a);
    for (;;) {
      collect(b);
      bool clean = true;
      for (size_t k = 0; k < n; ++k) {
        if (a[k]->seq != b[k]->seq) {
          clean = false;
          if (moved[k]) {
            // k moved twice within this scan: its embedded scan was taken
            // entirely inside our interval; borrow it.
            std::vector<T> out(b[k]->embedded, b[k]->embedded + n);
            return out;
          }
          moved[k] = 1;
        }
      }
      if (clean) {
        std::vector<T> out(n);
        for (size_t k = 0; k < n; ++k) out[k] = b[k]->value;
        return out;
      }
      a.swap(b);
    }
  }

  size_t size() const override { return entries_.size(); }
  const char* name() const override { return "afek"; }

 private:
  struct Cell {
    T value;
    uint64_t seq;
    const T* embedded;  // arena-owned array of size n
  };
  struct alignas(64) Entry {
    std::atomic<Cell*> cell{nullptr};
  };

  void collect(std::vector<const Cell*>& out) {
    for (size_t k = 0; k < entries_.size(); ++k) {
      StepCounter::bump();
      out[k] = entries_[k].cell.load(std::memory_order_acquire);
    }
  }

  Arena arena_;
  std::vector<Entry> entries_;
};

}  // namespace selin
