// Blocking snapshot baseline: a mutex around the array.  Trivially
// linearizable but NOT wait-free — used only for differential testing and as
// the "blocking verifier" strawman the introduction argues against (a
// blocking V would weaken A's progress property).
#pragma once

#include <mutex>
#include <vector>

#include "selin/util/step_counter.hpp"
#include "selin/util/types.hpp"

namespace selin {

template <typename T>
class Snapshot;

template <typename T>
class MutexSnapshot final : public Snapshot<T> {
 public:
  MutexSnapshot(size_t n, T initial) : mem_(n, initial) {}

  void write(ProcId i, T v) override {
    std::lock_guard<std::mutex> lock(mu_);
    StepCounter::bump();
    mem_[i] = v;
  }

  std::vector<T> scan(ProcId /*i*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t k = 0; k < mem_.size(); ++k) StepCounter::bump();
    return mem_;
  }

  size_t size() const override { return mem_.size(); }
  const char* name() const override { return "mutex"; }

 private:
  std::mutex mu_;
  std::vector<T> mem_;
};

}  // namespace selin
