#include "selin/snapshot/snapshot.hpp"

namespace selin {

template class AfekSnapshot<const void*>;
template class AfekSnapshot<uint64_t>;

}  // namespace selin
