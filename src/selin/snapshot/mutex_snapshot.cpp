#include "selin/snapshot/snapshot.hpp"

namespace selin {

const char* snapshot_kind_name(SnapshotKind k) {
  switch (k) {
    case SnapshotKind::kMutex: return "mutex";
    case SnapshotKind::kDoubleCollect: return "double-collect";
    case SnapshotKind::kAfek: return "afek";
  }
  return "?";
}

// Compile-check the template for the pointer payloads used across selin.
template class MutexSnapshot<const void*>;
template class MutexSnapshot<uint64_t>;

}  // namespace selin
