// Lock-free double-collect snapshot.
//
// Each entry is a single-writer register holding (value, seq); scan collects
// all entries twice and returns when the two collects observed identical
// sequence numbers — the classic argument shows the returned vector was
// simultaneously present at every point between the collects, so scans are
// linearizable.  Writes are wait-free (one store); scans are lock-free but
// can be starved by concurrent writers, which is why the paper's wait-free
// claims are exercised with AfekSnapshot and this variant is offered as the
// fast practical alternative (cf. [99], "implementations whose theoretical
// step complexity is worse but with good performance in real-world systems").
#pragma once

#include <atomic>
#include <vector>

#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"
#include "selin/util/types.hpp"

namespace selin {

template <typename T>
class Snapshot;

template <typename T>
class DoubleCollectSnapshot final : public Snapshot<T> {
 public:
  DoubleCollectSnapshot(size_t n, T initial) : entries_(n) {
    for (auto& e : entries_) {
      e.cell.store(arena_.create<Cell>(Cell{initial, 0}),
                   std::memory_order_relaxed);
    }
  }

  void write(ProcId i, T v) override {
    Cell* old = entries_[i].cell.load(std::memory_order_relaxed);
    Cell* neu = arena_.create<Cell>(Cell{v, old->seq + 1});
    StepCounter::bump();
    entries_[i].cell.store(neu, std::memory_order_release);
  }

  std::vector<T> scan(ProcId /*i*/) override {
    const size_t n = entries_.size();
    std::vector<const Cell*> a(n);
    collect(a);
    for (;;) {
      std::vector<const Cell*> b(n);
      collect(b);
      bool clean = true;
      for (size_t k = 0; k < n; ++k) {
        if (a[k]->seq != b[k]->seq) {
          clean = false;
          break;
        }
      }
      if (clean) {
        std::vector<T> out(n);
        for (size_t k = 0; k < n; ++k) out[k] = b[k]->value;
        return out;
      }
      a.swap(b);
    }
  }

  size_t size() const override { return entries_.size(); }
  const char* name() const override { return "double-collect"; }

 private:
  struct Cell {
    T value;
    uint64_t seq;
  };
  struct alignas(64) Entry {
    std::atomic<Cell*> cell{nullptr};
  };

  void collect(std::vector<const Cell*>& out) {
    for (size_t k = 0; k < entries_.size(); ++k) {
      StepCounter::bump();
      out[k] = entries_[k].cell.load(std::memory_order_acquire);
    }
  }

  Arena arena_;
  std::vector<Entry> entries_;
};

}  // namespace selin
