// Interval-linearizability (Castañeda–Rajsbaum–Raynal [17]; Section 7.1).
//
// The third member of GenLin: an operation need not take effect at a single
// point — it may overlap an *interval* of other operations in the
// interval-sequential witness.  Concretely, the specification is a state
// machine that consumes *sets of invocations* and emits responses to
// machine-open operations at later transitions, so an operation is "open in
// the machine" across several steps.
//
// The checker generalizes the frontier scheme of LinMonitor with two closure
// moves instead of one:
//   (a) machine-invoke any non-empty subset of history-open operations that
//       are not yet in the machine (the I-sets of an interval-sequential
//       history), and
//   (b) machine-respond any machine-open operation, recording the
//       deterministic value the machine assigns.
// A history response event then filters configurations on the recorded
// value, exactly like LinMonitor.
//
// Scope note: this engine supports *deterministic-response* interval
// specifications (respond() is a function of the state and the operation),
// and treats responses one at a time — specs whose semantics depend on
// response *grouping* are out of scope.  Both restrictions are vacuous for
// the paper's exemplar objects (tasks such as write-snapshot), and
// linearizability/set-linearizability embed via singleton I-sets.
#pragma once

#include <memory>
#include <span>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"
#include "selin/spec/spec.hpp"

namespace selin::parallel {
class Executor;
}  // namespace selin::parallel

namespace selin {

/// Deterministic-response interval-sequential specification.
class IntervalSeqSpec {
 public:
  virtual ~IntervalSeqSpec() = default;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<SeqState> initial() const = 0;

  /// One I-step: a non-empty set of operations enters the machine
  /// simultaneously.  Returns false if the set is not enabled in this state.
  virtual bool invoke_set(SeqState& state,
                          std::span<const OpDesc> batch) const = 0;

  /// Respond to a machine-open operation: mutate the state if needed and
  /// return the response value.  Deterministic.
  virtual Value respond(SeqState& state, const OpDesc& op) const = 0;
};

/// A facade over engine::FrontierEngine with the interval policy.
/// `threads > 1` expands the two-move closure on a fingerprint-routed shard
/// pool; `engine::kAutoThreads` picks sequential vs sharded per feed round.
/// Verdicts and frontier sizes are identical across all modes; the
/// sequential engine at `threads == 1` is the default.
class IntervalLinMonitor final : public MembershipMonitor {
 public:
  /// `executor`: shared worker lanes for the parallel rounds (nullptr = a
  /// private pool created lazily — the single-tenant default).
  /// `priors`: warm-start knob seeds for the tuned adaptive engine (see
  /// LinMonitor); ignored by non-tuned engines, never affects verdicts.
  explicit IntervalLinMonitor(
      const IntervalSeqSpec& spec, size_t max_configs = 1 << 18,
      size_t threads = 1,
      std::shared_ptr<parallel::Executor> executor = nullptr,
      engine::TunerPriors priors = {});
  IntervalLinMonitor(const IntervalLinMonitor& other);
  ~IntervalLinMonitor() override;

  void feed(const Event& e) override;
  /// Batched feed: closure/dedup amortized over each consecutive run of
  /// responses; verdict and frontier identical to per-event feeding.
  void feed_batch(std::span<const Event> events) override;
  bool ok() const override;
  std::unique_ptr<MembershipMonitor> clone() const override;

  /// Forwarded to the underlying engine; clones inherit the attachment.
  void attach_obs(const obs::EngineHooks* hooks) override;

  /// Sticky overflow flag; see LinMonitor::overflowed().
  bool overflowed() const;

  /// Number of live configurations (diagnostics / determinism tests).
  size_t frontier_size() const;

  /// Execution counters of the underlying engine (see engine/stats.hpp).
  engine::EngineStats stats() const;

  /// Order-independent digest of the live frontier (XOR of mixed config
  /// fingerprints) — representation/mode parity checks.
  uint64_t frontier_digest() const;

  /// Op-set footprint of the live frontier (bench_frontier_memory); walks
  /// every configuration, so poll sparingly.
  engine::FrontierFootprint footprint() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot test: is `h` interval-linearizable w.r.t. `spec`?
bool interval_linearizable(const IntervalSeqSpec& spec, const History& h,
                           size_t max_configs = 1 << 18, size_t threads = 1);

/// GenLin adapter (owns the spec).  `executor` is the shared lane provider
/// for every monitor the object hands out (nullptr = private pools).
std::unique_ptr<GenLinObject> make_interval_linearizable_object(
    std::unique_ptr<IntervalSeqSpec> spec, size_t max_configs = 1 << 18,
    size_t threads = 1, std::shared_ptr<parallel::Executor> executor = nullptr,
    engine::TunerPriors priors = {});

/// The write-snapshot task as an interval-sequential specification (outputs
/// are bitmask views; n ≤ 64) — cross-validated in tests against the direct
/// task monitor of make_write_snapshot_object().
std::unique_ptr<IntervalSeqSpec> make_write_snapshot_interval_spec();

}  // namespace selin
