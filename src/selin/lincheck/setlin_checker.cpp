#include "selin/lincheck/setlin_checker.hpp"

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"

namespace selin {

using lincheck::Config;
using lincheck::DedupEngine;

struct SetLinMonitor::Impl {
  const SetSeqSpec* spec;
  size_t max_configs;
  bool ok = true;
  std::vector<Config> frontier;
  std::vector<OpDesc> open;

  DedupEngine eng;

  Impl(const SetSeqSpec& s, size_t cap) : spec(&s), max_configs(cap) {
    Config c;
    c.state = s.initial();
    frontier.push_back(std::move(c));
  }

  Impl(const Impl& o)
      : spec(o.spec), max_configs(o.max_configs), ok(o.ok), open(o.open) {
    frontier.reserve(o.frontier.size());
    for (const Config& c : o.frontier) frontier.push_back(c.clone());
  }

  // Closure under simultaneous linearization of any non-empty batch of open,
  // not-yet-linearized operations.
  std::vector<Config> closure() {
    eng.seen.clear();
    std::vector<Config> result;
    result.reserve(frontier.size() * 2);
    for (const Config& c : frontier) {
      if (eng.probe(eng.seen, c)) result.push_back(c.clone_with(eng.pool));
    }
    std::vector<OpDesc> cand;
    std::vector<OpDesc> batch;
    std::vector<Value> out;
    for (size_t i = 0; i < result.size(); ++i) {
      // Candidate batch members for this configuration.
      cand.clear();
      for (const OpDesc& od : open) {
        if (result[i].find(od.id) == nullptr) cand.push_back(od);
      }
      if (cand.empty() || cand.size() > 20) {
        if (cand.size() > 20) throw CheckerOverflow{};
        continue;
      }
      for (uint32_t mask = 1; mask < (1u << cand.size()); ++mask) {
        batch.clear();
        for (size_t b = 0; b < cand.size(); ++b) {
          if (mask & (1u << b)) batch.push_back(cand[b]);
        }
        Config next = result[i].clone_with(eng.pool);
        out.assign(batch.size(), kNoArg);
        if (!spec->step_set(*next.state, batch, out)) {
          eng.pool.release(std::move(next.state));
          continue;
        }
        for (size_t b = 0; b < batch.size(); ++b) {
          next.add(batch[b].id, out[b]);
        }
        if (eng.probe(eng.seen, next)) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        } else {
          eng.pool.release(std::move(next.state));
        }
      }
    }
    return result;
  }

  void feed(const Event& e) {
    if (!ok) return;
    if (e.is_inv()) {
      open.push_back(e.op);
      return;
    }
    std::vector<Config> expanded = closure();
    std::vector<Config> filtered;
    filtered.reserve(expanded.size());
    eng.filter_seen.clear();
    for (Config& c : expanded) {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) {
        eng.pool.release(std::move(c.state));
        continue;
      }
      c.remove(e.op.id);
      if (eng.probe(eng.filter_seen, c)) {
        filtered.push_back(std::move(c));
      } else {
        eng.pool.release(std::move(c.state));
      }
    }
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].id == e.op.id) {
        open[i] = open.back();
        open.pop_back();
        break;
      }
    }
    for (Config& c : frontier) eng.pool.release(std::move(c.state));
    frontier = std::move(filtered);
    if (frontier.empty()) ok = false;
  }
};

SetLinMonitor::SetLinMonitor(const SetSeqSpec& spec, size_t max_configs)
    : impl_(std::make_unique<Impl>(spec, max_configs)) {}

SetLinMonitor::SetLinMonitor(const SetLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

SetLinMonitor::~SetLinMonitor() = default;

void SetLinMonitor::feed(const Event& e) { impl_->feed(e); }
bool SetLinMonitor::ok() const { return impl_->ok; }

std::unique_ptr<MembershipMonitor> SetLinMonitor::clone() const {
  return std::make_unique<SetLinMonitor>(*this);
}

bool set_linearizable(const SetSeqSpec& spec, const History& h,
                      size_t max_configs) {
  SetLinMonitor m(spec, max_configs);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

}  // namespace selin
