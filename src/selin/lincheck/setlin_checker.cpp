#include "selin/lincheck/setlin_checker.hpp"

#include <unordered_set>

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"

namespace selin {

using lincheck::Config;

struct SetLinMonitor::Impl {
  const SetSeqSpec* spec;
  size_t max_configs;
  bool ok = true;
  std::vector<Config> frontier;
  std::vector<OpDesc> open;

  Impl(const SetSeqSpec& s, size_t cap) : spec(&s), max_configs(cap) {
    Config c;
    c.state = s.initial();
    frontier.push_back(std::move(c));
  }

  Impl(const Impl& o)
      : spec(o.spec), max_configs(o.max_configs), ok(o.ok), open(o.open) {
    frontier.reserve(o.frontier.size());
    for (const Config& c : o.frontier) frontier.push_back(c.clone());
  }

  // Closure under simultaneous linearization of any non-empty batch of open,
  // not-yet-linearized operations.
  std::vector<Config> closure() const {
    std::vector<Config> result;
    std::unordered_set<std::string> seen;
    for (const Config& c : frontier) {
      std::string k = c.key();
      if (seen.insert(std::move(k)).second) result.push_back(c.clone());
    }
    for (size_t i = 0; i < result.size(); ++i) {
      // Candidate batch members for this configuration.
      std::vector<OpDesc> cand;
      for (const OpDesc& od : open) {
        if (result[i].find(od.id) == nullptr) cand.push_back(od);
      }
      if (cand.empty() || cand.size() > 20) {
        if (cand.size() > 20) throw CheckerOverflow{};
        continue;
      }
      for (uint32_t mask = 1; mask < (1u << cand.size()); ++mask) {
        std::vector<OpDesc> batch;
        for (size_t b = 0; b < cand.size(); ++b) {
          if (mask & (1u << b)) batch.push_back(cand[b]);
        }
        Config next = result[i].clone();
        std::vector<Value> out(batch.size());
        if (!spec->step_set(*next.state, batch, out)) continue;
        for (size_t b = 0; b < batch.size(); ++b) {
          next.add(batch[b].id, out[b]);
        }
        std::string k = next.key();
        if (seen.insert(std::move(k)).second) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        }
      }
    }
    return result;
  }

  void feed(const Event& e) {
    if (!ok) return;
    if (e.is_inv()) {
      open.push_back(e.op);
      return;
    }
    std::vector<Config> expanded = closure();
    std::vector<Config> filtered;
    std::unordered_set<std::string> seen;
    for (Config& c : expanded) {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) continue;
      c.remove(e.op.id);
      std::string k = c.key();
      if (seen.insert(std::move(k)).second) filtered.push_back(std::move(c));
    }
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].id == e.op.id) {
        open.erase(open.begin() + i);
        break;
      }
    }
    frontier = std::move(filtered);
    if (frontier.empty()) ok = false;
  }
};

SetLinMonitor::SetLinMonitor(const SetSeqSpec& spec, size_t max_configs)
    : impl_(std::make_unique<Impl>(spec, max_configs)) {}

SetLinMonitor::SetLinMonitor(const SetLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

SetLinMonitor::~SetLinMonitor() = default;

void SetLinMonitor::feed(const Event& e) { impl_->feed(e); }
bool SetLinMonitor::ok() const { return impl_->ok; }

std::unique_ptr<MembershipMonitor> SetLinMonitor::clone() const {
  return std::make_unique<SetLinMonitor>(*this);
}

bool set_linearizable(const SetSeqSpec& spec, const History& h,
                      size_t max_configs) {
  SetLinMonitor m(spec, max_configs);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

}  // namespace selin
