#include "selin/lincheck/setlin_checker.hpp"

#include "selin/engine/frontier_engine.hpp"
#include "selin/engine/policies.hpp"

namespace selin {

// SetLinMonitor is a facade over the generic frontier engine with the
// set-linearizability policy (engine/policies.hpp): a closure move
// linearizes a non-empty *batch* of open operations simultaneously.

struct SetLinMonitor::Impl {
  engine::FrontierEngine<engine::SetLinPolicy> eng;

  Impl(const SetSeqSpec& s, size_t cap, size_t threads,
       std::shared_ptr<parallel::Executor> exec, engine::TunerPriors priors)
      : eng(engine::SetLinPolicy{&s}, cap, threads, std::move(exec), priors) {}
};

SetLinMonitor::SetLinMonitor(const SetSeqSpec& spec, size_t max_configs,
                             size_t threads,
                             std::shared_ptr<parallel::Executor> executor,
                             engine::TunerPriors priors)
    : impl_(std::make_unique<Impl>(spec, max_configs, threads,
                                   std::move(executor), priors)) {}

SetLinMonitor::SetLinMonitor(const SetLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

SetLinMonitor::~SetLinMonitor() = default;

void SetLinMonitor::feed(const Event& e) { impl_->eng.feed(e); }
void SetLinMonitor::feed_batch(std::span<const Event> events) {
  impl_->eng.feed_batch(events);
}
bool SetLinMonitor::ok() const { return impl_->eng.ok(); }
void SetLinMonitor::attach_obs(const obs::EngineHooks* hooks) {
  impl_->eng.set_obs(hooks);
}
bool SetLinMonitor::overflowed() const { return impl_->eng.overflowed(); }
size_t SetLinMonitor::frontier_size() const {
  return impl_->eng.frontier_size();
}
engine::EngineStats SetLinMonitor::stats() const { return impl_->eng.stats(); }
uint64_t SetLinMonitor::frontier_digest() const {
  return impl_->eng.frontier_digest();
}
engine::FrontierFootprint SetLinMonitor::footprint() const {
  return impl_->eng.footprint();
}

std::unique_ptr<MembershipMonitor> SetLinMonitor::clone() const {
  return std::make_unique<SetLinMonitor>(*this);
}

bool set_linearizable(const SetSeqSpec& spec, const History& h,
                      size_t max_configs, size_t threads) {
  SetLinMonitor m(spec, max_configs, threads);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

}  // namespace selin
