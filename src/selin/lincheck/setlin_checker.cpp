#include "selin/lincheck/setlin_checker.hpp"

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"
#include "selin/parallel/sharded_frontier.hpp"

namespace selin {

using lincheck::Config;
using lincheck::DedupEngine;

struct SetLinMonitor::Impl {
  const SetSeqSpec* spec;
  size_t max_configs;
  size_t threads;
  bool ok = true;
  bool overflowed = false;
  std::vector<Config> frontier;  // sequential engine (threads == 1)
  std::vector<OpDesc> open;

  DedupEngine eng;

  // Parallel engine (threads > 1) plus per-lane batch-enumeration scratch.
  std::unique_ptr<parallel::ShardPool> pool;
  std::unique_ptr<parallel::ShardedFrontier<Config>> shards;
  struct alignas(64) Scratch {  // lanes write these headers in the inner
    std::vector<OpDesc> cand;   // mask loop; keep neighbors off one line
    std::vector<OpDesc> batch;
    std::vector<Value> out;
  };
  std::vector<Scratch> scratch;

  Impl(const SetSeqSpec& s, size_t cap, size_t nthreads)
      : spec(&s), max_configs(cap), threads(nthreads == 0 ? 1 : nthreads) {
    Config c;
    c.state = s.initial();
    if (threads > 1) {
      make_shards();
      shards->seed(std::move(c));
    } else {
      frontier.push_back(std::move(c));
    }
  }

  Impl(const Impl& o)
      : spec(o.spec), max_configs(o.max_configs), threads(o.threads),
        ok(o.ok), overflowed(o.overflowed), open(o.open) {
    if (threads > 1) {
      make_shards();
      shards->clone_from(*o.shards);
    } else {
      frontier.reserve(o.frontier.size());
      for (const Config& c : o.frontier) frontier.push_back(c.clone());
    }
  }

  void make_shards() {
    pool = std::make_unique<parallel::ShardPool>(threads);
    shards = std::make_unique<parallel::ShardedFrontier<Config>>(*pool,
                                                                 max_configs);
    scratch.resize(threads);
  }

  size_t frontier_size() const {
    return threads > 1 ? shards->size() : frontier.size();
  }

  // Closure under simultaneous linearization of any non-empty batch of open,
  // not-yet-linearized operations.
  std::vector<Config> closure() {
    eng.seen.clear();
    std::vector<Config> result;
    result.reserve(frontier.size() * 2);
    for (const Config& c : frontier) {
      if (eng.probe(eng.seen, c)) result.push_back(c.clone_with(eng.pool));
    }
    std::vector<OpDesc> cand;
    std::vector<OpDesc> batch;
    std::vector<Value> out;
    for (size_t i = 0; i < result.size(); ++i) {
      // Candidate batch members for this configuration.
      cand.clear();
      for (const OpDesc& od : open) {
        if (result[i].find(od.id) == nullptr) cand.push_back(od);
      }
      if (cand.empty() || cand.size() > 20) {
        if (cand.size() > 20) throw CheckerOverflow{};
        continue;
      }
      for (uint32_t mask = 1; mask < (1u << cand.size()); ++mask) {
        batch.clear();
        for (size_t b = 0; b < cand.size(); ++b) {
          if (mask & (1u << b)) batch.push_back(cand[b]);
        }
        Config next = result[i].clone_with(eng.pool);
        out.assign(batch.size(), kNoArg);
        if (!spec->step_set(*next.state, batch, out)) {
          eng.pool.release(std::move(next.state));
          continue;
        }
        for (size_t b = 0; b < batch.size(); ++b) {
          next.add(batch[b].id, out[b]);
        }
        if (eng.probe(eng.seen, next)) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        } else {
          eng.pool.release(std::move(next.state));
        }
      }
    }
    return result;
  }

  void feed(const Event& e) {
    if (!ok || overflowed) return;
    if (e.is_inv()) {
      open.push_back(e.op);
      return;
    }
    try {
      if (threads > 1) {
        feed_res_parallel(e);
      } else {
        feed_res_sequential(e);
      }
    } catch (...) {
      // Release in-flight configurations and poison the monitor (sticky
      // overflowed()); the exception still propagates to the caller.
      overflowed = true;
      if (threads > 1) {
        shards->release_all();
      } else {
        for (Config& c : frontier) eng.pool.release(std::move(c.state));
        frontier.clear();
      }
      throw;
    }
    erase_open(e.op.id);
  }

  void feed_res_sequential(const Event& e) {
    std::vector<Config> expanded = closure();
    std::vector<Config> filtered;
    filtered.reserve(expanded.size());
    eng.filter_seen.clear();
    for (Config& c : expanded) {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) {
        eng.pool.release(std::move(c.state));
        continue;
      }
      c.remove(e.op.id);
      if (eng.probe(eng.filter_seen, c)) {
        filtered.push_back(std::move(c));
      } else {
        eng.pool.release(std::move(c.state));
      }
    }
    for (Config& c : frontier) eng.pool.release(std::move(c.state));
    frontier = std::move(filtered);
    if (frontier.empty()) ok = false;
  }

  void feed_res_parallel(const Event& e) {
    shards->closure([this](size_t s, const Config& c, auto& emit) {
      DedupEngine& weng = pool->engine(s);
      Scratch& sc = scratch[s];
      sc.cand.clear();
      for (const OpDesc& od : open) {
        if (c.find(od.id) == nullptr) sc.cand.push_back(od);
      }
      if (sc.cand.empty()) return;
      if (sc.cand.size() > 20) throw CheckerOverflow{};
      for (uint32_t mask = 1; mask < (1u << sc.cand.size()); ++mask) {
        sc.batch.clear();
        for (size_t b = 0; b < sc.cand.size(); ++b) {
          if (mask & (1u << b)) sc.batch.push_back(sc.cand[b]);
        }
        Config next = c.clone_with(weng.pool);
        sc.out.assign(sc.batch.size(), kNoArg);
        if (!spec->step_set(*next.state, sc.batch, sc.out)) {
          weng.pool.release(std::move(next.state));
          continue;
        }
        for (size_t b = 0; b < sc.batch.size(); ++b) {
          next.add(sc.batch[b].id, sc.out[b]);
        }
        emit(std::move(next));
      }
    });
    shards->filter([&e](size_t, Config& c) {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) return false;
      c.remove(e.op.id);
      return true;
    });
    if (shards->size() == 0) ok = false;
  }

  void erase_open(OpId id) {
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].id == id) {
        open[i] = open.back();
        open.pop_back();
        break;
      }
    }
  }
};

SetLinMonitor::SetLinMonitor(const SetSeqSpec& spec, size_t max_configs,
                             size_t threads)
    : impl_(std::make_unique<Impl>(spec, max_configs, threads)) {}

SetLinMonitor::SetLinMonitor(const SetLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

SetLinMonitor::~SetLinMonitor() = default;

void SetLinMonitor::feed(const Event& e) { impl_->feed(e); }
bool SetLinMonitor::ok() const { return impl_->ok; }
bool SetLinMonitor::overflowed() const { return impl_->overflowed; }
size_t SetLinMonitor::frontier_size() const { return impl_->frontier_size(); }

std::unique_ptr<MembershipMonitor> SetLinMonitor::clone() const {
  return std::make_unique<SetLinMonitor>(*this);
}

bool set_linearizable(const SetSeqSpec& spec, const History& h,
                      size_t max_configs, size_t threads) {
  SetLinMonitor m(spec, max_configs, threads);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

}  // namespace selin
