#include "selin/lincheck/checker.hpp"

#include "selin/lincheck/config.hpp"

namespace selin {

using lincheck::Config;
using lincheck::DedupEngine;

// ---------------------------------------------------------------------------
// LinMonitor
// ---------------------------------------------------------------------------

struct LinMonitor::Impl {
  const SeqSpec* spec;
  size_t max_configs;
  bool ok = true;
  std::vector<Config> frontier;
  std::vector<OpDesc> open;  // invoked, response not yet fed

  DedupEngine eng;

  Impl(const SeqSpec& s, size_t cap) : spec(&s), max_configs(cap) {
    Config c;
    c.state = s.initial();
    frontier.push_back(std::move(c));
  }

  Impl(const Impl& o) : spec(o.spec), max_configs(o.max_configs), ok(o.ok),
                        open(o.open) {
    frontier.reserve(o.frontier.size());
    for (const Config& c : o.frontier) frontier.push_back(c.clone());
  }

  // All configurations reachable from `frontier` by linearizing any sequence
  // of open, not-yet-linearized operations (BFS with dedup).
  std::vector<Config> closure() {
    eng.seen.clear();
    std::vector<Config> result;
    result.reserve(frontier.size() * 2);
    for (const Config& c : frontier) {
      if (eng.probe(eng.seen, c)) result.push_back(c.clone_with(eng.pool));
    }
    // Index-based BFS (result may reallocate).
    for (size_t i = 0; i < result.size(); ++i) {
      for (const OpDesc& od : open) {
        if (result[i].find(od.id) != nullptr) continue;
        Config next = result[i].clone_with(eng.pool);
        Value assigned = next.state->step(od.method, od.arg);
        next.add(od.id, assigned);
        if (eng.probe(eng.seen, next)) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        } else {
          eng.pool.release(std::move(next.state));
        }
      }
    }
    return result;
  }

  void feed(const Event& e) {
    if (!ok) return;
    if (e.is_inv()) {
      open.push_back(e.op);
      return;
    }
    // Response of e.op with result e.result: every surviving configuration
    // must have linearized e.op with exactly that result.
    std::vector<Config> expanded = closure();
    std::vector<Config> filtered;
    filtered.reserve(expanded.size());
    eng.filter_seen.clear();
    for (Config& c : expanded) {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) {
        eng.pool.release(std::move(c.state));
        continue;
      }
      c.remove(e.op.id);
      if (eng.probe(eng.filter_seen, c)) {
        filtered.push_back(std::move(c));
      } else {
        eng.pool.release(std::move(c.state));
      }
    }
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].id == e.op.id) {
        open[i] = open.back();  // order is irrelevant: swap-erase, not shift
        open.pop_back();
        break;
      }
    }
    for (Config& c : frontier) eng.pool.release(std::move(c.state));
    frontier = std::move(filtered);
    if (frontier.empty()) ok = false;
  }
};

LinMonitor::LinMonitor(const SeqSpec& spec, size_t max_configs)
    : impl_(std::make_unique<Impl>(spec, max_configs)) {}

LinMonitor::LinMonitor(const LinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

LinMonitor::~LinMonitor() = default;

void LinMonitor::feed(const Event& e) { impl_->feed(e); }
bool LinMonitor::ok() const { return impl_->ok; }
size_t LinMonitor::frontier_size() const { return impl_->frontier.size(); }

std::unique_ptr<MembershipMonitor> LinMonitor::clone() const {
  return std::make_unique<LinMonitor>(*this);
}

bool linearizable(const SeqSpec& spec, const History& h, size_t max_configs) {
  LinMonitor m(spec, max_configs);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

// ---------------------------------------------------------------------------
// find_linearization: memoized DFS recording the linearization order.
// ---------------------------------------------------------------------------

namespace {

struct DfsCtx {
  const SeqSpec* spec;
  const History* h;
  DedupEngine eng;
  FpSet failed{eng.arena};  // memo of dead (event index, config) states
  size_t max_visited;
  size_t visited = 0;

  // The linearization order: (op, result assigned by the machine).
  std::vector<std::pair<OpDesc, Value>> order;

  uint64_t memo_fp(size_t idx, const Config& c) {
    uint64_t fp = fph::mix(c.fingerprint() ^ fph::mix(idx));
    eng.audit(fp, [&] { return std::to_string(idx) + "#" + c.key(); });
    return fp;
  }

  bool dfs(size_t idx, Config& c, std::vector<OpDesc>& open) {
    if (++visited > max_visited) throw CheckerOverflow{};
    if (idx == h->size()) return true;
    uint64_t key = memo_fp(idx, c);
    if (failed.contains(key)) return false;

    const Event& e = (*h)[idx];
    bool found = false;
    if (e.is_inv()) {
      open.push_back(e.op);
      found = dfs(idx + 1, c, open);
      if (!found) open.pop_back();
    } else {
      const lincheck::LinearizedOp* l = c.find(e.op.id);
      if (l != nullptr) {
        if (l->assigned == e.result) {
          Config next = c.clone_with(eng.pool);
          next.remove(e.op.id);
          std::vector<OpDesc> next_open;
          next_open.reserve(open.size());
          for (const OpDesc& od : open) {
            if (od.id != e.op.id) next_open.push_back(od);
          }
          found = dfs(idx + 1, next, next_open);
          if (found) {
            eng.pool.release(std::move(c.state));
            c = std::move(next);
            open = std::move(next_open);
          } else {
            eng.pool.release(std::move(next.state));
          }
        }
      } else {
        // Must linearize some open op now; try each (preferring e.op, which
        // prunes fastest when it matches immediately).
        std::vector<size_t> cand;
        cand.reserve(open.size());
        for (size_t i = 0; i < open.size(); ++i) {
          if (c.find(open[i].id) == nullptr) {
            if (open[i].id == e.op.id) cand.insert(cand.begin(), i);
            else cand.push_back(i);
          }
        }
        for (size_t i : cand) {
          Config next = c.clone_with(eng.pool);
          Value assigned = next.state->step(open[i].method, open[i].arg);
          if (open[i].id == e.op.id && assigned != e.result) {
            eng.pool.release(std::move(next.state));
            continue;
          }
          next.add(open[i].id, assigned);
          size_t order_mark = order.size();
          order.emplace_back(open[i], assigned);
          if (dfs(idx, next, open)) {  // same event, new machine state
            eng.pool.release(std::move(c.state));
            c = std::move(next);
            found = true;
            break;
          }
          eng.pool.release(std::move(next.state));
          order.resize(order_mark);
        }
      }
    }
    if (!found) failed.insert(key);
    return found;
  }
};

}  // namespace

std::optional<History> find_linearization(const SeqSpec& spec,
                                          const History& h,
                                          size_t max_visited) {
  DfsCtx ctx;
  ctx.spec = &spec;
  ctx.h = &h;
  ctx.max_visited = max_visited;

  Config c;
  c.state = spec.initial();
  std::vector<OpDesc> open;
  if (!ctx.dfs(0, c, open)) return std::nullopt;

  History s;
  s.reserve(ctx.order.size() * 2);
  for (const auto& [op, assigned] : ctx.order) {
    s.push_back(Event::inv(op));
    s.push_back(Event::res(op, assigned));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Brute-force oracle (tests only).
// ---------------------------------------------------------------------------

namespace {

// Enumerate linearization orders of a subset of ops respecting real-time
// order and the spec; complete ops must be included with matching results,
// pending ops are optional with any spec result.
struct Brute {
  const SeqSpec* spec;
  std::vector<OpRecord> ops;
  const HistoryIndex* index;

  bool rec(SeqState& state, std::vector<bool>& used, size_t remaining_complete) {
    if (remaining_complete == 0) return true;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (used[i]) continue;
      // Real-time: an unused op j with res(j) < inv(i) must come first.
      bool blocked = false;
      for (size_t j = 0; j < ops.size(); ++j) {
        if (j == i || used[j]) continue;
        if (ops[j].complete() &&
            index->precedes(ops[j].op.id, ops[i].op.id)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      auto next = state.clone();
      Value got = next->step(ops[i].op.method, ops[i].op.arg);
      if (ops[i].complete() && got != *ops[i].result) continue;
      used[i] = true;
      if (rec(*next, used,
              remaining_complete - (ops[i].complete() ? 1 : 0))) {
        return true;
      }
      used[i] = false;
    }
    return false;
  }
};

}  // namespace

bool linearizable_bruteforce(const SeqSpec& spec, const History& h) {
  HistoryIndex index(h);
  Brute b;
  b.spec = &spec;
  b.ops = index.ops();
  b.index = &index;
  auto state = spec.initial();
  std::vector<bool> used(b.ops.size(), false);
  return b.rec(*state, used, index.complete_count());
}

}  // namespace selin
