#include "selin/lincheck/checker.hpp"

#include "selin/engine/frontier_engine.hpp"
#include "selin/engine/policies.hpp"
#include "selin/lincheck/config.hpp"

namespace selin {

using lincheck::Config;
using lincheck::DedupEngine;

// ---------------------------------------------------------------------------
// LinMonitor — a facade over the generic frontier engine with the
// linearizability policy (engine/policies.hpp).
// ---------------------------------------------------------------------------

struct LinMonitor::Impl {
  engine::FrontierEngine<engine::LinPolicy> eng;

  Impl(const SeqSpec& s, size_t cap, size_t threads,
       std::shared_ptr<parallel::Executor> exec, engine::TunerPriors priors)
      : eng(engine::LinPolicy{&s}, cap, threads, std::move(exec), priors) {}
};

LinMonitor::LinMonitor(const SeqSpec& spec, size_t max_configs, size_t threads,
                       std::shared_ptr<parallel::Executor> executor,
                       engine::TunerPriors priors)
    : impl_(std::make_unique<Impl>(spec, max_configs, threads,
                                   std::move(executor), priors)) {}

LinMonitor::LinMonitor(const LinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

LinMonitor::~LinMonitor() = default;

void LinMonitor::feed(const Event& e) { impl_->eng.feed(e); }
void LinMonitor::feed_batch(std::span<const Event> events) {
  impl_->eng.feed_batch(events);
}
bool LinMonitor::ok() const { return impl_->eng.ok(); }
void LinMonitor::attach_obs(const obs::EngineHooks* hooks) {
  impl_->eng.set_obs(hooks);
}
bool LinMonitor::overflowed() const { return impl_->eng.overflowed(); }
size_t LinMonitor::frontier_size() const { return impl_->eng.frontier_size(); }
engine::EngineStats LinMonitor::stats() const { return impl_->eng.stats(); }
uint64_t LinMonitor::frontier_digest() const {
  return impl_->eng.frontier_digest();
}
engine::FrontierFootprint LinMonitor::footprint() const {
  return impl_->eng.footprint();
}

std::unique_ptr<MembershipMonitor> LinMonitor::clone() const {
  return std::make_unique<LinMonitor>(*this);
}

bool linearizable(const SeqSpec& spec, const History& h, size_t max_configs,
                  size_t threads) {
  LinMonitor m(spec, max_configs, threads);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

// ---------------------------------------------------------------------------
// find_linearization: memoized DFS recording the linearization order.
//
// The search runs on an explicit frame stack — its depth is the history
// length plus the number of linearized operations, which for deep histories
// (hundreds of thousands of events) overflows the native stack long before
// max_visited trips.
// ---------------------------------------------------------------------------

namespace {

struct DfsCtx {
  const History* h;
  DedupEngine eng;
  FpSet failed{eng.arena};  // memo of dead (event index, config) states
  size_t max_visited;
  size_t visited = 0;

  // The linearization order: (op, result assigned by the machine).
  std::vector<std::pair<OpDesc, Value>> order;

  // One node of the search tree.  kInv/kResMatched frames have exactly one
  // child (advance past the event); kLinCandidates frames try linearizing
  // each eligible open op (preferring e.op, which prunes fastest when it
  // matches immediately) against the *same* event.
  struct Frame {
    enum Kind : uint8_t { kInv, kResMatched, kLinCandidates };
    size_t idx;
    Config c;
    std::vector<OpDesc> open;
    uint64_t memo_key = 0;
    size_t order_mark = 0;  // order.size() to restore when this frame fails
    Kind kind = kInv;
    bool entered = false;  // children enumerated?
    std::vector<size_t> cand;  // open indices still to try (kLinCandidates)
    size_t next_cand = 0;
  };

  uint64_t memo_fp(size_t idx, const Config& c) {
    uint64_t fp = fph::mix(c.fingerprint() ^ fph::mix(idx));
    eng.audit(fp, [&] { return std::to_string(idx) + "#" + c.key(); });
    return fp;
  }

  bool search(Config root) {
    std::vector<Frame> stack;
    {
      Frame f;
      f.idx = 0;
      f.c = std::move(root);
      stack.push_back(std::move(f));
    }

    auto pop_failed = [&] {
      Frame& f = stack.back();
      failed.insert(f.memo_key);
      order.resize(f.order_mark);
      eng.pool.release(std::move(f.c.state));
      stack.pop_back();
    };

    while (!stack.empty()) {
      Frame& f = stack.back();
      if (!f.entered) {
        f.entered = true;
        if (++visited > max_visited) throw CheckerOverflow{};
        if (f.idx == h->size()) return true;
        f.memo_key = memo_fp(f.idx, f.c);
        if (failed.contains(f.memo_key)) {
          order.resize(f.order_mark);
          eng.pool.release(std::move(f.c.state));
          stack.pop_back();
          continue;
        }
        const Event& e = (*h)[f.idx];
        if (e.is_inv()) {
          // Single child; a failed child fails this frame too, so the
          // config and open set move down instead of being cloned (the
          // parent pops with a released — null — state, which is fine).
          f.kind = Frame::kInv;
          Frame child;
          child.idx = f.idx + 1;
          child.c = std::move(f.c);
          child.open = std::move(f.open);
          child.open.push_back(e.op);
          child.order_mark = order.size();
          stack.push_back(std::move(child));
          continue;
        }
        const Value* assigned = f.c.find(e.op.id);
        if (assigned != nullptr) {
          if (*assigned != e.result) {
            pop_failed();
            continue;
          }
          // Single child as above: mutate the moved config in place.
          f.kind = Frame::kResMatched;
          Frame child;
          child.idx = f.idx + 1;
          child.c = std::move(f.c);
          child.c.remove(e.op.id);
          child.open = std::move(f.open);
          for (size_t i = 0; i < child.open.size(); ++i) {
            if (child.open[i].id == e.op.id) {
              child.open.erase(child.open.begin() +
                               static_cast<long>(i));  // keep order: the
              break;  // candidate preference below iterates open in order
            }
          }
          child.order_mark = order.size();
          stack.push_back(std::move(child));
          continue;
        }
        f.kind = Frame::kLinCandidates;
        f.cand.reserve(f.open.size());
        for (size_t i = 0; i < f.open.size(); ++i) {
          if (f.c.find(f.open[i].id) == nullptr) {
            if (f.open[i].id == e.op.id) f.cand.insert(f.cand.begin(), i);
            else f.cand.push_back(i);
          }
        }
        // fall through to the candidate loop below
      }

      // A child of this frame failed (or candidates are being enumerated).
      if (f.kind != Frame::kLinCandidates) {
        pop_failed();
        continue;
      }
      const Event& e = (*h)[f.idx];
      bool pushed = false;
      while (f.next_cand < f.cand.size()) {
        const OpDesc& op = f.open[f.cand[f.next_cand++]];
        Config next = f.c.clone_with(eng.pool);
        Value assigned = next.state->step(op.method, op.arg);
        if (op.id == e.op.id && assigned != e.result) {
          eng.pool.release(std::move(next.state));
          continue;
        }
        next.add(op.id, assigned);
        Frame child;
        child.idx = f.idx;  // same event, new machine state
        child.c = std::move(next);
        child.open = f.open;
        child.order_mark = order.size();
        order.emplace_back(op, assigned);
        stack.push_back(std::move(child));
        pushed = true;
        break;
      }
      if (!pushed) pop_failed();
    }
    return false;
  }
};

}  // namespace

std::optional<History> find_linearization(const SeqSpec& spec,
                                          const History& h,
                                          size_t max_visited) {
  DfsCtx ctx;
  ctx.h = &h;
  ctx.max_visited = max_visited;

  Config c;
  c.state = spec.initial();
  if (!ctx.search(std::move(c))) return std::nullopt;

  History s;
  s.reserve(ctx.order.size() * 2);
  for (const auto& [op, assigned] : ctx.order) {
    s.push_back(Event::inv(op));
    s.push_back(Event::res(op, assigned));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Brute-force oracle (tests only).
// ---------------------------------------------------------------------------

namespace {

// Enumerate linearization orders of a subset of ops respecting real-time
// order and the spec; complete ops must be included with matching results,
// pending ops are optional with any spec result.
struct Brute {
  const SeqSpec* spec;
  std::vector<OpRecord> ops;
  const HistoryIndex* index;

  bool rec(SeqState& state, std::vector<bool>& used, size_t remaining_complete) {
    if (remaining_complete == 0) return true;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (used[i]) continue;
      // Real-time: an unused op j with res(j) < inv(i) must come first.
      bool blocked = false;
      for (size_t j = 0; j < ops.size(); ++j) {
        if (j == i || used[j]) continue;
        if (ops[j].complete() &&
            index->precedes(ops[j].op.id, ops[i].op.id)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      auto next = state.clone();
      Value got = next->step(ops[i].op.method, ops[i].op.arg);
      if (ops[i].complete() && got != *ops[i].result) continue;
      used[i] = true;
      if (rec(*next, used,
              remaining_complete - (ops[i].complete() ? 1 : 0))) {
        return true;
      }
      used[i] = false;
    }
    return false;
  }
};

}  // namespace

bool linearizable_bruteforce(const SeqSpec& spec, const History& h) {
  HistoryIndex index(h);
  Brute b;
  b.spec = &spec;
  b.ops = index.ops();
  b.index = &index;
  auto state = spec.initial();
  std::vector<bool> used(b.ops.size(), false);
  return b.rec(*state, used, index.complete_count());
}

}  // namespace selin
