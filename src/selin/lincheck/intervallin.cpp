#include "selin/lincheck/intervallin.hpp"

#include <sstream>

#include "selin/engine/frontier_engine.hpp"
#include "selin/engine/policies.hpp"

namespace selin {

// IntervalLinMonitor is a facade over the generic frontier engine with the
// interval policy (engine/policies.hpp): the closure has two moves —
// machine-invoke a subset of history-open ops, machine-respond a
// machine-open op — over engine::IConfig configurations.

struct IntervalLinMonitor::Impl {
  engine::FrontierEngine<engine::IntervalPolicy> eng;

  Impl(const IntervalSeqSpec& s, size_t cap, size_t threads,
       std::shared_ptr<parallel::Executor> exec, engine::TunerPriors priors)
      : eng(engine::IntervalPolicy{&s}, cap, threads, std::move(exec),
            priors) {}
};

IntervalLinMonitor::IntervalLinMonitor(
    const IntervalSeqSpec& spec, size_t max_configs, size_t threads,
    std::shared_ptr<parallel::Executor> executor, engine::TunerPriors priors)
    : impl_(std::make_unique<Impl>(spec, max_configs, threads,
                                   std::move(executor), priors)) {}

IntervalLinMonitor::IntervalLinMonitor(const IntervalLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

IntervalLinMonitor::~IntervalLinMonitor() = default;

void IntervalLinMonitor::feed(const Event& e) { impl_->eng.feed(e); }
void IntervalLinMonitor::feed_batch(std::span<const Event> events) {
  impl_->eng.feed_batch(events);
}
bool IntervalLinMonitor::ok() const { return impl_->eng.ok(); }
void IntervalLinMonitor::attach_obs(const obs::EngineHooks* hooks) {
  impl_->eng.set_obs(hooks);
}
bool IntervalLinMonitor::overflowed() const {
  return impl_->eng.overflowed();
}
size_t IntervalLinMonitor::frontier_size() const {
  return impl_->eng.frontier_size();
}
engine::EngineStats IntervalLinMonitor::stats() const {
  return impl_->eng.stats();
}
uint64_t IntervalLinMonitor::frontier_digest() const {
  return impl_->eng.frontier_digest();
}
engine::FrontierFootprint IntervalLinMonitor::footprint() const {
  return impl_->eng.footprint();
}

std::unique_ptr<MembershipMonitor> IntervalLinMonitor::clone() const {
  return std::make_unique<IntervalLinMonitor>(*this);
}

bool interval_linearizable(const IntervalSeqSpec& spec, const History& h,
                           size_t max_configs, size_t threads) {
  IntervalLinMonitor m(spec, max_configs, threads);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

namespace {

class IntervalLinObject final : public GenLinObject {
 public:
  IntervalLinObject(std::unique_ptr<IntervalSeqSpec> spec, size_t max_configs,
                    size_t threads, std::shared_ptr<parallel::Executor> exec,
                    engine::TunerPriors priors)
      : spec_(std::move(spec)), max_configs_(max_configs), threads_(threads),
        exec_(std::move(exec)), priors_(priors) {}
  const char* name() const override { return spec_->name(); }
  std::unique_ptr<MembershipMonitor> monitor() const override {
    return monitor(threads_);
  }
  std::unique_ptr<MembershipMonitor> monitor(size_t threads) const override {
    return std::make_unique<IntervalLinMonitor>(
        *spec_, max_configs_, threads == 0 ? threads_ : threads, exec_,
        priors_);
  }

 private:
  std::unique_ptr<IntervalSeqSpec> spec_;
  size_t max_configs_;
  size_t threads_;
  std::shared_ptr<parallel::Executor> exec_;
  engine::TunerPriors priors_;
};

// ---- Write-snapshot as an interval-sequential machine ----------------------

class WsState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<WsState>(*this);
  }
  Value step(Method, Value) override { return kError; }  // interval-only
  std::string encode() const override {
    std::ostringstream os;
    os << "W:" << mask_ << ":" << done_;
    return os.str();
  }
  uint64_t fingerprint() const override {
    return fph::Hasher('W').u64(mask_).u64(done_).done();
  }
  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const WsState*>(&src);
    if (o == nullptr) return false;
    mask_ = o->mask_;
    done_ = o->done_;
    return true;
  }

  uint64_t mask_ = 0;  ///< processes whose write has entered the machine
  uint64_t done_ = 0;  ///< processes that already responded (one-shot)
};

class WsIntervalSpec final : public IntervalSeqSpec {
 public:
  const char* name() const override { return "write-snapshot-interval"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<WsState>();
  }

  bool invoke_set(SeqState& state, std::span<const OpDesc> batch)
      const override {
    auto& ws = static_cast<WsState&>(state);
    for (const OpDesc& od : batch) {
      if (od.method != Method::kWriteSnap || od.id.pid >= 64) return false;
      uint64_t bit = 1ULL << od.id.pid;
      if (ws.mask_ & bit) return false;  // one-shot
      ws.mask_ |= bit;
    }
    return true;
  }

  Value respond(SeqState& state, const OpDesc& op) const override {
    auto& ws = static_cast<WsState&>(state);
    ws.done_ |= 1ULL << op.id.pid;
    // The snapshot a process returns is the set of writes that have entered
    // the machine by its response step — self-inclusion holds because its
    // own write entered at its I-step; comparability holds because masks
    // only grow.
    return static_cast<Value>(ws.mask_);
  }
};

}  // namespace

std::unique_ptr<GenLinObject> make_interval_linearizable_object(
    std::unique_ptr<IntervalSeqSpec> spec, size_t max_configs, size_t threads,
    std::shared_ptr<parallel::Executor> executor, engine::TunerPriors priors) {
  return std::make_unique<IntervalLinObject>(
      std::move(spec), max_configs, threads, std::move(executor), priors);
}

std::unique_ptr<IntervalSeqSpec> make_write_snapshot_interval_spec() {
  return std::make_unique<WsIntervalSpec>();
}

}  // namespace selin
