#include "selin/lincheck/intervallin.hpp"

#include <algorithm>
#include <sstream>

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/config.hpp"
#include "selin/parallel/sharded_frontier.hpp"

namespace selin {

using lincheck::DedupEngine;
using lincheck::StatePool;

namespace {

struct AssignedOp {
  OpId id;
  Value v;
};

/// A configuration of the interval machine: machine state, the operations
/// currently open *inside* the machine, and the responses already assigned
/// (machine-responded, awaiting the history's response event).  Deduplicated
/// by a 64-bit fingerprint: state fingerprint XOR one Zobrist component per
/// set-shaped member, each maintained incrementally at the mutation sites.
struct IConfig {
  std::unique_ptr<SeqState> state;
  SmallVec<OpId, 8> machine_open;       // sorted by packed()
  SmallVec<AssignedOp, 8> assigned;     // sorted by packed()
  uint64_t open_hash = 0;  // XOR of fph::open_op over machine_open
  uint64_t asg_hash = 0;   // XOR of fph::lin_op over assigned

  IConfig clone() const {
    IConfig c;
    c.state = state->clone();
    c.machine_open = machine_open;
    c.assigned = assigned;
    c.open_hash = open_hash;
    c.asg_hash = asg_hash;
    return c;
  }

  IConfig clone_with(StatePool& pool) const {
    IConfig c;
    c.state = pool.acquire(*state);
    c.machine_open = machine_open;
    c.assigned = assigned;
    c.open_hash = open_hash;
    c.asg_hash = asg_hash;
    return c;
  }

  uint64_t fingerprint() const {
    return state->fingerprint() ^ open_hash ^ asg_hash;
  }

  /// Canonical key (ground truth; audit + diagnostics only).
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    for (OpId id : machine_open) os << id.pid << "." << id.seq << ",";
    os << "|";
    for (const auto& [id, v] : assigned) {
      os << id.pid << "." << id.seq << "=" << v << ";";
    }
    return os.str();
  }

  bool is_machine_open(OpId id) const {
    return std::binary_search(
        machine_open.begin(), machine_open.end(), id,
        [](OpId a, OpId b) { return a.packed() < b.packed(); });
  }

  void machine_invoke(OpId id) {
    auto it = std::upper_bound(
        machine_open.begin(), machine_open.end(), id,
        [](OpId a, OpId b) { return a.packed() < b.packed(); });
    machine_open.insert_at(static_cast<size_t>(it - machine_open.begin()), id);
    open_hash ^= fph::open_op(id.packed());
  }

  void machine_respond(OpId id, Value v) {
    auto it = std::upper_bound(
        assigned.begin(), assigned.end(), id,
        [](OpId a, const AssignedOp& b) { return a.packed() < b.id.packed(); });
    assigned.insert_at(static_cast<size_t>(it - assigned.begin()),
                       AssignedOp{id, v});
    asg_hash ^= fph::lin_op(id.packed(), v);
  }

  /// Remove `id` from both machine bookkeeping sets (the op's history
  /// response has been observed).
  void retire(OpId id) {
    for (size_t i = 0; i < assigned.size(); ++i) {
      if (assigned[i].id == id) {
        asg_hash ^= fph::lin_op(id.packed(), assigned[i].v);
        assigned.erase_at(i);
        break;
      }
    }
    for (size_t i = 0; i < machine_open.size(); ++i) {
      if (machine_open[i] == id) {
        open_hash ^= fph::open_op(id.packed());
        machine_open.erase_at(i);
        break;
      }
    }
  }

  const Value* find_assigned(OpId id) const {
    for (const auto& [aid, v] : assigned) {
      if (aid == id) return &v;
    }
    return nullptr;
  }
};

}  // namespace

struct IntervalLinMonitor::Impl {
  const IntervalSeqSpec* spec;
  size_t max_configs;
  size_t threads;
  bool ok = true;
  bool overflowed = false;
  std::vector<IConfig> frontier;  // sequential engine (threads == 1)
  std::vector<OpDesc> history_open;  // invoked in the history, not responded

  DedupEngine eng;

  // Parallel engine (threads > 1) plus per-lane subset-enumeration scratch.
  std::unique_ptr<parallel::ShardPool> pool;
  std::unique_ptr<parallel::ShardedFrontier<IConfig>> shards;
  struct alignas(64) Scratch {   // lanes write these headers in the inner
    std::vector<OpDesc> eligible;  // mask loop; keep neighbors off one line
    std::vector<OpDesc> batch;
  };
  std::vector<Scratch> scratch;

  Impl(const IntervalSeqSpec& s, size_t cap, size_t nthreads)
      : spec(&s), max_configs(cap), threads(nthreads == 0 ? 1 : nthreads) {
    IConfig c;
    c.state = s.initial();
    if (threads > 1) {
      make_shards();
      shards->seed(std::move(c));
    } else {
      frontier.push_back(std::move(c));
    }
  }

  Impl(const Impl& o)
      : spec(o.spec), max_configs(o.max_configs), threads(o.threads),
        ok(o.ok), overflowed(o.overflowed), history_open(o.history_open) {
    if (threads > 1) {
      make_shards();
      shards->clone_from(*o.shards);
    } else {
      frontier.reserve(o.frontier.size());
      for (const IConfig& c : o.frontier) frontier.push_back(c.clone());
    }
  }

  void make_shards() {
    pool = std::make_unique<parallel::ShardPool>(threads);
    shards = std::make_unique<parallel::ShardedFrontier<IConfig>>(*pool,
                                                                  max_configs);
    scratch.resize(threads);
  }

  size_t frontier_size() const {
    return threads > 1 ? shards->size() : frontier.size();
  }

  const OpDesc* find_open(OpId id) const {
    for (const OpDesc& od : history_open) {
      if (od.id == id) return &od;
    }
    return nullptr;
  }

  // Closure under (a) machine-invoking any non-empty subset of history-open
  // ops not yet in the machine, and (b) machine-responding any machine-open
  // op without an assigned value.
  std::vector<IConfig> closure() {
    eng.seen.clear();
    std::vector<IConfig> result;
    result.reserve(frontier.size() * 2);
    for (const IConfig& c : frontier) {
      if (eng.probe(eng.seen, c)) result.push_back(c.clone_with(eng.pool));
    }
    std::vector<OpDesc> eligible;
    std::vector<OpDesc> batch;
    for (size_t i = 0; i < result.size(); ++i) {
      // (a) invoke subsets of eligible ops.
      eligible.clear();
      for (const OpDesc& od : history_open) {
        if (!result[i].is_machine_open(od.id) &&
            result[i].find_assigned(od.id) == nullptr) {
          eligible.push_back(od);
        }
      }
      if (eligible.size() > 16) throw CheckerOverflow{};
      for (uint32_t mask = 1; mask < (1u << eligible.size()); ++mask) {
        batch.clear();
        for (size_t b = 0; b < eligible.size(); ++b) {
          if (mask & (1u << b)) batch.push_back(eligible[b]);
        }
        IConfig next = result[i].clone_with(eng.pool);
        if (!spec->invoke_set(*next.state, batch)) {
          eng.pool.release(std::move(next.state));
          continue;
        }
        for (const OpDesc& od : batch) next.machine_invoke(od.id);
        if (eng.probe(eng.seen, next)) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        } else {
          eng.pool.release(std::move(next.state));
        }
      }
      // (b) respond any machine-open op lacking an assignment.
      for (size_t k = 0; k < result[i].machine_open.size(); ++k) {
        OpId id = result[i].machine_open[k];
        if (result[i].find_assigned(id) != nullptr) continue;
        const OpDesc* od = find_open(id);
        if (od == nullptr) continue;  // already history-responded earlier
        IConfig next = result[i].clone_with(eng.pool);
        Value v = spec->respond(*next.state, *od);
        next.machine_respond(id, v);
        if (eng.probe(eng.seen, next)) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        } else {
          eng.pool.release(std::move(next.state));
        }
      }
    }
    return result;
  }

  void feed(const Event& e) {
    if (!ok || overflowed) return;
    if (e.is_inv()) {
      history_open.push_back(e.op);
      return;
    }
    try {
      if (threads > 1) {
        feed_res_parallel(e);
      } else {
        feed_res_sequential(e);
      }
    } catch (...) {
      // Release in-flight configurations and poison the monitor (sticky
      // overflowed()); the exception still propagates to the caller.
      overflowed = true;
      if (threads > 1) {
        shards->release_all();
      } else {
        for (IConfig& c : frontier) eng.pool.release(std::move(c.state));
        frontier.clear();
      }
      throw;
    }
    for (size_t i = 0; i < history_open.size(); ++i) {
      if (history_open[i].id == e.op.id) {
        history_open[i] = history_open.back();
        history_open.pop_back();
        break;
      }
    }
  }

  void feed_res_sequential(const Event& e) {
    std::vector<IConfig> expanded = closure();
    std::vector<IConfig> filtered;
    filtered.reserve(expanded.size());
    eng.filter_seen.clear();
    for (IConfig& c : expanded) {
      const Value* v = c.find_assigned(e.op.id);
      if (v == nullptr || *v != e.result) {
        eng.pool.release(std::move(c.state));
        continue;
      }
      // The op leaves the machine and the history bookkeeping.
      c.retire(e.op.id);
      if (eng.probe(eng.filter_seen, c)) {
        filtered.push_back(std::move(c));
      } else {
        eng.pool.release(std::move(c.state));
      }
    }
    for (IConfig& c : frontier) eng.pool.release(std::move(c.state));
    frontier = std::move(filtered);
    if (frontier.empty()) ok = false;
  }

  void feed_res_parallel(const Event& e) {
    shards->closure([this](size_t s, const IConfig& c, auto& emit) {
      DedupEngine& weng = pool->engine(s);
      Scratch& sc = scratch[s];
      // (a) invoke subsets of eligible ops.
      sc.eligible.clear();
      for (const OpDesc& od : history_open) {
        if (!c.is_machine_open(od.id) && c.find_assigned(od.id) == nullptr) {
          sc.eligible.push_back(od);
        }
      }
      if (sc.eligible.size() > 16) throw CheckerOverflow{};
      for (uint32_t mask = 1; mask < (1u << sc.eligible.size()); ++mask) {
        sc.batch.clear();
        for (size_t b = 0; b < sc.eligible.size(); ++b) {
          if (mask & (1u << b)) sc.batch.push_back(sc.eligible[b]);
        }
        IConfig next = c.clone_with(weng.pool);
        if (!spec->invoke_set(*next.state, sc.batch)) {
          weng.pool.release(std::move(next.state));
          continue;
        }
        for (const OpDesc& od : sc.batch) next.machine_invoke(od.id);
        emit(std::move(next));
      }
      // (b) respond any machine-open op lacking an assignment.
      for (size_t k = 0; k < c.machine_open.size(); ++k) {
        OpId id = c.machine_open[k];
        if (c.find_assigned(id) != nullptr) continue;
        const OpDesc* od = find_open(id);
        if (od == nullptr) continue;  // already history-responded earlier
        IConfig next = c.clone_with(weng.pool);
        Value v = spec->respond(*next.state, *od);
        next.machine_respond(id, v);
        emit(std::move(next));
      }
    });
    shards->filter([&e](size_t, IConfig& c) {
      const Value* v = c.find_assigned(e.op.id);
      if (v == nullptr || *v != e.result) return false;
      // The op leaves the machine and the history bookkeeping.
      c.retire(e.op.id);
      return true;
    });
    if (shards->size() == 0) ok = false;
  }
};

IntervalLinMonitor::IntervalLinMonitor(const IntervalSeqSpec& spec,
                                       size_t max_configs, size_t threads)
    : impl_(std::make_unique<Impl>(spec, max_configs, threads)) {}

IntervalLinMonitor::IntervalLinMonitor(const IntervalLinMonitor& other)
    : impl_(std::make_unique<Impl>(*other.impl_)) {}

IntervalLinMonitor::~IntervalLinMonitor() = default;

void IntervalLinMonitor::feed(const Event& e) { impl_->feed(e); }
bool IntervalLinMonitor::ok() const { return impl_->ok; }
bool IntervalLinMonitor::overflowed() const { return impl_->overflowed; }
size_t IntervalLinMonitor::frontier_size() const {
  return impl_->frontier_size();
}

std::unique_ptr<MembershipMonitor> IntervalLinMonitor::clone() const {
  return std::make_unique<IntervalLinMonitor>(*this);
}

bool interval_linearizable(const IntervalSeqSpec& spec, const History& h,
                           size_t max_configs, size_t threads) {
  IntervalLinMonitor m(spec, max_configs, threads);
  for (const Event& e : h) {
    m.feed(e);
    if (!m.ok()) return false;
  }
  return m.ok();
}

namespace {

class IntervalLinObject final : public GenLinObject {
 public:
  IntervalLinObject(std::unique_ptr<IntervalSeqSpec> spec, size_t max_configs,
                    size_t threads)
      : spec_(std::move(spec)), max_configs_(max_configs), threads_(threads) {}
  const char* name() const override { return spec_->name(); }
  std::unique_ptr<MembershipMonitor> monitor() const override {
    return monitor(threads_);
  }
  std::unique_ptr<MembershipMonitor> monitor(size_t threads) const override {
    return std::make_unique<IntervalLinMonitor>(*spec_, max_configs_,
                                                threads == 0 ? threads_ : threads);
  }

 private:
  std::unique_ptr<IntervalSeqSpec> spec_;
  size_t max_configs_;
  size_t threads_;
};

// ---- Write-snapshot as an interval-sequential machine ----------------------

class WsState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<WsState>(*this);
  }
  Value step(Method, Value) override { return kError; }  // interval-only
  std::string encode() const override {
    std::ostringstream os;
    os << "W:" << mask_ << ":" << done_;
    return os.str();
  }
  uint64_t fingerprint() const override {
    return fph::Hasher('W').u64(mask_).u64(done_).done();
  }
  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const WsState*>(&src);
    if (o == nullptr) return false;
    mask_ = o->mask_;
    done_ = o->done_;
    return true;
  }

  uint64_t mask_ = 0;  ///< processes whose write has entered the machine
  uint64_t done_ = 0;  ///< processes that already responded (one-shot)
};

class WsIntervalSpec final : public IntervalSeqSpec {
 public:
  const char* name() const override { return "write-snapshot-interval"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<WsState>();
  }

  bool invoke_set(SeqState& state, std::span<const OpDesc> batch)
      const override {
    auto& ws = static_cast<WsState&>(state);
    for (const OpDesc& od : batch) {
      if (od.method != Method::kWriteSnap || od.id.pid >= 64) return false;
      uint64_t bit = 1ULL << od.id.pid;
      if (ws.mask_ & bit) return false;  // one-shot
      ws.mask_ |= bit;
    }
    return true;
  }

  Value respond(SeqState& state, const OpDesc& op) const override {
    auto& ws = static_cast<WsState&>(state);
    ws.done_ |= 1ULL << op.id.pid;
    // The snapshot a process returns is the set of writes that have entered
    // the machine by its response step — self-inclusion holds because its
    // own write entered at its I-step; comparability holds because masks
    // only grow.
    return static_cast<Value>(ws.mask_);
  }
};

}  // namespace

std::unique_ptr<GenLinObject> make_interval_linearizable_object(
    std::unique_ptr<IntervalSeqSpec> spec, size_t max_configs,
    size_t threads) {
  return std::make_unique<IntervalLinObject>(std::move(spec), max_configs,
                                             threads);
}

std::unique_ptr<IntervalSeqSpec> make_write_snapshot_interval_spec() {
  return std::make_unique<WsIntervalSpec>();
}

}  // namespace selin
