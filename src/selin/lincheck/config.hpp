// Shared configuration machinery for the frontier-based checkers.
//
// A configuration pairs a sequential-machine state with the multimap of
// operations that have been *linearized but not yet responded*, together with
// the result the machine assigned to each.  Two configurations are equal iff
// their canonical keys are equal; the frontier deduplicates on a 64-bit
// fingerprint of that key (state fingerprint XOR an incrementally maintained
// Zobrist hash of the linearized-op set — see util/hash.hpp for the collision
// discipline).  key() remains the ground truth and backs the debug-mode
// collision audit.
//
// Representation: the linearized set is a run-length ValueRunSet
// (util/interval_set.hpp) keyed *seq-major* — seq in the high word, pid in
// the low word.  Concurrently pending ops live on distinct processes, so
// pid-major packed ids never sit adjacent; under seq-major keys a lockstep
// cohort (same seq, dense pids) is one contiguous run, and a run whose ops
// were assigned the same value (e.g. a cohort of enqueue acks) costs one
// 24-byte entry regardless of its width.  The element hash still feeds
// fph::lin_op the *pid-major* packed id, so every fingerprint is bit-
// identical to the flat-vector representation this replaced.
#pragma once

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "selin/spec/spec.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/fp_set.hpp"
#include "selin/util/hash.hpp"
#include "selin/util/interval_set.hpp"
#include "selin/util/small_vec.hpp"

// Fingerprint collision audit: every dedup probe is cross-checked against
// the canonical string key.  On by default in debug builds; force with
// -DSELIN_FP_AUDIT=1 (CMake option SELIN_FP_AUDIT).
#ifndef SELIN_FP_AUDIT
#ifdef NDEBUG
#define SELIN_FP_AUDIT 0
#else
#define SELIN_FP_AUDIT 1
#endif
#endif

namespace selin::lincheck {

/// Seq-major storage key of an op id: seq in the high word, pid in the low
/// word.  An involution of OpId::packed() (swapping the halves twice is the
/// identity), so the pid-major id is recovered with the same swap.
constexpr uint64_t seq_major(OpId id) {
  uint64_t p = id.packed();
  return (p << 32) | (p >> 32);
}

/// Inverse of seq_major: the storage key back to the op id.
constexpr OpId id_of_key(uint64_t key) {
  return OpId{static_cast<ProcId>(key & 0xFFFFFFFFull),
              static_cast<uint32_t>(key >> 32)};
}

/// Element hash of a (seq-major key, assigned value) entry: un-swaps the key
/// so fph::lin_op sees the same pid-major packed id as always — the hash
/// contract (and with it every fingerprint, dedup table, and checkpoint) is
/// bit-identical to the flat sorted-vector representation.
constexpr uint64_t lin_elem(uint64_t key, Value assigned) {
  return fph::lin_op((key << 32) | (key >> 32), assigned);
}

/// One Bloom bit per op id for the SoA filter pass (engine hot rows): the
/// OR of these bits over a configuration's response-relevant set is a
/// monotone over-approximation of "this op might match here" — bits are
/// never cleared when an op leaves the set, so a clear bit proves the
/// configuration drops and the exact match() call is skipped; a set bit
/// falls through to match().
constexpr uint64_t match_bit(uint64_t seq_major_key) {
  return uint64_t{1} << (fph::mix(seq_major_key) & 63);
}

/// The linearized-but-unresponded op set: seq-major keys -> assigned values,
/// run-length compressed with the incremental fph::lin_op hash.
using LinSet = ValueRunSet<lin_elem>;

/// Recycler for SeqState clones.  Configurations are created and discarded
/// in bulk during closure expansion; pooling the discarded states and
/// refilling them via SeqState::assign_from reuses both the state object and
/// its internal container capacity, so steady-state expansion allocates
/// nothing.  States in one pool must come from a single spec (one dynamic
/// type); specs that do not implement assign_from silently degrade to
/// clone().
class StatePool {
 public:
  /// A state equal to `src` — recycled if possible, freshly cloned if not.
  std::unique_ptr<SeqState> acquire(const SeqState& src) {
    if (!free_.empty()) {
      std::unique_ptr<SeqState> s = std::move(free_.back());
      free_.pop_back();
      if (s->assign_from(src)) {
        ++recycled_;
        return s;
      }
      disabled_ = true;  // spec does not support recycling
      free_.clear();
    }
    return src.clone();
  }

  void release(std::unique_ptr<SeqState> s) {
    if (!disabled_ && s != nullptr && free_.size() < kMaxPooled) {
      free_.push_back(std::move(s));
    }
  }

  /// Acquisitions served by recycling rather than clone() (engine stats).
  uint64_t recycled() const { return recycled_; }

 private:
  static constexpr size_t kMaxPooled = 4096;
  bool disabled_ = false;
  uint64_t recycled_ = 0;
  std::vector<std::unique_ptr<SeqState>> free_;
};

struct Config {
  std::unique_ptr<SeqState> state;
  LinSet linearized;  // run-length (seq-major key -> assigned) set

  Config clone() const {
    Config c;
    c.state = state->clone();
    c.linearized = linearized;
    return c;
  }

  /// clone() through a recycling pool (the checkers' hot path).
  Config clone_with(StatePool& pool) const {
    Config c;
    c.state = pool.acquire(*state);
    c.linearized = linearized;
    return c;
  }

  /// 64-bit deduplication fingerprint; equal keys have equal fingerprints.
  /// The linearized component is the cached incremental Zobrist hash — no
  /// walk over ids.
  uint64_t fingerprint() const {
    return state->fingerprint() ^ linearized.hash();
  }

  /// Canonical deduplication key (ground truth; audit + diagnostics only).
  /// Deterministic and injective per configuration; entries stream in
  /// seq-major key order.
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    linearized.for_each([&os](uint64_t k, Value v) {
      OpId id = id_of_key(k);
      os << id.pid << "." << id.seq << "=" << v << ";";
    });
    return os.str();
  }

  /// The value assigned to `id` when it linearized, or nullptr (valid until
  /// the next mutation).
  const Value* find(OpId id) const { return linearized.find(seq_major(id)); }

  void add(OpId id, Value assigned) { linearized.add(seq_major(id), assigned); }

  void remove(OpId id) { linearized.remove(seq_major(id)); }

  /// Fused response filter: removes `id` iff present with exactly the
  /// observed value — one run search instead of find-then-remove.
  bool remove_if_equals(OpId id, Value expect) {
    return linearized.remove_if_equals(seq_major(id), expect);
  }

  /// Footprint accounting for the memory facet (bench_frontier_memory).
  size_t opset_elems() const { return linearized.size(); }
  size_t opset_bytes() const { return linearized.resident_bytes(); }
  /// What the pre-interval flat representation would occupy for these sets:
  /// SmallVec<{OpId, Value}, 8> plus the standalone hash word.
  size_t opset_smallvec_bytes() const {
    return small_vec_model_bytes(linearized.size(), 8, 16) + sizeof(uint64_t);
  }
};

/// Debug-mode collision audit: records the canonical key first seen for each
/// fingerprint and flags any later fingerprint whose key differs.  The
/// mapping fingerprint→key is global to a checker's lifetime (the same
/// configuration always produces the same key), so one guard can audit every
/// dedup set a checker owns.  Memory is bounded: past kMaxEntries distinct
/// fingerprints the map is reset, which narrows detection to collisions
/// within a window but keeps audit builds memory-stable on long histories.
class CollisionGuard {
 public:
  /// True iff `fp` is consistent (new, or previously recorded with the same
  /// key).  False signals a genuine 64-bit collision.
  bool check(uint64_t fp, const std::string& key) {
    if (keys_.size() >= kMaxEntries) keys_.clear();
    auto [it, fresh] = keys_.try_emplace(fp, key);
    return fresh || it->second == key;
  }

  size_t distinct() const { return keys_.size(); }

 private:
  static constexpr size_t kMaxEntries = 1 << 22;
  std::unordered_map<uint64_t, std::string> keys_;
};

/// The dedup machinery every frontier checker carries: arena-backed
/// fingerprint scratch sets (cleared per feed, capacity retained), the state
/// recycling pool, and the debug collision audit.  One instance per monitor;
/// copies of a monitor start from a fresh engine.
struct DedupEngine {
  Arena arena;
  FpSet seen{arena};         // closure expansion dedup
  FpSet filter_seen{arena};  // response-filter dedup
  StatePool pool;
  uint64_t probes = 0;   // dedup probes issued (engine stats)
  uint64_t hits = 0;     // probes that found a duplicate
  uint64_t batches = 0;  // probe_batch groups resolved
  uint64_t prefetch_batches = 0;  // groups that issued slot prefetches

  /// Audit `fp` against the canonical key (built lazily; debug builds only).
  template <typename KeyFn>
  void audit(uint64_t fp, KeyFn&& key) {
#if SELIN_FP_AUDIT
    if (!audit_.check(fp, key())) {
      throw std::runtime_error("selin: fingerprint collision detected");
    }
#else
    (void)fp;
    (void)key;
#endif
  }

  /// Dedup probe: true iff `c` (Config or IConfig) is new to `set`.
  template <typename C>
  bool probe(FpSet& set, const C& c) {
    uint64_t fp = c.fingerprint();
    audit(fp, [&c] { return c.key(); });
    ++probes;
    bool fresh = set.insert(fp);
    if (!fresh) ++hits;
    return fresh;
  }

  /// Batched dedup probe over precomputed fingerprints (n <= 64): one
  /// capacity check and one prefetch sweep for the whole group, probe order
  /// and counter deltas identical to n probe() calls.  Bit i of the result
  /// is set iff fps[i] was fresh.  `key(i)` builds the i-th candidate's
  /// canonical audit key lazily (audit builds only).
  template <typename KeyFn>
  uint64_t probe_batch(FpSet& set, const uint64_t* fps, size_t n,
                       KeyFn&& key) {
#if SELIN_FP_AUDIT
    for (size_t i = 0; i < n; ++i) audit(fps[i], [&] { return key(i); });
#else
    (void)key;
#endif
    if (n == 0) return 0;
    probes += n;
    const uint64_t fresh = set.probe_batch(fps, n);
    size_t kept = 0;
    for (uint64_t m = fresh; m != 0; m &= m - 1) ++kept;
    hits += n - kept;
    ++batches;
    if (FpSet::prefetch_enabled() && n >= 2) ++prefetch_batches;
    return fresh;
  }

#if SELIN_FP_AUDIT
 private:
  CollisionGuard audit_;
#endif
};

}  // namespace selin::lincheck
