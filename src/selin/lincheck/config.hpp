// Shared configuration machinery for the frontier-based checkers.
//
// A configuration pairs a sequential-machine state with the multimap of
// operations that have been *linearized but not yet responded*, together with
// the result the machine assigned to each.  Two configurations are equal iff
// their canonical keys are equal; the frontier deduplicates on the key.
#pragma once

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "selin/spec/spec.hpp"

namespace selin::lincheck {

struct LinearizedOp {
  OpId id;
  Value assigned;

  friend bool operator<(const LinearizedOp& a, const LinearizedOp& b) {
    return a.id < b.id;
  }
};

struct Config {
  std::unique_ptr<SeqState> state;
  std::vector<LinearizedOp> linearized;  // kept sorted by OpId

  Config clone() const {
    Config c;
    c.state = state->clone();
    c.linearized = linearized;
    return c;
  }

  /// Canonical deduplication key.
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    for (const LinearizedOp& l : linearized) {
      os << l.id.pid << "." << l.id.seq << "=" << l.assigned << ";";
    }
    return os.str();
  }

  const LinearizedOp* find(OpId id) const {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    if (it != linearized.end() && it->id == id) return &*it;
    return nullptr;
  }

  void add(OpId id, Value assigned) {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    linearized.insert(it, LinearizedOp{id, assigned});
  }

  void remove(OpId id) {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    if (it != linearized.end() && it->id == id) linearized.erase(it);
  }
};

/// An operation that has been invoked and whose response has not been fed.
struct OpenOp {
  OpDesc op;
};

}  // namespace selin::lincheck
