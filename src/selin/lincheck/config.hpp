// Shared configuration machinery for the frontier-based checkers.
//
// A configuration pairs a sequential-machine state with the multimap of
// operations that have been *linearized but not yet responded*, together with
// the result the machine assigned to each.  Two configurations are equal iff
// their canonical keys are equal; the frontier deduplicates on a 64-bit
// fingerprint of that key (state fingerprint XOR an incrementally maintained
// Zobrist hash of the linearized-op set — see util/hash.hpp for the collision
// discipline).  key() remains the ground truth and backs the debug-mode
// collision audit.
#pragma once

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "selin/spec/spec.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/fp_set.hpp"
#include "selin/util/hash.hpp"
#include "selin/util/small_vec.hpp"

// Fingerprint collision audit: every dedup probe is cross-checked against
// the canonical string key.  On by default in debug builds; force with
// -DSELIN_FP_AUDIT=1 (CMake option SELIN_FP_AUDIT).
#ifndef SELIN_FP_AUDIT
#ifdef NDEBUG
#define SELIN_FP_AUDIT 0
#else
#define SELIN_FP_AUDIT 1
#endif
#endif

namespace selin::lincheck {

struct LinearizedOp {
  OpId id;
  Value assigned;

  friend bool operator<(const LinearizedOp& a, const LinearizedOp& b) {
    return a.id < b.id;
  }
};

/// Recycler for SeqState clones.  Configurations are created and discarded
/// in bulk during closure expansion; pooling the discarded states and
/// refilling them via SeqState::assign_from reuses both the state object and
/// its internal container capacity, so steady-state expansion allocates
/// nothing.  States in one pool must come from a single spec (one dynamic
/// type); specs that do not implement assign_from silently degrade to
/// clone().
class StatePool {
 public:
  /// A state equal to `src` — recycled if possible, freshly cloned if not.
  std::unique_ptr<SeqState> acquire(const SeqState& src) {
    if (!free_.empty()) {
      std::unique_ptr<SeqState> s = std::move(free_.back());
      free_.pop_back();
      if (s->assign_from(src)) {
        ++recycled_;
        return s;
      }
      disabled_ = true;  // spec does not support recycling
      free_.clear();
    }
    return src.clone();
  }

  void release(std::unique_ptr<SeqState> s) {
    if (!disabled_ && s != nullptr && free_.size() < kMaxPooled) {
      free_.push_back(std::move(s));
    }
  }

  /// Acquisitions served by recycling rather than clone() (engine stats).
  uint64_t recycled() const { return recycled_; }

 private:
  static constexpr size_t kMaxPooled = 4096;
  bool disabled_ = false;
  uint64_t recycled_ = 0;
  std::vector<std::unique_ptr<SeqState>> free_;
};

struct Config {
  std::unique_ptr<SeqState> state;
  SmallVec<LinearizedOp, 8> linearized;  // kept sorted by OpId
  uint64_t lin_hash = 0;  // XOR of fph::lin_op over `linearized`

  Config clone() const {
    Config c;
    c.state = state->clone();
    c.linearized = linearized;
    c.lin_hash = lin_hash;
    return c;
  }

  /// clone() through a recycling pool (the checkers' hot path).
  Config clone_with(StatePool& pool) const {
    Config c;
    c.state = pool.acquire(*state);
    c.linearized = linearized;
    c.lin_hash = lin_hash;
    return c;
  }

  /// 64-bit deduplication fingerprint; equal keys have equal fingerprints.
  uint64_t fingerprint() const { return state->fingerprint() ^ lin_hash; }

  /// Canonical deduplication key (ground truth; audit + diagnostics only).
  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    for (const LinearizedOp& l : linearized) {
      os << l.id.pid << "." << l.id.seq << "=" << l.assigned << ";";
    }
    return os.str();
  }

  const LinearizedOp* find(OpId id) const {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    if (it != linearized.end() && it->id == id) return &*it;
    return nullptr;
  }

  void add(OpId id, Value assigned) {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    linearized.insert_at(static_cast<size_t>(it - linearized.begin()),
                         LinearizedOp{id, assigned});
    lin_hash ^= fph::lin_op(id.packed(), assigned);
  }

  void remove(OpId id) {
    auto it = std::lower_bound(linearized.begin(), linearized.end(),
                               LinearizedOp{id, 0});
    if (it != linearized.end() && it->id == id) {
      lin_hash ^= fph::lin_op(id.packed(), it->assigned);
      linearized.erase_at(static_cast<size_t>(it - linearized.begin()));
    }
  }
};

/// Debug-mode collision audit: records the canonical key first seen for each
/// fingerprint and flags any later fingerprint whose key differs.  The
/// mapping fingerprint→key is global to a checker's lifetime (the same
/// configuration always produces the same key), so one guard can audit every
/// dedup set a checker owns.  Memory is bounded: past kMaxEntries distinct
/// fingerprints the map is reset, which narrows detection to collisions
/// within a window but keeps audit builds memory-stable on long histories.
class CollisionGuard {
 public:
  /// True iff `fp` is consistent (new, or previously recorded with the same
  /// key).  False signals a genuine 64-bit collision.
  bool check(uint64_t fp, const std::string& key) {
    if (keys_.size() >= kMaxEntries) keys_.clear();
    auto [it, fresh] = keys_.try_emplace(fp, key);
    return fresh || it->second == key;
  }

  size_t distinct() const { return keys_.size(); }

 private:
  static constexpr size_t kMaxEntries = 1 << 22;
  std::unordered_map<uint64_t, std::string> keys_;
};

/// The dedup machinery every frontier checker carries: arena-backed
/// fingerprint scratch sets (cleared per feed, capacity retained), the state
/// recycling pool, and the debug collision audit.  One instance per monitor;
/// copies of a monitor start from a fresh engine.
struct DedupEngine {
  Arena arena;
  FpSet seen{arena};         // closure expansion dedup
  FpSet filter_seen{arena};  // response-filter dedup
  StatePool pool;
  uint64_t probes = 0;  // dedup probes issued (engine stats)
  uint64_t hits = 0;    // probes that found a duplicate

  /// Audit `fp` against the canonical key (built lazily; debug builds only).
  template <typename KeyFn>
  void audit(uint64_t fp, KeyFn&& key) {
#if SELIN_FP_AUDIT
    if (!audit_.check(fp, key())) {
      throw std::runtime_error("selin: fingerprint collision detected");
    }
#else
    (void)fp;
    (void)key;
#endif
  }

  /// Dedup probe: true iff `c` (Config or IConfig) is new to `set`.
  template <typename C>
  bool probe(FpSet& set, const C& c) {
    uint64_t fp = c.fingerprint();
    audit(fp, [&c] { return c.key(); });
    ++probes;
    bool fresh = set.insert(fp);
    if (!fresh) ++hits;
    return fresh;
  }

#if SELIN_FP_AUDIT
 private:
  CollisionGuard audit_;
#endif
};

}  // namespace selin::lincheck
