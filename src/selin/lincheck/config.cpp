// config.hpp is header-only; this translation unit exists so the build graph
// mirrors the module list in DESIGN.md and gives the header a compile check.
#include "selin/lincheck/config.hpp"
