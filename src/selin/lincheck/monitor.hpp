// GenLinObject adapters: package a sequential or set-sequential
// specification as an abstract GenLin object (Remark 7.1: "for any sequential
// object O, the abstract object O' with every finite history linearizable
// with respect to O" — Lemma 7.1 proves O' ∈ GenLin).
#pragma once

#include <memory>

#include "selin/engine/stats.hpp"
#include "selin/spec/spec.hpp"

namespace selin::parallel {
class Executor;
}  // namespace selin::parallel

namespace selin {

/// The abstract object of all histories linearizable w.r.t. `spec`.
/// Owns the spec.  `threads > 1` makes monitor() hand out parallel
/// (fingerprint-sharded) membership monitors by default, and
/// `engine::kAutoThreads` adaptive ones (sequential↔sharded per feed round);
/// either way, monitor(threads) can override per deployment.  `executor`
/// (nullptr = private per-monitor pools) is the shared lane provider every
/// monitor this object hands out runs its parallel rounds on — a
/// multi-tenant deployment passes one executor to every object so total
/// threads stay bounded by its lane cap.
/// `priors` (warm-start knob seeds for tuned adaptive monitors; see
/// engine::priors_from_stats) is forwarded to every monitor handed out.
std::unique_ptr<GenLinObject> make_linearizable_object(
    std::unique_ptr<SeqSpec> spec, size_t max_configs = 1 << 18,
    size_t threads = 1, std::shared_ptr<parallel::Executor> executor = nullptr,
    engine::TunerPriors priors = {});

/// The abstract object of all histories set-linearizable w.r.t. `spec`.
std::unique_ptr<GenLinObject> make_set_linearizable_object(
    std::unique_ptr<SetSeqSpec> spec, size_t max_configs = 1 << 18,
    size_t threads = 1, std::shared_ptr<parallel::Executor> executor = nullptr,
    engine::TunerPriors priors = {});

}  // namespace selin
