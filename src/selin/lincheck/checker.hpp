// Linearizability membership checking (the predicate P_O of Section 3).
//
// Deciding whether a finite history is linearizable is NP-complete in
// general [51, 82]; the paper assumes each process "can locally test if a
// given finite history satisfies P_O" (Section 3).  We provide that local
// test in three forms:
//
//  1. LinMonitor — an *incremental* checker in the style of Wing & Gong's
//     configuration search: it maintains the frontier of all configurations
//     (sequential-machine state + set of linearized-but-unresponded
//     operations with their assigned results) consistent with the events fed
//     so far.  Feeding is amortized; the verifier re-uses monitors across
//     loop iterations via clone() (Section 8's repeated Line-10 tests).
//
//  2. find_linearization — a memoized DFS that additionally returns a
//     sequential witness history (the linearization S of Definition 4.2),
//     used for certificates (Theorem 8.2(3)) and for validating monitors in
//     property tests.
//
//  3. linearizable_bruteforce — an exhaustive reference oracle for small
//     histories, used only by tests to cross-validate 1 and 2.
//
// Pending operations are handled per Definition 4.2: a pending operation may
// be linearized (its response is "appended" with the spec-determined value)
// or dropped (its invocation removed by comp()).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"
#include "selin/spec/spec.hpp"

namespace selin::parallel {
class Executor;
}  // namespace selin::parallel

namespace selin {

/// Thrown when the configuration frontier exceeds the exploration budget;
/// callers may treat it as "unknown" or re-try with a larger budget.  The
/// frontier is bounded by (spec states reachable) x (orders of open ops), and
/// open ops are bounded by n, so in the wait-free setting overflow indicates
/// a pathological workload rather than a big history.
class CheckerOverflow : public std::runtime_error {
 public:
  CheckerOverflow() : std::runtime_error("linearizability frontier overflow") {}
};

/// Incremental linearizability monitor for a deterministic sequential spec.
///
/// A thin facade over engine::FrontierEngine (engine/frontier_engine.hpp)
/// with the linearizability policy.  `threads > 1` runs closure expansion
/// and response filtering on a fingerprint-routed shard pool with `threads`
/// shards; `engine::kAutoThreads` (or `engine::auto_threads(n)`) switches
/// between the sequential and sharded paths per feed round by frontier-width
/// hysteresis.  Verdicts and frontier sizes are identical across all modes;
/// `threads == 1`, the sequential engine, remains the default.
class LinMonitor final : public MembershipMonitor {
 public:
  /// `executor`: shared worker lanes for the parallel rounds (nullptr = a
  /// private pool created lazily — the single-tenant default).
  /// `priors`: warm-start knob seeds for the tuned adaptive engine
  /// (`auto --tune`), recorded from an earlier run's stats — see
  /// engine::priors_from_stats.  Ignored by non-tuned engines; never
  /// affects verdicts, only when the engine changes representation.
  explicit LinMonitor(const SeqSpec& spec, size_t max_configs = 1 << 18,
                      size_t threads = 1,
                      std::shared_ptr<parallel::Executor> executor = nullptr,
                      engine::TunerPriors priors = {});
  LinMonitor(const LinMonitor& other);
  ~LinMonitor() override;

  void feed(const Event& e) override;
  /// Batched feed: closure/dedup amortized over each consecutive run of
  /// responses; verdict and frontier identical to per-event feeding.
  void feed_batch(std::span<const Event> events) override;
  bool ok() const override;
  std::unique_ptr<MembershipMonitor> clone() const override;

  /// Forwarded to the underlying engine (engine::FrontierEngine::set_obs);
  /// clones inherit the attachment.
  void attach_obs(const obs::EngineHooks* hooks) override;

  /// True once a feed overflowed the exploration budget.  The overflowing
  /// feed releases every in-flight configuration and rethrows
  /// CheckerOverflow; afterwards the monitor is sticky — further feeds are
  /// ignored and ok() keeps its last definite value, so callers that caught
  /// the overflow must treat the verdict as unknown, not reuse it.
  bool overflowed() const;

  /// Number of live configurations (diagnostics / bench counters).
  size_t frontier_size() const;

  /// Execution counters of the underlying engine (see engine/stats.hpp).
  engine::EngineStats stats() const;

  /// Order-independent digest of the live frontier (XOR of mixed config
  /// fingerprints) — representation/mode parity checks.
  uint64_t frontier_digest() const;

  /// Op-set footprint of the live frontier (bench_frontier_memory); walks
  /// every configuration, so poll sparingly.
  engine::FrontierFootprint footprint() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot test: is `h` linearizable with respect to `spec`?
bool linearizable(const SeqSpec& spec, const History& h,
                  size_t max_configs = 1 << 18, size_t threads = 1);

/// DFS with memoization returning a linearization S (a sequential history of
/// complete operations, Definition 4.2) when one exists.
std::optional<History> find_linearization(const SeqSpec& spec,
                                          const History& h,
                                          size_t max_visited = 1 << 20);

/// Exhaustive reference oracle (exponential; tests only, |ops| <= ~8).
bool linearizable_bruteforce(const SeqSpec& spec, const History& h);

}  // namespace selin
