// Set-linearizability membership (Neiger [81]; Section 7.1).
//
// Same frontier scheme as LinMonitor, except a closure step linearizes a
// non-empty *batch* of open operations simultaneously through the
// set-sequential transition.  Everything the paper proves for GenLin applies
// unchanged: set-linearizable objects are closed by prefixes and similarity
// (Section 7.1), so they can be plugged into the verifier as GenLin objects.
#pragma once

#include <memory>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"
#include "selin/spec/spec.hpp"

namespace selin::parallel {
class Executor;
}  // namespace selin::parallel

namespace selin {

/// A facade over engine::FrontierEngine with the set-linearizability policy.
/// `threads > 1` expands batch closures on a fingerprint-routed shard pool;
/// `engine::kAutoThreads` picks sequential vs sharded per feed round.
/// Verdicts and frontier sizes are identical across all modes; the
/// sequential engine at `threads == 1` is the default.
class SetLinMonitor final : public MembershipMonitor {
 public:
  /// `executor`: shared worker lanes for the parallel rounds (nullptr = a
  /// private pool created lazily — the single-tenant default).
  /// `priors`: warm-start knob seeds for the tuned adaptive engine (see
  /// LinMonitor); ignored by non-tuned engines, never affects verdicts.
  explicit SetLinMonitor(
      const SetSeqSpec& spec, size_t max_configs = 1 << 18, size_t threads = 1,
      std::shared_ptr<parallel::Executor> executor = nullptr,
      engine::TunerPriors priors = {});
  SetLinMonitor(const SetLinMonitor& other);
  ~SetLinMonitor() override;

  void feed(const Event& e) override;
  /// Batched feed: closure/dedup amortized over each consecutive run of
  /// responses; verdict and frontier identical to per-event feeding.
  void feed_batch(std::span<const Event> events) override;
  bool ok() const override;
  std::unique_ptr<MembershipMonitor> clone() const override;

  /// Forwarded to the underlying engine; clones inherit the attachment.
  void attach_obs(const obs::EngineHooks* hooks) override;

  /// Sticky overflow flag; see LinMonitor::overflowed().
  bool overflowed() const;

  /// Number of live configurations (diagnostics / determinism tests).
  size_t frontier_size() const;

  /// Execution counters of the underlying engine (see engine/stats.hpp).
  engine::EngineStats stats() const;

  /// Order-independent digest of the live frontier (XOR of mixed config
  /// fingerprints) — representation/mode parity checks.
  uint64_t frontier_digest() const;

  /// Op-set footprint of the live frontier (bench_frontier_memory); walks
  /// every configuration, so poll sparingly.
  engine::FrontierFootprint footprint() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot test: is `h` set-linearizable with respect to `spec`?
bool set_linearizable(const SetSeqSpec& spec, const History& h,
                      size_t max_configs = 1 << 18, size_t threads = 1);

}  // namespace selin
