#include "selin/lincheck/monitor.hpp"

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/setlin_checker.hpp"
#include "selin/parallel/executor.hpp"

namespace selin {
namespace {

class LinearizableObject final : public GenLinObject {
 public:
  LinearizableObject(std::unique_ptr<SeqSpec> spec, size_t max_configs,
                     size_t threads, std::shared_ptr<parallel::Executor> exec,
                     engine::TunerPriors priors)
      : spec_(std::move(spec)), max_configs_(max_configs), threads_(threads),
        exec_(std::move(exec)), priors_(priors) {}

  const char* name() const override { return spec_->name(); }

  std::unique_ptr<MembershipMonitor> monitor() const override {
    return monitor(threads_);
  }

  std::unique_ptr<MembershipMonitor> monitor(size_t threads) const override {
    return std::make_unique<LinMonitor>(*spec_, max_configs_,
                                        threads == 0 ? threads_ : threads,
                                        exec_, priors_);
  }

 private:
  std::unique_ptr<SeqSpec> spec_;
  size_t max_configs_;
  size_t threads_;
  std::shared_ptr<parallel::Executor> exec_;
  engine::TunerPriors priors_;
};

class SetLinearizableObject final : public GenLinObject {
 public:
  SetLinearizableObject(std::unique_ptr<SetSeqSpec> spec, size_t max_configs,
                        size_t threads,
                        std::shared_ptr<parallel::Executor> exec,
                        engine::TunerPriors priors)
      : spec_(std::move(spec)), max_configs_(max_configs), threads_(threads),
        exec_(std::move(exec)), priors_(priors) {}

  const char* name() const override { return spec_->name(); }

  std::unique_ptr<MembershipMonitor> monitor() const override {
    return monitor(threads_);
  }

  std::unique_ptr<MembershipMonitor> monitor(size_t threads) const override {
    return std::make_unique<SetLinMonitor>(*spec_, max_configs_,
                                           threads == 0 ? threads_ : threads,
                                           exec_, priors_);
  }

 private:
  std::unique_ptr<SetSeqSpec> spec_;
  size_t max_configs_;
  size_t threads_;
  std::shared_ptr<parallel::Executor> exec_;
  engine::TunerPriors priors_;
};

}  // namespace

std::unique_ptr<GenLinObject> make_linearizable_object(
    std::unique_ptr<SeqSpec> spec, size_t max_configs, size_t threads,
    std::shared_ptr<parallel::Executor> executor, engine::TunerPriors priors) {
  return std::make_unique<LinearizableObject>(
      std::move(spec), max_configs, threads, std::move(executor), priors);
}

std::unique_ptr<GenLinObject> make_set_linearizable_object(
    std::unique_ptr<SetSeqSpec> spec, size_t max_configs, size_t threads,
    std::shared_ptr<parallel::Executor> executor, engine::TunerPriors priors) {
  return std::make_unique<SetLinearizableObject>(
      std::move(spec), max_configs, threads, std::move(executor), priors);
}

}  // namespace selin
