#include "selin/lincheck/monitor.hpp"

#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/setlin_checker.hpp"

namespace selin {
namespace {

class LinearizableObject final : public GenLinObject {
 public:
  LinearizableObject(std::unique_ptr<SeqSpec> spec, size_t max_configs)
      : spec_(std::move(spec)), max_configs_(max_configs) {}

  const char* name() const override { return spec_->name(); }

  std::unique_ptr<MembershipMonitor> monitor() const override {
    return std::make_unique<LinMonitor>(*spec_, max_configs_);
  }

 private:
  std::unique_ptr<SeqSpec> spec_;
  size_t max_configs_;
};

class SetLinearizableObject final : public GenLinObject {
 public:
  SetLinearizableObject(std::unique_ptr<SetSeqSpec> spec, size_t max_configs)
      : spec_(std::move(spec)), max_configs_(max_configs) {}

  const char* name() const override { return spec_->name(); }

  std::unique_ptr<MembershipMonitor> monitor() const override {
    return std::make_unique<SetLinMonitor>(*spec_, max_configs_);
  }

 private:
  std::unique_ptr<SetSeqSpec> spec_;
  size_t max_configs_;
};

}  // namespace

std::unique_ptr<GenLinObject> make_linearizable_object(
    std::unique_ptr<SeqSpec> spec, size_t max_configs) {
  return std::make_unique<LinearizableObject>(std::move(spec), max_configs);
}

std::unique_ptr<GenLinObject> make_set_linearizable_object(
    std::unique_ptr<SetSeqSpec> spec, size_t max_configs) {
  return std::make_unique<SetLinearizableObject>(std::move(spec), max_configs);
}

}  // namespace selin
