#include "selin/obs/trace.hpp"

#include <chrono>

namespace selin::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kFeedRound: return "feed_round";
    case SpanKind::kExecPhase: return "exec_phase";
    case SpanKind::kRollback: return "rollback";
    case SpanKind::kResync: return "resync";
    case SpanKind::kTunerDecision: return "tuner_decision";
    case SpanKind::kDrainRound: return "drain_round";
    case SpanKind::kSessionBatch: return "session_batch";
  }
  return "unknown";
}

uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

RingRecorder::RingRecorder(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(cap_);
}

void RingRecorder::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = seq_++;
  if (ring_.size() < cap_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % cap_;
  }
}

std::vector<TraceEvent> RingRecorder::ordered_locked() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> RingRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_locked();
}

std::vector<TraceEvent> RingRecorder::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = ordered_locked();
  ring_.clear();
  head_ = 0;
  return out;
}

uint64_t RingRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t RingRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_ - ring_.size();
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {}

void JsonlSink::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr || !out_->good()) return;
  ev.seq = seq_++;
  *out_ << "{\"seq\":" << ev.seq << ",\"kind\":\"" << to_string(ev.kind)
        << "\",\"session\":" << ev.session << ",\"t_ns\":" << ev.start_ns
        << ",\"dur_ns\":" << ev.dur_ns << ",\"p0\":" << ev.p0
        << ",\"p1\":" << ev.p1 << ",\"p2\":" << ev.p2 << ",\"p3\":" << ev.p3
        << ",\"p4\":" << ev.p4 << ",\"p5\":" << ev.p5 << "}\n";
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) out_->flush();
}

}  // namespace selin::obs
