// Instrumentation hook bundles: the bridge between the observability core
// and the instrumented components.
//
// The hot paths (FrontierEngine::feed_res_run, Executor::run_phase,
// LeveledChecker::resync) must not pay registry lookups, string hashing, or
// even a virtual call per event when observability is attached — and must
// pay nothing but one pointer test when it is not.  So each component holds
// a `const XxxHooks*`, null by default:
//
//   if (obs_ == nullptr) { ... untouched code path ... }
//
// and a hooks struct is a flat bundle of pre-resolved instrument pointers
// plus an optional TraceSink.  The make_*_hooks helpers register the
// canonical instrument set in a MetricsRegistry once and fill the bundle;
// callers own both the registry and the bundle storage (the component only
// borrows the pointer — attach, run, snapshot, detach-or-destroy-together).
//
// Individual members may be left null to subscribe to a subset (the
// component checks each member it uses); `session` is stamped into every
// trace event the component emits so multi-tenant traces stay attributable.
#pragma once

#include <cstdint>

#include "selin/obs/metrics.hpp"
#include "selin/obs/trace.hpp"

namespace selin::obs {

/// FrontierEngine instrumentation (engine/frontier_engine.hpp).
struct EngineHooks {
  Histogram* round_ns_seq = nullptr;   ///< closure-round wall ns, sequential
  Histogram* round_ns_par = nullptr;   ///< closure-round wall ns, sharded
  Histogram* frontier_width = nullptr; ///< post-response frontier width
  TraceSink* trace = nullptr;          ///< kFeedRound + kTunerDecision spans
  uint64_t session = 0;
};

/// parallel::Executor instrumentation (parallel/executor.hpp).
struct ExecutorHooks {
  Histogram* phase_ns = nullptr;      ///< run_phase wall ns
  Histogram* phase_slices = nullptr;  ///< slices per phase
  Counter* slices_caller = nullptr;   ///< slices run inline by phase callers
  Counter* slices_worker = nullptr;   ///< slices claimed by worker lanes
  Counter* posts = nullptr;           ///< fire-and-forget tasks posted
  Counter* helps = nullptr;           ///< help_one() calls that found work
  TraceSink* trace = nullptr;         ///< kExecPhase spans
};

/// LeveledChecker instrumentation (views/leveled_history.hpp).
struct LeveledHooks {
  Histogram* rollback_depth = nullptr;  ///< levels re-fed per rollback
  Histogram* resync_ns = nullptr;       ///< wall ns per resync call
  Gauge* stripes_pending = nullptr;     ///< snapshot-lane stripe jobs in flight
  /// Attached to every replay monitor the checker creates (clones inherit),
  /// so rollback-storm engine work shows up under the same instruments.
  const EngineHooks* engine = nullptr;
  TraceSink* trace = nullptr;  ///< kRollback + kResync spans
  uint64_t session = 0;
};

/// Registers the canonical engine instrument set in `reg` and returns a
/// bundle pointing at it.  `labels` is applied to every instrument (e.g.
/// {{"session", name}}); `trace`/`session` are copied into the bundle.
EngineHooks make_engine_hooks(MetricsRegistry& reg, Labels labels = {},
                              TraceSink* trace = nullptr,
                              uint64_t session = 0);

ExecutorHooks make_executor_hooks(MetricsRegistry& reg, Labels labels = {},
                                  TraceSink* trace = nullptr);

/// `engine` is stored as-is (pass a bundle with the same registry/labels to
/// fold replay-monitor engine metrics into the checker's instruments).
LeveledHooks make_leveled_hooks(MetricsRegistry& reg, Labels labels = {},
                                TraceSink* trace = nullptr,
                                uint64_t session = 0,
                                const EngineHooks* engine = nullptr);

}  // namespace selin::obs
