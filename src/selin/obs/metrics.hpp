// Low-overhead metrics core of the observability subsystem.
//
// The monitors this repo builds are meant to watch long-lived concurrent
// systems, so the monitor itself must be watchable without perturbing the
// thing it measures.  Three instrument kinds cover what the engine, the
// executor, the leveled checker and the service need to expose:
//
//   * Counter — monotone event counts (slices run, tasks posted).  Writes
//     land on per-lane cache-line-padded slots indexed by a stable
//     per-thread lane, so concurrent writers never contend on one line;
//     value() aggregates the slots at read time.  Reads are racy-by-design
//     snapshots (monotone counters only ever undercount in-flight adds).
//
//   * Gauge — a last-written level (snapshot-stripe occupancy).  add() is
//     lane-sharded like Counter; set() collapses the value into lane 0 and
//     is reserved for single-writer (controller-thread) gauges.
//
//   * Histogram — fixed-bucket log2 distribution for latencies and widths.
//     record() is two relaxed atomic increments plus a CAS-free max update;
//     the bucket of value v is bit_width(v), so bucket b counts values in
//     [2^(b-1), 2^b) and no configuration or allocation is ever needed.
//
// MetricsRegistry owns instruments by (name, labels) identity: the first
// caller registers, later callers get the same instrument back, and
// snapshot() walks everything into a plain-data MetricsSnapshot that the
// export layer (obs/export.hpp) renders as JSON or Prometheus text.
// Registration takes a mutex; the hot path never touches the registry —
// components resolve their instruments once at attach time and keep raw
// pointers (stable for the registry's lifetime; entries are deque-backed
// and never erased).
//
// Cost when unattached: the instrumented components hold a null hooks
// pointer (obs/hooks.hpp) and skip everything behind one branch — the
// overhead bench (bench/bench_obs_overhead.cpp) pins both that and the
// attached cost.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace selin::obs {

/// Slots a sharded instrument spreads its writers over.  A power of two so
/// the lane hash is a mask; 16 covers kAutoMaxLanes-sized pools twice over.
inline constexpr size_t kMetricLanes = 16;

/// Stable per-thread lane in [0, kMetricLanes): threads pick distinct lanes
/// round-robin on first use, so up to kMetricLanes concurrent writers never
/// share a slot (beyond that, lanes recycle).
size_t this_thread_lane();

/// One cache-line-padded counter slot (the sharding unit).
struct alignas(64) MetricCell {
  std::atomic<uint64_t> v{0};
};

class Counter {
 public:
  void add(uint64_t n) { cells_[this_thread_lane()].v.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (const MetricCell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  MetricCell cells_[kMetricLanes];
};

class Gauge {
 public:
  /// Lane-sharded delta (value() sums the lanes).
  void add(int64_t d) {
    cells_[this_thread_lane()].v.fetch_add(static_cast<uint64_t>(d),
                                           std::memory_order_relaxed);
  }
  /// Absolute level; single-writer gauges only (collapses into lane 0).
  void set(int64_t v) {
    cells_[0].v.store(static_cast<uint64_t>(v), std::memory_order_relaxed);
    for (size_t i = 1; i < kMetricLanes; ++i) {
      cells_[i].v.store(0, std::memory_order_relaxed);
    }
  }

  int64_t value() const {
    uint64_t total = 0;
    for (const MetricCell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return static_cast<int64_t>(total);
  }

 private:
  MetricCell cells_[kMetricLanes];
};

/// Fixed-bucket base-2 log-scale histogram.  Bucket b counts values v with
/// std::bit_width(v) == b, i.e. bucket 0 holds v == 0 and bucket b >= 1
/// holds [2^(b-1), 2^b).  64 buckets span the whole uint64_t range, so
/// nanosecond latencies and frontier widths share one shape with ~2x
/// resolution and zero configuration.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(v) in [0, 64]

  void record(uint64_t v);

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket b (2^b - 1; saturates at UINT64_MAX).
  static uint64_t bucket_bound(size_t b);
  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]) of
  /// the recorded values — a log-resolution estimate, not an exact rank.
  uint64_t approx_quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Metric labels: sorted (key, value) pairs; part of the instrument's
/// identity in the registry.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Plain-data copy of one instrument at snapshot time.
struct MetricValue {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;                  // kCounter
  int64_t gauge = 0;                     // kGauge
  uint64_t count = 0, sum = 0, max = 0;  // kHistogram
  /// Non-empty buckets only: (inclusive upper bound, count).
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricValue> values;

  /// First value with this name (and, if given, exact labels); nullptr when
  /// absent.  Test/diagnostic convenience.
  const MetricValue* find(std::string_view name,
                          const Labels* labels = nullptr) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-register.  The returned reference is stable for the registry's
  /// lifetime; repeated calls with the same (name, labels) return the same
  /// instrument.  Requesting an existing name with a different kind throws
  /// std::logic_error (a misconfiguration, not a runtime condition).
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  /// Consistent-enough copy of every instrument: each value is an atomic
  /// read; concurrent writers may land between reads of different
  /// instruments (monotone counters only ever read low).
  MetricsSnapshot snapshot() const;

  size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& find_or_make(std::string_view name, Labels&& labels,
                      MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // deque: stable addresses, never erased
};

}  // namespace selin::obs
