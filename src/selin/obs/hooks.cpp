#include "selin/obs/hooks.hpp"

namespace selin::obs {

namespace {
Labels with(Labels base, std::string key, std::string value) {
  base.emplace_back(std::move(key), std::move(value));
  return base;
}
}  // namespace

EngineHooks make_engine_hooks(MetricsRegistry& reg, Labels labels,
                              TraceSink* trace, uint64_t session) {
  EngineHooks h;
  h.round_ns_seq =
      &reg.histogram("engine_round_ns", with(labels, "mode", "seq"));
  h.round_ns_par =
      &reg.histogram("engine_round_ns", with(labels, "mode", "par"));
  h.frontier_width = &reg.histogram("engine_frontier_width", labels);
  h.trace = trace;
  h.session = session;
  return h;
}

ExecutorHooks make_executor_hooks(MetricsRegistry& reg, Labels labels,
                                  TraceSink* trace) {
  ExecutorHooks h;
  h.phase_ns = &reg.histogram("exec_phase_ns", labels);
  h.phase_slices = &reg.histogram("exec_phase_slices", labels);
  h.slices_caller =
      &reg.counter("exec_slices_total", with(labels, "by", "caller"));
  h.slices_worker =
      &reg.counter("exec_slices_total", with(labels, "by", "worker"));
  h.posts = &reg.counter("exec_posts_total", labels);
  h.helps = &reg.counter("exec_helps_total", labels);
  h.trace = trace;
  return h;
}

LeveledHooks make_leveled_hooks(MetricsRegistry& reg, Labels labels,
                                TraceSink* trace, uint64_t session,
                                const EngineHooks* engine) {
  LeveledHooks h;
  h.rollback_depth = &reg.histogram("leveled_rollback_depth", labels);
  h.resync_ns = &reg.histogram("leveled_resync_ns", labels);
  h.stripes_pending = &reg.gauge("leveled_stripes_pending", labels);
  h.engine = engine;
  h.trace = trace;
  h.session = session;
  return h;
}

}  // namespace selin::obs
