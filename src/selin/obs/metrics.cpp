#include "selin/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace selin::obs {

size_t this_thread_lane() {
  static std::atomic<size_t> next{0};
  thread_local const size_t lane =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricLanes - 1);
  return lane;
}

void Histogram::record(uint64_t v) {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

uint64_t Histogram::bucket_bound(size_t b) {
  if (b >= 64) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << b) - 1;
}

uint64_t Histogram::approx_quantile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile, 1-based; ceil so q=1 lands on the last value.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.999999));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return bucket_bound(b);
  }
  return bucket_bound(kBuckets - 1);
}

const MetricValue* MetricsSnapshot::find(std::string_view name,
                                         const Labels* labels) const {
  for (const MetricValue& v : values) {
    if (v.name != name) continue;
    if (labels != nullptr && v.labels != *labels) continue;
    return &v;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_make(std::string_view name,
                                                      Labels&& labels,
                                                      MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name && e.labels == labels) {
      if (e.kind != kind) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return e;
    }
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.labels = std::move(labels);
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: e.c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: e.g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram: e.h = std::make_unique<Histogram>(); break;
  }
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_make(name, std::move(labels), MetricKind::kCounter).c;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_make(name, std::move(labels), MetricKind::kGauge).g;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  return *find_or_make(name, std::move(labels), MetricKind::kHistogram).h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.values.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricValue v;
    v.name = e.name;
    v.labels = e.labels;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        v.counter = e.c->value();
        break;
      case MetricKind::kGauge:
        v.gauge = e.g->value();
        break;
      case MetricKind::kHistogram:
        v.count = e.h->count();
        v.sum = e.h->sum();
        v.max = e.h->max();
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          const uint64_t n = e.h->bucket(b);
          if (n != 0) v.buckets.emplace_back(Histogram::bucket_bound(b), n);
        }
        break;
    }
    snap.values.push_back(std::move(v));
  }
  return snap;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace selin::obs
