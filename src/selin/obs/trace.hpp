// Lightweight trace layer: typed span events from the engine, the executor,
// the leveled checker and the service, delivered to a pluggable sink.
//
// Metrics (obs/metrics.hpp) aggregate; traces explain.  A latency histogram
// says rollback replays got slower, the trace says *which* resync replayed
// 400 levels and what the tuner did two rounds earlier.  Events are coarse —
// one per feed round, executor phase, rollback, tuner decision or drain
// round, never per configuration — so a mutex-protected sink is cheap
// relative to the work each event describes.
//
// Two sinks ship:
//   * RingRecorder — bounded in-memory ring, oldest events overwritten;
//     the always-on flight recorder a service can keep attached and dump
//     after an anomaly.
//   * JsonlSink — one JSON object per line to a stream/file
//     (`selin_check --trace <file>`); the machine-readable export.
//
// Every record() stamps a global sequence number, so events of one session
// (or one component) stay totally ordered however many threads emit them.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace selin::obs {

/// Typed span/point events.  The payload slots p0..p5 are per-kind (see
/// each enumerator); unused slots are zero.
enum class SpanKind : uint8_t {
  /// One engine closure round servicing a run of responses.
  /// p0 = mode (0 sequential, 1 parallel), p1 = post-run frontier width,
  /// p2 = responses in the run, p3 = total events fed so far.
  kFeedRound,
  /// One Executor::run_phase dispatch.
  /// p0 = slices, p1 = slices run by the caller, p2 = slices run by workers.
  kExecPhase,
  /// One leveled-checker rollback.
  /// p0 = lowest dirty level, p1 = levels to replay, p2 = checkpoints kept.
  kRollback,
  /// One leveled-checker resync (possibly a whole rollback storm).
  /// p0 = dirty levels in the batch, p1 = lowest dirty level,
  /// p2 = levels replayed, p3 = levels fed after the resync.
  kResync,
  /// One AutoTuner decision that changed a knob.
  /// p0/p1 = engage before/after, p2/p3 = retreat before/after,
  /// p4/p5 = lanes before/after.
  kTunerDecision,
  /// One MonitorService drain round.
  /// p0 = sessions serviced, p1 = events drained, p2 = events still pending.
  kDrainRound,
  /// One session batch inside a drain round.
  /// p0 = batch size, p1 = session events fed after the batch,
  /// p2 = status (0 ok, 1 rejected, 2 overflowed).
  kSessionBatch,
};

const char* to_string(SpanKind k);

struct TraceEvent {
  SpanKind kind = SpanKind::kFeedRound;
  uint64_t session = 0;   ///< session id (service) or 0 (single-tenant)
  uint64_t seq = 0;       ///< stamped by the sink: global record order
  uint64_t start_ns = 0;  ///< steady-clock ns since process start
  uint64_t dur_ns = 0;    ///< 0 for point events
  uint64_t p0 = 0, p1 = 0, p2 = 0, p3 = 0, p4 = 0, p5 = 0;
};

/// Steady-clock nanoseconds since the first call in this process (keeps
/// trace timestamps small and host-epoch-free).
uint64_t now_ns();

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Thread-safe; stamps ev.seq.
  virtual void record(TraceEvent ev) = 0;
};

/// Bounded in-memory flight recorder: keeps the most recent `capacity`
/// events, counts what it had to drop.
class RingRecorder : public TraceSink {
 public:
  explicit RingRecorder(size_t capacity = 4096);

  void record(TraceEvent ev) override;

  /// Retained events, oldest first (copy; the ring keeps recording).
  std::vector<TraceEvent> events() const;
  /// Retained events, oldest first, clearing the ring.
  std::vector<TraceEvent> drain();

  uint64_t recorded() const;  ///< total record() calls
  uint64_t dropped() const;   ///< events overwritten by newer ones
  size_t capacity() const { return cap_; }

 private:
  std::vector<TraceEvent> ordered_locked() const;

  const size_t cap_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // grows to cap_, then wraps at head_
  size_t head_ = 0;               // next write position once full
  uint64_t seq_ = 0;
};

/// One JSON object per line, e.g.
///   {"seq":3,"kind":"feed_round","session":0,"t_ns":1201,"dur_ns":87,
///    "p0":0,"p1":4,"p2":2,"p3":10}
/// Keys are stable; p-slots are spelled out even when zero so consumers
/// need no per-kind schema.
class JsonlSink : public TraceSink {
 public:
  /// Writes to a caller-owned stream (must outlive the sink).
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing; ok() reports whether that worked.
  explicit JsonlSink(const std::string& path);

  bool ok() const { return out_ != nullptr && out_->good(); }

  void record(TraceEvent ev) override;
  void flush();

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::mutex mu_;
  uint64_t seq_ = 0;
};

}  // namespace selin::obs
