// Machine-readable export of the observability state.
//
// Two formats over one MetricsSnapshot:
//
//   * snapshot_json — a single JSON document:
//       {"metrics":[{"name":...,"labels":{...},"kind":"counter","value":N},
//                   {...,"kind":"histogram","count":N,"sum":N,"max":N,
//                    "p50":N,"p99":N,"buckets":[[le,count],...]}, ...]}
//     (`selin_check --metrics <file|->`, MonitorService::metrics_snapshot
//     consumers, the future ingest daemon's stats endpoint).
//
//   * prometheus_text — the Prometheus exposition format, one line per
//     sample; histograms expand into cumulative `_bucket{le=...}` samples
//     plus `_sum`/`_count`, so the output scrapes directly.
//
// engine_stats_json serializes engine::EngineStats with stable key names —
// the `selin_check --stats-json` contract (tests/selin_check_cli_test.sh
// pins the keys) — and sample_engine_stats mirrors the same counters into
// registry gauges so engine totals appear next to the obs instruments in
// every export.
#pragma once

#include <string>

#include "selin/engine/stats.hpp"
#include "selin/obs/metrics.hpp"

namespace selin::obs {

std::string snapshot_json(const MetricsSnapshot& snap);

/// Convenience: snapshot `reg` and render it.
std::string snapshot_json(const MetricsRegistry& reg);

std::string prometheus_text(const MetricsSnapshot& snap);
std::string prometheus_text(const MetricsRegistry& reg);

/// One JSON object with every EngineStats counter under a stable key
/// (lanes, events_fed, rounds_sequential, rounds_parallel, peak_frontier,
/// dedup_probes, dedup_hits, states_recycled, engage_width, retreat_width,
/// mode_switches, tuner_updates, probe_batches, prefetch_batches,
/// filter_in_place_rounds, priors_applied).
std::string engine_stats_json(const engine::EngineStats& s);

/// Mirrors `s` into gauges named engine_<counter> (labels applied to each),
/// overwriting earlier samples.  Call at snapshot/export time — gauge
/// set() is controller-thread-only.
void sample_engine_stats(MetricsRegistry& reg, const engine::EngineStats& s,
                         Labels labels = {});

}  // namespace selin::obs
