#include "selin/obs/export.hpp"

#include <algorithm>
#include <cstdio>

namespace selin::obs {

namespace {

// Minimal JSON string escaping (names/labels are repo-controlled, but a
// session name is user input — file paths with quotes must not break the
// document).
void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    append_escaped(out, k);
    out += ":";
    append_escaped(out, v);
  }
  out += "}";
}

/// Quantile bound from the snapshot's (le, count) rows — same estimate
/// Histogram::approx_quantile computes live.
uint64_t snap_quantile(const MetricValue& v, double q) {
  if (v.count == 0) return 0;
  const auto rank = static_cast<uint64_t>(
      q * static_cast<double>(v.count) + 0.999999);
  uint64_t seen = 0;
  for (const auto& [le, n] : v.buckets) {
    seen += n;
    if (seen >= std::max<uint64_t>(rank, 1)) return le;
  }
  return v.buckets.empty() ? 0 : v.buckets.back().first;
}

}  // namespace

std::string snapshot_json(const MetricsSnapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& v : snap.values) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    append_escaped(out, v.name);
    out += ",\"labels\":";
    append_labels_json(out, v.labels);
    out += ",\"kind\":\"";
    out += kind_name(v.kind);
    out += "\"";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(v.counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(v.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(v.count);
        out += ",\"sum\":" + std::to_string(v.sum);
        out += ",\"max\":" + std::to_string(v.max);
        out += ",\"p50\":" + std::to_string(snap_quantile(v, 0.5));
        out += ",\"p99\":" + std::to_string(snap_quantile(v, 0.99));
        out += ",\"buckets\":[";
        bool bf = true;
        for (const auto& [le, n] : v.buckets) {
          if (!bf) out += ",";
          bf = false;
          out += "[" + std::to_string(le) + "," + std::to_string(n) + "]";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string snapshot_json(const MetricsRegistry& reg) {
  return snapshot_json(reg.snapshot());
}

namespace {

/// `name{label="v",...}` or `name{}`-less form when no labels.
void append_prom_series(std::string& out, const std::string& name,
                        const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_val = {}) {
  out += name;
  if (!labels.empty() || extra_key != nullptr) {
    out += "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ",";
      first = false;
      out += k + "=\"" + v + "\"";
    }
    if (extra_key != nullptr) {
      if (!first) out += ",";
      out += std::string(extra_key) + "=\"" + extra_val + "\"";
    }
    out += "}";
  }
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const MetricValue& v : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter:
        append_prom_series(out, v.name, v.labels);
        out += " " + std::to_string(v.counter) + "\n";
        break;
      case MetricKind::kGauge:
        append_prom_series(out, v.name, v.labels);
        out += " " + std::to_string(v.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cum = 0;
        for (const auto& [le, n] : v.buckets) {
          cum += n;
          append_prom_series(out, v.name + "_bucket", v.labels, "le",
                             std::to_string(le));
          out += " " + std::to_string(cum) + "\n";
        }
        append_prom_series(out, v.name + "_bucket", v.labels, "le", "+Inf");
        out += " " + std::to_string(v.count) + "\n";
        append_prom_series(out, v.name + "_sum", v.labels);
        out += " " + std::to_string(v.sum) + "\n";
        append_prom_series(out, v.name + "_count", v.labels);
        out += " " + std::to_string(v.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& reg) {
  return prometheus_text(reg.snapshot());
}

std::string engine_stats_json(const engine::EngineStats& s) {
  std::string out = "{";
  out += "\"lanes\":" + std::to_string(s.lanes);
  out += ",\"events_fed\":" + std::to_string(s.events_fed);
  out += ",\"rounds_sequential\":" + std::to_string(s.rounds_sequential);
  out += ",\"rounds_parallel\":" + std::to_string(s.rounds_parallel);
  out += ",\"peak_frontier\":" + std::to_string(s.peak_frontier);
  out += ",\"dedup_probes\":" + std::to_string(s.dedup_probes);
  out += ",\"dedup_hits\":" + std::to_string(s.dedup_hits);
  out += ",\"states_recycled\":" + std::to_string(s.states_recycled);
  out += ",\"engage_width\":" + std::to_string(s.engage_width);
  out += ",\"retreat_width\":" + std::to_string(s.retreat_width);
  out += ",\"mode_switches\":" + std::to_string(s.mode_switches);
  out += ",\"tuner_updates\":" + std::to_string(s.tuner_updates);
  out += ",\"probe_batches\":" + std::to_string(s.probe_batches);
  out += ",\"prefetch_batches\":" + std::to_string(s.prefetch_batches);
  out += ",\"filter_in_place_rounds\":" +
         std::to_string(s.filter_in_place_rounds);
  out += ",\"priors_applied\":" + std::to_string(s.priors_applied);
  out += "}";
  return out;
}

void sample_engine_stats(MetricsRegistry& reg, const engine::EngineStats& s,
                         Labels labels) {
  auto set = [&reg, &labels](const char* name, uint64_t v) {
    reg.gauge(name, labels).set(static_cast<int64_t>(v));
  };
  set("engine_lanes", s.lanes);
  set("engine_events_fed", s.events_fed);
  set("engine_rounds_sequential", s.rounds_sequential);
  set("engine_rounds_parallel", s.rounds_parallel);
  set("engine_peak_frontier", s.peak_frontier);
  set("engine_dedup_probes", s.dedup_probes);
  set("engine_dedup_hits", s.dedup_hits);
  set("engine_states_recycled", s.states_recycled);
  set("engine_engage_width", s.engage_width);
  set("engine_retreat_width", s.retreat_width);
  set("engine_mode_switches", s.mode_switches);
  set("engine_tuner_updates", s.tuner_updates);
  set("engine_probe_batches", s.probe_batches);
  set("engine_prefetch_batches", s.prefetch_batches);
  set("engine_filter_in_place_rounds", s.filter_in_place_rounds);
  set("engine_priors_applied", s.priors_applied);
}

}  // namespace selin::obs
