// Run-length compressed op-sets for the frontier checkers' configurations.
//
// A configuration's bookkeeping sets (linearized-but-unresponded ops, the
// interval machine's open set) hold one entry per concurrently pending
// operation.  Stored flat, their cost is O(elements) per config and the
// per-clone copy dominates closure expansion on wide windows.  But the keys
// are far from random: monitors key these sets *seq-major* (seq in the high
// word, pid in the low word — see lincheck/config.hpp), so a cohort of
// processes pending at the same sequence number occupies one contiguous key
// run, and the common shape is a dense prefix plus a few holes.  A
// run-length interval representation stores that in O(#runs).
//
// Three layers, all backed by SmallVec (inline for the typical 1-3 runs,
// heap spill for adversarial fragmentation):
//
//   IntervalSet          ids only; hybrid layout: an explicit dense-prefix
//                        watermark [base, mark) with O(1) membership and
//                        O(1) append-at-watermark, plus a sorted (start,
//                        len) interval tail for everything past the first
//                        hole.  "Prefix + h holes" costs O(h) runs.
//   HashedIntervalSet<H> IntervalSet + an incrementally maintained XOR
//                        (Zobrist) hash: insert/erase/insert_range patch the
//                        cached hash per element, so fingerprint() is a
//                        cached read and never walks ids.  rehash() is the
//                        from-scratch cross-check for tests/audits.
//   ValueRunSet<H>       a (key -> Value) map as value-annotated runs
//                        (start, len, value): a run of keys sharing one
//                        value — e.g. a cohort of enqueue acks — costs one
//                        24-byte entry instead of len * 16.  Same
//                        incremental-hash discipline, with the element hash
//                        fed both key and value.
//
// Degeneration: when neighbors carry distinct values (ValueRunSet) or the
// key space is shredded (hole-heavy ragged schedules), every element gets
// its own run and the representation costs ~1.5x the flat vector.  The
// fuzz/differential tests drive exactly that shape; DESIGN.md ("Compressed
// op-sets") discusses the trade.
//
// Preconditions: keys must stay below 2^64-1 (no wraparound runs) and a
// single run below 2^32 elements — both guaranteed by the seq-major packing
// of 32-bit (pid, seq) pairs.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "selin/util/small_vec.hpp"
#include "selin/util/types.hpp"

namespace selin {

/// Resident bytes a flat SmallVec<Elem, InlineN>-based set would occupy for
/// `elems` elements: header + always-present inline storage, plus the heap
/// block (capacity doubles from InlineN) once spilled.  This is the cost
/// model of the pre-interval representation, used by the footprint facet
/// (bench_frontier_memory) to report the compression ratio against a
/// baseline that no longer compiles.
constexpr size_t small_vec_model_bytes(size_t elems, size_t inline_n,
                                       size_t elem_size) {
  size_t bytes = 16 + inline_n * elem_size;
  if (elems > inline_n) {
    size_t cap = inline_n;
    while (cap < elems) cap *= 2;
    bytes += cap * elem_size;
  }
  return bytes;
}

struct IdRun {
  uint64_t start;
  uint64_t len;  // number of consecutive keys; always >= 1

  friend bool operator==(const IdRun& a, const IdRun& b) {
    return a.start == b.start && a.len == b.len;
  }
};

/// Sorted set of uint64 keys as a dense-prefix watermark plus an interval
/// tail.  The prefix [base_, mark_) is the set's first run; tail runs are
/// sorted, disjoint, and separated from the prefix and from each other by at
/// least one missing key (maximal runs), so the representation is canonical:
/// equal sets have equal representations.
class IntervalSet {
 public:
  bool empty() const { return base_ == mark_; }
  size_t size() const { return size_; }
  /// Total runs, counting the dense prefix (when non-empty) as one.
  size_t run_count() const { return (empty() ? 0 : 1) + tail_.size(); }

  bool contains(uint64_t k) const {
    if (k >= base_ && k < mark_) return true;  // watermark fast path
    return tail_find(k) != kNone;
  }

  /// Inserts `k`; false iff already present.
  bool insert(uint64_t k) {
    if (contains(k)) return false;
    ++size_;
    if (base_ == mark_) {  // was empty
      base_ = k;
      mark_ = k + 1;
    } else if (k == mark_) {  // append at the watermark: O(1) amortized
      ++mark_;
      absorb_tail_head();
    } else if (k < base_) {
      if (k + 1 == base_) {
        --base_;
      } else {  // new first run; the old prefix becomes the tail head
        tail_.insert_at(0, IdRun{base_, mark_ - base_});
        base_ = k;
        mark_ = k + 1;
      }
    } else {
      insert_tail(k);
    }
    return true;
  }

  /// Removes `k`; false iff not present.
  bool erase(uint64_t k) {
    if (k >= base_ && k < mark_) {
      --size_;
      if (base_ + 1 == mark_) {  // prefix had one element
        promote_tail();
      } else if (k + 1 == mark_) {
        --mark_;
      } else if (k == base_) {
        ++base_;
      } else {  // hole inside the prefix: the remainder joins the tail
        tail_.insert_at(0, IdRun{k + 1, mark_ - (k + 1)});
        mark_ = k;
      }
      return true;
    }
    size_t idx = tail_find(k);
    if (idx == kNone) return false;
    --size_;
    const IdRun r = tail_[idx];  // copy: insert_at below may reallocate
    if (r.len == 1) {
      tail_.erase_at(idx);
    } else if (k == r.start) {
      ++tail_[idx].start;
      --tail_[idx].len;
    } else if (k == r.start + r.len - 1) {
      --tail_[idx].len;
    } else {
      tail_[idx].len = k - r.start;
      tail_.insert_at(idx + 1, IdRun{k + 1, r.start + r.len - (k + 1)});
    }
    return true;
  }

  /// Range union of [s, s+len) in one operation (the batch-feed path).
  /// Precondition: the range is disjoint from the set.
  void insert_range(uint64_t s, uint64_t len) {
    if (len == 0) return;
    assert(!contains(s) && !contains(s + len - 1));
    size_ += len;
    const uint64_t e = s + len;  // exclusive
    if (base_ == mark_) {
      base_ = s;
      mark_ = e;
    } else if (s == mark_) {
      mark_ = e;
      absorb_tail_head();
    } else if (e <= base_) {
      if (e == base_) {
        base_ = s;
      } else {
        tail_.insert_at(0, IdRun{base_, mark_ - base_});
        base_ = s;
        mark_ = e;
      }
    } else {
      assert(s > mark_);  // overlap with the prefix violates disjointness
      insert_tail_range(s, len);
    }
  }

  /// The i-th smallest key (0-based).  O(run_count).
  uint64_t nth(size_t i) const {
    assert(i < size_);
    const uint64_t plen = mark_ - base_;
    if (i < plen) return base_ + i;
    i -= plen;
    for (const IdRun& r : tail_) {
      if (i < r.len) return r.start + i;
      i -= r.len;
    }
    assert(false);
    return 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (uint64_t k = base_; k < mark_; ++k) f(k);
    for (const IdRun& r : tail_) {
      for (uint64_t i = 0; i < r.len; ++i) f(r.start + i);
    }
  }

  template <typename F>
  void for_each_run(F&& f) const {
    if (!empty()) f(IdRun{base_, mark_ - base_});
    for (const IdRun& r : tail_) f(r);
  }

  void clear() {
    base_ = mark_ = 0;
    size_ = 0;
    tail_.clear();
  }

  /// Bytes this set occupies in memory (object + any heap spill).
  size_t resident_bytes() const {
    return sizeof(*this) + tail_.heap_bytes();
  }

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    if (a.base_ != b.base_ || a.mark_ != b.mark_ ||
        a.tail_.size() != b.tail_.size()) {
      return false;
    }
    for (size_t i = 0; i < a.tail_.size(); ++i) {
      if (!(a.tail_[i] == b.tail_[i])) return false;
    }
    return true;
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// Index of the tail run containing `k`, or kNone.
  size_t tail_find(uint64_t k) const {
    size_t lo = 0, hi = tail_.size();
    while (lo < hi) {  // first run with start > k
      size_t mid = (lo + hi) / 2;
      if (tail_[mid].start <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) return kNone;
    const IdRun& r = tail_[lo - 1];
    return (k - r.start < r.len) ? lo - 1 : kNone;
  }

  /// First tail index with start > k (k not contained in any run).
  size_t tail_upper(uint64_t k) const {
    size_t lo = 0, hi = tail_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (tail_[mid].start <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Pull the tail head into the prefix when the watermark reaches it.
  void absorb_tail_head() {
    if (!tail_.empty() && tail_[0].start == mark_) {
      mark_ += tail_[0].len;
      tail_.erase_at(0);
    }
  }

  /// The prefix emptied; its successor run (if any) becomes the new prefix.
  void promote_tail() {
    if (tail_.empty()) {
      base_ = mark_ = 0;
    } else {
      base_ = tail_[0].start;
      mark_ = base_ + tail_[0].len;
      tail_.erase_at(0);
    }
  }

  void insert_tail(uint64_t k) { insert_tail_range(k, 1); }

  /// Insert the disjoint range [s, s+len) with s > mark_, merging into
  /// adjacent runs on either side.
  void insert_tail_range(uint64_t s, uint64_t len) {
    const uint64_t e = s + len;  // exclusive
    const size_t idx = tail_upper(s);
    const bool join_left =
        idx > 0 && tail_[idx - 1].start + tail_[idx - 1].len == s;
    const bool join_right = idx < tail_.size() && tail_[idx].start == e;
    assert(idx == 0 ||
           tail_[idx - 1].start + tail_[idx - 1].len <= s);  // disjoint
    assert(idx == tail_.size() || e <= tail_[idx].start);
    if (join_left && join_right) {
      tail_[idx - 1].len += len + tail_[idx].len;
      tail_.erase_at(idx);
    } else if (join_left) {
      tail_[idx - 1].len += len;
    } else if (join_right) {
      tail_[idx].start = s;
      tail_[idx].len += len;
    } else {
      tail_.insert_at(idx, IdRun{s, len});
    }
  }

  uint64_t base_ = 0;  // dense prefix [base_, mark_); empty iff base_==mark_
  uint64_t mark_ = 0;
  uint64_t size_ = 0;
  SmallVec<IdRun, 2> tail_;  // runs past the first hole; start > mark_
};

/// IntervalSet plus an incrementally maintained Zobrist hash: the cached
/// XOR of ElemHash over the members, patched per element at every mutation,
/// so reading the hash is O(1) and never walks ids.
template <uint64_t (*ElemHash)(uint64_t)>
class HashedIntervalSet {
 public:
  uint64_t hash() const { return hash_; }

  /// From-scratch recomputation over the runs (tests/audits cross-check the
  /// incremental hash against this; never on the hot path).
  uint64_t rehash() const {
    uint64_t h = 0;
    set_.for_each([&](uint64_t k) { h ^= ElemHash(k); });
    return h;
  }

  bool insert(uint64_t k) {
    if (!set_.insert(k)) return false;
    hash_ ^= ElemHash(k);
    return true;
  }

  bool erase(uint64_t k) {
    if (!set_.erase(k)) return false;
    hash_ ^= ElemHash(k);
    return true;
  }

  void insert_range(uint64_t s, uint64_t len) {
    set_.insert_range(s, len);
    for (uint64_t i = 0; i < len; ++i) hash_ ^= ElemHash(s + i);
  }

  void clear() {
    set_.clear();
    hash_ = 0;
  }

  bool empty() const { return set_.empty(); }
  size_t size() const { return set_.size(); }
  size_t run_count() const { return set_.run_count(); }
  bool contains(uint64_t k) const { return set_.contains(k); }
  uint64_t nth(size_t i) const { return set_.nth(i); }
  size_t resident_bytes() const {
    return sizeof(*this) - sizeof(IntervalSet) + set_.resident_bytes();
  }

  template <typename F>
  void for_each(F&& f) const {
    set_.for_each(std::forward<F>(f));
  }
  template <typename F>
  void for_each_run(F&& f) const {
    set_.for_each_run(std::forward<F>(f));
  }

  const IntervalSet& ids() const { return set_; }

 private:
  IntervalSet set_;
  uint64_t hash_ = 0;
};

struct ValueRun {
  uint64_t start;
  uint32_t len;  // >= 1; every key in [start, start+len) maps to v
  Value v;
};

/// A (uint64 key -> Value) map as value-annotated maximal runs, with the
/// same incremental Zobrist-hash discipline as HashedIntervalSet (the
/// element hash sees both key and value).  Canonical: adjacent runs with
/// equal values are always merged, so equal maps have equal representations
/// regardless of insertion order.
template <uint64_t (*ElemHash)(uint64_t, Value)>
class ValueRunSet {
 public:
  uint64_t hash() const { return hash_; }

  uint64_t rehash() const {
    uint64_t h = 0;
    for_each([&](uint64_t k, Value v) { h ^= ElemHash(k, v); });
    return h;
  }

  bool empty() const { return runs_.empty(); }
  size_t size() const { return size_; }
  size_t run_count() const { return runs_.size(); }

  bool contains(uint64_t k) const { return find_run(k) != kNone; }

  /// Pointer to the value mapped at `k` (valid until the next mutation), or
  /// nullptr.  O(log run_count).
  const Value* find(uint64_t k) const {
    size_t idx = find_run(k);
    return idx == kNone ? nullptr : &runs_[idx].v;
  }

  /// Maps `k` to `v`.  Precondition: `k` is absent.
  void add(uint64_t k, Value v) {
    assert(!contains(k));
    hash_ ^= ElemHash(k, v);
    ++size_;
    const size_t idx = upper(k);
    const bool join_left = idx > 0 && runs_[idx - 1].v == v &&
                           runs_[idx - 1].start + runs_[idx - 1].len == k;
    const bool join_right = idx < runs_.size() && runs_[idx].v == v &&
                            runs_[idx].start == k + 1;
    if (join_left && join_right) {
      runs_[idx - 1].len += 1 + runs_[idx].len;
      runs_.erase_at(idx);
    } else if (join_left) {
      ++runs_[idx - 1].len;
    } else if (join_right) {
      --runs_[idx].start;
      ++runs_[idx].len;
    } else {
      runs_.insert_at(idx, ValueRun{k, 1, v});
    }
  }

  /// Maps every key of [s, s+len) to `v` in one range operation (the batch
  /// path for uniform cohorts).  Precondition: the range is disjoint.
  void add_run(uint64_t s, uint32_t len, Value v) {
    if (len == 0) return;
    assert(!contains(s) && !contains(s + len - 1));
    for (uint32_t i = 0; i < len; ++i) hash_ ^= ElemHash(s + i, v);
    size_ += len;
    const uint64_t e = s + len;
    const size_t idx = upper(s);
    const bool join_left = idx > 0 && runs_[idx - 1].v == v &&
                           runs_[idx - 1].start + runs_[idx - 1].len == s;
    const bool join_right =
        idx < runs_.size() && runs_[idx].v == v && runs_[idx].start == e;
    if (join_left && join_right) {
      runs_[idx - 1].len += len + runs_[idx].len;
      runs_.erase_at(idx);
    } else if (join_left) {
      runs_[idx - 1].len += len;
    } else if (join_right) {
      runs_[idx].start = s;
      runs_[idx].len += len;
    } else {
      runs_.insert_at(idx, ValueRun{s, len, v});
    }
  }

  /// Removes `k`; false iff absent.
  bool remove(uint64_t k) {
    size_t idx = find_run(k);
    if (idx == kNone) return false;
    remove_from_run(idx, k);
    return true;
  }

  /// Removes `k` iff it is present AND mapped to `expect` — the fused
  /// response-filter probe (one search instead of find-then-remove).
  bool remove_if_equals(uint64_t k, Value expect) {
    size_t idx = find_run(k);
    if (idx == kNone || runs_[idx].v != expect) return false;
    remove_from_run(idx, k);
    return true;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const ValueRun& r : runs_) {
      for (uint32_t i = 0; i < r.len; ++i) f(r.start + i, r.v);
    }
  }

  template <typename F>
  void for_each_run(F&& f) const {
    for (const ValueRun& r : runs_) f(r);
  }

  void clear() {
    runs_.clear();
    hash_ = 0;
    size_ = 0;
  }

  size_t resident_bytes() const { return sizeof(*this) + runs_.heap_bytes(); }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  size_t upper(uint64_t k) const {  // first run with start > k
    size_t lo = 0, hi = runs_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (runs_[mid].start <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t find_run(uint64_t k) const {
    size_t idx = upper(k);
    if (idx == 0) return kNone;
    const ValueRun& r = runs_[idx - 1];
    return (k - r.start < r.len) ? idx - 1 : kNone;
  }

  void remove_from_run(size_t idx, uint64_t k) {
    const ValueRun r = runs_[idx];  // copy: insert_at below may reallocate
    hash_ ^= ElemHash(k, r.v);
    --size_;
    if (r.len == 1) {
      runs_.erase_at(idx);
    } else if (k == r.start) {
      ++runs_[idx].start;
      --runs_[idx].len;
    } else if (k == r.start + r.len - 1) {
      --runs_[idx].len;
    } else {  // split around the hole; both halves keep the value
      runs_[idx].len = static_cast<uint32_t>(k - r.start);
      runs_.insert_at(idx + 1,
                      ValueRun{k + 1,
                               static_cast<uint32_t>(r.start + r.len - (k + 1)),
                               r.v});
    }
  }

  SmallVec<ValueRun, 3> runs_;  // sorted by start; disjoint; maximal
  uint64_t hash_ = 0;
  uint64_t size_ = 0;
};

}  // namespace selin
