// Small-size-optimized vector for the checkers' configuration bookkeeping.
//
// A configuration's linearized-op set is bounded by the number of
// concurrently open operations, which wait-free workloads keep tiny (the
// bench histories cap it at 2-4).  Storing those sets inline removes the
// per-clone heap allocation that dominated Config::clone(); the heap spill
// path keeps correctness for adversarial wide-window histories.
//
// Restricted to trivially copyable, trivially destructible T: elements are
// moved with memcpy and never individually destroyed.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace selin {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);
  static_assert(N > 0 && N < UINT32_MAX);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec& o) { assign(o); }
  SmallVec(SmallVec&& o) noexcept { steal(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;  // keep current capacity, just overwrite
      assign(o);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~SmallVec() { release(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }

  /// Insert before index `at` (shifts the tail right).
  void insert_at(size_t at, const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    data_[at] = v;
    ++size_;
  }

  /// Remove index `at`, preserving order.
  void erase_at(size_t at) {
    std::memmove(data_ + at, data_ + at + 1, (size_ - at - 1) * sizeof(T));
    --size_;
  }

  /// Bytes held on the heap (0 while inline) — memory-footprint accounting.
  size_t heap_bytes() const {
    return data_ == inline_buf() ? 0 : cap_ * sizeof(T);
  }

 private:
  void assign(const SmallVec& o) {
    if (o.size_ > cap_) grow(o.size_);
    std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }

  void steal(SmallVec& o) {
    if (o.data_ != o.inline_buf()) {  // steal the heap block
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_buf();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      std::memcpy(inline_buf(), o.data_, o.size_ * sizeof(T));
      data_ = inline_buf();
      cap_ = N;
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  void grow(size_t need) {
    size_t cap = cap_ * 2;
    while (cap < need) cap *= 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(fresh, data_, size_ * sizeof(T));
    release();
    data_ = fresh;
    cap_ = static_cast<uint32_t>(cap);
  }

  void release() {
    if (data_ != inline_buf()) ::operator delete(data_);
  }

  T* inline_buf() { return reinterpret_cast<T*>(storage_); }
  const T* inline_buf() const { return reinterpret_cast<const T*>(storage_); }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* data_ = inline_buf();
  uint32_t size_ = 0;
  uint32_t cap_ = N;
};

}  // namespace selin
