// Sense-reversing spin barrier for benchmark thread coordination.  Benchmarks
// need all worker threads to start an epoch simultaneously; std::barrier
// sleeps, which distorts short measurement windows.
#pragma once

#include <atomic>
#include <cstddef>

namespace selin {

class SpinBarrier {
 public:
  explicit SpinBarrier(size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    bool sense = sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) == sense) {
        // spin
      }
    }
  }

 private:
  const size_t parties_;
  std::atomic<size_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace selin
