// Base-object step accounting.
//
// The paper measures algorithms by *step complexity*: the maximum number of
// base-object operations a process takes to produce a response (Section 2).
// Claim 8.1 and Lemma 7.2 state O(n) step bounds for the verifier and the A*
// wrapper.  Every shared base-object operation in selin calls
// StepCounter::bump() so tests and benches can measure the realized step
// counts and check the O(n) shape empirically (bench B1/B2 in DESIGN.md).
//
// Counting is thread-local and therefore free of contention; it can be
// toggled off globally for throughput benchmarks.
#pragma once

#include <atomic>
#include <cstdint>

namespace selin {

class StepCounter {
 public:
  /// Count one base-object operation (Read, Write, CAS, ...) on the calling
  /// thread.  No-op when disabled.
  static void bump() {
    if (enabled_.load(std::memory_order_relaxed)) ++local();
  }

  /// Steps taken by the calling thread since the last reset_local().
  static uint64_t local_count() { return local(); }
  static void reset_local() { local() = 0; }

  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

 private:
  static uint64_t& local();
  static std::atomic<bool> enabled_;
};

/// RAII helper measuring the steps of a code region on this thread.
class StepProbe {
 public:
  StepProbe() : start_(StepCounter::local_count()) {}
  uint64_t steps() const { return StepCounter::local_count() - start_; }

 private:
  uint64_t start_;
};

}  // namespace selin
