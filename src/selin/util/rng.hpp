// Deterministic, seedable RNG used by workloads, property tests and the
// faulty implementations.  SplitMix64: tiny, fast, good-quality, and — unlike
// std::mt19937 — cheap to construct per operation so randomized schedules are
// reproducible from (seed, pid, seq).
#pragma once

#include <cstdint>

namespace selin {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Bernoulli with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  /// Uniform in [lo, hi].
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace selin
