// Fundamental vocabulary shared by every module of selin.
//
// The paper (Section 2) models a system of n asynchronous crash-prone
// processes p_1..p_n that invoke a single high-level operation Apply(op) on a
// concurrent object, where `op` describes the actual operation (method +
// inputs).  Each Apply input is unique (Section 2, "Apply is invoked with a
// given input op only once"); we guarantee uniqueness by tagging every
// operation with an OpId = (process id, per-process sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace selin {

/// Index of a process (paper: the index i of p_i).  0-based in code.
using ProcId = uint32_t;

/// All operation arguments and results are modeled as 64-bit integers with a
/// few reserved sentinels.  This matches the paper's objects (queues, stacks,
/// sets, priority queues, counters, registers, consensus), whose values are
/// opaque tokens.
using Value = int64_t;

/// Reserved response/argument sentinels.
constexpr Value kEmpty = std::numeric_limits<Value>::min();      ///< "empty"
constexpr Value kOk = std::numeric_limits<Value>::min() + 1;     ///< "ok"/ack
constexpr Value kTrue = 1;
constexpr Value kFalse = 0;
/// Returned by self-enforced implementations instead of a value when the
/// verification layer reports ERROR (Figure 11, line 10).
constexpr Value kError = std::numeric_limits<Value>::min() + 2;
/// "No argument" marker for nullary methods.
constexpr Value kNoArg = std::numeric_limits<Value>::min() + 3;

/// High-level operation methods across every sequential object we implement.
/// A single enum keeps OpDesc POD and lets histories mix objects in tests.
enum class Method : uint8_t {
  // queue
  kEnqueue,
  kDequeue,
  // stack
  kPush,
  kPop,
  // set
  kInsert,
  kRemove,
  kContains,
  // priority queue (min-pq)
  kPqInsert,
  kPqExtractMin,
  // counter
  kInc,
  kCounterRead,
  // read/write register
  kRead,
  kWrite,
  // consensus (Theorem 5.1 formulation: Decide can be invoked several times,
  // the first invocation fixes the decision)
  kDecide,
  // set-sequential exchanger (Section 7.1 generalization exercise)
  kExchange,
  // one-shot write-snapshot task (Section 9.3)
  kWriteSnap,
};

const char* method_name(Method m);

/// Globally unique identity of a high-level operation: which process invoked
/// it and its per-process sequence number.  The paper's invocation pair
/// (p_i, op_i) is represented by an OpId (the pair is unique per Section 2).
struct OpId {
  ProcId pid = 0;
  uint32_t seq = 0;

  constexpr uint64_t packed() const {
    return (static_cast<uint64_t>(pid) << 32) | seq;
  }
  friend constexpr bool operator==(OpId a, OpId b) {
    return a.packed() == b.packed();
  }
  friend constexpr bool operator!=(OpId a, OpId b) { return !(a == b); }
  friend constexpr bool operator<(OpId a, OpId b) {
    return a.packed() < b.packed();
  }
};

/// Description of a high-level operation: identity, method and argument.
/// This is the `op` passed to Apply(op) in the paper.
struct OpDesc {
  OpId id;
  Method method = Method::kRead;
  Value arg = kNoArg;

  friend bool operator==(const OpDesc& a, const OpDesc& b) {
    return a.id == b.id && a.method == b.method && a.arg == b.arg;
  }
};

std::string to_string(const OpDesc& op);
std::string value_string(Value v);

}  // namespace selin

template <>
struct std::hash<selin::OpId> {
  size_t operator()(const selin::OpId& id) const noexcept {
    return std::hash<uint64_t>{}(id.packed());
  }
};
