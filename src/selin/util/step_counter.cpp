#include "selin/util/step_counter.hpp"

namespace selin {

std::atomic<bool> StepCounter::enabled_{true};

uint64_t& StepCounter::local() {
  thread_local uint64_t count = 0;
  return count;
}

}  // namespace selin
