// Arena-backed open-addressing set of 64-bit fingerprints.
//
// This replaces unordered_set<std::string> in the checkers' dedup/memo
// paths.  Design points, all driven by the closure() hot loop:
//  * keys are already well-mixed fingerprints, so the probe index is just
//    the low bits — no re-hashing;
//  * slots carry an epoch instead of a tombstone/empty sentinel, so clear()
//    between feed() calls is O(1) and the table's capacity is retained —
//    steady-state feeds allocate nothing;
//  * tables come from the monitor's monotone Arena; a grown-out table is
//    abandoned to the arena (total waste bounded by the final table size,
//    geometric series), which keeps allocation lock-free and free() out of
//    the hot path entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "selin/util/arena.hpp"

namespace selin {

class FpSet {
 public:
  /// Upper bound on one probe_batch() group — the result is a uint64_t
  /// bitmask, one bit per probed fingerprint.
  static constexpr size_t kMaxBatch = 64;
  /// The table is allocated lazily on first insert: monitors are cloned
  /// eagerly (e.g. the leveled checker's checkpoint copies every few levels)
  /// and most clones stay dormant, so an empty set must cost nothing.
  explicit FpSet(Arena& arena, size_t initial_capacity = 256)
      : arena_(&arena) {
    cap_ = 16;
    while (cap_ < initial_capacity) cap_ *= 2;
  }

  FpSet(const FpSet&) = delete;
  FpSet& operator=(const FpSet&) = delete;

  size_t size() const { return size_; }

  /// Drop all elements; O(1), keeps capacity.
  void clear() {
    ++epoch_;
    size_ = 0;
  }

  bool contains(uint64_t fp) const {
    if (slots_ == nullptr) return false;
    size_t mask = cap_ - 1;
    for (size_t i = fp & mask;; i = (i + 1) & mask) {
      if (slots_[i].epoch != epoch_) return false;
      if (slots_[i].key == fp) return true;
    }
  }

  /// True iff `fp` was not present (and is now inserted).
  bool insert(uint64_t fp) {
    if (slots_ == nullptr) slots_ = fresh_table(cap_);
    if ((size_ + 1) * 4 > cap_ * 3) grow();  // load factor 3/4
    return insert_unchecked(fp);
  }

  /// Ensure capacity for `n` live keys without a grow on any later insert
  /// below that count.  Cheap before the table exists (just raises the lazy
  /// allocation size); afterwards it performs the doubling rehashes up
  /// front, which is the point: callers pre-size from the previous round's
  /// width so no grow lands mid-closure.
  void reserve(size_t n) {
    if (slots_ == nullptr) {
      while (n * 4 > cap_ * 3) cap_ *= 2;
      return;
    }
    while (n * 4 > cap_ * 3) grow();
  }

  /// Group probe of `n <= kMaxBatch` fingerprints: one hoisted capacity
  /// check for the whole batch, one prefetch sweep over every home slot
  /// (each probe is otherwise a dependent random load), then the probes
  /// resolve in order.  Bit i of the result is set iff fps[i] was new (and
  /// is now inserted); duplicates *within* the batch resolve exactly as n
  /// sequential insert() calls would — the first occurrence inserts, later
  /// ones miss.
  uint64_t probe_batch(const uint64_t* fps, size_t n) {
    if (n == 0) return 0;
    if (slots_ == nullptr) slots_ = fresh_table(cap_);
    reserve(size_ + n);
    if (prefetch_enabled() && n >= 2) {
      const size_t mask = cap_ - 1;
      for (size_t k = 0; k < n; ++k) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&slots_[fps[k] & mask], 0, 1);
#endif
      }
    }
    uint64_t fresh = 0;
    for (size_t k = 0; k < n; ++k) {
      if (insert_unchecked(fps[k])) fresh |= uint64_t{1} << k;
    }
    return fresh;
  }

  /// Global prefetch toggle (A/B attribution in bench_closure_hot).  Relaxed
  /// atomic: lanes may observe a flip mid-run, which only changes whether
  /// prefetches are issued, never a probe result.
  static void set_prefetch(bool on) {
    prefetch_flag().store(on, std::memory_order_relaxed);
  }
  static bool prefetch_enabled() {
    return prefetch_flag().load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& prefetch_flag() {
    static std::atomic<bool> on{true};
    return on;
  }

  /// insert() with the capacity check hoisted out (probe_batch's per-probe
  /// body); the caller guarantees room for one more key.
  bool insert_unchecked(uint64_t fp) {
    size_t mask = cap_ - 1;
    size_t i = fp & mask;
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == fp) return false;
      i = (i + 1) & mask;
    }
    slots_[i].key = fp;
    slots_[i].epoch = epoch_;
    ++size_;
    return true;
  }

  struct Slot {
    uint64_t key;
    uint64_t epoch;  // live iff epoch == FpSet::epoch_ (0 = never used)
  };

  Slot* fresh_table(size_t cap) {
    auto* t = static_cast<Slot*>(
        arena_->allocate(cap * sizeof(Slot), alignof(Slot)));
    std::memset(t, 0, cap * sizeof(Slot));
    return t;
  }

  void grow() {
    Slot* old = slots_;
    size_t old_cap = cap_;
    cap_ *= 2;
    slots_ = fresh_table(cap_);  // old table is abandoned to the arena
    size_t mask = cap_ - 1;
    for (size_t j = 0; j < old_cap; ++j) {
      if (old[j].epoch != epoch_) continue;
      size_t i = old[j].key & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i] = old[j];
    }
  }

  Arena* arena_;
  Slot* slots_ = nullptr;
  size_t cap_;
  size_t size_ = 0;
  uint64_t epoch_ = 1;
};

}  // namespace selin
