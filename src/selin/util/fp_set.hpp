// Arena-backed open-addressing set of 64-bit fingerprints.
//
// This replaces unordered_set<std::string> in the checkers' dedup/memo
// paths.  Design points, all driven by the closure() hot loop:
//  * keys are already well-mixed fingerprints, so the probe index is just
//    the low bits — no re-hashing;
//  * slots carry an epoch instead of a tombstone/empty sentinel, so clear()
//    between feed() calls is O(1) and the table's capacity is retained —
//    steady-state feeds allocate nothing;
//  * tables come from the monitor's monotone Arena; a grown-out table is
//    abandoned to the arena (total waste bounded by the final table size,
//    geometric series), which keeps allocation lock-free and free() out of
//    the hot path entirely.
#pragma once

#include <cstdint>
#include <cstring>

#include "selin/util/arena.hpp"

namespace selin {

class FpSet {
 public:
  /// The table is allocated lazily on first insert: monitors are cloned
  /// eagerly (e.g. the leveled checker's checkpoint copies every few levels)
  /// and most clones stay dormant, so an empty set must cost nothing.
  explicit FpSet(Arena& arena, size_t initial_capacity = 256)
      : arena_(&arena) {
    cap_ = 16;
    while (cap_ < initial_capacity) cap_ *= 2;
  }

  FpSet(const FpSet&) = delete;
  FpSet& operator=(const FpSet&) = delete;

  size_t size() const { return size_; }

  /// Drop all elements; O(1), keeps capacity.
  void clear() {
    ++epoch_;
    size_ = 0;
  }

  bool contains(uint64_t fp) const {
    if (slots_ == nullptr) return false;
    size_t mask = cap_ - 1;
    for (size_t i = fp & mask;; i = (i + 1) & mask) {
      if (slots_[i].epoch != epoch_) return false;
      if (slots_[i].key == fp) return true;
    }
  }

  /// True iff `fp` was not present (and is now inserted).
  bool insert(uint64_t fp) {
    if (slots_ == nullptr) slots_ = fresh_table(cap_);
    if ((size_ + 1) * 4 > cap_ * 3) grow();  // load factor 3/4
    size_t mask = cap_ - 1;
    size_t i = fp & mask;
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == fp) return false;
      i = (i + 1) & mask;
    }
    slots_[i].key = fp;
    slots_[i].epoch = epoch_;
    ++size_;
    return true;
  }

 private:
  struct Slot {
    uint64_t key;
    uint64_t epoch;  // live iff epoch == FpSet::epoch_ (0 = never used)
  };

  Slot* fresh_table(size_t cap) {
    auto* t = static_cast<Slot*>(
        arena_->allocate(cap * sizeof(Slot), alignof(Slot)));
    std::memset(t, 0, cap * sizeof(Slot));
    return t;
  }

  void grow() {
    Slot* old = slots_;
    size_t old_cap = cap_;
    cap_ *= 2;
    slots_ = fresh_table(cap_);  // old table is abandoned to the arena
    size_t mask = cap_ - 1;
    for (size_t j = 0; j < old_cap; ++j) {
      if (old[j].epoch != epoch_) continue;
      size_t i = old[j].key & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i] = old[j];
    }
  }

  Arena* arena_;
  Slot* slots_ = nullptr;
  size_t cap_;
  size_t size_ = 0;
  uint64_t epoch_ = 1;
};

}  // namespace selin
