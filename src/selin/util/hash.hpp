// 64-bit fingerprint hashing for the configuration engine.
//
// The linearizability checkers deduplicate configurations billions of times
// on long histories; building a canonical string per configuration makes the
// hot path allocation-bound.  Instead every SeqState exposes a 64-bit
// fingerprint and Config combines it with an incrementally maintained
// Zobrist-style hash of the linearized-op multiset, so a dedup probe costs a
// handful of multiplies and no allocation.
//
// Collision discipline: fingerprints are 64-bit, so distinct configurations
// can in principle collide (probability ~ k²/2⁶⁵ for k live configurations —
// below 1e-10 for the 2¹⁸-config budget).  Debug builds cross-check every
// fingerprint against the canonical string key (see CollisionGuard in
// lincheck/config.hpp) and abort the check on a real collision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace selin::fph {

inline constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr uint64_t kFnvPrime = 0x00000100000001B3ull;

/// splitmix64 finalizer: bijective and well-mixed; the workhorse for turning
/// structured 64-bit values (packed ids, counters) into fingerprint material.
constexpr uint64_t mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Streaming order-dependent hasher for sequence-shaped state (queues,
/// stacks, sorted sets).  Seed with a per-type tag so e.g. an empty queue and
/// an empty stack fingerprint differently.
class Hasher {
 public:
  constexpr explicit Hasher(uint64_t tag = 0) : h_(kFnvOffset ^ mix(tag)) {}

  constexpr Hasher& u64(uint64_t v) {
    h_ = (h_ ^ mix(v)) * kFnvPrime;
    return *this;
  }
  constexpr Hasher& i64(int64_t v) { return u64(static_cast<uint64_t>(v)); }

  constexpr uint64_t done() const { return mix(h_); }

 private:
  uint64_t h_;
};

/// Byte-string hash; backs the default SeqState::fingerprint() (hash of
/// encode()) for specs that do not override with direct hashing.
constexpr uint64_t bytes(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return mix(h);
}

// ---- Zobrist element hashes ------------------------------------------------
//
// Set-shaped components (the linearized-op multiset, the machine-open set)
// are hashed as the XOR of per-element hashes so that add/remove update the
// combined hash incrementally in O(1).  Distinct roles use distinct tags so
// the same op id contributes independent material to each component.

inline constexpr uint64_t kLinTag = 0xA5C1DE5A17AB1E00ull;
inline constexpr uint64_t kOpenTag = 0x0B5E55ED0DDBA11ull;

/// Element hash of a linearized-but-unresponded op (id, assigned result).
constexpr uint64_t lin_op(uint64_t packed_id, int64_t assigned) {
  return mix(mix(packed_id ^ kLinTag) ^ static_cast<uint64_t>(assigned));
}

/// Element hash of a machine-open op id (interval checker).
constexpr uint64_t open_op(uint64_t packed_id) {
  return mix(packed_id ^ kOpenTag);
}

}  // namespace selin::fph
