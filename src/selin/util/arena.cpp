#include "selin/util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace selin {

namespace {
std::atomic<uint64_t> g_next_arena_id{1};
}  // namespace

Arena::Arena() : id_(g_next_arena_id.fetch_add(1, std::memory_order_relaxed)) {}

Arena::~Arena() {
  Block* b = head_.load(std::memory_order_acquire);
  while (b != nullptr) {
    Block* next = b->next;
    std::free(b);
    b = next;
  }
}

Arena::Block* Arena::new_block(size_t min_payload) {
  size_t payload = std::max(min_payload, kBlockSize);
  auto* b = static_cast<Block*>(std::malloc(sizeof(Block) + payload));
  if (b == nullptr) throw std::bad_alloc{};
  b->capacity = payload;
  b->used.store(0, std::memory_order_relaxed);
  // Publish on the global list so the destructor can reclaim it.
  Block* h = head_.load(std::memory_order_relaxed);
  do {
    b->next = h;
  } while (!head_.compare_exchange_weak(h, b, std::memory_order_release,
                                        std::memory_order_relaxed));
  return b;
}

void* Arena::allocate(size_t bytes, size_t align) {
  // Each thread bump-allocates from its own current block per arena; blocks
  // are shared only through the reclamation list.  The cache keys on the
  // arena's unique id, not its address — addresses are reused across arena
  // lifetimes, and one thread commonly interleaves several arenas (queue
  // nodes, announcement chains, snapshot cells).
  thread_local std::unordered_map<uint64_t, Block*> blocks;
  Block*& cur = blocks[id_];
  for (;;) {
    if (cur != nullptr) {
      size_t used = cur->used.load(std::memory_order_relaxed);
      size_t aligned = (used + align - 1) & ~(align - 1);
      if (aligned + bytes <= cur->capacity) {
        cur->used.store(aligned + bytes, std::memory_order_relaxed);
        bytes_.fetch_add(bytes, std::memory_order_relaxed);
        return cur->data() + aligned;
      }
    }
    cur = new_block(bytes + align);
  }
}

}  // namespace selin
