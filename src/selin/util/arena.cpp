#include "selin/util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace selin {

Arena::Arena() = default;

Arena::~Arena() {
  Block* b = head_.load(std::memory_order_acquire);
  while (b != nullptr) {
    Block* next = b->next;
    std::free(b);
    b = next;
  }
}

Arena::Block* Arena::new_block(size_t min_payload) {
  // Geometric block growth: light arenas (a monitor's few-KiB dedup tables)
  // stay small, heavy arenas (announcement chains) converge to kBlockSize.
  size_t hint = next_block_size_.load(std::memory_order_relaxed);
  size_t payload = std::max(min_payload, hint);
  next_block_size_.store(std::min(payload * 2, kBlockSize),
                         std::memory_order_relaxed);
  auto* b = static_cast<Block*>(std::malloc(sizeof(Block) + payload));
  if (b == nullptr) throw std::bad_alloc{};
  b->capacity = payload;
  b->used.store(0, std::memory_order_relaxed);
  // Publish on the global list so the destructor can reclaim it.
  Block* h = head_.load(std::memory_order_relaxed);
  do {
    b->next = h;
  } while (!head_.compare_exchange_weak(h, b, std::memory_order_release,
                                        std::memory_order_relaxed));
  return b;
}

void* Arena::allocate(size_t bytes, size_t align) {
  // Lock-free shared bump on the head block: threads reserve disjoint,
  // tightly packed ranges with a CAS on `used`.  A full block falls through
  // to new_block, which publishes a fresh head.  No per-thread state —
  // arenas are created per monitor clone, and a thread-local cache keyed by
  // arena would leak an entry for every destroyed arena.
  for (;;) {
    Block* b = head_.load(std::memory_order_acquire);
    if (b != nullptr) {
      size_t used = b->used.load(std::memory_order_relaxed);
      for (;;) {
        size_t aligned = (used + align - 1) & ~(align - 1);
        if (aligned + bytes > b->capacity) break;  // full: fresh block
        if (b->used.compare_exchange_weak(used, aligned + bytes,
                                          std::memory_order_relaxed)) {
          bytes_.fetch_add(bytes, std::memory_order_relaxed);
          return b->data() + aligned;
        }
      }
    }
    new_block(bytes + align);
  }
}

}  // namespace selin
