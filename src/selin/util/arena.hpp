// Concurrent monotone arena.
//
// Section 9.1 of the paper replaces unbounded-size registers by immutable
// singly-linked lists whose nodes are only ever prepended.  Nodes therefore
// live until the owning object is destroyed, which is exactly the lifetime a
// monotone arena provides.  It also backs the checkers' FpSet dedup tables
// (lincheck/config.hpp), which create one short-lived arena per monitor
// clone — so allocation keeps no per-thread state: threads share the head
// block through a lock-free CAS bump (tightly packed; lock-free rather than
// wait-free — a thread can lose the CAS race while others make progress),
// plus a CAS to register a fresh block.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace selin {

class Arena {
 public:
  Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// Allocate raw storage; never freed until the arena dies.  Thread-safe.
  void* allocate(size_t bytes, size_t align);

  /// Construct a T inside the arena.  The destructor of T is NOT run (arena
  /// types must be trivially destructible or leak-tolerant by design).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Copy a range into arena-owned storage, returning the new pointer.
  template <typename T>
  T* copy_range(const T* src, size_t count) {
    T* dst = static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
    for (size_t i = 0; i < count; ++i) new (dst + i) T(src[i]);
    return dst;
  }

  /// Total bytes handed out (diagnostics).
  size_t bytes_allocated() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Block {
    Block* next;
    std::atomic<size_t> used;
    size_t capacity;
    // payload follows
    std::byte* data() { return reinterpret_cast<std::byte*>(this + 1); }
  };

  Block* new_block(size_t min_payload);

  std::atomic<Block*> head_{nullptr};
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> next_block_size_{1 << 12};  // doubles up to kBlockSize
  static constexpr size_t kBlockSize = 1 << 20;  // 1 MiB payload block cap
};

}  // namespace selin
