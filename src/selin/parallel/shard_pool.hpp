// Per-checker lane state for sharded frontier expansion.
//
// A ShardPool presents `threads` lanes to the frontier engine: lane 0 is the
// calling thread, the rest are leased per phase from a parallel::Executor
// (executor.hpp) — either one shared across many checkers (the multi-tenant
// deployment, where N sessions multiplex over one pool sized to the
// hardware) or a private one created lazily on the first parallel dispatch
// (the historical behavior: monitors are cloned eagerly — e.g. the leveled
// checker's checkpoints — and most clones never feed a wide frontier, so a
// dormant pool must cost nothing but its engines).  The pool no longer owns
// any thread; spawn/park/join discipline lives in the executor once.
//
// Each lane owns a private lincheck::DedupEngine (Arena + FpSet dedup tables
// + StatePool), so every mutation of dedup state during a phase is
// single-writer by construction: jobs are functions of the lane *index*, and
// an index is claimed by exactly one executor thread per phase, no matter
// which thread that is.
//
// run(job) executes job(lane) once per lane and returns when all lanes are
// done, rethrowing the first captured job exception.  Jobs must not block on
// one another — the phase protocol in ShardedFrontier synchronizes
// exclusively at run() boundaries, which act as the inter-round barriers.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "selin/lincheck/config.hpp"
#include "selin/parallel/executor.hpp"

namespace selin::parallel {

class ShardPool {
 public:
  /// `executor` = the shared lane provider; nullptr = create a private one
  /// lazily on the first parallel run (preserves the single-tenant shape).
  explicit ShardPool(size_t threads,
                     std::shared_ptr<Executor> executor = nullptr);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  size_t threads() const { return n_; }

  /// Lane-private dedup machinery; only the phase job running as lane
  /// `worker` may touch it while a run is in flight.
  lincheck::DedupEngine& engine(size_t worker) { return *engines_[worker]; }
  const lincheck::DedupEngine& engine(size_t worker) const {
    return *engines_[worker];
  }

  /// Run job(worker) once per lane, in parallel; returns when all lanes are
  /// done.  Rethrows the first captured job exception.
  void run(const std::function<void(size_t)>& job);

  /// Run job(worker) once per lane on the calling thread (small phases where
  /// dispatch overhead would dominate).  Phase results are identical to
  /// run(): jobs are functions of the lane index only.
  void run_serial(const std::function<void(size_t)>& job);

 private:
  size_t n_;
  std::vector<std::unique_ptr<lincheck::DedupEngine>> engines_;
  std::shared_ptr<Executor> exec_;  // lazily created when constructed null
};

}  // namespace selin::parallel
