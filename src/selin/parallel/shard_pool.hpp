// Persistent worker pool for sharded frontier expansion.
//
// A ShardPool owns `threads` lanes: lane 0 is the calling thread, lanes
// 1..threads-1 are persistent worker threads, spawned lazily on the first
// parallel dispatch (monitors are cloned eagerly — e.g. the leveled
// checker's checkpoints — and most clones never feed a wide frontier, so a
// dormant pool must cost nothing but its engines).  Each lane owns a private
// lincheck::DedupEngine (Arena + FpSet dedup tables + StatePool), so every
// mutation of dedup state during a phase is single-writer by construction.
//
// Dispatch is epoch-based: run(job) publishes the job, bumps the epoch, and
// executes lane 0 inline while the workers pick the epoch up from a brief
// spin (epochs arrive in bursts while a monitor feeds) that falls back to a
// condition variable so an idle pool consumes no CPU.  Jobs must not block
// on one another — the phase protocol in ShardedFrontier synchronizes
// exclusively at run() boundaries, which act as the inter-round barriers —
// so completion is a simple counter the controller waits on.  A job
// exception is captured in the throwing lane and rethrown on the caller
// after every lane has finished, leaving the pool reusable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "selin/lincheck/config.hpp"

namespace selin::parallel {

class ShardPool {
 public:
  explicit ShardPool(size_t threads);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool();

  size_t threads() const { return n_; }

  /// Lane-private dedup machinery; only lane `worker` may touch it while a
  /// job is in flight.
  lincheck::DedupEngine& engine(size_t worker) { return *engines_[worker]; }
  const lincheck::DedupEngine& engine(size_t worker) const {
    return *engines_[worker];
  }

  /// Run job(worker) once per lane, in parallel; returns when all lanes are
  /// done.  Rethrows the first captured job exception.
  void run(const std::function<void(size_t)>& job);

  /// Run job(worker) once per lane on the calling thread (small phases where
  /// dispatch overhead would dominate).  Phase results are identical to
  /// run(): jobs are functions of the lane index only.
  void run_serial(const std::function<void(size_t)>& job);

 private:
  void spawn();
  void worker_loop(size_t index);

  size_t n_;
  std::vector<std::unique_ptr<lincheck::DedupEngine>> engines_;
  std::vector<std::exception_ptr> errors_;  // one slot per lane

  const std::function<void(size_t)>* job_ = nullptr;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> done_{0};
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;  // lanes 1..n_-1, spawned lazily
};

}  // namespace selin::parallel
