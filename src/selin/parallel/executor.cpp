#include "selin/parallel/executor.hpp"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "selin/obs/hooks.hpp"

namespace selin::parallel {

namespace {
// Spin iterations before an idle worker parks on the condition variable.
// Phases arrive in bursts while a monitor feeds, so the next one usually
// lands within the spin window; yielding keeps oversubscribed hosts live.
constexpr int kSpinIters = 256;

size_t resolve_lanes(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Pin `t` to core `lane mod cores` (best effort; failures are ignored —
// placement is a performance hint, never a correctness requirement).
void pin_to_core(std::thread& t, size_t lane) {
#ifdef __linux__
  const size_t hw = std::thread::hardware_concurrency();
  if (hw <= 1) return;  // single core: pinning is a pure no-op
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(lane % hw), &set);
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)lane;
#endif
}
}  // namespace

Executor::Executor(size_t lanes) : n_(resolve_lanes(lanes)) {}

Executor::Executor(const ExecutorOptions& opts)
    : n_(resolve_lanes(opts.lanes)), pin_(opts.pin_lanes) {}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Tasks still queued were posted by clients that never drained; run them
  // here so owner-referencing work is never silently dropped (TaskLanes
  // drains in its own destructor, so this is normally empty).
  while (run_some()) {
  }
}

void Executor::ensure_workers_locked() {
  if (!workers_.empty() || n_ == 0) return;
  workers_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (pin_) pin_to_core(workers_.back(), i);
  }
  spawned_.store(workers_.size(), std::memory_order_release);
}

void Executor::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_workers_locked();
    tasks_.push_back(std::move(task));
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
  const obs::ExecutorHooks* obs = obs_.load(std::memory_order_acquire);
  if (obs != nullptr && obs->posts != nullptr) obs->posts->add(1);
}

void Executor::run_slice(Phase& ph, size_t slice) {
  try {
    (*ph.job)(slice);
  } catch (...) {
    std::lock_guard<std::mutex> lock(ph.err_mu);
    if (ph.error == nullptr) ph.error = std::current_exception();
  }
  ph.done.fetch_add(1, std::memory_order_release);
}

void Executor::run_phase(size_t n, const std::function<void(size_t)>& job) {
  if (n == 0) return;
  const obs::ExecutorHooks* obs = obs_.load(std::memory_order_acquire);
  const uint64_t t0 = obs != nullptr ? obs::now_ns() : 0;
  if (n == 1) {
    job(0);
    if (obs != nullptr) observe_phase(*obs, t0, 1, 1);
    return;
  }
  Phase ph;
  ph.job = &job;
  ph.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_workers_locked();
    phases_.push_back(&ph);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  run_slice(ph, 0);
  // Claim whatever the worker lanes have not picked up: work-conserving on
  // an idle executor, inline-degrading (and so deadlock-free when nested)
  // on a saturated one.
  size_t caller_run = 1;  // slice 0
  for (;;) {
    size_t i = ph.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    run_slice(ph, i);
    ++caller_run;
  }
  while (ph.done.load(std::memory_order_acquire) < n) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(phases_.begin(), phases_.end(), &ph);
    if (it != phases_.end()) phases_.erase(it);
  }
  // Observe before the rethrow so failed phases still show up in the trace.
  if (obs != nullptr) observe_phase(*obs, t0, n, caller_run);
  if (ph.error != nullptr) std::rethrow_exception(ph.error);
}

void Executor::observe_phase(const obs::ExecutorHooks& h, uint64_t t0,
                             size_t n, size_t caller_run) {
  const uint64_t dur = obs::now_ns() - t0;
  if (h.phase_ns != nullptr) h.phase_ns->record(dur);
  if (h.phase_slices != nullptr) h.phase_slices->record(n);
  if (h.slices_caller != nullptr) h.slices_caller->add(caller_run);
  if (h.slices_worker != nullptr) h.slices_worker->add(n - caller_run);
  if (h.trace != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::SpanKind::kExecPhase;
    ev.start_ns = t0;
    ev.dur_ns = dur;
    ev.p0 = n;
    ev.p1 = caller_run;
    ev.p2 = n - caller_run;
    h.trace->record(ev);
  }
}

bool Executor::run_some() {
  Phase* ph = nullptr;
  size_t slice = 0;
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!phases_.empty()) {
      Phase* p = phases_.front();
      size_t i = p->next.fetch_add(1, std::memory_order_relaxed);
      if (i < p->n) {
        ph = p;
        slice = i;
        break;
      }
      // Exhausted: stragglers are mid-slice, the owner is spinning on
      // done — nothing left to claim here.
      phases_.pop_front();
    }
    if (ph == nullptr) {
      if (tasks_.empty()) return false;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
  }
  if (ph != nullptr) {
    run_slice(*ph, slice);
  } else {
    task();
  }
  return true;
}

bool Executor::help_one() {
  if (!run_some()) return false;
  const obs::ExecutorHooks* obs = obs_.load(std::memory_order_acquire);
  if (obs != nullptr && obs->helps != nullptr) obs->helps->add(1);
  return true;
}

void Executor::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    if (run_some()) continue;  // drained one item; look again immediately
    uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int k = 0; k < kSpinIters && e == seen; ++k) {
      std::this_thread::yield();
      e = epoch_.load(std::memory_order_acquire);
    }
    if (e == seen) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               epoch_.load(std::memory_order_relaxed) != seen;
      });
      e = epoch_.load(std::memory_order_relaxed);
      if (stop_.load(std::memory_order_relaxed) && phases_.empty() &&
          tasks_.empty()) {
        return;
      }
    } else if (stop_.load(std::memory_order_acquire)) {
      // Missed the epoch bump of a racing shutdown: re-check for work and
      // exit once drained.
      std::lock_guard<std::mutex> lock(mu_);
      if (phases_.empty() && tasks_.empty()) return;
    }
    seen = e;
  }
}

}  // namespace selin::parallel
