// Shared execution resource of every parallel facility in selin.
//
// Before the executor, thread ownership was scattered: every ShardPool
// spawned its own worker lanes for SPMD frontier phases, every TaskLanes its
// own FIFO drainers for deferred checkpoint work, and each copy carried its
// own slightly different shutdown discipline.  One monitored object cost a
// handful of private threads — fine for one monitor, fatal for a service
// multiplexing thousands of independent sessions (thousands of mostly idle
// lanes oversubscribe the host long before the checkers saturate it).
//
// Executor is the one owner of worker threads.  Clients *lease* lanes
// per work item instead of holding them:
//
//   * run_phase(n, job) — SPMD dispatch: job(i) for i in [0, n).  Slice 0
//     runs on the calling thread; slices 1..n-1 are published for the worker
//     lanes to claim.  The caller claims unstarted slices itself once its
//     own slice is done, so a saturated executor degrades to inline
//     execution instead of blocking — which also makes nested phases (a
//     posted task running its own run_phase) deadlock-free by construction.
//     Returns when every slice has finished; rethrows the first job
//     exception.  This is ShardPool's dispatch primitive.
//
//   * post(task) — fire-and-forget FIFO work (TaskLanes' primitive).  The
//     task must not throw; clients that need exception capture wrap the
//     task (TaskLanes does).
//
//   * help_one() — run one pending slice or task on the calling thread, if
//     any.  Waiters (TaskLanes::wait_idle, drain loops) call this instead
//     of blocking so a busy shared executor cannot stall them behind other
//     clients' work.
//
// Worker lanes are spawned lazily on the first work item and parked on a
// spin-then-condition-variable pickup (the same dormancy discipline the old
// ShardPool and TaskLanes each implemented privately): an executor that
// never receives work costs nothing but this object, and an idle one
// consumes no CPU.  Destruction drains remaining queued work, then joins —
// the single shutdown path that used to be duplicated per pool class.
//
// Sharing: one Executor can serve any number of ShardPools, TaskLanes, and
// MonitorService sessions concurrently; total threads stay bounded by
// lanes() no matter how many clients multiplex over it.  Work items of
// different clients never synchronize through the executor beyond FIFO
// pickup, so clients keep their own completion accounting (phase counters
// here, in_flight counters in TaskLanes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace selin::obs {
struct ExecutorHooks;  // obs/hooks.hpp — instrumentation bundle, borrowed
}  // namespace selin::obs

namespace selin::parallel {

/// Construction-time placement policy of an Executor.
struct ExecutorOptions {
  /// Worker-thread cap; 0 resolves from the hardware.
  size_t lanes = 0;
  /// Pin worker lane i to core i mod hardware_concurrency() when the
  /// platform supports it (Linux).  Opt-in: pinning helps a dedicated host
  /// (lanes keep their cache-warm frontier shards) and hurts a shared one
  /// (the scheduler can no longer migrate around noisy neighbours).  A
  /// no-op on single-core hosts and platforms without affinity control;
  /// placement never affects what any lane computes.
  bool pin_lanes = false;
};

class Executor {
 public:
  /// `lanes` = worker-thread cap; 0 resolves from the hardware.
  explicit Executor(size_t lanes = 0);
  explicit Executor(const ExecutorOptions& opts);
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  /// Worker-thread cap (the bound a multi-tenant deployment sizes to the
  /// host; MonitorService asserts spawned threads never exceed it).
  size_t lanes() const { return n_; }

  /// Worker threads actually created so far (0 until the first work item;
  /// never exceeds lanes()).
  size_t threads_spawned() const {
    return spawned_.load(std::memory_order_acquire);
  }

  /// Enqueue a fire-and-forget task.  The task must not throw.
  void post(std::function<void()> task);

  /// SPMD phase: run job(i) for every i in [0, n); see the header comment
  /// for the slice-claiming protocol.  Rethrows the first job exception
  /// after every slice has finished.
  void run_phase(size_t n, const std::function<void(size_t)>& job);

  /// Run one pending slice or task inline; false when nothing is pending.
  bool help_one();

  /// Attach observability instruments (obs/hooks.hpp; nullptr detaches).
  /// The bundle must outlive the executor or a later set_obs(nullptr); the
  /// pointer is read with acquire loads so attaching while worker lanes are
  /// live is safe (lanes mid-slice may still finish under the old bundle).
  /// Detached — the default — every entry point pays one pointer test.
  void set_obs(const obs::ExecutorHooks* hooks) {
    obs_.store(hooks, std::memory_order_release);
  }

 private:
  /// One in-flight run_phase, stack-allocated by its caller; lives in
  /// phases_ only while it still has unclaimed slices.
  struct Phase {
    const std::function<void(size_t)>* job = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{1};  // slice 0 is the caller's
    std::atomic<size_t> done{0};  // completed slices (including 0)
    std::mutex err_mu;
    std::exception_ptr error;     // first job exception
  };

  void run_slice(Phase& ph, size_t slice);
  /// Record one finished phase into `h` (metrics + kExecPhase span).
  void observe_phase(const obs::ExecutorHooks& h, uint64_t t0, size_t n,
                     size_t caller_run);
  void ensure_workers_locked();
  void worker_loop();
  /// Claim and run one slice or task; false when nothing was pending.
  bool run_some();

  size_t n_;
  bool pin_ = false;  // ExecutorOptions::pin_lanes (applied at lane spawn)
  std::atomic<size_t> spawned_{0};
  std::atomic<const obs::ExecutorHooks*> obs_{nullptr};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Phase*> phases_;                 // with unclaimed slices
  std::deque<std::function<void()>> tasks_;   // fire-and-forget FIFO
  std::atomic<uint64_t> epoch_{0};            // bumped per work arrival
  std::atomic<bool> stop_{false};             // written under mu_
  std::vector<std::thread> workers_;          // spawned lazily
};

}  // namespace selin::parallel

namespace selin::engine {
// The executor conceptually belongs to the engine layer (FrontierEngine and
// the monitor factories take it); spell it either way.
using Executor = ::selin::parallel::Executor;
}  // namespace selin::engine
