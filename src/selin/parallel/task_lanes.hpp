// Fire-and-forget task lanes for deferred work off the checker hot path.
//
// ShardPool's epoch dispatch is SPMD — run(job) executes one job on every
// lane and blocks the controller until the phase completes, which is exactly
// right for the frontier engine's barrier protocol and exactly wrong for
// work the controller wants to *shed*: checkpoint materialization in the
// leveled checker must not stall the feed that triggered it.  TaskLanes is
// the complementary primitive: a FIFO of independent tasks drained by
// persistent worker lanes, with one synchronization point (wait_idle) the
// owner calls before it reads anything the tasks write.
//
// Ordering and memory model:
//   * Tasks may run on any lane in any relative order; tasks that are not
//     independent must carry their own dependencies (the leveled checker
//     posts only independent stripe jobs).
//   * post() publishes everything written before it to the task (queue
//     mutex); wait_idle() returning publishes everything tasks wrote to the
//     caller (same mutex + completion count).  Owners therefore need no
//     additional synchronization for slot-disjoint writes.
//   * Workers spawn lazily on the first post, so a TaskLanes that never
//     receives work costs nothing but its vector — the same dormancy
//     discipline as ShardPool (leveled checkers are cloned eagerly and most
//     never roll back).
//
// Exceptions: a throwing task poisons the lanes — the first exception is
// captured and rethrown from the next wait_idle() (or swallowed by the
// destructor after draining), mirroring ShardPool's rethrow-at-the-barrier
// discipline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace selin::parallel {

class TaskLanes {
 public:
  explicit TaskLanes(size_t lanes);
  TaskLanes(const TaskLanes&) = delete;
  TaskLanes& operator=(const TaskLanes&) = delete;
  ~TaskLanes();

  size_t lanes() const { return n_; }

  /// Enqueue `task`; returns immediately.  With 0 lanes the task runs
  /// inline (degenerate mode for single-threaded deployments and tests).
  void post(std::function<void()> task);

  /// Block until every posted task has finished; rethrows the first task
  /// exception captured since the last wait_idle().
  void wait_idle();

  /// Tasks executed so far (diagnostics; stable only after wait_idle()).
  uint64_t executed() const { return executed_; }

 private:
  void worker_loop();

  size_t n_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // workers wait for tasks
  std::condition_variable cv_idle_;   // wait_idle waits for completion
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  uint64_t executed_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;  // spawned lazily on first post
};

}  // namespace selin::parallel
