// Fire-and-forget task tracking for deferred work off the checker hot path.
//
// The executor's run_phase is SPMD — it blocks the controller until the
// phase completes, which is exactly right for the frontier engine's barrier
// protocol and exactly wrong for work the controller wants to *shed*:
// checkpoint materialization in the leveled checker must not stall the feed
// that triggered it.  TaskLanes is the complementary client: a stream of
// independent tasks posted to a parallel::Executor (shared, or a private
// one created lazily), with one synchronization point (wait_idle) the owner
// calls before it reads anything the tasks write.  Threads belong to the
// executor; TaskLanes only keeps the completion accounting for *its own*
// tasks, so many owners can shed work onto one shared executor without
// waiting on each other's completions.
//
// Ordering and memory model:
//   * Tasks may run on any lane in any relative order; tasks that are not
//     independent must carry their own dependencies (the leveled checker
//     posts only independent stripe jobs).
//   * post() publishes everything written before it to the task (executor
//     queue mutex); wait_idle() returning publishes everything tasks wrote
//     to the caller (the tracking mutex + completion count).  Owners
//     therefore need no additional synchronization for slot-disjoint
//     writes.
//   * While waiting, wait_idle helps the executor drain pending work
//     instead of parking, so a shared executor saturated by other clients
//     cannot stall this owner behind work it does not depend on.
//
// Exceptions: a throwing task poisons the lanes — the first exception is
// captured and rethrown from the next wait_idle() (or swallowed by the
// destructor after draining), mirroring run_phase's rethrow-at-the-barrier
// discipline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "selin/parallel/executor.hpp"

namespace selin::parallel {

class TaskLanes {
 public:
  /// With 0 lanes tasks run inline at post() (degenerate mode for
  /// single-threaded deployments and tests).  Otherwise tasks go to
  /// `executor`, or to a private Executor(`lanes`) created lazily on the
  /// first post — the pre-executor thread budget.
  explicit TaskLanes(size_t lanes,
                     std::shared_ptr<Executor> executor = nullptr);
  TaskLanes(const TaskLanes&) = delete;
  TaskLanes& operator=(const TaskLanes&) = delete;
  ~TaskLanes();

  size_t lanes() const { return n_; }

  /// Enqueue `task`; returns immediately (inline with 0 lanes).
  void post(std::function<void()> task);

  /// Block until every task posted *here* has finished (helping the
  /// executor along meanwhile); rethrows the first task exception captured
  /// since the last wait_idle().
  void wait_idle();

  /// Tasks executed so far (diagnostics; stable only after wait_idle()).
  uint64_t executed() const { return executed_; }

 private:
  void drain();  // wait for in-flight tasks, helping; never throws

  size_t n_;
  std::shared_ptr<Executor> exec_;  // lazily created when constructed null
  std::mutex mu_;
  std::condition_variable cv_idle_;  // wait_idle waits for completion
  size_t in_flight_ = 0;             // posted but not yet finished
  uint64_t executed_ = 0;
  std::exception_ptr error_;
};

}  // namespace selin::parallel
