#include "selin/parallel/task_lanes.hpp"

namespace selin::parallel {

TaskLanes::TaskLanes(size_t lanes) : n_(lanes) {}

TaskLanes::~TaskLanes() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain rather than abandon: posted tasks may hold references into the
    // owner's members, which outlive this destructor (members are destroyed
    // in reverse declaration order and owners declare their lanes last).
    cv_idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskLanes::post(std::function<void()> task) {
  if (n_ == 0) {
    ++executed_;
    try {
      task();
    } catch (...) {
      // Defer to wait_idle(), matching the threaded lanes' discipline.
      if (error_ == nullptr) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (workers_.empty()) {
      workers_.reserve(n_);
      for (size_t i = 0; i < n_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
      }
    }
  }
  cv_work_.notify_one();
}

void TaskLanes::wait_idle() {
  if (n_ == 0) {
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void TaskLanes::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    --in_flight_;
    ++executed_;
    if (err != nullptr && error_ == nullptr) error_ = err;
    if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
  }
}

}  // namespace selin::parallel
