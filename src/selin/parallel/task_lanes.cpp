#include "selin/parallel/task_lanes.hpp"

namespace selin::parallel {

TaskLanes::TaskLanes(size_t lanes, std::shared_ptr<Executor> executor)
    : n_(lanes), exec_(std::move(executor)) {}

TaskLanes::~TaskLanes() {
  // Drain rather than abandon: posted tasks may hold references into the
  // owner's members, which outlive this destructor (members are destroyed
  // in reverse declaration order and owners declare their lanes last).
  // A private executor then joins its workers when exec_ drops the last
  // reference; a shared one lives on with the other clients.
  drain();
}

void TaskLanes::post(std::function<void()> task) {
  if (n_ == 0) {
    ++executed_;
    try {
      task();
    } catch (...) {
      // Defer to wait_idle(), matching the executor-backed discipline.
      if (error_ == nullptr) error_ = std::current_exception();
    }
    return;
  }
  if (exec_ == nullptr) exec_ = std::make_shared<Executor>(n_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
  }
  exec_->post([this, t = std::move(task)]() mutable {
    std::exception_ptr err;
    try {
      t();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    ++executed_;
    if (err != nullptr && error_ == nullptr) error_ = err;
    if (in_flight_ == 0) cv_idle_.notify_all();
  });
}

void TaskLanes::drain() {
  if (n_ == 0 || exec_ == nullptr) return;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_ == 0) return;
    }
    if (!exec_->help_one()) {
      // Queue empty: our remaining tasks are mid-flight on worker lanes
      // (only this owner posts to this tracker, so no new ones can appear
      // behind our back) — park until the last completion notifies.
      std::unique_lock<std::mutex> lock(mu_);
      cv_idle_.wait(lock, [&] { return in_flight_ == 0; });
      return;
    }
  }
}

void TaskLanes::wait_idle() {
  drain();
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace selin::parallel
