// sharded_frontier.hpp is a header-only template; this translation unit
// mirrors the module list in DESIGN.md, gives the header a standalone
// compile check, and pins one explicit instantiation for the common case.
#include "selin/parallel/sharded_frontier.hpp"

#include "selin/lincheck/config.hpp"

namespace selin::parallel {

template class ShardedFrontier<lincheck::Config>;

}  // namespace selin::parallel
