#include "selin/parallel/shard_pool.hpp"

namespace selin::parallel {

ShardPool::ShardPool(size_t threads, std::shared_ptr<Executor> executor)
    : n_(threads == 0 ? 1 : threads), exec_(std::move(executor)) {
  engines_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    engines_.push_back(std::make_unique<lincheck::DedupEngine>());
  }
}

void ShardPool::run(const std::function<void(size_t)>& job) {
  if (n_ == 1) {
    job(0);
    return;
  }
  if (exec_ == nullptr) {
    // Private pool, sized so lane 0 (the caller) plus the workers match the
    // requested lane count — the pre-executor thread budget.
    exec_ = std::make_shared<Executor>(n_ - 1);
  }
  exec_->run_phase(n_, job);
}

void ShardPool::run_serial(const std::function<void(size_t)>& job) {
  for (size_t i = 0; i < n_; ++i) job(i);
}

}  // namespace selin::parallel
