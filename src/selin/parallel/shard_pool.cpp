#include "selin/parallel/shard_pool.hpp"

namespace selin::parallel {

namespace {
// Spin iterations before a worker parks on the condition variable.  Feeds
// dispatch several phases back to back, so the next epoch usually arrives
// within the spin window; yielding inside the loop keeps oversubscribed
// hosts (shards > cores) live.
constexpr int kSpinIters = 256;
}  // namespace

ShardPool::ShardPool(size_t threads) : n_(threads == 0 ? 1 : threads) {
  engines_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    engines_.push_back(std::make_unique<lincheck::DedupEngine>());
  }
  errors_.resize(n_);
}

ShardPool::~ShardPool() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void ShardPool::spawn() {
  workers_.reserve(n_ - 1);
  for (size_t i = 1; i < n_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardPool::run(const std::function<void(size_t)>& job) {
  if (n_ == 1) {
    job(0);
    return;
  }
  if (workers_.empty()) spawn();
  for (std::exception_ptr& e : errors_) e = nullptr;
  job_ = &job;
  done_.store(0, std::memory_order_relaxed);
  {
    // The lock pairs with the workers' cv wait; the release increment pairs
    // with their acquire spin.  Either way the job_ write above is visible
    // before a worker runs the job.
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  try {
    job(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  // Jobs never block on each other (rounds synchronize only at run()
  // boundaries), so every worker finishes; yield rather than hard-spin so
  // oversubscribed hosts make progress.
  while (done_.load(std::memory_order_acquire) != n_ - 1) {
    std::this_thread::yield();
  }
  job_ = nullptr;
  for (std::exception_ptr& e : errors_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void ShardPool::run_serial(const std::function<void(size_t)>& job) {
  for (size_t i = 0; i < n_; ++i) job(i);
}

void ShardPool::worker_loop(size_t index) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int k = 0; k < kSpinIters && e == seen; ++k) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
      e = epoch_.load(std::memory_order_acquire);
    }
    if (e == seen) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               epoch_.load(std::memory_order_relaxed) != seen;
      });
      e = epoch_.load(std::memory_order_relaxed);
      if (e == seen) return;  // stopped with no new job
    }
    seen = e;
    try {
      (*job_)(index);
    } catch (...) {
      errors_[index] = std::current_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace selin::parallel
