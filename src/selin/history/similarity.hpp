// Similarity between histories (Definition 7.1) — the closure property that
// defines the class GenLin (Definition 7.2).
//
// E is *similar to* F iff there is an E' obtained from E by appending
// responses to some pending operations and removing the invocations of some
// pending operations such that (1) E' and F are equivalent and (2) ≺_E' ⊆ ≺_F.
//
// The E' witnessing similarity, if one exists, is determined by F:
//   * a pending op of E absent from F must have its invocation removed,
//   * a pending op of E complete in F must get F's response appended,
//   * a pending op of E pending in F stays pending.
// We build that canonical E' and check the two conditions directly.
#pragma once

#include "selin/history/history.hpp"

namespace selin {

/// True iff e is similar to f per Definition 7.1.
bool similar_to(const History& e, const History& f);

/// The canonical E' described above (responses appended at the end, in OpId
/// order).  Returned even when the similarity check would fail; callers that
/// need the verdict should use similar_to().
History canonical_similarity_witness(const History& e, const History& f);

}  // namespace selin
