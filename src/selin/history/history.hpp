// Histories and their derived structure (Sections 2 and 4 of the paper).
//
//  * well-formedness (each process sequential; responses match invocations)
//  * complete / pending operations
//  * comp(E): drop invocations of pending operations
//  * E|p_i projection and equivalence of histories
//  * the real-time partial orders  <_E  (complete ops only, Definition 4.2)
//    and  ≺_E  (also relates pending ops, Section 7.1)
//
// A History is a plain event sequence; all structure is computed by free
// functions so the type stays trivially serializable and cheap to slice.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "selin/history/event.hpp"

namespace selin {

using History = std::vector<Event>;

/// A complete operation extracted from a history: its descriptor, result and
/// the positions of its invocation/response events (kNoPos when pending).
struct OpRecord {
  OpDesc op;
  std::optional<Value> result;  ///< nullopt while pending
  size_t inv_pos = 0;
  size_t res_pos = kNoPos;

  static constexpr size_t kNoPos = static_cast<size_t>(-1);
  bool complete() const { return res_pos != kNoPos; }
};

/// Index over a history: every operation with its interval.  Construction
/// verifies well-formedness and throws std::invalid_argument on violations.
class HistoryIndex {
 public:
  explicit HistoryIndex(const History& h);

  const std::vector<OpRecord>& ops() const { return ops_; }
  const OpRecord* find(OpId id) const;

  size_t complete_count() const { return complete_count_; }
  size_t pending_count() const { return ops_.size() - complete_count_; }

  /// <_E : both complete and res(a) precedes inv(b)   (Definition 4.2)
  bool real_time_before(OpId a, OpId b) const;
  /// ≺_E : res(a) precedes inv(b); b may be pending    (Section 7.1)
  bool precedes(OpId a, OpId b) const;

 private:
  std::vector<OpRecord> ops_;
  std::unordered_map<OpId, size_t> by_id_;
  size_t complete_count_ = 0;
};

/// True iff h satisfies the two well-formedness properties of Section 2.
bool well_formed(const History& h, std::string* why = nullptr);

/// comp(E): remove the invocations of all pending operations.
History comp(const History& h);

/// E|p: the subsequence of events of process p.
History project(const History& h, ProcId p);

/// Histories are equivalent iff E|p = F|p for every process (Section 4).
bool equivalent(const History& a, const History& b);

/// True iff h is sequential: <_h totally orders its (complete) operations,
/// i.e. events alternate inv,res per operation with no overlap.
bool sequential(const History& h);

/// All process ids appearing in h.
std::vector<ProcId> processes(const History& h);

/// Pretty multi-line rendering (one line per event) used by witnesses.
std::string format_history(const History& h);

/// Compact single-line rendering.
std::string format_history_inline(const History& h);

}  // namespace selin
