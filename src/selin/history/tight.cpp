#include "selin/history/tight.hpp"

#include <unordered_map>
#include <unordered_set>

namespace selin {

bool valid_trace(const AStarTrace& trace, std::string* why) {
  std::unordered_set<uint64_t> written;
  std::unordered_set<uint64_t> snapped;
  // Per-process: the op currently between Write and Snap, if any.
  std::unordered_map<ProcId, uint64_t> open;
  for (const AStarMark& m : trace) {
    uint64_t key = m.op.id.packed();
    ProcId p = m.op.id.pid;
    if (m.kind == AStarMark::Kind::kWrite) {
      if (!written.insert(key).second) {
        if (why) *why = "duplicate Write mark for " + to_string(m.op);
        return false;
      }
      auto it = open.find(p);
      if (it != open.end()) {
        if (why) *why = "process p" + std::to_string(p) +
                        " Writes while an operation is open";
        return false;
      }
      open.emplace(p, key);
    } else {
      if (written.count(key) == 0) {
        if (why) *why = "Snap before Write for " + to_string(m.op);
        return false;
      }
      if (!snapped.insert(key).second) {
        if (why) *why = "duplicate Snap mark for " + to_string(m.op);
        return false;
      }
      auto it = open.find(p);
      if (it == open.end() || it->second != key) {
        if (why) *why = "Snap does not match open operation of p" +
                        std::to_string(p);
        return false;
      }
      open.erase(it);
    }
  }
  return true;
}

History tight_history(const AStarTrace& trace) {
  History out;
  out.reserve(trace.size());
  for (const AStarMark& m : trace) {
    if (m.kind == AStarMark::Kind::kWrite) {
      out.push_back(Event::inv(m.op));
    } else {
      out.push_back(Event::res(m.op, m.y));
    }
  }
  return out;
}

}  // namespace selin
