#include "selin/history/event.hpp"

#include <sstream>

namespace selin {

const char* method_name(Method m) {
  switch (m) {
    case Method::kEnqueue: return "Enqueue";
    case Method::kDequeue: return "Dequeue";
    case Method::kPush: return "Push";
    case Method::kPop: return "Pop";
    case Method::kInsert: return "Insert";
    case Method::kRemove: return "Remove";
    case Method::kContains: return "Contains";
    case Method::kPqInsert: return "PqInsert";
    case Method::kPqExtractMin: return "PqExtractMin";
    case Method::kInc: return "Inc";
    case Method::kCounterRead: return "CounterRead";
    case Method::kRead: return "Read";
    case Method::kWrite: return "Write";
    case Method::kDecide: return "Decide";
    case Method::kExchange: return "Exchange";
    case Method::kWriteSnap: return "WriteSnap";
  }
  return "?";
}

std::string value_string(Value v) {
  if (v == kEmpty) return "empty";
  if (v == kOk) return "ok";
  if (v == kError) return "ERROR";
  if (v == kNoArg) return "-";
  return std::to_string(v);
}

std::string to_string(const OpDesc& op) {
  std::ostringstream os;
  os << "p" << op.id.pid << "#" << op.id.seq << ":" << method_name(op.method);
  if (op.arg != kNoArg) os << "(" << value_string(op.arg) << ")";
  else os << "()";
  return os.str();
}

std::string to_string(const Event& e) {
  std::ostringstream os;
  if (e.is_inv()) {
    os << "inv[" << to_string(e.op) << "]";
  } else {
    os << "res[" << to_string(e.op) << " : " << value_string(e.result) << "]";
  }
  return os.str();
}

}  // namespace selin
