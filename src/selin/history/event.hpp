// Invocation/response events (Section 2 of the paper).
//
// A history is a sequence of invocations and responses satisfying the
// well-formedness properties of Section 2: each process is sequential, and a
// response matches the process's unique pending invocation.
#pragma once

#include <string>

#include "selin/util/types.hpp"

namespace selin {

enum class EventKind : uint8_t { kInvocation, kResponse };

struct Event {
  EventKind kind = EventKind::kInvocation;
  OpDesc op;
  /// Response value; meaningful only for kResponse events.
  Value result = kNoArg;

  static Event inv(OpDesc op) { return Event{EventKind::kInvocation, op, kNoArg}; }
  static Event res(OpDesc op, Value result) {
    return Event{EventKind::kResponse, op, result};
  }

  bool is_inv() const { return kind == EventKind::kInvocation; }
  bool is_res() const { return kind == EventKind::kResponse; }

  friend bool operator==(const Event& a, const Event& b) {
    return a.kind == b.kind && a.op == b.op &&
           (a.is_inv() || a.result == b.result);
  }
};

std::string to_string(const Event& e);

}  // namespace selin
