#include "selin/history/history.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace selin {

bool well_formed(const History& h, std::string* why) {
  // pending[p] = index into h of p's pending invocation, or kNone.
  std::unordered_map<ProcId, const Event*> pending;
  std::set<uint64_t> seen_ops;
  for (const Event& e : h) {
    ProcId p = e.op.id.pid;
    auto it = pending.find(p);
    if (e.is_inv()) {
      if (it != pending.end() && it->second != nullptr) {
        if (why) *why = "process p" + std::to_string(p) +
                        " invokes while an operation is pending";
        return false;
      }
      if (!seen_ops.insert(e.op.id.packed()).second) {
        if (why) *why = "duplicate invocation of " + to_string(e.op);
        return false;
      }
      pending[p] = &e;
    } else {
      if (it == pending.end() || it->second == nullptr) {
        if (why) *why = "response without pending invocation: " + to_string(e);
        return false;
      }
      if (!(it->second->op == e.op)) {
        if (why) *why = "response " + to_string(e) +
                        " does not match pending invocation " +
                        to_string(*it->second);
        return false;
      }
      pending[p] = nullptr;
    }
  }
  return true;
}

HistoryIndex::HistoryIndex(const History& h) {
  std::string why;
  if (!well_formed(h, &why)) {
    throw std::invalid_argument("malformed history: " + why);
  }
  for (size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.is_inv()) {
      by_id_.emplace(e.op.id, ops_.size());
      ops_.push_back(OpRecord{e.op, std::nullopt, i, OpRecord::kNoPos});
    } else {
      OpRecord& r = ops_[by_id_.at(e.op.id)];
      r.result = e.result;
      r.res_pos = i;
      ++complete_count_;
    }
  }
}

const OpRecord* HistoryIndex::find(OpId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &ops_[it->second];
}

bool HistoryIndex::real_time_before(OpId a, OpId b) const {
  const OpRecord* ra = find(a);
  const OpRecord* rb = find(b);
  if (ra == nullptr || rb == nullptr) return false;
  if (!ra->complete() || !rb->complete()) return false;
  return ra->res_pos < rb->inv_pos;
}

bool HistoryIndex::precedes(OpId a, OpId b) const {
  const OpRecord* ra = find(a);
  const OpRecord* rb = find(b);
  if (ra == nullptr || rb == nullptr) return false;
  if (!ra->complete()) return false;
  return ra->res_pos < rb->inv_pos;
}

History comp(const History& h) {
  // Identify pending ops (invocation without response).
  std::set<uint64_t> responded;
  for (const Event& e : h) {
    if (e.is_res()) responded.insert(e.op.id.packed());
  }
  History out;
  out.reserve(h.size());
  for (const Event& e : h) {
    if (e.is_inv() && responded.count(e.op.id.packed()) == 0) continue;
    out.push_back(e);
  }
  return out;
}

History project(const History& h, ProcId p) {
  History out;
  for (const Event& e : h) {
    if (e.op.id.pid == p) out.push_back(e);
  }
  return out;
}

bool equivalent(const History& a, const History& b) {
  std::vector<ProcId> ps = processes(a);
  for (ProcId p : processes(b)) {
    if (std::find(ps.begin(), ps.end(), p) == ps.end()) ps.push_back(p);
  }
  for (ProcId p : ps) {
    History pa = project(a, p);
    History pb = project(b, p);
    if (pa.size() != pb.size()) return false;
    for (size_t i = 0; i < pa.size(); ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
  }
  return true;
}

bool sequential(const History& h) {
  // Alternating inv/res of the same operation.
  bool expecting_inv = true;
  OpId open{};
  for (const Event& e : h) {
    if (expecting_inv) {
      if (!e.is_inv()) return false;
      open = e.op.id;
      expecting_inv = false;
    } else {
      if (!e.is_res() || e.op.id != open) return false;
      expecting_inv = true;
    }
  }
  return true;
}

std::vector<ProcId> processes(const History& h) {
  std::vector<ProcId> out;
  for (const Event& e : h) {
    if (std::find(out.begin(), out.end(), e.op.id.pid) == out.end()) {
      out.push_back(e.op.id.pid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string format_history(const History& h) {
  std::ostringstream os;
  for (const Event& e : h) os << "  " << to_string(e) << "\n";
  return os.str();
}

std::string format_history_inline(const History& h) {
  std::ostringstream os;
  for (size_t i = 0; i < h.size(); ++i) {
    if (i != 0) os << " ";
    os << to_string(h[i]);
  }
  return os.str();
}

}  // namespace selin
