#include "selin/history/similarity.hpp"

#include <algorithm>

namespace selin {

History canonical_similarity_witness(const History& e, const History& f) {
  HistoryIndex ie(e);
  HistoryIndex iff(f);

  History out;
  out.reserve(e.size());
  // Pass 1: copy e, dropping invocations of pending ops that are absent in f.
  for (const Event& ev : e) {
    const OpRecord* re = ie.find(ev.op.id);
    if (ev.is_inv() && !re->complete()) {
      const OpRecord* rf = iff.find(ev.op.id);
      if (rf == nullptr) continue;  // removed
    }
    out.push_back(ev);
  }
  // Pass 2: append f's responses for ops pending in e but complete in f.
  std::vector<const OpRecord*> to_append;
  for (const OpRecord& re : ie.ops()) {
    if (re.complete()) continue;
    const OpRecord* rf = iff.find(re.op.id);
    if (rf != nullptr && rf->complete()) to_append.push_back(rf);
  }
  std::sort(to_append.begin(), to_append.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->op.id < b->op.id;
            });
  for (const OpRecord* rf : to_append) {
    out.push_back(Event::res(rf->op, *rf->result));
  }
  return out;
}

bool similar_to(const History& e, const History& f) {
  History eprime = canonical_similarity_witness(e, f);
  if (!equivalent(eprime, f)) return false;
  // ≺_E' ⊆ ≺_F : for every pair related by ≺ in E', the pair must be related
  // in F.  Quadratic in the number of operations; histories here are the
  // bounded witnesses used in tests and certificates.
  HistoryIndex iep(eprime);
  HistoryIndex iff(f);
  const auto& ops = iep.ops();
  for (const OpRecord& a : ops) {
    if (!a.complete()) continue;
    for (const OpRecord& b : ops) {
      if (a.op.id == b.op.id) continue;
      if (a.res_pos < b.inv_pos) {          // a ≺_E' b
        if (!iff.precedes(a.op.id, b.op.id)) return false;
      }
    }
  }
  return true;
}

}  // namespace selin
