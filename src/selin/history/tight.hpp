// Tight executions (Definition 7.5) and the transformation T(E).
//
// In a tight execution of A* the beginning and end of every operation are
// identified with its snapshot-Write (Figure 7 line 02) and Snapshot
// (line 05) steps.  T(E) is obtained from any finite execution E of A* by
//   (1) dropping pending operations that have not performed their Write,
//   (2) moving each invocation forward to just before its Write step,
//   (3) moving/completing each response to just after its Snapshot step.
//
// At the code level an execution of A* is abstracted by the global order of
// its Write and Snapshot steps (an AStarTrace); the real-thread recorder in
// sim/ produces these traces with a global atomic stamp.  T(E) is then a
// plain history whose invocation events sit at the Write positions and whose
// response events sit at the Snapshot positions — exactly the history the
// views of A* sketch (Lemma 7.4).
#pragma once

#include "selin/history/history.hpp"

namespace selin {

/// One Write or Snapshot step of some operation of A*, in global real-time
/// order.  `y` carries the response obtained from the underlying A; it is
/// meaningful only for kSnap marks (by line 04 of Figure 7 the response from
/// A precedes the Snapshot step).
struct AStarMark {
  enum class Kind : uint8_t { kWrite, kSnap };
  Kind kind;
  OpDesc op;
  Value y = kNoArg;
};

using AStarTrace = std::vector<AStarMark>;

/// The history of the tight execution T(E) associated with the traced
/// execution: inv(op) at op's Write position, res(op, y) at op's Snapshot
/// position; operations without a Write are dropped, operations with a
/// Snapshot are complete.
History tight_history(const AStarTrace& trace);

/// Validates the trace: every op has at most one Write and one Snap, a Snap
/// is preceded by its Write, per-process marks are sequential.
bool valid_trace(const AStarTrace& trace, std::string* why = nullptr);

}  // namespace selin
