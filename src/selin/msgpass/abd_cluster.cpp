#include "selin/msgpass/abd_cluster.hpp"

#include <chrono>
#include <string>

namespace selin {

AbdCluster::AbdCluster(const AbdClusterOptions& opts)
    : opts_(opts),
      net_(std::make_shared<AbdService>(AbdService::Options{
          opts.replicas, opts.seed, opts.max_delay_us, opts.drop_permille,
          opts.reorder, opts.retransmit_us})),
      svc_(service::ServiceOptions{opts.lanes, opts.batch_limit,
                                   opts.executor, opts.observe, opts.trace}) {
  service::SessionOptions sopts;
  sopts.max_configs = opts.max_configs;
  sopts.threads = opts.checker_threads;
  sopts.inbox_capacity = opts.inbox_capacity;
  sids_.reserve(opts.keys);
  for (size_t k = 0; k < opts.keys; ++k) {
    sids_.push_back(svc_.open("abd.key" + std::to_string(k),
                              make_register_spec(0), sopts));
  }
}

AbdCluster::~AbdCluster() { stop_drainer(); }

void AbdCluster::start_drainer() {
  if (drainer_on_.exchange(true, std::memory_order_acq_rel)) return;
  drainer_stop_.store(false, std::memory_order_release);
  drainer_ = std::thread([this] {
    while (!drainer_stop_.load(std::memory_order_acquire)) {
      if (svc_.drain_round() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
}

void AbdCluster::stop_drainer() {
  if (!drainer_on_.load(std::memory_order_acquire)) return;
  drainer_stop_.store(true, std::memory_order_release);
  drainer_.join();
  drainer_on_.store(false, std::memory_order_release);
  svc_.drain();  // absorb whatever the drainer left in flight
}

void AbdCluster::publish_blocking(service::Session* s, const Event& e) {
  std::span<const Event> one(&e, 1);
  while (!s->try_publish(one)) {
    if (drainer_on_.load(std::memory_order_acquire)) {
      // A controller thread owns draining; backpressure resolves as soon as
      // it absorbs this session's inbox.
      std::this_thread::yield();
    } else {
      // Single-threaded deployment: the caller *is* the controller.
      svc_.drain_round();
    }
  }
}

Value AbdCluster::read(ProcId client, uint64_t key) {
  service::Session* s = svc_.find(sids_[key]);
  OpDesc op{OpId{client, next_seq_.fetch_add(1, std::memory_order_relaxed)},
            Method::kRead, kNoArg};
  // Publish the invocation before the quorum protocol starts: the observed
  // interval conservatively contains the true one (see header).
  publish_blocking(s, Event::inv(op));
  Value v = static_cast<Value>(net_->read(key).value);
  publish_blocking(s, Event::res(op, v));
  ops_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

void AbdCluster::write(ProcId client, uint64_t key, Value value) {
  service::Session* s = svc_.find(sids_[key]);
  OpDesc op{OpId{client, next_seq_.fetch_add(1, std::memory_order_relaxed)},
            Method::kWrite, value};
  publish_blocking(s, Event::inv(op));
  net_->write(key, static_cast<uint64_t>(value), client + 1);
  publish_blocking(s, Event::res(op, kOk));
  ops_.fetch_add(1, std::memory_order_relaxed);
}

void AbdCluster::publish_raw(uint64_t key, std::span<const Event> events) {
  service::Session* s = svc_.find(sids_[key]);
  for (const Event& e : events) publish_blocking(s, e);
}

bool AbdCluster::all_ok() {
  for (service::SessionId sid : sids_) {
    if (!svc_.session(sid).ok()) return false;
  }
  return true;
}

engine::EngineStats AbdCluster::stats() {
  engine::EngineStats total;
  total.lanes = 0;
  for (service::SessionId sid : sids_) {
    engine::accumulate(total, svc_.session(sid).stats());
  }
  if (total.lanes == 0) total.lanes = 1;
  return total;
}

}  // namespace selin
