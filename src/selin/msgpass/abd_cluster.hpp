// A monitored ABD cluster: the message-passing deployment shape of the
// paper run at scale, with the modern checking engine attached.
//
// AbdService (Section 9.4) gives linearizable MWMR registers over a
// simulated asynchronous network — now with lossy/reordered links and
// client retransmission (AbdService::Options).  AbdCluster puts a
// runtime-verification plane next to it: every client operation publishes
// its invocation before the quorum protocol starts and its response after
// it completes, into a per-register service::MonitorService session whose
// LinMonitor checks the *observed* history against the register spec on
// the fingerprinted batched frontier engine.
//
// Soundness of the observation: publishing the invocation early and the
// response late only *widens* the operation's real-time interval, which
// weakens the precedence order the monitor enforces — a history
// linearizable under the true intervals stays linearizable under widened
// ones, so a correct ABD deployment always verifies kOk, while any value
// anomaly (stale read, lost write) is still a value anomaly in the widened
// history and gets caught.  Per-client event order is preserved by the
// MPSC session feed (events publish in call order per producer), so
// well-formedness holds as long as each logical client is driven
// sequentially — which is the client contract anyway.
//
// Scale shape: hundreds-to-thousands of *logical* clients (ProcIds) ride a
// handful of driver threads; per-register monitor state is bounded by the
// frontier of concurrently pending ops (≈ driver threads), not by the
// client population, and all sessions share one injected
// parallel::Executor — the decoupled-deployment shape where the whole
// cluster's checking runs on one bounded thread pool.
//
// Threading contract: read()/write() are safe from any number of driver
// threads (each logical client on one thread at a time).  Draining is a
// controller role: either call drain_round()/drain() from a single
// controller thread, or start_drainer() to run it on an internal thread —
// required when multiple driver threads may fill the session inboxes, since
// a blocked publisher can only spin-wait on the drainer.  Verdict/stats
// queries belong to the controller, between drains (stop_drainer() first).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "selin/engine/stats.hpp"
#include "selin/msgpass/abd.hpp"
#include "selin/service/monitor_service.hpp"

namespace selin {

struct AbdClusterOptions {
  /// Replica count of the underlying ABD service.
  size_t replicas = 3;
  /// Monitored registers; keys are 0..keys-1, one session per key.
  size_t keys = 1;
  uint64_t seed = 1;
  /// Network-adversity knobs, forwarded to AbdService::Options.
  uint64_t max_delay_us = 0;
  uint32_t drop_permille = 0;
  bool reorder = false;
  uint64_t retransmit_us = 0;
  /// Monitoring-plane knobs (service::MonitorService / SessionOptions).
  size_t lanes = 0;
  size_t batch_limit = 256;
  size_t checker_threads = 1;
  size_t max_configs = 1 << 18;
  size_t inbox_capacity = 1 << 14;
  /// Shared lane provider for every session's engine — pass the deployment
  /// executor to keep one bounded thread pool end to end.
  std::shared_ptr<parallel::Executor> executor;
  bool observe = false;
  obs::TraceSink* trace = nullptr;
};

class AbdCluster {
 public:
  explicit AbdCluster(const AbdClusterOptions& opts);
  ~AbdCluster();

  AbdCluster(const AbdCluster&) = delete;
  AbdCluster& operator=(const AbdCluster&) = delete;

  /// Linearizable monitored register ops.  `client` is the logical process
  /// id of the observed history; each client must be driven sequentially.
  Value read(ProcId client, uint64_t key);
  void write(ProcId client, uint64_t key, Value value);

  /// Controller-side draining (see the threading contract above).
  size_t drain_round() { return svc_.drain_round(); }
  void drain() { svc_.drain(); }

  /// Run drain rounds on an internal controller thread until
  /// stop_drainer(); required for multi-threaded drivers.
  void start_drainer();
  /// Stops the drainer thread and drains whatever is left.
  void stop_drainer();

  /// Verdict of register `key`'s session (controller, after draining).
  service::Session::Status verdict(uint64_t key) {
    return session(key).status();
  }
  /// True iff every register's observed history verified kOk.
  bool all_ok();

  /// Engine counters aggregated across all sessions.
  engine::EngineStats stats();
  /// Merged metrics snapshot of the monitoring plane (empty when
  /// unobserved).
  obs::MetricsSnapshot metrics_snapshot() { return svc_.metrics_snapshot(); }

  /// Completed client operations (reads + writes).
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

  AbdService& network() { return *net_; }
  service::MonitorService& monitor() { return svc_; }
  service::Session& session(uint64_t key) { return svc_.session(sids_[key]); }

  /// Publish raw events into a register's observed history — the fault
  /// hook differential tests use to forge a lying response the network
  /// never produced.  Same MPSC path and blocking semantics as client ops.
  void publish_raw(uint64_t key, std::span<const Event> events);

 private:
  void publish_blocking(service::Session* s, const Event& e);

  AbdClusterOptions opts_;
  std::shared_ptr<AbdService> net_;
  service::MonitorService svc_;
  std::vector<service::SessionId> sids_;
  std::atomic<uint32_t> next_seq_{1};
  std::atomic<uint64_t> ops_{0};

  std::atomic<bool> drainer_on_{false};
  std::atomic<bool> drainer_stop_{false};
  std::thread drainer_;
};

}  // namespace selin
