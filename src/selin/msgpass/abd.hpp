// Message-passing substrate (Section 9.4): "Due to the shared memory
// simulation algorithm in [5] (Attiya, Bar-Noy, Dolev), all our algorithms —
// A*, V_O, V_{O,A} and D_{O,A} — can be simulated in asynchronous
// message-passing systems where less than half the processes can crash."
//
// This module provides that simulation: a simulated asynchronous network of
// replica nodes with crash failures, the ABD multi-writer multi-reader
// atomic register protocol on top (majority quorums, two phases per
// operation, linearizable), and a Snapshot implementation over ABD registers
// so the whole selin stack — announcement object N, record object M, hence
// A* and every verifier — runs on message passing.
//
// Replicas are threads with mailboxes and randomized per-message delays
// (seeded, reproducible).  crash(r) silences a replica permanently; every
// client operation completes as long as a majority of replicas is alive —
// the fault-tolerance contract the paper inherits from [5].
//
// Payload note: selin snapshot entries are pointers to immutable nodes
// (Section 9.1 representation).  In a real deployment the nodes themselves
// would be shipped; the simulation shares one address space, so shipping the
// pointer preserves exactly the algorithmic content (timestamps, quorums,
// write-backs) under study.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "selin/impls/concurrent.hpp"
#include "selin/snapshot/snapshot.hpp"
#include "selin/util/rng.hpp"
#include "selin/util/types.hpp"

namespace selin {

/// The replicated register service: an asynchronous message-passing system
/// of `replicas` nodes implementing linearizable MWMR registers keyed by
/// uint64, via the ABD protocol.  Thread-safe for any number of clients.
class AbdService {
 public:
  struct Versioned {
    uint64_t value = 0;
    uint64_t ts = 0;    ///< logical timestamp
    uint32_t wid = 0;   ///< writer id (timestamp tie-break)
  };

  /// Network-adversity knobs (sim/-style seeded fault injection).  The
  /// defaults reproduce the seed-era reliable-FIFO links; the cluster bench
  /// and the differential tests turn the faults on.
  struct Options {
    /// Must be >= 1; tolerates ceil(replicas/2)-1 crashes.
    size_t replicas = 3;
    uint64_t seed = 1;
    /// Bounds the simulated per-message processing delay.
    uint64_t max_delay_us = 20;
    /// Per-message drop probability in permille (applied independently to
    /// requests and replies).  Lost messages are recovered by
    /// retransmission: ABD's phases are idempotent, so clients simply
    /// rebroadcast an unanswered request (see retransmit_us).
    uint32_t drop_permille = 0;
    /// Deliver inbox messages in random order instead of FIFO — the
    /// asynchronous-network reordering the protocol must tolerate.
    bool reorder = false;
    /// Client retransmission interval under lossy links; 0 picks a bound
    /// from max_delay_us.  Only consulted when drop_permille > 0.
    uint64_t retransmit_us = 0;
  };

  explicit AbdService(const Options& options);
  /// Seed-era signature (reliable links), kept delegating.
  explicit AbdService(size_t replicas, uint64_t seed = 1,
                      uint64_t max_delay_us = 20);
  ~AbdService();

  AbdService(const AbdService&) = delete;
  AbdService& operator=(const AbdService&) = delete;

  /// Crash replica r: it stops processing messages forever.  Crashing a
  /// majority makes subsequent operations block (as it must — ABD requires
  /// a live majority); the caller is responsible for staying a minority.
  void crash(size_t r);

  size_t replicas() const { return replicas_.size(); }
  size_t quorum() const { return replicas_.size() / 2 + 1; }
  size_t alive() const;

  /// Linearizable read: GET phase to a majority, then write-back (PUT) of
  /// the maximum timestamp to a majority.
  Versioned read(uint64_t key);

  /// Linearizable write: GET-timestamp phase, then PUT of (max_ts+1, wid).
  void write(uint64_t key, uint64_t value, uint32_t wid);

  /// Total messages processed (diagnostics / benches).
  uint64_t messages_processed() const;

  /// Messages lost to the simulated lossy links (requests + replies).
  uint64_t messages_dropped() const;

  /// Client rebroadcasts triggered by reply timeouts under lossy links.
  uint64_t retransmissions() const;

 private:
  struct Msg {
    enum class Type : uint8_t { kGet, kPut, kGetReply, kPutAck };
    Type type;
    uint64_t rid;
    uint64_t key;
    Versioned data;
    size_t replica;  // sender replica (for replies)
  };

  struct Replica {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Msg> inbox;
    bool crashed = false;
    bool stop = false;
    std::unordered_map<uint64_t, Versioned> store;
    std::thread thread;
  };

  struct Pending {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Msg> replies;
    /// Distinct-replica dedupe: retransmission makes duplicate replies
    /// possible, and a quorum must count *replicas*, not messages.
    std::vector<uint8_t> seen;
  };

  void replica_loop(size_t r, uint64_t seed);
  void post(size_t r, const Msg& m);
  void broadcast(const Msg& m);
  /// Blocks until a quorum of *distinct replicas* replied to rid; under
  /// lossy links, rebroadcasts `request` every retransmission interval
  /// (ABD phases are idempotent, so duplicates are harmless and deduped).
  std::vector<Msg> await_quorum(uint64_t rid, const Msg& request);
  uint64_t register_rid(std::shared_ptr<Pending> p);
  void deliver_reply(const Msg& m);
  /// Seeded coin for the lossy links; true = this message is lost.
  bool drop_message();

  std::vector<std::unique_ptr<Replica>> replicas_;
  Options opts_;
  uint64_t max_delay_us_;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  std::atomic<uint64_t> next_rid_{1};
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> drop_state_{0};
};

/// Snapshot over ABD registers: entry i is the ABD register with key i; a
/// scan double-collects (value, ts) vectors until two consecutive collects
/// agree on all timestamps — linearizable by the standard double-collect
/// argument over linearizable base registers.  Lock-free (scans can be
/// starved by writers), matching DoubleCollectSnapshot's contract but with
/// every base step a quorum round-trip.
template <typename T>
class AbdSnapshot final : public Snapshot<T> {
  static_assert(sizeof(T) <= sizeof(uint64_t) &&
                    std::is_trivially_copyable_v<T>,
                "AbdSnapshot payloads must fit a register word");

 public:
  /// Shares (does not own) the replica service, so several snapshot objects
  /// (announcements N, records M) can ride one replicated system.
  AbdSnapshot(std::shared_ptr<AbdService> service, size_t n, T initial,
              uint64_t key_base = 0)
      : service_(std::move(service)), n_(n), key_base_(key_base) {
    for (size_t i = 0; i < n_; ++i) {
      service_->write(key_base_ + i, encode(initial), /*wid=*/0);
    }
  }

  void write(ProcId i, T v) override {
    StepCounter::bump();
    service_->write(key_base_ + i, encode(v), i + 1);
  }

  std::vector<T> scan(ProcId /*i*/) override {
    const size_t n = n_;
    std::vector<AbdService::Versioned> a(n), b(n);
    collect(a);
    for (;;) {
      collect(b);
      bool clean = true;
      for (size_t k = 0; k < n; ++k) {
        if (a[k].ts != b[k].ts || a[k].wid != b[k].wid) {
          clean = false;
          break;
        }
      }
      if (clean) {
        std::vector<T> out(n);
        for (size_t k = 0; k < n; ++k) out[k] = decode(b[k].value);
        return out;
      }
      a.swap(b);
    }
  }

  size_t size() const override { return n_; }
  const char* name() const override { return "abd"; }

 private:
  static uint64_t encode(T v) {
    uint64_t out = 0;
    std::memcpy(&out, &v, sizeof(T));
    return out;
  }
  static T decode(uint64_t raw) {
    T out{};
    std::memcpy(&out, &raw, sizeof(T));
    return out;
  }

  void collect(std::vector<AbdService::Versioned>& out) {
    for (size_t k = 0; k < n_; ++k) {
      StepCounter::bump();
      out[k] = service_->read(key_base_ + k);
    }
  }

  std::shared_ptr<AbdService> service_;
  size_t n_;
  uint64_t key_base_;
};

/// A *distributed* register implementation (an A living on message passing):
/// Read/Write through the ABD service.  Linearizable, majority-resilient.
std::unique_ptr<IConcurrent> make_abd_register(
    std::shared_ptr<AbdService> service, uint64_t key = 1'000'000,
    Value initial = 0);

}  // namespace selin
