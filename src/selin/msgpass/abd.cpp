#include "selin/msgpass/abd.hpp"

#include <algorithm>
#include <chrono>

#include "selin/impls/concurrent.hpp"

namespace selin {

AbdService::AbdService(const Options& options)
    : opts_(options),
      max_delay_us_(options.max_delay_us),
      drop_state_(options.seed * 0x9E3779B97F4A7C15ull + 1) {
  replicas_.reserve(opts_.replicas);
  for (size_t r = 0; r < opts_.replicas; ++r) {
    replicas_.push_back(std::make_unique<Replica>());
  }
  const uint64_t seed = opts_.seed;
  for (size_t r = 0; r < opts_.replicas; ++r) {
    replicas_[r]->thread =
        std::thread([this, r, seed] { replica_loop(r, seed ^ (r * 7919)); });
  }
}

AbdService::AbdService(size_t replicas, uint64_t seed, uint64_t max_delay_us)
    : AbdService(Options{replicas, seed, max_delay_us}) {}

AbdService::~AbdService() {
  for (auto& rep : replicas_) {
    {
      std::lock_guard<std::mutex> lock(rep->mu);
      rep->stop = true;
    }
    rep->cv.notify_all();
  }
  for (auto& rep : replicas_) rep->thread.join();
}

void AbdService::crash(size_t r) {
  Replica& rep = *replicas_[r];
  {
    std::lock_guard<std::mutex> lock(rep.mu);
    rep.crashed = true;
    rep.inbox.clear();
  }
  rep.cv.notify_all();
}

size_t AbdService::alive() const {
  size_t n = 0;
  for (const auto& rep : replicas_) {
    std::lock_guard<std::mutex> lock(rep->mu);
    if (!rep->crashed) ++n;
  }
  return n;
}

uint64_t AbdService::messages_processed() const {
  return processed_.load(std::memory_order_relaxed);
}

uint64_t AbdService::messages_dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

uint64_t AbdService::retransmissions() const {
  return retransmits_.load(std::memory_order_relaxed);
}

bool AbdService::drop_message() {
  if (opts_.drop_permille == 0) return false;
  // splitmix64 over a shared seeded counter: reproducible loss *rate* (the
  // exact victims depend on cross-thread interleaving, as real loss does).
  uint64_t x = drop_state_.fetch_add(0x9E3779B97F4A7C15ull,
                                     std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  if (x % 1000 >= opts_.drop_permille) return false;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AbdService::replica_loop(size_t r, uint64_t seed) {
  Replica& rep = *replicas_[r];
  Rng rng(seed);
  for (;;) {
    Msg m;
    {
      std::unique_lock<std::mutex> lock(rep.mu);
      rep.cv.wait(lock, [&] { return rep.stop || !rep.inbox.empty(); });
      if (rep.stop) return;
      if (rep.crashed) {
        rep.inbox.clear();
        continue;
      }
      if (opts_.reorder && rep.inbox.size() > 1) {
        // Asynchronous links: deliver any pending message, not the oldest.
        size_t idx = rng.below(rep.inbox.size());
        m = rep.inbox[idx];
        rep.inbox.erase(rep.inbox.begin() + static_cast<ptrdiff_t>(idx));
      } else {
        m = rep.inbox.front();
        rep.inbox.pop_front();
      }
    }
    // Simulated asynchrony: a random processing delay per message.
    if (max_delay_us_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.below(max_delay_us_)));
    }
    processed_.fetch_add(1, std::memory_order_relaxed);
    switch (m.type) {
      case Msg::Type::kGet: {
        Msg reply = m;
        reply.type = Msg::Type::kGetReply;
        reply.replica = r;
        auto it = rep.store.find(m.key);
        reply.data = it == rep.store.end() ? Versioned{} : it->second;
        deliver_reply(reply);
        break;
      }
      case Msg::Type::kPut: {
        Versioned& cur = rep.store[m.key];
        if (m.data.ts > cur.ts ||
            (m.data.ts == cur.ts && m.data.wid > cur.wid)) {
          cur = m.data;
        }
        Msg ack = m;
        ack.type = Msg::Type::kPutAck;
        ack.replica = r;
        deliver_reply(ack);
        break;
      }
      default:
        break;  // replies are routed to clients, never to replicas
    }
  }
}

void AbdService::post(size_t r, const Msg& m) {
  if (drop_message()) return;  // lossy request link
  Replica& rep = *replicas_[r];
  {
    std::lock_guard<std::mutex> lock(rep.mu);
    if (rep.crashed || rep.stop) return;  // messages to the crashed are lost
    rep.inbox.push_back(m);
  }
  rep.cv.notify_one();
}

void AbdService::broadcast(const Msg& m) {
  for (size_t r = 0; r < replicas_.size(); ++r) post(r, m);
}

uint64_t AbdService::register_rid(std::shared_ptr<Pending> p) {
  uint64_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
  p->seen.assign(replicas_.size(), 0);
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.emplace(rid, std::move(p));
  return rid;
}

void AbdService::deliver_reply(const Msg& m) {
  if (drop_message()) return;  // lossy reply link
  std::shared_ptr<Pending> p;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(m.rid);
    if (it == pending_.end()) return;  // client already satisfied
    p = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(p->mu);
    // Retransmitted requests produce duplicate replies; a quorum counts
    // distinct replicas, so only the first reply per replica lands.
    if (p->seen[m.replica]) return;
    p->seen[m.replica] = 1;
    p->replies.push_back(m);
  }
  p->cv.notify_all();
}

std::vector<AbdService::Msg> AbdService::await_quorum(uint64_t rid,
                                                      const Msg& request) {
  std::shared_ptr<Pending> p;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    p = pending_.at(rid);
  }
  const bool lossy = opts_.drop_permille > 0;
  // Under lossy links, rebroadcast the (idempotent) request whenever a
  // retransmission interval passes without reaching a quorum.  The interval
  // leaves room for the simulated processing delays so a healthy exchange
  // rarely retransmits.
  const auto interval = std::chrono::microseconds(
      opts_.retransmit_us != 0 ? opts_.retransmit_us
                               : 200 + 4 * max_delay_us_);
  std::unique_lock<std::mutex> lock(p->mu);
  auto quorum_reached = [&] { return p->replies.size() >= quorum(); };
  if (lossy) {
    while (!p->cv.wait_for(lock, interval, quorum_reached)) {
      retransmits_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      broadcast(request);
      lock.lock();
    }
  } else {
    p->cv.wait(lock, quorum_reached);
  }
  std::vector<Msg> out = p->replies;
  lock.unlock();
  {
    std::lock_guard<std::mutex> plock(pending_mu_);
    pending_.erase(rid);
  }
  return out;
}

AbdService::Versioned AbdService::read(uint64_t key) {
  // Phase 1: GET from a majority; adopt the maximum (ts, wid).
  auto p1 = std::make_shared<Pending>();
  Msg get{Msg::Type::kGet, register_rid(p1), key, {}, 0};
  broadcast(get);
  std::vector<Msg> replies = await_quorum(get.rid, get);
  Versioned best{};
  for (const Msg& m : replies) {
    if (m.data.ts > best.ts ||
        (m.data.ts == best.ts && m.data.wid > best.wid)) {
      best = m.data;
    }
  }
  // Phase 2: write back to a majority so later reads cannot see older data.
  auto p2 = std::make_shared<Pending>();
  Msg put{Msg::Type::kPut, register_rid(p2), key, best, 0};
  broadcast(put);
  await_quorum(put.rid, put);
  return best;
}

void AbdService::write(uint64_t key, uint64_t value, uint32_t wid) {
  // Phase 1: learn the maximum timestamp from a majority.
  auto p1 = std::make_shared<Pending>();
  Msg get{Msg::Type::kGet, register_rid(p1), key, {}, 0};
  broadcast(get);
  std::vector<Msg> replies = await_quorum(get.rid, get);
  uint64_t max_ts = 0;
  for (const Msg& m : replies) max_ts = std::max(max_ts, m.data.ts);
  // Phase 2: install (value, max_ts+1, wid) at a majority.
  auto p2 = std::make_shared<Pending>();
  Msg put{Msg::Type::kPut, register_rid(p2), key,
          Versioned{value, max_ts + 1, wid}, 0};
  broadcast(put);
  await_quorum(put.rid, put);
}

namespace {

class AbdRegister final : public IConcurrent {
 public:
  AbdRegister(std::shared_ptr<AbdService> service, uint64_t key, Value initial)
      : service_(std::move(service)), key_(key) {
    service_->write(key_, static_cast<uint64_t>(initial), 0);
  }

  const char* name() const override { return "abd-register"; }

  Value apply(ProcId p, const OpDesc& op) override {
    switch (op.method) {
      case Method::kWrite:
        service_->write(key_, static_cast<uint64_t>(op.arg), p + 1);
        return kOk;
      case Method::kRead:
        return static_cast<Value>(service_->read(key_).value);
      default:
        return kError;
    }
  }

 private:
  std::shared_ptr<AbdService> service_;
  uint64_t key_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_abd_register(
    std::shared_ptr<AbdService> service, uint64_t key, Value initial) {
  return std::make_unique<AbdRegister>(std::move(service), key, initial);
}

}  // namespace selin
