// Multi-tenant monitoring service: many independent (spec, history) streams
// multiplexed over one shared executor.
//
// The paper's pipeline is single-tenant — one history, one monitor, and
// (after the parallel PRs) private worker lanes per checker.  A deployment
// watching thousands of concurrently monitored objects cannot afford a
// thread set per object; what it needs is the shape of Pod's generalized
// consensus layer (PAPERS.md): many client streams multiplexed over one
// fixed worker set.  MonitorService is that multiplexer for membership
// checking:
//
//   * one parallel::Executor, sized to the hardware (or injected), is the
//     only source of worker threads — total threads stay bounded by its
//     lane cap no matter how many sessions are open;
//   * each Session owns an independent LinMonitor (its own spec, dedup
//     arenas, frontier) plus a pending-event buffer — sessions share
//     *threads*, never monitor state, so there is no cross-session
//     synchronization beyond the executor's queue;
//   * feeds are buffered and the service drains them in round-robin
//     *batches*: each drain round takes at most `batch_limit` events from
//     every pending session and runs the sessions' feed_batch calls as one
//     executor phase, so independent sessions progress in parallel while
//     the batched feed path amortizes per-event closure work within each.
//
// Verdicts are deterministic per session: a session's events are fed in
// arrival order whatever the interleaving with other sessions' work and
// whatever the executor's lane count (tests/service_test.cpp asserts this).
// Verdict granularity is the batch: ok() may flip anywhere inside a drained
// batch, and first_bad_index() brackets the offense by the start of that
// batch (re-check the reported window per event for the exact offender).
//
// Threading contract: open/feed/drain/close are controller-thread calls
// (one caller, like every selin facade); the parallelism lives inside
// drain_round.  Per-session queries are safe between drains.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/obs/hooks.hpp"
#include "selin/obs/metrics.hpp"
#include "selin/parallel/executor.hpp"
#include "selin/spec/spec.hpp"

namespace selin::service {

using SessionId = size_t;

struct ServiceOptions {
  /// Worker-lane cap of the service's executor; 0 = hardware-resolved.
  /// Ignored when `executor` is provided.
  size_t lanes = 0;
  /// Max events drained from one session per round — the fairness quantum:
  /// a firehose session cannot starve the others for longer than one batch.
  size_t batch_limit = 256;
  /// Share an existing executor (e.g. with other services or checkers)
  /// instead of creating one.
  std::shared_ptr<parallel::Executor> executor;
  /// Build the observability plane: a per-session MetricsRegistry with the
  /// engine instrument set (labelled session=<name>), service drain-round
  /// instruments, and — when the service creates its own executor —
  /// executor instruments (an injected executor keeps its owner's
  /// attachment).  Off by default: unobserved sessions pay one null check
  /// per feed round.
  bool observe = false;
  /// Receives kDrainRound / kSessionBatch / engine spans (borrowed; must
  /// outlive the service).  Only read when `observe` is set.
  obs::TraceSink* trace = nullptr;
};

struct SessionOptions {
  /// Exploration budget of the session's membership monitor.
  size_t max_configs = 1 << 18;
  /// Per-session monitor threads knob (1 = sequential within the session —
  /// the default: cross-session parallelism usually saturates the executor
  /// first; > 1 / engine::auto_threads(n) shard wide frontiers over the
  /// same shared executor).
  size_t threads = 1;
};

/// One monitored stream.  Owned by the service; query between drains.
class Session {
 public:
  enum class Status {
    kOk,          ///< every drained event consistent so far
    kRejected,    ///< membership violated (sticky)
    kOverflowed,  ///< exploration budget exceeded; verdict unknown (sticky)
  };

  const std::string& name() const { return name_; }
  Status status() const;
  bool ok() const { return status() == Status::kOk; }

  /// Events the monitor has accepted so far (excludes still-buffered ones;
  /// a settled session stops counting where processing stopped).
  size_t events_fed() const { return fed_; }
  /// Events buffered but not yet drained.
  size_t pending() const { return buffer_.size() - head_; }
  /// Index (in arrival order) of the first event of the batch in which the
  /// verdict flipped; events_fed() when still ok.  Batch granularity: the
  /// monitor settles verdicts per drained batch.
  size_t first_bad_index() const { return settled_ ? first_bad_ : fed_; }

  /// Execution counters of the session's engine (engine/stats.hpp).
  engine::EngineStats stats() const { return monitor_.stats(); }
  size_t frontier_size() const { return monitor_.frontier_size(); }

  /// The session's instrument registry; nullptr when the service is
  /// unobserved.
  const obs::MetricsRegistry* metrics() const { return reg_.get(); }

  /// Snapshot of the session's instruments with the engine counters sampled
  /// into engine_* gauges; empty when unobserved.
  obs::MetricsSnapshot metrics_snapshot();

 private:
  friend class MonitorService;

  Session(std::string name, std::unique_ptr<SeqSpec> spec,
          const SessionOptions& opts,
          std::shared_ptr<parallel::Executor> exec, uint64_t id,
          bool observe, obs::TraceSink* trace);

  /// Feed up to `limit` buffered events into the monitor (executor-phase
  /// job: touches only this session).  CheckerOverflow is absorbed into the
  /// sticky overflowed status.
  void run_one_batch(size_t limit);

  std::string name_;
  std::unique_ptr<SeqSpec> spec_;
  LinMonitor monitor_;
  std::vector<Event> buffer_;  // pending events; [head_, size) undrained
  size_t head_ = 0;
  size_t fed_ = 0;
  size_t first_bad_ = 0;
  bool settled_ = false;  // rejected or overflowed: drop further input

  // Observability plane (null/unused when the service is unobserved).  The
  // registry and bundle live with the session, so monitor_'s borrowed
  // attachment can never dangle.
  uint64_t id_ = 0;
  std::unique_ptr<obs::MetricsRegistry> reg_;
  obs::EngineHooks hooks_;
  obs::TraceSink* trace_ = nullptr;  // kSessionBatch spans
};

class MonitorService {
 public:
  explicit MonitorService(const ServiceOptions& opts = {});
  ~MonitorService();

  /// Opens an independent stream checked against `spec`.  The returned id
  /// is stable for the service's lifetime (sessions are never reused).
  SessionId open(std::string name, std::unique_ptr<SeqSpec> spec,
                 const SessionOptions& opts = {});

  Session& session(SessionId id) { return *sessions_[id]; }
  const Session& session(SessionId id) const { return *sessions_[id]; }
  size_t session_count() const { return sessions_.size(); }

  /// Buffer events for a session (fed in arrival order at the next drain).
  void feed(SessionId id, const Event& e);
  void feed(SessionId id, std::span<const Event> events);

  /// One round-robin scheduling round: up to batch_limit events from every
  /// session with pending input, the batches running concurrently on the
  /// executor.  Returns the number of sessions serviced (0 = nothing
  /// pending).
  size_t drain_round();

  /// Drain rounds until no session has pending input.
  void drain();

  /// Total events still buffered across sessions.
  size_t pending() const;

  const std::shared_ptr<parallel::Executor>& executor() const {
    return exec_;
  }

  bool observed() const { return reg_ != nullptr; }

  /// Merged snapshot of the whole observability plane: the service's own
  /// drain-round/executor instruments plus every session's registry, with
  /// each session's engine counters sampled in.  Empty when unobserved.
  /// Controller-thread call, between drains (like every query).
  obs::MetricsSnapshot metrics_snapshot();

  /// obs::snapshot_json of metrics_snapshot() — the machine-readable
  /// endpoint the ingest daemon will serve.
  std::string metrics_json();

 private:
  std::shared_ptr<parallel::Executor> exec_;
  size_t batch_limit_;
  std::vector<std::unique_ptr<Session>> sessions_;
  size_t rr_ = 0;  // round-robin start offset (fairness rotation)

  // Observability plane (all null when unobserved).  exec_hooks_ is heap-
  // allocated so the executor's borrowed pointer stays valid until the
  // destructor detaches it.
  std::unique_ptr<obs::MetricsRegistry> reg_;
  std::unique_ptr<obs::ExecutorHooks> exec_hooks_;
  obs::TraceSink* trace_ = nullptr;
  obs::Histogram* drain_sessions_ = nullptr;  // sessions serviced per round
  obs::Histogram* session_lag_ = nullptr;     // pending events at drain time
  obs::Counter* drain_rounds_ = nullptr;
  obs::Counter* events_drained_ = nullptr;
};

}  // namespace selin::service
