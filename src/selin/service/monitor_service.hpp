// Multi-tenant monitoring service: many independent (spec, history) streams
// multiplexed over one shared executor.
//
// The paper's pipeline is single-tenant — one history, one monitor, and
// (after the parallel PRs) private worker lanes per checker.  A deployment
// watching thousands of concurrently monitored objects cannot afford a
// thread set per object; what it needs is the shape of Pod's generalized
// consensus layer (PAPERS.md): many client streams multiplexed over one
// fixed worker set.  MonitorService is that multiplexer for membership
// checking:
//
//   * one parallel::Executor, sized to the hardware (or injected), is the
//     only source of worker threads — total threads stay bounded by its
//     lane cap no matter how many sessions are open;
//   * each Session owns an independent LinMonitor (its own spec, dedup
//     arenas, frontier) plus a pending-event buffer — sessions share
//     *threads*, never monitor state, so there is no cross-session
//     synchronization beyond the executor's queue;
//   * feeds are buffered and the service drains them in round-robin
//     *batches*: each drain round takes at most `batch_limit` events from
//     every pending session and runs the sessions' feed_batch calls as one
//     executor phase, so independent sessions progress in parallel while
//     the batched feed path amortizes per-event closure work within each.
//
// Verdicts are deterministic per session: a session's events are fed in
// arrival order whatever the interleaving with other sessions' work and
// whatever the executor's lane count (tests/service_test.cpp asserts this).
// Verdict granularity is the batch: ok() may flip anywhere inside a drained
// batch, and first_bad_index() brackets the offense by the start of that
// batch (re-check the reported window per event for the exact offender).
//
// Threading contract: open/feed/drain/close are controller-thread calls
// (one caller, like every selin facade); the parallelism lives inside
// drain_round.  Per-session queries are safe between drains.  The one
// cross-thread entry point is the MPSC feed: any number of producer threads
// may publish event batches into a session's bounded *inbox* via
// Session::try_publish (looked up through MonitorService::find), and the
// controller's drain rounds absorb inboxes into the ordinary buffered path.
// A full inbox rejects the batch — explicit backpressure the caller can
// surface (the ingest daemon answers with a THROTTLE frame) instead of
// unbounded buffering, silent drops, or blocking the producer.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/obs/hooks.hpp"
#include "selin/obs/metrics.hpp"
#include "selin/parallel/executor.hpp"
#include "selin/spec/spec.hpp"

namespace selin::service {

using SessionId = size_t;

struct ServiceOptions {
  /// Worker-lane cap of the service's executor; 0 = hardware-resolved.
  /// Ignored when `executor` is provided.
  size_t lanes = 0;
  /// Max events drained from one session per round — the fairness quantum:
  /// a firehose session cannot starve the others for longer than one batch.
  size_t batch_limit = 256;
  /// Share an existing executor (e.g. with other services or checkers)
  /// instead of creating one.
  std::shared_ptr<parallel::Executor> executor;
  /// Build the observability plane: a per-session MetricsRegistry with the
  /// engine instrument set (labelled session=<name>), service drain-round
  /// instruments, and — when the service creates its own executor —
  /// executor instruments (an injected executor keeps its owner's
  /// attachment).  Off by default: unobserved sessions pay one null check
  /// per feed round.
  bool observe = false;
  /// Receives kDrainRound / kSessionBatch / engine spans (borrowed; must
  /// outlive the service).  Only read when `observe` is set.
  obs::TraceSink* trace = nullptr;
};

struct SessionOptions {
  /// Exploration budget of the session's membership monitor.
  size_t max_configs = 1 << 18;
  /// Per-session monitor threads knob (1 = sequential within the session —
  /// the default: cross-session parallelism usually saturates the executor
  /// first; > 1 / engine::auto_threads(n) shard wide frontiers over the
  /// same shared executor).
  size_t threads = 1;
  /// Event capacity of the MPSC inbox (Session::try_publish).  The bound is
  /// the backpressure point of the live-ingest path: a publish that would
  /// exceed it is rejected whole.  Per-session memory stays bounded by
  /// roughly inbox_capacity + the service batch_limit in flight.
  size_t inbox_capacity = 1 << 14;
};

/// One monitored stream.  Owned by the service; query between drains.
class Session {
 public:
  enum class Status {
    kOk,          ///< every drained event consistent so far
    kRejected,    ///< membership violated (sticky)
    kOverflowed,  ///< exploration budget exceeded; verdict unknown (sticky)
  };

  const std::string& name() const { return name_; }
  Status status() const;
  bool ok() const { return status() == Status::kOk; }

  /// Events the monitor has accepted so far (excludes still-buffered ones;
  /// a settled session stops counting where processing stopped).
  size_t events_fed() const { return fed_; }
  /// Events buffered but not yet drained.
  size_t pending() const { return buffer_.size() - head_; }
  /// Index (in arrival order) of the first event of the batch in which the
  /// verdict flipped; events_fed() when still ok.  Batch granularity: the
  /// monitor settles verdicts per drained batch.
  size_t first_bad_index() const { return settled_ ? first_bad_ : fed_; }

  /// Execution counters of the session's engine (engine/stats.hpp).
  engine::EngineStats stats() const { return monitor_.stats(); }
  size_t frontier_size() const { return monitor_.frontier_size(); }

  /// The session's instrument registry; nullptr when the service is
  /// unobserved.
  const obs::MetricsRegistry* metrics() const { return reg_.get(); }

  /// Snapshot of the session's instruments with the engine counters sampled
  /// into engine_* gauges; empty when unobserved.
  obs::MetricsSnapshot metrics_snapshot();

  /// MPSC producer feed: atomically appends `events` to the session's
  /// bounded inbox.  Safe from any thread, concurrently with other
  /// producers and with the controller's drains.  Returns false when the
  /// batch would overflow inbox_capacity — the caller owns retry (nothing
  /// is partially published).  Events publish in call order per producer;
  /// cross-producer interleaving is the arrival order the monitor observes.
  /// A settled session accepts and discards (sticky verdicts ignore input).
  /// The pointer must not be used after MonitorService::close().
  bool try_publish(std::span<const Event> events);

  /// Events currently in the inbox (approximate under concurrent
  /// publishes; exact between drains).  Any thread.
  size_t inbox_len() const {
    return inbox_len_.load(std::memory_order_relaxed);
  }

  /// Undrained events: buffered + inbox.  Controller thread, between
  /// drains — the "has this session fully caught up" query the ingest
  /// daemon's verdict frames wait on.
  size_t backlog() const { return pending() + inbox_len(); }

 private:
  friend class MonitorService;

  Session(std::string name, std::unique_ptr<SeqSpec> spec,
          const SessionOptions& opts,
          std::shared_ptr<parallel::Executor> exec, uint64_t id,
          bool observe, obs::TraceSink* trace);

  /// Feed up to `limit` buffered events into the monitor (executor-phase
  /// job: touches only this session).  CheckerOverflow is absorbed into the
  /// sticky overflowed status.
  void run_one_batch(size_t limit);

  /// Controller-side half of the MPSC feed: moves the inbox into the
  /// buffered path.  Skipped while the buffer still holds >= max_buffered
  /// events, so per-session memory stays bounded (the inbox then fills and
  /// try_publish starts rejecting — backpressure, not growth).
  void absorb_inbox(size_t max_buffered);

  std::string name_;
  std::unique_ptr<SeqSpec> spec_;
  LinMonitor monitor_;
  std::vector<Event> buffer_;  // pending events; [head_, size) undrained
  size_t head_ = 0;
  size_t fed_ = 0;
  size_t first_bad_ = 0;
  // Rejected or overflowed: drop further input.  Atomic so producer-thread
  // publishes can read it while an executor lane settles the verdict.
  std::atomic<bool> settled_{false};

  // MPSC inbox (see try_publish).  inbox_len_ mirrors inbox_.size() so
  // queries never take the mutex.
  std::mutex inbox_mu_;
  std::vector<Event> inbox_;
  size_t inbox_cap_;
  std::atomic<size_t> inbox_len_{0};

  // Observability plane (null/unused when the service is unobserved).  The
  // registry and bundle live with the session, so monitor_'s borrowed
  // attachment can never dangle.
  uint64_t id_ = 0;
  std::unique_ptr<obs::MetricsRegistry> reg_;
  obs::EngineHooks hooks_;
  obs::TraceSink* trace_ = nullptr;  // kSessionBatch spans
};

class MonitorService {
 public:
  explicit MonitorService(const ServiceOptions& opts = {});
  ~MonitorService();

  /// Opens an independent stream checked against `spec`.  The returned id
  /// is stable for the service's lifetime (ids are never reused).
  SessionId open(std::string name, std::unique_ptr<SeqSpec> spec,
                 const SessionOptions& opts = {});

  /// Destroys a session, releasing its monitor, dedup arenas and buffers —
  /// the eviction path of long-lived deployments (idle clients, completed
  /// streams).  The id stays burned; session(id) is invalid afterwards and
  /// producers must not hold its Session* across this call.  Controller
  /// thread.
  void close(SessionId id);

  Session& session(SessionId id) { return *sessions_[id]; }
  const Session& session(SessionId id) const { return *sessions_[id]; }
  /// The session, or nullptr if `id` is out of range or closed.  Safe from
  /// producer threads concurrently with open()/close() on the controller —
  /// the lookup the MPSC publish path uses.
  Session* find(SessionId id);
  /// Session slots ever opened (closed ones included; their slot is null).
  size_t session_count() const { return sessions_.size(); }
  /// Sessions currently open (controller thread).
  size_t live_session_count() const;

  /// Buffer events for a session (fed in arrival order at the next drain).
  void feed(SessionId id, const Event& e);
  void feed(SessionId id, std::span<const Event> events);

  /// One round-robin scheduling round: up to batch_limit events from every
  /// session with pending input, the batches running concurrently on the
  /// executor.  Returns the number of sessions serviced (0 = nothing
  /// pending).
  size_t drain_round();

  /// Drain rounds until no session has pending input.
  void drain();

  /// Total events still buffered across sessions.
  size_t pending() const;

  const std::shared_ptr<parallel::Executor>& executor() const {
    return exec_;
  }

  bool observed() const { return reg_ != nullptr; }

  /// Merged snapshot of the whole observability plane: the service's own
  /// drain-round/executor instruments plus every session's registry, with
  /// each session's engine counters sampled in.  Empty when unobserved.
  /// Controller-thread call, between drains (like every query).
  obs::MetricsSnapshot metrics_snapshot();

  /// obs::snapshot_json of metrics_snapshot() — the machine-readable
  /// endpoint the ingest daemon will serve.
  std::string metrics_json();

 private:
  std::shared_ptr<parallel::Executor> exec_;
  size_t batch_limit_;
  // Guards the sessions_ vector itself (growth in open, nulling in close)
  // against concurrent find() from producer threads.  Session contents are
  // not covered — they have their own discipline (inbox mutex + the
  // controller-thread contract).
  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  size_t rr_ = 0;  // round-robin start offset (fairness rotation)

  // Observability plane (all null when unobserved).  exec_hooks_ is heap-
  // allocated so the executor's borrowed pointer stays valid until the
  // destructor detaches it.
  std::unique_ptr<obs::MetricsRegistry> reg_;
  std::unique_ptr<obs::ExecutorHooks> exec_hooks_;
  obs::TraceSink* trace_ = nullptr;
  obs::Histogram* drain_sessions_ = nullptr;  // sessions serviced per round
  obs::Histogram* session_lag_ = nullptr;     // pending events at drain time
  obs::Counter* drain_rounds_ = nullptr;
  obs::Counter* events_drained_ = nullptr;
};

}  // namespace selin::service
