#include "selin/service/monitor_service.hpp"

#include <algorithm>

namespace selin::service {

Session::Session(std::string name, std::unique_ptr<SeqSpec> spec,
                 const SessionOptions& opts,
                 std::shared_ptr<parallel::Executor> exec)
    : name_(std::move(name)), spec_(std::move(spec)),
      monitor_(*spec_, opts.max_configs, opts.threads, std::move(exec)) {}

Session::Status Session::status() const {
  if (monitor_.overflowed()) return Status::kOverflowed;
  if (!monitor_.ok()) return Status::kRejected;
  return Status::kOk;
}

void Session::run_one_batch(size_t limit) {
  const size_t n = std::min(limit, buffer_.size() - head_);
  if (n == 0) return;
  const std::span<const Event> batch(buffer_.data() + head_, n);
  const size_t batch_start = fed_;
  try {
    monitor_.feed_batch(batch);
  } catch (const CheckerOverflow&) {
    // Sticky overflowed() on the monitor; the session reports it as a
    // status instead of letting the exception cross the executor phase.
  }
  head_ += n;
  fed_ += n;
  if (!monitor_.ok() || monitor_.overflowed()) {
    if (!settled_) {
      settled_ = true;
      // The verdict flipped somewhere inside this batch.  Events past the
      // flip (or past an overflow) were never processed — report the
      // engine's accepted count, not the batch's arrival count.
      first_bad_ = batch_start;
      fed_ = monitor_.stats().events_fed;
    }
    // Further input cannot change a sticky verdict; drop it.
    buffer_.clear();
    head_ = 0;
  } else if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
}

MonitorService::MonitorService(const ServiceOptions& opts)
    : exec_(opts.executor != nullptr
                ? opts.executor
                : std::make_shared<parallel::Executor>(opts.lanes)),
      batch_limit_(opts.batch_limit == 0 ? 1 : opts.batch_limit) {}

SessionId MonitorService::open(std::string name,
                               std::unique_ptr<SeqSpec> spec,
                               const SessionOptions& opts) {
  sessions_.push_back(std::unique_ptr<Session>(
      new Session(std::move(name), std::move(spec), opts, exec_)));
  return sessions_.size() - 1;
}

void MonitorService::feed(SessionId id, const Event& e) {
  Session& s = *sessions_[id];
  if (s.settled_) return;  // sticky verdict; don't buffer dead weight
  s.buffer_.push_back(e);
}

void MonitorService::feed(SessionId id, std::span<const Event> events) {
  Session& s = *sessions_[id];
  if (s.settled_) return;
  s.buffer_.insert(s.buffer_.end(), events.begin(), events.end());
}

size_t MonitorService::drain_round() {
  std::vector<Session*> ready;
  ready.reserve(sessions_.size());
  const size_t n = sessions_.size();
  for (size_t k = 0; k < n; ++k) {
    Session& s = *sessions_[(rr_ + k) % n];
    if (s.pending() > 0) ready.push_back(&s);
  }
  if (ready.empty()) return 0;
  if (n > 0) rr_ = (rr_ + 1) % n;
  // One executor phase per round: sessions are mutually independent, so the
  // phase is embarrassingly parallel; the per-session batch cap keeps the
  // round (and thus cross-session latency) bounded.
  const size_t limit = batch_limit_;
  exec_->run_phase(ready.size(), [&ready, limit](size_t i) {
    ready[i]->run_one_batch(limit);
  });
  return ready.size();
}

void MonitorService::drain() {
  while (drain_round() > 0) {
  }
}

size_t MonitorService::pending() const {
  size_t total = 0;
  for (const auto& s : sessions_) total += s->pending();
  return total;
}

}  // namespace selin::service
