#include "selin/service/monitor_service.hpp"

#include <algorithm>

#include "selin/obs/export.hpp"

namespace selin::service {

Session::Session(std::string name, std::unique_ptr<SeqSpec> spec,
                 const SessionOptions& opts,
                 std::shared_ptr<parallel::Executor> exec, uint64_t id,
                 bool observe, obs::TraceSink* trace)
    : name_(std::move(name)), spec_(std::move(spec)),
      monitor_(*spec_, opts.max_configs, opts.threads, std::move(exec)),
      inbox_cap_(opts.inbox_capacity == 0 ? 1 : opts.inbox_capacity),
      id_(id) {
  if (observe) {
    reg_ = std::make_unique<obs::MetricsRegistry>();
    hooks_ = obs::make_engine_hooks(*reg_, {{"session", name_}}, trace, id_);
    monitor_.attach_obs(&hooks_);
    trace_ = trace;
  }
}

obs::MetricsSnapshot Session::metrics_snapshot() {
  if (reg_ == nullptr) return {};
  obs::sample_engine_stats(*reg_, monitor_.stats(), {{"session", name_}});
  return reg_->snapshot();
}

Session::Status Session::status() const {
  if (monitor_.overflowed()) return Status::kOverflowed;
  if (!monitor_.ok()) return Status::kRejected;
  return Status::kOk;
}

bool Session::try_publish(std::span<const Event> events) {
  // A settled verdict is sticky: accept and discard, exactly like feed().
  if (settled_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(inbox_mu_);
  if (inbox_.size() + events.size() > inbox_cap_) return false;
  inbox_.insert(inbox_.end(), events.begin(), events.end());
  inbox_len_.store(inbox_.size(), std::memory_order_relaxed);
  return true;
}

void Session::absorb_inbox(size_t max_buffered) {
  if (inbox_len_.load(std::memory_order_relaxed) == 0) return;
  if (settled_.load(std::memory_order_relaxed)) {
    // Input cannot change a sticky verdict; free the inbox.
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.clear();
    inbox_len_.store(0, std::memory_order_relaxed);
    return;
  }
  // Memory bound: while the buffer is still deep, leave the inbox alone —
  // it fills to inbox_cap_ and publishes start bouncing (backpressure).
  if (pending() >= max_buffered) return;
  std::lock_guard<std::mutex> lock(inbox_mu_);
  buffer_.insert(buffer_.end(), inbox_.begin(), inbox_.end());
  inbox_.clear();
  inbox_len_.store(0, std::memory_order_relaxed);
}

void Session::run_one_batch(size_t limit) {
  const size_t n = std::min(limit, buffer_.size() - head_);
  if (n == 0) return;
  const uint64_t t0 = trace_ != nullptr ? obs::now_ns() : 0;
  const std::span<const Event> batch(buffer_.data() + head_, n);
  const size_t batch_start = fed_;
  try {
    monitor_.feed_batch(batch);
  } catch (const CheckerOverflow&) {
    // Sticky overflowed() on the monitor; the session reports it as a
    // status instead of letting the exception cross the executor phase.
  }
  head_ += n;
  fed_ += n;
  if (!monitor_.ok() || monitor_.overflowed()) {
    if (!settled_.load(std::memory_order_relaxed)) {
      settled_.store(true, std::memory_order_release);
      // The verdict flipped somewhere inside this batch.  Events past the
      // flip (or past an overflow) were never processed — report the
      // engine's accepted count, not the batch's arrival count.
      first_bad_ = batch_start;
      fed_ = monitor_.stats().events_fed;
    }
    // Further input cannot change a sticky verdict; drop it.
    buffer_.clear();
    head_ = 0;
  } else if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::SpanKind::kSessionBatch;
    ev.session = id_;
    ev.start_ns = t0;
    ev.dur_ns = obs::now_ns() - t0;
    ev.p0 = n;
    ev.p1 = fed_;
    ev.p2 = static_cast<uint64_t>(status());
    trace_->record(ev);
  }
}

MonitorService::MonitorService(const ServiceOptions& opts)
    : exec_(opts.executor != nullptr
                ? opts.executor
                : std::make_shared<parallel::Executor>(opts.lanes)),
      batch_limit_(opts.batch_limit == 0 ? 1 : opts.batch_limit) {
  if (opts.observe) {
    reg_ = std::make_unique<obs::MetricsRegistry>();
    trace_ = opts.trace;
    drain_sessions_ = &reg_->histogram("service_drain_sessions");
    session_lag_ = &reg_->histogram("service_session_lag");
    drain_rounds_ = &reg_->counter("service_drain_rounds_total");
    events_drained_ = &reg_->counter("service_events_drained_total");
    if (opts.executor == nullptr) {
      // Only instrument an executor this service created; an injected one
      // keeps whatever attachment its owner chose.
      exec_hooks_ = std::make_unique<obs::ExecutorHooks>(
          obs::make_executor_hooks(*reg_, {}, trace_));
      exec_->set_obs(exec_hooks_.get());
    }
  }
}

MonitorService::~MonitorService() {
  // The executor may outlive this service through its shared_ptr; detach
  // our bundle before it is destroyed with us.
  if (exec_hooks_ != nullptr) exec_->set_obs(nullptr);
}

SessionId MonitorService::open(std::string name,
                               std::unique_ptr<SeqSpec> spec,
                               const SessionOptions& opts) {
  auto session = std::unique_ptr<Session>(
      new Session(std::move(name), std::move(spec), opts, exec_,
                  sessions_.size(), reg_ != nullptr, trace_));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

void MonitorService::close(SessionId id) {
  if (id >= sessions_.size()) return;
  // The slot is nulled under the lock so a racing find() either gets the
  // live session (the caller guarantees its producers are gone) or null;
  // the Session itself is destroyed after the lock drops.
  std::unique_ptr<Session> dead;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    dead = std::move(sessions_[id]);
  }
}

Session* MonitorService::find(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (id >= sessions_.size()) return nullptr;
  return sessions_[id].get();
}

size_t MonitorService::live_session_count() const {
  size_t n = 0;
  for (const auto& s : sessions_) n += s != nullptr;
  return n;
}

void MonitorService::feed(SessionId id, const Event& e) {
  Session* s = sessions_[id].get();
  if (s == nullptr || s->settled_.load(std::memory_order_relaxed)) return;
  s->buffer_.push_back(e);
}

void MonitorService::feed(SessionId id, std::span<const Event> events) {
  Session* s = sessions_[id].get();
  if (s == nullptr || s->settled_.load(std::memory_order_relaxed)) return;
  s->buffer_.insert(s->buffer_.end(), events.begin(), events.end());
}

size_t MonitorService::drain_round() {
  std::vector<Session*> ready;
  ready.reserve(sessions_.size());
  const size_t n = sessions_.size();
  for (size_t k = 0; k < n; ++k) {
    Session* sp = sessions_[(rr_ + k) % n].get();
    if (sp == nullptr) continue;  // closed slot
    Session& s = *sp;
    s.absorb_inbox(batch_limit_);  // MPSC publishes join the buffered path
    if (s.pending() > 0) ready.push_back(&s);
  }
  if (ready.empty()) return 0;
  if (n > 0) rr_ = (rr_ + 1) % n;
  const uint64_t t0 = reg_ != nullptr ? obs::now_ns() : 0;
  size_t pend_before = 0;
  if (reg_ != nullptr) {
    for (Session* s : ready) {
      pend_before += s->pending();
      session_lag_->record(s->pending());  // per-session event lag at drain
    }
  }
  // One executor phase per round: sessions are mutually independent, so the
  // phase is embarrassingly parallel; the per-session batch cap keeps the
  // round (and thus cross-session latency) bounded.
  const size_t limit = batch_limit_;
  exec_->run_phase(ready.size(), [&ready, limit](size_t i) {
    ready[i]->run_one_batch(limit);
  });
  if (reg_ != nullptr) {
    drain_rounds_->add(1);
    drain_sessions_->record(ready.size());
    // Only ready sessions held pending input, so the service-wide total is
    // their total; the delta counts settle-drops as drained (a settled
    // session's buffer is consumed either way).
    const size_t pend_after = pending();
    events_drained_->add(pend_before - pend_after);
    if (trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::SpanKind::kDrainRound;
      ev.start_ns = t0;
      ev.dur_ns = obs::now_ns() - t0;
      ev.p0 = ready.size();
      ev.p1 = pend_before - pend_after;
      ev.p2 = pend_after;
      trace_->record(ev);
    }
  }
  return ready.size();
}

void MonitorService::drain() {
  while (drain_round() > 0) {
  }
}

size_t MonitorService::pending() const {
  size_t total = 0;
  for (const auto& s : sessions_) {
    if (s != nullptr) total += s->pending();
  }
  return total;
}

obs::MetricsSnapshot MonitorService::metrics_snapshot() {
  if (reg_ == nullptr) return {};
  obs::MetricsSnapshot out = reg_->snapshot();
  for (const auto& s : sessions_) {
    if (s == nullptr) continue;
    obs::MetricsSnapshot ss = s->metrics_snapshot();
    for (auto& v : ss.values) out.values.push_back(std::move(v));
  }
  return out;
}

std::string MonitorService::metrics_json() {
  return obs::snapshot_json(metrics_snapshot());
}

}  // namespace selin::service
