// Live event-ingest front end: TCP + Unix-domain-socket server mapping
// connections to MonitorService sessions.
//
// Architecture — two threads plus the shared executor:
//
//   * The *reactor* (the thread calling run()) owns every socket: a poll()
//     accept/read/write loop over the listeners and all connections.  It
//     never blocks on a session: frames decode straight off the connection
//     buffer (net/wire.hpp, no heap per frame) and events publish into the
//     session's bounded MPSC inbox via Session::try_publish.  A full inbox
//     answers with a kThrottle frame — explicit, lossless backpressure —
//     instead of dropping events, buffering without bound, or stalling the
//     reactor behind the checker.
//
//   * The *drain* thread is the MonitorService controller: it loops
//     drain_round() under the service mutex, absorbing inboxes and running
//     the sessions' membership batches as executor phases.  Reactor-side
//     queries (verdict/stats frames, the HTTP endpoints, open/close) take
//     the same mutex, so they interleave with rounds, never with a running
//     phase; the batch_limit quantum bounds how long a round can hold it.
//
//   So producers (the reactor, plus any in-process threads) run genuinely
//   concurrent with checking — the MPSC path the service layer grew for
//   exactly this daemon (TSan-covered by tests/ingest_test.cpp and the CI
//   soak smoke).
//
// Session lifecycle: a connection's kHello opens a session (object kind +
// name), kBye drains it, answers a final kVerdict and evicts it; an idle or
// disconnected connection evicts its session too (idle_timeout_ms), so a
// long-lived daemon's memory tracks *live* streams, not history.
//
// Stats endpoint: the same listeners speak an HTTP-ish plaintext protocol —
// a connection whose first bytes are "GET " instead of the wire magic is
// answered as HTTP/1.0 and closed:
//
//   GET /metrics       obs::prometheus_text of the merged server + service
//                      + per-session instrument snapshot
//   GET /metrics.json  obs::snapshot_json of the same snapshot
//   GET /stats         compact JSON: server totals + one line per live
//                      session {name, status, events_fed, pending}
//
// so `curl --unix-socket` / any scraper can watch a running daemon without
// speaking the binary protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "selin/net/wire.hpp"
#include "selin/obs/metrics.hpp"
#include "selin/service/monitor_service.hpp"

namespace selin::net {

struct IngestOptions {
  /// Unix-domain socket path; empty = no UDS listener.  The server unlinks
  /// a stale file at this path before binding (it owns the path) and
  /// unlinks it again on shutdown.
  std::string uds_path;
  /// TCP port; < 0 = no TCP listener, 0 = ephemeral (read tcp_port()).
  int tcp_port = -1;
  /// TCP bind address.
  std::string tcp_host = "127.0.0.1";

  /// Worker-lane cap of the service executor; 0 = hardware-resolved.
  size_t lanes = 0;
  /// Drain fairness quantum (ServiceOptions::batch_limit).
  size_t batch_limit = 512;
  /// Per-session MPSC inbox bound (SessionOptions::inbox_capacity) — the
  /// backpressure point advertised in kHelloAck.
  size_t inbox_capacity = 1 << 14;
  /// Per-session exploration budget.
  size_t max_configs = 1 << 18;
  /// Per-session monitor threads knob (engine::kAutoThreads allowed).
  size_t session_threads = 1;
  /// Open-session cap; a kHello past it is refused with kError.  0 = none.
  size_t max_sessions = 0;
  /// Evict sessions whose connection has been silent this long; 0 = never.
  uint64_t idle_timeout_ms = 0;
  /// Attach the obs metrics plane to the service (per-session registries).
  /// The server's own totals are always instrumented.
  bool observe = true;
};

class IngestServer {
 public:
  explicit IngestServer(IngestOptions opts);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds + listens and spawns the drain thread.  False (with *err set)
  /// on any socket failure; the object is then inert.
  bool start(std::string* err);

  /// The reactor loop: serves until stop().  Call from one thread, after
  /// start() returned true.
  void run();

  /// Stops the reactor and drain thread.  Safe from any thread and — via
  /// wake_fd() — from signal handlers.  Idempotent.
  void stop();

  /// Write end of the self-pipe: `write(wake_fd(), "q", 1)` requests stop
  /// and is async-signal-safe (what selin_ingestd's SIGTERM handler does).
  int wake_fd() const { return wake_w_; }

  /// Resolved TCP port (after start(); meaningful with opts.tcp_port >= 0).
  int tcp_port() const { return tcp_port_; }
  const std::string& uds_path() const { return opts_.uds_path; }

  struct Totals {
    uint64_t connections = 0;
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;   ///< clean kBye closes
    uint64_t sessions_evicted = 0;  ///< idle timeouts + disconnects
    uint64_t frames = 0;
    uint64_t events = 0;
    uint64_t throttles = 0;
    uint64_t protocol_errors = 0;
    uint64_t http_requests = 0;
  };
  Totals totals() const;

  /// The /stats document (also what the daemon prints at shutdown).
  /// Any thread.
  std::string stats_json();
  /// The /metrics document (Prometheus exposition text).  Any thread.
  std::string metrics_text();
  /// The /metrics.json document.  Any thread.
  std::string metrics_json();

 private:
  struct Conn;

  void drain_loop();
  bool setup_uds(std::string* err);
  bool setup_tcp(std::string* err);
  void accept_all(int listen_fd);
  void handle_readable(Conn& c);
  void parse_frames(Conn& c);
  void handle_frame(Conn& c, const FrameView& f);
  void handle_hello(Conn& c, const FrameView& f);
  void handle_events(Conn& c, const FrameView& f);
  void handle_http(Conn& c);
  void protocol_error(Conn& c, const std::string& why);
  void flush_writes(Conn& c);
  void check_waiters();
  void evict_idle(uint64_t now_ms);
  void close_conn(int fd, bool evict_session);
  obs::MetricsSnapshot merged_snapshot();

  IngestOptions opts_;
  std::unique_ptr<service::MonitorService> svc_;
  // Excludes reactor-side service calls (open/close/queries/snapshots)
  // against the drain thread's rounds.
  std::mutex svc_mu_;
  std::condition_variable drain_cv_;
  std::thread drain_thread_;
  std::atomic<bool> drain_running_{false};
  std::atomic<bool> stop_requested_{false};

  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  bool started_ = false;

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  size_t waiters_ = 0;        // conns with a verdict/bye outstanding
  size_t open_sessions_ = 0;  // reactor-maintained (opened - closed/evicted)

  // Counters are atomics so totals()/stats_json() stay readable from other
  // threads (tests, the daemon's exit summary) without handshakes; the
  // reactor is the only writer.
  std::atomic<uint64_t> connections_{0}, sessions_opened_{0},
      sessions_closed_{0}, sessions_evicted_{0}, frames_{0}, events_{0},
      throttles_{0}, protocol_errors_{0}, http_requests_{0};
};

}  // namespace selin::net
