// Binary wire protocol of the live event-ingest path.
//
// `MonitorService` multiplexes many (spec, history) streams, but until this
// layer the only way in was `selin_check`'s file mode through the *text*
// parser — fine for offline audits, hopeless for a long-lived monitor fed by
// thousands of producers.  The wire format here keeps the text parser off
// the hot path entirely: events travel as fixed-layout packed records inside
// length-prefixed frames, so a session's feed is one header decode plus one
// `memcpy`-shaped record scan per batch, with zero heap allocation per frame
// on both sides (encoders append into a caller-owned reusable buffer;
// decoders hand out views into the connection's read buffer).
//
// Layout discipline (the ceph message-header idiom): every multi-byte field
// sits at a fixed offset and is read/written little-endian via memcpy —
// never by casting the buffer to a struct — so the format is identical
// across hosts and free of alignment/strict-aliasing UB, which is what lets
// the fuzz tests (tests/wire_fuzz_test.cpp) shred arbitrary corrupt input
// under ASan/UBSan.
//
// Frame = 20-byte header + body:
//
//   offset  size  field
//        0     4  magic     0x77'6c'65'73 ("selw" on the wire)
//        4     1  version   kWireVersion
//        5     1  type      FrameType
//        6     2  flags     bit 0 = kFlagFinal (on a kVerdict answering kBye)
//        8     4  session   daemon-assigned id (0 before kHelloAck)
//       12     4  seq       per-connection frame sequence number
//       16     4  body_len  payload bytes, <= kMaxBody
//
// Conversation (client C, server S):
//
//   C -> S  kHello      {object_kind u8, reserved u8, name_len u16, name}
//   S -> C  kHelloAck   {session u32, inbox_capacity u32, max_batch u32}
//                       (or kError: bad version / unknown object / at the
//                       session cap — connection closes after)
//   C -> S  kEvents     packed EventRec x n; header.seq numbers EVENTS
//                       frames consecutively from 0
//   S -> C  kAck        header.seq = accepted frame's seq, empty body
//        |  kThrottle   {expected_seq u32, retry_after_us u32} — the frame
//                       was NOT ingested (session inbox full, or seq gap
//                       after an earlier rejection).  Go-back-N: the client
//                       rewinds to expected_seq and re-sends; a duplicate of
//                       an already-accepted seq is re-acked, not re-fed.
//   C -> S  kStatsReq   empty; S -> C kStats {engine_stats_json text}
//   C -> S  kVerdictReq empty; S -> C kVerdict once the session's backlog
//                       has fully drained {status u8, pad[3], events_fed
//                       u64, first_bad u64}
//   C -> S  kBye        empty; S drains, replies kVerdict with kFlagFinal,
//                       closes the connection and evicts the session
//   S -> C  kError      {utf-8 text} on any protocol violation; the
//                       connection closes after the frame flushes
//
// Backpressure is explicit and lossless: a full per-session inbox rejects
// the whole frame with kThrottle instead of dropping events or blocking the
// reactor; because the client holds unacked frames for retransmit, no event
// is ever lost or reordered (tests/ingest_test.cpp pins this).
//
// EventRec — one history::Event, fixed 28 bytes:
//
//   offset  size  field
//        0     1  kind      0 = invocation, 1 = response
//        1     1  method    Method enum value
//        2     2  reserved  must be 0
//        4     4  pid
//        8     4  seq       per-process op sequence number
//       12     8  arg       int64
//       20     8  result    int64 (kNoArg on invocations)
//
// Reserved bytes must be zero and enums must be in range, so decode is a
// validator: any record that decodes re-encodes to the identical bytes
// (canonical form — the fuzz round-trip invariant).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "selin/history/event.hpp"

namespace selin::net {

constexpr uint32_t kWireMagic = 0x776c6573u;  // "selw" little-endian
constexpr uint8_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 20;
constexpr size_t kEventRecBytes = 28;
/// Frame body ceiling: large enough for ~37k events per frame, small enough
/// that a hostile body_len cannot balloon a connection buffer.
constexpr uint32_t kMaxBody = 1u << 20;
constexpr uint16_t kFlagFinal = 1u << 0;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kEvents = 3,
  kAck = 4,
  kThrottle = 5,
  kStatsReq = 6,
  kStats = 7,
  kVerdictReq = 8,
  kVerdict = 9,
  kBye = 10,
  kError = 11,
};
constexpr uint8_t kMaxFrameType = static_cast<uint8_t>(FrameType::kError);

/// Session verdict statuses carried by kVerdict (mirrors
/// service::Session::Status).
enum class WireStatus : uint8_t { kOk = 0, kRejected = 1, kOverflowed = 2 };

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kHello;
  uint16_t flags = 0;
  uint32_t session = 0;
  uint32_t seq = 0;
  uint32_t body_len = 0;
};

/// A decoded frame: header plus a view into the caller's buffer.  The view
/// is valid only until the buffer is mutated (consume before reading more).
struct FrameView {
  FrameHeader header;
  std::span<const uint8_t> body;
  /// Total bytes this frame occupies (header + body) — what the caller
  /// consumes from its read buffer.
  size_t frame_len = 0;
};

enum class DecodeStatus : uint8_t {
  kNeedMore,  ///< buffer holds a frame prefix; read more bytes
  kFrame,     ///< one well-formed frame decoded into the FrameView
  kBad,       ///< unrecoverable garbage (bad magic/version/type/length)
};

// ---- little-endian primitives (fixed offsets, memcpy, no aliasing) --------

inline void put_u16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void put_u32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
inline uint16_t get_u16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t get_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t get_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
static_assert(static_cast<uint8_t>(EventKind::kInvocation) == 0 &&
                  static_cast<uint8_t>(EventKind::kResponse) == 1,
              "wire kind byte mirrors EventKind");

// ---- frame encode ---------------------------------------------------------

/// Writes the 20-byte header at `dst` (caller guarantees capacity).
void put_header(uint8_t* dst, const FrameHeader& h);

/// Appends header + body to `out` (a reusable buffer — amortized zero
/// allocation).  `body_len` of `h` is overwritten with body.size().
void append_frame(std::vector<uint8_t>& out, FrameHeader h,
                  std::span<const uint8_t> body);

/// Appends a bodyless frame (kAck, kStatsReq, kVerdictReq, kBye).
void append_frame(std::vector<uint8_t>& out, FrameHeader h);

/// kHello: `object_kind` is the sim::ObjectKind enum value, `name` labels
/// the session (truncated to 65535 bytes).
void append_hello(std::vector<uint8_t>& out, uint8_t object_kind,
                  std::string_view name);

/// kHelloAck carrying the assigned session id and the server's limits.
void append_hello_ack(std::vector<uint8_t>& out, uint32_t session,
                      uint32_t inbox_capacity, uint32_t max_batch);

/// kEvents frame: packs `events` as EventRecs.  The caller respects the
/// advertised inbox capacity (a frame larger than the capacity can never be
/// accepted).
void append_events(std::vector<uint8_t>& out, uint32_t session, uint32_t seq,
                   std::span<const Event> events);

/// kThrottle: the frame carrying `rejected_seq` was not ingested; re-send
/// from `expected_seq` after roughly `retry_after_us`.
void append_throttle(std::vector<uint8_t>& out, uint32_t session,
                     uint32_t rejected_seq, uint32_t expected_seq,
                     uint32_t retry_after_us);

/// kVerdict (final when answering kBye — set kFlagFinal in flags).
void append_verdict(std::vector<uint8_t>& out, uint32_t session,
                    uint16_t flags, WireStatus status, uint64_t events_fed,
                    uint64_t first_bad);

/// kError / kStats: text payload.
void append_text_frame(std::vector<uint8_t>& out, FrameType type,
                       uint32_t session, std::string_view text);

// ---- frame decode ---------------------------------------------------------

/// Examines the front of `buf` for one frame.  kFrame fills `out` (body is
/// a view into `buf`); kNeedMore means the prefix is consistent but short;
/// kBad (with `err` set when non-null) means the stream is garbage and the
/// connection should die.
DecodeStatus peek_frame(std::span<const uint8_t> buf, FrameView& out,
                        std::string* err = nullptr);

/// Packs one event at `dst` (kEventRecBytes of capacity).
void put_event(uint8_t* dst, const Event& e);

/// Unpacks and validates one event record.  False on out-of-range enums or
/// nonzero reserved bytes (the record is not canonical).
bool get_event(const uint8_t* src, Event& out);

/// Decodes a kEvents body in place, appending to `out` (cleared first).
/// False when the body length is not a whole number of records or any
/// record fails validation.
bool decode_events(std::span<const uint8_t> body, std::vector<Event>& out);

// ---- typed body views -----------------------------------------------------

struct HelloBody {
  uint8_t object_kind = 0;
  std::string_view name;
};
/// False when the body is malformed (short, or name_len inconsistent).
bool parse_hello(std::span<const uint8_t> body, HelloBody& out);

struct HelloAckBody {
  uint32_t session = 0;
  uint32_t inbox_capacity = 0;
  uint32_t max_batch = 0;
};
bool parse_hello_ack(std::span<const uint8_t> body, HelloAckBody& out);

struct ThrottleBody {
  uint32_t expected_seq = 0;
  uint32_t retry_after_us = 0;
};
bool parse_throttle(std::span<const uint8_t> body, ThrottleBody& out);

struct VerdictBody {
  WireStatus status = WireStatus::kOk;
  uint64_t events_fed = 0;
  uint64_t first_bad = 0;
};
bool parse_verdict(std::span<const uint8_t> body, VerdictBody& out);

const char* frame_type_name(FrameType t);

}  // namespace selin::net
