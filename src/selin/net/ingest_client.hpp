// Minimal blocking client of the ingest wire protocol — the counterpart of
// IngestServer used by the soak driver, the integration tests and the
// ingest benchmark.  One connection, one session, stop-and-wait delivery:
// send_events() transmits one kEvents frame and blocks for the kAck,
// honouring kThrottle backpressure by retrying the same frame (go-back-N
// with window 1 — nothing is ever lost or reordered, and the client needs
// no retransmit queue).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "selin/net/wire.hpp"

namespace selin::net {

class IngestClient {
 public:
  IngestClient() = default;
  ~IngestClient();
  IngestClient(IngestClient&& other) noexcept;
  IngestClient& operator=(IngestClient&& other) noexcept;
  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  bool connect_uds(const std::string& path, std::string* err = nullptr);
  bool connect_tcp(const std::string& host, int port,
                   std::string* err = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// kHello handshake; fills `ack` (optional) with the server's limits.
  bool hello(uint8_t object_kind, std::string_view name,
             HelloAckBody* ack = nullptr, std::string* err = nullptr);

  /// One kEvents frame, stop-and-wait: blocks until the server acks it,
  /// sleeping out kThrottle rejections (counted in throttles()).  The span
  /// must respect the advertised inbox capacity or the frame can never be
  /// accepted.
  bool send_events(std::span<const Event> events, std::string* err = nullptr);

  /// kStatsReq -> kStats: the session's engine_stats_json document.
  bool stats(std::string* out_json, std::string* err = nullptr);

  /// kVerdictReq -> kVerdict (blocks until the session's backlog drains).
  bool verdict(VerdictBody* out, std::string* err = nullptr);

  /// kBye -> final kVerdict (kFlagFinal); the server closes after it.
  bool bye(VerdictBody* out, std::string* err = nullptr);

  uint32_t session() const { return sid_; }
  uint32_t next_seq() const { return next_seq_; }
  uint64_t throttles() const { return throttles_; }

 private:
  bool send_all(const uint8_t* data, size_t len, std::string* err);
  /// Blocks for the next well-formed frame; the view borrows the internal
  /// buffer until the next read_frame/send_events call.
  bool read_frame(FrameView& out, std::string* err);

  int fd_ = -1;
  uint32_t sid_ = 0;
  uint32_t next_seq_ = 0;
  uint64_t throttles_ = 0;
  std::vector<uint8_t> rbuf_;
  size_t rhead_ = 0;
  size_t consumed_ = 0;  // bytes of the previously returned frame
  std::vector<uint8_t> wbuf_;
};

}  // namespace selin::net
