#include "selin/net/ingest_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "selin/obs/export.hpp"
#include "selin/sim/workload.hpp"

namespace selin::net {

namespace {

uint64_t now_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

const char* status_name(service::Session::Status s) {
  switch (s) {
    case service::Session::Status::kOk: return "ok";
    case service::Session::Status::kRejected: return "rejected";
    case service::Session::Status::kOverflowed: return "overflowed";
  }
  return "?";
}

WireStatus wire_status(service::Session::Status s) {
  switch (s) {
    case service::Session::Status::kOk: return WireStatus::kOk;
    case service::Session::Status::kRejected: return WireStatus::kRejected;
    case service::Session::Status::kOverflowed:
      return WireStatus::kOverflowed;
  }
  return WireStatus::kOk;
}

// An HTTP read buffer larger than this is a client error, not a request.
constexpr size_t kMaxHttpRequest = 8192;
// recv() chunk; also the compaction hysteresis of the read buffer.
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

struct IngestServer::Conn {
  int fd = -1;
  bool via_uds = false;
  uint64_t last_active_ms = 0;

  // Read side: frames (or an HTTP request) accumulate here; head_ marks
  // consumed bytes, compacted after each parse pass.
  std::vector<uint8_t> rd;
  size_t rd_head = 0;

  // Write side: every reply appends here; flushed opportunistically and via
  // POLLOUT.
  std::vector<uint8_t> wr;
  size_t wr_head = 0;

  bool http = false;         // first bytes said "GET " — plaintext mode
  bool awaiting_hello = true;
  bool close_after_flush = false;
  bool evict_on_close = false;  // session still open when the conn dies

  // Session binding (after kHello).
  bool has_session = false;
  uint32_t sid = 0;
  service::Session* sess = nullptr;

  // Go-back-N receive state: the next kEvents seq this connection will
  // ingest.  Anything below is a duplicate (re-acked); anything above is a
  // gap (throttled with the expected seq).
  uint32_t expected_seq = 0;

  // Deferred replies: answered by check_waiters() once backlog() == 0.
  bool verdict_requested = false;
  bool bye_requested = false;
  bool counted_waiter = false;

  std::vector<Event> scratch;  // decode_events target, reused per frame
};

IngestServer::IngestServer(IngestOptions opts) : opts_(std::move(opts)) {
  service::ServiceOptions sopts;
  sopts.lanes = opts_.lanes;
  sopts.batch_limit = opts_.batch_limit;
  sopts.observe = opts_.observe;
  svc_ = std::make_unique<service::MonitorService>(sopts);
}

IngestServer::~IngestServer() {
  stop();
  if (drain_thread_.joinable()) drain_thread_.join();
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  if (uds_fd_ >= 0) ::close(uds_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (started_ && !opts_.uds_path.empty()) ::unlink(opts_.uds_path.c_str());
}

bool IngestServer::setup_uds(std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.uds_path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "uds path too long";
    return false;
  }
  std::memcpy(addr.sun_path, opts_.uds_path.c_str(),
              opts_.uds_path.size() + 1);
  uds_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (uds_fd_ < 0) {
    if (err != nullptr) *err = errno_string("socket(AF_UNIX)");
    return false;
  }
  ::unlink(opts_.uds_path.c_str());  // the daemon owns its socket path
  if (::bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err != nullptr) *err = errno_string("bind(uds)");
    return false;
  }
  if (::listen(uds_fd_, 1024) != 0) {
    if (err != nullptr) *err = errno_string("listen(uds)");
    return false;
  }
  return set_nonblocking(uds_fd_);
}

bool IngestServer::setup_tcp(std::string* err) {
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_fd_ < 0) {
    if (err != nullptr) *err = errno_string("socket(AF_INET)");
    return false;
  }
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.tcp_port));
  if (::inet_pton(AF_INET, opts_.tcp_host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "bad tcp host: " + opts_.tcp_host;
    return false;
  }
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err != nullptr) *err = errno_string("bind(tcp)");
    return false;
  }
  if (::listen(tcp_fd_, 1024) != 0) {
    if (err != nullptr) *err = errno_string("listen(tcp)");
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    tcp_port_ = ntohs(bound.sin_port);
  }
  return set_nonblocking(tcp_fd_);
}

bool IngestServer::start(std::string* err) {
  if (started_) return true;
  if (opts_.uds_path.empty() && opts_.tcp_port < 0) {
    if (err != nullptr) *err = "no listener configured (uds or tcp)";
    return false;
  }
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    if (err != nullptr) *err = errno_string("pipe");
    return false;
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);
  if (!opts_.uds_path.empty() && !setup_uds(err)) return false;
  if (opts_.tcp_port >= 0 && !setup_tcp(err)) return false;
  started_ = true;
  drain_running_.store(true, std::memory_order_release);
  drain_thread_ = std::thread([this] { drain_loop(); });
  return true;
}

void IngestServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  drain_running_.store(false, std::memory_order_release);
  drain_cv_.notify_all();
  if (wake_w_ >= 0) {
    const char q = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &q, 1);
  }
}

void IngestServer::drain_loop() {
  std::unique_lock<std::mutex> lk(svc_mu_);
  while (drain_running_.load(std::memory_order_acquire)) {
    const size_t serviced = svc_->drain_round();
    if (serviced == 0) {
      // Nothing pending: sleep until a publish (or stop) pokes the cv.  The
      // timeout covers publishes that race past a missed notify.
      drain_cv_.wait_for(lk, std::chrono::milliseconds(1));
    } else {
      // Busy: briefly release the mutex so reactor-side queries (verdicts,
      // stats, opens) interleave with rounds instead of starving.
      lk.unlock();
      std::this_thread::yield();
      lk.lock();
    }
  }
}

void IngestServer::run() {
  std::vector<pollfd> pfds;
  std::vector<int> pfd_conn;  // fd of conns_ entry per pollfd (or -1)
  std::vector<int> doomed;
  uint64_t last_idle_scan = now_ms();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_r_, POLLIN, 0});
    pfd_conn.push_back(-1);
    if (uds_fd_ >= 0) {
      pfds.push_back({uds_fd_, POLLIN, 0});
      pfd_conn.push_back(-1);
    }
    if (tcp_fd_ >= 0) {
      pfds.push_back({tcp_fd_, POLLIN, 0});
      pfd_conn.push_back(-1);
    }
    for (auto& [fd, cp] : conns_) {
      short ev = 0;
      if (!cp->close_after_flush) ev |= POLLIN;
      if (cp->wr_head < cp->wr.size()) ev |= POLLOUT;
      pfds.push_back({fd, ev, 0});
      pfd_conn.push_back(fd);
    }
    // Short timeout while verdicts wait on the drain thread; relaxed
    // otherwise (idle eviction only needs coarse ticks).
    const int timeout_ms = waiters_ > 0 ? 2 : 100;
    const int nready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (nready < 0 && errno != EINTR) break;

    size_t i = 0;
    if (pfds[i].revents & POLLIN) {
      // Any 'q' byte is a stop request — stop() writes one, and so does the
      // daemon's signal handler (a pipe write is async-signal-safe where
      // calling stop() would not be guaranteed to be).
      char buf[64];
      ssize_t n;
      bool quit = false;
      while ((n = ::read(wake_r_, buf, sizeof buf)) > 0) {
        for (ssize_t k = 0; k < n; ++k) quit = quit || buf[k] == 'q';
      }
      if (quit || stop_requested_.load(std::memory_order_acquire)) break;
    }
    ++i;
    if (uds_fd_ >= 0) {
      if (pfds[i].revents & POLLIN) accept_all(uds_fd_);
      ++i;
    }
    if (tcp_fd_ >= 0) {
      if (pfds[i].revents & POLLIN) accept_all(tcp_fd_);
      ++i;
    }
    doomed.clear();
    for (; i < pfds.size(); ++i) {
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer vanished: half-closed writes can still flush, but a hard
        // error ends the connection (and evicts its session).
        if ((pfds[i].revents & (POLLERR | POLLNVAL)) != 0 ||
            c.wr_head >= c.wr.size()) {
          doomed.push_back(c.fd);
          continue;
        }
      }
      if (pfds[i].revents & POLLIN) handle_readable(c);
      if (c.fd >= 0 && (pfds[i].revents & POLLOUT)) flush_writes(c);
      if (c.fd < 0) doomed.push_back(it->first);
    }
    for (int fd : doomed) close_conn(fd, /*evict_session=*/true);
    if (waiters_ > 0) check_waiters();
    // Reap conns that finished flushing a close_after_flush reply.
    doomed.clear();
    for (auto& [fd, cp] : conns_) {
      if (cp->close_after_flush && cp->wr_head >= cp->wr.size()) {
        doomed.push_back(fd);
      }
    }
    for (int fd : doomed) close_conn(fd, /*evict_session=*/true);
    const uint64_t now = now_ms();
    if (opts_.idle_timeout_ms > 0 && now - last_idle_scan >= 50) {
      last_idle_scan = now;
      evict_idle(now);
    }
  }
  // Shutdown: drop every connection (evicting sessions) so the service ends
  // quiet and the exit stats are final; stop() also parks the drain thread.
  std::vector<int> all;
  all.reserve(conns_.size());
  for (auto& [fd, cp] : conns_) all.push_back(fd);
  for (int fd : all) close_conn(fd, /*evict_session=*/true);
  stop();
}

void IngestServer::accept_all(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (EMFILE, ECONNABORTED): keep serving
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    if (listen_fd == tcp_fd_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->via_uds = listen_fd == uds_fd_;
    c->last_active_ms = now_ms();
    conns_.emplace(fd, std::move(c));
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IngestServer::handle_readable(Conn& c) {
  for (;;) {
    uint8_t tmp[kReadChunk];
    const ssize_t r = ::recv(c.fd, tmp, sizeof tmp, 0);
    if (r > 0) {
      c.rd.insert(c.rd.end(), tmp, tmp + r);
      c.last_active_ms = now_ms();
      if (static_cast<size_t>(r) < sizeof tmp) break;
      continue;
    }
    if (r == 0) {  // EOF: peer is gone; the reactor reaps via the doomed list
      c.fd = -1;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.fd = -1;
    return;
  }
  if (c.http || (c.awaiting_hello && c.rd.size() - c.rd_head >= 4 &&
                 std::memcmp(c.rd.data() + c.rd_head, "GET ", 4) == 0)) {
    c.http = true;
    handle_http(c);
    return;
  }
  parse_frames(c);
}

void IngestServer::parse_frames(Conn& c) {
  while (!c.close_after_flush) {
    std::span<const uint8_t> avail(c.rd.data() + c.rd_head,
                                   c.rd.size() - c.rd_head);
    if (avail.empty()) break;
    FrameView f;
    std::string why;
    const DecodeStatus st = peek_frame(avail, f, &why);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kBad) {
      protocol_error(c, why);
      break;
    }
    c.rd_head += f.frame_len;
    frames_.fetch_add(1, std::memory_order_relaxed);
    handle_frame(c, f);
  }
  // Compact: drop consumed bytes once they dominate the buffer.
  if (c.rd_head == c.rd.size()) {
    c.rd.clear();
    c.rd_head = 0;
  } else if (c.rd_head >= kReadChunk) {
    c.rd.erase(c.rd.begin(),
               c.rd.begin() + static_cast<ptrdiff_t>(c.rd_head));
    c.rd_head = 0;
  }
}

void IngestServer::handle_frame(Conn& c, const FrameView& f) {
  const FrameType t = f.header.type;
  if (c.awaiting_hello) {
    if (t != FrameType::kHello) {
      protocol_error(c, "expected hello");
      return;
    }
    handle_hello(c, f);
    return;
  }
  switch (t) {
    case FrameType::kEvents:
      handle_events(c, f);
      return;
    case FrameType::kStatsReq: {
      std::string stats;
      {
        std::lock_guard<std::mutex> lock(svc_mu_);
        if (c.sess != nullptr) {
          stats = obs::engine_stats_json(c.sess->stats());
        }
      }
      append_text_frame(c.wr, FrameType::kStats, c.sid, stats);
      flush_writes(c);
      return;
    }
    case FrameType::kVerdictReq:
      c.verdict_requested = true;
      if (!c.counted_waiter) {
        c.counted_waiter = true;
        ++waiters_;
      }
      return;
    case FrameType::kBye:
      c.bye_requested = true;
      if (!c.counted_waiter) {
        c.counted_waiter = true;
        ++waiters_;
      }
      return;
    case FrameType::kHello:
      protocol_error(c, "duplicate hello");
      return;
    default:
      // Server->client types arriving at the server.
      protocol_error(c, std::string("unexpected frame: ") +
                            frame_type_name(t));
      return;
  }
}

void IngestServer::handle_hello(Conn& c, const FrameView& f) {
  HelloBody hello;
  if (!parse_hello(f.body, hello)) {
    protocol_error(c, "malformed hello");
    return;
  }
  if (hello.object_kind > static_cast<uint8_t>(ObjectKind::kConsensus)) {
    protocol_error(c, "unknown object kind");
    return;
  }
  if (opts_.max_sessions > 0 && open_sessions_ >= opts_.max_sessions) {
    protocol_error(c, "session cap reached");
    return;
  }
  const auto kind = static_cast<ObjectKind>(hello.object_kind);
  std::string name(hello.name);
  if (name.empty()) name = "anon";
  service::SessionOptions sopts;
  sopts.max_configs = opts_.max_configs;
  sopts.threads = opts_.session_threads;
  sopts.inbox_capacity = opts_.inbox_capacity;
  service::SessionId sid;
  {
    std::lock_guard<std::mutex> lock(svc_mu_);
    sid = svc_->open(std::move(name), make_spec(kind), sopts);
  }
  c.awaiting_hello = false;
  c.has_session = true;
  c.evict_on_close = true;
  c.sid = static_cast<uint32_t>(sid);
  c.sess = svc_->find(sid);
  ++open_sessions_;
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  append_hello_ack(c.wr, c.sid, static_cast<uint32_t>(opts_.inbox_capacity),
                   static_cast<uint32_t>(opts_.batch_limit));
  flush_writes(c);
}

void IngestServer::handle_events(Conn& c, const FrameView& f) {
  if (f.header.session != c.sid) {
    protocol_error(c, "session mismatch");
    return;
  }
  const uint32_t seq = f.header.seq;
  if (seq < c.expected_seq) {
    // Go-back-N duplicate: already ingested; re-ack, never re-feed.
    append_frame(c.wr, FrameHeader{.type = FrameType::kAck,
                                   .session = c.sid,
                                   .seq = seq});
    flush_writes(c);
    return;
  }
  if (seq > c.expected_seq) {
    // Gap after an earlier rejection: refuse until the client rewinds.
    throttles_.fetch_add(1, std::memory_order_relaxed);
    append_throttle(c.wr, c.sid, seq, c.expected_seq, 200);
    flush_writes(c);
    return;
  }
  if (!decode_events(f.body, c.scratch)) {
    protocol_error(c, "malformed event record");
    return;
  }
  if (c.sess == nullptr || !c.sess->try_publish(c.scratch)) {
    // Inbox full: explicit lossless backpressure.  The client still holds
    // the frame; it retries after the hint and nothing was ingested.
    throttles_.fetch_add(1, std::memory_order_relaxed);
    append_throttle(c.wr, c.sid, seq, c.expected_seq, 200);
    flush_writes(c);
    return;
  }
  ++c.expected_seq;
  events_.fetch_add(c.scratch.size(), std::memory_order_relaxed);
  drain_cv_.notify_one();
  append_frame(c.wr, FrameHeader{.type = FrameType::kAck,
                                 .session = c.sid,
                                 .seq = seq});
  flush_writes(c);
}

void IngestServer::handle_http(Conn& c) {
  const std::string_view buf(reinterpret_cast<const char*>(c.rd.data()) +
                                 c.rd_head,
                             c.rd.size() - c.rd_head);
  // Oversized request: stop reading and drop it (the reactor reaps a
  // close_after_flush conn with nothing buffered; never close_conn from a
  // nested handler — the caller still holds the Conn reference).
  const auto drop = [&c] {
    c.rd.clear();
    c.rd_head = 0;
    c.close_after_flush = true;
  };
  const size_t line_end = buf.find('\n');
  if (line_end == std::string_view::npos) {
    if (buf.size() > kMaxHttpRequest) drop();
    return;
  }
  // With versioned HTTP, wait for the blank line ending the header block so
  // we never close mid-request (curl sends headers; netcat may not).
  if (buf.substr(0, line_end).find(" HTTP/") != std::string_view::npos &&
      buf.find("\r\n\r\n") == std::string_view::npos &&
      buf.find("\n\n") == std::string_view::npos) {
    if (buf.size() > kMaxHttpRequest) drop();
    return;
  }
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  std::string_view line = buf.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  // "GET <path> [HTTP/1.x]"
  std::string_view path;
  const size_t sp1 = line.find(' ');
  if (sp1 != std::string_view::npos) {
    const size_t sp2 = line.find(' ', sp1 + 1);
    path = line.substr(sp1 + 1, sp2 == std::string_view::npos
                                    ? std::string_view::npos
                                    : sp2 - sp1 - 1);
  }
  std::string body;
  const char* content_type = "text/plain; charset=utf-8";
  const char* status = "200 OK";
  if (path == "/metrics") {
    body = metrics_text();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    body = metrics_json();
    content_type = "application/json";
  } else if (path == "/stats") {
    body = stats_json();
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    body = "unknown path; try /stats /metrics /metrics.json\n";
  }
  std::string resp = "HTTP/1.0 ";
  resp += status;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: " + std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  c.wr.insert(c.wr.end(), resp.begin(), resp.end());
  c.rd.clear();
  c.rd_head = 0;
  c.close_after_flush = true;
  flush_writes(c);
}

void IngestServer::protocol_error(Conn& c, const std::string& why) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  append_text_frame(c.wr, FrameType::kError, c.sid, why);
  c.close_after_flush = true;
  flush_writes(c);
}

void IngestServer::flush_writes(Conn& c) {
  while (c.wr_head < c.wr.size()) {
    const ssize_t n = ::send(c.fd, c.wr.data() + c.wr_head,
                             c.wr.size() - c.wr_head, MSG_NOSIGNAL);
    if (n > 0) {
      c.wr_head += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // Hard error: nothing more can flush; empty the buffer so the
    // close_after_flush sweep reaps the connection.
    c.wr.clear();
    c.wr_head = 0;
    c.close_after_flush = true;
    return;
  }
  if (c.wr_head == c.wr.size()) {
    c.wr.clear();
    c.wr_head = 0;
  }
}

void IngestServer::check_waiters() {
  std::lock_guard<std::mutex> lock(svc_mu_);
  for (auto& [fd, cp] : conns_) {
    Conn& c = *cp;
    if (!c.counted_waiter || c.sess == nullptr) continue;
    // Holding svc_mu_ means no drain round is mid-flight, so backlog()==0
    // really is "every published event has been fed".
    if (c.sess->backlog() != 0) continue;
    const WireStatus st = wire_status(c.sess->status());
    const uint64_t fed = c.sess->events_fed();
    const uint64_t first_bad = c.sess->first_bad_index();
    const uint16_t flags = c.bye_requested ? kFlagFinal : 0;
    append_verdict(c.wr, c.sid, flags, st, fed, first_bad);
    c.verdict_requested = false;
    c.counted_waiter = false;
    --waiters_;
    if (c.bye_requested) {
      svc_->close(c.sid);
      c.sess = nullptr;
      c.has_session = false;
      c.evict_on_close = false;
      --open_sessions_;
      sessions_closed_.fetch_add(1, std::memory_order_relaxed);
      c.close_after_flush = true;
    }
    flush_writes(c);
  }
}

void IngestServer::evict_idle(uint64_t now) {
  std::vector<int> idle;
  for (auto& [fd, cp] : conns_) {
    if (now - cp->last_active_ms >= opts_.idle_timeout_ms) idle.push_back(fd);
  }
  for (int fd : idle) close_conn(fd, /*evict_session=*/true);
}

void IngestServer::close_conn(int fd, bool evict_session) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.counted_waiter) {
    c.counted_waiter = false;
    --waiters_;
  }
  if (evict_session && c.evict_on_close && c.has_session) {
    std::lock_guard<std::mutex> lock(svc_mu_);
    svc_->close(c.sid);
    --open_sessions_;
    sessions_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (c.fd >= 0) ::close(c.fd);
  else ::close(fd);
  conns_.erase(it);
}

IngestServer::Totals IngestServer::totals() const {
  Totals t;
  t.connections = connections_.load(std::memory_order_relaxed);
  t.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  t.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  t.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  t.frames = frames_.load(std::memory_order_relaxed);
  t.events = events_.load(std::memory_order_relaxed);
  t.throttles = throttles_.load(std::memory_order_relaxed);
  t.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  t.http_requests = http_requests_.load(std::memory_order_relaxed);
  return t;
}

obs::MetricsSnapshot IngestServer::merged_snapshot() {
  // Server totals as plain snapshot values (they live in atomics, not
  // registry instruments), then the service plane — per-session engine
  // instruments and drain-round histograms — merged behind them.
  const Totals t = totals();
  obs::MetricsSnapshot out;
  const auto ctr = [&out](const char* name, uint64_t v) {
    out.values.push_back(obs::MetricValue{
        .name = name, .kind = obs::MetricKind::kCounter, .counter = v});
  };
  ctr("ingest_connections_total", t.connections);
  ctr("ingest_sessions_opened_total", t.sessions_opened);
  ctr("ingest_sessions_closed_total", t.sessions_closed);
  ctr("ingest_sessions_evicted_total", t.sessions_evicted);
  ctr("ingest_frames_total", t.frames);
  ctr("ingest_events_total", t.events);
  ctr("ingest_throttles_total", t.throttles);
  ctr("ingest_protocol_errors_total", t.protocol_errors);
  ctr("ingest_http_requests_total", t.http_requests);
  {
    std::lock_guard<std::mutex> lock(svc_mu_);
    out.values.push_back(obs::MetricValue{
        .name = "ingest_open_sessions",
        .kind = obs::MetricKind::kGauge,
        .gauge = static_cast<int64_t>(svc_->live_session_count())});
    obs::MetricsSnapshot ss = svc_->metrics_snapshot();
    for (auto& v : ss.values) out.values.push_back(std::move(v));
  }
  return out;
}

std::string IngestServer::metrics_text() {
  return obs::prometheus_text(merged_snapshot());
}

std::string IngestServer::metrics_json() {
  return obs::snapshot_json(merged_snapshot());
}

std::string IngestServer::stats_json() {
  const Totals t = totals();
  std::string out = "{\"server\":{";
  out += "\"connections\":" + std::to_string(t.connections);
  out += ",\"sessions_opened\":" + std::to_string(t.sessions_opened);
  out += ",\"sessions_closed\":" + std::to_string(t.sessions_closed);
  out += ",\"sessions_evicted\":" + std::to_string(t.sessions_evicted);
  out += ",\"frames\":" + std::to_string(t.frames);
  out += ",\"events\":" + std::to_string(t.events);
  out += ",\"throttles\":" + std::to_string(t.throttles);
  out += ",\"protocol_errors\":" + std::to_string(t.protocol_errors);
  out += ",\"http_requests\":" + std::to_string(t.http_requests);
  std::lock_guard<std::mutex> lock(svc_mu_);
  out += ",\"open_sessions\":" + std::to_string(svc_->live_session_count());
  out += "},\"sessions\":[";
  bool first = true;
  for (service::SessionId id = 0; id < svc_->session_count(); ++id) {
    service::Session* s = svc_->find(id);
    if (s == nullptr) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"name\":\"" + json_escape(s->name()) + '"';
    out += ",\"status\":\"" + std::string(status_name(s->status())) + '"';
    out += ",\"events_fed\":" + std::to_string(s->events_fed());
    out += ",\"backlog\":" + std::to_string(s->backlog());
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace selin::net
