#include "selin/net/wire.hpp"

namespace selin::net {

namespace {

// Highest Method enum value — the wire validator's range check.  A new
// method extends the enum at the end, so the sentinel tracks the last one.
constexpr uint8_t kMaxMethod = static_cast<uint8_t>(Method::kWriteSnap);

}  // namespace

void put_header(uint8_t* dst, const FrameHeader& h) {
  put_u32(dst, kWireMagic);
  dst[4] = h.version;
  dst[5] = static_cast<uint8_t>(h.type);
  put_u16(dst + 6, h.flags);
  put_u32(dst + 8, h.session);
  put_u32(dst + 12, h.seq);
  put_u32(dst + 16, h.body_len);
}

void append_frame(std::vector<uint8_t>& out, FrameHeader h,
                  std::span<const uint8_t> body) {
  h.body_len = static_cast<uint32_t>(body.size());
  const size_t at = out.size();
  out.resize(at + kHeaderBytes + body.size());
  put_header(out.data() + at, h);
  if (!body.empty()) {
    std::memcpy(out.data() + at + kHeaderBytes, body.data(), body.size());
  }
}

void append_frame(std::vector<uint8_t>& out, FrameHeader h) {
  append_frame(out, h, {});
}

void append_hello(std::vector<uint8_t>& out, uint8_t object_kind,
                  std::string_view name) {
  if (name.size() > 0xffff) name = name.substr(0, 0xffff);
  FrameHeader h{.type = FrameType::kHello};
  const size_t at = out.size();
  out.resize(at + kHeaderBytes + 4 + name.size());
  h.body_len = static_cast<uint32_t>(4 + name.size());
  put_header(out.data() + at, h);
  uint8_t* b = out.data() + at + kHeaderBytes;
  b[0] = object_kind;
  b[1] = 0;
  put_u16(b + 2, static_cast<uint16_t>(name.size()));
  if (!name.empty()) std::memcpy(b + 4, name.data(), name.size());
}

void append_hello_ack(std::vector<uint8_t>& out, uint32_t session,
                      uint32_t inbox_capacity, uint32_t max_batch) {
  uint8_t body[12];
  put_u32(body, session);
  put_u32(body + 4, inbox_capacity);
  put_u32(body + 8, max_batch);
  append_frame(out, FrameHeader{.type = FrameType::kHelloAck,
                                .session = session},
               body);
}

void append_events(std::vector<uint8_t>& out, uint32_t session, uint32_t seq,
                   std::span<const Event> events) {
  FrameHeader h{.type = FrameType::kEvents, .session = session, .seq = seq};
  h.body_len = static_cast<uint32_t>(events.size() * kEventRecBytes);
  const size_t at = out.size();
  out.resize(at + kHeaderBytes + h.body_len);
  put_header(out.data() + at, h);
  uint8_t* rec = out.data() + at + kHeaderBytes;
  for (const Event& e : events) {
    put_event(rec, e);
    rec += kEventRecBytes;
  }
}

void append_throttle(std::vector<uint8_t>& out, uint32_t session,
                     uint32_t rejected_seq, uint32_t expected_seq,
                     uint32_t retry_after_us) {
  uint8_t body[8];
  put_u32(body, expected_seq);
  put_u32(body + 4, retry_after_us);
  append_frame(out,
               FrameHeader{.type = FrameType::kThrottle,
                           .session = session,
                           .seq = rejected_seq},
               body);
}

void append_verdict(std::vector<uint8_t>& out, uint32_t session,
                    uint16_t flags, WireStatus status, uint64_t events_fed,
                    uint64_t first_bad) {
  uint8_t body[20];
  body[0] = static_cast<uint8_t>(status);
  body[1] = body[2] = body[3] = 0;
  put_u64(body + 4, events_fed);
  put_u64(body + 12, first_bad);
  append_frame(out,
               FrameHeader{.type = FrameType::kVerdict,
                           .flags = flags,
                           .session = session},
               body);
}

void append_text_frame(std::vector<uint8_t>& out, FrameType type,
                       uint32_t session, std::string_view text) {
  if (text.size() > kMaxBody) text = text.substr(0, kMaxBody);
  append_frame(out, FrameHeader{.type = type, .session = session},
               {reinterpret_cast<const uint8_t*>(text.data()), text.size()});
}

DecodeStatus peek_frame(std::span<const uint8_t> buf, FrameView& out,
                        std::string* err) {
  auto bad = [&](const char* why) {
    if (err != nullptr) *err = why;
    return DecodeStatus::kBad;
  };
  if (buf.size() < 4) {
    // Not enough to check the magic; only wait if what we have matches a
    // magic prefix, otherwise the stream can never resynchronize.
    const uint8_t magic_bytes[4] = {0x73, 0x65, 0x6c, 0x77};
    for (size_t i = 0; i < buf.size(); ++i) {
      if (buf[i] != magic_bytes[i]) return bad("bad magic");
    }
    return DecodeStatus::kNeedMore;
  }
  if (get_u32(buf.data()) != kWireMagic) return bad("bad magic");
  if (buf.size() < kHeaderBytes) return DecodeStatus::kNeedMore;
  FrameHeader h;
  h.version = buf[4];
  h.type = static_cast<FrameType>(buf[5]);
  h.flags = get_u16(buf.data() + 6);
  h.session = get_u32(buf.data() + 8);
  h.seq = get_u32(buf.data() + 12);
  h.body_len = get_u32(buf.data() + 16);
  if (h.version != kWireVersion) return bad("unsupported wire version");
  if (buf[5] == 0 || buf[5] > kMaxFrameType) return bad("unknown frame type");
  if ((h.flags & ~kFlagFinal) != 0) return bad("reserved flags set");
  if (h.body_len > kMaxBody) return bad("oversized frame body");
  const size_t total = kHeaderBytes + h.body_len;
  if (buf.size() < total) return DecodeStatus::kNeedMore;
  out.header = h;
  out.body = buf.subspan(kHeaderBytes, h.body_len);
  out.frame_len = total;
  return DecodeStatus::kFrame;
}

void put_event(uint8_t* dst, const Event& e) {
  dst[0] = static_cast<uint8_t>(e.kind);
  dst[1] = static_cast<uint8_t>(e.op.method);
  put_u16(dst + 2, 0);
  put_u32(dst + 4, e.op.id.pid);
  put_u32(dst + 8, e.op.id.seq);
  put_u64(dst + 12, static_cast<uint64_t>(e.op.arg));
  put_u64(dst + 20, static_cast<uint64_t>(e.result));
}

bool get_event(const uint8_t* src, Event& out) {
  if (src[0] > 1) return false;
  if (src[1] > kMaxMethod) return false;
  if (get_u16(src + 2) != 0) return false;
  out.kind = static_cast<EventKind>(src[0]);
  out.op.method = static_cast<Method>(src[1]);
  out.op.id.pid = get_u32(src + 4);
  out.op.id.seq = get_u32(src + 8);
  out.op.arg = static_cast<Value>(get_u64(src + 12));
  out.result = static_cast<Value>(get_u64(src + 20));
  return true;
}

bool decode_events(std::span<const uint8_t> body, std::vector<Event>& out) {
  out.clear();
  if (body.size() % kEventRecBytes != 0) return false;
  const size_t n = body.size() / kEventRecBytes;
  out.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!get_event(body.data() + i * kEventRecBytes, out[i])) {
      out.clear();
      return false;
    }
  }
  return true;
}

bool parse_hello(std::span<const uint8_t> body, HelloBody& out) {
  if (body.size() < 4) return false;
  const uint16_t name_len = get_u16(body.data() + 2);
  if (body.size() != 4u + name_len) return false;
  out.object_kind = body[0];
  out.name = std::string_view(reinterpret_cast<const char*>(body.data() + 4),
                              name_len);
  return true;
}

bool parse_hello_ack(std::span<const uint8_t> body, HelloAckBody& out) {
  if (body.size() != 12) return false;
  out.session = get_u32(body.data());
  out.inbox_capacity = get_u32(body.data() + 4);
  out.max_batch = get_u32(body.data() + 8);
  return true;
}

bool parse_throttle(std::span<const uint8_t> body, ThrottleBody& out) {
  if (body.size() != 8) return false;
  out.expected_seq = get_u32(body.data());
  out.retry_after_us = get_u32(body.data() + 4);
  return true;
}

bool parse_verdict(std::span<const uint8_t> body, VerdictBody& out) {
  if (body.size() != 20 || body[0] > 2) return false;
  out.status = static_cast<WireStatus>(body[0]);
  out.events_fed = get_u64(body.data() + 4);
  out.first_bad = get_u64(body.data() + 12);
  return true;
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kEvents: return "events";
    case FrameType::kAck: return "ack";
    case FrameType::kThrottle: return "throttle";
    case FrameType::kStatsReq: return "stats_req";
    case FrameType::kStats: return "stats";
    case FrameType::kVerdictReq: return "verdict_req";
    case FrameType::kVerdict: return "verdict";
    case FrameType::kBye: return "bye";
    case FrameType::kError: return "error";
  }
  return "?";
}

}  // namespace selin::net
