#include "selin/net/ingest_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace selin::net {

namespace {

void set_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
}

void set_errno(std::string* err, const char* what) {
  set_err(err, std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

IngestClient::~IngestClient() { close(); }

IngestClient::IngestClient(IngestClient&& other) noexcept {
  *this = std::move(other);
}

IngestClient& IngestClient::operator=(IngestClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    sid_ = other.sid_;
    next_seq_ = other.next_seq_;
    throttles_ = other.throttles_;
    rbuf_ = std::move(other.rbuf_);
    rhead_ = other.rhead_;
    consumed_ = other.consumed_;
    wbuf_ = std::move(other.wbuf_);
  }
  return *this;
}

void IngestClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool IngestClient::connect_uds(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    set_err(err, "uds path too long");
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_errno(err, "socket");
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    set_errno(err, "connect(uds)");
    close();
    return false;
  }
  return true;
}

bool IngestClient::connect_tcp(const std::string& host, int port,
                               std::string* err) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_errno(err, "socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_err(err, "bad host: " + host);
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    set_errno(err, "connect(tcp)");
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool IngestClient::send_all(const uint8_t* data, size_t len,
                            std::string* err) {
  size_t at = 0;
  while (at < len) {
    const ssize_t n = ::send(fd_, data + at, len - at, MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    set_errno(err, "send");
    return false;
  }
  return true;
}

bool IngestClient::read_frame(FrameView& out, std::string* err) {
  // Release the previously returned frame, compacting opportunistically.
  rhead_ += consumed_;
  consumed_ = 0;
  if (rhead_ == rbuf_.size()) {
    rbuf_.clear();
    rhead_ = 0;
  }
  for (;;) {
    if (rhead_ > 0 && rbuf_.size() - rhead_ < kHeaderBytes) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(rhead_));
      rhead_ = 0;
    }
    std::string why;
    const DecodeStatus st = peek_frame(
        {rbuf_.data() + rhead_, rbuf_.size() - rhead_}, out, &why);
    if (st == DecodeStatus::kFrame) {
      consumed_ = out.frame_len;
      return true;
    }
    if (st == DecodeStatus::kBad) {
      set_err(err, "protocol: " + why);
      return false;
    }
    uint8_t tmp[64 * 1024];
    const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), tmp, tmp + n);
      continue;
    }
    if (n == 0) {
      set_err(err, "connection closed by server");
      return false;
    }
    if (errno == EINTR) continue;
    set_errno(err, "recv");
    return false;
  }
}

bool IngestClient::hello(uint8_t object_kind, std::string_view name,
                         HelloAckBody* ack, std::string* err) {
  wbuf_.clear();
  append_hello(wbuf_, object_kind, name);
  if (!send_all(wbuf_.data(), wbuf_.size(), err)) return false;
  FrameView f;
  if (!read_frame(f, err)) return false;
  if (f.header.type == FrameType::kError) {
    set_err(err, "server: " + std::string(reinterpret_cast<const char*>(
                                              f.body.data()),
                                          f.body.size()));
    return false;
  }
  HelloAckBody body;
  if (f.header.type != FrameType::kHelloAck ||
      !parse_hello_ack(f.body, body)) {
    set_err(err, "expected hello_ack");
    return false;
  }
  sid_ = body.session;
  next_seq_ = 0;
  if (ack != nullptr) *ack = body;
  return true;
}

bool IngestClient::send_events(std::span<const Event> events,
                               std::string* err) {
  wbuf_.clear();
  append_events(wbuf_, sid_, next_seq_, events);
  for (;;) {
    if (!send_all(wbuf_.data(), wbuf_.size(), err)) return false;
    FrameView f;
    if (!read_frame(f, err)) return false;
    if (f.header.type == FrameType::kAck && f.header.seq == next_seq_) {
      ++next_seq_;
      return true;
    }
    if (f.header.type == FrameType::kThrottle) {
      ThrottleBody tb;
      if (!parse_throttle(f.body, tb) || tb.expected_seq != next_seq_) {
        set_err(err, "throttle out of protocol");
        return false;
      }
      ++throttles_;
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<uint32_t>(tb.retry_after_us, 2000)));
      continue;
    }
    if (f.header.type == FrameType::kError) {
      set_err(err, "server: " + std::string(reinterpret_cast<const char*>(
                                                f.body.data()),
                                            f.body.size()));
      return false;
    }
    set_err(err, std::string("unexpected frame: ") +
                     frame_type_name(f.header.type));
    return false;
  }
}

bool IngestClient::stats(std::string* out_json, std::string* err) {
  wbuf_.clear();
  append_frame(wbuf_, FrameHeader{.type = FrameType::kStatsReq,
                                  .session = sid_});
  if (!send_all(wbuf_.data(), wbuf_.size(), err)) return false;
  FrameView f;
  if (!read_frame(f, err)) return false;
  if (f.header.type != FrameType::kStats) {
    set_err(err, "expected stats");
    return false;
  }
  if (out_json != nullptr) {
    out_json->assign(reinterpret_cast<const char*>(f.body.data()),
                     f.body.size());
  }
  return true;
}

bool IngestClient::verdict(VerdictBody* out, std::string* err) {
  wbuf_.clear();
  append_frame(wbuf_, FrameHeader{.type = FrameType::kVerdictReq,
                                  .session = sid_});
  if (!send_all(wbuf_.data(), wbuf_.size(), err)) return false;
  FrameView f;
  if (!read_frame(f, err)) return false;
  VerdictBody body;
  if (f.header.type != FrameType::kVerdict || !parse_verdict(f.body, body)) {
    set_err(err, "expected verdict");
    return false;
  }
  if (out != nullptr) *out = body;
  return true;
}

bool IngestClient::bye(VerdictBody* out, std::string* err) {
  wbuf_.clear();
  append_frame(wbuf_, FrameHeader{.type = FrameType::kBye, .session = sid_});
  if (!send_all(wbuf_.data(), wbuf_.size(), err)) return false;
  FrameView f;
  if (!read_frame(f, err)) return false;
  VerdictBody body;
  if (f.header.type != FrameType::kVerdict ||
      (f.header.flags & kFlagFinal) == 0 || !parse_verdict(f.body, body)) {
    set_err(err, "expected final verdict");
    return false;
  }
  if (out != nullptr) *out = body;
  return true;
}

}  // namespace selin::net
