#include "selin/views/view.hpp"

#include <algorithm>

namespace selin {

View::View(std::vector<const SetNode*> heads) : heads_(std::move(heads)) {
  for (const SetNode* h : heads_) {
    if (h != nullptr) size_ += h->len;
  }
}

bool View::contains(OpId id) const {
  if (id.pid >= heads_.size()) return false;
  for (const SetNode* n = heads_[id.pid]; n != nullptr; n = n->next) {
    if (n->op.id == id) return true;
  }
  return false;
}

std::vector<OpDesc> View::materialize() const {
  std::vector<OpDesc> out;
  out.reserve(size_);
  for (const SetNode* h : heads_) {
    for (const SetNode* n = h; n != nullptr; n = n->next) {
      out.push_back(n->op);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OpDesc& a, const OpDesc& b) { return a.id < b.id; });
  return out;
}

bool View::subset_of(const View& a, const View& b) {
  if (a.procs() != b.procs()) return false;
  for (size_t p = 0; p < a.procs(); ++p) {
    const SetNode* ha = a.heads_[p];
    if (ha == nullptr) continue;
    const SetNode* hb = b.heads_[p];
    if (hb == nullptr || hb->len < ha->len) return false;
    // Walk b's chain down to a's length; the nodes must coincide (chains are
    // single-writer, so equal length at the same process means same node).
    while (hb->len > ha->len) hb = hb->next;
    if (hb != ha) return false;
  }
  return true;
}

}  // namespace selin
