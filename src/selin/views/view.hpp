// Views (Section 7.3 and [17]).
//
// In A* (Figure 7) every process announces each operation by prepending an
// invocation pair (p_i, op_i) to its grow-only set, then writes the set into
// its snapshot entry.  Following Section 9.1, a set is an immutable
// singly-linked list of SetNodes, so the registers hold bounded-size values
// (one pointer) and a view is just the vector of n chain heads returned by a
// Snapshot() — the union of the chains.
//
// Remark 7.2's properties hold by construction for views produced this way:
//   (1) self-inclusion    — a process writes its pair before scanning,
//   (2) containment       — snapshots of grow-only entries are coordinatewise
//       comparable, hence their unions are ⊆-comparable,
//   (3) process sequentiality — chains are per-process sequential.
// validate_views() re-checks them explicitly (tests, and Lemma 7.4's
// bijection precondition).
#pragma once

#include <cstdint>
#include <vector>

#include "selin/util/types.hpp"

namespace selin {

/// One announced invocation pair (p_i, op_i) in a process's grow-only set.
struct SetNode {
  OpDesc op;
  const SetNode* next;  ///< previous announcement of the same process
  uint32_t len;         ///< chain length including this node
};

/// A view: the result of one Snapshot() over the announcement entries.
/// Immutable after construction.
class View {
 public:
  View() = default;
  explicit View(std::vector<const SetNode*> heads);

  const std::vector<const SetNode*>& heads() const { return heads_; }
  size_t procs() const { return heads_.size(); }

  /// |view| = total number of invocation pairs (sum of chain lengths).
  /// Under containment comparability, equal sizes imply equal views, so the
  /// size is the level key of the X(λ) construction.
  uint64_t size() const { return size_; }

  uint32_t chain_len(ProcId p) const {
    const SetNode* h = heads_[p];
    return h == nullptr ? 0 : h->len;
  }

  bool contains(OpId id) const;

  /// All pairs in the view, sorted by OpId (materialization is O(|view|)).
  std::vector<OpDesc> materialize() const;

  /// Coordinatewise containment test: every chain of `a` is a prefix-chain of
  /// the corresponding chain of `b`.
  static bool subset_of(const View& a, const View& b);

 private:
  std::vector<const SetNode*> heads_;
  uint64_t size_ = 0;
};

}  // namespace selin
