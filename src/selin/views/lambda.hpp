// λ-records and the X(λ) construction (Section 7.3.3, Figure 9).
//
// A λ-record is the 4-tuple (p_i, op_i, y_i, λ_i): the response of one A*
// operation together with its view.  The set λ_E of all 4-tuples of a tight
// execution E determines, through the construction below, a history X(λ_E)
// that is equivalent to E with ≺_E = ≺_X(λ_E) (Lemma 7.4) — the views are a
// static encoding of the real-time order.
//
// Construction (from [17]): order the distinct views by containment
// σ1 ⊂ σ2 ⊂ ... ⊂ σm; for each k append the invocations of σk \ σk−1 (in any
// order) and then the responses of all records whose view is σk (in any
// order).  All orders produce similar histories (Claim 7.1), so X(λ) denotes
// an equivalence class; we fix OpId order for determinism.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "selin/history/history.hpp"
#include "selin/views/view.hpp"

namespace selin {

/// The 4-tuple (p, op, y, view).  p is op.id.pid.
struct LambdaRecord {
  OpDesc op;
  Value y = kNoArg;
  View view;
};

/// Checks the three properties of Remark 7.2 on a set of records (plus
/// pairwise view containment-comparability).  Returns an explanation of the
/// first violation, or nullopt if all properties hold.
std::optional<std::string> validate_views(
    const std::vector<LambdaRecord>& records);

/// X(λ): builds the sketched history from a set of 4-tuples.  Invocation
/// pairs present in some view but lacking a record become pending
/// invocations (this is exactly the "missing response" slack of Lemma 8.1).
History x_of_lambda(const std::vector<LambdaRecord>& records);

}  // namespace selin
