// Incremental X(λ) maintenance.
//
// The verifier (Figure 10) and the self-enforced implementation (Figure 11)
// recompute X(τ_i) and re-test membership after *every* operation.  Testing
// the whole history from scratch each time would make the local computation
// quadratic; instead we exploit the level structure of X(λ):
//
//   * XBuilder maintains the levels σ1 ⊂ σ2 ⊂ ... of the records seen so
//     far.  Adding a record usually appends at the end; a record that was
//     written to M late lands in an *existing* middle level (its view is
//     small), which only invalidates levels from that point on.
//
//   * LeveledChecker memoizes the membership monitor state after every
//     level, so a change at level k re-feeds only levels k..m.
//
// Each verifier process owns one builder/checker pair and feeds it from its
// own snapshots (Line 08 of Figure 10), mirroring the paper's "each process
// locally tests" discipline — the *protocol* stays single-threaded.  The
// checker's internals, however, may shed work onto private helper threads:
// the membership monitors can run the sharded frontier engine (the `threads`
// knob), and checkpoint materialization can run on snapshot lanes
// (`snapshot_lanes`), neither of which is visible through the snapshot
// object M.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "selin/engine/stats.hpp"
#include "selin/parallel/task_lanes.hpp"
#include "selin/spec/spec.hpp"
#include "selin/views/lambda.hpp"

namespace selin::obs {
struct LeveledHooks;  // obs/hooks.hpp — instrumentation bundle, borrowed
}  // namespace selin::obs

namespace selin {

/// One level of X(λ): the invocations that first appear in σk, then the
/// responses of the records whose view is σk.
struct Level {
  uint64_t key = 0;  ///< |σk| — unique under containment comparability
  const View* view = nullptr;
  std::vector<OpDesc> invs;
  std::vector<std::pair<OpDesc, Value>> ress;
};

class XBuilder {
 public:
  /// Incorporates a record (which must outlive the builder).  Returns the
  /// index of the lowest level whose content changed.
  size_t add(const LambdaRecord* rec);

  const std::vector<Level>& levels() const { return levels_; }

  /// The full history X(λ) in level order (used for witnesses/certificates).
  History flatten() const;

  size_t record_count() const { return records_; }

 private:
  /// Invocation pairs of `view` beyond `prev` (σk \ σk−1), sorted by OpId.
  static std::vector<OpDesc> delta(const View* prev, const View& view);

  std::vector<Level> levels_;
  size_t records_ = 0;
};

/// Memoizing membership evaluator over an XBuilder.
///
/// Keeps one live monitor at the current frontier plus sparse checkpoints
/// every `stride` levels; a change at level k restores the nearest
/// checkpoint at or below k and replays forward.  Appends — the
/// overwhelmingly common case — advance the live monitor directly, so the
/// amortized per-operation cost is one level.
///
/// Replaying a monitor fold is inherently sequential in its *state* (the
/// configuration frontier after level k feeds level k+1), so rollback
/// replay cannot be split across checkpoint segments without changing what
/// is computed.  What parallelizes honestly, and what this class does when
/// configured for it, is everything *around* that chain:
///
///   * the replayed monitor itself can run the sharded/adaptive frontier
///     engine (`threads` — engine::kAutoThreads is the natural fit: most
///     replays are narrow, and precisely the expensive rollback storms go
///     wide enough to engage the shards);
///   * checkpoint materialization moves off the feed hot path entirely
///     (`snapshot_lanes > 0`): the live monitor is cloned only at every
///     kStripe-th boundary (the stripe *seed*), and the interior
///     checkpoints of each stripe are rebuilt concurrently on snapshot
///     lanes from the seed plus a copy of the stripe's events — stripes are
///     mutually independent, so a rollback storm's checkpoint regeneration
///     runs on as many lanes as there are dirty stripes while the verdict
///     replay streams ahead undisturbed.
class LeveledChecker {
 public:
  /// Tuned default for `checkpoint_stride` (bench_ablation sweeps it);
  /// callers that only want to set later parameters name this instead of
  /// repeating the number.
  static constexpr size_t kDefaultStride = 16;

  /// Checkpoint stripe width under async snapshotting: one inline seed
  /// clone per kStripe boundaries, kStripe-1 checkpoints rebuilt per lane
  /// job.  Trades hot-path clone count (1/kStripe of inline) against
  /// rollback slack (a rollback into a stripe whose job has not completed
  /// replays up to kStripe·stride levels from the seed below it).
  static constexpr size_t kStripe = 4;

  struct Options {
    /// Trades rollback-replay cost against checkpoint memory/clone cost.
    size_t stride = kDefaultStride;
    /// Forwarded to the object's monitor factory (0 = object default; > 1
    /// the parallel sharded frontier engine; engine::kAutoThreads the
    /// adaptive one; | engine::kTuneFlag for stats-feedback tuning).
    size_t threads = 0;
    /// 0 = checkpoints cloned inline at every stride boundary (the fully
    /// synchronous discipline).  N > 0 = deferred snapshotting: seeds
    /// inline every stripe-th boundary, interiors rebuilt on N lanes.
    size_t snapshot_lanes = 0;
    /// Async snapshot stripe width (boundaries per stripe; < 2 = kStripe).
    /// Narrower stripes bound rollback slack tighter at the cost of more
    /// inline seed clones — recommend_priors() seeds this from observed
    /// storm widths.
    size_t stripe = kStripe;
    /// Shared lane provider for the snapshot lanes (nullptr = a private
    /// executor created lazily on the first stripe post).  Multi-tenant
    /// deployments pass one executor so N checkers' deferred snapshot work
    /// shares one bounded thread pool.
    std::shared_ptr<parallel::Executor> executor;
  };

  explicit LeveledChecker(const GenLinObject& obj,
                          size_t checkpoint_stride = kDefaultStride,
                          size_t threads = 0)
      : LeveledChecker(obj, Options{checkpoint_stride, threads, 0}) {}

  LeveledChecker(const GenLinObject& obj, const Options& opts);
  LeveledChecker(const LeveledChecker&) = delete;
  LeveledChecker& operator=(const LeveledChecker&) = delete;
  ~LeveledChecker();

  /// Re-evaluates after the builder changed at `from_level`; returns the
  /// current verdict X(λ) ∈ O.
  bool resync(const XBuilder& builder, size_t from_level);

  /// Batched form: one pass over a merge that dirtied several levels (the
  /// rollback-storm shape MonitorCore produces).  Restores once, below the
  /// lowest dirty level, instead of once per record.
  bool resync(const XBuilder& builder, std::span<const size_t> dirty_levels);

  /// Feed every level the builder holds beyond levels_fed() into the live
  /// monitor, batching the events of each stride segment into one
  /// feed_batch call so the membership engine amortizes its closure work
  /// across the segment (checkpoint policy applied at every stride
  /// boundary, exactly as per-level feeding would).  resync() calls this;
  /// exposed for callers that append without a dirty set.
  void append_batch(const XBuilder& builder);

  bool ok() const { return ok_; }

  /// Attach observability instruments (obs/hooks.hpp; nullptr detaches).
  /// Attach before the first resync: the live monitor and every checkpoint
  /// cloned from it inherit `hooks->engine`, so rollback replays report into
  /// the same engine instruments; attaching mid-run only reaches monitors
  /// created afterwards.  The bundle must outlive the checker.
  void set_obs(const obs::LeveledHooks* hooks);

  /// Materialized checkpoints (quiesces the snapshot lanes first).  Under
  /// the synchronous discipline this is exactly levels_fed() / stride after
  /// any resync — the eager-release regression tests key on that; under
  /// async snapshotting the trailing open stripe's interiors may still be
  /// pending (bounded by kStripe - 1).
  size_t checkpoint_count();

  /// Levels consumed by the live monitor (diagnostics).
  size_t levels_fed() const { return fed_; }

  /// Execution counters of the live monitor's engine; all-zero before the
  /// first feed.  Checkpoint clones re-count from the fork, so after a
  /// rollback the counters reflect the state actually replayed — the number
  /// an enforced object should report as "checking work done".
  engine::EngineStats stats() const;

  uint64_t rollbacks() const { return rollbacks_; }
  /// Previously fed levels re-fed by rollbacks (appended-for-the-first-time
  /// levels are not replay cost).
  uint64_t replayed_levels() const { return replayed_levels_; }
  /// Widest dirty-level batch one resync has received (> 1 only when a
  /// merge dirtied several levels at once — the rollback-storm shape; the
  /// stride/kStripe tuning ROADMAP.md plans keys on this and
  /// replayed_levels()).
  size_t peak_storm_records() const { return peak_storm_records_; }

  /// Warm-start seeds for a comparable future run, derived from this
  /// checker's own rollback/replay counters (the leveled analog of
  /// engine::priors_from_stats; feed the result into Options::stride /
  /// Options::stripe, and its engine fields stay zero).  An append-only run
  /// relaxes the stride (checkpoints were pure overhead); a replay-heavy
  /// one snaps the stride to the power of two covering the mean levels
  /// replayed per rollback, so the nearest checkpoint lands about one
  /// observed replay below a typical dirty level.  Storms wider than a
  /// stripe halve the stripe width — narrower stripes bound how far a
  /// rollback can land in a not-yet-rebuilt gap.  Deterministic: same
  /// counters, same seeds; the knobs only shift where checkpoints
  /// materialize, never the verdict sequence.
  engine::TunerPriors recommend_priors() const {
    engine::TunerPriors p;
    if (rollbacks_ == 0) {
      p.stride = 32;
    } else {
      const uint64_t avg = replayed_levels_ / rollbacks_;
      size_t s = 4;
      while (s < 64 && s < avg) s *= 2;
      p.stride = s;
    }
    p.stripe = peak_storm_records_ > kStripe ? 2 : kStripe;
    return p;
  }

 private:
  /// A stripe's interior-checkpoint rebuild, shared with one snapshot lane:
  /// the lane clones the seed, folds the event chunks, and parks the
  /// resulting monitors in `built`; the controller harvests them into
  /// checkpoints_ after observing `done`.  The lane never touches the
  /// checkpoints_ vector (the controller may grow it concurrently) and
  /// never reads the mutable XBuilder (events are copied in at post time).
  struct StripeJob {
    const MembershipMonitor* seed = nullptr;  // stays alive until harvested
    size_t seed_index = 0;
    std::vector<std::vector<Event>> chunks;   // one per interior checkpoint
    std::vector<std::unique_ptr<MembershipMonitor>> built;
    std::atomic<bool> done{false};
  };

  void ensure_monitor();
  /// Checkpoint policy at a stride boundary (fed_ % stride == 0): inline
  /// clone, stripe seed, or stripe-chunk handoff.
  void stride_boundary();
  /// Restore the nearest materialized checkpoint at or below `from_level`,
  /// eagerly releasing everything above it.
  void rollback(size_t from_level);
  void post_stripe();
  /// Move completed stripe results into their checkpoint slots.
  void harvest(bool wait);

  const GenLinObject* obj_;
  size_t stride_;
  size_t threads_ = 0;
  size_t snapshot_lanes_ = 0;
  size_t stripe_ = kStripe;  // Options::stripe (async snapshot stripe width)
  std::unique_ptr<MembershipMonitor> cur_;  // state after levels [0, fed_)
  size_t fed_ = 0;                          // levels consumed by cur_
  /// checkpoints_[i] = monitor state after (i+1)*stride_ levels; nullptr
  /// while the owning stripe's rebuild is in flight.  Controller-written
  /// only — snapshot lanes publish through StripeJob::built.
  std::vector<std::unique_ptr<MembershipMonitor>> checkpoints_;
  bool ok_ = true;

  // Stripe accumulation (async mode).
  bool stripe_open_ = false;
  size_t stripe_seed_ = 0;                   // checkpoint index of the seed
  std::vector<std::vector<Event>> stripe_chunks_;
  std::vector<Event> chunk_;                 // events since last boundary
  std::vector<Event> batch_;                 // append_batch scratch
  std::vector<std::shared_ptr<StripeJob>> pending_;

  uint64_t rollbacks_ = 0;
  uint64_t replayed_levels_ = 0;
  size_t peak_storm_records_ = 0;

  // Borrowed instrumentation bundle; controller-thread access only.
  const obs::LeveledHooks* obs_ = nullptr;

  // Declared last so destruction drains the lanes before any member a
  // posted job references goes away.
  std::unique_ptr<parallel::TaskLanes> lanes_;
};

}  // namespace selin
