// Incremental X(λ) maintenance.
//
// The verifier (Figure 10) and the self-enforced implementation (Figure 11)
// recompute X(τ_i) and re-test membership after *every* operation.  Testing
// the whole history from scratch each time would make the local computation
// quadratic; instead we exploit the level structure of X(λ):
//
//   * XBuilder maintains the levels σ1 ⊂ σ2 ⊂ ... of the records seen so
//     far.  Adding a record usually appends at the end; a record that was
//     written to M late lands in an *existing* middle level (its view is
//     small), which only invalidates levels from that point on.
//
//   * LeveledChecker memoizes the membership monitor state after every
//     level, so a change at level k re-feeds only levels k..m.
//
// The two classes are deliberately single-threaded: each verifier process
// owns one pair and feeds it from its own snapshots (Line 08 of Figure 10),
// mirroring the paper's "each process locally tests" discipline.
#pragma once

#include <memory>
#include <vector>

#include "selin/spec/spec.hpp"
#include "selin/views/lambda.hpp"

namespace selin {

/// One level of X(λ): the invocations that first appear in σk, then the
/// responses of the records whose view is σk.
struct Level {
  uint64_t key = 0;  ///< |σk| — unique under containment comparability
  const View* view = nullptr;
  std::vector<OpDesc> invs;
  std::vector<std::pair<OpDesc, Value>> ress;
};

class XBuilder {
 public:
  /// Incorporates a record (which must outlive the builder).  Returns the
  /// index of the lowest level whose content changed.
  size_t add(const LambdaRecord* rec);

  const std::vector<Level>& levels() const { return levels_; }

  /// The full history X(λ) in level order (used for witnesses/certificates).
  History flatten() const;

  size_t record_count() const { return records_; }

 private:
  /// Invocation pairs of `view` beyond `prev` (σk \ σk−1), sorted by OpId.
  static std::vector<OpDesc> delta(const View* prev, const View& view);

  std::vector<Level> levels_;
  size_t records_ = 0;
};

/// Memoizing membership evaluator over an XBuilder.
///
/// Keeps one live monitor at the current frontier plus sparse checkpoints
/// every kCheckpointStride levels; a change at level k restores the nearest
/// checkpoint at or below k and replays forward (at most kCheckpointStride-1
/// extra levels).  Appends — the overwhelmingly common case — advance the
/// live monitor directly, so the amortized per-operation cost is one level.
class LeveledChecker {
 public:
  /// Tuned default for `checkpoint_stride` (bench_ablation sweeps it);
  /// callers that only want to set later parameters name this instead of
  /// repeating the number.
  static constexpr size_t kDefaultStride = 16;

  /// `checkpoint_stride` trades rollback-replay cost (≤ stride-1 levels)
  /// against checkpoint memory/clone cost (one monitor clone per stride
  /// levels).  bench_ablation sweeps it; 16 is the tuned default.
  /// `threads` is forwarded to the object's monitor factory (0 = object
  /// default; > 1 requests the parallel sharded frontier engine;
  /// engine::kAutoThreads the adaptive one — a good fit here, since most
  /// checkpoint replays are narrow and only rollback storms go wide).
  explicit LeveledChecker(const GenLinObject& obj,
                          size_t checkpoint_stride = kDefaultStride,
                          size_t threads = 0)
      : obj_(&obj), stride_(checkpoint_stride == 0 ? 1 : checkpoint_stride),
        threads_(threads) {}

  /// Re-evaluates after the builder changed at `from_level`; returns the
  /// current verdict X(λ) ∈ O.
  bool resync(const XBuilder& builder, size_t from_level);

  bool ok() const { return ok_; }

 private:

  /// Feed one level into the live monitor, snapshotting checkpoints.
  void feed_level(const Level& lvl);

  const GenLinObject* obj_;
  size_t stride_;
  size_t threads_ = 0;
  std::unique_ptr<MembershipMonitor> cur_;  // state after levels [0, fed_)
  size_t fed_ = 0;                          // levels consumed by cur_
  /// checkpoints_[i] = monitor state after (i+1)*stride_ levels.
  std::vector<std::unique_ptr<MembershipMonitor>> checkpoints_;
  bool ok_ = true;
};

}  // namespace selin
