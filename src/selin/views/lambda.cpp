#include "selin/views/lambda.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace selin {

std::optional<std::string> validate_views(
    const std::vector<LambdaRecord>& records) {
  // (1) self-inclusion
  for (const LambdaRecord& r : records) {
    if (!r.view.contains(r.op.id)) {
      return "self-inclusion violated for " + to_string(r.op);
    }
  }
  // (2) containment comparability (pairwise)
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      const View& a = records[i].view;
      const View& b = records[j].view;
      if (!View::subset_of(a, b) && !View::subset_of(b, a)) {
        return "containment comparability violated between " +
               to_string(records[i].op) + " and " + to_string(records[j].op);
      }
    }
  }
  // (3) process sequentiality: for two distinct ops of the same process, the
  // earlier one's view must not contain the later one, in at least one
  // direction — concretely, not both views contain both ops.
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      const LambdaRecord& a = records[i];
      const LambdaRecord& b = records[j];
      if (a.op.id.pid != b.op.id.pid || a.op.id == b.op.id) continue;
      if (a.view.contains(b.op.id) && b.view.contains(a.op.id)) {
        return "process sequentiality violated between " + to_string(a.op) +
               " and " + to_string(b.op);
      }
    }
  }
  return std::nullopt;
}

History x_of_lambda(const std::vector<LambdaRecord>& records) {
  // Distinct views keyed by size (under containment comparability two views
  // of equal size are equal).
  std::map<uint64_t, const View*> levels;
  for (const LambdaRecord& r : records) {
    levels.emplace(r.view.size(), &r.view);
  }
  // Records grouped by level key.
  std::map<uint64_t, std::vector<const LambdaRecord*>> by_level;
  for (const LambdaRecord& r : records) {
    by_level[r.view.size()].push_back(&r);
  }

  History out;
  const View* prev = nullptr;
  for (const auto& [size, view] : levels) {
    // Invocations of σk \ σk−1: per process, the chain segment beyond the
    // previous level's chain.
    std::vector<OpDesc> invs;
    for (size_t p = 0; p < view->procs(); ++p) {
      uint32_t prev_len = (prev == nullptr)
                              ? 0
                              : prev->chain_len(static_cast<ProcId>(p));
      const SetNode* n = view->heads()[p];
      while (n != nullptr && n->len > prev_len) {
        invs.push_back(n->op);
        n = n->next;
      }
    }
    std::sort(invs.begin(), invs.end(),
              [](const OpDesc& a, const OpDesc& b) { return a.id < b.id; });
    for (const OpDesc& op : invs) out.push_back(Event::inv(op));

    auto& recs = by_level[size];
    std::sort(recs.begin(), recs.end(),
              [](const LambdaRecord* a, const LambdaRecord* b) {
                return a->op.id < b->op.id;
              });
    for (const LambdaRecord* r : recs) {
      out.push_back(Event::res(r->op, r->y));
    }
    prev = view;
  }
  return out;
}

}  // namespace selin
