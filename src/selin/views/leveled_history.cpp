#include "selin/views/leveled_history.hpp"

#include <algorithm>

#include "selin/obs/hooks.hpp"

namespace selin {

std::vector<OpDesc> XBuilder::delta(const View* prev, const View& view) {
  std::vector<OpDesc> invs;
  for (size_t p = 0; p < view.procs(); ++p) {
    uint32_t prev_len =
        prev == nullptr ? 0 : prev->chain_len(static_cast<ProcId>(p));
    const SetNode* n = view.heads()[p];
    while (n != nullptr && n->len > prev_len) {
      invs.push_back(n->op);
      n = n->next;
    }
  }
  std::sort(invs.begin(), invs.end(),
            [](const OpDesc& a, const OpDesc& b) { return a.id < b.id; });
  return invs;
}

size_t XBuilder::add(const LambdaRecord* rec) {
  ++records_;
  uint64_t key = rec->view.size();
  auto pos = std::lower_bound(
      levels_.begin(), levels_.end(), key,
      [](const Level& l, uint64_t k) { return l.key < k; });
  size_t idx = static_cast<size_t>(pos - levels_.begin());

  if (pos != levels_.end() && pos->key == key) {
    // Existing level: insert the response, keeping OpId order.
    auto& ress = pos->ress;
    auto it = std::lower_bound(
        ress.begin(), ress.end(), rec->op.id,
        [](const std::pair<OpDesc, Value>& r, OpId id) {
          return r.first.id < id;
        });
    ress.insert(it, {rec->op, rec->y});
    return idx;
  }

  // New level at idx.
  const View* prev = idx == 0 ? nullptr : levels_[idx - 1].view;
  Level lvl;
  lvl.key = key;
  lvl.view = &rec->view;
  lvl.invs = delta(prev, rec->view);
  lvl.ress.push_back({rec->op, rec->y});
  // The old level at idx (if any) loses the invocations now claimed by the
  // inserted level: recompute its delta against the new predecessor.
  if (idx < levels_.size()) {
    levels_[idx].invs = delta(&rec->view, *levels_[idx].view);
  }
  levels_.insert(levels_.begin() + static_cast<long>(idx), std::move(lvl));
  return idx;
}

History XBuilder::flatten() const {
  History out;
  for (const Level& lvl : levels_) {
    for (const OpDesc& op : lvl.invs) out.push_back(Event::inv(op));
    for (const auto& [op, y] : lvl.ress) out.push_back(Event::res(op, y));
  }
  return out;
}

LeveledChecker::LeveledChecker(const GenLinObject& obj, const Options& opts)
    : obj_(&obj), stride_(opts.stride == 0 ? 1 : opts.stride),
      threads_(opts.threads), snapshot_lanes_(opts.snapshot_lanes),
      stripe_(opts.stripe < 2 ? kStripe : opts.stripe) {
  if (snapshot_lanes_ > 0) {
    lanes_ = std::make_unique<parallel::TaskLanes>(snapshot_lanes_,
                                                   opts.executor);
  }
}

LeveledChecker::~LeveledChecker() = default;

engine::EngineStats LeveledChecker::stats() const {
  return cur_ != nullptr ? cur_->stats() : engine::EngineStats{};
}

void LeveledChecker::set_obs(const obs::LeveledHooks* hooks) {
  obs_ = hooks;
  if (cur_ != nullptr) {
    cur_->attach_obs(hooks != nullptr ? hooks->engine : nullptr);
  }
}

void LeveledChecker::ensure_monitor() {
  if (cur_ == nullptr) {
    cur_ = obj_->monitor(threads_);
    if (obs_ != nullptr) cur_->attach_obs(obs_->engine);
    fed_ = 0;
  }
}

void LeveledChecker::append_batch(const XBuilder& builder) {
  // Monitors are sticky-false, so feeding past a failed level is harmless;
  // GenLin objects are prefix-closed, hence a failing prefix settles the
  // verdict anyway.  Each stride segment goes to the monitor as one batch,
  // so the frontier engine runs its closure once per segment's response
  // runs instead of once per response; segments never span a stride
  // boundary, keeping the checkpoint policy level-exact.
  const auto& levels = builder.levels();
  ensure_monitor();
  while (fed_ < levels.size()) {
    const size_t until =
        std::min(levels.size(), (fed_ / stride_ + 1) * stride_);
    batch_.clear();
    for (size_t i = fed_; i < until; ++i) {
      const Level& lvl = levels[i];
      for (const OpDesc& op : lvl.invs) batch_.push_back(Event::inv(op));
      for (const auto& [op, y] : lvl.ress) {
        batch_.push_back(Event::res(op, y));
      }
    }
    cur_->feed_batch(batch_);
    if (stripe_open_) {
      // Copy the segment's events for the in-flight stripe: lane jobs
      // replay from these copies, never from the caller's mutable XBuilder.
      chunk_.insert(chunk_.end(), batch_.begin(), batch_.end());
    }
    fed_ = until;
    if (fed_ % stride_ == 0) stride_boundary();
  }
}

void LeveledChecker::stride_boundary() {
  const size_t idx = fed_ / stride_ - 1;
  if (checkpoints_.size() <= idx) checkpoints_.resize(idx + 1);
  if (lanes_ == nullptr) {
    // Synchronous discipline: one clone per boundary, on the feed path.
    checkpoints_[idx] = cur_->clone();
    return;
  }
  if (!stripe_open_) {
    // Stripe seed: the one inline clone per kStripe boundaries.
    checkpoints_[idx] = cur_->clone();
    stripe_open_ = true;
    stripe_seed_ = idx;
    stripe_chunks_.clear();
    chunk_.clear();
    return;
  }
  // Interior boundary: its checkpoint is owed by the stripe's lane job.
  stripe_chunks_.push_back(std::move(chunk_));
  chunk_.clear();
  if (stripe_chunks_.size() == stripe_ - 1) {
    post_stripe();
    stripe_open_ = false;
  }
}

void LeveledChecker::post_stripe() {
  auto job = std::make_shared<StripeJob>();
  job->seed = checkpoints_[stripe_seed_].get();
  job->seed_index = stripe_seed_;
  job->chunks = std::move(stripe_chunks_);
  stripe_chunks_.clear();
  pending_.push_back(job);
  if (obs_ != nullptr && obs_->stripes_pending != nullptr) {
    obs_->stripes_pending->set(static_cast<int64_t>(pending_.size()));
  }
  lanes_->post([job] {
    std::unique_ptr<MembershipMonitor> m = job->seed->clone();
    for (size_t r = 0; r < job->chunks.size(); ++r) {
      for (const Event& e : job->chunks[r]) m->feed(e);
      if (r + 1 < job->chunks.size()) {
        job->built.push_back(m->clone());
      } else {
        job->built.push_back(std::move(m));  // last one needs no extra clone
      }
    }
    job->done.store(true, std::memory_order_release);
  });
}

void LeveledChecker::harvest(bool wait) {
  if (lanes_ == nullptr || pending_.empty()) return;
  if (wait) lanes_->wait_idle();
  auto it = pending_.begin();
  while (it != pending_.end()) {
    StripeJob& job = **it;
    if (!job.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    for (size_t r = 0; r < job.built.size(); ++r) {
      const size_t slot = job.seed_index + 1 + r;
      if (slot < checkpoints_.size() && checkpoints_[slot] == nullptr) {
        checkpoints_[slot] = std::move(job.built[r]);
      }
    }
    it = pending_.erase(it);
  }
  if (obs_ != nullptr && obs_->stripes_pending != nullptr) {
    obs_->stripes_pending->set(static_cast<int64_t>(pending_.size()));
  }
}

void LeveledChecker::rollback(size_t from_level) {
  ++rollbacks_;
  const size_t fed_before = fed_;
  // Quiesce the lanes before touching checkpoint storage: every pending
  // stripe completes (and is harvested), so no job can observe the
  // truncation below.
  harvest(/*wait=*/true);
  // Abandon any half-accumulated stripe — its levels are being rolled over.
  stripe_open_ = false;
  stripe_chunks_.clear();
  chunk_.clear();

  const size_t ckpt = from_level / stride_;  // checkpoints at or below
  size_t keep = ckpt;
  while (keep > 0 &&
         (keep - 1 >= checkpoints_.size() || checkpoints_[keep - 1] == nullptr)) {
    --keep;  // skip unmaterialized slots (stripe still owed at truncation)
  }
  if (keep == 0) {
    cur_ = obj_->monitor(threads_);
    if (obs_ != nullptr) cur_->attach_obs(obs_->engine);
    fed_ = 0;
  } else {
    cur_ = checkpoints_[keep - 1]->clone();
    fed_ = keep * stride_;
  }
  // Release the stale clones eagerly — a rollback must not leave monitors
  // above the truncation point alive until some later feed happens to
  // overwrite them.
  for (size_t i = keep; i < checkpoints_.size(); ++i) checkpoints_[i].reset();
  checkpoints_.resize(keep);
  if (obs_ != nullptr) {
    const size_t replay = fed_before - fed_;
    if (obs_->rollback_depth != nullptr) obs_->rollback_depth->record(replay);
    if (obs_->trace != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::SpanKind::kRollback;
      ev.session = obs_->session;
      ev.start_ns = obs::now_ns();
      ev.p0 = from_level;
      ev.p1 = replay;
      ev.p2 = keep;
      obs_->trace->record(ev);
    }
  }
}

bool LeveledChecker::resync(const XBuilder& builder, size_t from_level) {
  const size_t dirty[1] = {from_level};
  return resync(builder, std::span<const size_t>(dirty, 1));
}

bool LeveledChecker::resync(const XBuilder& builder,
                            std::span<const size_t> dirty_levels) {
  const uint64_t t0 = obs_ != nullptr ? obs::now_ns() : 0;
  const uint64_t replayed_before = replayed_levels_;
  const auto& levels = builder.levels();
  ensure_monitor();
  harvest(/*wait=*/false);  // fold completed stripes in while we are here
  size_t from = fed_;
  for (size_t d : dirty_levels) from = std::min(from, d);
  if (dirty_levels.size() > 1) {
    peak_storm_records_ = std::max(peak_storm_records_, dirty_levels.size());
  }
  if (from < fed_) {
    const size_t old_fed = fed_;
    rollback(from);
    // Replayed = previously fed levels re-fed below the old frontier; the
    // merge's brand-new levels would have been fed either way.
    replayed_levels_ += std::min(old_fed, levels.size()) - fed_;
  }
  append_batch(builder);
  ok_ = cur_->ok();
  if (obs_ != nullptr) {
    const uint64_t dur = obs::now_ns() - t0;
    if (obs_->resync_ns != nullptr) obs_->resync_ns->record(dur);
    if (obs_->trace != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::SpanKind::kResync;
      ev.session = obs_->session;
      ev.start_ns = t0;
      ev.dur_ns = dur;
      ev.p0 = dirty_levels.size();
      ev.p1 = from;
      ev.p2 = replayed_levels_ - replayed_before;
      ev.p3 = fed_;
      obs_->trace->record(ev);
    }
  }
  return ok_;
}

size_t LeveledChecker::checkpoint_count() {
  harvest(/*wait=*/true);
  size_t n = 0;
  for (const auto& c : checkpoints_) n += c != nullptr ? 1 : 0;
  return n;
}

}  // namespace selin
