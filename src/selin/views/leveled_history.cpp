#include "selin/views/leveled_history.hpp"

#include <algorithm>

namespace selin {

std::vector<OpDesc> XBuilder::delta(const View* prev, const View& view) {
  std::vector<OpDesc> invs;
  for (size_t p = 0; p < view.procs(); ++p) {
    uint32_t prev_len =
        prev == nullptr ? 0 : prev->chain_len(static_cast<ProcId>(p));
    const SetNode* n = view.heads()[p];
    while (n != nullptr && n->len > prev_len) {
      invs.push_back(n->op);
      n = n->next;
    }
  }
  std::sort(invs.begin(), invs.end(),
            [](const OpDesc& a, const OpDesc& b) { return a.id < b.id; });
  return invs;
}

size_t XBuilder::add(const LambdaRecord* rec) {
  ++records_;
  uint64_t key = rec->view.size();
  auto pos = std::lower_bound(
      levels_.begin(), levels_.end(), key,
      [](const Level& l, uint64_t k) { return l.key < k; });
  size_t idx = static_cast<size_t>(pos - levels_.begin());

  if (pos != levels_.end() && pos->key == key) {
    // Existing level: insert the response, keeping OpId order.
    auto& ress = pos->ress;
    auto it = std::lower_bound(
        ress.begin(), ress.end(), rec->op.id,
        [](const std::pair<OpDesc, Value>& r, OpId id) {
          return r.first.id < id;
        });
    ress.insert(it, {rec->op, rec->y});
    return idx;
  }

  // New level at idx.
  const View* prev = idx == 0 ? nullptr : levels_[idx - 1].view;
  Level lvl;
  lvl.key = key;
  lvl.view = &rec->view;
  lvl.invs = delta(prev, rec->view);
  lvl.ress.push_back({rec->op, rec->y});
  // The old level at idx (if any) loses the invocations now claimed by the
  // inserted level: recompute its delta against the new predecessor.
  if (idx < levels_.size()) {
    levels_[idx].invs = delta(&rec->view, *levels_[idx].view);
  }
  levels_.insert(levels_.begin() + static_cast<long>(idx), std::move(lvl));
  return idx;
}

History XBuilder::flatten() const {
  History out;
  for (const Level& lvl : levels_) {
    for (const OpDesc& op : lvl.invs) out.push_back(Event::inv(op));
    for (const auto& [op, y] : lvl.ress) out.push_back(Event::res(op, y));
  }
  return out;
}

void LeveledChecker::feed_level(const Level& lvl) {
  // Monitors are sticky-false, so feeding past a failed level is harmless;
  // GenLin objects are prefix-closed, hence a failing prefix settles the
  // verdict anyway.
  for (const OpDesc& op : lvl.invs) cur_->feed(Event::inv(op));
  for (const auto& [op, y] : lvl.ress) cur_->feed(Event::res(op, y));
  ++fed_;
  if (fed_ % stride_ == 0) {
    size_t idx = fed_ / stride_ - 1;
    if (checkpoints_.size() <= idx) checkpoints_.resize(idx + 1);
    checkpoints_[idx] = cur_->clone();
  }
}

bool LeveledChecker::resync(const XBuilder& builder, size_t from_level) {
  const auto& levels = builder.levels();
  if (cur_ == nullptr) {
    cur_ = obj_->monitor(threads_);
    fed_ = 0;
  }
  if (from_level < fed_) {
    // A record landed in the middle: restore the nearest checkpoint at or
    // below from_level and replay.
    size_t ckpt = from_level / stride_;  // checkpoints below
    if (ckpt == 0) {
      cur_ = obj_->monitor(threads_);
      fed_ = 0;
    } else {
      cur_ = checkpoints_[ckpt - 1]->clone();
      fed_ = ckpt * stride_;
    }
    checkpoints_.resize(ckpt);
  }
  while (fed_ < levels.size()) feed_level(levels[fed_]);
  ok_ = cur_->ok();
  return ok_;
}

}  // namespace selin
