// FIFO queue sequential specification (Figure 4 and Theorem 5.1 object).
// Enqueue(v) -> true; Dequeue() -> head value, or `empty`.
#include <deque>
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class QueueState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<QueueState>(*this);
  }

  Value step(Method m, Value arg) override {
    switch (m) {
      case Method::kEnqueue:
        items_.push_back(arg);
        return kTrue;
      case Method::kDequeue: {
        if (items_.empty()) return kEmpty;
        Value v = items_.front();
        items_.pop_front();
        return v;
      }
      default:
        return kError;  // foreign method: never matches an observed response
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "Q";
    for (Value v : items_) os << ":" << v;
    return os.str();
  }

  uint64_t fingerprint() const override {
    fph::Hasher h('Q');
    for (Value v : items_) h.i64(v);
    return h.done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const QueueState*>(&src);
    if (o == nullptr) return false;
    items_ = o->items_;
    return true;
  }

 private:
  std::deque<Value> items_;
};

class QueueSpec final : public SeqSpec {
 public:
  const char* name() const override { return "queue"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<QueueState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_queue_spec() {
  return std::make_unique<QueueSpec>();
}

}  // namespace selin
