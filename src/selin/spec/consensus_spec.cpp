// Consensus as a sequential object, exactly as in the proof of Theorem 5.1:
// "a single Decide operation that can be invoked several times, and the first
// operation among all processes sets its input as the decision".
// Decide(v) -> the decision value.
#include <optional>
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class ConsensusState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<ConsensusState>(*this);
  }

  Value step(Method m, Value arg) override {
    if (m != Method::kDecide) return kError;
    if (!decision_.has_value()) decision_ = arg;
    return *decision_;
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "D:";
    if (decision_.has_value()) os << *decision_;
    else os << "?";
    return os.str();
  }

  uint64_t fingerprint() const override {
    fph::Hasher h('D');
    h.u64(decision_.has_value() ? 1 : 0);
    if (decision_.has_value()) h.i64(*decision_);
    return h.done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const ConsensusState*>(&src);
    if (o == nullptr) return false;
    decision_ = o->decision_;
    return true;
  }

 private:
  std::optional<Value> decision_;
};

class ConsensusSpec final : public SeqSpec {
 public:
  const char* name() const override { return "consensus"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<ConsensusState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_consensus_spec() {
  return std::make_unique<ConsensusSpec>();
}

}  // namespace selin
