#include "selin/spec/spec.hpp"

#include "selin/util/hash.hpp"

namespace selin {

uint64_t SeqState::fingerprint() const { return fph::bytes(encode()); }

bool SeqState::assign_from(const SeqState& /*src*/) { return false; }

bool GenLinObject::contains(const History& h) const {
  auto m = monitor();
  for (const Event& e : h) {
    m->feed(e);
    if (!m->ok()) return false;
  }
  return m->ok();
}

bool seq_history_valid(const SeqSpec& spec, const History& sequential) {
  if (!selin::sequential(sequential)) return false;
  auto state = spec.initial();
  for (size_t i = 0; i + 1 < sequential.size(); i += 2) {
    const Event& inv = sequential[i];
    const Event& res = sequential[i + 1];
    Value got = state->step(inv.op.method, inv.op.arg);
    if (got != res.result) return false;
  }
  return true;
}

}  // namespace selin
