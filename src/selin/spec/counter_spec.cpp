// Counter sequential specification (Theorem 5.1 object).
// Inc() -> the new counter value; CounterRead() -> current value.
// Inc returning the new value makes lost increments *observable* in a single
// operation's response, which the completeness tests rely on.
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class CounterState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<CounterState>(*this);
  }

  Value step(Method m, Value /*arg*/) override {
    switch (m) {
      case Method::kInc:
        return ++value_;
      case Method::kCounterRead:
        return value_;
      default:
        return kError;
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "C:" << value_;
    return os.str();
  }

  uint64_t fingerprint() const override {
    return fph::Hasher('C').i64(value_).done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const CounterState*>(&src);
    if (o == nullptr) return false;
    value_ = o->value_;
    return true;
  }

 private:
  Value value_ = 0;
};

class CounterSpec final : public SeqSpec {
 public:
  const char* name() const override { return "counter"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<CounterState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_counter_spec() {
  return std::make_unique<CounterSpec>();
}

}  // namespace selin
