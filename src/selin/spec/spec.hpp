// Sequential specifications (Definition 4.1) and abstract GenLin objects
// (Section 7.1).
//
// A sequential specification is a deterministic state machine: δ(q, op)
// returns (q', res).  The paper allows non-deterministic machines; all the
// objects it names (queue, stack, set, priority queue, counter, consensus)
// are deterministic, and determinism is what makes the membership test
// tractable, so the SeqState interface is deterministic.  Non-deterministic
// conditions are still expressible through the GenLinObject membership
// interface, which is just the predicate P_O of Section 3.
//
// GenLin (Definition 7.2) is the class of abstract objects — sets of
// well-formed finite histories — closed under prefixes and similarity.  In
// code a GenLinObject is a membership oracle over histories; monitors give
// the incremental form used by the verifier so that re-checking after each
// operation does not restart from scratch.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "selin/engine/stats.hpp"
#include "selin/history/history.hpp"

namespace selin::obs {
struct EngineHooks;  // obs/hooks.hpp — instrumentation bundle, borrowed
}  // namespace selin::obs

namespace selin {

/// Deterministic sequential state machine state (Definition 4.1).
class SeqState {
 public:
  virtual ~SeqState() = default;
  virtual std::unique_ptr<SeqState> clone() const = 0;

  /// δ: apply the operation, mutate the state, return the response.
  virtual Value step(Method m, Value arg) = 0;

  /// Canonical encoding; two states are equal iff their encodings are equal.
  /// Ground truth for state identity; the checkers' hot paths use
  /// fingerprint() instead and fall back to encode() only for the debug
  /// collision audit and diagnostics.
  virtual std::string encode() const = 0;

  /// 64-bit state fingerprint: equal encodings must yield equal
  /// fingerprints.  The default hashes encode(); concrete specs override
  /// with direct hashing so deduplication never materializes a string.
  virtual uint64_t fingerprint() const;

  /// Overwrite *this with a copy of `src` (same dynamic type), reusing
  /// internal container capacity.  Returns false when the concrete type does
  /// not support it (callers then fall back to clone()).  Enables the
  /// checkers' state pool to recycle discarded configurations with zero
  /// allocation in steady state.
  virtual bool assign_from(const SeqState& src);
};

class SeqSpec {
 public:
  virtual ~SeqSpec() = default;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<SeqState> initial() const = 0;
};

/// Set-sequential specification (set-linearizability, Neiger [81]): the
/// transition consumes a non-empty *set* of operations that take effect
/// simultaneously.
class SetSeqSpec {
 public:
  virtual ~SetSeqSpec() = default;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<SeqState> initial() const = 0;

  /// Simultaneous transition on `batch`; writes the per-op responses into
  /// `out` (same length) and returns true, or returns false if the batch is
  /// not enabled in this state.  Must be deterministic.
  virtual bool step_set(SeqState& state, std::span<const OpDesc> batch,
                        std::span<Value> out) const = 0;
};

/// Incremental membership monitor: feed events one at a time, query the
/// verdict.  clone() supports the leveled checker's rollback on late records.
class MembershipMonitor {
 public:
  virtual ~MembershipMonitor() = default;
  virtual void feed(const Event& e) = 0;

  /// Feed a batch of events.  Semantically identical to feeding them one at
  /// a time (same final verdict and frontier); monitors that can amortize
  /// per-event work across the batch override this — the frontier checkers
  /// run their closure once per run of consecutive responses instead of
  /// once per response.
  virtual void feed_batch(std::span<const Event> events) {
    for (const Event& e : events) feed(e);
  }

  /// Membership verdict for everything fed so far.  Once false, stays false.
  virtual bool ok() const = 0;
  virtual std::unique_ptr<MembershipMonitor> clone() const = 0;

  /// Attach observability instruments (obs/hooks.hpp; nullptr detaches).
  /// The bundle must outlive the monitor and every clone taken from it —
  /// clones inherit the attachment.  Default: no-op, for monitors without
  /// an instrumented engine.
  virtual void attach_obs(const obs::EngineHooks* hooks) { (void)hooks; }

  /// Execution counters of the monitor's engine (engine/stats.hpp).
  /// Default: all-zero, for monitors without an instrumented engine; the
  /// frontier-engine facades report their real counters, which is how
  /// enforced objects surface engine stats through LeveledChecker /
  /// MonitorCore without knowing the concrete checker type.
  virtual engine::EngineStats stats() const { return {}; }
};

/// An abstract object in the sense of Section 7.1: a set of well-formed
/// finite histories; contains() is the correctness predicate P_O.
class GenLinObject {
 public:
  virtual ~GenLinObject() = default;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<MembershipMonitor> monitor() const = 0;

  /// A monitor running its membership test on up to `threads` shards (the
  /// parallel frontier engine); objects without a parallel engine fall back
  /// to the default monitor.  `threads == 0` means "the object's default";
  /// engine::kAutoThreads (engine/stats.hpp) requests adaptive
  /// sequential↔sharded execution chosen per feed round.
  virtual std::unique_ptr<MembershipMonitor> monitor(size_t threads) const {
    (void)threads;
    return monitor();
  }

  /// One-shot membership test (P_O).  Default: replay through a monitor.
  virtual bool contains(const History& h) const;
};

/// Runs a *sequential* history through the spec; true iff every response
/// matches δ.  Used to validate linearizations produced by the checker.
bool seq_history_valid(const SeqSpec& spec, const History& sequential);

// ---- Concrete specification factories -------------------------------------

std::unique_ptr<SeqSpec> make_queue_spec();
std::unique_ptr<SeqSpec> make_stack_spec();
std::unique_ptr<SeqSpec> make_set_spec();
std::unique_ptr<SeqSpec> make_pqueue_spec();
std::unique_ptr<SeqSpec> make_counter_spec();
std::unique_ptr<SeqSpec> make_register_spec(Value initial = 0);
std::unique_ptr<SeqSpec> make_consensus_spec();
std::unique_ptr<SetSeqSpec> make_exchanger_spec();

/// The write-snapshot task (Section 9.3) as a GenLin object; outputs are
/// bitmask views over process ids (n ≤ 64).  Interval-linearizable but not
/// linearizable, demonstrating GenLin strictly beyond linearizability.
std::unique_ptr<GenLinObject> make_write_snapshot_object(size_t n);

}  // namespace selin
