// Min priority queue sequential specification (Theorem 5.1 object).
// PqInsert(v) -> true; PqExtractMin() -> smallest value, or `empty`.
#include <set>
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class PqState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<PqState>(*this);
  }

  Value step(Method m, Value arg) override {
    switch (m) {
      case Method::kPqInsert:
        items_.insert(arg);
        return kTrue;
      case Method::kPqExtractMin: {
        if (items_.empty()) return kEmpty;
        auto it = items_.begin();
        Value v = *it;
        items_.erase(it);
        return v;
      }
      default:
        return kError;
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "P";
    for (Value v : items_) os << ":" << v;
    return os.str();
  }

  uint64_t fingerprint() const override {
    fph::Hasher h('P');
    for (Value v : items_) h.i64(v);
    return h.done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const PqState*>(&src);
    if (o == nullptr) return false;
    items_ = o->items_;
    return true;
  }

 private:
  std::multiset<Value> items_;
};

class PqSpec final : public SeqSpec {
 public:
  const char* name() const override { return "pqueue"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<PqState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_pqueue_spec() {
  return std::make_unique<PqSpec>();
}

}  // namespace selin
