// Integer set sequential specification (Theorem 5.1 object).
// Insert(v) -> true iff v was absent; Remove(v) -> true iff v was present;
// Contains(v) -> membership.
#include <set>
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class SetState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<SetState>(*this);
  }

  Value step(Method m, Value arg) override {
    switch (m) {
      case Method::kInsert:
        return items_.insert(arg).second ? kTrue : kFalse;
      case Method::kRemove:
        return items_.erase(arg) != 0 ? kTrue : kFalse;
      case Method::kContains:
        return items_.count(arg) != 0 ? kTrue : kFalse;
      default:
        return kError;
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "T";
    for (Value v : items_) os << ":" << v;
    return os.str();
  }

  uint64_t fingerprint() const override {
    fph::Hasher h('T');
    for (Value v : items_) h.i64(v);
    return h.done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const SetState*>(&src);
    if (o == nullptr) return false;
    items_ = o->items_;
    return true;
  }

 private:
  std::set<Value> items_;
};

class SetSpec final : public SeqSpec {
 public:
  const char* name() const override { return "set"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<SetState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_set_spec() { return std::make_unique<SetSpec>(); }

}  // namespace selin
