// LIFO stack sequential specification (Figures 1 and 3 of the paper).
// Push(v) -> true; Pop() -> top value, or `empty`.
#include <sstream>
#include <vector>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class StackState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<StackState>(*this);
  }

  Value step(Method m, Value arg) override {
    switch (m) {
      case Method::kPush:
        items_.push_back(arg);
        return kTrue;
      case Method::kPop: {
        if (items_.empty()) return kEmpty;
        Value v = items_.back();
        items_.pop_back();
        return v;
      }
      default:
        return kError;
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "S";
    for (Value v : items_) os << ":" << v;
    return os.str();
  }

  uint64_t fingerprint() const override {
    fph::Hasher h('S');
    for (Value v : items_) h.i64(v);
    return h.done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const StackState*>(&src);
    if (o == nullptr) return false;
    items_ = o->items_;
    return true;
  }

 private:
  std::vector<Value> items_;
};

class StackSpec final : public SeqSpec {
 public:
  const char* name() const override { return "stack"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<StackState>();
  }
};

}  // namespace

std::unique_ptr<SeqSpec> make_stack_spec() {
  return std::make_unique<StackSpec>();
}

}  // namespace selin
