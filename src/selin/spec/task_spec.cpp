// Write-snapshot task (Section 9.3) as a GenLin object.
//
// Each process invokes WriteSnap(v) once; its output is a *snapshot*: the set
// of processes whose writes it saw, encoded as a bitmask over process ids
// (n ≤ 64).  A history is in the object iff the complete operations' outputs
// satisfy the task relation:
//   (1) self-inclusion:  i ∈ y_i,
//   (2) comparability:   y_i ⊆ y_j or y_j ⊆ y_i,
//   (3) real-time containment: op_i ≺ op_j  ⟹  i ∈ y_j and y_i ⊆ y_j,
//   (4) one-shot: each process invokes at most once.
// This object is interval-linearizable but not linearizable — it has no
// sequential specification — demonstrating that GenLin strictly extends
// linearizability (Section 7.1, [17]).
//
// Closure sanity: prefixes drop operations, which cannot violate (1)-(4);
// similarity preserves outputs, equivalence and only shrinks ≺, so (3) only
// loses obligations.  Hence the object is closed by prefixes and similarity
// and genuinely belongs to GenLin.
#include <vector>

#include "selin/spec/spec.hpp"

namespace selin {
namespace {

struct WsOp {
  OpId id;
  uint64_t mask;  // response bitmask
};

class WriteSnapshotMonitor final : public MembershipMonitor {
 public:
  explicit WriteSnapshotMonitor(size_t n) : n_(n) {}

  void feed(const Event& e) override {
    if (!ok_) return;
    if (e.op.id.pid >= n_) {
      ok_ = false;
      return;
    }
    if (e.is_inv()) {
      if (invoked_ & (1ULL << e.op.id.pid)) {  // one-shot violated
        ok_ = false;
        return;
      }
      invoked_ |= 1ULL << e.op.id.pid;
      inv_order_.push_back(e.op.id);
      return;
    }
    if (e.op.method != Method::kWriteSnap || e.result < 0) {
      ok_ = false;
      return;
    }
    uint64_t mask = static_cast<uint64_t>(e.result);
    // (1) self-inclusion
    if ((mask & (1ULL << e.op.id.pid)) == 0) {
      ok_ = false;
      return;
    }
    // (1b) a snapshot can only contain writes that were invoked by now.
    if ((mask & ~invoked_) != 0) {
      ok_ = false;
      return;
    }
    // (2) comparability with every earlier complete op
    for (const WsOp& o : complete_) {
      if ((o.mask & mask) != o.mask && (o.mask & mask) != mask) {
        ok_ = false;
        return;
      }
    }
    // (3) every op complete before this op's invocation must be contained:
    // o ≺ e  iff o's response precedes e's invocation; we track completion
    // order, so all ops complete at e's invocation time are those recorded
    // before we saw e's invocation.
    for (const WsOp& o : complete_) {
      if (completed_before_inv(o.id, e.op.id)) {
        if ((mask & (1ULL << o.id.pid)) == 0 || (o.mask & mask) != o.mask) {
          ok_ = false;
          return;
        }
      }
    }
    complete_.push_back(WsOp{e.op.id, mask});
    complete_at_.push_back(inv_order_.size());
  }

  bool ok() const override { return ok_; }

  std::unique_ptr<MembershipMonitor> clone() const override {
    return std::make_unique<WriteSnapshotMonitor>(*this);
  }

 private:
  // o ≺ e: o's response was fed before e's invocation.  complete_at_[k] is
  // the number of invocations seen when complete_[k] responded; comparing it
  // with e's invocation index decides precedence.
  bool completed_before_inv(OpId o, OpId e) const {
    size_t e_inv = 0;
    for (; e_inv < inv_order_.size(); ++e_inv) {
      if (inv_order_[e_inv] == e) break;
    }
    for (size_t k = 0; k < complete_.size(); ++k) {
      if (complete_[k].id == o) return complete_at_[k] <= e_inv;
    }
    return false;
  }

  size_t n_;
  bool ok_ = true;
  uint64_t invoked_ = 0;
  std::vector<OpId> inv_order_;
  std::vector<WsOp> complete_;
  std::vector<size_t> complete_at_;
};

class WriteSnapshotObject final : public GenLinObject {
 public:
  explicit WriteSnapshotObject(size_t n) : n_(n) {}
  const char* name() const override { return "write-snapshot-task"; }
  std::unique_ptr<MembershipMonitor> monitor() const override {
    return std::make_unique<WriteSnapshotMonitor>(n_);
  }

 private:
  size_t n_;
};

}  // namespace

std::unique_ptr<GenLinObject> make_write_snapshot_object(size_t n) {
  return std::make_unique<WriteSnapshotObject>(n);
}

}  // namespace selin
