// Read/write register sequential specification.
// Write(v) -> ok; Read() -> last written value (or the initial value).
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

class RegisterState final : public SeqState {
 public:
  explicit RegisterState(Value initial) : value_(initial) {}

  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<RegisterState>(*this);
  }

  Value step(Method m, Value arg) override {
    switch (m) {
      case Method::kWrite:
        value_ = arg;
        return kOk;
      case Method::kRead:
        return value_;
      default:
        return kError;
    }
  }

  std::string encode() const override {
    std::ostringstream os;
    os << "R:" << value_;
    return os.str();
  }

  uint64_t fingerprint() const override {
    return fph::Hasher('R').i64(value_).done();
  }

  bool assign_from(const SeqState& src) override {
    auto* o = dynamic_cast<const RegisterState*>(&src);
    if (o == nullptr) return false;
    value_ = o->value_;
    return true;
  }

 private:
  Value value_;
};

class RegisterSpec final : public SeqSpec {
 public:
  explicit RegisterSpec(Value initial) : initial_(initial) {}
  const char* name() const override { return "register"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<RegisterState>(initial_);
  }

 private:
  Value initial_;
};

}  // namespace

std::unique_ptr<SeqSpec> make_register_spec(Value initial) {
  return std::make_unique<RegisterSpec>(initial);
}

}  // namespace selin
