// Exchanger: the classic *set-sequential* object (set-linearizability,
// Neiger [81]; Section 7.1 of the paper).  Two Exchange operations that are
// set-linearized in the same concurrency class swap their arguments; an
// Exchange that is set-linearized alone returns `empty` (no partner).
//
// No sequential specification captures this object (a solo exchange can
// never return a partner value), so it exercises GenLin strictly beyond
// linearizability.
#include <sstream>

#include "selin/spec/spec.hpp"
#include "selin/util/hash.hpp"

namespace selin {
namespace {

/// The exchanger is stateless between concurrency classes.
class ExchangerState final : public SeqState {
 public:
  std::unique_ptr<SeqState> clone() const override {
    return std::make_unique<ExchangerState>(*this);
  }
  Value step(Method, Value) override { return kError; }  // set-seq only
  std::string encode() const override { return "X"; }
  uint64_t fingerprint() const override { return fph::Hasher('X').done(); }
  bool assign_from(const SeqState& src) override {
    return dynamic_cast<const ExchangerState*>(&src) != nullptr;
  }
};

class ExchangerSpec final : public SetSeqSpec {
 public:
  const char* name() const override { return "exchanger"; }
  std::unique_ptr<SeqState> initial() const override {
    return std::make_unique<ExchangerState>();
  }

  bool step_set(SeqState& /*state*/, std::span<const OpDesc> batch,
                std::span<Value> out) const override {
    for (const OpDesc& op : batch) {
      if (op.method != Method::kExchange) return false;
    }
    if (batch.size() == 1) {
      out[0] = kEmpty;
      return true;
    }
    if (batch.size() == 2) {
      out[0] = batch[1].arg;
      out[1] = batch[0].arg;
      return true;
    }
    return false;  // the exchanger pairs exactly two operations
  }
};

}  // namespace

std::unique_ptr<SetSeqSpec> make_exchanger_spec() {
  return std::make_unique<ExchangerSpec>();
}

}  // namespace selin
