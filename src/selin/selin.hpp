// Umbrella header for the selin library — self-enforced linearizability.
//
// selin is a from-scratch reproduction of Castañeda & Rodríguez,
// "Asynchronous Wait-Free Runtime Verification and Enforcement of
// Linearizability" (PODC 2023).  See README.md for the quickstart and
// DESIGN.md for the paper-to-module map.
#pragma once

#include "selin/core/astar.hpp"
#include "selin/core/decoupled.hpp"
#include "selin/core/monitor_core.hpp"
#include "selin/core/self_enforced.hpp"
#include "selin/core/verifier.hpp"
#include "selin/engine/frontier_engine.hpp"
#include "selin/engine/policies.hpp"
#include "selin/engine/stats.hpp"
#include "selin/history/event.hpp"
#include "selin/history/history.hpp"
#include "selin/history/similarity.hpp"
#include "selin/history/tight.hpp"
#include "selin/impls/concurrent.hpp"
#include "selin/lincheck/checker.hpp"
#include "selin/lincheck/intervallin.hpp"
#include "selin/lincheck/monitor.hpp"
#include "selin/lincheck/setlin_checker.hpp"
#include "selin/msgpass/abd.hpp"
#include "selin/msgpass/abd_cluster.hpp"
#include "selin/parallel/executor.hpp"
#include "selin/parallel/shard_pool.hpp"
#include "selin/parallel/sharded_frontier.hpp"
#include "selin/parallel/task_lanes.hpp"
#include "selin/service/monitor_service.hpp"
#include "selin/sim/impossibility.hpp"
#include "selin/sim/recorder.hpp"
#include "selin/sim/workload.hpp"
#include "selin/snapshot/snapshot.hpp"
#include "selin/spec/spec.hpp"
#include "selin/util/rng.hpp"
#include "selin/util/spin_barrier.hpp"
#include "selin/util/step_counter.hpp"
#include "selin/util/types.hpp"
#include "selin/views/lambda.hpp"
#include "selin/views/leveled_history.hpp"
#include "selin/views/view.hpp"
