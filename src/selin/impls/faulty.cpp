// Fault-injected implementations.
//
// These drive the completeness side of Theorems 8.1 and 8.2: a faulty A
// produces non-linearizable histories, and the verifier must eventually
// report ERROR with a witness.  All faults are *silent* — the implementation
// keeps answering plausible values — because that is the failure mode
// runtime verification exists for.
#include <atomic>
#include <mutex>

#include "selin/impls/concurrent.hpp"
#include "selin/util/rng.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

/// The queue from the proof of Theorem 5.1: Enqueue -> true, Dequeue ->
/// empty, except the liar process's first Dequeue which returns 1.
class Thm51Queue final : public IConcurrent {
 public:
  explicit Thm51Queue(ProcId liar) : liar_(liar) {}
  const char* name() const override { return "thm51-queue"; }

  Value apply(ProcId p, const OpDesc& op) override {
    switch (op.method) {
      case Method::kEnqueue:
        return kTrue;
      case Method::kDequeue:
        if (p == liar_ && !lied_.exchange(true, std::memory_order_acq_rel)) {
          return 1;
        }
        return kEmpty;
      default:
        return kError;
    }
  }

 private:
  ProcId liar_;
  std::atomic<bool> lied_{false};
};

/// Wraps a correct implementation and corrupts a fraction of operations.
class FaultyWrapper : public IConcurrent {
 public:
  FaultyWrapper(std::unique_ptr<IConcurrent> inner, uint64_t num,
                uint64_t den, uint64_t seed)
      : inner_(std::move(inner)), num_(num), den_(den), seed_(seed) {}

 protected:
  bool roll(const OpDesc& op) {
    // Deterministic per-op coin: reproducible across runs with one seed.
    Rng rng(seed_ ^ op.id.packed());
    return rng.chance(num_, den_);
  }

  std::unique_ptr<IConcurrent> inner_;
  uint64_t num_, den_, seed_;
};

class LossyQueue final : public FaultyWrapper {
 public:
  LossyQueue(uint64_t num, uint64_t den, uint64_t seed)
      : FaultyWrapper(make_ms_queue(), num, den, seed) {}
  const char* name() const override { return "lossy-queue"; }

  Value apply(ProcId p, const OpDesc& op) override {
    if (op.method == Method::kEnqueue && roll(op)) {
      return kTrue;  // claim success, drop the element
    }
    return inner_->apply(p, op);
  }
};

class DupQueue final : public FaultyWrapper {
 public:
  DupQueue(uint64_t num, uint64_t den, uint64_t seed)
      : FaultyWrapper(make_ms_queue(), num, den, seed) {}
  const char* name() const override { return "dup-queue"; }

  Value apply(ProcId p, const OpDesc& op) override {
    if (op.method == Method::kDequeue) {
      Value last = last_.load(std::memory_order_acquire);
      if (last != kNoArg && roll(op)) return last;  // redeliver
      Value v = inner_->apply(p, op);
      if (v != kEmpty) last_.store(v, std::memory_order_release);
      return v;
    }
    return inner_->apply(p, op);
  }

 private:
  std::atomic<Value> last_{kNoArg};
};

class StaleCounter final : public FaultyWrapper {
 public:
  StaleCounter(uint64_t num, uint64_t den, uint64_t seed)
      : FaultyWrapper(make_atomic_counter(), num, den, seed) {}
  const char* name() const override { return "stale-counter"; }

  Value apply(ProcId p, const OpDesc& op) override {
    if (op.method == Method::kInc && roll(op)) {
      // Lose the increment: answer with the current value as if we had just
      // incremented to it (a classic lost-update anomaly).
      OpDesc read = op;
      read.method = Method::kCounterRead;
      return inner_->apply(p, read);
    }
    return inner_->apply(p, op);
  }
};

class StaleRegister final : public FaultyWrapper {
 public:
  StaleRegister(uint64_t num, uint64_t den, uint64_t seed, Value initial)
      : FaultyWrapper(make_cas_register(initial), num, den, seed),
        stale_(initial) {}
  const char* name() const override { return "stale-register"; }

  Value apply(ProcId p, const OpDesc& op) override {
    if (op.method == Method::kRead && roll(op)) {
      return stale_.load(std::memory_order_acquire);  // overwritten value
    }
    Value v = inner_->apply(p, op);
    if (op.method == Method::kWrite) {
      stale_.store(op.arg == 0 ? 1 : op.arg - 1, std::memory_order_release);
    }
    return v;
  }

 private:
  std::atomic<Value> stale_;
};

/// Violates consensus validity: the winning Decide answers a corrupted value
/// that is no process's input — the Section 10 scenario ("a process ran solo
/// and decided a value distinct from its input") detectable via views.
class InvalidConsensus final : public IConcurrent {
 public:
  explicit InvalidConsensus(Value corruption) : corruption_(corruption) {}
  const char* name() const override { return "invalid-consensus"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    if (op.method != Method::kDecide) return kError;
    Value expected = kNoArg;
    StepCounter::bump();
    decision_.compare_exchange_strong(expected, op.arg ^ corruption_,
                                      std::memory_order_acq_rel);
    return expected == kNoArg ? (op.arg ^ corruption_) : expected;
  }

 private:
  Value corruption_;
  std::atomic<Value> decision_{kNoArg};
};

}  // namespace

std::unique_ptr<IConcurrent> make_thm51_queue(ProcId liar) {
  return std::make_unique<Thm51Queue>(liar);
}
std::unique_ptr<IConcurrent> make_lossy_queue(uint64_t num, uint64_t den,
                                              uint64_t seed) {
  return std::make_unique<LossyQueue>(num, den, seed);
}
std::unique_ptr<IConcurrent> make_dup_queue(uint64_t num, uint64_t den,
                                            uint64_t seed) {
  return std::make_unique<DupQueue>(num, den, seed);
}
std::unique_ptr<IConcurrent> make_stale_counter(uint64_t num, uint64_t den,
                                                uint64_t seed) {
  return std::make_unique<StaleCounter>(num, den, seed);
}
std::unique_ptr<IConcurrent> make_stale_register(uint64_t num, uint64_t den,
                                                 uint64_t seed, Value initial) {
  return std::make_unique<StaleRegister>(num, den, seed, initial);
}
std::unique_ptr<IConcurrent> make_invalid_consensus(Value corruption) {
  return std::make_unique<InvalidConsensus>(corruption);
}

}  // namespace selin
