// Treiber lock-free LIFO stack.  Arena-owned nodes (no reuse while the stack
// lives) make the plain CAS loop ABA-safe.
#include <atomic>

#include "selin/impls/concurrent.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class TreiberStack final : public IConcurrent {
 public:
  const char* name() const override { return "treiber-stack"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kPush:
        push(op.arg);
        return kTrue;
      case Method::kPop:
        return pop();
      default:
        return kError;
    }
  }

 private:
  struct Node {
    Value value;
    Node* next;
  };

  void push(Value v) {
    Node* node = arena_.create<Node>();
    node->value = v;
    StepCounter::bump();
    Node* top = top_.load(std::memory_order_relaxed);
    do {
      node->next = top;
      StepCounter::bump();
    } while (!top_.compare_exchange_weak(top, node, std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  Value pop() {
    StepCounter::bump();
    Node* top = top_.load(std::memory_order_acquire);
    for (;;) {
      if (top == nullptr) return kEmpty;
      StepCounter::bump();
      if (top_.compare_exchange_weak(top, top->next,
                                     std::memory_order_acquire,
                                     std::memory_order_acquire)) {
        return top->value;
      }
    }
  }

  Arena arena_;
  alignas(64) std::atomic<Node*> top_{nullptr};
};

}  // namespace

std::unique_ptr<IConcurrent> make_treiber_stack() {
  return std::make_unique<TreiberStack>();
}

}  // namespace selin
