// Harris–Michael lock-free ordered set (sorted linked list with logical
// deletion).  The canonical non-trivial lock-free structure whose
// linearization points are *not* fixed code locations (a failed Contains may
// linearize at another thread's CAS) — precisely the class of implementation
// the paper's related-work section says log-based runtime checkers [30, 31]
// cannot handle, and selin's black-box verifier can.
//
// Deleted nodes are unlinked but never freed while the set lives (arena
// reclamation), which also makes the mark/next packing ABA-safe.
#include <atomic>

#include "selin/impls/concurrent.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class HarrisSet final : public IConcurrent {
 public:
  HarrisSet() {
    head_ = arena_.create<Node>();
    head_->key = kNegInf;
    tail_ = arena_.create<Node>();
    tail_->key = kPosInf;
    head_->next.store(pack(tail_, false), std::memory_order_relaxed);
    tail_->next.store(pack(nullptr, false), std::memory_order_relaxed);
  }

  const char* name() const override { return "harris-set"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kInsert:
        return insert(op.arg) ? kTrue : kFalse;
      case Method::kRemove:
        return remove(op.arg) ? kTrue : kFalse;
      case Method::kContains:
        return contains(op.arg) ? kTrue : kFalse;
      default:
        return kError;
    }
  }

 private:
  static constexpr Value kNegInf = std::numeric_limits<Value>::min();
  static constexpr Value kPosInf = std::numeric_limits<Value>::max();

  struct Node {
    Value key = 0;
    std::atomic<uintptr_t> next{0};  // pointer | mark bit
  };

  static uintptr_t pack(Node* n, bool marked) {
    return reinterpret_cast<uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* ptr_of(uintptr_t v) {
    return reinterpret_cast<Node*>(v & ~uintptr_t{1});
  }
  static bool mark_of(uintptr_t v) { return (v & 1u) != 0; }

  struct Window {
    Node* pred;
    Node* curr;
  };

  // Find the window (pred, curr) with pred->key < key <= curr->key, physically
  // unlinking marked nodes along the way (the helping step).
  Window find(Value key) {
  retry:
    Node* pred = head_;
    StepCounter::bump();
    uintptr_t pv = pred->next.load(std::memory_order_acquire);
    Node* curr = ptr_of(pv);
    for (;;) {
      StepCounter::bump();
      uintptr_t cv = curr->next.load(std::memory_order_acquire);
      while (mark_of(cv)) {
        // curr is logically deleted: try to unlink it.
        uintptr_t expected = pack(curr, false);
        StepCounter::bump();
        if (!pred->next.compare_exchange_strong(expected, pack(ptr_of(cv), false),
                                                std::memory_order_acq_rel)) {
          goto retry;
        }
        curr = ptr_of(cv);
        StepCounter::bump();
        cv = curr->next.load(std::memory_order_acquire);
      }
      if (curr->key >= key) return Window{pred, curr};
      pred = curr;
      curr = ptr_of(cv);
    }
  }

  bool insert(Value key) {
    for (;;) {
      Window w = find(key);
      if (w.curr->key == key) return false;  // already present
      Node* node = arena_.create<Node>();
      node->key = key;
      node->next.store(pack(w.curr, false), std::memory_order_relaxed);
      uintptr_t expected = pack(w.curr, false);
      StepCounter::bump();
      if (w.pred->next.compare_exchange_strong(expected, pack(node, false),
                                               std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  bool remove(Value key) {
    for (;;) {
      Window w = find(key);
      if (w.curr->key != key) return false;
      StepCounter::bump();
      uintptr_t succ = w.curr->next.load(std::memory_order_acquire);
      if (mark_of(succ)) continue;  // someone else is deleting; re-find
      // Logical deletion: set the mark (the linearization point).
      uintptr_t expected = pack(ptr_of(succ), false);
      StepCounter::bump();
      if (!w.curr->next.compare_exchange_strong(expected,
                                                pack(ptr_of(succ), true),
                                                std::memory_order_acq_rel)) {
        continue;
      }
      // Physical unlink (best effort; find() helps if this fails).
      uintptr_t e2 = pack(w.curr, false);
      StepCounter::bump();
      w.pred->next.compare_exchange_strong(e2, pack(ptr_of(succ), false),
                                           std::memory_order_acq_rel);
      return true;
    }
  }

  bool contains(Value key) {
    Node* curr = head_;
    StepCounter::bump();
    uintptr_t cv = curr->next.load(std::memory_order_acquire);
    curr = ptr_of(cv);
    while (curr->key < key) {
      StepCounter::bump();
      cv = curr->next.load(std::memory_order_acquire);
      curr = ptr_of(cv);
    }
    StepCounter::bump();
    return curr->key == key &&
           !mark_of(curr->next.load(std::memory_order_acquire));
  }

  Arena arena_;
  Node* head_;
  Node* tail_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_harris_set() {
  return std::make_unique<HarrisSet>();
}

}  // namespace selin
