// Coarse-grained (single mutex) queue and stack.  Blocking — used as correct
// references in differential tests and to measure what the introduction
// warns about: composing a non-blocking A with blocking machinery forfeits
// fault tolerance.
#include <deque>
#include <mutex>
#include <vector>

#include "selin/impls/concurrent.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class CoarseQueue final : public IConcurrent {
 public:
  const char* name() const override { return "coarse-queue"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    std::lock_guard<std::mutex> lock(mu_);
    StepCounter::bump();
    switch (op.method) {
      case Method::kEnqueue:
        items_.push_back(op.arg);
        return kTrue;
      case Method::kDequeue: {
        if (items_.empty()) return kEmpty;
        Value v = items_.front();
        items_.pop_front();
        return v;
      }
      default:
        return kError;
    }
  }

 private:
  std::mutex mu_;
  std::deque<Value> items_;
};

class CoarseStack final : public IConcurrent {
 public:
  const char* name() const override { return "coarse-stack"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    std::lock_guard<std::mutex> lock(mu_);
    StepCounter::bump();
    switch (op.method) {
      case Method::kPush:
        items_.push_back(op.arg);
        return kTrue;
      case Method::kPop: {
        if (items_.empty()) return kEmpty;
        Value v = items_.back();
        items_.pop_back();
        return v;
      }
      default:
        return kError;
    }
  }

 private:
  std::mutex mu_;
  std::vector<Value> items_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_coarse_queue() {
  return std::make_unique<CoarseQueue>();
}

std::unique_ptr<IConcurrent> make_coarse_stack() {
  return std::make_unique<CoarseStack>();
}

}  // namespace selin
