// The black-box interface of an implementation A (Sections 2 and 3).
//
// A verifier can only invoke Apply(op) and receive responses — it never
// inspects the implementation — so the interface is exactly one method.
// Every implementation in this module is at least lock-free; blocking
// (mutex-based) variants are provided for differential testing and to
// exercise the Section 9.3 discussion about blocking implementations.
#pragma once

#include <memory>

#include "selin/spec/spec.hpp"
#include "selin/util/types.hpp"

namespace selin {

class IConcurrent {
 public:
  virtual ~IConcurrent() = default;
  virtual const char* name() const = 0;

  /// The single high-level operation Apply(op) of Section 2.  Thread-safe;
  /// p identifies the calling process slot (0..n-1) and must match op.id.pid.
  virtual Value apply(ProcId p, const OpDesc& op) = 0;
};

// Correct (linearizable) implementations.
std::unique_ptr<IConcurrent> make_ms_queue();        ///< lock-free [Michael&Scott]
std::unique_ptr<IConcurrent> make_treiber_stack();   ///< lock-free [Treiber]
std::unique_ptr<IConcurrent> make_atomic_counter();  ///< wait-free fetch&add
std::unique_ptr<IConcurrent> make_cas_register(Value initial = 0);
std::unique_ptr<IConcurrent> make_cas_consensus();   ///< wait-free, one CAS
std::unique_ptr<IConcurrent> make_coarse_queue();    ///< blocking baseline
std::unique_ptr<IConcurrent> make_coarse_stack();    ///< blocking baseline
std::unique_ptr<IConcurrent> make_harris_set();      ///< lock-free ordered set
std::unique_ptr<IConcurrent> make_lazy_set();        ///< lazy list (fine locks)

/// Herlihy's universal construction [59]: a lock-free linearizable
/// implementation of *any* deterministic sequential specification, built on a
/// CAS-append log replayed through the spec.  The paper's introduction uses
/// it as the reason designing linearizable implementations is "simple".
std::unique_ptr<IConcurrent> make_universal(std::shared_ptr<SeqSpec> spec);

// Faulty implementations (fault injection for completeness tests, Section 5
// and Theorem 8.1/8.2 completeness).  All are silent: they return plausible
// values without signaling failure.
///
/// The adversarial queue from the proof of Theorem 5.1: every Enqueue
/// returns true, every Dequeue returns empty — except process p's first
/// Dequeue, which returns 1 even though nothing was enqueued by anyone it
/// observed.  (`liar` selects the lying process; the paper uses p2.)
std::unique_ptr<IConcurrent> make_thm51_queue(ProcId liar = 1);
/// Wraps a correct queue but drops each Enqueue with probability num/den
/// (still answering true).
std::unique_ptr<IConcurrent> make_lossy_queue(uint64_t num, uint64_t den,
                                              uint64_t seed);
/// Wraps a correct queue but occasionally redelivers the previously dequeued
/// value (duplication fault).
std::unique_ptr<IConcurrent> make_dup_queue(uint64_t num, uint64_t den,
                                            uint64_t seed);
/// Counter that occasionally loses an increment (returns a stale value).
std::unique_ptr<IConcurrent> make_stale_counter(uint64_t num, uint64_t den,
                                                uint64_t seed);
/// Register whose reads occasionally return a stale (overwritten) value.
std::unique_ptr<IConcurrent> make_stale_register(uint64_t num, uint64_t den,
                                                 uint64_t seed, Value initial = 0);
/// Consensus that violates validity: the first decider's response is its own
/// input XOR'd with a corruption mask (detectable through views; Section 10).
std::unique_ptr<IConcurrent> make_invalid_consensus(Value corruption);

}  // namespace selin
