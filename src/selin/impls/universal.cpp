// Herlihy's universal construction [59]: a lock-free linearizable
// implementation of any deterministic sequential specification.
//
// Operations are appended to a single CAS-ordered log; the log order *is*
// the linearization order.  Each node's result and post-state are computed
// deterministically from its predecessor's post-state, so every helping
// thread computes identical values and the first CAS wins (the others
// discard their duplicate).  The construction is lock-free: a failed append
// CAS means another operation was appended.
#include <atomic>

#include "selin/impls/concurrent.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class Universal final : public IConcurrent {
 public:
  explicit Universal(std::shared_ptr<SeqSpec> spec) : spec_(std::move(spec)) {
    Node* sentinel = arena_.create<Node>();
    auto* comp = arena_.create<Computed>();
    comp->state = spec_->initial().release();
    comp->result = kNoArg;
    sentinel->computed.store(comp, std::memory_order_relaxed);
    head_ = sentinel;
    tail_hint_.store(sentinel, std::memory_order_relaxed);
    computed_hint_.store(sentinel, std::memory_order_relaxed);
  }

  ~Universal() override {
    for (Node* n = head_; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      Computed* c = n->computed.load(std::memory_order_relaxed);
      if (c != nullptr) delete c->state;
    }
  }

  const char* name() const override { return "universal"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    Node* node = arena_.create<Node>();
    node->op = op;
    append(node);
    compute_up_to(node);
    return node->computed.load(std::memory_order_acquire)->result;
  }

 private:
  struct Computed {
    SeqState* state = nullptr;
    Value result = kNoArg;
  };
  struct Node {
    OpDesc op;
    std::atomic<Node*> next{nullptr};
    std::atomic<Computed*> computed{nullptr};
  };

  void append(Node* node) {
    StepCounter::bump();
    Node* cur = tail_hint_.load(std::memory_order_acquire);
    for (;;) {
      StepCounter::bump();
      Node* next = cur->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        cur = next;
        continue;
      }
      StepCounter::bump();
      if (cur->next.compare_exchange_weak(next, node,
                                          std::memory_order_release,
                                          std::memory_order_acquire)) {
        break;
      }
      // CAS failure loaded the new next into `next`.
      cur = next;
    }
    StepCounter::bump();
    tail_hint_.store(node, std::memory_order_release);
  }

  void compute_up_to(Node* node) {
    if (node->computed.load(std::memory_order_acquire) != nullptr) return;
    StepCounter::bump();
    Node* c = computed_hint_.load(std::memory_order_acquire);
    // The hint always references a computed node.  If it sits past `node`,
    // node is already computed and the loop below never starts.
    while (node->computed.load(std::memory_order_acquire) == nullptr) {
      StepCounter::bump();
      Node* nx = c->next.load(std::memory_order_acquire);
      Computed* prev = c->computed.load(std::memory_order_acquire);
      if (nx->computed.load(std::memory_order_acquire) == nullptr) {
        auto state = prev->state->clone();
        Value result = state->step(nx->op.method, nx->op.arg);
        auto* comp = arena_.create<Computed>();
        comp->state = state.get();
        comp->result = result;
        Computed* expected = nullptr;
        StepCounter::bump();
        if (nx->computed.compare_exchange_strong(expected, comp,
                                                 std::memory_order_acq_rel)) {
          state.release();
        }
        // On failure another helper installed the identical computation; our
        // clone is released by `state`'s destructor.
      }
      c = nx;
    }
    StepCounter::bump();
    computed_hint_.store(c, std::memory_order_release);
  }

  std::shared_ptr<SeqSpec> spec_;
  Arena arena_;
  Node* head_;
  alignas(64) std::atomic<Node*> tail_hint_;
  alignas(64) std::atomic<Node*> computed_hint_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_universal(std::shared_ptr<SeqSpec> spec) {
  return std::make_unique<Universal>(std::move(spec));
}

}  // namespace selin
