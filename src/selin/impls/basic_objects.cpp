// Wait-free atomic counter, register and consensus — the one-word objects of
// Theorem 5.1, implemented directly on hardware read-modify-write primitives.
#include <atomic>

#include "selin/impls/concurrent.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class AtomicCounter final : public IConcurrent {
 public:
  const char* name() const override { return "atomic-counter"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kInc:
        StepCounter::bump();
        return value_.fetch_add(1, std::memory_order_acq_rel) + 1;
      case Method::kCounterRead:
        StepCounter::bump();
        return value_.load(std::memory_order_acquire);
      default:
        return kError;
    }
  }

 private:
  std::atomic<Value> value_{0};
};

class CasRegister final : public IConcurrent {
 public:
  explicit CasRegister(Value initial) : value_(initial) {}
  const char* name() const override { return "cas-register"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kWrite:
        StepCounter::bump();
        value_.store(op.arg, std::memory_order_release);
        return kOk;
      case Method::kRead:
        StepCounter::bump();
        return value_.load(std::memory_order_acquire);
      default:
        return kError;
    }
  }

 private:
  std::atomic<Value> value_;
};

/// Consensus object per the Theorem 5.1 formulation: Decide(v) can be called
/// repeatedly; the first call (across all processes) fixes the decision.
class CasConsensus final : public IConcurrent {
 public:
  const char* name() const override { return "cas-consensus"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    if (op.method != Method::kDecide) return kError;
    Value expected = kUndecided;
    StepCounter::bump();
    if (decision_.compare_exchange_strong(expected, op.arg,
                                          std::memory_order_acq_rel)) {
      return op.arg;
    }
    return expected;
  }

 private:
  static constexpr Value kUndecided = kNoArg;
  std::atomic<Value> decision_{kUndecided};
};

}  // namespace

std::unique_ptr<IConcurrent> make_atomic_counter() {
  return std::make_unique<AtomicCounter>();
}

std::unique_ptr<IConcurrent> make_cas_register(Value initial) {
  return std::make_unique<CasRegister>(initial);
}

std::unique_ptr<IConcurrent> make_cas_consensus() {
  return std::make_unique<CasConsensus>();
}

}  // namespace selin
