// Michael & Scott lock-free FIFO queue.
//
// Nodes are arena-owned and reclaimed when the queue is destroyed, so the
// implementation is safe against the ABA problem without hazard pointers
// (pointers are never reused while the queue lives).  Base-object steps are
// counted for the step-complexity benchmarks.
#include <atomic>

#include "selin/impls/concurrent.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class MsQueue final : public IConcurrent {
 public:
  MsQueue() {
    Node* sentinel = arena_.create<Node>();
    sentinel->next.store(nullptr, std::memory_order_relaxed);
    head_.store(sentinel, std::memory_order_relaxed);
    tail_.store(sentinel, std::memory_order_relaxed);
  }

  const char* name() const override { return "ms-queue"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kEnqueue:
        enqueue(op.arg);
        return kTrue;
      case Method::kDequeue:
        return dequeue();
      default:
        return kError;
    }
  }

 private:
  struct Node {
    Value value = kNoArg;
    std::atomic<Node*> next{nullptr};
  };

  void enqueue(Value v) {
    Node* node = arena_.create<Node>();
    node->value = v;
    node->next.store(nullptr, std::memory_order_relaxed);
    for (;;) {
      StepCounter::bump();
      Node* last = tail_.load(std::memory_order_acquire);
      StepCounter::bump();
      Node* next = last->next.load(std::memory_order_acquire);
      if (last != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        StepCounter::bump();
        if (last->next.compare_exchange_weak(next, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
          StepCounter::bump();
          tail_.compare_exchange_strong(last, node, std::memory_order_release,
                                        std::memory_order_relaxed);
          return;
        }
      } else {
        StepCounter::bump();
        tail_.compare_exchange_strong(last, next, std::memory_order_release,
                                      std::memory_order_relaxed);
      }
    }
  }

  Value dequeue() {
    for (;;) {
      StepCounter::bump();
      Node* first = head_.load(std::memory_order_acquire);
      StepCounter::bump();
      Node* last = tail_.load(std::memory_order_acquire);
      StepCounter::bump();
      Node* next = first->next.load(std::memory_order_acquire);
      if (first != head_.load(std::memory_order_acquire)) continue;
      if (first == last) {
        if (next == nullptr) return kEmpty;
        StepCounter::bump();
        tail_.compare_exchange_strong(last, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      Value v = next->value;
      StepCounter::bump();
      if (head_.compare_exchange_weak(first, next, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return v;
      }
    }
  }

  Arena arena_;
  alignas(64) std::atomic<Node*> head_;
  alignas(64) std::atomic<Node*> tail_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_ms_queue() {
  return std::make_unique<MsQueue>();
}

}  // namespace selin
