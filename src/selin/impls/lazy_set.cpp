// Lazy list ordered set (Heller et al.): fine-grained per-node locking with
// wait-free Contains.  The blocking counterpart of HarrisSet — same abstract
// object, different progress condition — used to contrast lock-based and
// lock-free implementations under the same verifier (the model covers
// blocking implementations per Section 9.3).
#include <limits>
#include <mutex>

#include "selin/impls/concurrent.hpp"
#include "selin/util/arena.hpp"
#include "selin/util/step_counter.hpp"

namespace selin {
namespace {

class LazySet final : public IConcurrent {
 public:
  LazySet() {
    head_ = arena_.create<Node>();
    head_->key = std::numeric_limits<Value>::min();
    tail_ = arena_.create<Node>();
    tail_->key = std::numeric_limits<Value>::max();
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  const char* name() const override { return "lazy-set"; }

  Value apply(ProcId /*p*/, const OpDesc& op) override {
    switch (op.method) {
      case Method::kInsert:
        return insert(op.arg) ? kTrue : kFalse;
      case Method::kRemove:
        return remove(op.arg) ? kTrue : kFalse;
      case Method::kContains:
        return contains(op.arg) ? kTrue : kFalse;
      default:
        return kError;
    }
  }

 private:
  struct Node {
    Value key = 0;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    std::mutex mu;
  };

  // Walk without locks; lock pred/curr; validate.
  bool validate(Node* pred, Node* curr) {
    StepCounter::bump();
    return !pred->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  template <typename F>
  auto with_window(Value key, F&& body) {
    for (;;) {
      Node* pred = head_;
      StepCounter::bump();
      Node* curr = pred->next.load(std::memory_order_acquire);
      while (curr->key < key) {
        pred = curr;
        StepCounter::bump();
        curr = curr->next.load(std::memory_order_acquire);
      }
      std::scoped_lock lock(pred->mu, curr->mu);
      if (!validate(pred, curr)) continue;
      return body(pred, curr);
    }
  }

  bool insert(Value key) {
    return with_window(key, [&](Node* pred, Node* curr) {
      if (curr->key == key) return false;
      Node* node = arena_.create<Node>();
      node->key = key;
      node->next.store(curr, std::memory_order_relaxed);
      StepCounter::bump();
      pred->next.store(node, std::memory_order_release);
      return true;
    });
  }

  bool remove(Value key) {
    return with_window(key, [&](Node* pred, Node* curr) {
      if (curr->key != key) return false;
      StepCounter::bump();
      curr->marked.store(true, std::memory_order_release);  // logical delete
      StepCounter::bump();
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      return true;
    });
  }

  // Wait-free: one pass, no locks, no retries.
  bool contains(Value key) {
    Node* curr = head_;
    while (curr->key < key) {
      StepCounter::bump();
      curr = curr->next.load(std::memory_order_acquire);
    }
    StepCounter::bump();
    return curr->key == key && !curr->marked.load(std::memory_order_acquire);
  }

  Arena arena_;
  Node* head_;
  Node* tail_;
};

}  // namespace

std::unique_ptr<IConcurrent> make_lazy_set() {
  return std::make_unique<LazySet>();
}

}  // namespace selin
