// Plain-text history serialization.
//
// Lets users check traces captured from *their own* systems with selin's
// membership engine (the Porcupine/lincheck offline-checker workflow), and
// makes witnesses/certificates exportable artifacts for the forensic stage
// of Section 8.3: a self-enforced object's certificate can be written to a
// file, shipped to an auditor, and re-validated with `selin_check`.
//
// Format — one event per line, '#' comments, blank lines ignored:
//
//     inv <pid> <seq> <Method> [arg]
//     res <pid> <seq> <Method> [arg] <result>
//
// where <Method> is the enum spelling (Enqueue, Dequeue, Push, ...), [arg]
// is required exactly for methods that take one, and values are integers or
// the symbolic constants `empty`, `ok`, `true`, `false`, `error`.
//
// Example:
//     inv 0 0 Enqueue 5
//     res 0 0 Enqueue 5 true
//     inv 1 0 Dequeue
//     res 1 0 Dequeue 5
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "selin/history/history.hpp"

namespace selin {

class HistoryParseError : public std::runtime_error {
 public:
  HistoryParseError(size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  size_t line() const { return line_; }

 private:
  size_t line_;
};

/// Parses the format above.  Throws HistoryParseError on malformed lines;
/// the returned history is additionally checked for well-formedness.
History parse_history(std::istream& in);
History parse_history_string(const std::string& text);

/// Serializes a history in the format above (round-trips with parse).
void write_history(std::ostream& out, const History& h);
std::string history_to_string(const History& h);

/// Method-name spellings used by the format.
std::optional<Method> parse_method(const std::string& name);
bool method_takes_arg(Method m);

/// Parses `empty`/`ok`/`true`/`false`/`error` or a decimal integer.
std::optional<Value> parse_value(const std::string& token);

}  // namespace selin
