// Plain-text history serialization.
//
// Lets users check traces captured from *their own* systems with selin's
// membership engine (the Porcupine/lincheck offline-checker workflow), and
// makes witnesses/certificates exportable artifacts for the forensic stage
// of Section 8.3: a self-enforced object's certificate can be written to a
// file, shipped to an auditor, and re-validated with `selin_check`.
//
// Format — one event per line, '#' comments, blank lines ignored:
//
//     inv <pid> <seq> <Method> [arg]
//     res <pid> <seq> <Method> [arg] <result>
//
// where <Method> is the enum spelling (Enqueue, Dequeue, Push, ...), [arg]
// is required exactly for methods that take one, and values are integers or
// the symbolic constants `empty`, `ok`, `true`, `false`, `error`.
//
// Example:
//     inv 0 0 Enqueue 5
//     res 0 0 Enqueue 5 true
//     inv 1 0 Dequeue
//     res 1 0 Dequeue 5
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "selin/history/history.hpp"

namespace selin {

class HistoryParseError : public std::runtime_error {
 public:
  HistoryParseError(size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  size_t line() const { return line_; }

 private:
  size_t line_;
};

/// Parses the format above.  Throws HistoryParseError on malformed lines;
/// the returned history is additionally checked for well-formedness.
History parse_history(std::istream& in);
History parse_history_string(const std::string& text);

/// Parses one line of the format above.  Returns nullopt for blank and
/// comment-only lines; throws HistoryParseError (tagged with `lineno`) on a
/// malformed line.  The building block both parse_history and the streaming
/// reader share.
std::optional<Event> parse_history_line(const std::string& line,
                                        size_t lineno);

/// Incremental, line-at-a-time history reader for streaming consumption —
/// the io front end of the multi-session service: `selin_check --jobs N`
/// interleaves reads from many files through one of these per file, feeding
/// each batch to its session without ever materializing a whole history.
///
/// Well-formedness is enforced *incrementally* with the same rules
/// well_formed() applies to complete histories (no overlapping operations
/// per process, no duplicate op ids, responses match their pending
/// invocation), so a violation surfaces at the offending line instead of at
/// end-of-stream.  The stream must outlive the reader.
class HistoryStreamReader {
 public:
  explicit HistoryStreamReader(std::istream& in) : in_(&in) {}

  /// Next event, or nullopt at end-of-stream.  Throws HistoryParseError on
  /// a malformed line or a well-formedness violation.
  std::optional<Event> next();

  /// Append up to `max` events to `out`; returns the number read (0 = end
  /// of stream).  The batched form sessions feed from.
  size_t read_batch(std::vector<Event>& out, size_t max);

  /// Lines consumed so far (= the line number of the last event returned).
  size_t line() const { return lineno_; }
  /// Events returned so far.
  size_t events() const { return count_; }

 private:
  /// Duplicate-op-id tracking in O(out-of-order degree) memory instead of
  /// O(total ops): seqs [0, contiguous) have all been seen; stragglers
  /// ahead of the contiguous prefix sit in `sparse` until the prefix
  /// absorbs them.  Monotone per-process seqs (what every selin producer
  /// emits) keep this at a single counter per process, so a multi-GB
  /// stream costs the reader O(processes), not O(events).
  struct SeenSeqs {
    uint32_t contiguous = 0;
    std::unordered_set<uint32_t> sparse;

    /// False iff `s` was already seen.
    bool insert(uint32_t s) {
      if (s < contiguous) return false;
      if (s > contiguous) return sparse.insert(s).second;
      ++contiguous;
      for (auto it = sparse.find(contiguous); it != sparse.end();
           it = sparse.find(contiguous)) {
        sparse.erase(it);
        ++contiguous;
      }
      return true;
    }
  };

  std::istream* in_;
  size_t lineno_ = 0;
  size_t count_ = 0;
  std::string linebuf_;
  std::unordered_map<ProcId, OpDesc> pending_;   // per-process open op
  std::unordered_map<ProcId, SeenSeqs> seen_ops_;
};

/// Serializes a history in the format above (round-trips with parse).
void write_history(std::ostream& out, const History& h);
std::string history_to_string(const History& h);

/// Method-name spellings used by the format.
std::optional<Method> parse_method(const std::string& name);
bool method_takes_arg(Method m);

/// Parses `empty`/`ok`/`true`/`false`/`error` or a decimal integer.
std::optional<Value> parse_value(const std::string& token);

}  // namespace selin
