#include "selin/io/history_io.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace selin {

std::optional<Method> parse_method(const std::string& name) {
  static const std::pair<const char*, Method> kTable[] = {
      {"Enqueue", Method::kEnqueue},     {"Dequeue", Method::kDequeue},
      {"Push", Method::kPush},           {"Pop", Method::kPop},
      {"Insert", Method::kInsert},       {"Remove", Method::kRemove},
      {"Contains", Method::kContains},   {"PqInsert", Method::kPqInsert},
      {"PqExtractMin", Method::kPqExtractMin},
      {"Inc", Method::kInc},             {"CounterRead", Method::kCounterRead},
      {"Read", Method::kRead},           {"Write", Method::kWrite},
      {"Decide", Method::kDecide},       {"Exchange", Method::kExchange},
      {"WriteSnap", Method::kWriteSnap},
  };
  for (const auto& [n, m] : kTable) {
    if (name == n) return m;
  }
  return std::nullopt;
}

bool method_takes_arg(Method m) {
  switch (m) {
    case Method::kEnqueue:
    case Method::kPush:
    case Method::kInsert:
    case Method::kRemove:
    case Method::kContains:
    case Method::kPqInsert:
    case Method::kWrite:
    case Method::kDecide:
    case Method::kExchange:
    case Method::kWriteSnap:
      return true;
    default:
      return false;
  }
}

std::optional<Value> parse_value(const std::string& token) {
  if (token == "empty") return kEmpty;
  if (token == "ok") return kOk;
  if (token == "true") return kTrue;
  if (token == "false") return kFalse;
  if (token == "error") return kError;
  try {
    size_t pos = 0;
    Value v = std::stoll(token, &pos);
    if (pos != token.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<Event> parse_history_line(const std::string& input,
                                        size_t lineno) {
  // Tokenize in place (no line copy, no istringstream): this runs once per
  // line of every streamed file, and tokens are short enough for SSO.
  std::string_view line(input);
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tok;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos > start) tok.emplace_back(line.substr(start, pos - start));
  }
  if (tok.empty()) return std::nullopt;

  if (tok[0] != "inv" && tok[0] != "res") {
    throw HistoryParseError(lineno,
                            "expected 'inv' or 'res', got '" + tok[0] + "'");
  }
  bool is_inv = tok[0] == "inv";
  if (tok.size() < 4) {
    throw HistoryParseError(lineno, "too few fields");
  }
  OpDesc op;
  try {
    op.id.pid = static_cast<ProcId>(std::stoul(tok[1]));
    op.id.seq = static_cast<uint32_t>(std::stoul(tok[2]));
  } catch (const std::exception&) {
    throw HistoryParseError(lineno, "bad pid/seq");
  }
  auto m = parse_method(tok[3]);
  if (!m.has_value()) {
    throw HistoryParseError(lineno, "unknown method '" + tok[3] + "'");
  }
  op.method = *m;
  size_t next = 4;
  if (method_takes_arg(*m)) {
    if (tok.size() <= next) {
      throw HistoryParseError(lineno, "method requires an argument");
    }
    auto arg = parse_value(tok[next++]);
    if (!arg.has_value()) throw HistoryParseError(lineno, "bad argument");
    op.arg = *arg;
  }
  if (is_inv) {
    if (tok.size() != next) {
      throw HistoryParseError(lineno, "trailing tokens on invocation");
    }
    return Event::inv(op);
  }
  if (tok.size() != next + 1) {
    throw HistoryParseError(lineno, "response requires exactly one result");
  }
  auto res = parse_value(tok[next]);
  if (!res.has_value()) throw HistoryParseError(lineno, "bad result");
  return Event::res(op, *res);
}

std::optional<Event> HistoryStreamReader::next() {
  while (std::getline(*in_, linebuf_)) {
    ++lineno_;
    std::optional<Event> e = parse_history_line(linebuf_, lineno_);
    if (!e.has_value()) continue;
    // Incremental well-formedness, same rules as well_formed(): violations
    // surface at the offending line rather than at end-of-stream.
    const ProcId p = e->op.id.pid;
    auto it = pending_.find(p);
    if (e->is_inv()) {
      if (it != pending_.end()) {
        throw HistoryParseError(
            lineno_, "history not well-formed: process p" + std::to_string(p) +
                         " invokes while an operation is pending");
      }
      if (!seen_ops_[p].insert(e->op.id.seq)) {
        throw HistoryParseError(
            lineno_,
            "history not well-formed: duplicate invocation of " +
                to_string(e->op));
      }
      pending_.emplace(p, e->op);
    } else {
      if (it == pending_.end()) {
        throw HistoryParseError(
            lineno_, "history not well-formed: response without pending "
                     "invocation: " + to_string(*e));
      }
      if (!(it->second == e->op)) {
        throw HistoryParseError(
            lineno_, "history not well-formed: response " + to_string(*e) +
                         " does not match pending invocation");
      }
      pending_.erase(it);
    }
    ++count_;
    return e;
  }
  return std::nullopt;
}

size_t HistoryStreamReader::read_batch(std::vector<Event>& out, size_t max) {
  size_t n = 0;
  while (n < max) {
    std::optional<Event> e = next();
    if (!e.has_value()) break;
    out.push_back(*e);
    ++n;
  }
  return n;
}

History parse_history(std::istream& in) {
  HistoryStreamReader reader(in);
  History h;
  while (std::optional<Event> e = reader.next()) h.push_back(*e);
  return h;
}

History parse_history_string(const std::string& text) {
  std::istringstream in(text);
  return parse_history(in);
}

namespace {

const char* method_spelling(Method m) {
  switch (m) {
    case Method::kEnqueue: return "Enqueue";
    case Method::kDequeue: return "Dequeue";
    case Method::kPush: return "Push";
    case Method::kPop: return "Pop";
    case Method::kInsert: return "Insert";
    case Method::kRemove: return "Remove";
    case Method::kContains: return "Contains";
    case Method::kPqInsert: return "PqInsert";
    case Method::kPqExtractMin: return "PqExtractMin";
    case Method::kInc: return "Inc";
    case Method::kCounterRead: return "CounterRead";
    case Method::kRead: return "Read";
    case Method::kWrite: return "Write";
    case Method::kDecide: return "Decide";
    case Method::kExchange: return "Exchange";
    case Method::kWriteSnap: return "WriteSnap";
  }
  return "?";
}

std::string value_token(Value v) {
  if (v == kEmpty) return "empty";
  if (v == kOk) return "ok";
  if (v == kError) return "error";
  return std::to_string(v);
}

}  // namespace

void write_history(std::ostream& out, const History& h) {
  for (const Event& e : h) {
    out << (e.is_inv() ? "inv " : "res ") << e.op.id.pid << " " << e.op.id.seq
        << " " << method_spelling(e.op.method);
    if (method_takes_arg(e.op.method)) out << " " << value_token(e.op.arg);
    if (e.is_res()) out << " " << value_token(e.result);
    out << "\n";
  }
}

std::string history_to_string(const History& h) {
  std::ostringstream os;
  write_history(os, h);
  return os.str();
}

}  // namespace selin
