// Decoupled self-enforced implementation D_{O,A} (Figure 12, Section 9.2).
//
// Response production and verification are split: *producers* call apply(),
// which runs A* and publishes the 4-tuple but does NOT check (their Apply is
// Lines 01-05 of Figure 12 — constant extra work over A*); *verifiers* run
// verify_once() in a loop (Lines 06-12), snapshotting M and testing X(τ_j).
//
// Unlike V_{O,A}, D_{O,A} may return responses that are later found
// incorrect — the paper's trade-off: lower producer latency for detection
// lag.  Eventually the verifiers detect any non-GenLin behavior, assuming
// not all of them crash.  bench_decoupled measures both sides (B4).
//
// This split is where the modern engine pays off most: a verifier pass
// merges *every* record published since its last pass and feeds them as one
// dirty batch, so the fingerprinted feed_batch path runs one closure per
// response run instead of one full membership pass per operation — the
// deployment shape where many producers share few checking contexts (and
// many Decoupled instances share one injected executor) gets the batched
// amortization end to end.  Options carries those knobs; the positional
// constructor keeps the seed-era sequential defaults for A/B comparison.
#pragma once

#include <atomic>
#include <functional>

#include "selin/core/astar.hpp"
#include "selin/core/monitor_core.hpp"

namespace selin {

class Decoupled {
 public:
  using ErrorReport =
      std::function<void(size_t verifier, const History& witness)>;

  struct Options {
    SnapshotKind announce_snapshot = SnapshotKind::kDoubleCollect;
    SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect;
    AStarTraceSink* trace = nullptr;
    /// Membership-engine knobs (see MonitorCore::Options).
    size_t checker_threads = 0;
    engine::TunerPriors priors{};
    std::shared_ptr<parallel::Executor> executor;
    const obs::LeveledHooks* obs = nullptr;
  };

  /// n producer slots over black-box `a`, n_verifiers checking contexts.
  Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
            const GenLinObject& obj, ErrorReport on_error, Options options);

  Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
            const GenLinObject& obj, ErrorReport on_error = {},
            SnapshotKind announce_snapshot = SnapshotKind::kDoubleCollect,
            SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect);

  /// Producer operation (Figure 12, Lines 01-05): returns y_i immediately.
  Value apply(ProcId i, Method m, Value arg = kNoArg);

  /// One iteration of verifier v's loop (Figure 12, Lines 07-11).  Returns
  /// the verdict; on a genuine rejection, reports (ERROR, X(τ_v)) through
  /// the callback.  A budget overflow settles the verifier sticky-false
  /// without a report — there is no witness to hand out, only "unknown".
  bool verify_once(size_t v);

  History witness(size_t v) const { return core_.sketch(v); }

  uint64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Verifier passes that ended in budget overflow (each settled verifier
  /// counts once).
  uint64_t overflow_count() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  bool overflowed(size_t v) const { return core_.overflowed(v); }

  /// Aggregated engine counters of the verifier monitors.
  engine::EngineStats stats() const { return core_.stats(); }

  size_t producers() const { return astar_.procs(); }
  size_t verifiers() const { return core_.checkers(); }

 private:
  AStar astar_;
  MonitorCore core_;
  ErrorReport on_error_;
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> overflows_{0};
};

}  // namespace selin
