// Decoupled self-enforced implementation D_{O,A} (Figure 12, Section 9.2).
//
// Response production and verification are split: *producers* call apply(),
// which runs A* and publishes the 4-tuple but does NOT check (their Apply is
// Lines 01-05 of Figure 12 — constant extra work over A*); *verifiers* run
// verify_once() in a loop (Lines 06-12), snapshotting M and testing X(τ_j).
//
// Unlike V_{O,A}, D_{O,A} may return responses that are later found
// incorrect — the paper's trade-off: lower producer latency for detection
// lag.  Eventually the verifiers detect any non-GenLin behavior, assuming
// not all of them crash.  bench_decoupled measures both sides (B4).
#pragma once

#include <atomic>
#include <functional>

#include "selin/core/astar.hpp"
#include "selin/core/monitor_core.hpp"

namespace selin {

class Decoupled {
 public:
  using ErrorReport =
      std::function<void(size_t verifier, const History& witness)>;

  /// n producer slots over black-box `a`, n_verifiers checking contexts.
  Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
            const GenLinObject& obj, ErrorReport on_error = {},
            SnapshotKind announce_snapshot = SnapshotKind::kDoubleCollect,
            SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect);

  /// Producer operation (Figure 12, Lines 01-05): returns y_i immediately.
  Value apply(ProcId i, Method m, Value arg = kNoArg);

  /// One iteration of verifier v's loop (Figure 12, Lines 07-11).  Returns
  /// the verdict; on false, reports (ERROR, X(τ_v)) through the callback.
  bool verify_once(size_t v);

  History witness(size_t v) const { return core_.sketch(v); }

  uint64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }

  size_t producers() const { return astar_.procs(); }
  size_t verifiers() const { return core_.checkers(); }

 private:
  AStar astar_;
  MonitorCore core_;
  ErrorReport on_error_;
  std::atomic<uint64_t> errors_{0};
};

}  // namespace selin
