// Shared machinery of the verifier algorithms (Figures 10, 11, 12): the
// snapshot object M holding per-producer grow-only sets of λ-records, plus
// per-checker incremental X(τ) construction and membership evaluation.
//
// Producers publish 4-tuples (Lines 06-07 of Figure 10 / 03-04 of Figure 11
// / 03-04 of Figure 12); checkers snapshot M, merge the newly visible
// records into their private XBuilder, and re-evaluate membership through
// their private LeveledChecker (Lines 08-10).  All cross-thread
// communication goes through the snapshot object — read/write base objects
// only, per Theorem 8.1(1).
#pragma once

#include <memory>
#include <vector>

#include "selin/snapshot/snapshot.hpp"
#include "selin/spec/spec.hpp"
#include "selin/views/leveled_history.hpp"

namespace selin {

/// One published λ-record in a producer's grow-only chain.
struct RecNode {
  LambdaRecord rec;
  const RecNode* next;
  uint32_t len;
};

class MonitorCore {
 public:
  /// n_producers writable entries in M; n_checkers independent checking
  /// contexts (per-process in Figures 10/11; per-verifier in Figure 12).
  /// `checker_threads` is forwarded to each checker's membership monitors
  /// (0 = the object's default; > 1 runs the membership test P_O on the
  /// parallel sharded frontier engine; engine::kAutoThreads picks
  /// sequential vs sharded per feed round, optionally | engine::kTuneFlag
  /// for stats-feedback tuning — the monitor threads belong to the checker
  /// that owns them, so the wait-free cross-thread protocol through M is
  /// unchanged).  Any parallel request also turns on the leveled checkers'
  /// deferred snapshotting, moving checkpoint clones onto snapshot lanes.
  /// `executor` (nullptr = private lazily-created pools) is the shared lane
  /// provider for those snapshot lanes; pass the executor the GenLinObject
  /// was built with to keep one bounded thread pool across N cores'
  /// checkers in a multi-tenant deployment.
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              SnapshotKind kind = SnapshotKind::kDoubleCollect,
              size_t checker_threads = 0,
              std::shared_ptr<parallel::Executor> executor = nullptr);

  /// Same, with a caller-provided record object M (e.g. ABD, Section 9.4).
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              std::unique_ptr<Snapshot<const RecNode*>> m,
              size_t checker_threads = 0,
              std::shared_ptr<parallel::Executor> executor = nullptr);
  ~MonitorCore();

  /// res_i ← res_i ∪ {(p_i, op_i, y_i, λ_i)}; M.Write(res_i).
  void publish(ProcId producer, const OpDesc& op, Value y, View view);

  /// One checking pass for `checker`: M.Snapshot(), τ ← union, rebuild the
  /// affected suffix of X(τ) and return the verdict X(τ) ∈ O.
  bool check(size_t checker);

  /// X(τ) of this checker's latest pass — the ERROR witness (Theorem 8.1)
  /// and the certificate of Theorem 8.2(3).
  History sketch(size_t checker) const;

  /// λ-records currently merged by this checker (diagnostics).
  size_t record_count(size_t checker) const;

  const GenLinObject& object() const { return *obj_; }
  size_t producers() const { return producers_.size(); }
  size_t checkers() const { return checkers_.size(); }

 private:
  struct alignas(64) ProducerSlot {
    const RecNode* head = nullptr;
    std::vector<std::unique_ptr<RecNode>> owned;  // reclaimed at destruction
  };
  struct alignas(64) CheckerSlot {
    std::vector<const RecNode*> seen;  // last merged head per producer
    std::vector<const RecNode*> fresh_scratch;  // reused across check() calls
    std::vector<size_t> dirty_scratch;  // dirty levels of the current pass
    XBuilder builder;
    std::unique_ptr<LeveledChecker> checker;
  };

  const GenLinObject* obj_;
  std::unique_ptr<Snapshot<const RecNode*>> m_;  // the object M
  std::vector<ProducerSlot> producers_;
  std::vector<CheckerSlot> checkers_;
};

}  // namespace selin
