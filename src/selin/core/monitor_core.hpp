// Shared machinery of the verifier algorithms (Figures 10, 11, 12): the
// snapshot object M holding per-producer grow-only sets of λ-records, plus
// per-checker incremental X(τ) construction and membership evaluation.
//
// Producers publish 4-tuples (Lines 06-07 of Figure 10 / 03-04 of Figure 11
// / 03-04 of Figure 12); checkers snapshot M, merge the newly visible
// records into their private XBuilder, and re-evaluate membership through
// their private LeveledChecker (Lines 08-10).  All cross-thread
// communication goes through the snapshot object — read/write base objects
// only, per Theorem 8.1(1).
//
// The checking side rides the modern membership engine: each checker's
// LeveledChecker feeds stride segments through feed_batch into a
// fingerprinted FrontierEngine monitor, and Options carries the engine
// knobs (threads=auto, TunerPriors, a shared parallel::Executor, obs
// hooks) so enforcement deployments get the same batched/adaptive hot path
// as plain history checking.  An exploration-budget overflow
// (CheckerOverflow) is absorbed into a sticky per-checker kOverflowed
// status instead of escaping the wait-free loop.
#pragma once

#include <memory>
#include <vector>

#include "selin/engine/stats.hpp"
#include "selin/snapshot/snapshot.hpp"
#include "selin/spec/spec.hpp"
#include "selin/views/leveled_history.hpp"

namespace selin::obs {
struct LeveledHooks;  // obs/hooks.hpp — instrumentation bundle, borrowed
}  // namespace selin::obs

namespace selin {

/// One published λ-record in a producer's grow-only chain.
struct RecNode {
  LambdaRecord rec;
  const RecNode* next;
  uint32_t len;
};

class MonitorCore {
 public:
  /// Engine knobs shared by every checker context.  Defaults reproduce the
  /// seed-era fully sequential discipline, so the unported call sites (and
  /// the A/B baseline arms in bench_self_enforced) are unchanged.
  struct Options {
    /// Snapshot flavor for a core-built M (ignored when the caller provides
    /// M, e.g. the ABD record object).
    SnapshotKind snapshot = SnapshotKind::kDoubleCollect;
    /// Forwarded to each checker's membership monitors (0 = the object's
    /// default; > 1 runs the membership test P_O on the parallel sharded
    /// frontier engine; engine::kAutoThreads picks sequential vs sharded
    /// per feed round, optionally | engine::kTuneFlag for stats-feedback
    /// tuning — the monitor threads belong to the checker that owns them,
    /// so the wait-free cross-thread protocol through M is unchanged).  Any
    /// parallel request also turns on the leveled checkers' deferred
    /// snapshotting, moving checkpoint clones onto snapshot lanes.
    size_t checker_threads = 0;
    /// Warm-start seeds for the checkers (stride/stripe reach the leveled
    /// checkpoint policy; the engine fields ride into the monitors via the
    /// GenLinObject's own priors).  Zero fields keep the defaults.
    engine::TunerPriors priors{};
    /// Shared lane provider for the checkers' snapshot lanes (nullptr =
    /// private lazily-created pools).  Pass the executor the GenLinObject
    /// was built with to keep one bounded thread pool across N enforced
    /// objects' checkers in a multi-tenant deployment.
    std::shared_ptr<parallel::Executor> executor;
    /// Instrumentation bundle attached to every checker (and through it to
    /// the membership monitors); must outlive the core.  nullptr = none.
    const obs::LeveledHooks* obs = nullptr;
  };

  /// Verdict state of one checking context.  kOverflowed means the
  /// exploration budget was exceeded: membership is *unknown*, the status
  /// is sticky, and check() keeps returning false without re-raising —
  /// enforcement treats it as a (conservative) permanent error, per the
  /// sticky-after-prefix shape of Theorem 8.2.
  enum class CheckStatus { kOk, kRejected, kOverflowed };

  /// n_producers writable entries in M; n_checkers independent checking
  /// contexts (per-process in Figures 10/11; per-verifier in Figure 12).
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              const Options& options);

  /// Same, with a caller-provided record object M (e.g. ABD, Section 9.4).
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              std::unique_ptr<Snapshot<const RecNode*>> m,
              const Options& options);

  /// Seed-era signatures, kept delegating so existing call sites (and the
  /// sequential A/B baseline) compile unchanged.
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              SnapshotKind kind = SnapshotKind::kDoubleCollect,
              size_t checker_threads = 0,
              std::shared_ptr<parallel::Executor> executor = nullptr);
  MonitorCore(size_t n_producers, size_t n_checkers, const GenLinObject& obj,
              std::unique_ptr<Snapshot<const RecNode*>> m,
              size_t checker_threads = 0,
              std::shared_ptr<parallel::Executor> executor = nullptr);
  ~MonitorCore();

  /// res_i ← res_i ∪ {(p_i, op_i, y_i, λ_i)}; M.Write(res_i).
  void publish(ProcId producer, const OpDesc& op, Value y, View view);

  /// One checking pass for `checker`: M.Snapshot(), τ ← union, rebuild the
  /// affected suffix of X(τ) and return the verdict X(τ) ∈ O.  An overflow
  /// of the monitor's exploration budget settles the checker at
  /// kOverflowed; from then on check() returns false without merging.
  bool check(size_t checker);

  /// Verdict state of `checker`'s latest pass (sticky once not kOk).
  CheckStatus check_status(size_t checker) const {
    return checkers_[checker].status;
  }
  bool overflowed(size_t checker) const {
    return checkers_[checker].status == CheckStatus::kOverflowed;
  }

  /// X(τ) of this checker's latest pass — the ERROR witness (Theorem 8.1)
  /// and the certificate of Theorem 8.2(3).
  History sketch(size_t checker) const;

  /// λ-records currently merged by this checker (diagnostics).
  size_t record_count(size_t checker) const;

  /// Engine counters of one checker's live monitor.
  engine::EngineStats checker_stats(size_t checker) const;

  /// Engine counters aggregated across all checkers (engine::accumulate) —
  /// what an enforced object reports under --stats-json / --metrics.
  engine::EngineStats stats() const;

  const GenLinObject& object() const { return *obj_; }
  size_t producers() const { return producers_.size(); }
  size_t checkers() const { return checkers_.size(); }

 private:
  struct alignas(64) ProducerSlot {
    const RecNode* head = nullptr;
    std::vector<std::unique_ptr<RecNode>> owned;  // reclaimed at destruction
  };
  struct alignas(64) CheckerSlot {
    std::vector<const RecNode*> seen;  // last merged head per producer
    std::vector<const RecNode*> fresh_scratch;  // reused across check() calls
    std::vector<size_t> dirty_scratch;  // dirty levels of the current pass
    XBuilder builder;
    std::unique_ptr<LeveledChecker> checker;
    CheckStatus status = CheckStatus::kOk;
  };

  void init_checkers(size_t n_producers, const Options& options);

  const GenLinObject* obj_;
  std::unique_ptr<Snapshot<const RecNode*>> m_;  // the object M
  std::vector<ProducerSlot> producers_;
  std::vector<CheckerSlot> checkers_;
};

}  // namespace selin
