#include "selin/core/self_enforced.hpp"

namespace selin {

SelfEnforced::SelfEnforced(size_t n, IConcurrent& a, const GenLinObject& obj,
                           Options options)
    : astar_(n, a, options.announce_snapshot, options.trace),
      core_(n, n, obj,
            MonitorCore::Options{options.monitor_snapshot,
                                 options.checker_threads, options.priors,
                                 std::move(options.executor), options.obs}) {}

SelfEnforced::Outcome SelfEnforced::apply(ProcId i, Method m, Value arg) {
  // Lines 01-02: (y_i, λ_i) ← Apply(op_i) of A*.
  AStar::Result r = astar_.apply(i, m, arg);
  // Lines 03-04: res_i ← res_i ∪ {(p_i, op_i, y_i, λ_i)}; M.Write(res_i).
  core_.publish(i, r.op, r.y, std::move(r.view));
  // Lines 05-07: τ_i ← union of M.Snapshot(); test X(τ_i) ∈ O.
  bool ok = core_.check(i);
  if (ok) {
    return Outcome{r.y, false, false};  // Line 08
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  // Line 10 (witness via certificate()); overflow marks a budget exhaustion
  // rather than a proven violation — sticky either way.
  return Outcome{kError, true, core_.overflowed(i)};
}

}  // namespace selin
