#include "selin/core/astar.hpp"

#include <stdexcept>

namespace selin {

AStar::AStar(size_t n, IConcurrent& a, SnapshotKind kind, AStarTraceSink* sink)
    : a_(&a),
      sink_(sink),
      announce_(make_snapshot<const SetNode*>(kind, n, nullptr)),
      per_proc_(n) {}

AStar::AStar(size_t n, IConcurrent& a,
             std::unique_ptr<Snapshot<const SetNode*>> announce,
             AStarTraceSink* sink)
    : a_(&a), sink_(sink), announce_(std::move(announce)), per_proc_(n) {
  if (announce_->size() < n) {
    throw std::invalid_argument("AStar: snapshot smaller than process count");
  }
}

AStar::Result AStar::apply(ProcId i, Method m, Value arg) {
  OpDesc op;
  op.id = OpId{i, per_proc_[i].next_seq++};
  op.method = m;
  op.arg = arg;
  return apply_op(i, op);
}

AStar::Result AStar::apply_op(ProcId i, const OpDesc& op) {
  if (i >= per_proc_.size() || op.id.pid != i) {
    throw std::invalid_argument("AStar::apply_op: bad process id");
  }
  PerProc& pp = per_proc_[i];

  // Line 01: set_i ← set_i ∪ {(p_i, op_i)} — prepend to the immutable chain.
  auto* node = arena_.create<SetNode>(
      SetNode{op, pp.head, pp.head == nullptr ? 1u : pp.head->len + 1});
  pp.head = node;

  // Line 02: N.Write(set_i).
  announce_->write(i, node);
  if (sink_ != nullptr) sink_->on_write(op);

  // Lines 03-04: the black-box call into A.
  Value y = a_->apply(i, op);

  // Lines 05-06: λ_i ← union of a Snapshot of N.
  std::vector<const SetNode*> heads = announce_->scan(i);
  View view(std::move(heads));
  if (sink_ != nullptr) sink_->on_snap(op, y);

  // Line 07.
  return Result{y, std::move(view), op};
}

OpDesc SteppedAStar::announce(ProcId i, Method m, Value arg) {
  if (i >= open_.size()) throw std::invalid_argument("SteppedAStar: pid");
  Open& o = open_[i];
  if (o.active) throw std::logic_error("SteppedAStar: operation already open");
  AStar::PerProc& pp = astar_->per_proc_[i];
  OpDesc op;
  op.id = OpId{i, pp.next_seq++};
  op.method = m;
  op.arg = arg;
  auto* node = astar_->arena_.create<SetNode>(
      SetNode{op, pp.head, pp.head == nullptr ? 1u : pp.head->len + 1});
  pp.head = node;
  astar_->announce_->write(i, node);
  if (astar_->sink_ != nullptr) astar_->sink_->on_write(op);
  o = Open{op, kNoArg, false, true};
  return op;
}

Value SteppedAStar::invoke(ProcId i) {
  Open& o = open_[i];
  if (!o.active || o.invoked) throw std::logic_error("SteppedAStar: invoke");
  o.y = astar_->a_->apply(i, o.op);
  o.invoked = true;
  return o.y;
}

AStar::Result SteppedAStar::complete(ProcId i) {
  Open& o = open_[i];
  if (!o.active || !o.invoked) throw std::logic_error("SteppedAStar: complete");
  std::vector<const SetNode*> heads = astar_->announce_->scan(i);
  View view(std::move(heads));
  if (astar_->sink_ != nullptr) astar_->sink_->on_snap(o.op, o.y);
  AStar::Result r{o.y, std::move(view), o.op};
  o.active = false;
  return r;
}

AStar::Result SteppedAStar::run_all(ProcId i, Method m, Value arg) {
  announce(i, m, arg);
  invoke(i);
  return complete(i);
}

}  // namespace selin
