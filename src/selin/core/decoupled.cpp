#include "selin/core/decoupled.hpp"

namespace selin {

Decoupled::Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
                     const GenLinObject& obj, ErrorReport on_error,
                     Options options)
    : astar_(n_producers, a, options.announce_snapshot, options.trace),
      core_(n_producers, n_verifiers, obj,
            MonitorCore::Options{options.monitor_snapshot,
                                 options.checker_threads, options.priors,
                                 std::move(options.executor), options.obs}),
      on_error_(std::move(on_error)) {}

Decoupled::Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
                     const GenLinObject& obj, ErrorReport on_error,
                     SnapshotKind announce_snapshot,
                     SnapshotKind monitor_snapshot)
    : Decoupled(n_producers, n_verifiers, a, obj, std::move(on_error),
                Options{announce_snapshot, monitor_snapshot}) {}

Value Decoupled::apply(ProcId i, Method m, Value arg) {
  // Lines 01-02: (y_i, λ_i) ← Apply(op_i) of A*.
  AStar::Result r = astar_.apply(i, m, arg);
  // Lines 03-04: publish the 4-tuple for the verifiers.
  core_.publish(i, r.op, r.y, std::move(r.view));
  // Line 05: return y_i without checking.
  return r.y;
}

bool Decoupled::verify_once(size_t v) {
  bool was_overflowed = core_.overflowed(v);
  // Lines 07-09: τ_v ← union of M.Snapshot(); Line 09: test X(τ_v) ∈ O.
  bool ok = core_.check(v);
  if (!ok) {
    if (core_.overflowed(v)) {
      if (!was_overflowed) {
        overflows_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Line 10: report (ERROR, X(τ_v)).
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (on_error_) on_error_(v, core_.sketch(v));
    }
  }
  return ok;
}

}  // namespace selin
