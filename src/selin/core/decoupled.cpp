#include "selin/core/decoupled.hpp"

namespace selin {

Decoupled::Decoupled(size_t n_producers, size_t n_verifiers, IConcurrent& a,
                     const GenLinObject& obj, ErrorReport on_error,
                     SnapshotKind announce_snapshot,
                     SnapshotKind monitor_snapshot)
    : astar_(n_producers, a, announce_snapshot),
      core_(n_producers, n_verifiers, obj, monitor_snapshot),
      on_error_(std::move(on_error)) {}

Value Decoupled::apply(ProcId i, Method m, Value arg) {
  // Lines 01-02: (y_i, λ_i) ← Apply(op_i) of A*.
  AStar::Result r = astar_.apply(i, m, arg);
  // Lines 03-04: publish the 4-tuple for the verifiers.
  core_.publish(i, r.op, r.y, std::move(r.view));
  // Line 05: return y_i without checking.
  return r.y;
}

bool Decoupled::verify_once(size_t v) {
  // Lines 07-09: τ_v ← union of M.Snapshot(); Line 09: test X(τ_v) ∈ O.
  bool ok = core_.check(v);
  if (!ok) {
    // Line 10: report (ERROR, X(τ_v)).
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (on_error_) on_error_(v, core_.sketch(v));
  }
  return ok;
}

}  // namespace selin
