#include "selin/core/monitor_core.hpp"

#include <algorithm>

#include "selin/lincheck/checker.hpp"

namespace selin {

namespace {

// Checker contexts whose monitors run a parallel engine also shed their
// checkpoint clones onto snapshot lanes; sequential deployments keep the
// fully synchronous (and thread-free) discipline.  TunerPriors seed the
// leveled checkpoint policy here; their engine fields travel with the
// GenLinObject itself (make_linearizable_object's priors parameter).
LeveledChecker::Options checker_options(const MonitorCore::Options& core) {
  LeveledChecker::Options opts;
  opts.threads = core.checker_threads;
  if (core.priors.stride != 0) opts.stride = core.priors.stride;
  if (core.priors.stripe != 0) opts.stripe = core.priors.stripe;
  const bool parallel = engine::is_auto_threads(core.checker_threads) ||
                        core.checker_threads > 1;
  opts.snapshot_lanes = parallel ? 2 : 0;
  opts.executor = core.executor;
  return opts;
}

}  // namespace

void MonitorCore::init_checkers(size_t n_producers, const Options& options) {
  for (CheckerSlot& c : checkers_) {
    c.seen.assign(n_producers, nullptr);
    c.checker =
        std::make_unique<LeveledChecker>(*obj_, checker_options(options));
    if (options.obs != nullptr) c.checker->set_obs(options.obs);
  }
}

MonitorCore::MonitorCore(size_t n_producers, size_t n_checkers,
                         const GenLinObject& obj, const Options& options)
    : obj_(&obj),
      m_(make_snapshot<const RecNode*>(options.snapshot, n_producers,
                                       nullptr)),
      producers_(n_producers),
      checkers_(n_checkers) {
  init_checkers(n_producers, options);
}

MonitorCore::MonitorCore(size_t n_producers, size_t n_checkers,
                         const GenLinObject& obj,
                         std::unique_ptr<Snapshot<const RecNode*>> m,
                         const Options& options)
    : obj_(&obj),
      m_(std::move(m)),
      producers_(n_producers),
      checkers_(n_checkers) {
  init_checkers(n_producers, options);
}

MonitorCore::MonitorCore(size_t n_producers, size_t n_checkers,
                         const GenLinObject& obj, SnapshotKind kind,
                         size_t checker_threads,
                         std::shared_ptr<parallel::Executor> executor)
    : MonitorCore(n_producers, n_checkers, obj,
                  Options{kind, checker_threads, {}, std::move(executor),
                          nullptr}) {}

MonitorCore::MonitorCore(size_t n_producers, size_t n_checkers,
                         const GenLinObject& obj,
                         std::unique_ptr<Snapshot<const RecNode*>> m,
                         size_t checker_threads,
                         std::shared_ptr<parallel::Executor> executor)
    : MonitorCore(n_producers, n_checkers, obj, std::move(m),
                  Options{SnapshotKind::kDoubleCollect, checker_threads, {},
                          std::move(executor), nullptr}) {}

MonitorCore::~MonitorCore() = default;

void MonitorCore::publish(ProcId producer, const OpDesc& op, Value y,
                          View view) {
  ProducerSlot& slot = producers_[producer];
  auto node = std::make_unique<RecNode>(
      RecNode{LambdaRecord{op, y, std::move(view)}, slot.head,
              slot.head == nullptr ? 1u : slot.head->len + 1});
  slot.head = node.get();
  slot.owned.push_back(std::move(node));
  // M.Write: publishes the chain head; the release store in the snapshot
  // implementation makes the record contents visible to scanning checkers.
  m_->write(producer, slot.head);
}

bool MonitorCore::check(size_t checker) {
  CheckerSlot& cs = checkers_[checker];
  // A settled overflow never clears: membership is unknown and the merged
  // X(τ) may be missing records, so re-merging could only produce a verdict
  // we cannot trust.  Skip the snapshot entirely.
  if (cs.status == CheckStatus::kOverflowed) return false;
  // Line 08: s ← M.Snapshot(); Line 09: τ ← union of entries.  The union is
  // merged incrementally: only chain segments beyond the previously seen
  // heads are new.
  std::vector<const RecNode*> heads = m_->scan(0);
  std::vector<size_t>& dirty = cs.dirty_scratch;
  dirty.clear();
  for (size_t j = 0; j < heads.size(); ++j) {
    const RecNode* h = heads[j];
    const RecNode* old = cs.seen[j];
    uint32_t old_len = old == nullptr ? 0 : old->len;
    // Collect the new records oldest-first (chains link newest→oldest).
    std::vector<const RecNode*>& fresh = cs.fresh_scratch;
    fresh.clear();
    for (const RecNode* n = h; n != nullptr && n->len > old_len; n = n->next) {
      fresh.push_back(n);
    }
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      dirty.push_back(cs.builder.add(&(*it)->rec));
    }
    cs.seen[j] = h;
  }
  bool ok;
  if (!dirty.empty()) {
    // Line 10: the membership test X(τ) ∈ O, resumed once below the lowest
    // level the merge touched.  The checker receives the merge's whole
    // dirty-level batch (not just its minimum) so the storm shape is
    // visible where the checkpoint/replay decisions are made.
    try {
      ok = cs.checker->resync(cs.builder, dirty);
    } catch (const CheckerOverflow&) {
      cs.status = CheckStatus::kOverflowed;
      return false;
    }
  } else {
    ok = cs.checker->ok();
  }
  cs.status = ok ? CheckStatus::kOk : CheckStatus::kRejected;
  return ok;
}

History MonitorCore::sketch(size_t checker) const {
  return checkers_[checker].builder.flatten();
}

size_t MonitorCore::record_count(size_t checker) const {
  return checkers_[checker].builder.record_count();
}

engine::EngineStats MonitorCore::checker_stats(size_t checker) const {
  return checkers_[checker].checker->stats();
}

engine::EngineStats MonitorCore::stats() const {
  engine::EngineStats total;
  total.lanes = 0;  // all-zero identity for the max-merged fields
  for (const CheckerSlot& cs : checkers_) {
    engine::accumulate(total, cs.checker->stats());
  }
  if (total.lanes == 0) total.lanes = 1;
  return total;
}

}  // namespace selin
