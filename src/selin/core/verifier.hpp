// The wait-free predictive verifier V_O (Figure 10, Theorem 8.1).
//
// V_O interacts with an arbitrary input implementation A* ∈ DRV: it invokes
// Apply, receives (y_i, λ_i), exchanges 4-tuples through the snapshot object
// M, and locally tests X(τ_i) ∈ O, reporting (ERROR, X(τ_i)) on failure.
// The while-loop body of Figure 10 is the step() method; the workload (the
// "non-deterministically chosen operation" of Line 03) is supplied by the
// caller, which is how clients C drive the verifier in the interactive model
// of Section 3.
//
// Properties (Theorem 8.1): read/write base objects only with O(n) step
// complexity (per snapshot scan of [63]; O(n^2) with our Afek snapshot);
// predictive soundness — every report carries a witness history *of A**;
// completeness — a non-GenLin prefix eventually triggers ERROR at some
// process; soundness for correct A; and stability — after some prefix every
// iteration keeps reporting.
#pragma once

#include <atomic>
#include <functional>

#include "selin/core/astar.hpp"
#include "selin/core/monitor_core.hpp"

namespace selin {

class Verifier {
 public:
  /// Called on Line 11: report (ERROR, X(τ_i)).  May be invoked concurrently
  /// from multiple process threads; implementations must be thread-safe.
  using ErrorReport =
      std::function<void(ProcId reporter, const History& witness)>;

  struct Options {
    SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect;
    /// Membership-engine knobs (see MonitorCore::Options); defaults keep
    /// the seed-era sequential checker.
    size_t checker_threads = 0;
    engine::TunerPriors priors{};
    std::shared_ptr<parallel::Executor> executor;
    const obs::LeveledHooks* obs = nullptr;
  };

  /// Verifies the DRV implementation `astar` against `obj`; both must
  /// outlive the verifier.
  Verifier(AStar& astar, const GenLinObject& obj, ErrorReport on_error,
           Options options);
  Verifier(AStar& astar, const GenLinObject& obj, ErrorReport on_error = {},
           SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect);

  /// One iteration of the Figure 10 while loop for process i, with op chosen
  /// by the caller.  Returns the response from A* (the interaction continues
  /// after ERROR, as in the paper's model).
  Value step(ProcId i, Method m, Value arg = kNoArg);

  /// Total ERROR reports so far.
  uint64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// X(τ_i) from process i's latest iteration.
  History sketch(ProcId i) const { return core_.sketch(i); }

  /// True iff process i's checker settled at budget overflow (sticky; such
  /// passes count toward error_count() but carry no witness).
  bool overflowed(ProcId i) const { return core_.overflowed(i); }

  /// Aggregated engine counters of the verification monitors.
  engine::EngineStats stats() const { return core_.stats(); }

 private:
  AStar* astar_;
  MonitorCore core_;
  ErrorReport on_error_;
  std::atomic<uint64_t> errors_{0};
};

}  // namespace selin
