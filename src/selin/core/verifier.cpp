#include "selin/core/verifier.hpp"

namespace selin {

Verifier::Verifier(AStar& astar, const GenLinObject& obj, ErrorReport on_error,
                   SnapshotKind monitor_snapshot)
    : astar_(&astar),
      core_(astar.procs(), astar.procs(), obj, monitor_snapshot),
      on_error_(std::move(on_error)) {}

Value Verifier::step(ProcId i, Method m, Value arg) {
  // Lines 04-05: invoke Apply(op_i) of A*, receive (y_i, λ_i).
  AStar::Result r = astar_->apply(i, m, arg);
  // Lines 06-07: res_i ← res_i ∪ {4-tuple}; M.Write(res_i).
  core_.publish(i, r.op, r.y, std::move(r.view));
  // Lines 08-10: τ_i ← union of M.Snapshot(); test X(τ_i) ∈ O.
  if (!core_.check(i)) {
    // Line 11: report (ERROR, X(τ_i)).
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (on_error_) on_error_(i, core_.sketch(i));
  }
  return r.y;
}

}  // namespace selin
