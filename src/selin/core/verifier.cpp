#include "selin/core/verifier.hpp"

namespace selin {

Verifier::Verifier(AStar& astar, const GenLinObject& obj, ErrorReport on_error,
                   Options options)
    : astar_(&astar),
      core_(astar.procs(), astar.procs(), obj,
            MonitorCore::Options{options.monitor_snapshot,
                                 options.checker_threads, options.priors,
                                 std::move(options.executor), options.obs}),
      on_error_(std::move(on_error)) {}

Verifier::Verifier(AStar& astar, const GenLinObject& obj, ErrorReport on_error,
                   SnapshotKind monitor_snapshot)
    : Verifier(astar, obj, std::move(on_error),
               Options{monitor_snapshot}) {}

Value Verifier::step(ProcId i, Method m, Value arg) {
  // Lines 04-05: invoke Apply(op_i) of A*, receive (y_i, λ_i).
  AStar::Result r = astar_->apply(i, m, arg);
  // Lines 06-07: res_i ← res_i ∪ {4-tuple}; M.Write(res_i).
  core_.publish(i, r.op, r.y, std::move(r.view));
  // Lines 08-10: τ_i ← union of M.Snapshot(); test X(τ_i) ∈ O.
  if (!core_.check(i)) {
    // Line 11: report (ERROR, X(τ_i)) — an overflow settles sticky-false
    // with no witness (the sketch may be incomplete), so it is counted but
    // not reported.
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (on_error_ && !core_.overflowed(i)) on_error_(i, core_.sketch(i));
  }
  return r.y;
}

}  // namespace selin
