// The A* construction (Figure 7) — from any implementation A to its
// Distributed Runtime Verifiable counterpart A* ∈ DRV (Definition 7.4).
//
//   Apply(op_i):
//     01  set_i ← set_i ∪ {(p_i, op_i)}          (prepend a SetNode)
//     02  N.Write(set_i)                          (publish the chain head)
//     03  invoke Apply(op_i) of A
//     04  y_i ← response from A
//     05  s_i ← N.Snapshot()
//     06  λ_i ← union of s_i entries              (the View of the op)
//     07  return (y_i, λ_i)
//
// A is used strictly as a black box (Line 03), so AStar works for any
// IConcurrent regardless of the object it implements — this genericity is
// what Definition 7.4 requires.  By Lemma 7.2, A* preserves A's correctness
// and progress and adds O(n) steps per operation (with the snapshot of [63];
// our Afek snapshot adds O(n^2), see DESIGN.md substitutions).
#pragma once

#include <memory>
#include <vector>

#include "selin/impls/concurrent.hpp"
#include "selin/snapshot/snapshot.hpp"
#include "selin/util/arena.hpp"
#include "selin/views/lambda.hpp"

namespace selin {

/// Test instrumentation: observes the Write (Line 02) and Snapshot (Line 05)
/// steps, which delimit operations in tight executions (Definition 7.5).
/// Callbacks run on the calling process's thread immediately after the
/// corresponding base-object step.
class AStarTraceSink {
 public:
  virtual ~AStarTraceSink() = default;
  virtual void on_write(const OpDesc& op) = 0;
  virtual void on_snap(const OpDesc& op, Value y) = 0;
};

class AStar {
 public:
  struct Result {
    Value y;    ///< response obtained from A
    View view;  ///< λ_i — the sketch fragment this operation contributes
    OpDesc op;  ///< the operation descriptor (with its generated OpId)
  };

  /// n = number of process slots; `a` must outlive the AStar.
  AStar(size_t n, IConcurrent& a,
        SnapshotKind kind = SnapshotKind::kDoubleCollect,
        AStarTraceSink* sink = nullptr);

  /// Same, with a caller-provided announcement object N — e.g. an ABD
  /// snapshot to run A* over message passing (Section 9.4).
  AStar(size_t n, IConcurrent& a,
        std::unique_ptr<Snapshot<const SetNode*>> announce,
        AStarTraceSink* sink = nullptr);

  /// Apply with an auto-generated unique OpId for process i.
  Result apply(ProcId i, Method m, Value arg = kNoArg);

  /// Apply a fully specified operation (op.id.pid must equal i and ids must
  /// be unique per Section 2).
  Result apply_op(ProcId i, const OpDesc& op);

  size_t procs() const { return per_proc_.size(); }
  IConcurrent& underlying() { return *a_; }

 private:
  friend class SteppedAStar;

  struct alignas(64) PerProc {
    const SetNode* head = nullptr;  // my announcement chain (Line 01 state)
    uint32_t next_seq = 0;
  };

  IConcurrent* a_;
  AStarTraceSink* sink_;
  Arena arena_;
  std::unique_ptr<Snapshot<const SetNode*>> announce_;  // the object N
  std::vector<PerProc> per_proc_;
};

/// Deterministic-schedule driver over an AStar: splits Apply into its three
/// phases so tests can interleave processes at sub-operation granularity and
/// reproduce the paper's hand-drawn executions (Figures 5, 6, 8; the
/// "stretch"/"shrink"/"fix" semantics and the tight-execution lemmas).
/// Single-threaded by design: the caller is the scheduler.
class SteppedAStar {
 public:
  explicit SteppedAStar(AStar& astar) : astar_(&astar) {}

  /// Lines 01-02 of Figure 7: announce the operation and publish the set.
  OpDesc announce(ProcId i, Method m, Value arg = kNoArg);

  /// Lines 03-04: the black-box call into A.  Must follow announce(i).
  Value invoke(ProcId i);

  /// Lines 05-07: snapshot, build the view, return (y_i, λ_i).
  AStar::Result complete(ProcId i);

  /// Convenience: announce+invoke+complete back to back (a "short delay"
  /// operation in the Figure 5/6 sense).
  AStar::Result run_all(ProcId i, Method m, Value arg = kNoArg);

 private:
  struct Open {
    OpDesc op;
    Value y = kNoArg;
    bool invoked = false;
    bool active = false;
  };

  AStar* astar_;
  std::vector<Open> open_ = std::vector<Open>(64);
};

}  // namespace selin
