// Self-enforced GenLin implementation V_{O,A} (Figure 11, Theorem 8.2).
//
// Given any implementation A of an object O ∈ GenLin, the wrapper
//   * obtains (y_i, λ_i) from A* (the Figure 7 construction over A),
//   * publishes the 4-tuple in the snapshot object M,
//   * locally tests X(τ_i) ∈ O,
//   * returns y_i if the test passes, and (ERROR, X(τ_i)) otherwise.
//
// Guarantees (Theorem 8.2): same progress as A; if A is correct no caller
// ever sees ERROR and the history is correct; if A is faulty, every
// execution is correct up to a prefix after which every new operation
// returns ERROR with a witness; and a certificate history similar to the
// current history is available on demand (certificate()).
//
// The membership side runs on the modern engine: Options carries the
// checker-threads knob, TunerPriors, a shared executor and obs hooks down
// to MonitorCore, so V_{O,A}'s per-operation test X(τ_i) ∈ O rides the
// fingerprinted batched frontier engine instead of the seed-era sequential
// checker.  Defaults keep the sequential discipline (the A/B baseline).
#pragma once

#include <atomic>

#include "selin/core/astar.hpp"
#include "selin/core/monitor_core.hpp"

namespace selin {

class SelfEnforced {
 public:
  struct Options {
    SnapshotKind announce_snapshot = SnapshotKind::kDoubleCollect;
    SnapshotKind monitor_snapshot = SnapshotKind::kDoubleCollect;
    AStarTraceSink* trace = nullptr;
    /// Membership-engine knobs (see MonitorCore::Options); defaults are the
    /// seed-era sequential checker.
    size_t checker_threads = 0;
    engine::TunerPriors priors{};
    std::shared_ptr<parallel::Executor> executor;
    const obs::LeveledHooks* obs = nullptr;
  };

  struct Outcome {
    Value value;  ///< y_i, or kError
    bool error;   ///< true iff the verification layer rejected
    /// True iff the rejection was an exploration-budget overflow: the
    /// verdict is *unknown* rather than proven wrong, and (like a genuine
    /// detection) it is sticky — every later operation of this process
    /// keeps returning ERROR.
    bool overflow = false;
  };

  /// n process slots over black-box `a`, enforcing membership in `obj`.
  /// Both must outlive this object.
  SelfEnforced(size_t n, IConcurrent& a, const GenLinObject& obj,
               Options options);
  SelfEnforced(size_t n, IConcurrent& a, const GenLinObject& obj)
      : SelfEnforced(n, a, obj, Options{}) {}

  /// Caller-provided base objects for N and M — e.g. ABD snapshots, making
  /// the whole stack run over message passing (Section 9.4).  The Options
  /// overload forwards the engine knobs; snapshot kinds are ignored (the
  /// provided objects are the snapshots).
  SelfEnforced(size_t n, IConcurrent& a, const GenLinObject& obj,
               std::unique_ptr<Snapshot<const SetNode*>> announce,
               std::unique_ptr<Snapshot<const RecNode*>> records,
               Options options)
      : astar_(n, a, std::move(announce), options.trace),
        core_(n, n, obj, std::move(records),
              MonitorCore::Options{options.monitor_snapshot,
                                   options.checker_threads, options.priors,
                                   std::move(options.executor), options.obs}) {
  }
  SelfEnforced(size_t n, IConcurrent& a, const GenLinObject& obj,
               std::unique_ptr<Snapshot<const SetNode*>> announce,
               std::unique_ptr<Snapshot<const RecNode*>> records)
      : SelfEnforced(n, a, obj, std::move(announce), std::move(records),
                     Options{}) {}

  /// Apply(op_i) of Figure 11.  Wait-free given a wait-free A and snapshot.
  Outcome apply(ProcId i, Method m, Value arg = kNoArg);

  /// Theorem 8.2(3): a history similar to the current history of V_{O,A} —
  /// the forensic certificate.  Reflects process i's latest check.
  History certificate(ProcId i) const { return core_.sketch(i); }

  /// Number of operations that returned ERROR so far (all processes,
  /// overflow rejections included).
  uint64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// True iff process i's checker settled at budget overflow (sticky).
  bool overflowed(ProcId i) const { return core_.overflowed(i); }

  /// Aggregated engine counters of the enforcement monitors.
  engine::EngineStats stats() const { return core_.stats(); }

  AStar& astar() { return astar_; }
  const GenLinObject& object() const { return core_.object(); }

 private:
  AStar astar_;
  MonitorCore core_;
  std::atomic<uint64_t> errors_{0};
};

}  // namespace selin
