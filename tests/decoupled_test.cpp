// Decoupled self-enforced implementation D_{O,A} (Figure 12, Section 9.2):
// producers return immediately; dedicated verifier threads detect faults
// eventually.  Correctness: no reports for correct A; detection for faulty
// A; witness validity; and the paper's caveat that producers may consume a
// response before the verifiers flag it.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(Decoupled, CorrectAProducesNoReports) {
  constexpr size_t kProducers = 3;
  constexpr size_t kVerifiers = 2;
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  Decoupled d(kProducers, kVerifiers, *impl, *obj);

  std::atomic<bool> done{false};
  SpinBarrier barrier(kProducers + kVerifiers);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p + 100);
      barrier.arrive_and_wait();
      for (int i = 0; i < 200; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        d.apply(p, m, arg);
      }
    });
  }
  for (size_t v = 0; v < kVerifiers; ++v) {
    threads.emplace_back([&, v] {
      barrier.arrive_and_wait();
      while (!done.load(std::memory_order_acquire)) {
        d.verify_once(v);
      }
      d.verify_once(v);  // final pass over the complete τ
    });
  }
  for (size_t i = 0; i < kProducers; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(d.error_count(), 0u);
}

TEST(Decoupled, FaultDetectedByVerifierThread) {
  constexpr size_t kProducers = 2;
  auto impl = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());

  std::atomic<size_t> reports{0};
  Decoupled d(kProducers, 1, *impl, *obj,
              [&](size_t, const History&) { reports.fetch_add(1); });

  // Producer-side: the lie returns a value with NO error signal — the
  // decoupled trade-off the paper calls out.
  Value lie = d.apply(0, Method::kDequeue);
  EXPECT_EQ(lie, 1);

  // Verifier-side: the very next pass sees the published record.
  EXPECT_FALSE(d.verify_once(0));
  EXPECT_GT(reports.load(), 0u);
  History w = d.witness(0);
  EXPECT_FALSE(obj->contains(w)) << format_history(w);
}

TEST(Decoupled, VerifierBeforeAnyOpsIsQuiet) {
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  Decoupled d(2, 1, *impl, *obj);
  EXPECT_TRUE(d.verify_once(0));
  EXPECT_EQ(d.error_count(), 0u);
}

TEST(Decoupled, ConcurrentFaultEventuallyDetected) {
  constexpr size_t kProducers = 3;
  auto impl = make_lossy_queue(1, 3, 99);
  auto obj = make_linearizable_object(make_queue_spec());
  Decoupled d(kProducers, 1, *impl, *obj);

  std::atomic<bool> stop{false};
  std::thread verifier([&] {
    while (!stop.load(std::memory_order_acquire) && d.error_count() == 0) {
      d.verify_once(0);
    }
    d.verify_once(0);
  });

  SpinBarrier barrier(kProducers);
  std::vector<std::thread> producers;
  for (ProcId p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(p * 3 + 17);
      barrier.arrive_and_wait();
      for (int i = 0; i < 400 && d.error_count() == 0; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        d.apply(p, m, arg);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  verifier.join();

  EXPECT_GT(d.error_count(), 0u);
}

TEST(Decoupled, MultipleVerifiersAgree) {
  auto impl = make_thm51_queue(1);
  auto obj = make_linearizable_object(make_queue_spec());
  Decoupled d(2, 3, *impl, *obj);
  (void)d.apply(1, Method::kDequeue);  // lie published
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_FALSE(d.verify_once(v)) << "verifier " << v;
    EXPECT_FALSE(obj->contains(d.witness(v)));
  }
  EXPECT_EQ(d.error_count(), 3u);
}

}  // namespace
}  // namespace selin
