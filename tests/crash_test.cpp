// Crash failures (the paper's fault model: all but one process may crash).
// Wait-freedom means survivors are never blocked by a crashed process, and
// the verifier stays sound when operations are left pending forever — a
// crashed process's announced-but-unfinished operation shows up in views as
// a pending invocation, which Definition 4.2 handles via extensions.
//
// A "crash" here is a process that simply stops taking steps at an
// adversarially chosen point (after announce, or after invoking A); the
// other processes keep going through the same shared objects.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

// Crash after announce (Line 02 of Figure 7): the op is in views forever,
// never completed.  Survivors must stay ERROR-free on a correct A.
TEST(Crash, PendingAnnouncedOpDoesNotPoisonVerifier) {
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(3, *q);
  MonitorCore core(3, 3, *obj);
  SteppedAStar step(astar);

  // p2 announces an enqueue and crashes (never invokes/completes).
  step.announce(2, Method::kEnqueue, 999);

  // p0 and p1 run a long workload.
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    ProcId p = static_cast<ProcId>(rng.below(2));
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    auto r = step.run_all(p, m, arg);
    core.publish(p, r.op, r.y, std::move(r.view));
    EXPECT_TRUE(core.check(p)) << "iteration " << i << ":\n"
                               << format_history(core.sketch(p));
  }
  // The sketch contains the crashed op as a pending invocation.
  History sk = core.sketch(0);
  HistoryIndex idx(sk);
  bool has_pending_999 = false;
  for (const OpRecord& r : idx.ops()) {
    if (!r.complete() && r.op.arg == 999) has_pending_999 = true;
  }
  EXPECT_TRUE(has_pending_999);
}

// Crash after invoking A (the enqueue TOOK EFFECT inside A, but the wrapper
// never completed): survivors may dequeue the value; the sketch must accept
// it by linearizing the pending op (Definition 4.2 extension).
TEST(Crash, EffectOfCrashedOpIsJustifiedByPendingInvocation) {
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *q);
  MonitorCore core(2, 2, *obj);
  SteppedAStar step(astar);

  step.announce(1, Method::kEnqueue, 7);
  step.invoke(1);  // value 7 is in the queue; p1 crashes here

  auto r = step.run_all(0, Method::kDequeue);
  EXPECT_EQ(r.y, 7);  // survivor observes the crashed op's effect
  core.publish(0, r.op, r.y, std::move(r.view));
  EXPECT_TRUE(core.check(0)) << format_history(core.sketch(0));
}

// Without the announcement the same response would be rejected — showing the
// announce step is what makes crashed-op effects explicable.  We simulate a
// "mute" implementation fault: a dequeue returning a value nobody announced.
TEST(Crash, UnannouncedEffectIsRejected) {
  auto q = make_thm51_queue(0);  // p0's first dequeue lies: returns 1
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *q);
  MonitorCore core(2, 2, *obj);
  SteppedAStar step(astar);

  auto r = step.run_all(0, Method::kDequeue);
  EXPECT_EQ(r.y, 1);
  core.publish(0, r.op, r.y, std::move(r.view));
  EXPECT_FALSE(core.check(0));
}

// Real threads: kill (join) a subset mid-workload at random points; the
// survivors keep completing operations (wait-freedom) and never see ERROR.
class CrashSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashSweep, SurvivorsUnaffected) {
  uint64_t seed = GetParam();
  constexpr size_t kProcs = 4;
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(kProcs, *q, *obj);

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(seed * 100 + p);
      barrier.arrive_and_wait();
      // Processes 2 and 3 "crash" after a random number of operations.
      int my_ops = (p >= 2) ? static_cast<int>(rng.below(40)) : 200;
      for (int i = 0; i < my_ops; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        if (se.apply(p, m, arg).error) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  // Survivor certificates remain valid.
  EXPECT_TRUE(obj->contains(se.certificate(0)));
  EXPECT_TRUE(obj->contains(se.certificate(1)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweep, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace selin
