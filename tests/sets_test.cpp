// Harris–Michael lock-free set and the lazy list set: sequential semantics,
// multithreaded linearizability (ground-truth recorder + checker), agreement
// between the two implementations, and verification under the full
// self-enforcement stack — including the "no fixed linearization point"
// scenario that log-instrumentation approaches cannot handle (Section 10).
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

OpDesc mk(ProcId p, uint32_t seq, Method m, Value arg) {
  return OpDesc{OpId{p, seq}, m, arg};
}

struct SetCase {
  const char* label;
  std::function<std::unique_ptr<IConcurrent>()> make;
};

class SetImpl : public ::testing::TestWithParam<SetCase> {};

TEST_P(SetImpl, SequentialSemantics) {
  auto s = GetParam().make();
  uint32_t q = 0;
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kContains, 5)), kFalse);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kInsert, 5)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kInsert, 5)), kFalse);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kInsert, 3)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kInsert, 9)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kContains, 3)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kRemove, 3)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kRemove, 3)), kFalse);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kContains, 3)), kFalse);
  EXPECT_EQ(s->apply(0, mk(0, q++, Method::kContains, 9)), kTrue);
}

TEST_P(SetImpl, MatchesSpecOnRandomSequentialRuns) {
  auto s = GetParam().make();
  auto ref = make_set_spec()->initial();
  Rng rng(31);
  for (uint32_t i = 0; i < 500; ++i) {
    auto [m, arg] = random_op(ObjectKind::kSet, rng);
    EXPECT_EQ(s->apply(0, mk(0, i, m, arg)), ref->step(m, arg)) << i;
  }
}

TEST_P(SetImpl, ConcurrentHistoryLinearizable) {
  constexpr size_t kProcs = 4;
  auto s = GetParam().make();
  RecordingConcurrent recorded(*s, 4096);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 37 + 3);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 120; ++i) {
        auto [m, arg] = random_op(ObjectKind::kSet, rng);
        recorded.apply(p, OpDesc{OpId{p, i}, m, arg});
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(recorded.overflowed());
  auto spec = make_set_spec();
  EXPECT_TRUE(linearizable(*spec, recorded.history())) << GetParam().label;
}

TEST_P(SetImpl, UnderSelfEnforcementNeverErrors) {
  constexpr size_t kProcs = 3;
  auto s = GetParam().make();
  auto obj = make_linearizable_object(make_set_spec());
  SelfEnforced se(kProcs, *s, *obj);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 61 + 11);
      barrier.arrive_and_wait();
      for (int i = 0; i < 150; ++i) {
        auto [m, arg] = random_op(ObjectKind::kSet, rng);
        se.apply(p, m, arg);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(se.error_count(), 0u) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Impls, SetImpl,
    ::testing::Values(SetCase{"harris", make_harris_set},
                      SetCase{"lazy", make_lazy_set}),
    [](const auto& info) { return std::string(info.param.label); });

// Contention focused on few keys: the regime where Harris's helping and the
// lazy list's validation loops actually fire.
TEST(HarrisSet, HighContentionSmallKeySpace) {
  constexpr size_t kProcs = 6;
  auto s = make_harris_set();
  RecordingConcurrent recorded(*s, 8192);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p + 555);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 150; ++i) {
        uint64_t r = rng.below(3);
        Value key = rng.range(1, 3);  // 3 keys, 6 threads
        Method m = r == 0 ? Method::kInsert
                          : (r == 1 ? Method::kRemove : Method::kContains);
        recorded.apply(p, OpDesc{OpId{p, i}, m, key});
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(recorded.overflowed());
  auto spec = make_set_spec();
  EXPECT_TRUE(linearizable(*spec, recorded.history(), /*max_configs=*/1 << 20));
}

// The floating-linearization-point scenario: a Contains(k) -> false is
// legitimate only because a concurrent Remove's CAS (in another thread)
// serves as its linearization point.  A log-based monitor demanding fixed
// in-code linearization points cannot express this; black-box verification
// handles it because membership quantifies over all linearizations.
TEST(HarrisSet, FloatingLinearizationPointAccepted) {
  test::OpFactory f;
  auto spec = make_set_spec();
  OpDesc ins = f.op(0, Method::kInsert, 7);
  OpDesc rem = f.op(1, Method::kRemove, 7);
  OpDesc con = f.op(2, Method::kContains, 7);
  // Contains overlaps the Remove and answers false although it started when
  // 7 was present — valid: linearize Remove before Contains.
  History h{Event::inv(ins),       Event::res(ins, kTrue),
            Event::inv(rem),       Event::inv(con),
            Event::res(con, kFalse), Event::res(rem, kTrue)};
  EXPECT_TRUE(linearizable(*spec, h));
  // But false is NOT acceptable without the concurrent remove.
  test::OpFactory f2;
  OpDesc ins2 = f2.op(0, Method::kInsert, 7);
  OpDesc con2 = f2.op(2, Method::kContains, 7);
  History h2{Event::inv(ins2), Event::res(ins2, kTrue), Event::inv(con2),
             Event::res(con2, kFalse)};
  EXPECT_FALSE(linearizable(*spec, h2));
}

}  // namespace
}  // namespace selin
