// Theorem 5.1, mechanically (experiment E3): the executions E and F of the
// proof are indistinguishable to every process, yet exactly one of them has
// a linearizable history of A.  Hence no wait-free verifier watching A as a
// black box can be simultaneously sound and complete — whatever it reports
// in E it reports in F.
//
// Appendix A (Theorem A.1) extends this to predictive verification: F's
// history can also be produced by a *correct* queue, so ERROR in F cannot be
// excused by a witness.  We verify that F's history is linearizable — i.e. a
// correct queue can produce it.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

class Thm51 : public ::testing::TestWithParam<size_t> {};

TEST_P(Thm51, ExecutionsIndistinguishableYetDifferent) {
  Thm51Scenario s = build_thm51_scenario(/*extra_rounds=*/GetParam());

  // (1) Every process sees identical local sequences in E and F.
  EXPECT_TRUE(indistinguishable(s.exec_E, s.exec_F));

  // (2) The detected histories (all any verifier can reconstruct from the
  // shared memory) coincide event for event.
  History dE = detected_history(s.exec_E);
  History dF = detected_history(s.exec_F);
  ASSERT_EQ(dE.size(), dF.size());
  for (size_t i = 0; i < dE.size(); ++i) {
    EXPECT_TRUE(dE[i] == dF[i]) << i;
  }

  // (3) The actual histories differ in the only way that matters.
  auto spec = make_queue_spec();
  History aE = actual_history(s.exec_E);
  History aF = actual_history(s.exec_F);
  EXPECT_FALSE(linearizable(*spec, aE)) << format_history(aE);
  EXPECT_TRUE(linearizable(*spec, aF)) << format_history(aF);

  // (4) Every prefix of F's history is linearizable (soundness forbids
  // ERROR in F at any point), while E's history has a non-linearizable
  // prefix (completeness demands ERROR in E) — the contradiction.
  for (size_t cut = 0; cut <= aF.size(); ++cut) {
    History p(aF.begin(), aF.begin() + static_cast<long>(cut));
    EXPECT_TRUE(linearizable(*spec, p)) << cut;
  }
  bool some_bad_prefix = false;
  for (size_t cut = 0; cut <= aE.size(); ++cut) {
    History p(aE.begin(), aE.begin() + static_cast<long>(cut));
    if (!linearizable(*spec, p)) {
      some_bad_prefix = true;
      break;
    }
  }
  EXPECT_TRUE(some_bad_prefix);
}

INSTANTIATE_TEST_SUITE_P(Rounds, Thm51, ::testing::Values(0, 1, 2, 4));

TEST(Thm51Appendix, FsHistoryProducibleByCorrectQueue) {
  // Theorem A.1's twist: F could equally have come from a correct queue, so
  // a predictive verifier cannot even excuse a false ERROR with a witness.
  // Mechanically: F's actual history is linearizable, i.e. inside the
  // abstract object of the correct queue.
  Thm51Scenario s = build_thm51_scenario(1);
  auto obj = make_linearizable_object(make_queue_spec());
  EXPECT_TRUE(obj->contains(actual_history(s.exec_F)));
}

TEST(Thm51, DetectedHistoryIsLinearizableInBoth) {
  // The stretched detected history masks the violation — the verifier's
  // information is consistent with a correct A in both executions.
  Thm51Scenario s = build_thm51_scenario(2);
  auto spec = make_queue_spec();
  EXPECT_TRUE(linearizable(*spec, detected_history(s.exec_E)));
  EXPECT_TRUE(linearizable(*spec, detected_history(s.exec_F)));
}

TEST(Thm51, LocalViewExtraction) {
  Thm51Scenario s = build_thm51_scenario(0);
  auto v0 = local_view(s.exec_E, 0);
  auto v1 = local_view(s.exec_E, 1);
  ASSERT_EQ(v0.size(), 4u);  // announce, invoke, respond, record
  ASSERT_EQ(v1.size(), 4u);
  EXPECT_EQ(v0[0].kind, VerifierEvent::Kind::kAnnounce);
  EXPECT_EQ(v1[3].kind, VerifierEvent::Kind::kRecord);
  EXPECT_EQ(v1[2].y, 1);  // the lie
}

}  // namespace
}  // namespace selin
