// The membership engine: LinMonitor (incremental frontier), the DFS witness
// finder, and the brute-force oracle, cross-validated on directed cases and
// on seeded random-history sweeps across all object families.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

TEST(LinMonitor, EmptyHistoryOk) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec);
  EXPECT_TRUE(m.ok());
}

TEST(LinMonitor, SimpleSequential) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec);
  OpFactory f;
  OpDesc e1 = f.op(0, Method::kEnqueue, 1);
  m.feed(Event::inv(e1));
  m.feed(Event::res(e1, kTrue));
  EXPECT_TRUE(m.ok());
  OpDesc d = f.op(0, Method::kDequeue);
  m.feed(Event::inv(d));
  m.feed(Event::res(d, 2));  // wrong value
  EXPECT_FALSE(m.ok());
}

TEST(LinMonitor, StickyFailure) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec);
  OpFactory f;
  OpDesc d = f.op(0, Method::kDequeue);
  m.feed(Event::inv(d));
  m.feed(Event::res(d, 99));
  EXPECT_FALSE(m.ok());
  OpDesc e = f.op(0, Method::kEnqueue, 99);
  m.feed(Event::inv(e));
  m.feed(Event::res(e, kTrue));
  EXPECT_FALSE(m.ok());  // failure is permanent
}

TEST(LinMonitor, ConcurrentOpsLinearizeInEitherOrder) {
  auto spec = make_queue_spec();
  OpFactory f;
  OpDesc e1 = f.op(0, Method::kEnqueue, 1);
  OpDesc e2 = f.op(1, Method::kEnqueue, 2);
  OpDesc d1 = f.op(0, Method::kDequeue);
  OpDesc d2 = f.op(1, Method::kDequeue);
  // Both enqueues overlap; dequeues later observe order 2,1 — valid only if
  // e2 linearized before e1.
  History h{Event::inv(e1), Event::inv(e2), Event::res(e1, kTrue),
            Event::res(e2, kTrue), Event::inv(d1), Event::res(d1, 2),
            Event::inv(d2), Event::res(d2, 1)};
  EXPECT_TRUE(linearizable(*spec, h));
  EXPECT_TRUE(linearizable_bruteforce(*spec, h));
}

TEST(LinMonitor, RealTimeOrderEnforced) {
  auto spec = make_queue_spec();
  OpFactory f;
  OpDesc e1 = f.op(0, Method::kEnqueue, 1);
  OpDesc e2 = f.op(1, Method::kEnqueue, 2);
  OpDesc d = f.op(0, Method::kDequeue);
  // e1 completes before e2 begins, so dequeue must return 1, not 2.
  History h{Event::inv(e1), Event::res(e1, kTrue), Event::inv(e2),
            Event::res(e2, kTrue), Event::inv(d), Event::res(d, 2)};
  EXPECT_FALSE(linearizable(*spec, h));
  EXPECT_FALSE(linearizable_bruteforce(*spec, h));
}

TEST(LinMonitor, PendingOpMayTakeEffect) {
  auto spec = make_queue_spec();
  OpFactory f;
  OpDesc e = f.op(0, Method::kEnqueue, 5);
  OpDesc d = f.op(1, Method::kDequeue);
  // The enqueue never responds (its process crashed), but the dequeue sees
  // its value: linearizable per Definition 4.2 (the pending op is linearized
  // via an extension).
  History h{Event::inv(e), Event::inv(d), Event::res(d, 5)};
  EXPECT_TRUE(linearizable(*spec, h));
  EXPECT_TRUE(linearizable_bruteforce(*spec, h));
}

TEST(LinMonitor, PendingOpMayBeIgnored) {
  auto spec = make_queue_spec();
  OpFactory f;
  OpDesc e = f.op(0, Method::kEnqueue, 5);
  OpDesc d = f.op(1, Method::kDequeue);
  History h{Event::inv(e), Event::inv(d), Event::res(d, kEmpty)};
  EXPECT_TRUE(linearizable(*spec, h));
}

TEST(LinMonitor, CloneForksState) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec);
  OpFactory f;
  OpDesc e = f.op(0, Method::kEnqueue, 1);
  m.feed(Event::inv(e));
  m.feed(Event::res(e, kTrue));
  auto fork = m.clone();
  OpDesc d = f.op(0, Method::kDequeue);
  fork->feed(Event::inv(d));
  fork->feed(Event::res(d, 7));  // wrong
  EXPECT_FALSE(fork->ok());
  EXPECT_TRUE(m.ok());  // original untouched
}

TEST(LinMonitor, OverflowThrows) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec, /*max_configs=*/4);
  OpFactory f;
  std::vector<OpDesc> es;
  for (ProcId p = 0; p < 6; ++p) {
    es.push_back(f.op(p, Method::kEnqueue, p + 1));
    m.feed(Event::inv(es.back()));
  }
  EXPECT_THROW(m.feed(Event::res(es[0], kTrue)), CheckerOverflow);
}

TEST(FindLinearization, DeepHistoryDoesNotOverflowNativeStack) {
  // 120k sequential ops = 240k events: the recursive DFS this checker used
  // to run would need a ~360k-deep call chain here, well past the native
  // stack; the explicit-stack search must handle it within max_visited.
  auto spec = make_counter_spec();
  OpFactory f;
  History h;
  constexpr size_t kOps = 120'000;
  h.reserve(kOps * 2);
  for (size_t i = 0; i < kOps; ++i) {
    test::seq_op(h, f, 0, Method::kInc, kNoArg, static_cast<Value>(i + 1));
  }
  auto lin = find_linearization(*spec, h);
  ASSERT_TRUE(lin.has_value());
  EXPECT_EQ(lin->size(), h.size());
}

TEST(FindLinearization, ProducesValidWitness) {
  auto spec = make_stack_spec();
  OpFactory f;
  OpDesc a = f.op(0, Method::kPush, 1);
  OpDesc b = f.op(1, Method::kPop);
  History h{Event::inv(a), Event::inv(b), Event::res(b, 1),
            Event::res(a, kTrue)};
  auto lin = find_linearization(*spec, h);
  ASSERT_TRUE(lin.has_value());
  EXPECT_TRUE(sequential(*lin));
  EXPECT_TRUE(seq_history_valid(*spec, *lin));
}

TEST(FindLinearization, NulloptWhenNotLinearizable) {
  auto spec = make_stack_spec();
  OpFactory f;
  OpDesc b = f.op(1, Method::kPop);
  History h{Event::inv(b), Event::res(b, 1)};
  EXPECT_FALSE(find_linearization(*spec, h).has_value());
}

// ---- Randomized cross-validation sweeps -----------------------------------

struct SweepParams {
  ObjectKind kind;
  uint64_t seed;
  bool corrupt;
};

class CheckerSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(CheckerSweep, MonitorAgreesWithBruteforceAndDfs) {
  auto [kind, seed, corrupt] = GetParam();
  auto spec = make_spec(kind);
  History h = test::random_linearizable_history(kind, 3, 7, seed);
  if (corrupt) test::corrupt_response(h, seed * 31 + 7);
  bool brute = linearizable_bruteforce(*spec, h);
  bool monitor = linearizable(*spec, h);
  bool dfs = find_linearization(*spec, h).has_value();
  EXPECT_EQ(monitor, brute) << format_history(h);
  EXPECT_EQ(dfs, brute) << format_history(h);
  if (!corrupt) {
    EXPECT_TRUE(brute) << format_history(h);
  }
}

std::vector<SweepParams> sweep_params() {
  std::vector<SweepParams> v;
  for (ObjectKind kind :
       {ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kSet,
        ObjectKind::kPqueue, ObjectKind::kCounter, ObjectKind::kRegister,
        ObjectKind::kConsensus}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      v.push_back({kind, seed, false});
      v.push_back({kind, seed, true});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckerSweep,
                         ::testing::ValuesIn(sweep_params()));

// Longer histories exercise the incremental path beyond brute-force reach.
class LongSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LongSweep, LinearizableByConstruction) {
  uint64_t seed = GetParam();
  for (ObjectKind kind : {ObjectKind::kQueue, ObjectKind::kStack,
                          ObjectKind::kRegister, ObjectKind::kCounter}) {
    auto spec = make_spec(kind);
    History h = test::random_linearizable_history(kind, 4, 60, seed);
    EXPECT_TRUE(linearizable(*spec, h)) << object_kind_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongSweep, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace selin
