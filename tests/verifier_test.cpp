// The wait-free predictive verifier V_O (Figure 10) — Theorem 8.1 exercised
// operationally:
//   * Soundness for correct A: multithreaded runs over correct lock-free
//     implementations never report (sweep over object families × snapshots).
//   * Completeness: faulty implementations are eventually reported, with a
//     witness that is genuinely outside the object.
//   * Stability: after the first report, reports keep coming.
//   * Efficiency: read/write base objects only (by construction) with step
//     counts independent of history length.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

struct SoundParams {
  ObjectKind kind;
  SnapshotKind snap;
};

class VerifierSoundness : public ::testing::TestWithParam<SoundParams> {};

TEST_P(VerifierSoundness, CorrectImplementationNeverReported) {
  auto [kind, snap] = GetParam();
  constexpr size_t kProcs = 3;
  auto impl = make_correct_impl(kind);
  auto obj = make_linearizable_object(make_spec(kind));
  AStar astar(kProcs, *impl, snap);
  Verifier v(astar, *obj);

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p, kind = kind] {
      Rng rng(p * 131 + 7);
      barrier.arrive_and_wait();
      for (int i = 0; i < 120; ++i) {
        auto [m, arg] = random_op(kind, rng);
        v.step(p, m, arg);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(v.error_count(), 0u)
      << object_kind_name(kind) << "/" << snapshot_kind_name(snap) << ":\n"
      << format_history(v.sketch(0));
}

std::vector<SoundParams> soundness_params() {
  std::vector<SoundParams> v;
  for (ObjectKind kind :
       {ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kSet,
        ObjectKind::kPqueue, ObjectKind::kCounter, ObjectKind::kRegister,
        ObjectKind::kConsensus}) {
    v.push_back({kind, SnapshotKind::kDoubleCollect});
    v.push_back({kind, SnapshotKind::kAfek});
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VerifierSoundness,
                         ::testing::ValuesIn(soundness_params()));

// ---- Completeness ----------------------------------------------------------

struct FaultyCase {
  const char* label;
  std::function<std::unique_ptr<IConcurrent>()> make;
  ObjectKind kind;
};

class VerifierCompleteness : public ::testing::TestWithParam<FaultyCase> {};

TEST_P(VerifierCompleteness, FaultEventuallyReportedWithValidWitness) {
  const FaultyCase& fc = GetParam();
  constexpr size_t kProcs = 3;
  auto impl = fc.make();
  auto obj = make_linearizable_object(make_spec(fc.kind));
  AStar astar(kProcs, *impl);

  std::atomic<size_t> reports{0};
  std::mutex wmu;
  History first_witness;
  Verifier v(astar, *obj, [&](ProcId, const History& w) {
    if (reports.fetch_add(1) == 0) {
      std::lock_guard<std::mutex> lock(wmu);
      first_witness = w;
    }
  });

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 17 + 3);
      barrier.arrive_and_wait();
      for (int i = 0; i < 400 && reports.load() < 4; ++i) {
        auto [m, arg] = random_op(fc.kind, rng);
        v.step(p, m, arg);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(reports.load(), 0u) << fc.label;
  // Predictive soundness: the report carries a witness that is genuinely
  // outside the object.
  std::lock_guard<std::mutex> lock(wmu);
  ASSERT_TRUE(well_formed(first_witness));
  EXPECT_FALSE(obj->contains(first_witness)) << format_history(first_witness);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, VerifierCompleteness,
    ::testing::Values(
        FaultyCase{"thm51", [] { return make_thm51_queue(1); },
                   ObjectKind::kQueue},
        FaultyCase{"lossy", [] { return make_lossy_queue(1, 4, 42); },
                   ObjectKind::kQueue},
        FaultyCase{"dup", [] { return make_dup_queue(1, 4, 43); },
                   ObjectKind::kQueue},
        FaultyCase{"stale_counter", [] { return make_stale_counter(1, 3, 44); },
                   ObjectKind::kCounter},
        FaultyCase{"stale_register",
                   [] { return make_stale_register(1, 3, 45); },
                   ObjectKind::kRegister}),
    [](const auto& info) { return std::string(info.param.label); });

// ---- Stability (Theorem 8.1(3)) --------------------------------------------

TEST(VerifierStability, ErrorPersistsAcrossIterations) {
  // Single-threaded: the Theorem 5.1 queue lies on the very first dequeue;
  // every subsequent iteration must keep reporting.
  auto impl = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *impl);
  Verifier v(astar, *obj);
  v.step(0, Method::kDequeue);  // the lie: deq -> 1
  ASSERT_EQ(v.error_count(), 1u);
  for (int i = 0; i < 10; ++i) {
    v.step(0, Method::kDequeue);
    v.step(1, Method::kEnqueue, 100 + i);
  }
  // Every one of the 21 iterations reported.
  EXPECT_EQ(v.error_count(), 21u);
}

// ---- Efficiency (Claim 8.1 shape) ------------------------------------------

TEST(VerifierEfficiency, MonitorStepsIndependentOfHistoryLength) {
  auto impl = make_atomic_counter();
  auto obj = make_linearizable_object(make_counter_spec());
  AStar astar(4, *impl, SnapshotKind::kAfek);
  Verifier v(astar, *obj, {}, SnapshotKind::kAfek);
  StepCounter::set_enabled(true);
  StepCounter::reset_local();
  uint64_t early = 0, late = 0;
  for (int i = 0; i < 60; ++i) {
    StepProbe probe;
    v.step(0, Method::kInc);
    if (i < 10) early += probe.steps();
    if (i >= 50) late += probe.steps();
  }
  // Shared-memory steps per iteration are flat: the chains grow, but each
  // iteration touches only head pointers (plus O(n^2) snapshot steps).
  EXPECT_LE(late, early * 3 + 64);
}

}  // namespace
}  // namespace selin
