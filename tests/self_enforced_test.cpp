// Self-enforced implementations V_{O,A} (Figure 11) — Theorem 8.2:
//  (1) progress preserved (wait-free wrapper over wait-free A: every op
//      completes; exercised by the multithreaded sweeps finishing),
//  (2) correct A ⟹ correct V_{O,A} and no ERROR; faulty A ⟹ eventually
//      every new operation returns ERROR with a witness,
//  (3) certificates: a history similar to the current one, on demand.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

class SelfEnforcedSweep : public ::testing::TestWithParam<ObjectKind> {};

TEST_P(SelfEnforcedSweep, CorrectAYieldsNoErrorsAndCorrectHistory) {
  ObjectKind kind = GetParam();
  constexpr size_t kProcs = 3;
  auto impl = make_correct_impl(kind);
  RecordingConcurrent recorded(*impl, 4096);
  auto obj = make_linearizable_object(make_spec(kind));
  SelfEnforced se(kProcs, recorded, *obj);

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  std::atomic<int> error_seen{0};
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p, kind] {
      Rng rng(p * 313 + 11);
      barrier.arrive_and_wait();
      for (int i = 0; i < 100; ++i) {
        auto [m, arg] = random_op(kind, rng);
        auto out = se.apply(p, m, arg);
        if (out.error) error_seen.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(error_seen.load(), 0) << object_kind_name(kind);
  EXPECT_EQ(se.error_count(), 0u);
  // Theorem 8.2(3): the certificate is a correct history of the object.
  for (ProcId p = 0; p < kProcs; ++p) {
    History cert = se.certificate(p);
    EXPECT_TRUE(obj->contains(cert)) << format_history(cert);
  }
  // Cross-check with the ground truth: A's recorded actual history is
  // linearizable (it had better be — A is correct), confirming the recorder.
  EXPECT_TRUE(obj->contains(recorded.history()));
}

INSTANTIATE_TEST_SUITE_P(
    Objects, SelfEnforcedSweep,
    ::testing::Values(ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kSet,
                      ObjectKind::kPqueue, ObjectKind::kCounter,
                      ObjectKind::kRegister, ObjectKind::kConsensus),
    [](const auto& info) {
      return std::string(object_kind_name(info.param));
    });

TEST(SelfEnforced, WorkloadArgumentsArePassedThrough) {
  auto impl = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);
  EXPECT_EQ(se.apply(0, Method::kEnqueue, 42).value, kTrue);
  EXPECT_EQ(se.apply(1, Method::kDequeue).value, 42);
  EXPECT_EQ(se.apply(1, Method::kDequeue).value, kEmpty);
}

// Faulty A: eventually every new operation reports ERROR (the "up to a
// prefix" clause of Theorem 8.2(2)) and certificates witness the violation.
TEST(SelfEnforced, FaultyAConvergesToPermanentError) {
  auto impl = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);

  auto first = se.apply(0, Method::kDequeue);  // the lie
  EXPECT_TRUE(first.error);
  // From here on every operation of every process returns ERROR: the bad
  // prefix is in every process's τ once its snapshot sees the record.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(se.apply(0, Method::kEnqueue, i).error);
    EXPECT_TRUE(se.apply(1, Method::kEnqueue, 100 + i).error);
  }
  History cert = se.certificate(1);
  EXPECT_FALSE(obj->contains(cert));
}

TEST(SelfEnforced, MultithreadedFaultDetection) {
  constexpr size_t kProcs = 4;
  auto impl = make_lossy_queue(1, 3, 2024);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(kProcs, *impl, *obj);

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 7 + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < 300 && se.error_count() == 0; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        se.apply(p, m, arg);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(se.error_count(), 0u);
}

// Accountability (Section 8.3): the certificate can be re-validated offline
// by a third party using only the public membership test — no trust in the
// running system needed.
TEST(SelfEnforced, CertificateSupportsForensicAudit) {
  auto impl = make_dup_queue(1, 2, 7);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);

  bool saw_error = false;
  Rng rng(3);
  for (int i = 0; i < 200 && !saw_error; ++i) {
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    saw_error = se.apply(i % 2, m, arg).error;
  }
  ASSERT_TRUE(saw_error);
  History cert = se.certificate(0).size() > se.certificate(1).size()
                     ? se.certificate(0)
                     : se.certificate(1);
  // The auditor replays the certificate:
  EXPECT_TRUE(well_formed(cert));
  EXPECT_FALSE(obj->contains(cert));
  // ...and can even extract a minimal failing prefix.
  auto monitor = obj->monitor();
  size_t fail_at = 0;
  for (size_t i = 0; i < cert.size(); ++i) {
    monitor->feed(cert[i]);
    if (!monitor->ok()) {
      fail_at = i;
      break;
    }
  }
  EXPECT_GT(fail_at, 0u);
}

}  // namespace
}  // namespace selin
