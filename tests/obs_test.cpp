// Observability subsystem (src/selin/obs/): sharded instruments vs a
// single-threaded oracle under concurrent writers, registry get-or-register
// consistency, ring-recorder bounds, per-session trace ordering, export
// round-trips, and end-to-end hook attachment through LinMonitor and
// MonitorService.  Runs in the TSan CI leg — the concurrency tests double
// as data-race probes on the lane-sharded cells and the sink mutexes.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <thread>

#include "selin/obs/export.hpp"
#include "selin/obs/hooks.hpp"
#include "selin/obs/metrics.hpp"
#include "selin/obs/trace.hpp"
#include "selin/service/monitor_service.hpp"
#include "test_util.hpp"

namespace selin::obs {
namespace {

// ---- metrics core ---------------------------------------------------------

TEST(ObsCounter, ConcurrentWritersMatchOracle) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  for (size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.add(i % 3 + 1);
    });
  }
  for (auto& t : ts) t.join();
  // Oracle: each thread adds sum of (i % 3 + 1) over kPerThread iterations.
  uint64_t per = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) per += i % 3 + 1;
  EXPECT_EQ(c.value(), per * kThreads);
}

TEST(ObsGauge, AddShardsAndSumsSetCollapses) {
  Gauge g;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(2);
      for (int i = 0; i < 1000; ++i) g.add(-1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.value(), 4 * 1000);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST(ObsHistogram, ConcurrentRecordsMatchOracle) {
  Histogram h;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  for (size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.record(t * 1000 + i);
    });
  }
  for (auto& t : ts) t.join();

  // Single-threaded oracle over the same value stream.
  uint64_t count = 0, sum = 0, max = 0;
  uint64_t buckets[Histogram::kBuckets] = {};
  for (size_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      const uint64_t v = t * 1000 + i;
      ++count;
      sum += v;
      max = std::max(max, v);
      ++buckets[std::bit_width(v)];
    }
  }
  EXPECT_EQ(h.count(), count);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.max(), max);
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket(b), buckets[b]) << "bucket " << b;
  }
}

TEST(ObsHistogram, BucketBoundsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);   // v == 0
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);   // [1, 1]
  EXPECT_EQ(Histogram::bucket_bound(4), 15u);  // [8, 15]
  EXPECT_EQ(h.approx_quantile(0.5), 0u);       // empty
  for (int i = 0; i < 100; ++i) h.record(10);  // bucket 4: bound 15
  h.record(1000);                              // bucket 10: bound 1023
  EXPECT_EQ(h.approx_quantile(0.5), 15u);
  EXPECT_EQ(h.approx_quantile(1.0), 1023u);
}

TEST(ObsRegistry, GetOrRegisterReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits", {{"shard", "1"}});
  Counter& b = reg.counter("hits", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  // Label order is not part of identity (labels are sorted).
  Histogram& h1 = reg.histogram("lat", {{"a", "1"}, {"b", "2"}});
  Histogram& h2 = reg.histogram("lat", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&h1, &h2);
  // Different labels → different instrument.
  EXPECT_NE(&a, &reg.counter("hits", {{"shard", "2"}}));
  // Same (name, labels) with a different kind is a misconfiguration.
  EXPECT_THROW(reg.gauge("hits", {{"shard", "1"}}), std::logic_error);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(ObsRegistry, SnapshotIsConsistentUnderConcurrentWriters) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ops");
  Histogram& h = reg.histogram("lat");
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.record(42);
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = reg.snapshot();
    const MetricValue* ops = snap.find("ops");
    const MetricValue* lat = snap.find("lat");
    ASSERT_NE(ops, nullptr);
    ASSERT_NE(lat, nullptr);
    // Monotone counters never go backwards across snapshots.
    EXPECT_GE(ops->counter, last_count);
    last_count = ops->counter;
    // Histogram sum is internally consistent with its count (every record
    // is the same value, but count and sum are separate atomics, so allow
    // the one-record skew a concurrent writer can produce).
    EXPECT_LE(lat->sum, (lat->count + 4) * 42);
  }
  stop.store(true);
  for (auto& t : ts) t.join();
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("lat")->sum, snap.find("lat")->count * 42);
}

// ---- trace layer ----------------------------------------------------------

TEST(ObsRing, BoundedDropOldest) {
  RingRecorder ring(8);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.kind = SpanKind::kFeedRound;
    ev.p0 = i;
    ring.record(ev);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<TraceEvent> evs = ring.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest first, and exactly the most recent events survive.
  for (size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].p0, 12 + i);
    EXPECT_EQ(evs[i].seq, 12 + i);
  }
  std::vector<TraceEvent> drained = ring.drain();
  EXPECT_EQ(drained.size(), 8u);
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.recorded(), 20u);  // totals survive the drain
}

TEST(ObsRing, ConcurrentEmittersKeepPerSessionOrder) {
  RingRecorder ring(1 << 16);
  constexpr size_t kSessions = 4;
  constexpr uint64_t kPerSession = 5000;
  std::vector<std::thread> ts;
  for (uint64_t s = 0; s < kSessions; ++s) {
    ts.emplace_back([&ring, s] {
      for (uint64_t i = 0; i < kPerSession; ++i) {
        TraceEvent ev;
        ev.kind = SpanKind::kSessionBatch;
        ev.session = s;
        ev.p0 = i;  // per-session emission order
        ring.record(ev);
      }
    });
  }
  for (auto& t : ts) t.join();
  std::vector<TraceEvent> evs = ring.events();
  ASSERT_EQ(evs.size(), kSessions * kPerSession);
  // The global seq respects record order, so within one session (one
  // emitting thread) p0 must be strictly increasing when read back in seq
  // order — the property a trace consumer reconstructing a session relies
  // on.
  uint64_t next_p0[kSessions] = {};
  uint64_t last_seq = 0;
  for (size_t i = 0; i < evs.size(); ++i) {
    if (i > 0) EXPECT_LT(last_seq, evs[i].seq);
    last_seq = evs[i].seq;
    EXPECT_EQ(evs[i].p0, next_p0[evs[i].session]++);
  }
}

TEST(ObsJsonl, StableLineFormat) {
  std::ostringstream out;
  JsonlSink sink(out);
  ASSERT_TRUE(sink.ok());
  TraceEvent ev;
  ev.kind = SpanKind::kTunerDecision;
  ev.session = 3;
  ev.start_ns = 100;
  ev.dur_ns = 7;
  ev.p0 = 1;
  ev.p5 = 6;
  sink.record(ev);
  sink.record(ev);
  sink.flush();
  EXPECT_EQ(out.str(),
            "{\"seq\":0,\"kind\":\"tuner_decision\",\"session\":3,"
            "\"t_ns\":100,\"dur_ns\":7,\"p0\":1,\"p1\":0,\"p2\":0,\"p3\":0,"
            "\"p4\":0,\"p5\":6}\n"
            "{\"seq\":1,\"kind\":\"tuner_decision\",\"session\":3,"
            "\"t_ns\":100,\"dur_ns\":7,\"p0\":1,\"p1\":0,\"p2\":0,\"p3\":0,"
            "\"p4\":0,\"p5\":6}\n");
}

// ---- export ---------------------------------------------------------------

TEST(ObsExport, JsonAndPrometheusShapes) {
  MetricsRegistry reg;
  reg.counter("reqs", {{"object", "queue"}}).add(5);
  reg.gauge("depth").set(-2);
  Histogram& h = reg.histogram("lat");
  h.record(0);
  h.record(3);
  h.record(3);

  const std::string json = snapshot_json(reg);
  EXPECT_NE(json.find("\"name\":\"reqs\""), std::string::npos);
  EXPECT_NE(json.find("\"object\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"value\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":6"), std::string::npos);

  const std::string prom = prometheus_text(reg);
  EXPECT_NE(prom.find("reqs{object=\"queue\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find("depth -2\n"), std::string::npos);
  // Cumulative buckets: v=0 lands at le=0, both v=3 at le=3 (bit_width 2).
  EXPECT_NE(prom.find("lat_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_sum 6\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_count 3\n"), std::string::npos);
}

TEST(ObsExport, EngineStatsJsonStableKeys) {
  engine::EngineStats s;
  s.lanes = 2;
  s.events_fed = 10;
  const std::string json = engine_stats_json(s);
  for (const char* key :
       {"lanes", "events_fed", "rounds_sequential", "rounds_parallel",
        "peak_frontier", "dedup_probes", "dedup_hits", "states_recycled",
        "engage_width", "retreat_width", "mode_switches", "tuner_updates",
        "probe_batches", "prefetch_batches", "filter_in_place_rounds",
        "priors_applied"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"), std::string::npos)
        << key;
  }
  EXPECT_NE(json.find("\"lanes\":2"), std::string::npos);

  MetricsRegistry reg;
  sample_engine_stats(reg, s, {{"session", "a"}});
  MetricsSnapshot snap = reg.snapshot();
  const Labels want{{"session", "a"}};
  const MetricValue* v = snap.find("engine_events_fed", &want);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->gauge, 10);
}

// ---- end-to-end hook attachment -------------------------------------------

TEST(ObsHooks, LinMonitorRecordsRoundsAndClonesInherit) {
  MetricsRegistry reg;
  RingRecorder ring;
  EngineHooks hooks = make_engine_hooks(reg, {}, &ring, /*session=*/9);

  auto spec = make_queue_spec();
  LinMonitor m(*spec);
  m.attach_obs(&hooks);
  test::OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  m.feed(Event::inv(a));
  m.feed(Event::res(a, kTrue));
  EXPECT_TRUE(m.ok());

  // A clone keeps reporting into the same instruments.
  auto c = m.clone();
  c->feed(Event::inv(b));
  c->feed(Event::res(b, 1));
  EXPECT_TRUE(c->ok());

  MetricsSnapshot snap = reg.snapshot();
  const Labels seq{{"mode", "seq"}};
  const MetricValue* rounds = snap.find("engine_round_ns", &seq);
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->count, 2u);  // one closure round per monitor's response
  const MetricValue* width = snap.find("engine_frontier_width");
  ASSERT_NE(width, nullptr);
  EXPECT_EQ(width->count, 2u);
  for (const TraceEvent& ev : ring.events()) {
    EXPECT_EQ(ev.kind, SpanKind::kFeedRound);
    EXPECT_EQ(ev.session, 9u);
  }
  EXPECT_EQ(ring.recorded(), 2u);

  // Detach: further feeds leave the instruments untouched.
  m.attach_obs(nullptr);
  OpDesc d = f.op(0, Method::kEnqueue, 2);
  m.feed(Event::inv(d));
  m.feed(Event::res(d, kTrue));
  EXPECT_EQ(reg.snapshot().find("engine_round_ns", &seq)->count, 2u);
}

TEST(ObsHooks, MonitorServiceObservedSessions) {
  RingRecorder ring;
  service::ServiceOptions so;
  so.lanes = 2;
  so.observe = true;
  so.trace = &ring;
  service::MonitorService svc(so);
  EXPECT_TRUE(svc.observed());

  test::OpFactory f;
  auto sid_a = svc.open("alpha", make_queue_spec());
  auto sid_b = svc.open("beta", make_queue_spec());
  for (int i = 0; i < 4; ++i) {
    OpDesc op = f.op(0, Method::kEnqueue, i + 1);
    svc.feed(sid_a, Event::inv(op));
    svc.feed(sid_a, Event::res(op, kTrue));
    OpDesc op2 = f.op(1, Method::kEnqueue, i + 1);
    svc.feed(sid_b, Event::inv(op2));
    svc.feed(sid_b, Event::res(op2, kTrue));
  }
  svc.drain();
  EXPECT_TRUE(svc.session(sid_a).ok());

  MetricsSnapshot snap = svc.metrics_snapshot();
  // Service-plane instruments.
  const MetricValue* rounds = snap.find("service_drain_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GE(rounds->counter, 1u);
  const MetricValue* drained = snap.find("service_events_drained_total");
  ASSERT_NE(drained, nullptr);
  EXPECT_EQ(drained->counter, 16u);
  // Per-session engine instruments, labelled by session name, with the
  // engine totals sampled in.
  const Labels alpha{{"session", "alpha"}};
  const Labels beta{{"session", "beta"}};
  const MetricValue* fed_a = snap.find("engine_events_fed", &alpha);
  const MetricValue* fed_b = snap.find("engine_events_fed", &beta);
  ASSERT_NE(fed_a, nullptr);
  ASSERT_NE(fed_b, nullptr);
  EXPECT_EQ(fed_a->gauge, 8);
  EXPECT_EQ(fed_b->gauge, 8);
  // Executor instruments live in the service registry (service-owned
  // executor).
  EXPECT_NE(snap.find("exec_phase_ns"), nullptr);

  // Trace: session batches attribute to their session ids; drain rounds
  // and session batches both present.
  bool saw_drain = false, saw_batch = false;
  for (const TraceEvent& ev : ring.events()) {
    if (ev.kind == SpanKind::kDrainRound) saw_drain = true;
    if (ev.kind == SpanKind::kSessionBatch) {
      saw_batch = true;
      EXPECT_LE(ev.session, 1u);
    }
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_batch);

  // The machine-readable endpoint renders the same snapshot.
  const std::string json = svc.metrics_json();
  EXPECT_NE(json.find("service_drain_rounds_total"), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"alpha\""), std::string::npos);
}

TEST(ObsHooks, UnobservedServiceHasNoPlane) {
  service::MonitorService svc;
  EXPECT_FALSE(svc.observed());
  EXPECT_TRUE(svc.metrics_snapshot().values.empty());
  auto sid = svc.open("s", make_queue_spec());
  EXPECT_EQ(svc.session(sid).metrics(), nullptr);
}

}  // namespace
}  // namespace selin::obs
