// Set-linearizability (Section 7.1 generalization): the exchanger object and
// the SetLinMonitor.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

History paired_exchange(OpFactory& f, Value va, Value vb) {
  OpDesc a = f.op(0, Method::kExchange, va);
  OpDesc b = f.op(1, Method::kExchange, vb);
  return History{Event::inv(a), Event::inv(b), Event::res(a, vb),
                 Event::res(b, va)};
}

TEST(Exchanger, PairedExchangeIsSetLinearizable) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  History h = paired_exchange(f, 10, 20);
  EXPECT_TRUE(set_linearizable(*spec, h));
}

TEST(Exchanger, SoloExchangeReturnsEmpty) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  OpDesc a = f.op(0, Method::kExchange, 10);
  History h{Event::inv(a), Event::res(a, kEmpty)};
  EXPECT_TRUE(set_linearizable(*spec, h));
}

TEST(Exchanger, SoloExchangeCannotReceiveValue) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  // Two exchanges that do NOT overlap: they cannot be set-linearized
  // together, so neither can return the other's value.
  OpDesc a = f.op(0, Method::kExchange, 10);
  OpDesc b = f.op(1, Method::kExchange, 20);
  History h{Event::inv(a), Event::res(a, 20), Event::inv(b),
            Event::res(b, 10)};
  EXPECT_FALSE(set_linearizable(*spec, h));
}

TEST(Exchanger, MismatchedPairRejected) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  OpDesc a = f.op(0, Method::kExchange, 10);
  OpDesc b = f.op(1, Method::kExchange, 20);
  // a receives b's value but b claims empty: inconsistent.
  History h{Event::inv(a), Event::inv(b), Event::res(a, 20),
            Event::res(b, kEmpty)};
  EXPECT_FALSE(set_linearizable(*spec, h));
}

TEST(Exchanger, SequentialPairsThenSolo) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  History h = paired_exchange(f, 1, 2);
  History h2 = paired_exchange(f, 3, 4);
  h.insert(h.end(), h2.begin(), h2.end());
  OpDesc solo = f.op(2, Method::kExchange, 5);
  h.push_back(Event::inv(solo));
  h.push_back(Event::res(solo, kEmpty));
  EXPECT_TRUE(set_linearizable(*spec, h));
}

TEST(Exchanger, ThreeWayOverlapPairsTwo) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  OpDesc a = f.op(0, Method::kExchange, 1);
  OpDesc b = f.op(1, Method::kExchange, 2);
  OpDesc c = f.op(2, Method::kExchange, 3);
  // All three overlap; a and c pair, b misses out.
  History h{Event::inv(a),      Event::inv(b),      Event::inv(c),
            Event::res(a, 3),   Event::res(b, kEmpty), Event::res(c, 1)};
  EXPECT_TRUE(set_linearizable(*spec, h));
  // ...but all three pairing mutually is impossible.
  History bad{Event::inv(a),    Event::inv(b),    Event::inv(c),
              Event::res(a, 2), Event::res(b, 3), Event::res(c, 1)};
  EXPECT_FALSE(set_linearizable(*spec, bad));
}

TEST(Exchanger, MonitorCloneForks) {
  auto spec = make_exchanger_spec();
  SetLinMonitor m(*spec);
  OpFactory f;
  OpDesc a = f.op(0, Method::kExchange, 1);
  m.feed(Event::inv(a));
  auto fork = m.clone();
  fork->feed(Event::res(a, 99));  // impossible value
  EXPECT_FALSE(fork->ok());
  m.feed(Event::res(a, kEmpty));
  EXPECT_TRUE(m.ok());
}

TEST(Exchanger, AsGenLinObject) {
  auto obj = make_set_linearizable_object(make_exchanger_spec());
  OpFactory f;
  History h = paired_exchange(f, 10, 20);
  EXPECT_TRUE(obj->contains(h));
  OpDesc solo = f.op(2, Method::kExchange, 5);
  h.push_back(Event::inv(solo));
  h.push_back(Event::res(solo, 10));  // stale partner value
  EXPECT_FALSE(obj->contains(h));
}

}  // namespace
}  // namespace selin
