// Interval-linearizability engine: directed cases on the write-snapshot
// interval specification, and randomized cross-validation against the direct
// task monitor (two independent formalizations of the same object must
// agree — the [17] equivalence between tasks and interval-sequential
// objects, mechanically).
#include <gtest/gtest.h>

#include "selin/lincheck/intervallin.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

Value mask(std::initializer_list<ProcId> pids) {
  uint64_t m = 0;
  for (ProcId p : pids) m |= 1ULL << p;
  return static_cast<Value>(m);
}

OpDesc ws(ProcId p) { return OpDesc{OpId{p, 0}, Method::kWriteSnap, 1}; }

TEST(IntervalLin, SoloWriteSnap) {
  auto spec = make_write_snapshot_interval_spec();
  History h{Event::inv(ws(0)), Event::res(ws(0), mask({0}))};
  EXPECT_TRUE(interval_linearizable(*spec, h));
  History bad{Event::inv(ws(0)), Event::res(ws(0), mask({1}))};
  EXPECT_FALSE(interval_linearizable(*spec, bad));
}

TEST(IntervalLin, ConcurrentComparableSnapshots) {
  auto spec = make_write_snapshot_interval_spec();
  History h{Event::inv(ws(0)), Event::inv(ws(1)),
            Event::res(ws(0), mask({0})), Event::res(ws(1), mask({0, 1}))};
  EXPECT_TRUE(interval_linearizable(*spec, h));
  // Split brain: {0} and {1} incomparable — no interval-sequential witness.
  History bad{Event::inv(ws(0)), Event::inv(ws(1)),
              Event::res(ws(0), mask({0})), Event::res(ws(1), mask({1}))};
  EXPECT_FALSE(interval_linearizable(*spec, bad));
}

TEST(IntervalLin, TheIntervalShape) {
  // The signature behavior linearizability cannot express: one operation
  // overlapping two non-overlapping operations, each seeing a different
  // prefix.  p0's op spans p1's and p2's sequential ops; p1 sees {0,1},
  // p2 sees {0,1,2}, and p0 responds LAST with everything — its effect
  // (the write) happened at the start, its response at the end: an interval.
  auto spec = make_write_snapshot_interval_spec();
  History h{
      Event::inv(ws(0)),
      Event::inv(ws(1)), Event::res(ws(1), mask({0, 1})),
      Event::inv(ws(2)), Event::res(ws(2), mask({0, 1, 2})),
      Event::res(ws(0), mask({0, 1, 2})),
  };
  EXPECT_TRUE(interval_linearizable(*spec, h));
  // Whereas p1 and p2 both seeing p0 while disagreeing on each other is
  // impossible (p1 before p2 in real time ⟹ p2's mask ⊇ p1's).
  History bad{
      Event::inv(ws(0)),
      Event::inv(ws(1)), Event::res(ws(1), mask({0, 1})),
      Event::inv(ws(2)), Event::res(ws(2), mask({0, 2})),
      Event::res(ws(0), mask({0, 1, 2})),
  };
  EXPECT_FALSE(interval_linearizable(*spec, bad));
}

TEST(IntervalLin, RealTimeOrderEnforced) {
  auto spec = make_write_snapshot_interval_spec();
  // p0 completes before p1 starts; p1 must include p0.
  History bad{Event::inv(ws(0)), Event::res(ws(0), mask({0})),
              Event::inv(ws(1)), Event::res(ws(1), mask({1}))};
  EXPECT_FALSE(interval_linearizable(*spec, bad));
  History good{Event::inv(ws(0)), Event::res(ws(0), mask({0})),
               Event::inv(ws(1)), Event::res(ws(1), mask({0, 1}))};
  EXPECT_TRUE(interval_linearizable(*spec, good));
}

TEST(IntervalLin, OneShotEnforced) {
  auto spec = make_write_snapshot_interval_spec();
  OpDesc second{OpId{0, 1}, Method::kWriteSnap, 2};
  History h{Event::inv(ws(0)), Event::res(ws(0), mask({0})),
            Event::inv(second), Event::res(second, mask({0}))};
  EXPECT_FALSE(interval_linearizable(*spec, h));
}

TEST(IntervalLin, PendingOpsAreFree) {
  auto spec = make_write_snapshot_interval_spec();
  // p1 invoked but never responded: p0 may or may not see it.
  History h1{Event::inv(ws(1)), Event::inv(ws(0)),
             Event::res(ws(0), mask({0}))};
  History h2{Event::inv(ws(1)), Event::inv(ws(0)),
             Event::res(ws(0), mask({0, 1}))};
  EXPECT_TRUE(interval_linearizable(*spec, h1));
  EXPECT_TRUE(interval_linearizable(*spec, h2));
}

TEST(IntervalLin, MonitorCloneForks) {
  auto spec = make_write_snapshot_interval_spec();
  IntervalLinMonitor m(*spec);
  m.feed(Event::inv(ws(0)));
  auto fork = m.clone();
  fork->feed(Event::res(ws(0), mask({1})));
  EXPECT_FALSE(fork->ok());
  m.feed(Event::res(ws(0), mask({0})));
  EXPECT_TRUE(m.ok());
}

// Cross-validation: the interval-sequential formalization and the direct
// task monitor must agree on random one-shot histories (valid and corrupted).
class WsCrossValidation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WsCrossValidation, TwoFormalizationsAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr size_t kProcs = 4;

  // Generate a plausible execution: random interleaving of inv/res with
  // masks derived from a simulated atomic register (valid), then sometimes
  // corrupt one response mask.
  History h;
  uint64_t written = 0;
  std::vector<int> phase(kProcs, 0);  // 0 not started, 1 open, 2 done
  std::vector<Value> out(kProcs, 0);
  size_t remaining = kProcs;
  while (remaining > 0) {
    ProcId p = static_cast<ProcId>(rng.below(kProcs));
    if (phase[p] == 0) {
      h.push_back(Event::inv(ws(p)));
      written |= 1ULL << p;  // the write takes effect at invocation
      phase[p] = 1;
    } else if (phase[p] == 1) {
      if (rng.chance(1, 2)) continue;  // dawdle
      out[p] = static_cast<Value>(written);
      h.push_back(Event::res(ws(p), out[p]));
      phase[p] = 2;
      --remaining;
    }
  }
  bool corrupted = rng.chance(1, 2);
  if (corrupted) {
    // Flip a random bit in a random response.
    for (Event& e : h) {
      if (e.is_res() && rng.chance(1, 2)) {
        e.result ^= static_cast<Value>(1ULL << rng.below(kProcs));
        break;
      }
    }
  }

  auto direct = make_write_snapshot_object(kProcs);
  auto interval_spec = make_write_snapshot_interval_spec();
  bool direct_ok = direct->contains(h);
  bool interval_ok = interval_linearizable(*interval_spec, h);
  EXPECT_EQ(direct_ok, interval_ok) << format_history(h);
  if (!corrupted) {
    EXPECT_TRUE(direct_ok) << format_history(h);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsCrossValidation,
                         ::testing::Range<uint64_t>(1, 33));

// The interval object plugs into the whole enforcement stack like any other
// GenLin member.
TEST(IntervalLin, UnderSelfEnforcementViaViews) {
  auto obj = make_interval_linearizable_object(
      make_write_snapshot_interval_spec());
  EXPECT_STREQ(obj->name(), "write-snapshot-interval");
  // A correct write-snapshot run assembled from chains (as in views_test).
  History h{Event::inv(ws(0)), Event::inv(ws(1)),
            Event::res(ws(0), mask({0, 1})), Event::res(ws(1), mask({0, 1}))};
  EXPECT_TRUE(obj->contains(h));
}

}  // namespace
}  // namespace selin
