// Unit tests for every sequential specification (Definition 4.1) and the
// sequential-history validator.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(QueueSpec, Fifo) {
  auto s = make_queue_spec()->initial();
  EXPECT_EQ(s->step(Method::kEnqueue, 1), kTrue);
  EXPECT_EQ(s->step(Method::kEnqueue, 2), kTrue);
  EXPECT_EQ(s->step(Method::kDequeue, kNoArg), 1);
  EXPECT_EQ(s->step(Method::kDequeue, kNoArg), 2);
  EXPECT_EQ(s->step(Method::kDequeue, kNoArg), kEmpty);
}

TEST(QueueSpec, CloneIsIndependent) {
  auto s = make_queue_spec()->initial();
  s->step(Method::kEnqueue, 1);
  auto c = s->clone();
  EXPECT_EQ(c->step(Method::kDequeue, kNoArg), 1);
  EXPECT_NE(s->encode(), c->encode());  // clone drained, original not
  EXPECT_EQ(s->step(Method::kDequeue, kNoArg), 1);  // original unaffected
  EXPECT_EQ(s->encode(), c->encode());  // both empty now
}

TEST(QueueSpec, EncodeDistinguishesOrder) {
  auto a = make_queue_spec()->initial();
  auto b = make_queue_spec()->initial();
  a->step(Method::kEnqueue, 1);
  a->step(Method::kEnqueue, 2);
  b->step(Method::kEnqueue, 2);
  b->step(Method::kEnqueue, 1);
  EXPECT_NE(a->encode(), b->encode());
}

TEST(StackSpec, Lifo) {
  auto s = make_stack_spec()->initial();
  EXPECT_EQ(s->step(Method::kPush, 1), kTrue);
  EXPECT_EQ(s->step(Method::kPush, 2), kTrue);
  EXPECT_EQ(s->step(Method::kPop, kNoArg), 2);
  EXPECT_EQ(s->step(Method::kPop, kNoArg), 1);
  EXPECT_EQ(s->step(Method::kPop, kNoArg), kEmpty);
}

TEST(SetSpec, InsertRemoveContains) {
  auto s = make_set_spec()->initial();
  EXPECT_EQ(s->step(Method::kContains, 5), kFalse);
  EXPECT_EQ(s->step(Method::kInsert, 5), kTrue);
  EXPECT_EQ(s->step(Method::kInsert, 5), kFalse);  // already present
  EXPECT_EQ(s->step(Method::kContains, 5), kTrue);
  EXPECT_EQ(s->step(Method::kRemove, 5), kTrue);
  EXPECT_EQ(s->step(Method::kRemove, 5), kFalse);
  EXPECT_EQ(s->step(Method::kContains, 5), kFalse);
}

TEST(PqueueSpec, ExtractsMinWithDuplicates) {
  auto s = make_pqueue_spec()->initial();
  s->step(Method::kPqInsert, 5);
  s->step(Method::kPqInsert, 3);
  s->step(Method::kPqInsert, 5);
  EXPECT_EQ(s->step(Method::kPqExtractMin, kNoArg), 3);
  EXPECT_EQ(s->step(Method::kPqExtractMin, kNoArg), 5);
  EXPECT_EQ(s->step(Method::kPqExtractMin, kNoArg), 5);
  EXPECT_EQ(s->step(Method::kPqExtractMin, kNoArg), kEmpty);
}

TEST(CounterSpec, IncReturnsNewValue) {
  auto s = make_counter_spec()->initial();
  EXPECT_EQ(s->step(Method::kCounterRead, kNoArg), 0);
  EXPECT_EQ(s->step(Method::kInc, kNoArg), 1);
  EXPECT_EQ(s->step(Method::kInc, kNoArg), 2);
  EXPECT_EQ(s->step(Method::kCounterRead, kNoArg), 2);
}

TEST(RegisterSpec, ReadsLastWrite) {
  auto s = make_register_spec(42)->initial();
  EXPECT_EQ(s->step(Method::kRead, kNoArg), 42);
  EXPECT_EQ(s->step(Method::kWrite, 7), kOk);
  EXPECT_EQ(s->step(Method::kRead, kNoArg), 7);
}

TEST(ConsensusSpec, FirstDecideWins) {
  auto s = make_consensus_spec()->initial();
  EXPECT_EQ(s->step(Method::kDecide, 9), 9);
  EXPECT_EQ(s->step(Method::kDecide, 4), 9);  // decision already fixed
  EXPECT_EQ(s->step(Method::kDecide, 9), 9);
}

TEST(Specs, ForeignMethodNeverMatches) {
  // Feeding a queue method to a stack state yields kError, which no observed
  // response equals — the checker then rejects mixed-object histories.
  auto s = make_stack_spec()->initial();
  EXPECT_EQ(s->step(Method::kEnqueue, 1), kError);
}

TEST(SeqHistoryValid, AcceptsAndRejects) {
  test::OpFactory f;
  auto spec = make_queue_spec();
  History good;
  test::seq_op(good, f, 0, Method::kEnqueue, 1, kTrue);
  test::seq_op(good, f, 1, Method::kDequeue, kNoArg, 1);
  EXPECT_TRUE(seq_history_valid(*spec, good));

  test::OpFactory f2;
  History bad;
  test::seq_op(bad, f2, 0, Method::kDequeue, kNoArg, 1);  // nothing enqueued
  EXPECT_FALSE(seq_history_valid(*spec, bad));

  // Non-sequential histories are rejected outright.
  OpDesc a = f2.op(0, Method::kEnqueue, 1);
  OpDesc b = f2.op(1, Method::kEnqueue, 2);
  History concurrent{Event::inv(a), Event::inv(b), Event::res(a, kTrue),
                     Event::res(b, kTrue)};
  EXPECT_FALSE(seq_history_valid(*spec, concurrent));
}

TEST(GenLinObject, ContainsMatchesMonitor) {
  auto obj = make_linearizable_object(make_queue_spec());
  EXPECT_STREQ(obj->name(), "queue");
  test::OpFactory f;
  History h;
  test::seq_op(h, f, 0, Method::kEnqueue, 3, kTrue);
  test::seq_op(h, f, 1, Method::kDequeue, kNoArg, 3);
  EXPECT_TRUE(obj->contains(h));
  test::seq_op(h, f, 1, Method::kDequeue, kNoArg, 3);  // dequeue twice
  EXPECT_FALSE(obj->contains(h));
}

}  // namespace
}  // namespace selin
