// Concurrent implementations: sequential semantics, multithreaded
// linearizability of the correct ones (recorder + offline checker), and the
// advertised misbehavior of every faulty one.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

OpDesc mk(ProcId p, uint32_t seq, Method m, Value arg = kNoArg) {
  return OpDesc{OpId{p, seq}, m, arg};
}

TEST(MsQueue, SequentialFifo) {
  auto q = make_ms_queue();
  EXPECT_EQ(q->apply(0, mk(0, 0, Method::kDequeue)), kEmpty);
  EXPECT_EQ(q->apply(0, mk(0, 1, Method::kEnqueue, 1)), kTrue);
  EXPECT_EQ(q->apply(0, mk(0, 2, Method::kEnqueue, 2)), kTrue);
  EXPECT_EQ(q->apply(0, mk(0, 3, Method::kDequeue)), 1);
  EXPECT_EQ(q->apply(0, mk(0, 4, Method::kDequeue)), 2);
  EXPECT_EQ(q->apply(0, mk(0, 5, Method::kDequeue)), kEmpty);
}

TEST(TreiberStack, SequentialLifo) {
  auto s = make_treiber_stack();
  EXPECT_EQ(s->apply(0, mk(0, 0, Method::kPop)), kEmpty);
  EXPECT_EQ(s->apply(0, mk(0, 1, Method::kPush, 1)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, 2, Method::kPush, 2)), kTrue);
  EXPECT_EQ(s->apply(0, mk(0, 3, Method::kPop)), 2);
  EXPECT_EQ(s->apply(0, mk(0, 4, Method::kPop)), 1);
}

TEST(AtomicCounter, SequentialSemantics) {
  auto c = make_atomic_counter();
  EXPECT_EQ(c->apply(0, mk(0, 0, Method::kCounterRead)), 0);
  EXPECT_EQ(c->apply(0, mk(0, 1, Method::kInc)), 1);
  EXPECT_EQ(c->apply(0, mk(0, 2, Method::kInc)), 2);
  EXPECT_EQ(c->apply(0, mk(0, 3, Method::kCounterRead)), 2);
}

TEST(CasConsensus, FirstDecideWinsAcrossThreads) {
  auto c = make_cas_consensus();
  constexpr size_t kProcs = 8;
  std::vector<Value> decisions(kProcs);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      decisions[p] = c->apply(p, mk(p, 0, Method::kDecide, 1000 + p));
    });
  }
  for (auto& t : threads) t.join();
  for (size_t p = 1; p < kProcs; ++p) EXPECT_EQ(decisions[p], decisions[0]);
  EXPECT_GE(decisions[0], 1000);
  EXPECT_LT(decisions[0], 1000 + static_cast<Value>(kProcs));
}

struct ImplCase {
  const char* label;
  std::function<std::unique_ptr<IConcurrent>()> make;
  ObjectKind kind;
};

class CorrectImplStress : public ::testing::TestWithParam<ImplCase> {};

TEST_P(CorrectImplStress, ConcurrentHistoryLinearizable) {
  const ImplCase& c = GetParam();
  constexpr size_t kProcs = 4;
  auto impl = c.make();
  RecordingConcurrent recorded(*impl, 4096);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 83 + 19);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 100; ++i) {
        auto [m, arg] = random_op(c.kind, rng);
        recorded.apply(p, OpDesc{OpId{p, i}, m, arg});
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(recorded.overflowed());
  auto spec = make_spec(c.kind);
  EXPECT_TRUE(linearizable(*spec, recorded.history())) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Impls, CorrectImplStress,
    ::testing::Values(
        ImplCase{"ms_queue", make_ms_queue, ObjectKind::kQueue},
        ImplCase{"treiber", make_treiber_stack, ObjectKind::kStack},
        ImplCase{"counter", make_atomic_counter, ObjectKind::kCounter},
        ImplCase{"register", [] { return make_cas_register(0); },
                 ObjectKind::kRegister},
        ImplCase{"consensus", make_cas_consensus, ObjectKind::kConsensus},
        ImplCase{"coarse_queue", make_coarse_queue, ObjectKind::kQueue},
        ImplCase{"coarse_stack", make_coarse_stack, ObjectKind::kStack}),
    [](const auto& info) { return std::string(info.param.label); });

// ---- Faulty implementations misbehave as advertised ------------------------

TEST(Thm51Queue, LiesExactlyOnce) {
  auto q = make_thm51_queue(1);
  EXPECT_EQ(q->apply(0, mk(0, 0, Method::kDequeue)), kEmpty);
  EXPECT_EQ(q->apply(1, mk(1, 0, Method::kDequeue)), 1);      // the lie
  EXPECT_EQ(q->apply(1, mk(1, 1, Method::kDequeue)), kEmpty);  // only once
  EXPECT_EQ(q->apply(0, mk(0, 1, Method::kEnqueue, 9)), kTrue);
  EXPECT_EQ(q->apply(0, mk(0, 2, Method::kDequeue)), kEmpty);  // swallowed
}

TEST(LossyQueue, DropsSomeEnqueues) {
  auto q = make_lossy_queue(1, 2, 5);
  int lost = 0;
  for (uint32_t i = 0; i < 64; ++i) {
    q->apply(0, mk(0, i, Method::kEnqueue, i + 1));
  }
  for (uint32_t i = 64; i < 192; ++i) {
    if (q->apply(0, mk(0, i, Method::kDequeue)) == kEmpty) ++lost;
  }
  EXPECT_GT(lost, 0);  // with p=1/2 over 64 enqueues this is certain-ish
}

TEST(DupQueue, RedeliversValues) {
  auto q = make_dup_queue(1, 2, 6);
  for (uint32_t i = 0; i < 32; ++i) {
    q->apply(0, mk(0, i, Method::kEnqueue, i + 1));
  }
  std::set<Value> seen;
  int dups = 0;
  for (uint32_t i = 32; i < 96; ++i) {
    Value v = q->apply(0, mk(0, i, Method::kDequeue));
    if (v == kEmpty) break;
    if (!seen.insert(v).second) ++dups;
  }
  EXPECT_GT(dups, 0);
}

TEST(StaleCounter, LosesIncrements) {
  auto c = make_stale_counter(1, 2, 7);
  Value last = 0;
  int stuck = 0;
  for (uint32_t i = 0; i < 64; ++i) {
    Value v = c->apply(0, mk(0, i, Method::kInc));
    if (v == last) ++stuck;
    last = v;
  }
  EXPECT_GT(stuck, 0);
}

TEST(StaleRegister, ReturnsOverwrittenValues) {
  auto r = make_stale_register(1, 1, 8);  // always stale
  r->apply(0, mk(0, 0, Method::kWrite, 5));
  EXPECT_NE(r->apply(0, mk(0, 1, Method::kRead)), 5);
}

TEST(InvalidConsensus, ViolatesValidity) {
  auto c = make_invalid_consensus(0x40);
  Value d = c->apply(0, mk(0, 0, Method::kDecide, 3));
  EXPECT_NE(d, 3);  // nobody proposed this value
  // Later deciders still agree with the corrupted decision.
  EXPECT_EQ(c->apply(1, mk(1, 0, Method::kDecide, 9)), d);
}

}  // namespace
}  // namespace selin
