// Views, λ-records and the X(λ) construction (Section 7.3.3), including the
// worked example of Figure 9, Remark 7.2 validation, and the incremental
// XBuilder against the batch construction.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

// Hand-rolled chain builder for deterministic view construction in tests.
class ChainBuilder {
 public:
  explicit ChainBuilder(size_t n) : heads_(n, nullptr) {}

  const SetNode* announce(const OpDesc& op) {
    ProcId p = op.id.pid;
    nodes_.push_back(std::make_unique<SetNode>(SetNode{
        op, heads_[p], heads_[p] == nullptr ? 1u : heads_[p]->len + 1}));
    heads_[p] = nodes_.back().get();
    return heads_[p];
  }

  /// A view of the current heads (a snapshot taken "now").
  View snap() const { return View(heads_); }

 private:
  std::vector<const SetNode*> heads_;
  std::vector<std::unique_ptr<SetNode>> nodes_;
};

TEST(View, SizeAndContains) {
  test::OpFactory f;
  ChainBuilder cb(2);
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  cb.announce(a);
  View v1 = cb.snap();
  cb.announce(b);
  View v2 = cb.snap();
  EXPECT_EQ(v1.size(), 1u);
  EXPECT_EQ(v2.size(), 2u);
  EXPECT_TRUE(v1.contains(a.id));
  EXPECT_FALSE(v1.contains(b.id));
  EXPECT_TRUE(v2.contains(b.id));
  EXPECT_TRUE(View::subset_of(v1, v2));
  EXPECT_FALSE(View::subset_of(v2, v1));
  auto mat = v2.materialize();
  ASSERT_EQ(mat.size(), 2u);
  EXPECT_TRUE(mat[0].id == a.id);
}

// Figure 9: p1 runs op1 then op1'; p2 runs op2; p3 runs op3.  Views:
//   view  = {(p1,op1)}                              for op1
//   view' = {(p1,op1),(p1,op1'),(p2,op2)}           for op1'
//   view''= all four                                for op3
// op2 has NO record (pending in the verifier's τ).  X must place inv(op2) at
// the level of view' and leave it pending.
TEST(XOfLambda, Figure9Example) {
  test::OpFactory f;
  ChainBuilder cb(3);
  OpDesc op1 = f.op(0, Method::kRead, kNoArg);
  OpDesc op1p = f.op(0, Method::kRead, kNoArg);
  OpDesc op2 = f.op(1, Method::kRead, kNoArg);
  OpDesc op3 = f.op(2, Method::kRead, kNoArg);

  cb.announce(op1);
  View view = cb.snap();  // {op1}
  cb.announce(op1p);
  cb.announce(op2);
  View viewp = cb.snap();  // {op1, op1', op2}
  cb.announce(op3);
  View viewpp = cb.snap();  // all four

  std::vector<LambdaRecord> records{
      {op1, /*y=*/100, view},
      {op1p, /*y=*/101, viewp},
      {op3, /*y=*/103, viewpp},
  };
  EXPECT_EQ(validate_views(records), std::nullopt);

  History x = x_of_lambda(records);
  ASSERT_TRUE(well_formed(x));
  // Level 1: inv(op1), res(op1); level 2: inv(op1'), inv(op2), res(op1');
  // level 3: inv(op3), res(op3).  op2 stays pending.
  History expected{
      Event::inv(op1),  Event::res(op1, 100),  Event::inv(op1p),
      Event::inv(op2),  Event::res(op1p, 101), Event::inv(op3),
      Event::res(op3, 103),
  };
  ASSERT_EQ(x.size(), expected.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_TRUE(x[i] == expected[i]) << i << ": " << to_string(x[i]);
  }
  // ≺ structure: op1 precedes op1', op2, op3; op1' precedes op3 only.
  HistoryIndex idx(x);
  EXPECT_TRUE(idx.precedes(op1.id, op1p.id));
  EXPECT_TRUE(idx.precedes(op1.id, op2.id));
  EXPECT_TRUE(idx.precedes(op1.id, op3.id));
  EXPECT_TRUE(idx.precedes(op1p.id, op3.id));
  EXPECT_FALSE(idx.precedes(op1p.id, op2.id));
  EXPECT_FALSE(idx.precedes(op2.id, op3.id));  // op2 pending: never precedes
}

TEST(ValidateViews, DetectsSelfInclusionViolation) {
  test::OpFactory f;
  ChainBuilder cb(2);
  OpDesc a = f.op(0, Method::kRead);
  View empty = cb.snap();  // taken before announcing a
  cb.announce(a);
  std::vector<LambdaRecord> records{{a, 1, empty}};
  auto violation = validate_views(records);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("self-inclusion"), std::string::npos);
}

TEST(ValidateViews, DetectsIncomparableViews) {
  test::OpFactory f;
  // Two independent chain universes produce incomparable views.
  ChainBuilder cb1(2), cb2(2);
  OpDesc a = f.op(0, Method::kRead);
  OpDesc b = f.op(1, Method::kRead);
  cb1.announce(a);
  cb2.announce(b);
  std::vector<LambdaRecord> records{{a, 1, cb1.snap()}, {b, 2, cb2.snap()}};
  auto violation = validate_views(records);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("comparability"), std::string::npos);
}

TEST(ValidateViews, DetectsProcessSequentialityViolation) {
  test::OpFactory f;
  ChainBuilder cb(1);
  OpDesc a = f.op(0, Method::kRead);
  OpDesc b = f.op(0, Method::kRead);
  cb.announce(a);
  cb.announce(b);
  View both = cb.snap();
  // Both ops of p0 claim to see each other — impossible for a sequential
  // process.
  std::vector<LambdaRecord> records{{a, 1, both}, {b, 2, both}};
  auto violation = validate_views(records);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("sequentiality"), std::string::npos);
}

// The incremental builder must agree with the batch construction for every
// insertion order of the records, including late middle-level arrivals.
TEST(XBuilder, AgreesWithBatchUnderPermutations) {
  test::OpFactory f;
  ChainBuilder cb(3);
  std::vector<LambdaRecord> records;
  std::vector<OpDesc> ops;
  for (int round = 0; round < 3; ++round) {
    for (ProcId p = 0; p < 3; ++p) {
      OpDesc op = f.op(p, Method::kInc);
      cb.announce(op);
      records.push_back({op, 100 + round * 3 + p, cb.snap()});
    }
  }
  History batch = x_of_lambda(records);

  // Try several permutations (seeded shuffles).
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::vector<size_t> order(records.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng rng(seed);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    XBuilder builder;
    for (size_t i : order) builder.add(&records[i]);
    History inc = builder.flatten();
    ASSERT_EQ(inc.size(), batch.size()) << "seed " << seed;
    for (size_t i = 0; i < inc.size(); ++i) {
      EXPECT_TRUE(inc[i] == batch[i]) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(XBuilder, ReportsLowestChangedLevel) {
  test::OpFactory f;
  ChainBuilder cb(2);
  OpDesc a = f.op(0, Method::kInc);
  cb.announce(a);
  LambdaRecord ra{a, 1, cb.snap()};
  OpDesc b = f.op(1, Method::kInc);
  cb.announce(b);
  LambdaRecord rb{b, 2, cb.snap()};
  OpDesc c = f.op(0, Method::kInc);
  cb.announce(c);
  LambdaRecord rc{c, 3, cb.snap()};

  XBuilder builder;
  EXPECT_EQ(builder.add(&ra), 0u);  // first level
  EXPECT_EQ(builder.add(&rc), 1u);  // appended after
  // rb arrives late, landing between the two existing levels.
  EXPECT_EQ(builder.add(&rb), 1u);
  ASSERT_EQ(builder.levels().size(), 3u);
  EXPECT_EQ(builder.levels()[0].key, 1u);
  EXPECT_EQ(builder.levels()[1].key, 2u);
  EXPECT_EQ(builder.levels()[2].key, 3u);
  // The late level claimed inv(b); the last level kept only inv(c).
  ASSERT_EQ(builder.levels()[1].invs.size(), 1u);
  EXPECT_TRUE(builder.levels()[1].invs[0].id == b.id);
  ASSERT_EQ(builder.levels()[2].invs.size(), 1u);
  EXPECT_TRUE(builder.levels()[2].invs[0].id == c.id);
}

TEST(LeveledChecker, AllStridesAgreeWithFromScratchUnderPermutations) {
  // Random record batches inserted in shuffled order: every checkpoint
  // stride must produce the same verdict sequence as an offline re-check.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    test::OpFactory f;
    ChainBuilder cb(2);
    std::vector<LambdaRecord> records;
    Rng vals(seed);
    auto spec_state = make_queue_spec()->initial();
    for (int i = 0; i < 24; ++i) {
      ProcId p = static_cast<ProcId>(i % 2);
      auto [m, arg] = random_op(ObjectKind::kQueue, vals);
      OpDesc op = f.op(p, m, arg);
      cb.announce(op);
      records.push_back({op, spec_state->step(m, arg), cb.snap()});
    }
    // Publish order: a random merge of the two per-process streams.  Real
    // chains deliver a process's records oldest-first (Figure 10 publishes
    // the cumulative set after every op), so at most one record per process
    // is ever missing from a τ (Lemma 8.1); arbitrary shuffles would build
    // sketches no execution produces.
    std::vector<std::vector<size_t>> streams(2);
    for (size_t i = 0; i < records.size(); ++i) {
      streams[records[i].op.id.pid].push_back(i);
    }
    std::vector<size_t> order;
    Rng shuffle(seed * 17);
    size_t cursor[2] = {0, 0};
    while (order.size() < records.size()) {
      size_t p = shuffle.below(2);
      if (cursor[p] == streams[p].size()) p = 1 - p;
      order.push_back(streams[p][cursor[p]++]);
    }
    auto obj = make_linearizable_object(make_queue_spec());
    for (size_t stride : {size_t{1}, size_t{3}, size_t{16}, size_t{100}}) {
      XBuilder builder;
      LeveledChecker checker(*obj, stride);
      for (size_t i : order) {
        size_t lvl = builder.add(&records[i]);
        bool inc = checker.resync(builder, lvl);
        bool offline = obj->contains(builder.flatten());
        ASSERT_EQ(inc, offline)
            << "seed " << seed << " stride " << stride;
      }
    }
  }
}

TEST(LeveledChecker, IncrementalMatchesFromScratch) {
  // Queue records: enqueue then dequeue of the same value, valid history.
  test::OpFactory f;
  ChainBuilder cb(2);
  OpDesc e = f.op(0, Method::kEnqueue, 7);
  cb.announce(e);
  LambdaRecord re{e, kTrue, cb.snap()};
  OpDesc d = f.op(1, Method::kDequeue);
  cb.announce(d);
  LambdaRecord rd{d, 7, cb.snap()};

  auto obj = make_linearizable_object(make_queue_spec());
  XBuilder builder;
  LeveledChecker checker(*obj);
  EXPECT_TRUE(checker.resync(builder, builder.add(&re)));
  EXPECT_TRUE(checker.resync(builder, builder.add(&rd)));
  EXPECT_TRUE(obj->contains(builder.flatten()));

  // A second dequeue of the same value breaks it; incremental and batch
  // verdicts must agree.
  OpDesc d2 = f.op(1, Method::kDequeue);
  cb.announce(d2);
  LambdaRecord rd2{d2, 7, cb.snap()};
  EXPECT_FALSE(checker.resync(builder, builder.add(&rd2)));
  EXPECT_FALSE(obj->contains(builder.flatten()));
}

}  // namespace
}  // namespace selin
