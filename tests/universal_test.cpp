// Herlihy's universal construction: sequential semantics for every spec and
// multithreaded linearizability, validated both by the ground-truth recorder
// + offline checker and by running it under the self-enforced wrapper.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

class UniversalSweep : public ::testing::TestWithParam<ObjectKind> {};

TEST_P(UniversalSweep, SequentialSemanticsMatchSpec) {
  ObjectKind kind = GetParam();
  auto u = make_universal(make_spec(kind));
  auto reference = make_spec(kind)->initial();
  Rng rng(99);
  for (uint32_t i = 0; i < 200; ++i) {
    auto [m, arg] = random_op(kind, rng);
    OpDesc op{OpId{0, i}, m, arg};
    EXPECT_EQ(u->apply(0, op), reference->step(m, arg)) << i;
  }
}

TEST_P(UniversalSweep, ConcurrentHistoryLinearizable) {
  ObjectKind kind = GetParam();
  constexpr size_t kProcs = 4;
  auto u = make_universal(make_spec(kind));
  RecordingConcurrent recorded(*u, 4096);

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p, kind] {
      Rng rng(p * 59 + 29);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 60; ++i) {
        auto [m, arg] = random_op(kind, rng);
        recorded.apply(p, OpDesc{OpId{p, i}, m, arg});
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(recorded.overflowed());
  auto spec = make_spec(kind);
  EXPECT_TRUE(linearizable(*spec, recorded.history()));
}

INSTANTIATE_TEST_SUITE_P(
    Objects, UniversalSweep,
    ::testing::Values(ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kSet,
                      ObjectKind::kPqueue, ObjectKind::kCounter,
                      ObjectKind::kRegister, ObjectKind::kConsensus),
    [](const auto& info) {
      return std::string(object_kind_name(info.param));
    });

TEST(Universal, UnderSelfEnforcementNeverErrors) {
  constexpr size_t kProcs = 3;
  auto u = make_universal(make_stack_spec());
  auto obj = make_linearizable_object(make_stack_spec());
  SelfEnforced se(kProcs, *u, *obj);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p + 71);
      barrier.arrive_and_wait();
      for (int i = 0; i < 100; ++i) {
        auto [m, arg] = random_op(ObjectKind::kStack, rng);
        se.apply(p, m, arg);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(se.error_count(), 0u);
}

}  // namespace
}  // namespace selin
