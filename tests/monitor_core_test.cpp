// MonitorCore: the shared publish/check machinery under the three verifier
// algorithms — incremental merging of records, sketch consistency across
// checkers, and agreement between the incremental leveled verdict and an
// offline from-scratch membership test (the key internal invariant).
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(MonitorCore, EmptyCheckIsOk) {
  auto obj = make_linearizable_object(make_queue_spec());
  MonitorCore core(2, 2, *obj);
  EXPECT_TRUE(core.check(0));
  EXPECT_TRUE(core.sketch(0).empty());
  EXPECT_EQ(core.record_count(0), 0u);
}

TEST(MonitorCore, PublishedRecordsVisibleToAllCheckers) {
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *q);
  MonitorCore core(2, 3, *obj);

  auto r = astar.apply(0, Method::kEnqueue, 5);
  core.publish(0, r.op, r.y, std::move(r.view));
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(core.check(c));
    EXPECT_EQ(core.record_count(c), 1u);
    EXPECT_EQ(core.sketch(c).size(), 2u);
  }
}

TEST(MonitorCore, IncrementalAgreesWithOfflineOnRandomRuns) {
  // Drive a full A* workload single-threaded with two interleaved producers;
  // after every publish, the incremental verdict must equal an offline
  // from-scratch membership test of the flattened sketch.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto q = make_ms_queue();
    auto obj = make_linearizable_object(make_queue_spec());
    AStar astar(2, *q);
    MonitorCore core(2, 1, *obj);
    Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      ProcId p = static_cast<ProcId>(rng.below(2));
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      auto r = astar.apply(p, m, arg);
      core.publish(p, r.op, r.y, std::move(r.view));
      bool inc = core.check(0);
      bool offline = obj->contains(core.sketch(0));
      ASSERT_EQ(inc, offline) << "seed " << seed << " step " << i;
      ASSERT_TRUE(inc);  // correct A: always ok
    }
  }
}

TEST(MonitorCore, LateRecordLandsInMiddleLevel) {
  // Producer 0 completes two ops; producer 1's record for an op announced
  // between them is published late.  The checker must fold it into the
  // middle of the sketch and keep the verdict correct.
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *q);
  SteppedAStar step(astar);
  MonitorCore core(2, 1, *obj);

  auto r1 = step.run_all(0, Method::kEnqueue, 1);
  // p1 announces+runs its op now (its view is small)...
  step.announce(1, Method::kEnqueue, 2);
  step.invoke(1);
  auto r2 = step.complete(1);
  auto r3 = step.run_all(0, Method::kEnqueue, 3);

  // ...but its record reaches M only after p0's second op.
  core.publish(0, r1.op, r1.y, std::move(r1.view));
  EXPECT_TRUE(core.check(0));
  core.publish(0, r3.op, r3.y, std::move(r3.view));
  EXPECT_TRUE(core.check(0));
  EXPECT_EQ(core.record_count(0), 2u);
  core.publish(1, r2.op, r2.y, std::move(r2.view));
  EXPECT_TRUE(core.check(0));
  EXPECT_EQ(core.record_count(0), 3u);
  // The sketch now contains all three enqueues, well-formed and in the
  // object.
  History sk = core.sketch(0);
  EXPECT_TRUE(well_formed(sk));
  EXPECT_EQ(sk.size(), 6u);
  EXPECT_TRUE(obj->contains(sk));
}

TEST(MonitorCore, ConcurrentPublishAndCheckIsSafe) {
  constexpr size_t kProducers = 4;
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(kProducers, *q);
  MonitorCore core(kProducers, kProducers + 1, *obj);

  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread checker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!core.check(kProducers)) bad.store(true);
    }
    if (!core.check(kProducers)) bad.store(true);
  });

  SpinBarrier barrier(kProducers);
  std::vector<std::thread> producers;
  for (ProcId p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(p + 1000);
      barrier.arrive_and_wait();
      for (int i = 0; i < 150; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        auto r = astar.apply(p, m, arg);
        core.publish(p, r.op, r.y, std::move(r.view));
        if (!core.check(p)) bad.store(true);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  checker.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
}  // namespace selin
