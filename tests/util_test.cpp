// Utility-layer tests: arena, step counter, RNG determinism, spin barrier.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(Arena, AllocatesAlignedDistinctMemory) {
  Arena a;
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 0xAB, 24);  // must be writable
  }
  EXPECT_GE(a.bytes_allocated(), 24000u);
}

TEST(Arena, CreateConstructsObjects) {
  Arena a;
  struct Pair {
    int x;
    int y;
  };
  Pair* p = a.create<Pair>(Pair{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
  int src[4] = {1, 2, 3, 4};
  int* copy = a.copy_range(src, 4);
  EXPECT_EQ(copy[3], 4);
  EXPECT_NE(static_cast<void*>(copy), static_cast<void*>(src));
}

TEST(Arena, LargeAllocationsSpanBlocks) {
  Arena a;
  void* big = a.allocate(3 << 20, 64);  // larger than one block
  std::memset(big, 0, 3 << 20);
  void* small = a.allocate(16, 8);
  EXPECT_NE(big, small);
}

TEST(Arena, ConcurrentAllocationIsSafe) {
  Arena a;
  constexpr size_t kThreads = 8;
  std::vector<std::vector<void*>> ptrs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        void* p = a.allocate(32, 8);
        std::memset(p, static_cast<int>(t), 32);
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<void*> all;
  for (auto& v : ptrs) {
    for (void* p : v) EXPECT_TRUE(all.insert(p).second);
  }
  EXPECT_EQ(all.size(), kThreads * 5000u);
}

TEST(Arena, InterleavedArenasKeepSeparateBlocks) {
  Arena a, b;
  void* pa = a.allocate(16, 8);
  void* pb = b.allocate(16, 8);
  void* pa2 = a.allocate(16, 8);
  // Bump allocation within one arena is contiguous even when another arena
  // is touched in between (per-arena thread-local blocks).
  EXPECT_EQ(static_cast<char*>(pa2) - static_cast<char*>(pa), 16);
  EXPECT_NE(pa, pb);
}

TEST(StepCounter, CountsAndResets) {
  StepCounter::set_enabled(true);
  StepCounter::reset_local();
  StepCounter::bump();
  StepCounter::bump();
  EXPECT_EQ(StepCounter::local_count(), 2u);
  StepProbe probe;
  StepCounter::bump();
  EXPECT_EQ(probe.steps(), 1u);
  StepCounter::set_enabled(false);
  StepCounter::bump();
  EXPECT_EQ(StepCounter::local_count(), 3u);
  StepCounter::set_enabled(true);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, RangeAndChanceBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    EXPECT_LT(r.below(10), 10u);
  }
  int heads = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r.chance(1, 2)) ++heads;
  }
  EXPECT_GT(heads, 350);
  EXPECT_LT(heads, 650);
}

TEST(SpinBarrier, SynchronizesRounds) {
  constexpr size_t kThreads = 6;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::vector<std::thread> threads;
  std::atomic<bool> violation{false};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        barrier.arrive_and_wait();
        phase_counts[round].fetch_add(1);
        barrier.arrive_and_wait();
        // After the closing barrier, everyone finished this round.
        if (phase_counts[round].load() != kThreads) violation.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  for (auto& pc : phase_counts) EXPECT_EQ(pc.load(), (int)kThreads);
}

TEST(Types, OpIdPackingRoundTrips) {
  OpId a{3, 17};
  OpId b{3, 18};
  EXPECT_NE(a.packed(), b.packed());
  EXPECT_TRUE(a < b);
  EXPECT_EQ(std::hash<OpId>{}(a), std::hash<OpId>{}(OpId{3, 17}));
}

TEST(Types, ValueStrings) {
  EXPECT_EQ(value_string(kEmpty), "empty");
  EXPECT_EQ(value_string(kOk), "ok");
  EXPECT_EQ(value_string(kError), "ERROR");
  EXPECT_EQ(value_string(42), "42");
}

}  // namespace
}  // namespace selin
