// Utility-layer tests: arena, step counter, RNG determinism, spin barrier.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(Arena, AllocatesAlignedDistinctMemory) {
  Arena a;
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 0xAB, 24);  // must be writable
  }
  EXPECT_GE(a.bytes_allocated(), 24000u);
}

TEST(Arena, CreateConstructsObjects) {
  Arena a;
  struct Pair {
    int x;
    int y;
  };
  Pair* p = a.create<Pair>(Pair{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
  int src[4] = {1, 2, 3, 4};
  int* copy = a.copy_range(src, 4);
  EXPECT_EQ(copy[3], 4);
  EXPECT_NE(static_cast<void*>(copy), static_cast<void*>(src));
}

TEST(Arena, LargeAllocationsSpanBlocks) {
  Arena a;
  void* big = a.allocate(3 << 20, 64);  // larger than one block
  std::memset(big, 0, 3 << 20);
  void* small = a.allocate(16, 8);
  EXPECT_NE(big, small);
}

TEST(Arena, ConcurrentAllocationIsSafe) {
  Arena a;
  constexpr size_t kThreads = 8;
  std::vector<std::vector<void*>> ptrs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        void* p = a.allocate(32, 8);
        std::memset(p, static_cast<int>(t), 32);
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<void*> all;
  for (auto& v : ptrs) {
    for (void* p : v) EXPECT_TRUE(all.insert(p).second);
  }
  EXPECT_EQ(all.size(), kThreads * 5000u);
}

TEST(Arena, InterleavedArenasKeepSeparateBlocks) {
  Arena a, b;
  void* pa = a.allocate(16, 8);
  void* pb = b.allocate(16, 8);
  void* pa2 = a.allocate(16, 8);
  // Bump allocation within one arena is contiguous even when another arena
  // is touched in between (per-arena thread-local blocks).
  EXPECT_EQ(static_cast<char*>(pa2) - static_cast<char*>(pa), 16);
  EXPECT_NE(pa, pb);
}

TEST(StepCounter, CountsAndResets) {
  StepCounter::set_enabled(true);
  StepCounter::reset_local();
  StepCounter::bump();
  StepCounter::bump();
  EXPECT_EQ(StepCounter::local_count(), 2u);
  StepProbe probe;
  StepCounter::bump();
  EXPECT_EQ(probe.steps(), 1u);
  StepCounter::set_enabled(false);
  StepCounter::bump();
  EXPECT_EQ(StepCounter::local_count(), 3u);
  StepCounter::set_enabled(true);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, RangeAndChanceBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    EXPECT_LT(r.below(10), 10u);
  }
  int heads = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r.chance(1, 2)) ++heads;
  }
  EXPECT_GT(heads, 350);
  EXPECT_LT(heads, 650);
}

TEST(SpinBarrier, SynchronizesRounds) {
  constexpr size_t kThreads = 6;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::vector<std::thread> threads;
  std::atomic<bool> violation{false};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        barrier.arrive_and_wait();
        phase_counts[round].fetch_add(1);
        barrier.arrive_and_wait();
        // After the closing barrier, everyone finished this round.
        if (phase_counts[round].load() != kThreads) violation.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  for (auto& pc : phase_counts) EXPECT_EQ(pc.load(), (int)kThreads);
}

TEST(Types, OpIdPackingRoundTrips) {
  OpId a{3, 17};
  OpId b{3, 18};
  EXPECT_NE(a.packed(), b.packed());
  EXPECT_TRUE(a < b);
  EXPECT_EQ(std::hash<OpId>{}(a), std::hash<OpId>{}(OpId{3, 17}));
}

TEST(Types, ValueStrings) {
  EXPECT_EQ(value_string(kEmpty), "empty");
  EXPECT_EQ(value_string(kOk), "ok");
  EXPECT_EQ(value_string(kError), "ERROR");
  EXPECT_EQ(value_string(42), "42");
}

// ---------------------------------------------------------------------------
// Run-length op-set representations (util/interval_set.hpp): differential
// tests against std::set / std::map oracles, and the incremental Zobrist
// hash against element-wise recomputation.  The key generators are biased
// toward the structures the monitors produce — dense cohorts with a few
// holes — but include fully shredded domains (the documented degeneration).
// ---------------------------------------------------------------------------

uint64_t test_id_hash(uint64_t k) {
  k ^= 0x9E3779B97F4A7C15ull;
  k *= 0xBF58476D1CE4E5B9ull;
  return k ^ (k >> 31);
}

uint64_t test_kv_hash(uint64_t k, Value v) {
  return test_id_hash(k * 31 + static_cast<uint64_t>(v) + 1);
}

// The set invariants every mutation must preserve: runs sorted, disjoint,
// maximal (separated by at least one missing key), sizes consistent.
void check_interval_invariants(const IntervalSet& s) {
  uint64_t prev_end = 0;
  bool first = true;
  size_t elems = 0, runs = 0;
  s.for_each_run([&](IdRun r) {
    ASSERT_GE(r.len, 1u);
    if (!first) ASSERT_GT(r.start, prev_end);  // gap of >= 1: maximal
    first = false;
    prev_end = r.start + r.len;
    elems += r.len;
    ++runs;
  });
  EXPECT_EQ(elems, s.size());
  EXPECT_EQ(runs, s.run_count());
}

TEST(IntervalSet, WatermarkAndTailDirected) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  // Dense ascending inserts ride the watermark: one run, no tail.
  for (uint64_t k = 10; k < 20; ++k) EXPECT_TRUE(s.insert(k));
  EXPECT_FALSE(s.insert(15));
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_EQ(s.size(), 10u);
  // A hole in the middle splits the prefix into prefix + tail run.
  EXPECT_TRUE(s.erase(14));
  EXPECT_EQ(s.run_count(), 2u);
  EXPECT_FALSE(s.contains(14));
  // Refilling the hole merges everything back into the watermark.
  EXPECT_TRUE(s.insert(14));
  EXPECT_EQ(s.run_count(), 1u);
  // Prepending below base extends the prefix; a gap starts a new first run.
  EXPECT_TRUE(s.insert(9));
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_TRUE(s.insert(5));
  EXPECT_EQ(s.run_count(), 2u);
  check_interval_invariants(s);
  for (uint64_t k : {5, 9, 10, 19}) EXPECT_TRUE(s.contains(k));
  for (uint64_t k : {4, 6, 8, 20}) EXPECT_FALSE(s.contains(k));
}

TEST(IntervalSet, RandomizedDifferentialVsStdSet) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    IntervalSet s;
    std::set<uint64_t> oracle;
    // Narrow domains force dense runs and hole churn; wide ones shred.
    const uint64_t domain = seed % 2 == 0 ? 48 : 4096;
    for (int step = 0; step < 4000; ++step) {
      uint64_t k = rng.below(domain);
      if (rng.chance(3, 5)) {
        EXPECT_EQ(s.insert(k), oracle.insert(k).second);
      } else {
        EXPECT_EQ(s.erase(k), oracle.erase(k) > 0);
      }
      EXPECT_EQ(s.contains(k), oracle.count(k) > 0);
    }
    ASSERT_EQ(s.size(), oracle.size());
    check_interval_invariants(s);
    // for_each streams in ascending order, matching the oracle exactly.
    auto it = oracle.begin();
    s.for_each([&](uint64_t k) {
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(k, *it++);
    });
    EXPECT_EQ(it, oracle.end());
    // nth agrees with sorted order.
    size_t i = 0;
    for (uint64_t k : oracle) EXPECT_EQ(s.nth(i++), k);
  }
}

TEST(IntervalSet, InsertRangeDifferential) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    IntervalSet s;
    std::set<uint64_t> oracle;
    for (int step = 0; step < 300; ++step) {
      uint64_t start = rng.below(2048);
      uint64_t len = 1 + rng.below(12);
      bool disjoint = true;
      for (uint64_t k = start; k < start + len; ++k) {
        if (oracle.count(k) != 0) disjoint = false;
      }
      if (!disjoint) continue;  // insert_range's precondition
      s.insert_range(start, len);
      for (uint64_t k = start; k < start + len; ++k) oracle.insert(k);
      // Interleave point erases so ranges land next to ragged holes.
      if (rng.chance(1, 2) && !oracle.empty()) {
        uint64_t victim = s.nth(rng.below(s.size()));
        EXPECT_TRUE(s.erase(victim));
        oracle.erase(victim);
      }
    }
    ASSERT_EQ(s.size(), oracle.size());
    check_interval_invariants(s);
    auto it = oracle.begin();
    s.for_each([&](uint64_t k) { EXPECT_EQ(k, *it++); });
  }
}

TEST(IntervalSet, CanonicalAcrossInsertionOrders) {
  // The same set reached by watermark appends, reverse prepends, shuffled
  // point inserts, and range unions must compare equal (canonical runs).
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 30; ++k) {
    if (k % 7 != 3) keys.push_back(100 + k);  // dense prefix + holes
  }
  IntervalSet fwd, rev, shuf, ranged;
  for (uint64_t k : keys) fwd.insert(k);
  for (size_t i = keys.size(); i-- > 0;) rev.insert(keys[i]);
  Rng rng(99);
  std::vector<uint64_t> mixed = keys;
  for (size_t i = mixed.size(); i > 1; --i) {
    std::swap(mixed[i - 1], mixed[rng.below(i)]);
  }
  for (uint64_t k : mixed) shuf.insert(k);
  for (size_t b = 0; b < keys.size();) {
    size_t r = b + 1;
    while (r < keys.size() && keys[r] == keys[b] + (r - b)) ++r;
    ranged.insert_range(keys[b], r - b);
    b = r;
  }
  EXPECT_TRUE(fwd == rev);
  EXPECT_TRUE(fwd == shuf);
  EXPECT_TRUE(fwd == ranged);
  EXPECT_EQ(fwd.run_count(), 5u);  // 4 full cycles of 7 + the partial one
}

TEST(HashedIntervalSet, IncrementalHashMatchesElementwiseXor) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    HashedIntervalSet<test_id_hash> s;
    uint64_t expected = 0;  // element-wise XOR maintained independently
    std::set<uint64_t> oracle;
    for (int step = 0; step < 2000; ++step) {
      uint64_t k = rng.below(256);
      if (rng.chance(1, 20)) {
        uint64_t start = rng.below(256), len = 1 + rng.below(8);
        bool disjoint = true;
        for (uint64_t x = start; x < start + len; ++x) {
          if (oracle.count(x) != 0) disjoint = false;
        }
        if (!disjoint) continue;
        s.insert_range(start, len);
        for (uint64_t x = start; x < start + len; ++x) {
          oracle.insert(x);
          expected ^= test_id_hash(x);
        }
      } else if (rng.chance(3, 5)) {
        if (s.insert(k)) {
          oracle.insert(k);
          expected ^= test_id_hash(k);
        }
      } else if (s.erase(k)) {
        oracle.erase(k);
        expected ^= test_id_hash(k);
      }
      ASSERT_EQ(s.hash(), expected);
    }
    EXPECT_EQ(s.hash(), s.rehash());  // from-scratch cross-check
  }
}

TEST(ValueRunSet, RandomizedDifferentialVsStdMap) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ValueRunSet<test_kv_hash> s;
    std::map<uint64_t, Value> oracle;
    uint64_t expected = 0;
    // Few distinct values → long uniform runs; many → per-element runs.
    const Value values = seed % 2 == 0 ? 2 : 64;
    for (int step = 0; step < 3000; ++step) {
      uint64_t k = rng.below(96);
      Value v = static_cast<Value>(rng.below(static_cast<uint64_t>(values)));
      if (rng.chance(3, 5)) {
        if (oracle.count(k) == 0) {  // add's precondition: key absent
          s.add(k, v);
          oracle[k] = v;
          expected ^= test_kv_hash(k, v);
        }
      } else if (rng.chance(1, 2)) {
        bool removed = s.remove(k);
        EXPECT_EQ(removed, oracle.count(k) > 0);
        if (removed) {
          expected ^= test_kv_hash(k, oracle[k]);
          oracle.erase(k);
        }
      } else {
        // Fused filter: removes only on an exact (key, value) match.
        auto it = oracle.find(k);
        bool hit = it != oracle.end() && it->second == v;
        EXPECT_EQ(s.remove_if_equals(k, v), hit);
        if (hit) {
          expected ^= test_kv_hash(k, v);
          oracle.erase(it);
        }
      }
      const Value* got = s.find(k);
      auto it = oracle.find(k);
      ASSERT_EQ(got != nullptr, it != oracle.end());
      if (got != nullptr) EXPECT_EQ(*got, it->second);
      ASSERT_EQ(s.hash(), expected);
    }
    ASSERT_EQ(s.size(), oracle.size());
    EXPECT_EQ(s.hash(), s.rehash());
    // Iteration streams (key, value) pairs in ascending key order.
    auto it = oracle.begin();
    s.for_each([&](uint64_t k, Value v) {
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    });
    EXPECT_EQ(it, oracle.end());
    // Canonical maximal runs: no two adjacent runs are mergeable.
    uint64_t prev_end = 0;
    Value prev_v = 0;
    bool first = true;
    s.for_each_run([&](const ValueRun& r) {
      ASSERT_GE(r.len, 1u);
      if (!first) {
        ASSERT_GE(r.start, prev_end);
        if (r.start == prev_end) ASSERT_NE(r.v, prev_v);
      }
      first = false;
      prev_end = r.start + r.len;
      prev_v = r.v;
    });
  }
}

TEST(ValueRunSet, UniformCohortIsOneRun) {
  ValueRunSet<test_kv_hash> s;
  // A lockstep cohort acking uniformly — the shape add_run targets.
  s.add_run(1000, 16, kTrue);
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_EQ(s.size(), 16u);
  // Point adds on both flanks with the same value extend the run...
  s.add(999, kTrue);
  s.add(1016, kTrue);
  EXPECT_EQ(s.run_count(), 1u);
  // ...while a distinct value splits off its own run.
  s.add(1017, kFalse);
  EXPECT_EQ(s.run_count(), 2u);
  // Removing mid-run splits it; both halves keep the value.
  EXPECT_TRUE(s.remove(1005));
  EXPECT_EQ(s.run_count(), 3u);
  EXPECT_EQ(*s.find(1004), kTrue);
  EXPECT_EQ(*s.find(1006), kTrue);
  // add_run bridging two equal-value runs fuses them back into one.
  s.add_run(1005, 1, kTrue);
  EXPECT_EQ(s.run_count(), 2u);
  EXPECT_EQ(s.hash(), s.rehash());
}

TEST(IntervalSet, ResidentBytesReflectFragmentation) {
  IntervalSet dense, shredded;
  for (uint64_t k = 0; k < 64; ++k) dense.insert(k);
  for (uint64_t k = 0; k < 64; ++k) shredded.insert(k * 2);  // all holes
  EXPECT_EQ(dense.run_count(), 1u);
  EXPECT_EQ(shredded.run_count(), 64u);
  EXPECT_EQ(dense.resident_bytes(), sizeof(IntervalSet));  // inline
  EXPECT_GT(shredded.resident_bytes(), dense.resident_bytes());
  // The flat model the footprint facet compares against grows with
  // elements, not runs: the dense set must compress well past it.
  EXPECT_GT(small_vec_model_bytes(dense.size(), 8, 8),
            2 * dense.resident_bytes());
}

}  // namespace
}  // namespace selin
