// Randomized shredding of the binary wire protocol (src/selin/net/wire.hpp).
//
// Three invariant families:
//
//   * Round-trip against the text-parser oracle: a random well-formed
//     history encoded as a kEvents frame and decoded back must equal both
//     the original AND the history recovered through the *text* pipeline
//     (history_to_string -> parse_history_string) — two independent
//     serializations agreeing on every event.
//
//   * Canonical form: any record that decodes re-encodes to the identical
//     bytes, so corrupt input either fails validation or lands on a real
//     event — never on a third state.
//
//   * No UB on garbage: truncated prefixes report kNeedMore (never a bogus
//     frame), oversized/corrupt headers report kBad, random byte soup and
//     random typed-body parses terminate cleanly.  The assertions are mild;
//     the real judge is the ASan/UBSan and TSan CI legs running this binary
//     at raised SELIN_FUZZ_ROUNDS.
//
// Round counts scale with SELIN_FUZZ_ROUNDS (default 1), the repo-wide fuzz
// idiom: plain ctest is a fast smoke, the CI fuzz legs raise it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "selin/io/history_io.hpp"
#include "selin/net/wire.hpp"
#include "selin/util/rng.hpp"
#include "test_util.hpp"

namespace selin::net {
namespace {

size_t fuzz_rounds() {
  if (const char* s = std::getenv("SELIN_FUZZ_ROUNDS")) {
    long v = std::atol(s);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

bool events_equal(const Event& a, const Event& b) {
  return a.kind == b.kind && a.op == b.op && a.result == b.result;
}

const ObjectKind kKinds[] = {
    ObjectKind::kQueue,  ObjectKind::kStack,    ObjectKind::kSet,
    ObjectKind::kPqueue, ObjectKind::kCounter,  ObjectKind::kRegister,
    ObjectKind::kConsensus,
};

// ---- round-trip vs the text parser oracle ----------------------------------

TEST(WireFuzz, EventsRoundTripAgainstTextOracle) {
  const size_t rounds = 8 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    Rng rng(0x3317E0 + round * 7919);
    const ObjectKind kind = kKinds[rng.below(std::size(kKinds))];
    const History h = test::random_linearizable_history(
        kind, 2 + rng.below(4), 20 + rng.below(60), 0xFACE + round);

    // Binary round-trip.
    std::vector<uint8_t> wire;
    append_events(wire, /*session=*/7, /*seq=*/round, h);
    FrameView f;
    ASSERT_EQ(peek_frame(wire, f), DecodeStatus::kFrame);
    ASSERT_EQ(f.header.type, FrameType::kEvents);
    ASSERT_EQ(f.frame_len, wire.size());
    std::vector<Event> decoded;
    ASSERT_TRUE(decode_events(f.body, decoded));
    ASSERT_EQ(decoded.size(), h.size());

    // Text round-trip of the same history: the independent oracle.
    const History via_text = parse_history_string(history_to_string(h));
    ASSERT_EQ(via_text.size(), h.size());

    for (size_t i = 0; i < h.size(); ++i) {
      ASSERT_TRUE(events_equal(decoded[i], h[i])) << "wire mangled event " << i;
      ASSERT_TRUE(events_equal(decoded[i], via_text[i]))
          << "wire and text disagree at event " << i;
    }

    // Canonical form: re-encoding the decoded events reproduces the body.
    std::vector<uint8_t> rewire;
    append_events(rewire, 7, round, decoded);
    ASSERT_EQ(rewire, wire) << "decode/encode is not canonical";
  }
}

// Sentinel and extreme values survive the binary path (the text format is
// not expected to carry arbitrary int64s, so no oracle here).
TEST(WireFuzz, SentinelAndExtremeValuesRoundTrip) {
  const Value specials[] = {kEmpty,  kOk,     kError, kNoArg, 0, -1,
                            kTrue,   kFalse,  std::numeric_limits<Value>::max(),
                            std::numeric_limits<Value>::min() + 4};
  std::vector<Event> ev;
  uint32_t seq = 0;
  for (Value a : specials) {
    for (Value r : specials) {
      const OpDesc d{OpId{3, seq++}, Method::kWriteSnap, a};
      ev.push_back(Event::inv(d));
      ev.push_back(Event::res(d, r));
    }
  }
  std::vector<uint8_t> wire;
  append_events(wire, 1, 0, ev);
  FrameView f;
  ASSERT_EQ(peek_frame(wire, f), DecodeStatus::kFrame);
  std::vector<Event> decoded;
  ASSERT_TRUE(decode_events(f.body, decoded));
  ASSERT_EQ(decoded.size(), ev.size());
  for (size_t i = 0; i < ev.size(); ++i) {
    ASSERT_TRUE(events_equal(decoded[i], ev[i])) << i;
  }
}

// ---- typed control-frame bodies --------------------------------------------

TEST(WireFuzz, ControlFramesRoundTrip) {
  const size_t rounds = 16 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    Rng rng(0xC0DE + round);
    std::vector<uint8_t> w;
    FrameView f;

    const uint32_t sid = static_cast<uint32_t>(rng.next());
    {
      std::string name(rng.below(40), 'x');
      for (auto& ch : name) ch = static_cast<char>('a' + rng.below(26));
      const uint8_t kind = static_cast<uint8_t>(rng.below(7));
      w.clear();
      append_hello(w, kind, name);
      ASSERT_EQ(peek_frame(w, f), DecodeStatus::kFrame);
      HelloBody hb;
      ASSERT_TRUE(parse_hello(f.body, hb));
      EXPECT_EQ(hb.object_kind, kind);
      EXPECT_EQ(hb.name, name);
    }
    {
      const uint32_t cap = static_cast<uint32_t>(rng.next());
      const uint32_t batch = static_cast<uint32_t>(rng.next());
      w.clear();
      append_hello_ack(w, sid, cap, batch);
      ASSERT_EQ(peek_frame(w, f), DecodeStatus::kFrame);
      HelloAckBody ab;
      ASSERT_TRUE(parse_hello_ack(f.body, ab));
      EXPECT_EQ(ab.session, sid);
      EXPECT_EQ(ab.inbox_capacity, cap);
      EXPECT_EQ(ab.max_batch, batch);
    }
    {
      const uint32_t exp = static_cast<uint32_t>(rng.next());
      const uint32_t us = static_cast<uint32_t>(rng.next());
      w.clear();
      append_throttle(w, sid, exp + 1, exp, us);
      ASSERT_EQ(peek_frame(w, f), DecodeStatus::kFrame);
      ASSERT_EQ(f.header.type, FrameType::kThrottle);
      ThrottleBody tb;
      ASSERT_TRUE(parse_throttle(f.body, tb));
      EXPECT_EQ(tb.expected_seq, exp);
      EXPECT_EQ(tb.retry_after_us, us);
    }
    {
      const uint64_t fed = rng.next();
      const uint64_t bad = rng.next();
      const auto st = static_cast<WireStatus>(rng.below(3));
      w.clear();
      append_verdict(w, sid, kFlagFinal, st, fed, bad);
      ASSERT_EQ(peek_frame(w, f), DecodeStatus::kFrame);
      EXPECT_EQ(f.header.flags & kFlagFinal, kFlagFinal);
      VerdictBody vb;
      ASSERT_TRUE(parse_verdict(f.body, vb));
      EXPECT_EQ(vb.status, st);
      EXPECT_EQ(vb.events_fed, fed);
      EXPECT_EQ(vb.first_bad, bad);
    }
  }
}

// ---- truncation ------------------------------------------------------------

// Every strict prefix of a valid frame is kNeedMore — never a frame, never
// kBad (the stream is merely incomplete, and the reactor must keep it).
TEST(WireFuzz, TruncatedPrefixesNeedMore) {
  const History h =
      test::random_linearizable_history(ObjectKind::kQueue, 3, 30, 0xBEEF);
  std::vector<uint8_t> wire;
  append_events(wire, 9, 0, h);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameView f;
    ASSERT_EQ(peek_frame({wire.data(), cut}, f), DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
  FrameView f;
  ASSERT_EQ(peek_frame(wire, f), DecodeStatus::kFrame);
}

// ---- hostile headers -------------------------------------------------------

TEST(WireFuzz, HostileHeadersRejected) {
  const auto mk = [](uint32_t magic, uint8_t ver, uint8_t type,
                     uint32_t body_len) {
    std::vector<uint8_t> b(kHeaderBytes, 0);
    put_u32(b.data(), magic);
    b[4] = ver;
    b[5] = type;
    put_u32(b.data() + 16, body_len);
    return b;
  };
  FrameView f;
  // Bad magic fails even on a short prefix (fast-fail beats kNeedMore).
  EXPECT_EQ(peek_frame(mk(0xDEADBEEF, kWireVersion, 3, 0), f),
            DecodeStatus::kBad);
  EXPECT_EQ(peek_frame(mk(kWireMagic, kWireVersion + 1, 3, 0), f),
            DecodeStatus::kBad);
  EXPECT_EQ(peek_frame(mk(kWireMagic, kWireVersion, 0, 0), f),
            DecodeStatus::kBad);
  EXPECT_EQ(peek_frame(mk(kWireMagic, kWireVersion, kMaxFrameType + 1, 0), f),
            DecodeStatus::kBad);
  // Oversized body: rejected outright — a hostile body_len must not make
  // the reactor buffer gigabytes waiting for kNeedMore to resolve.
  EXPECT_EQ(peek_frame(mk(kWireMagic, kWireVersion, 3, kMaxBody + 1), f),
            DecodeStatus::kBad);
  // Exactly kMaxBody is legal, merely incomplete here.
  EXPECT_EQ(peek_frame(mk(kWireMagic, kWireVersion, 3, kMaxBody), f),
            DecodeStatus::kNeedMore);
}

// ---- corruption ------------------------------------------------------------

// Single-byte corruption of a valid kEvents frame: every outcome is
// acceptable except an invalid decode or a non-canonical one.
TEST(WireFuzz, SingleByteCorruptionNeverConfuses) {
  const size_t rounds = 8 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    Rng rng(0xBADF00D + round);
    const History h = test::random_linearizable_history(
        ObjectKind::kSet, 2 + rng.below(3), 10 + rng.below(30),
        0x5EED + round);
    std::vector<uint8_t> wire;
    append_events(wire, 5, 0, h);

    for (size_t trial = 0; trial < 200; ++trial) {
      std::vector<uint8_t> dirty = wire;
      const size_t pos = rng.below(dirty.size());
      const uint8_t flip = static_cast<uint8_t>(1 + rng.below(255));
      dirty[pos] ^= flip;

      FrameView f;
      std::string why;
      const DecodeStatus st = peek_frame(dirty, f, &why);
      if (st != DecodeStatus::kFrame) continue;  // rejected: fine
      std::vector<Event> decoded;
      if (!decode_events(f.body, decoded)) continue;  // invalid record: fine
      // The corruption landed on a semantically valid frame (e.g. flipped a
      // value byte).  Then canonical form must hold exactly.
      std::vector<uint8_t> rewire;
      append_events(rewire, f.header.session, f.header.seq, decoded);
      ASSERT_EQ(rewire.size(), f.frame_len);
      ASSERT_EQ(std::memcmp(rewire.data() + kHeaderBytes,
                            f.body.data(), f.body.size()),
                0)
          << "decoded corrupt record re-encodes differently (byte " << pos
          << " ^ " << int(flip) << ")";
    }
  }
}

// Random byte soup: peek_frame and every typed-body parser must terminate
// cleanly on arbitrary input (the sanitizer legs make "cleanly" rigorous).
TEST(WireFuzz, RandomGarbageTerminates) {
  const size_t rounds = 64 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    Rng rng(0xA11FEED + round);
    std::vector<uint8_t> soup(rng.below(3 * kHeaderBytes));
    for (auto& b : soup) b = static_cast<uint8_t>(rng.next());
    // Half the rounds, plant the real magic so parsing gets past the
    // fast-fail and into header/body validation.
    if (soup.size() >= 4 && rng.chance(1, 2)) put_u32(soup.data(), kWireMagic);

    FrameView f;
    (void)peek_frame(soup, f);

    HelloBody hb;
    (void)parse_hello(soup, hb);
    HelloAckBody ab;
    (void)parse_hello_ack(soup, ab);
    ThrottleBody tb;
    (void)parse_throttle(soup, tb);
    VerdictBody vb;
    (void)parse_verdict(soup, vb);
    std::vector<Event> ev;
    (void)decode_events(soup, ev);
    Event e;
    if (soup.size() >= kEventRecBytes) (void)get_event(soup.data(), e);
  }
}

// A kEvents body whose length is not a whole number of records is invalid,
// as is any record with out-of-range enums or nonzero reserved bytes.
TEST(WireFuzz, NonCanonicalRecordsRejected) {
  const History h =
      test::random_linearizable_history(ObjectKind::kStack, 2, 10, 0xD00D);
  std::vector<uint8_t> wire;
  append_events(wire, 1, 0, h);
  FrameView f;
  ASSERT_EQ(peek_frame(wire, f), DecodeStatus::kFrame);

  std::vector<Event> out;
  // Ragged length.
  ASSERT_FALSE(decode_events(f.body.subspan(0, f.body.size() - 1), out));

  std::vector<uint8_t> body(f.body.begin(), f.body.end());
  body[0] = 2;  // kind out of range
  ASSERT_FALSE(decode_events(body, out));
  body[0] = 0;
  body[1] = 255;  // method out of range
  ASSERT_FALSE(decode_events(body, out));
  body[1] = 0;
  body[2] = 1;  // reserved byte nonzero
  ASSERT_FALSE(decode_events(body, out));
  body[2] = 0;
  ASSERT_TRUE(decode_events(body, out)) << "restored body must decode again";
}

}  // namespace
}  // namespace selin::net
