// The write-snapshot task object (Section 9.3): one-shot, interval-
// linearizable, no sequential specification — GenLin strictly beyond
// linearizability.  Outputs are bitmasks over process ids.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

Value mask(std::initializer_list<ProcId> pids) {
  uint64_t m = 0;
  for (ProcId p : pids) m |= 1ULL << p;
  return static_cast<Value>(m);
}

TEST(WriteSnapshot, SoloRunSeesItself) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 10);
  History h{Event::inv(a), Event::res(a, mask({0}))};
  EXPECT_TRUE(obj->contains(h));
}

TEST(WriteSnapshot, SelfInclusionViolated) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 10);
  History h{Event::inv(a), Event::res(a, mask({1}))};
  EXPECT_FALSE(obj->contains(h));
}

TEST(WriteSnapshot, ComparableOutputsAccepted) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 10);
  OpDesc b = f.op(1, Method::kWriteSnap, 20);
  History h{Event::inv(a), Event::inv(b), Event::res(a, mask({0})),
            Event::res(b, mask({0, 1}))};
  EXPECT_TRUE(obj->contains(h));
}

TEST(WriteSnapshot, IncomparableOutputsRejected) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 10);
  OpDesc b = f.op(1, Method::kWriteSnap, 20);
  // {0} and {1} are incomparable — forbidden even for concurrent ops.
  History h{Event::inv(a), Event::inv(b), Event::res(a, mask({0})),
            Event::res(b, mask({1}))};
  EXPECT_FALSE(obj->contains(h));
}

TEST(WriteSnapshot, RealTimeContainmentEnforced) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 10);
  OpDesc b = f.op(1, Method::kWriteSnap, 20);
  // a completes before b starts, but b's snapshot misses a: the solo-run
  // violation of Section 10, detectable only through real-time order.
  History h{Event::inv(a), Event::res(a, mask({0})), Event::inv(b),
            Event::res(b, mask({1}))};
  EXPECT_FALSE(obj->contains(h));
  // With containment honored it passes.
  History good{Event::inv(a), Event::res(a, mask({0})), Event::inv(b),
               Event::res(b, mask({0, 1}))};
  EXPECT_TRUE(obj->contains(good));
}

TEST(WriteSnapshot, OneShotViolationRejected) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a1 = f.op(0, Method::kWriteSnap, 10);
  OpDesc a2 = f.op(0, Method::kWriteSnap, 11);
  History h{Event::inv(a1), Event::res(a1, mask({0})), Event::inv(a2),
            Event::res(a2, mask({0}))};
  EXPECT_FALSE(obj->contains(h));
}

TEST(WriteSnapshot, ThreeProcessChain) {
  auto obj = make_write_snapshot_object(3);
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 1);
  OpDesc b = f.op(1, Method::kWriteSnap, 2);
  OpDesc c = f.op(2, Method::kWriteSnap, 3);
  History h{Event::inv(a), Event::inv(b),
            Event::res(a, mask({0, 1})), Event::res(b, mask({0, 1})),
            Event::inv(c), Event::res(c, mask({0, 1, 2}))};
  EXPECT_TRUE(obj->contains(h));
}

TEST(WriteSnapshot, MonitorIsIncremental) {
  auto obj = make_write_snapshot_object(2);
  auto m = obj->monitor();
  OpFactory f;
  OpDesc a = f.op(0, Method::kWriteSnap, 1);
  m->feed(Event::inv(a));
  EXPECT_TRUE(m->ok());
  auto fork = m->clone();
  m->feed(Event::res(a, mask({0})));
  EXPECT_TRUE(m->ok());
  fork->feed(Event::res(a, mask({1})));  // bad in the fork only
  EXPECT_FALSE(fork->ok());
  EXPECT_TRUE(m->ok());
}

}  // namespace
}  // namespace selin
