// Schedule fuzzing: randomized sub-operation interleavings through
// SteppedAStar, validating the paper's implication chains mechanically on
// every seed:
//
//   Lemma 7.3:   E|A ∈ O  ⟹  T(E) ∈ O  ⟹  E* ∈ O     (tight executions)
//   Lemma 7.4:   X(λ) equivalent to T(E) with equal ≺
//   Remark 7.2:  view properties under every interleaving
//
// The fuzzer drives announce/invoke/complete in random order over both a
// correct queue and the adversarial Theorem-5.1 queue, recording the A-level
// ground truth and the Write/Snapshot marks, then checks all relations.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

struct FuzzParams {
  bool faulty;
  uint64_t seed;
};

class ScheduleFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ScheduleFuzz, ImplicationChainsHold) {
  auto [faulty, seed] = GetParam();
  constexpr size_t kProcs = 3;
  constexpr int kOps = 24;

  auto impl = faulty ? make_thm51_queue(1) : make_ms_queue();
  RecordingConcurrent recorded(*impl, 256);
  TraceRecorder trace(256);
  AStar astar(kProcs, recorded, SnapshotKind::kDoubleCollect, &trace);
  SteppedAStar step(astar);

  Rng rng(seed);
  // Per-process phase: 0 = idle, 1 = announced, 2 = invoked.
  int phase[kProcs] = {0, 0, 0};
  int started = 0;
  std::vector<LambdaRecord> records;

  while (true) {
    // Collect possible actions.
    std::vector<std::pair<ProcId, int>> actions;
    for (ProcId p = 0; p < kProcs; ++p) {
      if (phase[p] == 0 && started < kOps) actions.push_back({p, 0});
      if (phase[p] == 1) actions.push_back({p, 1});
      if (phase[p] == 2) actions.push_back({p, 2});
    }
    if (actions.empty()) break;
    auto [p, act] = actions[rng.below(actions.size())];
    if (act == 0) {
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      step.announce(p, m, arg);
      phase[p] = 1;
      ++started;
    } else if (act == 1) {
      step.invoke(p);
      phase[p] = 2;
    } else {
      auto r = step.complete(p);
      records.push_back(LambdaRecord{r.op, r.y, std::move(r.view)});
      phase[p] = 0;
    }
  }

  auto spec = make_queue_spec();
  auto obj = make_linearizable_object(make_queue_spec());

  // Ground truths.
  History inner = recorded.history();             // E|A
  AStarTrace marks = trace.trace();
  ASSERT_TRUE(valid_trace(marks));
  History tight = tight_history(marks);           // T(E)
  History x = x_of_lambda(records);               // X(λ) — all ops completed

  bool inner_ok = linearizable(*spec, inner);
  bool tight_ok = linearizable(*spec, tight);
  bool x_ok = linearizable(*spec, x);

  // Remark 7.2 under every schedule.
  EXPECT_EQ(validate_views(records), std::nullopt);

  // Lemma 7.4: all records present, so X(λ) and T(E) are equivalent with
  // identical ≺ — in particular the same membership verdict.
  EXPECT_TRUE(equivalent(x, tight)) << "seed " << seed;
  EXPECT_EQ(x_ok, tight_ok) << "seed " << seed;
  {
    HistoryIndex ix(x), it(tight);
    for (const LambdaRecord& a : records) {
      for (const LambdaRecord& b : records) {
        EXPECT_EQ(ix.precedes(a.op.id, b.op.id),
                  it.precedes(a.op.id, b.op.id));
      }
    }
  }

  // Lemma 7.3 implications.
  if (inner_ok) {
    EXPECT_TRUE(tight_ok) << "E|A ∈ O must imply T(E) ∈ O; seed " << seed;
  }
  if (!faulty) {
    EXPECT_TRUE(inner_ok) << "correct A produced a bad history; seed " << seed;
    EXPECT_TRUE(x_ok);
  }
  // For the faulty A the sketch may be OK (enforced) or not (detected);
  // both are within the theorems — but the chain direction must never
  // break: a linearizable tight execution with a non-linearizable sketch is
  // impossible (they are similar).
  if (tight_ok) {
    EXPECT_TRUE(x_ok) << "seed " << seed;
  }
}

std::vector<FuzzParams> fuzz_params() {
  std::vector<FuzzParams> v;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    v.push_back({false, seed});
    v.push_back({true, seed});
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::ValuesIn(fuzz_params()));

// The same fuzz through the full verifier: verdict consistency — whenever
// the verifier accepts, the sketch it accepted is genuinely in the object
// (predictive soundness of acceptance is trivial; this checks our plumbing
// equates the incremental and offline verdicts on random level structures).
class VerifierFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerifierFuzz, IncrementalVerdictMatchesOffline) {
  uint64_t seed = GetParam();
  constexpr size_t kProcs = 3;
  auto impl = make_lossy_queue(1, 6, seed);
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(kProcs, *impl);
  MonitorCore core(kProcs, 1, *obj);
  SteppedAStar step(astar);

  Rng rng(seed * 7 + 1);
  int phase[kProcs] = {0, 0, 0};
  int started = 0;
  while (true) {
    std::vector<std::pair<ProcId, int>> actions;
    for (ProcId p = 0; p < kProcs; ++p) {
      if (phase[p] == 0 && started < 30) actions.push_back({p, 0});
      if (phase[p] == 1) actions.push_back({p, 1});
      if (phase[p] == 2) actions.push_back({p, 2});
    }
    if (actions.empty()) break;
    auto [p, act] = actions[rng.below(actions.size())];
    if (act == 0) {
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      step.announce(p, m, arg);
      phase[p] = 1;
      ++started;
    } else if (act == 1) {
      step.invoke(p);
      phase[p] = 2;
    } else {
      auto r = step.complete(p);
      core.publish(p, r.op, r.y, std::move(r.view));
      bool inc = core.check(0);
      bool offline = obj->contains(core.sketch(0));
      ASSERT_EQ(inc, offline) << "seed " << seed;
      phase[p] = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzz, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace selin
