// Differential validation of the fingerprinted configuration engine: the
// fingerprint-dedup checkers must agree verdict-for-verdict with (a) a
// reference reimplementation of the old string-keyed frontier and (b) the
// brute-force oracle, on randomized histories across object families.  Plus
// unit coverage for the debug collision guard, FpSet and SmallVec.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "selin/lincheck/config.hpp"
#include "selin/util/fp_set.hpp"
#include "selin/util/hash.hpp"
#include "selin/util/small_vec.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

// ---------------------------------------------------------------------------
// Reference checker: the pre-fingerprint string-keyed frontier algorithm,
// kept verbatim as the differential baseline.
// ---------------------------------------------------------------------------

struct RefOp {
  OpId id;
  Value assigned;
};

struct RefConfig {
  std::unique_ptr<SeqState> state;
  std::vector<RefOp> lin;  // sorted by OpId

  RefConfig clone() const {
    RefConfig c;
    c.state = state->clone();
    c.lin = lin;
    return c;
  }

  std::string key() const {
    std::ostringstream os;
    os << state->encode() << "|";
    for (const RefOp& l : lin) {
      os << l.id.pid << "." << l.id.seq << "=" << l.assigned << ";";
    }
    return os.str();
  }

  const RefOp* find(OpId id) const {
    for (const RefOp& l : lin) {
      if (l.id == id) return &l;
    }
    return nullptr;
  }

  void add(OpId id, Value assigned) {
    auto it = std::lower_bound(
        lin.begin(), lin.end(), id,
        [](const RefOp& a, OpId b) { return a.id < b; });
    lin.insert(it, RefOp{id, assigned});
  }

  void remove(OpId id) {
    for (size_t i = 0; i < lin.size(); ++i) {
      if (lin[i].id == id) {
        lin.erase(lin.begin() + static_cast<long>(i));
        return;
      }
    }
  }
};

bool ref_linearizable(const SeqSpec& spec, const History& h,
                      size_t max_configs = 1 << 18) {
  std::vector<RefConfig> frontier;
  std::vector<OpDesc> open;
  {
    RefConfig c;
    c.state = spec.initial();
    frontier.push_back(std::move(c));
  }
  for (const Event& e : h) {
    if (e.is_inv()) {
      open.push_back(e.op);
      continue;
    }
    // Closure under linearizing open ops.
    std::vector<RefConfig> result;
    std::unordered_set<std::string> seen;
    for (const RefConfig& c : frontier) {
      if (seen.insert(c.key()).second) result.push_back(c.clone());
    }
    for (size_t i = 0; i < result.size(); ++i) {
      for (const OpDesc& od : open) {
        if (result[i].find(od.id) != nullptr) continue;
        RefConfig next = result[i].clone();
        Value assigned = next.state->step(od.method, od.arg);
        next.add(od.id, assigned);
        if (seen.insert(next.key()).second) {
          if (result.size() >= max_configs) throw CheckerOverflow{};
          result.push_back(std::move(next));
        }
      }
    }
    // Filter by the observed response.
    std::vector<RefConfig> filtered;
    std::unordered_set<std::string> fseen;
    for (RefConfig& c : result) {
      const RefOp* l = c.find(e.op.id);
      if (l == nullptr || l->assigned != e.result) continue;
      c.remove(e.op.id);
      if (fseen.insert(c.key()).second) filtered.push_back(std::move(c));
    }
    for (size_t i = 0; i < open.size(); ++i) {
      if (open[i].id == e.op.id) {
        open.erase(open.begin() + static_cast<long>(i));
        break;
      }
    }
    frontier = std::move(filtered);
    if (frontier.empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Differential sweeps
// ---------------------------------------------------------------------------

const ObjectKind kKinds[] = {ObjectKind::kQueue, ObjectKind::kStack,
                             ObjectKind::kSet, ObjectKind::kCounter};

TEST(FingerprintDifferential, CleanHistoriesMatchStringKeyPath) {
  for (ObjectKind kind : kKinds) {
    auto spec = make_spec(kind);
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      History h = test::random_linearizable_history(kind, 3, 40, seed * 7919);
      EXPECT_TRUE(linearizable(*spec, h))
          << object_kind_name(kind) << " seed=" << seed;
      EXPECT_TRUE(ref_linearizable(*spec, h))
          << object_kind_name(kind) << " seed=" << seed;
    }
  }
}

TEST(FingerprintDifferential, CorruptedHistoriesMatchStringKeyPath) {
  for (ObjectKind kind : kKinds) {
    auto spec = make_spec(kind);
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      History h = test::random_linearizable_history(kind, 3, 30, seed * 104729);
      if (!test::corrupt_response(h, seed)) continue;
      bool want = ref_linearizable(*spec, h);
      EXPECT_EQ(linearizable(*spec, h), want)
          << object_kind_name(kind) << " seed=" << seed;
      // find_linearization must agree with the frontier checkers, and any
      // witness it returns must replay through the spec.
      auto lin = find_linearization(*spec, h);
      EXPECT_EQ(lin.has_value(), want)
          << object_kind_name(kind) << " seed=" << seed;
      if (lin.has_value()) {
        EXPECT_TRUE(seq_history_valid(*spec, *lin));
      }
    }
  }
}

TEST(FingerprintDifferential, SmallHistoriesMatchBruteforce) {
  for (ObjectKind kind : kKinds) {
    auto spec = make_spec(kind);
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      History h = test::random_linearizable_history(kind, 2, 6, seed * 31337);
      if (seed % 2 == 0) test::corrupt_response(h, seed);
      bool brute = linearizable_bruteforce(*spec, h);
      EXPECT_EQ(linearizable(*spec, h), brute)
          << object_kind_name(kind) << " seed=" << seed;
      EXPECT_EQ(ref_linearizable(*spec, h), brute)
          << object_kind_name(kind) << " seed=" << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Fingerprint algebra
// ---------------------------------------------------------------------------

TEST(Fingerprint, EqualStatesEqualFingerprints) {
  // The same abstract state reached by different operation sequences must
  // encode — and therefore fingerprint — identically.
  auto spec = make_queue_spec();
  auto a = spec->initial();
  auto b = spec->initial();
  a->step(Method::kEnqueue, 1);
  a->step(Method::kEnqueue, 2);
  a->step(Method::kDequeue, kNoArg);
  b->step(Method::kEnqueue, 2);
  ASSERT_EQ(a->encode(), b->encode());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  b->step(Method::kEnqueue, 3);
  EXPECT_NE(a->fingerprint(), b->fingerprint());
}

TEST(Fingerprint, ConfigAddRemoveRoundTrip) {
  lincheck::Config c;
  c.state = make_counter_spec()->initial();
  uint64_t fp0 = c.fingerprint();
  c.add(OpId{1, 4}, 77);
  c.add(OpId{0, 2}, 5);
  uint64_t fp2 = c.fingerprint();
  EXPECT_NE(fp0, fp2);
  c.remove(OpId{1, 4});
  c.remove(OpId{0, 2});
  EXPECT_EQ(c.fingerprint(), fp0);  // Zobrist XOR is exactly invertible
  // Insertion order must not matter (the set is canonical).
  c.add(OpId{0, 2}, 5);
  c.add(OpId{1, 4}, 77);
  EXPECT_EQ(c.fingerprint(), fp2);
}

TEST(Fingerprint, CloneAndPoolPreserveFingerprint) {
  lincheck::Config c;
  c.state = make_stack_spec()->initial();
  c.state->step(Method::kPush, 9);
  c.add(OpId{2, 0}, kTrue);
  lincheck::Config d = c.clone();
  EXPECT_EQ(c.fingerprint(), d.fingerprint());
  EXPECT_EQ(c.key(), d.key());
  lincheck::StatePool pool;
  pool.release(make_stack_spec()->initial());  // recycled into e.state
  lincheck::Config e = c.clone_with(pool);
  EXPECT_EQ(c.fingerprint(), e.fingerprint());
  EXPECT_EQ(c.key(), e.key());
}

TEST(Fingerprint, AssignFromReusesStateAcrossContents) {
  auto spec = make_set_spec();
  auto a = spec->initial();
  a->step(Method::kInsert, 3);
  a->step(Method::kInsert, 8);
  auto b = spec->initial();
  b->step(Method::kInsert, 99);
  ASSERT_TRUE(b->assign_from(*a));
  EXPECT_EQ(a->encode(), b->encode());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  // Cross-spec assign must refuse.
  auto q = make_queue_spec()->initial();
  EXPECT_FALSE(q->assign_from(*a));
}

// ---------------------------------------------------------------------------
// Collision guard (deliberate collision)
// ---------------------------------------------------------------------------

TEST(CollisionGuard, DetectsDeliberateCollision) {
  lincheck::CollisionGuard guard;
  // Two distinct canonical keys forced onto one fingerprint: the second
  // check must report the collision; re-checks of the recorded key pass.
  EXPECT_TRUE(guard.check(0xDEADBEEFull, "Q:1|"));
  EXPECT_TRUE(guard.check(0xDEADBEEFull, "Q:1|"));
  EXPECT_FALSE(guard.check(0xDEADBEEFull, "Q:2|"));
  EXPECT_TRUE(guard.check(0xBADC0FFEEull, "Q:2|"));
  EXPECT_EQ(guard.distinct(), 2u);
}

// ---------------------------------------------------------------------------
// FpSet
// ---------------------------------------------------------------------------

TEST(FpSet, InsertContainsClearGrow) {
  Arena arena;
  FpSet set(arena, 16);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.insert(fph::mix(i)));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.contains(fph::mix(i)));
    EXPECT_FALSE(set.insert(fph::mix(i)));
  }
  EXPECT_FALSE(set.contains(fph::mix(10001)));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(fph::mix(1)));
  EXPECT_TRUE(set.insert(fph::mix(1)));
  // Zero and adversarially clustered keys are ordinary values.
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  for (uint64_t i = 1; i < 64; ++i) EXPECT_TRUE(set.insert(i << 32));
}

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVec, InlineSpillCopyMove) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 3; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 3u);
  v.insert_at(1, 42);  // 0 42 1 2
  EXPECT_EQ(v[1], 42);
  EXPECT_EQ(v[3], 2);
  for (int i = 0; i < 100; ++i) v.push_back(i);  // force heap spill
  EXPECT_EQ(v.size(), 104u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[103], 99);
  v.erase_at(0);  // 42 1 2 0 1 ...
  EXPECT_EQ(v[0], 42);
  EXPECT_EQ(v.size(), 103u);

  SmallVec<int, 4> c = v;  // copy keeps contents
  ASSERT_EQ(c.size(), v.size());
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], v[i]);

  SmallVec<int, 4> m = std::move(c);  // move steals the heap block
  ASSERT_EQ(m.size(), v.size());
  EXPECT_EQ(m[0], 42);
  EXPECT_EQ(c.size(), 0u);  // NOLINT(bugprone-use-after-move)

  SmallVec<int, 4> s;
  s.push_back(7);
  SmallVec<int, 4> s2 = std::move(s);  // inline move copies
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0], 7);
}

}  // namespace
}  // namespace selin
