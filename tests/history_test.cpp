// Unit tests for the history model (Sections 2 and 4): well-formedness,
// projections, comp(), equivalence, the <_E and ≺_E orders, tight traces.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

TEST(WellFormed, EmptyHistoryIsWellFormed) {
  EXPECT_TRUE(well_formed({}));
}

TEST(WellFormed, SequentialOps) {
  OpFactory f;
  History h;
  test::seq_op(h, f, 0, Method::kEnqueue, 1, kTrue);
  test::seq_op(h, f, 0, Method::kDequeue, kNoArg, 1);
  EXPECT_TRUE(well_formed(h));
}

TEST(WellFormed, PendingInvocationAllowed) {
  OpFactory f;
  History h{Event::inv(f.op(0, Method::kEnqueue, 1))};
  EXPECT_TRUE(well_formed(h));
}

TEST(WellFormed, DoubleInvocationRejected) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(0, Method::kEnqueue, 2);
  History h{Event::inv(a), Event::inv(b)};
  std::string why;
  EXPECT_FALSE(well_formed(h, &why));
  EXPECT_NE(why.find("pending"), std::string::npos);
}

TEST(WellFormed, ResponseWithoutInvocationRejected) {
  OpFactory f;
  History h{Event::res(f.op(0, Method::kDequeue), kEmpty)};
  EXPECT_FALSE(well_formed(h));
}

TEST(WellFormed, MismatchedResponseRejected) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(0, Method::kEnqueue, 2);
  History h{Event::inv(a), Event::res(b, kTrue)};
  EXPECT_FALSE(well_formed(h));
}

TEST(WellFormed, DuplicateOpIdRejected) {
  OpDesc a{OpId{0, 0}, Method::kEnqueue, 1};
  History h{Event::inv(a), Event::res(a, kTrue), Event::inv(a)};
  EXPECT_FALSE(well_formed(h));
}

TEST(Comp, RemovesPendingInvocations) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  History h{Event::inv(a), Event::inv(b), Event::res(a, kTrue)};
  History c = comp(h);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_TRUE(c[0] == Event::inv(a));
  EXPECT_TRUE(c[1] == Event::res(a, kTrue));
}

TEST(Project, SelectsProcessEvents) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  History h{Event::inv(a), Event::inv(b), Event::res(b, kEmpty),
            Event::res(a, kTrue)};
  History p1 = project(h, 1);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_TRUE(p1[0] == Event::inv(b));
  EXPECT_TRUE(p1[1] == Event::res(b, kEmpty));
}

TEST(Equivalence, OrderOfInterleavingIgnored) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  History h1{Event::inv(a), Event::inv(b), Event::res(a, kTrue),
             Event::res(b, kEmpty)};
  History h2{Event::inv(b), Event::inv(a), Event::res(b, kEmpty),
             Event::res(a, kTrue)};
  EXPECT_TRUE(equivalent(h1, h2));
}

TEST(Equivalence, DifferentResponsesNotEquivalent) {
  OpFactory f;
  OpDesc b = f.op(1, Method::kDequeue);
  History h1{Event::inv(b), Event::res(b, kEmpty)};
  History h2{Event::inv(b), Event::res(b, 5)};
  EXPECT_FALSE(equivalent(h1, h2));
}

TEST(Sequential, DetectsOverlap) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  History seq{Event::inv(a), Event::res(a, kTrue), Event::inv(b),
              Event::res(b, kEmpty)};
  History conc{Event::inv(a), Event::inv(b), Event::res(a, kTrue),
               Event::res(b, kEmpty)};
  EXPECT_TRUE(sequential(seq));
  EXPECT_FALSE(sequential(conc));
}

TEST(HistoryIndex, RealTimeOrders) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  OpDesc c = f.op(2, Method::kDequeue);
  // a completes; then b invoked and completes; c pending after b's response.
  History h{Event::inv(a), Event::res(a, kTrue), Event::inv(b),
            Event::res(b, 1), Event::inv(c)};
  HistoryIndex idx(h);
  EXPECT_TRUE(idx.real_time_before(a.id, b.id));
  EXPECT_FALSE(idx.real_time_before(b.id, a.id));
  // <_E relates only complete ops; ≺_E also relates pending ones.
  EXPECT_FALSE(idx.real_time_before(b.id, c.id));
  EXPECT_TRUE(idx.precedes(b.id, c.id));
  EXPECT_FALSE(idx.precedes(c.id, b.id));
  EXPECT_EQ(idx.complete_count(), 2u);
  EXPECT_EQ(idx.pending_count(), 1u);
}

TEST(HistoryIndex, ThrowsOnMalformed) {
  OpFactory f;
  History h{Event::res(f.op(0, Method::kDequeue), kEmpty)};
  EXPECT_THROW(HistoryIndex idx(h), std::invalid_argument);
}

TEST(TightTrace, ValidatesAndBuilds) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  AStarTrace t{
      {AStarMark::Kind::kWrite, a, kNoArg},
      {AStarMark::Kind::kWrite, b, kNoArg},
      {AStarMark::Kind::kSnap, a, kTrue},
      {AStarMark::Kind::kSnap, b, 1},
  };
  EXPECT_TRUE(valid_trace(t));
  History h = tight_history(t);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_TRUE(h[0] == Event::inv(a));
  EXPECT_TRUE(h[2] == Event::res(a, kTrue));
  EXPECT_TRUE(well_formed(h));
}

TEST(TightTrace, RejectsSnapBeforeWrite) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  AStarTrace t{{AStarMark::Kind::kSnap, a, kTrue}};
  EXPECT_FALSE(valid_trace(t));
}

TEST(TightTrace, RejectsOverlappingOpsOfOneProcess) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(0, Method::kEnqueue, 2);
  AStarTrace t{{AStarMark::Kind::kWrite, a, kNoArg},
               {AStarMark::Kind::kWrite, b, kNoArg}};
  EXPECT_FALSE(valid_trace(t));
}

TEST(Format, RendersReadably) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 7);
  History h{Event::inv(a), Event::res(a, kTrue)};
  std::string s = format_history(h);
  EXPECT_NE(s.find("Enqueue"), std::string::npos);
  EXPECT_NE(s.find("p0"), std::string::npos);
  std::string il = format_history_inline(h);
  EXPECT_NE(il.find("res["), std::string::npos);
}

}  // namespace
}  // namespace selin
