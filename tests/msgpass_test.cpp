// Message-passing substrate (Section 9.4): ABD registers, crash tolerance
// below a majority, the ABD-backed snapshot, and the full selin stack
// (A* + self-enforcement) running over simulated message passing.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(AbdService, SequentialReadWrite) {
  auto svc = std::make_shared<AbdService>(3, /*seed=*/1, /*max_delay_us=*/0);
  EXPECT_EQ(svc->read(7).value, 0u);  // unwritten key reads the default
  svc->write(7, 42, /*wid=*/1);
  EXPECT_EQ(svc->read(7).value, 42u);
  svc->write(7, 43, 1);
  auto v = svc->read(7);
  EXPECT_EQ(v.value, 43u);
  EXPECT_EQ(v.ts, 2u);
  EXPECT_EQ(svc->quorum(), 2u);
}

TEST(AbdService, IndependentKeys) {
  auto svc = std::make_shared<AbdService>(3, 1, 0);
  svc->write(1, 11, 1);
  svc->write(2, 22, 1);
  EXPECT_EQ(svc->read(1).value, 11u);
  EXPECT_EQ(svc->read(2).value, 22u);
}

TEST(AbdService, SurvivesMinorityCrash) {
  auto svc = std::make_shared<AbdService>(5, 2, 5);
  svc->write(9, 1, 1);
  svc->crash(0);
  svc->crash(3);
  EXPECT_EQ(svc->alive(), 3u);
  // A majority (3 of 5) is alive: operations still complete.
  svc->write(9, 2, 1);
  EXPECT_EQ(svc->read(9).value, 2u);
  uint64_t before = svc->messages_processed();
  for (int i = 0; i < 20; ++i) {
    svc->write(9, 100 + static_cast<uint64_t>(i), 1);
    EXPECT_EQ(svc->read(9).value, 100 + static_cast<uint64_t>(i));
  }
  EXPECT_GT(svc->messages_processed(), before);
}

TEST(AbdRegister, LinearizableUnderConcurrency) {
  auto svc = std::make_shared<AbdService>(3, 3, 10);
  auto reg = make_abd_register(svc);
  RecordingConcurrent recorded(*reg, 1024);

  constexpr size_t kProcs = 3;
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 5 + 11);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 40; ++i) {
        auto [m, arg] = random_op(ObjectKind::kRegister, rng);
        recorded.apply(p, OpDesc{OpId{p, i}, m, arg});
      }
    });
  }
  for (auto& t : threads) t.join();
  auto spec = make_register_spec();
  EXPECT_TRUE(linearizable(*spec, recorded.history()));
}

TEST(AbdRegister, LinearizableWithCrashesMidRun) {
  auto svc = std::make_shared<AbdService>(5, 4, 10);
  auto reg = make_abd_register(svc);
  RecordingConcurrent recorded(*reg, 1024);

  constexpr size_t kProcs = 3;
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 7 + 13);
      barrier.arrive_and_wait();
      for (uint32_t i = 0; i < 40; ++i) {
        if (p == 0 && i == 10) svc->crash(1);
        if (p == 1 && i == 20) svc->crash(4);
        auto [m, arg] = random_op(ObjectKind::kRegister, rng);
        recorded.apply(p, OpDesc{OpId{p, i}, m, arg});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(svc->alive(), 3u);
  auto spec = make_register_spec();
  EXPECT_TRUE(linearizable(*spec, recorded.history()));
}

TEST(AbdSnapshot, BasicWriteScan) {
  auto svc = std::make_shared<AbdService>(3, 5, 0);
  AbdSnapshot<uint64_t> snap(svc, 3, 0);
  snap.write(0, 10);
  snap.write(2, 30);
  auto v = snap.scan(0);
  EXPECT_EQ(v, (std::vector<uint64_t>{10, 0, 30}));
  EXPECT_STREQ(snap.name(), "abd");
}

TEST(AbdSnapshot, ConcurrentScansComparable) {
  auto svc = std::make_shared<AbdService>(3, 6, 5);
  constexpr size_t kWriters = 2;
  AbdSnapshot<uint64_t> snap(svc, kWriters, 0);
  std::vector<std::vector<std::vector<uint64_t>>> scans(2);
  SpinBarrier barrier(kWriters + 2);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      barrier.arrive_and_wait();
      for (uint64_t i = 1; i <= 50; ++i) {
        snap.write(static_cast<ProcId>(w), i);
      }
    });
  }
  for (size_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 25; ++i) {
        scans[s].push_back(snap.scan(0));
      }
    });
  }
  for (auto& t : threads) t.join();
  // Coordinatewise comparability across all scans (grow-only writers).
  std::vector<const std::vector<uint64_t>*> all;
  for (auto& seq : scans) {
    for (auto& v : seq) all.push_back(&v);
  }
  std::sort(all.begin(), all.end(), [](auto* a, auto* b) {
    return (*a)[0] + (*a)[1] < (*b)[0] + (*b)[1];
  });
  for (size_t i = 1; i < all.size(); ++i) {
    for (size_t k = 0; k < kWriters; ++k) {
      EXPECT_LE((*all[i - 1])[k], (*all[i])[k]);
    }
  }
}

// The paper's Section 9.4 claim end to end: the complete self-enforcement
// stack — announcements N, records M, both over ABD message passing —
// verifying a distributed register, with replicas crashing mid-run.
TEST(MsgPassStack, SelfEnforcedOverAbdWithCrashes) {
  auto svc = std::make_shared<AbdService>(5, 7, 5);
  constexpr size_t kProcs = 3;
  auto reg = make_abd_register(svc, /*key=*/900'000);
  auto obj = make_linearizable_object(make_register_spec());
  SelfEnforced se(
      kProcs, *reg, *obj,
      std::make_unique<AbdSnapshot<const SetNode*>>(svc, kProcs, nullptr,
                                                    /*key_base=*/100),
      std::make_unique<AbdSnapshot<const RecNode*>>(svc, kProcs, nullptr,
                                                    /*key_base=*/200));

  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 3 + 29);
      barrier.arrive_and_wait();
      for (int i = 0; i < 25; ++i) {
        if (p == 0 && i == 8) svc->crash(2);   // one replica dies mid-run
        auto [m, arg] = random_op(ObjectKind::kRegister, rng);
        if (se.apply(p, m, arg).error) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_TRUE(obj->contains(se.certificate(0)));
}

// A faulty implementation is still caught when the monitoring plumbing runs
// over message passing.
TEST(MsgPassStack, FaultDetectionOverAbd) {
  auto svc = std::make_shared<AbdService>(3, 8, 0);
  auto bad = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(
      2, *bad, *obj,
      std::make_unique<AbdSnapshot<const SetNode*>>(svc, 2, nullptr, 100),
      std::make_unique<AbdSnapshot<const RecNode*>>(svc, 2, nullptr, 200));
  auto out = se.apply(0, Method::kDequeue);  // the lie
  EXPECT_TRUE(out.error);
  EXPECT_FALSE(obj->contains(se.certificate(0)));
}

}  // namespace
}  // namespace selin
