// Multi-tenant monitoring service (src/selin/service/) and the shared
// executor underneath it (src/selin/parallel/executor.hpp).
//
// The service multiplexes N independent (spec, history) sessions over one
// executor.  What must hold:
//
//  * per-session verdicts are a function of the session's own event stream —
//    identical whatever the interleaving with other sessions' batches and
//    whatever the executor's lane count (cross-session isolation /
//    determinism; the TSan CI leg runs this suite to certify the
//    data-race-freedom half of that claim);
//  * total spawned threads stay bounded by the executor's lane cap no
//    matter how many sessions are open (the multi-tenant scaling
//    contract);
//  * a session overflowing its exploration budget (or rejecting) is
//    settled and isolated — other sessions keep progressing;
//  * the executor's phase dispatch is correct under nesting and rethrows
//    job exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace selin {
namespace {

using test::corrupt_response;
using test::random_linearizable_history;

constexpr ObjectKind kKinds[] = {
    ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kCounter,
    ObjectKind::kRegister, ObjectKind::kSet,
};

struct Stream {
  ObjectKind kind;
  History h;
  bool expect_ok;
  size_t ref_frontier;
};

// Mixed accepting/rejecting streams with sequential-reference verdicts.
std::vector<Stream> make_streams(size_t n) {
  std::vector<Stream> out;
  for (size_t i = 0; i < n; ++i) {
    Stream s;
    s.kind = kKinds[i % std::size(kKinds)];
    s.h = random_linearizable_history(s.kind, 3, 30, 1000 + i * 17);
    if (i % 3 == 1) corrupt_response(s.h, i * 7 + 1);
    auto spec = make_spec(s.kind);
    LinMonitor ref(*spec);
    for (const Event& e : s.h) ref.feed(e);
    s.expect_ok = ref.ok();
    s.ref_frontier = ref.frontier_size();
    out.push_back(std::move(s));
  }
  return out;
}

void expect_matches_reference(const service::MonitorService& svc,
                              const std::vector<Stream>& streams,
                              const char* label) {
  for (size_t i = 0; i < streams.size(); ++i) {
    const service::Session& s = svc.session(i);
    EXPECT_EQ(s.ok(), streams[i].expect_ok) << label << " session " << i;
    if (streams[i].expect_ok) {
      EXPECT_EQ(s.status(), service::Session::Status::kOk)
          << label << " session " << i;
      EXPECT_EQ(s.events_fed(), streams[i].h.size())
          << label << " session " << i;
      EXPECT_EQ(s.frontier_size(), streams[i].ref_frontier)
          << label << " session " << i;
    } else {
      EXPECT_EQ(s.status(), service::Session::Status::kRejected)
          << label << " session " << i;
    }
    EXPECT_EQ(s.pending(), 0u) << label << " session " << i;
  }
}

TEST(MonitorService, VerdictsMatchSequentialReferencePerLaneCount) {
  std::vector<Stream> streams = make_streams(6);
  for (size_t lanes : {1, 2, 4}) {
    service::ServiceOptions opts;
    opts.lanes = lanes;
    opts.batch_limit = 16;
    service::MonitorService svc(opts);
    for (size_t i = 0; i < streams.size(); ++i) {
      svc.open("s" + std::to_string(i), make_spec(streams[i].kind));
    }
    for (size_t i = 0; i < streams.size(); ++i) {
      svc.feed(i, std::span<const Event>(streams[i].h.data(),
                                         streams[i].h.size()));
    }
    svc.drain();
    expect_matches_reference(svc, streams,
                             ("lanes=" + std::to_string(lanes)).c_str());
  }
}

// Same verdicts whatever the feed/drain interleaving: dribble events in
// uneven chunks, draining at staggered points, across several schedules.
TEST(MonitorService, VerdictsIndependentOfInterleaving) {
  std::vector<Stream> streams = make_streams(5);
  for (uint64_t schedule = 0; schedule < 4; ++schedule) {
    service::ServiceOptions opts;
    opts.lanes = 2;
    opts.batch_limit = 4 + schedule * 5;
    service::MonitorService svc(opts);
    for (size_t i = 0; i < streams.size(); ++i) {
      svc.open("s" + std::to_string(i), make_spec(streams[i].kind));
    }
    std::vector<size_t> cursor(streams.size(), 0);
    Rng rng(99 + schedule);
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < streams.size(); ++i) {
        size_t left = streams[i].h.size() - cursor[i];
        if (left == 0) continue;
        size_t take = std::min<size_t>(left, 1 + rng.below(7));
        svc.feed(i, std::span<const Event>(streams[i].h.data() + cursor[i],
                                           take));
        cursor[i] += take;
        progress = true;
        if (rng.chance(1, 3)) svc.drain_round();
      }
    }
    svc.drain();
    expect_matches_reference(
        svc, streams, ("schedule=" + std::to_string(schedule)).c_str());
  }
}

// The multi-tenant contract: many sessions, bounded threads.  The service's
// executor must never spawn more workers than its lane cap even with far
// more sessions than lanes.
TEST(MonitorService, SpawnedThreadsBoundedByLaneCap) {
  constexpr size_t kLanes = 2;
  service::ServiceOptions opts;
  opts.lanes = kLanes;
  opts.batch_limit = 8;
  service::MonitorService svc(opts);
  std::vector<Stream> streams = make_streams(12);
  for (size_t i = 0; i < streams.size(); ++i) {
    svc.open("s" + std::to_string(i), make_spec(streams[i].kind));
    svc.feed(i, std::span<const Event>(streams[i].h.data(),
                                       streams[i].h.size()));
  }
  svc.drain();
  EXPECT_EQ(svc.executor()->lanes(), kLanes);
  EXPECT_LE(svc.executor()->threads_spawned(), kLanes);
  expect_matches_reference(svc, streams, "bounded-threads");
}

// An injected executor is shared verbatim: two services, one pool, still
// bounded, still correct.
TEST(MonitorService, SharesInjectedExecutor) {
  auto exec = std::make_shared<parallel::Executor>(2);
  service::ServiceOptions opts;
  opts.executor = exec;
  service::MonitorService a(opts), b(opts);
  EXPECT_EQ(a.executor().get(), exec.get());
  EXPECT_EQ(b.executor().get(), exec.get());
  std::vector<Stream> streams = make_streams(4);
  for (size_t i = 0; i < streams.size(); ++i) {
    service::MonitorService& svc = (i % 2 == 0) ? a : b;
    svc.open("s" + std::to_string(i), make_spec(streams[i].kind));
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    service::MonitorService& svc = (i % 2 == 0) ? a : b;
    svc.feed(i / 2, std::span<const Event>(streams[i].h.data(),
                                           streams[i].h.size()));
  }
  a.drain();
  b.drain();
  EXPECT_LE(exec->threads_spawned(), 2u);
  for (size_t i = 0; i < streams.size(); ++i) {
    const service::MonitorService& svc = (i % 2 == 0) ? a : b;
    EXPECT_EQ(svc.session(i / 2).ok(), streams[i].expect_ok) << i;
  }
}

// A session blowing its exploration budget settles as kOverflowed without
// disturbing its neighbors, and drops (rather than accumulates) further
// input.
TEST(MonitorService, OverflowIsolatedPerSession) {
  service::ServiceOptions opts;
  opts.lanes = 2;
  service::MonitorService svc(opts);

  // Session 0: 6 concurrently open enqueues against a 4-config budget.
  service::SessionOptions tight;
  tight.max_configs = 4;
  svc.open("tight", make_queue_spec(), tight);
  History wide;
  std::vector<OpDesc> open_ops;
  for (ProcId p = 0; p < 6; ++p) {
    open_ops.push_back(OpDesc{OpId{p, 0}, Method::kEnqueue, p + 1});
    wide.push_back(Event::inv(open_ops.back()));
  }
  wide.push_back(Event::res(open_ops[0], kTrue));

  // Session 1: a healthy stream.
  Stream good;
  good.kind = ObjectKind::kQueue;
  good.h = random_linearizable_history(good.kind, 3, 24, 5);
  svc.open("good", make_spec(good.kind));

  svc.feed(0, std::span<const Event>(wide.data(), wide.size()));
  svc.feed(1, std::span<const Event>(good.h.data(), good.h.size()));
  svc.drain();

  EXPECT_EQ(svc.session(0).status(), service::Session::Status::kOverflowed);
  // events_fed reports what the engine accepted: the 6 invocations (the
  // overflowing response died mid-closure), not the batch's arrival count.
  EXPECT_EQ(svc.session(0).events_fed(), 6u);
  EXPECT_EQ(svc.session(1).status(), service::Session::Status::kOk);
  EXPECT_EQ(svc.session(1).events_fed(), good.h.size());

  // Sticky: more input to the overflowed session is dropped, not buffered.
  svc.feed(0, Event::res(open_ops[1], kTrue));
  EXPECT_EQ(svc.session(0).pending(), 0u);
  svc.drain();
  EXPECT_EQ(svc.session(0).status(), service::Session::Status::kOverflowed);
}

// A rejecting session reports the batch window containing the offense.
TEST(MonitorService, FirstBadIndexBracketsTheOffense) {
  Stream bad;
  bad.kind = ObjectKind::kQueue;
  bad.h = random_linearizable_history(bad.kind, 3, 40, 77);
  ASSERT_TRUE(corrupt_response(bad.h, 3));

  service::ServiceOptions opts;
  opts.lanes = 2;
  opts.batch_limit = 8;
  service::MonitorService svc(opts);
  svc.open("bad", make_spec(bad.kind));
  svc.feed(0, std::span<const Event>(bad.h.data(), bad.h.size()));
  svc.drain();

  const service::Session& s = svc.session(0);
  ASSERT_EQ(s.status(), service::Session::Status::kRejected);
  EXPECT_LT(s.first_bad_index(), s.events_fed());
  EXPECT_LE(s.events_fed() - s.first_bad_index(), 8u)
      << "offense must lie within the final drained batch";
  // Stats flow through per session.
  EXPECT_GT(s.stats().events_fed, 0u);
}

// ---- executor primitives ---------------------------------------------------

TEST(Executor, PhaseRunsEverySliceExactlyOnce) {
  parallel::Executor exec(3);
  for (size_t n : {1, 2, 7, 64}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    exec.run_phase(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
  EXPECT_LE(exec.threads_spawned(), 3u);
}

TEST(Executor, PhaseRethrowsFirstJobException) {
  parallel::Executor exec(2);
  EXPECT_THROW(
      exec.run_phase(5,
                     [&](size_t i) {
                       if (i == 3) throw std::runtime_error("slice 3");
                     }),
      std::runtime_error);
  // The executor stays usable after a throwing phase.
  std::atomic<int> ok{0};
  exec.run_phase(4, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

// A phase job launching its own phase (the service shape: session batches
// run as phase slices, and a session's monitor may shard its own rounds
// over the same executor).  Must complete without deadlock whatever the
// lane count.
TEST(Executor, NestedPhasesComplete) {
  for (size_t lanes : {1, 2}) {
    parallel::Executor exec(lanes);
    std::atomic<int> inner{0};
    exec.run_phase(3, [&](size_t) {
      exec.run_phase(4, [&](size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 12);
  }
}

TEST(Executor, TaskLanesOverSharedExecutorTracksOnlyItsOwnTasks) {
  auto exec = std::make_shared<parallel::Executor>(2);
  parallel::TaskLanes a(2, exec), b(2, exec);
  std::atomic<int> na{0}, nb{0};
  for (int i = 0; i < 16; ++i) {
    a.post([&na] { na.fetch_add(1); });
    b.post([&nb] { nb.fetch_add(1); });
  }
  a.wait_idle();
  EXPECT_EQ(na.load(), 16);
  b.wait_idle();
  EXPECT_EQ(nb.load(), 16);
  EXPECT_EQ(a.executed(), 16u);
  EXPECT_EQ(b.executed(), 16u);
  EXPECT_LE(exec->threads_spawned(), 2u);
}

TEST(Executor, TaskLanesRethrowsAtWaitIdle) {
  auto exec = std::make_shared<parallel::Executor>(1);
  parallel::TaskLanes lanes(1, exec);
  lanes.post([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(lanes.wait_idle(), std::runtime_error);
  // Poison cleared; lanes reusable.
  std::atomic<int> n{0};
  lanes.post([&n] { n.fetch_add(1); });
  lanes.wait_idle();
  EXPECT_EQ(n.load(), 1);
}

}  // namespace
}  // namespace selin
