// Snapshot substrate tests (Definition 7.3), parameterized over all three
// implementations: sequential semantics, and the concurrent correctness
// properties that the views machinery relies on —
//   * per-entry monotonicity (a scan never regresses an entry), and
//   * coordinatewise comparability of concurrent scans (what gives views
//     their containment comparability, Remark 7.2(2)).
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

class SnapshotTest : public ::testing::TestWithParam<SnapshotKind> {};

TEST_P(SnapshotTest, SequentialWriteScan) {
  auto s = make_snapshot<uint64_t>(GetParam(), 4, 0);
  EXPECT_EQ(s->size(), 4u);
  s->write(0, 10);
  s->write(2, 30);
  auto v = s->scan(0);
  EXPECT_EQ(v, (std::vector<uint64_t>{10, 0, 30, 0}));
  s->write(0, 11);
  v = s->scan(1);
  EXPECT_EQ(v[0], 11u);
}

TEST_P(SnapshotTest, OverwritesSameEntry) {
  auto s = make_snapshot<uint64_t>(GetParam(), 2, 0);
  for (uint64_t i = 1; i <= 100; ++i) s->write(1, i);
  EXPECT_EQ(s->scan(0)[1], 100u);
}

// Writers publish strictly increasing values; concurrent scanners must see
// (a) per-entry monotone values across their own scans and (b) any two scan
// vectors coordinatewise comparable — i.e. the scans form a chain, which is
// exactly linearizability of scans for grow-only data.
TEST_P(SnapshotTest, ConcurrentScansFormAChain) {
  constexpr size_t kWriters = 3;
  constexpr size_t kScanners = 3;
  constexpr uint64_t kWrites = 2000;
  auto s = make_snapshot<uint64_t>(GetParam(), kWriters, 0);

  std::vector<std::vector<std::vector<uint64_t>>> scans(kScanners);
  SpinBarrier barrier(kWriters + kScanners);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      barrier.arrive_and_wait();
      for (uint64_t i = 1; i <= kWrites; ++i) {
        s->write(static_cast<ProcId>(w), i);
      }
    });
  }
  for (size_t r = 0; r < kScanners; ++r) {
    threads.emplace_back([&, r] {
      barrier.arrive_and_wait();
      for (int i = 0; i < 300; ++i) {
        scans[r].push_back(s->scan(static_cast<ProcId>(r % kWriters)));
      }
    });
  }
  for (auto& t : threads) t.join();

  // (a) per-scanner monotonicity.
  for (const auto& seq : scans) {
    for (size_t i = 1; i < seq.size(); ++i) {
      for (size_t k = 0; k < kWriters; ++k) {
        EXPECT_LE(seq[i - 1][k], seq[i][k]) << "entry regressed";
      }
    }
  }
  // (b) global chain: gather all scans, sort by sum, verify pairwise
  // coordinatewise comparability via adjacent dominance.
  std::vector<const std::vector<uint64_t>*> all;
  for (const auto& seq : scans) {
    for (const auto& v : seq) all.push_back(&v);
  }
  std::sort(all.begin(), all.end(),
            [](const std::vector<uint64_t>* a, const std::vector<uint64_t>* b) {
              uint64_t sa = 0, sb = 0;
              for (uint64_t x : *a) sa += x;
              for (uint64_t x : *b) sb += x;
              return sa < sb;
            });
  for (size_t i = 1; i < all.size(); ++i) {
    for (size_t k = 0; k < kWriters; ++k) {
      EXPECT_LE((*all[i - 1])[k], (*all[i])[k])
          << "concurrent scans are not comparable (not linearizable)";
    }
  }
}

// Writers also scan (the A* pattern: every operation writes then scans).
TEST_P(SnapshotTest, WriterScansSeeOwnWrites) {
  constexpr size_t kProcs = 4;
  auto s = make_snapshot<uint64_t>(GetParam(), kProcs, 0);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (size_t p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (uint64_t i = 1; i <= 1000; ++i) {
        s->write(static_cast<ProcId>(p), i);
        auto v = s->scan(static_cast<ProcId>(p));
        if (v[p] < i) failed.store(true);  // must see own write
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SnapshotTest,
                         ::testing::Values(SnapshotKind::kMutex,
                                           SnapshotKind::kDoubleCollect,
                                           SnapshotKind::kAfek),
                         [](const auto& info) {
                           return std::string(snapshot_kind_name(info.param)) ==
                                          "double-collect"
                                      ? "double_collect"
                                      : snapshot_kind_name(info.param);
                         });

TEST(SnapshotSteps, AfekScanIsBoundedPerCall) {
  // Wait-freedom evidence: a solo Afek scan takes O(n^2) steps, not
  // unbounded retries.
  auto s = make_snapshot<uint64_t>(SnapshotKind::kAfek, 8, 0);
  StepCounter::reset_local();
  StepProbe probe;
  (void)s->scan(0);
  EXPECT_LE(probe.steps(), 8u * 8u * 4u);
}

}  // namespace
}  // namespace selin
