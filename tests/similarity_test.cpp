// Similarity (Definition 7.1) and the GenLin closure properties
// (Definition 7.2, Lemma 7.1): linearizability is closed under prefixes and
// under similarity.  The property tests sweep random linearizable histories
// across object families and verify both closure directions mechanically.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

TEST(Similarity, IdenticalHistoriesAreSimilar) {
  OpFactory f;
  History h;
  test::seq_op(h, f, 0, Method::kEnqueue, 1, kTrue);
  EXPECT_TRUE(similar_to(h, h));
}

TEST(Similarity, PendingOpMayGainResponse) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  History e{Event::inv(a)};                          // pending in E
  History g{Event::inv(a), Event::res(a, kTrue)};    // complete in F
  EXPECT_TRUE(similar_to(e, g));
}

TEST(Similarity, PendingOpMayBeRemoved) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  History e{Event::inv(a), Event::res(a, kTrue), Event::inv(b)};
  History g{Event::inv(a), Event::res(a, kTrue)};  // b dropped
  EXPECT_TRUE(similar_to(e, g));
}

TEST(Similarity, CompleteOpCannotDisappear) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  History e{Event::inv(a), Event::res(a, kTrue)};
  History g{};
  EXPECT_FALSE(similar_to(e, g));
}

TEST(Similarity, PrecedenceMustBePreserved) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kEnqueue, 1);
  OpDesc b = f.op(1, Method::kDequeue);
  // In E, a precedes b; in F they are concurrent — ≺_E ⊄ ≺_F is REQUIRED to
  // go the other way: similarity demands ≺_{E'} ⊆ ≺_F, so E (sequential) is
  // NOT similar to F (concurrent)?  It is not: a ≺_E b but not a ≺_F b.
  History e{Event::inv(a), Event::res(a, kTrue), Event::inv(b),
            Event::res(b, 1)};
  History g{Event::inv(a), Event::inv(b), Event::res(a, kTrue),
            Event::res(b, 1)};
  EXPECT_FALSE(similar_to(e, g));
  // The concurrent history IS similar to the sequential one (shrinking
  // relations is allowed in that direction: ≺_F ⊆ ≺_E trivially holds for
  // the pairs F relates... precisely, F similar to E).
  EXPECT_TRUE(similar_to(g, e));
}

TEST(Similarity, DifferentResultsNotSimilar) {
  OpFactory f;
  OpDesc a = f.op(0, Method::kDequeue);
  History e{Event::inv(a), Event::res(a, 1)};
  History g{Event::inv(a), Event::res(a, 2)};
  EXPECT_FALSE(similar_to(e, g));
}

// ---- Lemma 7.1 property tests --------------------------------------------

struct ClosureParams {
  ObjectKind kind;
  uint64_t seed;
};

class GenLinClosure : public ::testing::TestWithParam<ClosureParams> {};

// (1) Prefix closure: every prefix of a linearizable history is linearizable.
TEST_P(GenLinClosure, PrefixClosed) {
  auto [kind, seed] = GetParam();
  auto spec = make_spec(kind);
  History h = test::random_linearizable_history(kind, 3, 8, seed);
  ASSERT_TRUE(linearizable(*spec, h)) << format_history(h);
  for (size_t cut = 0; cut <= h.size(); ++cut) {
    History prefix(h.begin(), h.begin() + static_cast<long>(cut));
    EXPECT_TRUE(linearizable(*spec, prefix))
        << "prefix of length " << cut << " of:\n"
        << format_history(h);
  }
}

// (2) Similarity closure: histories similar to a linearizable history are
// linearizable.  We construct similar histories by dropping responses
// (making ops pending) — the inverse of "appending responses", so the
// truncated history is similar to the original by Definition 7.1.
TEST_P(GenLinClosure, SimilarityClosed) {
  auto [kind, seed] = GetParam();
  auto spec = make_spec(kind);
  History h = test::random_linearizable_history(kind, 3, 8, seed);
  ASSERT_TRUE(linearizable(*spec, h));
  // Drop the last response event.
  for (size_t i = h.size(); i-- > 0;) {
    if (h[i].is_res()) {
      History e(h);
      e.erase(e.begin() + static_cast<long>(i));
      ASSERT_TRUE(well_formed(e));
      EXPECT_TRUE(similar_to(e, h)) << format_history(e);
      EXPECT_TRUE(linearizable(*spec, e)) << format_history(e);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenLinClosure,
    ::testing::Values(
        ClosureParams{ObjectKind::kQueue, 1}, ClosureParams{ObjectKind::kQueue, 2},
        ClosureParams{ObjectKind::kQueue, 3}, ClosureParams{ObjectKind::kStack, 4},
        ClosureParams{ObjectKind::kStack, 5}, ClosureParams{ObjectKind::kSet, 6},
        ClosureParams{ObjectKind::kSet, 7}, ClosureParams{ObjectKind::kPqueue, 8},
        ClosureParams{ObjectKind::kCounter, 9},
        ClosureParams{ObjectKind::kRegister, 10},
        ClosureParams{ObjectKind::kConsensus, 11},
        ClosureParams{ObjectKind::kQueue, 12}, ClosureParams{ObjectKind::kStack, 13},
        ClosureParams{ObjectKind::kCounter, 14},
        ClosureParams{ObjectKind::kRegister, 15}));

}  // namespace
}  // namespace selin
