// Differential parity for the unified FrontierEngine (src/selin/engine/).
//
// All three membership checkers are facades over one engine, and the engine
// has three execution modes: sequential (threads == 1), sharded
// (threads == N), and adaptive (threads == engine::kAutoThreads /
// auto_threads(n), which switches between the other two per feed round by
// frontier-width hysteresis).  The closure set and the filtered frontier
// are fixpoints — independent of how and where work is split — so this
// suite asserts, for every concrete spec:
//
//  * per-event verdicts, frontier sizes, and frontier digests (the XOR of
//    mixed configuration fingerprints — representation-independent, so it
//    also pins the run-length op-set storage to the flat representation's
//    hash contract) are bit-identical across threads ∈ {1, 2, auto(2),
//    auto}, on accepting and rejecting histories;
//  * final verdicts agree with the brute-force oracle on small histories;
//  * the overflow and feed-boundary-exception paths behave identically in
//    every mode (CheckerOverflow thrown, sticky overflowed(), frontier
//    released, clones inherit the poisoned state);
//  * the adaptive engine actually switches representations both ways and
//    reports it through the stats facility.
#include <gtest/gtest.h>

#include <vector>

#include "selin/engine/auto_tuner.hpp"
#include "selin/engine/frontier_engine.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;
using test::corrupt_response;
using test::random_exchanger_history;
using test::random_linearizable_history;
using test::random_write_snapshot_history;

// The execution modes under test.  auto_threads(2) pins the adaptive
// engine's lane count so the parallel representation is reachable even on a
// single-core host; kAutoThreads additionally covers the hardware-resolved
// lane count (which may legitimately degenerate to 1 lane);
// auto_tuned_threads(2) adds the self-tuning engine, which the test
// factories below additionally seed with warm-start priors — priors and
// tuner moves may shift *when* representations switch, never what a round
// computes, so parity must hold there too (non-tuned modes ignore priors).
const size_t kModes[] = {2, engine::auto_threads(2), engine::kAutoThreads,
                         engine::auto_tuned_threads(2)};

// Representative recorded-run seeds handed to every test factory: tuned
// modes apply them (engage/retreat/lanes), every other mode ignores them.
engine::TunerPriors test_priors() {
  engine::TunerPriors p;
  p.engage = 512;
  p.retreat = 128;
  p.lanes = 2;
  return p;
}

constexpr ObjectKind kAllKinds[] = {
    ObjectKind::kQueue,   ObjectKind::kStack,    ObjectKind::kSet,
    ObjectKind::kPqueue,  ObjectKind::kCounter,  ObjectKind::kRegister,
    ObjectKind::kConsensus,
};

// Feed `h` through monitors for every mode in lockstep against the
// sequential reference, asserting verdict and frontier-size equality after
// every event.  Returns the sequential verdict.
template <typename Monitor, typename MakeMonitor>
bool expect_mode_parity(MakeMonitor&& make, const History& h,
                        const char* label) {
  Monitor ref = make(size_t{1});
  std::vector<Monitor> others;
  for (size_t mode : kModes) others.push_back(make(mode));
  for (size_t i = 0; i < h.size(); ++i) {
    ref.feed(h[i]);
    for (size_t m = 0; m < others.size(); ++m) {
      others[m].feed(h[i]);
      bool ok_eq = ref.ok() == others[m].ok();
      bool fs_eq = ref.frontier_size() == others[m].frontier_size();
      bool dg_eq = ref.frontier_digest() == others[m].frontier_digest();
      // The footprint walks every live configuration, so its equality pins
      // the op-set *contents* across modes, not just their fingerprints.
      engine::FrontierFootprint rf = ref.footprint();
      engine::FrontierFootprint of = others[m].footprint();
      bool fp_eq = rf.configs == of.configs &&
                   rf.opset_elems == of.opset_elems &&
                   rf.opset_bytes == of.opset_bytes &&
                   rf.opset_smallvec_bytes == of.opset_smallvec_bytes;
      EXPECT_TRUE(ok_eq) << label << " mode " << m << " event " << i
                         << ": ok " << ref.ok() << " vs " << others[m].ok();
      EXPECT_TRUE(fs_eq) << label << " mode " << m << " event " << i
                         << ": frontier " << ref.frontier_size() << " vs "
                         << others[m].frontier_size();
      EXPECT_TRUE(dg_eq) << label << " mode " << m << " event " << i
                         << ": digest " << ref.frontier_digest() << " vs "
                         << others[m].frontier_digest();
      EXPECT_TRUE(fp_eq) << label << " mode " << m << " event " << i
                         << ": footprint " << rf.opset_bytes << " vs "
                         << of.opset_bytes;
      if (!ok_eq || !fs_eq || !dg_eq || !fp_eq) {
        return ref.ok();  // don't spam per-event failures
      }
    }
  }
  return ref.ok();
}

TEST(EngineParity, AllSeqSpecsAcceptingAndRejecting) {
  for (ObjectKind kind : kAllKinds) {
    auto spec = make_spec(kind);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      History good = random_linearizable_history(kind, 4, 40, seed * 19 + 2);
      auto make = [&](size_t threads) {
        return LinMonitor(*spec, 1 << 18, threads, nullptr, test_priors());
      };
      bool v = expect_mode_parity<LinMonitor>(make, good,
                                              object_kind_name(kind));
      EXPECT_TRUE(v) << object_kind_name(kind) << " seed " << seed;
      History bad = good;
      if (corrupt_response(bad, seed * 5 + 1)) {
        expect_mode_parity<LinMonitor>(make, bad, object_kind_name(kind));
      }
    }
  }
}

// Small histories, so the exponential reference oracle is feasible: every
// mode must agree with brute force, not merely with each other.
TEST(EngineParity, BruteForceOracleAgreesInEveryMode) {
  for (ObjectKind kind : kAllKinds) {
    auto spec = make_spec(kind);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      for (bool corrupt : {false, true}) {
        History h = random_linearizable_history(kind, 3, 7, seed * 11 + 3);
        if (corrupt && !corrupt_response(h, seed)) continue;
        bool oracle = linearizable_bruteforce(*spec, h);
        EXPECT_EQ(oracle, linearizable(*spec, h))
            << object_kind_name(kind) << " seed " << seed;
        for (size_t mode : kModes) {
          EXPECT_EQ(oracle, linearizable(*spec, h, 1 << 18, mode))
              << object_kind_name(kind) << " seed " << seed;
        }
        // Tuned monitor with priors against the same oracle.
        LinMonitor tm(*spec, 1 << 18, engine::auto_tuned_threads(2), nullptr,
                      test_priors());
        for (const Event& e : h) tm.feed(e);
        EXPECT_EQ(oracle, tm.ok())
            << object_kind_name(kind) << " seed " << seed << " (tuned+priors)";
      }
    }
  }
}

TEST(EngineParity, SetLinExchanger) {
  auto spec = make_exchanger_spec();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    History h = random_exchanger_history(4, 20, seed * 29 + 7);
    auto make = [&](size_t threads) {
      return SetLinMonitor(*spec, 1 << 18, threads, nullptr, test_priors());
    };
    expect_mode_parity<SetLinMonitor>(make, h, "exchanger");
  }
}

TEST(EngineParity, IntervalLinWriteSnapshot) {
  auto spec = make_write_snapshot_interval_spec();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (bool corrupt : {false, true}) {
      History h = random_write_snapshot_history(5, seed * 23 + 1, corrupt);
      auto make = [&](size_t threads) {
        return IntervalLinMonitor(*spec, 1 << 18, threads, nullptr,
                                  test_priors());
      };
      expect_mode_parity<IntervalLinMonitor>(make, h, "write-snapshot");
    }
  }
}

// ---- batched feed parity ---------------------------------------------------
//
// feed_batch must produce bit-identical verdicts and frontier sizes to
// feeding the same events one at a time, at every batch boundary, for every
// chunking and in every execution mode: the one closure a batch round runs
// services the whole run of consecutive responses (the filtered frontier is
// already closed — see FrontierEngine::feed_res_run), so nothing may depend
// on where the stream is cut.

// Feed `h` per-event into a reference monitor and in `chunk`-sized batches
// into another; compare verdict and frontier at every chunk boundary.
template <typename Monitor, typename MakeMonitor>
void expect_batch_parity(MakeMonitor&& make, const History& h, size_t chunk,
                         size_t mode, const char* label) {
  Monitor ref = make(size_t{1});
  Monitor batched = make(mode);
  for (size_t i = 0; i < h.size(); i += chunk) {
    const size_t n = std::min(chunk, h.size() - i);
    for (size_t k = i; k < i + n; ++k) ref.feed(h[k]);
    batched.feed_batch({h.data() + i, n});
    ASSERT_EQ(ref.ok(), batched.ok())
        << label << " chunk " << chunk << " mode " << mode << " events ["
        << i << ", " << i + n << ")";
    ASSERT_EQ(ref.frontier_size(), batched.frontier_size())
        << label << " chunk " << chunk << " mode " << mode << " events ["
        << i << ", " << i + n << ")";
    ASSERT_EQ(ref.frontier_digest(), batched.frontier_digest())
        << label << " chunk " << chunk << " mode " << mode << " events ["
        << i << ", " << i + n << ")";
    engine::FrontierFootprint rf = ref.footprint();
    engine::FrontierFootprint bf = batched.footprint();
    ASSERT_EQ(rf.opset_bytes, bf.opset_bytes)
        << label << " chunk " << chunk << " mode " << mode << " events ["
        << i << ", " << i + n << ")";
    ASSERT_EQ(rf.opset_elems, bf.opset_elems)
        << label << " chunk " << chunk << " mode " << mode << " events ["
        << i << ", " << i + n << ")";
  }
}

TEST(BatchParity, AllSeqSpecsEveryChunkingAndMode) {
  const size_t modes[] = {1, 2, engine::auto_threads(2),
                          engine::auto_tuned_threads(2)};
  for (ObjectKind kind : kAllKinds) {
    auto spec = make_spec(kind);
    auto make = [&](size_t threads) {
      return LinMonitor(*spec, 1 << 18, threads, nullptr, test_priors());
    };
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      History good = random_linearizable_history(kind, 4, 36, seed * 31 + 5);
      History bad = good;
      bool have_bad = corrupt_response(bad, seed * 3 + 2);
      for (size_t chunk : {size_t{1}, size_t{3}, size_t{8}, good.size()}) {
        for (size_t mode : modes) {
          expect_batch_parity<LinMonitor>(make, good, chunk, mode,
                                          object_kind_name(kind));
          if (have_bad) {
            expect_batch_parity<LinMonitor>(make, bad, chunk, mode,
                                            object_kind_name(kind));
          }
        }
      }
    }
  }
}

TEST(BatchParity, SetLinExchangerEveryChunking) {
  auto spec = make_exchanger_spec();
  auto make = [&](size_t threads) {
    return SetLinMonitor(*spec, 1 << 18, threads, nullptr, test_priors());
  };
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    History h = random_exchanger_history(4, 18, seed * 13 + 3);
    for (size_t chunk : {size_t{1}, size_t{4}, h.size()}) {
      for (size_t mode : {size_t{1}, size_t{2}, engine::auto_threads(2),
                          engine::auto_tuned_threads(2)}) {
        expect_batch_parity<SetLinMonitor>(make, h, chunk, mode, "exchanger");
      }
    }
  }
}

TEST(BatchParity, IntervalWriteSnapshotEveryChunking) {
  auto spec = make_write_snapshot_interval_spec();
  auto make = [&](size_t threads) {
    return IntervalLinMonitor(*spec, 1 << 18, threads, nullptr,
                              test_priors());
  };
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    for (bool corrupt : {false, true}) {
      History h = random_write_snapshot_history(5, seed * 41 + 7, corrupt);
      for (size_t chunk : {size_t{1}, size_t{4}, h.size()}) {
        for (size_t mode : {size_t{1}, size_t{2}, engine::auto_threads(2),
                            engine::auto_tuned_threads(2)}) {
          expect_batch_parity<IntervalLinMonitor>(make, h, chunk, mode,
                                                  "write-snapshot");
        }
      }
    }
  }
}

// A batch overflowing mid-run behaves exactly like the per-event overflow:
// CheckerOverflow propagates, the monitor poisons sticky, later batches are
// no-ops.
TEST(BatchParity, OverflowInsideBatchPoisonsSticky) {
  auto spec = make_queue_spec();
  for (size_t mode : {size_t{1}, size_t{2}, engine::auto_threads(2),
                      engine::auto_tuned_threads(2)}) {
    LinMonitor m(*spec, /*max_configs=*/4, mode, nullptr, test_priors());
    OpFactory f;
    History h;
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 6; ++p) {
      es.push_back(f.op(p, Method::kEnqueue, p + 1));
      h.push_back(Event::inv(es.back()));
    }
    h.push_back(Event::res(es[0], kTrue));
    h.push_back(Event::res(es[1], kTrue));
    EXPECT_THROW(m.feed_batch({h.data(), h.size()}), CheckerOverflow);
    EXPECT_TRUE(m.overflowed());
    EXPECT_EQ(m.frontier_size(), 0u);
    EXPECT_NO_THROW(m.feed_batch({h.data(), h.size()}));
  }
}

// The point of the batch path: one closure per response run.  A run of k
// consecutive responses must cost one engine round, not k.
TEST(BatchParity, BatchRunCountsOneRound) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec, 1 << 18, 1);
  OpFactory f;
  History h;
  std::vector<OpDesc> es;
  for (ProcId p = 0; p < 4; ++p) {
    es.push_back(f.op(p, Method::kEnqueue, p + 1));
    h.push_back(Event::inv(es.back()));
  }
  for (ProcId p = 0; p < 4; ++p) h.push_back(Event::res(es[p], kTrue));
  m.feed_batch({h.data(), h.size()});
  engine::EngineStats s = m.stats();
  EXPECT_EQ(s.events_fed, h.size());
  EXPECT_EQ(s.rounds_sequential, 1u) << "4-response run must be one round";
}

// ---- overflow / feed-boundary exception parity -----------------------------

TEST(EngineParity, OverflowStickyInEveryMode) {
  auto spec = make_queue_spec();
  std::vector<size_t> modes = {1};
  modes.insert(modes.end(), std::begin(kModes), std::end(kModes));
  for (size_t mode : modes) {
    LinMonitor m(*spec, /*max_configs=*/4, mode);
    OpFactory f;
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 6; ++p) {
      es.push_back(f.op(p, Method::kEnqueue, p + 1));
      m.feed(Event::inv(es.back()));
    }
    EXPECT_FALSE(m.overflowed());
    EXPECT_THROW(m.feed(Event::res(es[0], kTrue)), CheckerOverflow);
    EXPECT_TRUE(m.overflowed());
    // Poisoned but defined: feeds are no-ops, the last definite verdict
    // survives, the frontier was released, clones inherit the flag.
    EXPECT_NO_THROW(m.feed(Event::res(es[1], kTrue)));
    EXPECT_TRUE(m.ok());
    EXPECT_EQ(m.frontier_size(), 0u);
    auto fork = m.clone();
    EXPECT_NO_THROW(fork->feed(Event::res(es[2], kTrue)));
  }
}

TEST(EngineParity, SetLinAndIntervalOverflowSticky) {
  auto xspec = make_exchanger_spec();
  auto wspec = make_write_snapshot_interval_spec();
  std::vector<size_t> modes = {1, 2, engine::auto_threads(2)};
  OpFactory f;
  for (size_t mode : modes) {
    SetLinMonitor sm(*xspec, /*max_configs=*/2, mode);
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 4; ++p) {
      es.push_back(f.op(p, Method::kExchange, p + 1));
      sm.feed(Event::inv(es.back()));
    }
    EXPECT_THROW(sm.feed(Event::res(es[0], kEmpty)), CheckerOverflow);
    EXPECT_TRUE(sm.overflowed());
    EXPECT_NO_THROW(sm.feed(Event::res(es[1], kEmpty)));

    IntervalLinMonitor im(*wspec, /*max_configs=*/2, mode);
    std::vector<OpDesc> ws;
    for (ProcId p = 0; p < 4; ++p) {
      ws.push_back(OpDesc{OpId{p, 0}, Method::kWriteSnap, kNoArg});
      im.feed(Event::inv(ws.back()));
    }
    EXPECT_THROW(im.feed(Event::res(ws[0], 0b1111)), CheckerOverflow);
    EXPECT_TRUE(im.overflowed());
    EXPECT_NO_THROW(im.feed(Event::res(ws[1], 0b1111)));
  }
}

// The *event* at which the budget trips is part of the parity contract for
// the sequential engine: closure admits configurations in emission order, so
// batched probing must overflow at exactly the same accepted-config count —
// and hence on the same event — as the per-emit probes it replaced.  (The
// sharded engine's budget is a relaxed shared counter; its trip round is
// deterministic in content but not guaranteed event-identical, so only
// deterministic modes are pinned here.)
TEST(EngineParity, OverflowPointIdenticalAcrossDeterministicModes) {
  auto spec = make_queue_spec();
  OpFactory f;
  History h;
  std::vector<OpDesc> es;
  for (ProcId p = 0; p < 7; ++p) {
    es.push_back(f.op(p, Method::kEnqueue, p + 1));
    h.push_back(Event::inv(es.back()));
  }
  for (ProcId p = 0; p < 7; ++p) h.push_back(Event::res(es[p], kTrue));
  auto overflow_point = [&](size_t mode) -> size_t {
    LinMonitor m(*spec, /*max_configs=*/16, mode, nullptr, test_priors());
    for (size_t i = 0; i < h.size(); ++i) {
      try {
        m.feed(h[i]);
      } catch (const CheckerOverflow&) {
        return i;
      }
    }
    return h.size();
  };
  const size_t ref = overflow_point(1);
  ASSERT_LT(ref, h.size()) << "history never overflowed the budget";
  // kAutoThreads/auto_tuned stay sequential until the frontier is wide, and
  // this workload overflows before engaging, so they are deterministic here.
  for (size_t mode : {engine::kAutoThreads, engine::auto_tuned_threads(2)}) {
    EXPECT_EQ(ref, overflow_point(mode)) << "mode " << mode;
  }
}

// ---- adaptive execution ----------------------------------------------------

// Drive an adaptive monitor through a frontier that grows past the engage
// threshold (9 overlapping push pairs → width 2^9 = 512 ≥ kAutoEngageWidth)
// under sustained traffic, then resolve the ambiguity so the width collapses
// below the retreat threshold.  The engine must dispatch rounds on both
// paths, report them in stats(), and agree with the sequential reference
// throughout (which the parity suites above already established; here the
// point is the switching itself).
TEST(EngineAdaptive, SwitchesBothWaysUnderWidthSwings) {
  auto spec = make_stack_spec();
  LinMonitor seq(*spec, 1 << 20, 1);
  LinMonitor adp(*spec, 1 << 20, engine::auto_threads(2));
  OpFactory f;
  auto feed_both = [&](const Event& e) {
    seq.feed(e);
    adp.feed(e);
    ASSERT_EQ(seq.ok(), adp.ok());
    ASSERT_EQ(seq.frontier_size(), adp.frontier_size());
  };

  // Build the ambiguous base: 9 overlapping push pairs, never popped.
  std::vector<std::pair<Value, Value>> pairs;
  Value v = 100;
  for (int k = 0; k < 9; ++k) {
    OpDesc a = f.op(0, Method::kPush, v++);
    OpDesc b = f.op(1, Method::kPush, v++);
    pairs.emplace_back(a.arg, b.arg);
    feed_both(Event::inv(a));
    feed_both(Event::inv(b));
    feed_both(Event::res(a, kTrue));
    feed_both(Event::res(b, kTrue));
  }
  ASSERT_EQ(adp.frontier_size(), size_t{1} << 9);

  // Sustained traffic on the wide base: every response round now sees width
  // 512 ≥ kAutoEngageWidth and must run sharded.
  for (int i = 0; i < 4; ++i) {
    OpDesc push = f.op(2, Method::kPush, v);
    OpDesc pop = f.op(3, Method::kPop);
    feed_both(Event::inv(push));
    feed_both(Event::inv(pop));
    feed_both(Event::res(push, kTrue));
    feed_both(Event::res(pop, v));
    ASSERT_TRUE(adp.ok());
    ASSERT_EQ(adp.frontier_size(), size_t{1} << 9);
    ++v;
  }
  const uint64_t rounds_par_peak = adp.stats().rounds_parallel;
  EXPECT_GT(rounds_par_peak, 0u)
      << "wide frontier never engaged the sharded path";

  // Resolve the ambiguity: pop each pair in b-then-a order (consistent with
  // the a-before-b interleaving), halving the width per pair until it falls
  // below the retreat threshold.
  for (int k = 8; k >= 0; --k) {
    for (Value popped : {pairs[k].second, pairs[k].first}) {
      OpDesc d = f.op(4, Method::kPop);
      feed_both(Event::inv(d));
      feed_both(Event::res(d, popped));
      ASSERT_TRUE(adp.ok()) << "k=" << k << " popped=" << popped;
    }
  }
  EXPECT_EQ(adp.frontier_size(), 1u);

  engine::EngineStats s = adp.stats();
  EXPECT_GT(s.rounds_sequential, 0u);
  EXPECT_GE(s.peak_frontier, size_t{1} << 9);
  EXPECT_GT(s.dedup_probes, 0u);
  EXPECT_GT(s.dedup_hits, 0u);

  // The narrow tail must run sequentially again: more traffic grows the
  // sequential round count but not the parallel one.
  for (int i = 0; i < 3; ++i) {
    OpDesc d = f.op(5, Method::kPush, 7000 + i);
    feed_both(Event::inv(d));
    feed_both(Event::res(d, kTrue));
  }
  engine::EngineStats tail = adp.stats();
  EXPECT_EQ(tail.rounds_parallel, s.rounds_parallel);
  EXPECT_GT(tail.rounds_sequential, s.rounds_sequential);
}

// Priors seed exactly the tuner-owned knobs, exactly once, and only on
// tuned engines: the tuned monitor reports the seeded thresholds and counts
// each applied knob; a non-tuned adaptive monitor given the same priors
// keeps the static constants and counts nothing.
TEST(EngineAdaptive, PriorsSeedTunedKnobsAndCount) {
  auto spec = make_queue_spec();
  engine::TunerPriors p;
  p.engage = 1024;
  p.retreat = 200;
  p.lanes = 2;
  LinMonitor tuned(*spec, 1 << 18, engine::auto_tuned_threads(0), nullptr, p);
  engine::EngineStats ts = tuned.stats();
  EXPECT_EQ(ts.engage_width, 1024u);
  EXPECT_EQ(ts.retreat_width, 200u);
  EXPECT_EQ(ts.priors_applied, 3u);

  // An explicit lane request on the knob outranks the lane prior.
  LinMonitor pinned(*spec, 1 << 18, engine::auto_tuned_threads(2), nullptr, p);
  EXPECT_EQ(pinned.stats().priors_applied, 2u);

  LinMonitor untuned(*spec, 1 << 18, engine::auto_threads(2), nullptr, p);
  engine::EngineStats us = untuned.stats();
  EXPECT_EQ(us.engage_width, engine::kAutoEngageWidth);
  EXPECT_EQ(us.retreat_width, engine::kAutoRetreatWidth);
  EXPECT_EQ(us.priors_applied, 0u);

  // Out-of-range recorded values clamp into the tuner's bounds.
  engine::TunerPriors wild;
  wild.engage = 1 << 20;
  wild.retreat = 1 << 20;
  LinMonitor clamped(*spec, 1 << 18, engine::auto_tuned_threads(2), nullptr,
                     wild);
  engine::EngineStats cs = clamped.stats();
  EXPECT_EQ(cs.engage_width, engine::AutoTuner::kMaxEngage);
  EXPECT_LE(cs.retreat_width, cs.engage_width / 2);

  // priors_from_stats round-trips a recorded run into in-range seeds.
  engine::EngineStats recorded;
  recorded.peak_frontier = 700;
  engine::TunerPriors derived = engine::priors_from_stats(recorded);
  EXPECT_TRUE(derived.any_engine());
  EXPECT_EQ(derived.engage, 350u);
  EXPECT_EQ(derived.retreat, 350u / engine::AutoTuner::kHysteresisRatio);
  EXPECT_GE(derived.lanes, 1u);
}

// Stats survive cloning: a copy reports the counts accumulated so far.
TEST(EngineAdaptive, StatsSurviveClone) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec, 1 << 18, 1);
  OpFactory f;
  for (int i = 0; i < 6; ++i) {
    OpDesc e = f.op(0, Method::kEnqueue, i + 1);
    m.feed(Event::inv(e));
    m.feed(Event::res(e, kTrue));
  }
  engine::EngineStats before = m.stats();
  EXPECT_EQ(before.events_fed, 12u);
  EXPECT_GT(before.rounds_sequential, 0u);
  LinMonitor copy(m);
  engine::EngineStats after = copy.stats();
  EXPECT_EQ(after.events_fed, before.events_fed);
  EXPECT_EQ(after.rounds_sequential, before.rounds_sequential);
  EXPECT_EQ(after.dedup_probes, before.dedup_probes);
}

}  // namespace
}  // namespace selin
