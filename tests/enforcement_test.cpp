// Enforcement semantics (Figure 8, Section 7.3.1 discussion): due to
// asynchrony, A* is able to "fix" some non-linearizable histories of A — the
// wrapped operations span a wider window, overlapping what A mis-ordered.
// Where it cannot fix, the views detect (Theorem 8.1 completeness); either
// way a client of V_{O,A} never consumes an unflagged incorrect response
// (Theorem 8.2's contract, exercised end-to-end in self_enforced_test).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

// Figure 8 as a deterministic schedule: A (the Theorem 5.1 queue) produces
// deq():1 before any enqueue took effect — a non-linearizable history of A.
// But because p1's *announce* step lands before p2's *snapshot* step, the
// A* operations overlap, and the A* history (equally, its sketch) is
// linearizable: the mistake is enforced correct.
TEST(Enforcement, AStarFixesFigure8Schedule) {
  auto q = make_thm51_queue(/*liar=*/1);
  RecordingConcurrent recorded(*q, 64);
  AStar astar(2, recorded);
  SteppedAStar step(astar);

  step.announce(1, Method::kDequeue);
  step.announce(0, Method::kEnqueue, 1);  // enq announced before deq invokes
  Value deq_y = step.invoke(1);           // A lies: deq -> 1
  EXPECT_EQ(deq_y, 1);
  step.invoke(0);
  auto rd = step.complete(1);
  auto re = step.complete(0);

  auto spec = make_queue_spec();
  // The inner history of A is NOT linearizable (deq:1 completed before the
  // enqueue was invoked inside A).
  History inner = recorded.history();
  EXPECT_FALSE(linearizable(*spec, inner)) << format_history(inner);

  // The A* sketch IS linearizable: the wrapper enforced correctness.
  History x = x_of_lambda(std::vector<LambdaRecord>{
      {rd.op, rd.y, rd.view}, {re.op, re.y, re.view}});
  EXPECT_TRUE(linearizable(*spec, x)) << format_history(x);
}

// The complementary case: short delays — A's violation is visible in the
// sketch and MUST be detected (this is what completeness is made of).
TEST(Enforcement, ShortDelaysExposeViolation) {
  auto q = make_thm51_queue(1);
  AStar astar(2, *q);
  SteppedAStar step(astar);

  auto rd = step.run_all(1, Method::kDequeue);  // deq -> 1, alone
  auto re = step.run_all(0, Method::kEnqueue, 1);
  EXPECT_EQ(rd.y, 1);

  History x = x_of_lambda(std::vector<LambdaRecord>{
      {rd.op, rd.y, rd.view}, {re.op, re.y, re.view}});
  auto spec = make_queue_spec();
  EXPECT_FALSE(linearizable(*spec, x)) << format_history(x);
}

// End to end through SelfEnforced with the same two schedules: the fixed
// schedule yields no ERROR; the exposed schedule yields ERROR on the spot.
TEST(Enforcement, SelfEnforcedFlagsSequentialLieImmediately) {
  auto obj = make_linearizable_object(make_queue_spec());
  auto q = make_thm51_queue(1);
  SelfEnforced se(2, *q, *obj);
  auto out = se.apply(1, Method::kDequeue);  // deq -> 1 with empty queue
  EXPECT_TRUE(out.error);
  EXPECT_EQ(out.value, kError);
  History w = se.certificate(1);
  EXPECT_FALSE(obj->contains(w)) << format_history(w);
}

}  // namespace
}  // namespace selin
