// Cross-module integration: the full accountability story of Section 8.3 —
// a client C consuming a self-enforced object, mixed correct/faulty
// substrates, certificates audited offline, and the task-verification path
// of Section 9.3 through real snapshot executions.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

// A miniature "client C": a work-distribution pipeline where producers
// enqueue jobs and consumers dequeue them, counting what they see.  With the
// self-enforced queue, C is guaranteed every consumed job is linearizable-
// consistent or flagged.
TEST(Integration, ClientPipelineOverSelfEnforcedQueue) {
  constexpr size_t kProcs = 4;
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(kProcs, *q, *obj);

  std::atomic<int> produced{0}, consumed{0}, errors{0};
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      if (p % 2 == 0) {
        for (int i = 0; i < 120; ++i) {
          auto out = se.apply(p, Method::kEnqueue, p * 1000 + i);
          if (out.error) errors.fetch_add(1);
          else produced.fetch_add(1);
        }
      } else {
        // Keep polling past the quota until something was consumed: on a
        // single-core host the consumers can exhaust a fixed attempt budget
        // before any producer is scheduled, and the assertion below needs at
        // least one successful dequeue.  The cap keeps a genuine bug finite.
        for (int i = 0; i < 150 || (consumed.load() == 0 && i < 200000); ++i) {
          auto out = se.apply(p, Method::kDequeue);
          if (out.error) errors.fetch_add(1);
          else if (out.value != kEmpty) consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(consumed.load(), produced.load());
  EXPECT_GT(consumed.load(), 0);
}

// Section 8.3: several objects in one system, each self-enforced; the faulty
// one is accounted, the correct one untouched — the client can attribute
// blame per object.
TEST(Integration, PerObjectAccountability) {
  auto good_q = make_ms_queue();
  auto bad_c = make_stale_counter(1, 2, 321);
  auto qobj = make_linearizable_object(make_queue_spec());
  auto cobj = make_linearizable_object(make_counter_spec());
  SelfEnforced q(2, *good_q, *qobj);
  SelfEnforced c(2, *bad_c, *cobj);

  Rng rng(5);
  bool counter_flagged = false;
  for (int i = 0; i < 200; ++i) {
    auto [qm, qarg] = random_op(ObjectKind::kQueue, rng);
    EXPECT_FALSE(q.apply(i % 2, qm, qarg).error);
    auto out = c.apply(i % 2, Method::kInc);
    if (out.error) {
      counter_flagged = true;
      break;
    }
  }
  EXPECT_TRUE(counter_flagged);
  EXPECT_EQ(q.error_count(), 0u);
  // Forensics: the counter's certificate convicts it offline.
  History cert = c.certificate(0).empty() ? c.certificate(1) : c.certificate(0);
  EXPECT_FALSE(cobj->contains(cert));
  // ...and the queue's certificate exonerates it.
  EXPECT_TRUE(qobj->contains(q.certificate(0)));
}

// Section 9.3 via the real machinery: write-snapshot implemented directly on
// an atomic snapshot object, verified through the task's GenLin object.
TEST(Integration, WriteSnapshotTaskThroughRealSnapshots) {
  constexpr size_t kProcs = 4;
  auto snap = make_snapshot<uint64_t>(SnapshotKind::kAfek, kProcs, 0);
  auto obj = make_write_snapshot_object(kProcs);

  // Correct write-snapshot: write your flag, scan, output the mask of flags.
  auto task_impl = [&](ProcId p) -> Value {
    snap->write(p, 1);
    auto v = snap->scan(p);
    uint64_t mask = 0;
    for (size_t j = 0; j < kProcs; ++j) {
      if (v[j] != 0) mask |= 1ULL << j;
    }
    return static_cast<Value>(mask);
  };

  std::vector<Value> outs(kProcs);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      outs[p] = task_impl(p);
    });
  }
  for (auto& t : threads) t.join();

  // All ops concurrent: the task history with all invs first.
  History h;
  for (ProcId p = 0; p < kProcs; ++p) {
    h.push_back(Event::inv(OpDesc{OpId{p, 0}, Method::kWriteSnap, 1}));
  }
  for (ProcId p = 0; p < kProcs; ++p) {
    h.push_back(Event::res(OpDesc{OpId{p, 0}, Method::kWriteSnap, 1}, outs[p]));
  }
  EXPECT_TRUE(obj->contains(h)) << format_history(h);
}

// The same task with a *collect* (non-atomic double read) instead of a
// snapshot can violate comparability; the object then rejects.  We simulate
// the classic bad interleaving deterministically.
TEST(Integration, NonAtomicCollectViolatesTask) {
  auto obj = make_write_snapshot_object(2);
  // p0 sees only itself; p1 sees only itself — classic split-brain outputs
  // impossible under atomic snapshots.
  History h{
      Event::inv(OpDesc{OpId{0, 0}, Method::kWriteSnap, 1}),
      Event::inv(OpDesc{OpId{1, 0}, Method::kWriteSnap, 1}),
      Event::res(OpDesc{OpId{0, 0}, Method::kWriteSnap, 1}, 0b01),
      Event::res(OpDesc{OpId{1, 0}, Method::kWriteSnap, 1}, 0b10),
  };
  EXPECT_FALSE(obj->contains(h));
}

// GenLin beyond linearizability end to end: the exchanger as the enforced
// object, driven through the verifier with hand-scheduled A* operations.
TEST(Integration, ExchangerUnderSetLinearizability) {
  auto obj = make_set_linearizable_object(make_exchanger_spec());

  // A fake exchanger implementation that pairs the two concurrent calls.
  class PairingExchanger final : public IConcurrent {
   public:
    const char* name() const override { return "pairing-exchanger"; }
    Value apply(ProcId, const OpDesc& op) override {
      // First caller parks its value; second caller swaps.
      Value parked = slot_.exchange(op.arg, std::memory_order_acq_rel);
      if (parked == kNoArg) {
        // Wait briefly for a partner (bounded, then try to give up).
        for (int i = 0; i < 1000; ++i) {
          Value taken = taken_.exchange(kNoArg, std::memory_order_acq_rel);
          if (taken != kNoArg) return taken;
          std::this_thread::yield();
        }
        // Withdraw the offer atomically; if the CAS fails a partner already
        // took it, so the swap MUST complete — wait for the counter-value.
        Value mine = op.arg;
        if (slot_.compare_exchange_strong(mine, kNoArg,
                                          std::memory_order_acq_rel)) {
          return kEmpty;
        }
        for (;;) {
          Value taken = taken_.exchange(kNoArg, std::memory_order_acq_rel);
          if (taken != kNoArg) return taken;
          std::this_thread::yield();
        }
      }
      taken_.store(op.arg, std::memory_order_release);
      return parked;
    }

   private:
    std::atomic<Value> slot_{kNoArg};
    std::atomic<Value> taken_{kNoArg};
  };

  PairingExchanger ex;
  AStar astar(2, ex);
  Verifier v(astar, *obj);
  std::thread t1([&] { v.step(0, Method::kExchange, 10); });
  std::thread t2([&] { v.step(1, Method::kExchange, 20); });
  t1.join();
  t2.join();
  EXPECT_EQ(v.error_count(), 0u);
}

}  // namespace
}  // namespace selin
