#!/usr/bin/env bash
# CLI contract of selin_ingestd (registered as ctest target
# selin_ingestd_cli):
#
#   exit 0 = clean shutdown | 2 = usage error | 3 = startup failure
#
# plus the startup/shutdown protocol harnesses rely on: one "READY
# uds=<path>" / "READY tcp=<port>" line per listener on stdout (flushed
# before serving), graceful SIGTERM stop, and a final "STATS <json>" line.
# The happy paths run the soak driver end to end over UDS and an ephemeral
# TCP port, and scrape the HTTP stats endpoint.
#
# Usage: selin_ingestd_cli_test.sh <path-to-selin_ingestd> <path-to-soak>
set -u

daemon="$1"
soak="$2"
tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null
  [[ -n "$daemon_pid" ]] && wait "$daemon_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fails=0

expect() {
  local want="$1"; shift
  "$@" > "$tmp/out" 2> "$tmp/err"
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: exit $got (want $want): $*" >&2
    sed 's/^/  out: /' "$tmp/out" >&2
    sed 's/^/  err: /' "$tmp/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: exit $got: $*"
  fi
}

check() {  # check <description> <command...>
  local what="$1"; shift
  if "$@"; then
    echo "ok: $what"
  else
    echo "FAIL: $what" >&2
    fails=$((fails + 1))
  fi
}

# Waits until $1 appears in $2 (the daemon's stdout) or 10s elapse.
await_line() {
  local pattern="$1" file="$2"
  for _ in $(seq 1 200); do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    sleep 0.05
  done
  return 1
}

# Starts the daemon with the given flags, stdout to $tmp/daemon.out; sets
# daemon_pid.  Fails the suite if no READY line shows up.
start_daemon() {
  : > "$tmp/daemon.out"
  "$daemon" "$@" > "$tmp/daemon.out" 2> "$tmp/daemon.err" &
  daemon_pid=$!
  if ! await_line "^READY " "$tmp/daemon.out"; then
    echo "FAIL: daemon never printed READY ($*)" >&2
    sed 's/^/  err: /' "$tmp/daemon.err" >&2
    fails=$((fails + 1))
    return 1
  fi
}

# SIGTERMs the daemon and checks clean exit + the STATS line.
stop_daemon() {
  kill -TERM "$daemon_pid"
  local code=0
  wait "$daemon_pid" || code=$?
  daemon_pid=""
  if [[ "$code" != 0 ]]; then
    echo "FAIL: daemon exit $code after SIGTERM (want 0)" >&2
    fails=$((fails + 1))
  else
    echo "ok: daemon exits 0 on SIGTERM"
  fi
  check "daemon prints a final STATS json line" \
    grep -q '^STATS {' "$tmp/daemon.out"
}

# ---- usage errors (exit 2) -------------------------------------------------

expect 0 "$daemon" --help
check "--help prints usage on stdout" grep -q '^usage: selin_ingestd' "$tmp/out"
expect 2 "$daemon"                        # no listener configured
expect 2 "$daemon" --uds                  # missing value
expect 2 "$daemon" --tcp 99999            # port out of range
expect 2 "$daemon" --tcp notaport
expect 2 "$daemon" --uds "$tmp/x.sock" --batch-limit 0
expect 2 "$daemon" --uds "$tmp/x.sock" --session-threads frob
expect 2 "$daemon" --uds "$tmp/x.sock" --bogus-flag
expect 2 "$soak"                          # soak needs a target too
expect 2 "$soak" --uds "$tmp/x.sock" --width 3

# ---- startup failure (exit 3) ----------------------------------------------

expect 3 "$daemon" --uds "$tmp/no-such-dir/ig.sock"
check "startup failure names the socket error" grep -q 'selin_ingestd' "$tmp/err"

# ---- UDS happy path --------------------------------------------------------

sock="$tmp/ig.sock"
if start_daemon --uds "$sock" --idle-timeout-ms 30000; then
  check "READY names the socket path" \
    grep -q "^READY uds=$sock\$" "$tmp/daemon.out"

  expect 0 "$soak" --uds "$sock" --sessions 4 --events 200 --threads 2 \
    --no-http-check
  check "soak reports all sessions ok" grep -q '^SOAK ok' "$tmp/out"

  # A second run against the same daemon: sessions are evicted on bye, so
  # capacity is reusable.
  expect 0 "$soak" --uds "$sock" --sessions 2 --events 100 --threads 1 \
    --no-http-check

  # HTTP-ish stats over the same socket (python3 speaks AF_UNIX portably).
  # Totals pin the two runs above: 4*200 + 2*100 events, 6 sessions.
  check "/stats answers 200 with server totals over UDS" \
    python3 -c "
import json, socket
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect('$sock')
s.sendall(b'GET /stats HTTP/1.0\r\n\r\n')
raw = b''
while chunk := s.recv(4096):
    raw += chunk
head, _, body = raw.partition(b'\r\n\r\n')
assert b'200 OK' in head.split(b'\r\n')[0], head
doc = json.loads(body)
assert doc['server']['events'] == 1000, doc
assert doc['server']['sessions_opened'] == 6, doc
"

  stop_daemon
  check "STATS line parses as JSON with the soak's totals" \
    python3 -c "
import json
line = next(l for l in open('$tmp/daemon.out') if l.startswith('STATS '))
doc = json.loads(line[len('STATS '):])
assert doc['server']['sessions_opened'] == 6, doc
assert doc['server']['sessions_closed'] >= 1, doc
"
  check "daemon unlinks its socket on shutdown" test ! -e "$sock"
fi

# ---- TCP ephemeral port ----------------------------------------------------

if start_daemon --tcp 0; then
  port="$(sed -n 's/^READY tcp=//p' "$tmp/daemon.out" | head -1)"
  if [[ -z "$port" || "$port" -le 0 ]]; then
    echo "FAIL: no usable ephemeral port in READY line" >&2
    fails=$((fails + 1))
  else
    echo "ok: ephemeral port $port advertised"
    expect 0 "$soak" --tcp "$port" --sessions 2 --events 100 --threads 2 \
      --no-http-check
    check "tcp soak ok" grep -q '^SOAK ok' "$tmp/out"
  fi
  stop_daemon
fi

if [[ "$fails" -ne 0 ]]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all selin_ingestd CLI checks passed"
