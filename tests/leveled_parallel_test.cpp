// Parallel checkpoint replay for the leveled checker and the stats-feedback
// auto-tuner:
//
//   * verdict parity — sequential (inline checkpoints, sequential monitors)
//     vs parallel (async snapshot lanes, adaptive sharded monitors) replay
//     across checkpoint strides, on storm-shaped publish orders;
//   * rollback-storm determinism — repeated parallel runs produce the
//     identical verdict sequence (the TSan CI leg runs this test);
//   * eager checkpoint release on rollback — live-monitor accounting
//     through a counting wrapper object, plus checkpoint_count();
//   * AutoTuner monotonicity — each tick moves every knob at most one
//     bounded step toward the window's signal, applied only at window
//     boundaries, without changing any verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "test_util.hpp"

#include "selin/engine/auto_tuner.hpp"
#include "selin/parallel/task_lanes.hpp"

namespace selin {
namespace {

// Hand-rolled chain builder for deterministic view construction (the same
// shape views_test uses).
class ChainBuilder {
 public:
  explicit ChainBuilder(size_t n) : heads_(n, nullptr) {}

  const SetNode* announce(const OpDesc& op) {
    ProcId p = op.id.pid;
    nodes_.push_back(std::make_unique<SetNode>(SetNode{
        op, heads_[p], heads_[p] == nullptr ? 1u : heads_[p]->len + 1}));
    heads_[p] = nodes_.back().get();
    return heads_[p];
  }

  View snap() const { return View(heads_); }

 private:
  std::vector<const SetNode*> heads_;
  std::vector<std::unique_ptr<SetNode>> nodes_;
};

// A batch of λ-records together with a storm-shaped publish order: process
// 0's records are published promptly while every other process trails the
// announcement order by a few positions (its records stay unread in M for a
// while, the Lemma 8.1 slack), so stragglers land mid-history and force
// rollbacks while the number of simultaneously missing records — and hence
// the pending-invocation load on the membership frontier — stays bounded.
struct StormBatch {
  ChainBuilder chain{1};
  std::vector<LambdaRecord> records;   // in announcement order
  std::vector<size_t> publish_order;
};

StormBatch make_storm(ObjectKind kind, size_t procs, size_t ops,
                      uint64_t seed, size_t delay = 6) {
  StormBatch b;
  b.chain = ChainBuilder(procs);
  test::OpFactory f;
  Rng rng(seed);
  auto spec = make_spec(kind);
  auto state = spec->initial();
  std::vector<std::pair<size_t, size_t>> timed;  // (publish time, record)
  for (size_t i = 0; i < ops; ++i) {
    ProcId p = static_cast<ProcId>(i % procs);
    auto [m, arg] = random_op(kind, rng);
    OpDesc op = f.op(p, m, arg);
    b.chain.announce(op);
    b.records.push_back({op, state->step(m, arg), b.chain.snap()});
    timed.push_back({p == 0 ? i : i + delay + p, i});
  }
  std::stable_sort(timed.begin(), timed.end());
  for (const auto& [t, i] : timed) b.publish_order.push_back(i);
  return b;
}

TEST(LeveledParallel, VerdictParitySequentialVsParallelAcrossStrides) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    StormBatch storm = make_storm(ObjectKind::kQueue, 3, 36, seed);
    auto obj = make_linearizable_object(make_queue_spec());
    for (size_t stride : {size_t{1}, size_t{4}, size_t{16}}) {
      XBuilder seq_b, par_b;
      LeveledChecker seq(*obj, LeveledChecker::Options{stride, 1, 0});
      LeveledChecker par(
          *obj, LeveledChecker::Options{stride, engine::auto_threads(2), 2});
      for (size_t i : storm.publish_order) {
        size_t lvl_s = seq_b.add(&storm.records[i]);
        size_t lvl_p = par_b.add(&storm.records[i]);
        ASSERT_EQ(lvl_s, lvl_p);
        bool vs = seq.resync(seq_b, lvl_s);
        bool vp = par.resync(par_b, lvl_p);
        ASSERT_EQ(vs, vp) << "seed " << seed << " stride " << stride
                          << " record " << i;
        ASSERT_EQ(vs, obj->contains(seq_b.flatten()))
            << "seed " << seed << " stride " << stride;
      }
      EXPECT_GT(par.rollbacks(), 0u);
    }
  }
}

TEST(LeveledParallel, BatchedResyncMatchesPerRecordResync) {
  StormBatch storm = make_storm(ObjectKind::kQueue, 3, 36, 7);
  auto obj = make_linearizable_object(make_queue_spec());
  XBuilder ref_b, bat_b;
  LeveledChecker ref(*obj, LeveledChecker::Options{4, 0, 0});
  LeveledChecker bat(*obj, LeveledChecker::Options{4, 0, 2});
  const size_t group = 5;
  for (size_t at = 0; at < storm.publish_order.size(); at += group) {
    bool v_ref = true;
    std::vector<size_t> dirty;
    for (size_t j = at; j < std::min(at + group, storm.publish_order.size());
         ++j) {
      size_t i = storm.publish_order[j];
      v_ref = ref.resync(ref_b, ref_b.add(&storm.records[i]));
      dirty.push_back(bat_b.add(&storm.records[i]));
    }
    bool v_bat = bat.resync(bat_b, dirty);
    ASSERT_EQ(v_bat, v_ref) << "group at " << at;
  }
  // A batch of stragglers costs one restore, not one per record, and the
  // checker sees the storm's shape (per-record feeding never does).
  EXPECT_LT(bat.rollbacks(), ref.rollbacks());
  EXPECT_GT(bat.peak_storm_records(), 1u);
  EXPECT_EQ(ref.peak_storm_records(), 0u);
}

TEST(LeveledParallel, RollbackStormDeterminism) {
  // Two identical parallel runs and a sequential reference: verdict
  // sequences must be identical run over run (lanes and sharded monitors
  // may interleave however they like).  TSan covers the snapshot-lane and
  // shard handoffs when CI runs this test under -fsanitize=thread.
  StormBatch storm = make_storm(ObjectKind::kStack, 4, 48, 11);
  auto obj = make_linearizable_object(make_stack_spec());
  auto run = [&](const LeveledChecker::Options& opts) {
    XBuilder b;
    LeveledChecker checker(*obj, opts);
    std::vector<bool> verdicts;
    for (size_t i : storm.publish_order) {
      verdicts.push_back(checker.resync(b, b.add(&storm.records[i])));
    }
    return verdicts;
  };
  auto seq = run(LeveledChecker::Options{8, 1, 0});
  auto par1 = run(LeveledChecker::Options{8, engine::auto_threads(4), 4});
  auto par2 = run(LeveledChecker::Options{8, engine::auto_threads(4), 4});
  EXPECT_EQ(par1, seq);
  EXPECT_EQ(par2, seq);
}

// ---- eager checkpoint release ---------------------------------------------

// GenLinObject wrapper whose monitors count live instances, so tests can
// observe how many monitor clones (live frontier + checkpoints) a checker
// keeps alive at its peak.
class CountingMonitor final : public MembershipMonitor {
 public:
  CountingMonitor(std::unique_ptr<MembershipMonitor> inner,
                  std::shared_ptr<std::atomic<int>> live,
                  std::shared_ptr<std::atomic<int>> peak)
      : inner_(std::move(inner)), live_(std::move(live)),
        peak_(std::move(peak)) {
    int now = live_->fetch_add(1) + 1;
    int prev = peak_->load();
    while (prev < now && !peak_->compare_exchange_weak(prev, now)) {
    }
  }
  ~CountingMonitor() override { live_->fetch_sub(1); }

  void feed(const Event& e) override { inner_->feed(e); }
  bool ok() const override { return inner_->ok(); }
  std::unique_ptr<MembershipMonitor> clone() const override {
    return std::make_unique<CountingMonitor>(inner_->clone(), live_, peak_);
  }

 private:
  std::unique_ptr<MembershipMonitor> inner_;
  std::shared_ptr<std::atomic<int>> live_;
  std::shared_ptr<std::atomic<int>> peak_;
};

class CountingObject final : public GenLinObject {
 public:
  explicit CountingObject(std::unique_ptr<GenLinObject> base)
      : base_(std::move(base)),
        live_(std::make_shared<std::atomic<int>>(0)),
        peak_(std::make_shared<std::atomic<int>>(0)) {}

  const char* name() const override { return base_->name(); }
  std::unique_ptr<MembershipMonitor> monitor() const override {
    return std::make_unique<CountingMonitor>(base_->monitor(), live_, peak_);
  }
  std::unique_ptr<MembershipMonitor> monitor(size_t threads) const override {
    return std::make_unique<CountingMonitor>(base_->monitor(threads), live_,
                                             peak_);
  }

  int live() const { return live_->load(); }
  int peak() const { return peak_->load(); }
  void reset_peak() { peak_->store(live_->load()); }

 private:
  std::unique_ptr<GenLinObject> base_;
  std::shared_ptr<std::atomic<int>> live_;
  std::shared_ptr<std::atomic<int>> peak_;
};

TEST(LeveledParallel, RollbackReleasesCheckpointsEagerly) {
  // 60 prompt levels from process 0 plus one straggler from process 1 that
  // lands at level 20.  With stride 4 the checker holds 15 checkpoints; the
  // rollback must keep exactly the 5 below the straggler and release the 10
  // above *before* replaying, not leave them to be overwritten by later
  // feeds.  The counting wrapper bounds the live-monitor peak accordingly.
  test::OpFactory f;
  ChainBuilder cb(2);
  auto spec = make_counter_spec();
  auto state = spec->initial();
  std::vector<LambdaRecord> records;
  LambdaRecord straggler;
  for (int i = 0; i < 60; ++i) {
    if (i == 20) {
      OpDesc late = f.op(1, Method::kInc);
      cb.announce(late);
      straggler = LambdaRecord{late, state->step(Method::kInc, kNoArg),
                               cb.snap()};
    }
    OpDesc op = f.op(0, Method::kInc);
    cb.announce(op);
    records.push_back({op, state->step(Method::kInc, kNoArg), cb.snap()});
  }

  CountingObject obj(make_linearizable_object(make_counter_spec()));
  XBuilder b;
  LeveledChecker checker(obj, LeveledChecker::Options{4, 0, 0});
  for (LambdaRecord& r : records) {
    ASSERT_TRUE(checker.resync(b, b.add(&r)));
  }
  ASSERT_EQ(checker.levels_fed(), 60u);
  ASSERT_EQ(checker.checkpoint_count(), 15u);
  ASSERT_EQ(obj.live(), 16);  // live monitor + 15 checkpoints

  obj.reset_peak();
  ASSERT_TRUE(checker.resync(b, b.add(&straggler)));
  EXPECT_EQ(checker.levels_fed(), 61u);
  EXPECT_EQ(checker.checkpoint_count(), 15u);  // 61 / 4, rebuilt on replay
  EXPECT_EQ(obj.live(), 16);
  // Peak live monitors during the rollback+replay: the live monitor, the 5
  // surviving checkpoints, the 10 rebuilt ones, and one transient restore
  // clone.  Without eager release the 10 stale clones double up (>= 26).
  EXPECT_LE(obj.peak(), 17);
  EXPECT_GT(checker.rollbacks(), 0u);
}

// ---- auto-tuner -----------------------------------------------------------

TEST(LeveledParallel, StripeOptionPreservesVerdictsAndRollbackCounts) {
  StormBatch storm = make_storm(ObjectKind::kQueue, 3, 36, 5);
  auto obj = make_linearizable_object(make_queue_spec());
  auto run = [&](size_t stripe) {
    XBuilder b;
    LeveledChecker checker(
        *obj, LeveledChecker::Options{4, engine::auto_threads(2), 2, stripe});
    std::vector<bool> verdicts;
    for (size_t i : storm.publish_order)
      verdicts.push_back(checker.resync(b, b.add(&storm.records[i])));
    return std::pair{verdicts, checker.rollbacks()};
  };
  auto [v_default, r_default] = run(LeveledChecker::kStripe);
  auto [v_narrow, r_narrow] = run(2);
  auto [v_wide, r_wide] = run(8);
  EXPECT_EQ(v_narrow, v_default);
  EXPECT_EQ(v_wide, v_default);
  // Stripe width changes snapshot placement, not what gets replayed.
  EXPECT_EQ(r_narrow, r_default);
  EXPECT_EQ(r_wide, r_default);
  // stripe < 2 falls back to the default width rather than degenerating.
  auto [v_degenerate, r_degenerate] = run(1);
  EXPECT_EQ(v_degenerate, v_default);
  EXPECT_EQ(r_degenerate, r_default);
}

TEST(LeveledParallel, RecommendedPriorsFollowObservedRollbackShape) {
  auto obj = make_linearizable_object(make_queue_spec());

  // Untouched checker: nothing rolled back, so the recommendation is the
  // aggressive profile — long stride, default stripe.
  LeveledChecker fresh(*obj, LeveledChecker::Options{4, 1, 0});
  engine::TunerPriors calm = fresh.recommend_priors();
  EXPECT_EQ(calm.stride, 32u);
  EXPECT_EQ(calm.stripe, LeveledChecker::kStripe);
  EXPECT_FALSE(calm.any_engine());  // engine knobs stay unset

  // A storm-shaped run: rollbacks happened, so stride follows the observed
  // mean replay depth (a power of two in [4, 64]) and a deep storm backlog
  // narrows the stripe.
  StormBatch storm = make_storm(ObjectKind::kQueue, 4, 48, 9, 10);
  XBuilder b;
  LeveledChecker stormy(*obj, LeveledChecker::Options{4, 0, 2});
  std::vector<size_t> dirty;
  const size_t group = 6;
  for (size_t at = 0; at < storm.publish_order.size(); at += group) {
    dirty.clear();
    for (size_t j = at; j < std::min(at + group, storm.publish_order.size());
         ++j)
      dirty.push_back(b.add(&storm.records[storm.publish_order[j]]));
    stormy.resync(b, dirty);
  }
  ASSERT_GT(stormy.rollbacks(), 0u);
  engine::TunerPriors seeded = stormy.recommend_priors();
  EXPECT_GE(seeded.stride, 4u);
  EXPECT_LE(seeded.stride, 64u);
  EXPECT_EQ(seeded.stride & (seeded.stride - 1), 0u) << seeded.stride;
  if (stormy.peak_storm_records() > LeveledChecker::kStripe) {
    EXPECT_EQ(seeded.stripe, 2u);
  } else {
    EXPECT_EQ(seeded.stripe, LeveledChecker::kStripe);
  }
  // Recommendations are a pure function of the counters: a second call
  // returns the same seeds.
  engine::TunerPriors again = stormy.recommend_priors();
  EXPECT_EQ(again.stride, seeded.stride);
  EXPECT_EQ(again.stripe, seeded.stripe);
}

TEST(AutoTuner, DupHeavyParallelWindowsRaiseEngageMonotonically) {
  engine::AutoTuner t(384, 96, 4, 8);
  engine::TunerWindow w;
  w.peak_width = 1024;
  w.rounds_sequential = 2;
  w.rounds_parallel = 30;
  w.dedup_probes = 1000;
  w.dedup_hits = 800;  // 80% duplicates: parallel rounds amortize poorly
  size_t prev = t.engage();
  for (int i = 0; i < 40; ++i) {
    t.tick(w);
    EXPECT_GE(t.engage(), prev);                      // monotone toward signal
    EXPECT_LE(t.engage(), prev + prev / 4);           // one bounded step
    EXPECT_EQ(t.retreat(), std::max<size_t>(t.engage() / 4, 1));
    prev = t.engage();
  }
  EXPECT_EQ(t.engage(), engine::AutoTuner::kMaxEngage);  // saturates, stays
}

TEST(AutoTuner, DupLightNearMissWindowsLowerEngageMonotonically) {
  engine::AutoTuner t(384, 96, 1, 8);
  engine::TunerWindow w;
  w.rounds_sequential = 32;
  w.dedup_probes = 1000;
  w.dedup_hits = 100;  // cheap dedup, frontier hovers just under engage
  size_t prev = t.engage();
  for (int i = 0; i < 40; ++i) {
    w.peak_width = t.engage() - 1;  // persistent near miss
    t.tick(w);
    EXPECT_LE(t.engage(), prev);
    EXPECT_GE(t.engage() + prev / 5 + 1, prev);       // one bounded step
    prev = t.engage();
  }
  EXPECT_EQ(t.engage(), engine::AutoTuner::kMinEngage);
}

TEST(AutoTuner, ThrashingWidensTheHysteresisGap) {
  engine::AutoTuner t(384, 96, 2, 8);
  engine::TunerWindow w;
  w.peak_width = 400;
  w.rounds_sequential = 16;
  w.rounds_parallel = 16;
  w.mode_switches = 6;  // flipping representations every few rounds
  size_t gap_before = t.engage() - t.retreat();
  t.tick(w);
  EXPECT_EQ(t.engage(), 768u);  // doubled
  EXPECT_GT(t.engage() - t.retreat(), gap_before);
}

TEST(AutoTuner, LaneTargetFollowsPeakWidthWithoutOscillating) {
  engine::AutoTuner t(384, 96, 2, 8);
  engine::TunerWindow wide;
  wide.peak_width = 8 * engine::AutoTuner::kWidthPerLane;
  wide.rounds_sequential = 8;
  wide.rounds_parallel = 24;
  wide.dedup_probes = 100;
  wide.dedup_hits = 10;
  t.tick(wide);
  EXPECT_EQ(t.lanes(), 4u);  // doubling step toward 8
  t.tick(wide);
  EXPECT_EQ(t.lanes(), 8u);
  t.tick(wide);
  EXPECT_EQ(t.lanes(), 8u);  // at target: stable, no oscillation

  engine::TunerWindow narrow;
  narrow.peak_width = 64;
  narrow.rounds_sequential = 32;
  narrow.dedup_probes = 100;
  narrow.dedup_hits = 10;
  t.tick(narrow);
  EXPECT_EQ(t.lanes(), 7u);  // shrink is gentle: one lane per idle window
  engine::TunerWindow narrow_busy = narrow;
  narrow_busy.rounds_parallel = 4;  // pool still busy: no shrink
  t.tick(narrow_busy);
  EXPECT_EQ(t.lanes(), 7u);
}

TEST(AutoTuner, EngineAppliesTicksOnlyAtWindowBoundariesWithVerdictParity) {
  // A tuned monitor must produce exactly the sequential verdicts, and its
  // effective thresholds may move only every AutoTuner::kWindow response
  // rounds — never mid-window, so a feed can't see a knob oscillate.
  for (ObjectKind kind : {ObjectKind::kQueue, ObjectKind::kCounter}) {
    History h = test::random_linearizable_history(kind, 5, 120, 23);
    auto spec_ref = make_spec(kind);
    auto spec_tuned = make_spec(kind);
    LinMonitor ref(*spec_ref, 1 << 18, 1);
    LinMonitor tuned(*spec_tuned, 1 << 18, engine::auto_tuned_threads(2));
    size_t changes = 0;
    uint64_t responses = 0;
    size_t prev_engage = tuned.stats().engage_width;
    size_t prev_lanes = tuned.stats().lanes;
    for (const Event& e : h) {
      ref.feed(e);
      tuned.feed(e);
      ASSERT_EQ(tuned.ok(), ref.ok());
      if (e.is_res()) ++responses;
      engine::EngineStats s = tuned.stats();
      if (s.engage_width != prev_engage || s.lanes != prev_lanes) {
        ++changes;
        EXPECT_EQ(responses % engine::AutoTuner::kWindow, 0u)
            << "knob moved mid-window";
        prev_engage = s.engage_width;
        prev_lanes = s.lanes;
      }
    }
    EXPECT_LE(changes, responses / engine::AutoTuner::kWindow);
  }
}

TEST(AutoTuner, NarrowTunedWorkloadShedsIdleLanes) {
  // A persistently narrow frontier cannot feed two lanes; the tuner should
  // walk the lane count down to one and keep the engage threshold where it
  // started (no thrash, no parallel rounds, dup-heavy counter workload).
  History h = test::random_linearizable_history(ObjectKind::kCounter, 3, 200,
                                                31);
  auto spec = make_spec(ObjectKind::kCounter);
  LinMonitor tuned(*spec, 1 << 18, engine::auto_tuned_threads(2));
  ASSERT_EQ(tuned.stats().lanes, 2u);
  std::vector<size_t> lane_history;
  for (const Event& e : h) {
    tuned.feed(e);
    lane_history.push_back(tuned.stats().lanes);
  }
  EXPECT_EQ(lane_history.back(), 1u);
  // Monotone descent: once shed, a lane never comes back on this workload.
  for (size_t i = 1; i < lane_history.size(); ++i) {
    EXPECT_LE(lane_history[i], lane_history[i - 1]);
  }
  EXPECT_GE(tuned.stats().tuner_updates, 1u);
}

// ---- task lanes -----------------------------------------------------------

TEST(TaskLanes, ExecutesPostedTasksAndWaitsIdle) {
  parallel::TaskLanes lanes(3);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    lanes.post([&sum, i] { sum.fetch_add(i); });
  }
  lanes.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(lanes.executed(), 100u);
}

TEST(TaskLanes, RethrowsTaskExceptionAtWaitIdle) {
  parallel::TaskLanes lanes(2);
  lanes.post([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(lanes.wait_idle(), std::runtime_error);
  lanes.post([] {});  // lanes stay usable after a poisoned window
  lanes.wait_idle();
}

TEST(TaskLanes, ZeroLanesRunInline) {
  parallel::TaskLanes lanes(0);
  int hits = 0;
  lanes.post([&hits] { ++hits; });
  EXPECT_EQ(hits, 1);
  lanes.wait_idle();
}

}  // namespace
}  // namespace selin
