// History text format: parsing, serialization, round-trips, error reporting.
#include <gtest/gtest.h>

#include "selin/io/history_io.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

TEST(HistoryIo, ParsesBasicHistory) {
  History h = parse_history_string(
      "# a queue trace\n"
      "inv 0 0 Enqueue 5\n"
      "res 0 0 Enqueue 5 true\n"
      "inv 1 0 Dequeue\n"
      "res 1 0 Dequeue 5\n");
  ASSERT_EQ(h.size(), 4u);
  EXPECT_TRUE(h[0].is_inv());
  EXPECT_EQ(h[0].op.method, Method::kEnqueue);
  EXPECT_EQ(h[0].op.arg, 5);
  EXPECT_EQ(h[3].result, 5);
}

TEST(HistoryIo, SymbolicValues) {
  History h = parse_history_string(
      "inv 0 0 Dequeue\n"
      "res 0 0 Dequeue empty\n"
      "inv 0 1 Write 3\n"
      "res 0 1 Write 3 ok\n");
  EXPECT_EQ(h[1].result, kEmpty);
  EXPECT_EQ(h[3].result, kOk);
}

TEST(HistoryIo, CommentsAndBlankLines) {
  History h = parse_history_string(
      "\n# nothing\n  \n"
      "inv 2 7 Inc   # trailing comment\n"
      "res 2 7 Inc 1\n");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].op.id.pid, 2u);
  EXPECT_EQ(h[0].op.id.seq, 7u);
}

TEST(HistoryIo, RoundTripsRandomHistories) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (ObjectKind kind : {ObjectKind::kQueue, ObjectKind::kStack,
                            ObjectKind::kRegister, ObjectKind::kCounter}) {
      History h = test::random_linearizable_history(kind, 3, 12, seed);
      History back = parse_history_string(history_to_string(h));
      ASSERT_EQ(back.size(), h.size());
      for (size_t i = 0; i < h.size(); ++i) {
        EXPECT_TRUE(back[i] == h[i]) << i;
      }
    }
  }
}

TEST(HistoryIo, ErrorsCarryLineNumbers) {
  try {
    parse_history_string("inv 0 0 Enqueue 1\nbogus line here\n");
    FAIL() << "expected parse error";
  } catch (const HistoryParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(HistoryIo, RejectsBadMethod) {
  EXPECT_THROW(parse_history_string("inv 0 0 Frobnicate 1\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsMissingArgument) {
  EXPECT_THROW(parse_history_string("inv 0 0 Enqueue\n"), HistoryParseError);
}

TEST(HistoryIo, RejectsTrailingTokens) {
  EXPECT_THROW(parse_history_string("inv 0 0 Dequeue 5 extra\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsResponseWithoutResult) {
  EXPECT_THROW(parse_history_string("inv 0 0 Dequeue\nres 0 0 Dequeue\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsMalformedHistory) {
  // Well-formedness is validated after parsing: response with no invocation.
  EXPECT_THROW(parse_history_string("res 0 0 Dequeue empty\n"),
               HistoryParseError);
}

TEST(HistoryIo, CertificateExportImportAudit) {
  // End-to-end forensic flow: run a faulty impl under self-enforcement,
  // export the certificate as text, re-import, and convict offline.
  auto impl = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);
  (void)se.apply(0, Method::kDequeue);  // the lie
  std::string exported = history_to_string(se.certificate(0));
  History reimported = parse_history_string(exported);
  EXPECT_FALSE(obj->contains(reimported));
}

}  // namespace
}  // namespace selin
