// History text format: parsing, serialization, round-trips, error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "selin/io/history_io.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

TEST(HistoryIo, ParsesBasicHistory) {
  History h = parse_history_string(
      "# a queue trace\n"
      "inv 0 0 Enqueue 5\n"
      "res 0 0 Enqueue 5 true\n"
      "inv 1 0 Dequeue\n"
      "res 1 0 Dequeue 5\n");
  ASSERT_EQ(h.size(), 4u);
  EXPECT_TRUE(h[0].is_inv());
  EXPECT_EQ(h[0].op.method, Method::kEnqueue);
  EXPECT_EQ(h[0].op.arg, 5);
  EXPECT_EQ(h[3].result, 5);
}

TEST(HistoryIo, SymbolicValues) {
  History h = parse_history_string(
      "inv 0 0 Dequeue\n"
      "res 0 0 Dequeue empty\n"
      "inv 0 1 Write 3\n"
      "res 0 1 Write 3 ok\n");
  EXPECT_EQ(h[1].result, kEmpty);
  EXPECT_EQ(h[3].result, kOk);
}

TEST(HistoryIo, CommentsAndBlankLines) {
  History h = parse_history_string(
      "\n# nothing\n  \n"
      "inv 2 7 Inc   # trailing comment\n"
      "res 2 7 Inc 1\n");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].op.id.pid, 2u);
  EXPECT_EQ(h[0].op.id.seq, 7u);
}

TEST(HistoryIo, RoundTripsRandomHistories) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (ObjectKind kind : {ObjectKind::kQueue, ObjectKind::kStack,
                            ObjectKind::kRegister, ObjectKind::kCounter}) {
      History h = test::random_linearizable_history(kind, 3, 12, seed);
      History back = parse_history_string(history_to_string(h));
      ASSERT_EQ(back.size(), h.size());
      for (size_t i = 0; i < h.size(); ++i) {
        EXPECT_TRUE(back[i] == h[i]) << i;
      }
    }
  }
}

TEST(HistoryIo, ErrorsCarryLineNumbers) {
  try {
    parse_history_string("inv 0 0 Enqueue 1\nbogus line here\n");
    FAIL() << "expected parse error";
  } catch (const HistoryParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(HistoryIo, RejectsBadMethod) {
  EXPECT_THROW(parse_history_string("inv 0 0 Frobnicate 1\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsMissingArgument) {
  EXPECT_THROW(parse_history_string("inv 0 0 Enqueue\n"), HistoryParseError);
}

TEST(HistoryIo, RejectsTrailingTokens) {
  EXPECT_THROW(parse_history_string("inv 0 0 Dequeue 5 extra\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsResponseWithoutResult) {
  EXPECT_THROW(parse_history_string("inv 0 0 Dequeue\nres 0 0 Dequeue\n"),
               HistoryParseError);
}

TEST(HistoryIo, RejectsMalformedHistory) {
  // Well-formedness is validated after parsing: response with no invocation.
  EXPECT_THROW(parse_history_string("res 0 0 Dequeue empty\n"),
               HistoryParseError);
}

TEST(HistoryStream, ReadsEventsIncrementally) {
  std::istringstream in(
      "# trace\n"
      "inv 0 0 Enqueue 5\n"
      "\n"
      "res 0 0 Enqueue 5 true\n"
      "inv 1 0 Dequeue\n"
      "res 1 0 Dequeue 5\n");
  HistoryStreamReader r(in);
  std::optional<Event> e = r.next();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->is_inv());
  EXPECT_EQ(r.line(), 2u);  // comment line consumed, event on line 2
  size_t n = 1;
  while ((e = r.next()).has_value()) ++n;
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(r.events(), 4u);
  EXPECT_FALSE(r.next().has_value());  // sticky EOF
}

TEST(HistoryStream, ReadBatchChunksTheStream) {
  History h = test::random_linearizable_history(ObjectKind::kQueue, 3, 20, 9);
  std::istringstream in(history_to_string(h));
  HistoryStreamReader r(in);
  std::vector<Event> got;
  size_t n;
  while ((n = r.read_batch(got, 7)) > 0) {
    EXPECT_LE(n, 7u);
  }
  ASSERT_EQ(got.size(), h.size());
  for (size_t i = 0; i < h.size(); ++i) EXPECT_TRUE(got[i] == h[i]) << i;
}

TEST(HistoryStream, WellFormednessViolationsSurfaceAtTheLine) {
  // Response without a pending invocation: caught at line 1, not at EOF.
  {
    std::istringstream in("res 0 0 Dequeue empty\n");
    HistoryStreamReader r(in);
    try {
      r.next();
      FAIL() << "expected well-formedness error";
    } catch (const HistoryParseError& e) {
      EXPECT_EQ(e.line(), 1u);
    }
  }
  // Overlapping invocations by one process: caught at the second inv.
  {
    std::istringstream in("inv 0 0 Dequeue\ninv 0 1 Dequeue\n");
    HistoryStreamReader r(in);
    EXPECT_TRUE(r.next().has_value());
    EXPECT_THROW(r.next(), HistoryParseError);
  }
  // Duplicate op id (same pid.seq re-invoked after completing).
  {
    std::istringstream in(
        "inv 0 0 Dequeue\nres 0 0 Dequeue empty\ninv 0 0 Dequeue\n");
    HistoryStreamReader r(in);
    EXPECT_TRUE(r.next().has_value());
    EXPECT_TRUE(r.next().has_value());
    EXPECT_THROW(r.next(), HistoryParseError);
  }
  // Response not matching the pending invocation's descriptor.
  {
    std::istringstream in("inv 0 0 Enqueue 5\nres 0 0 Enqueue 6 true\n");
    HistoryStreamReader r(in);
    EXPECT_TRUE(r.next().has_value());
    EXPECT_THROW(r.next(), HistoryParseError);
  }
  // Out-of-order per-process seqs are legal; re-using one is not — the
  // duplicate check must catch both sides of the contiguous prefix.
  {
    std::istringstream in(
        "inv 0 5 Dequeue\nres 0 5 Dequeue empty\n"
        "inv 0 0 Dequeue\nres 0 0 Dequeue empty\n"
        "inv 0 5 Dequeue\n");
    HistoryStreamReader r(in);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.next().has_value()) << i;
    EXPECT_THROW(r.next(), HistoryParseError);
  }
  {
    std::istringstream in(
        "inv 0 0 Dequeue\nres 0 0 Dequeue empty\ninv 0 1 Dequeue\n"
        "res 0 1 Dequeue empty\ninv 0 0 Dequeue\n");
    HistoryStreamReader r(in);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.next().has_value()) << i;
    EXPECT_THROW(r.next(), HistoryParseError);
  }
}

TEST(HistoryStream, AgreesWithParseHistoryOnRandomTraces) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    History h =
        test::random_linearizable_history(ObjectKind::kStack, 3, 15, seed);
    std::string text = history_to_string(h);
    History parsed = parse_history_string(text);
    std::istringstream in(text);
    HistoryStreamReader r(in);
    History streamed;
    while (auto e = r.next()) streamed.push_back(*e);
    ASSERT_EQ(streamed.size(), parsed.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_TRUE(streamed[i] == parsed[i]) << i;
    }
  }
}

TEST(HistoryIo, CertificateExportImportAudit) {
  // End-to-end forensic flow: run a faulty impl under self-enforcement,
  // export the certificate as text, re-import, and convict offline.
  auto impl = make_thm51_queue(0);
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(2, *impl, *obj);
  (void)se.apply(0, Method::kDequeue);  // the lie
  std::string exported = history_to_string(se.certificate(0));
  History reimported = parse_history_string(exported);
  EXPECT_FALSE(obj->contains(reimported));
}

}  // namespace
}  // namespace selin
