// Randomized stress for the run-length op-set representation
// (util/interval_set.hpp) and the engines built on it, biased toward the
// shapes the directed tests cannot enumerate:
//
//   * hole-heavy key sets — runs shredded by interior erases and re-fused by
//     range inserts, so every tail split/merge/watermark-promotion path runs
//     thousands of times per seed;
//   * ragged-pending histories — straggler operations forced linearized out
//     of process order, so the live engines' op sets grow by random
//     mid-run insertion instead of the friendly append-at-watermark path.
//
// Engine rounds assert full mode parity: verdict, frontier size AND frontier
// digest (XOR of mixed config fingerprints) must be bit-identical between the
// sequential engine, the parallel engine, and every batched feed — on
// accepting and corrupted histories alike.
//
// Round counts scale with the SELIN_FUZZ_ROUNDS environment variable
// (default 1): plain ctest gets a fast smoke, the CI fuzz leg raises it to
// fill its ~5-minute budget under the sanitizers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "selin/util/interval_set.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

/// SELIN_FUZZ_ROUNDS multiplier (>= 1); each "round" is one fresh seed.
size_t fuzz_rounds() {
  if (const char* s = std::getenv("SELIN_FUZZ_ROUNDS")) {
    long v = std::atol(s);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

// Structure-independent hash stand-ins (the engines use fph::* Zobrist
// element hashes; any xor-combinable 64-bit mix exercises the same
// incremental-maintenance contract).
uint64_t fz_id_hash(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 29;
  return k;
}
uint64_t fz_kv_hash(uint64_t k, Value v) {
  return fz_id_hash(k * 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(v));
}

void check_canonical(const IntervalSet& s) {
  uint64_t prev_end = 0;
  bool first = true;
  size_t total = 0;
  s.for_each_run([&](const IdRun& r) {
    ASSERT_GT(r.len, 0u);
    if (!first) {
      // Sorted, disjoint, non-adjacent: a gap of at least one key.
      ASSERT_GT(r.start, prev_end) << "runs adjacent or out of order";
    }
    first = false;
    prev_end = r.start + r.len;
    total += r.len;
  });
  ASSERT_EQ(total, s.size());
}

// ---- hole-heavy structure fuzz ---------------------------------------------

// Operation mix biased to shred: point erases land inside existing runs 2x
// as often as at their edges, range inserts re-fuse holes, and a periodic
// full drain restarts the watermark from a random base.
TEST(IntervalFuzzStructure, HoleHeavyDifferential) {
  const size_t rounds = 4 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = 0xF0F0 + round;
    Rng rng(seed);
    const uint64_t domain = round % 2 == 0 ? 128 : 4096;
    HashedIntervalSet<fz_id_hash> hs;
    std::set<uint64_t> oracle;
    uint64_t xr = 0;  // independently maintained xor of element hashes

    for (size_t step = 0; step < 6000; ++step) {
      uint64_t roll = rng.below(10);
      if (roll < 4) {
        uint64_t k = rng.below(domain);
        ASSERT_EQ(hs.insert(k), oracle.insert(k).second);
      } else if (roll < 7 && !oracle.empty()) {
        // Erase a present key: 2/3 of the time an interior key of some run
        // (max shred), else a uniformly random present key.
        uint64_t k;
        if (rng.chance(2, 3)) {
          size_t i = rng.below(oracle.size());
          auto it = oracle.begin();
          std::advance(it, i);
          k = *it;
        } else {
          k = hs.nth(rng.below(hs.size()));
        }
        ASSERT_TRUE(hs.erase(k));
        oracle.erase(k);
      } else if (roll < 8) {
        // Disjoint range insert: find a gap and fill (part of) it.
        uint64_t s = rng.below(domain);
        uint64_t len = 0;
        while (s + len < domain && len < 1 + rng.below(12) &&
               !oracle.count(s + len)) {
          ++len;
        }
        if (len > 0 && !oracle.count(s)) {
          hs.insert_range(s, len);
          for (uint64_t i = 0; i < len; ++i) oracle.insert(s + i);
        }
      } else if (roll < 9) {
        uint64_t k = rng.below(domain);
        ASSERT_EQ(hs.contains(k), oracle.count(k) == 1) << "key " << k;
      } else if (rng.chance(1, 40)) {
        hs.clear();
        oracle.clear();
      }
      if (step % 512 == 0) {
        check_canonical(hs.ids());
        ASSERT_EQ(hs.hash(), hs.rehash()) << "seed " << seed;
        ASSERT_EQ(hs.size(), oracle.size());
        // Full membership + ascending iteration agreement.
        auto it = oracle.begin();
        hs.for_each([&](uint64_t k) {
          ASSERT_NE(it, oracle.end());
          EXPECT_EQ(k, *it);
          ++it;
        });
        ASSERT_EQ(it, oracle.end());
      }
    }
    // Final exact hash: xor over the oracle.
    xr = 0;
    for (uint64_t k : oracle) xr ^= fz_id_hash(k);
    ASSERT_EQ(hs.hash(), xr) << "seed " << seed;
  }
}

TEST(IntervalFuzzStructure, RaggedValueRunsDifferential) {
  const size_t rounds = 4 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = 0xABCD + round;
    Rng rng(seed);
    const uint64_t domain = 512;
    ValueRunSet<fz_kv_hash> vs;
    std::map<uint64_t, Value> oracle;

    for (size_t step = 0; step < 6000; ++step) {
      uint64_t roll = rng.below(10);
      uint64_t k = rng.below(domain);
      // Few distinct values, so adjacent-equal merges happen constantly and
      // a later different-valued add splits nothing (adds stay disjoint).
      Value v = static_cast<Value>(1 + rng.below(3));
      if (roll < 4) {
        if (!oracle.count(k)) {
          vs.add(k, v);
          oracle[k] = v;
        }
      } else if (roll < 6 && !oracle.empty()) {
        auto it = oracle.begin();
        std::advance(it, rng.below(oracle.size()));
        ASSERT_TRUE(vs.remove(it->first));
        oracle.erase(it);
      } else if (roll < 8 && !oracle.empty()) {
        // Fused remove-if-equals: wrong expectation must not mutate.
        auto it = oracle.begin();
        std::advance(it, rng.below(oracle.size()));
        Value expect = rng.chance(1, 2) ? it->second : it->second + 99;
        bool removed = vs.remove_if_equals(it->first, expect);
        ASSERT_EQ(removed, expect == it->second);
        if (removed) oracle.erase(it);
      } else {
        const Value* found = vs.find(k);
        auto it = oracle.find(k);
        ASSERT_EQ(found != nullptr, it != oracle.end());
        if (found != nullptr) ASSERT_EQ(*found, it->second);
      }
      if (step % 512 == 0) {
        ASSERT_EQ(vs.hash(), vs.rehash()) << "seed " << seed;
        ASSERT_EQ(vs.size(), oracle.size());
        auto it = oracle.begin();
        vs.for_each([&](uint64_t kk, Value vv) {
          ASSERT_NE(it, oracle.end());
          EXPECT_EQ(kk, it->first);
          EXPECT_EQ(vv, it->second);
          ++it;
        });
        ASSERT_EQ(it, oracle.end());
        // Canonical maximality: adjacent runs never share a value.
        uint64_t prev_end = 0;
        Value prev_v = 0;
        bool first = true;
        vs.for_each_run([&](const ValueRun& r) {
          if (!first && r.start == prev_end) {
            EXPECT_NE(r.v, prev_v) << "unmerged equal-valued adjacent runs";
          }
          first = false;
          prev_end = r.start + r.len;
          prev_v = r.v;
        });
      }
    }
  }
}

// ---- ragged-pending engine fuzz --------------------------------------------

// Straggler enqueues whose responses never arrive, forced linearized by
// observing dequeues in *random* order within a sliding window.  All
// stragglers share seq 0, so their seq-major keys are the contiguous range
// [0, w) — but random forcing order inserts them into `linearized` in a
// shuffled order, splitting and re-fusing tail runs in the live engine.  The
// window bounds simultaneously-open enqueues (an unbounded cohort hands the
// closure w! orders).
History make_ragged_straggler_history(size_t w, size_t window, Rng& rng) {
  History h;
  const Value base = 500;
  const ProcId drain = static_cast<ProcId>(w);
  uint32_t dseq = 0;
  std::vector<ProcId> open;
  size_t next = 0;
  while (next < w || !open.empty()) {
    if (next < w && open.size() < window &&
        (open.empty() || rng.chance(2, 3))) {
      auto p = static_cast<ProcId>(next++);
      h.push_back(Event::inv(OpDesc{OpId{p, 0}, Method::kEnqueue,
                                    base + static_cast<Value>(p)}));
      open.push_back(p);
    } else {
      size_t i = rng.below(open.size());
      ProcId p = open[i];
      open.erase(open.begin() + static_cast<ptrdiff_t>(i));
      OpDesc d{OpId{drain, dseq++}, Method::kDequeue};
      h.push_back(Event::inv(d));
      h.push_back(Event::res(d, base + static_cast<Value>(p)));
    }
  }
  return h;
}

/// Feeds one event (or batch), absorbing CheckerOverflow: overflow is a
/// legitimate fuzz outcome (the membership problem is NP-hard), and the
/// overflow point itself must be mode-independent.
template <typename Monitor>
bool feed_guarded(Monitor& m, std::span<const Event> events) {
  try {
    if (events.size() == 1) {
      m.feed(events[0]);
    } else {
      m.feed_batch(events);
    }
    return false;
  } catch (const CheckerOverflow&) {
    return true;
  }
}

/// Per-event verdict/frontier/digest parity between a sequential reference
/// monitor and the parallel engine, plus chunked feed_batch parity at every
/// boundary — including identical overflow points and sticky poisoning.
template <typename Monitor, typename Make>
void expect_fuzz_parity(Make make, const History& h, uint64_t seed) {
  Monitor ref = make(size_t{1});
  Monitor par = make(engine::auto_threads(2));
  for (size_t i = 0; i < h.size(); ++i) {
    std::span<const Event> e(h.data() + i, 1);
    bool ovf_ref = feed_guarded(ref, e);
    bool ovf_par = feed_guarded(par, e);
    ASSERT_EQ(ovf_ref, ovf_par) << "seed " << seed << " event " << i;
    ASSERT_EQ(ref.overflowed(), par.overflowed())
        << "seed " << seed << " event " << i;
    ASSERT_EQ(ref.ok(), par.ok()) << "seed " << seed << " event " << i;
    ASSERT_EQ(ref.frontier_size(), par.frontier_size())
        << "seed " << seed << " event " << i;
    ASSERT_EQ(ref.frontier_digest(), par.frontier_digest())
        << "seed " << seed << " event " << i;
  }
  for (size_t chunk : {size_t{7}, size_t{64}}) {
    Monitor ref2 = make(size_t{1});
    Monitor batched = make(size_t{1});
    for (size_t i = 0; i < h.size(); i += chunk) {
      size_t n = std::min(chunk, h.size() - i);
      bool ovf_b = feed_guarded(batched,
                                std::span<const Event>(h.data() + i, n));
      bool ovf_r = false;
      for (size_t j = 0; j < n; ++j) {
        ovf_r |= feed_guarded(ref2, std::span<const Event>(h.data() + i + j, 1));
      }
      ASSERT_EQ(ovf_r, ovf_b)
          << "seed " << seed << " chunk " << chunk << " at " << i;
      ASSERT_EQ(ref2.overflowed(), batched.overflowed())
          << "seed " << seed << " chunk " << chunk << " at " << i;
      ASSERT_EQ(ref2.ok(), batched.ok())
          << "seed " << seed << " chunk " << chunk << " at " << i;
      ASSERT_EQ(ref2.frontier_digest(), batched.frontier_digest())
          << "seed " << seed << " chunk " << chunk << " at " << i;
    }
  }
}

TEST(IntervalFuzzEngine, RaggedStragglerParity) {
  auto spec = make_queue_spec();
  const size_t rounds = 3 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = 0xBEEF + round;
    Rng rng(seed);
    History h = make_ragged_straggler_history(24, 3, rng);
    if (round % 3 == 2) test::corrupt_response(h, seed);
    auto make = [&](size_t threads) {
      return LinMonitor(*spec, 1 << 18, threads);
    };
    expect_fuzz_parity<LinMonitor>(make, h, seed);
  }
}

TEST(IntervalFuzzEngine, RandomOverlapParity) {
  const ObjectKind kinds[] = {ObjectKind::kQueue, ObjectKind::kSet,
                              ObjectKind::kRegister};
  const size_t rounds = 2 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    for (ObjectKind kind : kinds) {
      const uint64_t seed = 0x5EED + round * 7 + static_cast<uint64_t>(kind);
      History h = test::random_linearizable_history(kind, 6, 60, seed);
      if (round % 2 == 1) test::corrupt_response(h, seed);
      auto spec = make_spec(kind);
      auto make = [&](size_t threads) {
        return LinMonitor(*spec, 1 << 18, threads);
      };
      expect_fuzz_parity<LinMonitor>(make, h, seed);
    }
  }
}

TEST(IntervalFuzzEngine, WriteSnapshotRaggedParity) {
  auto spec = make_write_snapshot_interval_spec();
  const size_t rounds = 3 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = 0xD00D + round;
    // n = 5 caps the concurrency window: the closure's speculative
    // machine-respond move forks per (entry mask, assign point), so wider
    // random windows overflow rather than fuzz.
    History h = test::random_write_snapshot_history(5, seed, round % 3 == 0);
    auto make = [&](size_t threads) {
      return IntervalLinMonitor(*spec, 1 << 18, threads);
    };
    expect_fuzz_parity<IntervalLinMonitor>(make, h, seed);
  }
}

TEST(IntervalFuzzEngine, ExchangerRaggedParity) {
  auto spec = make_exchanger_spec();
  const size_t rounds = 3 * fuzz_rounds();
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = 0xCAFE + round;
    History h = test::random_exchanger_history(5, 40, seed);
    auto make = [&](size_t threads) {
      return SetLinMonitor(*spec, 1 << 18, threads);
    };
    expect_fuzz_parity<SetLinMonitor>(make, h, seed);
  }
}

}  // namespace
}  // namespace selin
