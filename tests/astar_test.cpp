// The A* construction (Figure 7) and its lemmas:
//  * views satisfy Remark 7.2 by construction, sequentially and concurrently,
//  * Lemma 7.2 — A* preserves correctness (multithreaded soundness) and adds
//    O(n)-shaped step overhead,
//  * Lemma 7.3 / 7.4 — tight executions and their X(λ) sketches, via the
//    stepped driver and the trace recorder.
#include <gtest/gtest.h>

#include <thread>

#include "test_util.hpp"

namespace selin {
namespace {

TEST(AStar, SequentialViewsGrowAndSelfInclude) {
  auto q = make_ms_queue();
  AStar astar(2, *q);
  auto r1 = astar.apply(0, Method::kEnqueue, 5);
  EXPECT_EQ(r1.y, kTrue);
  EXPECT_EQ(r1.view.size(), 1u);
  EXPECT_TRUE(r1.view.contains(r1.op.id));
  auto r2 = astar.apply(1, Method::kDequeue);
  EXPECT_EQ(r2.y, 5);
  EXPECT_EQ(r2.view.size(), 2u);
  EXPECT_TRUE(r2.view.contains(r1.op.id));
  EXPECT_TRUE(View::subset_of(r1.view, r2.view));
}

TEST(AStar, RejectsForeignProcessId) {
  auto q = make_ms_queue();
  AStar astar(2, *q);
  OpDesc bad{OpId{1, 0}, Method::kEnqueue, 1};
  EXPECT_THROW(astar.apply_op(0, bad), std::invalid_argument);
}

// Remark 7.2 under real concurrency, for every snapshot kind.
class AStarConcurrent : public ::testing::TestWithParam<SnapshotKind> {};

TEST_P(AStarConcurrent, ViewPropertiesHold) {
  constexpr size_t kProcs = 4;
  constexpr int kOpsPerProc = 300;
  auto q = make_ms_queue();
  AStar astar(kProcs, *q, GetParam());

  std::vector<std::vector<LambdaRecord>> per_proc(kProcs);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 977 + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerProc; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        auto r = astar.apply(p, m, arg);
        per_proc[p].push_back(LambdaRecord{r.op, r.y, std::move(r.view)});
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<LambdaRecord> all;
  for (auto& v : per_proc) {
    for (auto& r : v) all.push_back(std::move(r));
  }
  EXPECT_EQ(validate_views(all), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AStarConcurrent,
                         ::testing::Values(SnapshotKind::kDoubleCollect,
                                           SnapshotKind::kAfek));

// Lemma 7.2 (correctness preservation, ⇒ direction): with a correct A, the
// sketch X(λ) of a concurrent A* run is linearizable.
TEST(AStar, CorrectAYieldsLinearizableSketch) {
  constexpr size_t kProcs = 3;
  auto q = make_ms_queue();
  AStar astar(kProcs, *q);
  std::vector<std::vector<LambdaRecord>> per_proc(kProcs);
  SpinBarrier barrier(kProcs);
  std::vector<std::thread> threads;
  for (ProcId p = 0; p < kProcs; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(p * 31 + 5);
      barrier.arrive_and_wait();
      for (int i = 0; i < 60; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        auto r = astar.apply(p, m, arg);
        per_proc[p].push_back(LambdaRecord{r.op, r.y, std::move(r.view)});
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<LambdaRecord> all;
  for (auto& v : per_proc) {
    for (auto& r : v) all.push_back(std::move(r));
  }
  History x = x_of_lambda(all);
  ASSERT_TRUE(well_formed(x));
  auto spec = make_queue_spec();
  EXPECT_TRUE(linearizable(*spec, x)) << format_history(x);
}

// Lemma 7.2 step complexity: the A* overhead (announce + scan) grows with n
// and does not depend on the history length.
TEST(AStar, StepOverheadIndependentOfHistoryLength) {
  auto q = make_ms_queue();
  constexpr size_t kProcs = 4;
  AStar astar(kProcs, *q, SnapshotKind::kAfek);
  StepCounter::set_enabled(true);
  StepCounter::reset_local();
  uint64_t early = 0, late = 0;
  for (int i = 0; i < 50; ++i) {
    StepProbe probe;
    astar.apply(0, Method::kEnqueue, i);
    if (i < 10) early += probe.steps();
    if (i >= 40) late += probe.steps();
  }
  // Solo runs: step counts should be flat (arena chains, not copied sets).
  EXPECT_LE(late, early * 3 + 64);
}

// Lemma 7.3 via the stepped driver: T(E)'s history, obtained from the trace
// marks, is linearizable whenever A's history is (tight executions sit
// between E|A and E in the implication chain).
TEST(AStar, TightHistoryFromTraceMatchesLemma73) {
  auto q = make_ms_queue();
  TraceRecorder rec(64);
  AStar astar(2, *q, SnapshotKind::kDoubleCollect, &rec);
  SteppedAStar step(astar);

  // Deterministic interleaving: enqueue announced and invoked, dequeue runs
  // completely inside the enqueue's Write..Snapshot window.
  step.announce(0, Method::kEnqueue, 9);
  step.invoke(0);
  auto rd = step.run_all(1, Method::kDequeue);
  auto re = step.complete(0);
  EXPECT_EQ(re.y, kTrue);
  EXPECT_EQ(rd.y, 9);

  AStarTrace trace = rec.trace();
  ASSERT_TRUE(valid_trace(trace));
  History tight = tight_history(trace);
  auto spec = make_queue_spec();
  // The dequeue overlaps the enqueue in T(E): linearizable.
  EXPECT_TRUE(linearizable(*spec, tight)) << format_history(tight);

  // Lemma 7.4: X(λ) of the tight execution is equivalent with equal ≺.
  std::vector<LambdaRecord> records{{re.op, re.y, re.view},
                                    {rd.op, rd.y, rd.view}};
  History x = x_of_lambda(records);
  EXPECT_TRUE(equivalent(x, tight));
  HistoryIndex ix(x), it(tight);
  EXPECT_EQ(ix.precedes(re.op.id, rd.op.id), it.precedes(re.op.id, rd.op.id));
  EXPECT_EQ(ix.precedes(rd.op.id, re.op.id), it.precedes(rd.op.id, re.op.id));
}

TEST(SteppedAStar, EnforcesPhaseOrder) {
  auto q = make_ms_queue();
  AStar astar(2, *q);
  SteppedAStar step(astar);
  EXPECT_THROW(step.invoke(0), std::logic_error);
  step.announce(0, Method::kEnqueue, 1);
  EXPECT_THROW(step.complete(0), std::logic_error);  // not yet invoked
  EXPECT_THROW(step.announce(0, Method::kEnqueue, 2), std::logic_error);
  step.invoke(0);
  auto r = step.complete(0);
  EXPECT_EQ(r.y, kTrue);
}

}  // namespace
}  // namespace selin
