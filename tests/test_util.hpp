// Shared helpers for the selin test-suite: a small history-building DSL and
// seeded random-history generators used by the property tests.
#pragma once

#include <utility>
#include <vector>

#include "selin/selin.hpp"

namespace selin::test {

/// Builds OpDescs with automatic per-process sequence numbers.
class OpFactory {
 public:
  OpDesc op(ProcId p, Method m, Value arg = kNoArg) {
    if (p >= next_.size()) next_.resize(p + 1, 0);
    return OpDesc{OpId{p, next_[p]++}, m, arg};
  }

 private:
  std::vector<uint32_t> next_;
};

/// A complete operation as one inv+res pair appended to `h` (sequential
/// convenience for spec-level tests).
inline void seq_op(History& h, OpFactory& f, ProcId p, Method m, Value arg,
                   Value res) {
  OpDesc d = f.op(p, m, arg);
  h.push_back(Event::inv(d));
  h.push_back(Event::res(d, res));
}

/// Generates a random *linearizable* history of `ops` complete operations on
/// `n` processes: operations are invoked, linearized (applying the spec at
/// the linearization point) and responded at independently random times, so
/// the histories have rich overlap structure but are linearizable by
/// construction.
inline History random_linearizable_history(ObjectKind kind, size_t n,
                                           size_t ops, uint64_t seed) {
  Rng rng(seed);
  auto spec = make_spec(kind);
  auto state = spec->initial();
  History h;
  struct Pending {
    OpDesc op;
    bool linearized = false;
    Value result = kNoArg;
  };
  std::vector<std::vector<Pending>> pend(n);  // at most 1 per proc
  std::vector<uint32_t> seq(n, 0);
  size_t invoked = 0;

  auto idle_procs = [&] {
    std::vector<ProcId> v;
    for (ProcId p = 0; p < n; ++p) {
      if (pend[p].empty() && invoked < ops) v.push_back(p);
    }
    return v;
  };

  while (true) {
    std::vector<ProcId> idle = idle_procs();
    std::vector<ProcId> lin, resp;
    for (ProcId p = 0; p < n; ++p) {
      if (!pend[p].empty()) {
        if (!pend[p][0].linearized) lin.push_back(p);
        else resp.push_back(p);
      }
    }
    if (idle.empty() && lin.empty() && resp.empty()) break;
    // Linearize/respond actions are weighted 2x: unbounded overlap windows
    // make membership checking exponential (it is NP-hard), and real
    // wait-free executions complete operations promptly.
    uint64_t total = idle.size() + 2 * (lin.size() + resp.size());
    uint64_t pick = rng.below(total);
    if (pick >= idle.size()) {
      pick = idle.size() + (pick - idle.size()) / 2;
    }
    if (pick < idle.size()) {
      ProcId p = idle[pick];
      auto [m, arg] = random_op(kind, rng);
      OpDesc d{OpId{p, seq[p]++}, m, arg};
      pend[p].push_back(Pending{d});
      h.push_back(Event::inv(d));
      ++invoked;
    } else if (pick < idle.size() + lin.size()) {
      ProcId p = lin[pick - idle.size()];
      Pending& pd = pend[p][0];
      pd.result = state->step(pd.op.method, pd.op.arg);
      pd.linearized = true;
    } else {
      ProcId p = resp[pick - idle.size() - lin.size()];
      Pending pd = pend[p][0];
      pend[p].clear();
      h.push_back(Event::res(pd.op, pd.result));
    }
  }
  return h;
}

/// Corrupts one random response value of `h` (returns false if there is no
/// response to corrupt).  The result is usually non-linearizable — tests
/// must still consult an oracle for the expected verdict.
inline bool corrupt_response(History& h, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> res_idx;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i].is_res()) res_idx.push_back(i);
  }
  if (res_idx.empty()) return false;
  size_t i = res_idx[rng.below(res_idx.size())];
  Value& v = h[i].result;
  v = (v == kEmpty) ? 777 : (v == kTrue ? kEmpty : v + 13);
  return true;
}

}  // namespace selin::test
