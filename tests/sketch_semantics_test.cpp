// The stretch/shrink semantics of sketches (Figures 5 and 6, Section 6) —
// the conceptual heart of why A* evades the Theorem 5.1 impossibility:
//
//   For a *verifier watching A directly* (Figure 5), operations stretch in
//   the detected history E', so:   E linearizable ⟹ E' linearizable
//   (good for soundness, useless for completeness).
//
//   For *A\**'s own sketch (Figure 6), operations shrink in X(λ) relative to
//   the actual A* history E*, so:  X(λ) linearizable ⟹ E* linearizable
//   (the reversed implication that buys completeness).
//
// Each figure's two sub-examples are reproduced as deterministic
// interleavings via SteppedAStar / the generic-verifier event model.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

// ---- Figure 5 (detected history stretches; verifier on raw A) -------------

// Top: both the actual and the detected history are linearizable.
TEST(Figure5, TopBothLinearizable) {
  test::OpFactory f;
  OpDesc enq = f.op(0, Method::kEnqueue, 1);
  OpDesc deq = f.op(1, Method::kDequeue);
  VerifierExecution exec{
      {VerifierEvent::Kind::kAnnounce, enq, kNoArg},
      {VerifierEvent::Kind::kInvoke, enq, kNoArg},
      {VerifierEvent::Kind::kRespond, enq, kTrue},
      {VerifierEvent::Kind::kRecord, enq, kTrue},
      {VerifierEvent::Kind::kAnnounce, deq, kNoArg},
      {VerifierEvent::Kind::kInvoke, deq, kNoArg},
      {VerifierEvent::Kind::kRespond, deq, 1},
      {VerifierEvent::Kind::kRecord, deq, 1},
  };
  auto spec = make_queue_spec();
  EXPECT_TRUE(linearizable(*spec, actual_history(exec)));
  EXPECT_TRUE(linearizable(*spec, detected_history(exec)));
}

// Bottom: the actual history is NOT linearizable (deq:1 completes before
// enq(1) starts), but a long delay between p1's announce and its invocation
// stretches the detected enq over the deq — the detected history IS
// linearizable.  This is the false negative direct verification cannot avoid.
TEST(Figure5, BottomDetectedHidesViolation) {
  test::OpFactory f;
  OpDesc enq = f.op(0, Method::kEnqueue, 1);
  OpDesc deq = f.op(1, Method::kDequeue);
  VerifierExecution exec{
      {VerifierEvent::Kind::kAnnounce, enq, kNoArg},  // p1 announces...
      {VerifierEvent::Kind::kAnnounce, deq, kNoArg},
      {VerifierEvent::Kind::kInvoke, deq, kNoArg},    // ...but deq runs first
      {VerifierEvent::Kind::kRespond, deq, 1},
      {VerifierEvent::Kind::kRecord, deq, 1},
      {VerifierEvent::Kind::kInvoke, enq, kNoArg},    // long delay over
      {VerifierEvent::Kind::kRespond, enq, kTrue},
      {VerifierEvent::Kind::kRecord, enq, kTrue},
  };
  auto spec = make_queue_spec();
  EXPECT_FALSE(linearizable(*spec, actual_history(exec)));
  EXPECT_TRUE(linearizable(*spec, detected_history(exec)));
}

// ---- Figure 6 (A* operations shrink in the sketch) -------------------------

// Top: the actual A* history is linearizable (ops overlap in real time), but
// the sketch orders them — the sketch may be non-linearizable even though
// E* is linearizable.  Reported ERROR is then a *predictive* false negative,
// justified because the sketch itself is a history of A* (Corollary 7.2).
TEST(Figure6, TopSketchStricterThanActual) {
  auto q = make_thm51_queue(/*liar=*/1);
  AStar astar(2, *q);
  SteppedAStar step(astar);

  // p2's deq announces, runs A, and SNAPSHOTS before p1's enqueue announces:
  // in the sketch, deq:1 precedes enq — non-linearizable.  In the actual A*
  // history we let the operations overlap by completing p1 in between...
  // Concretely: announce(deq) -> invoke(deq)=1 -> complete(deq) all before
  // announce(enq); the *actual* A* history is then also ordered, so to show
  // the "shrink" we interleave: p1 announces before p2 completes its A call
  // but after p2's announce+invoke; p2 then snapshots AFTER p1's announce..
  // The cleanest rendition of the figure: p2 snapshots BEFORE p1 announces
  // (sketch orders deq < enq), while p1's *invocation* (announce) happened
  // before p2's response event in the actual execution, making them overlap.
  step.announce(1, Method::kDequeue);
  step.invoke(1);                       // deq -> 1 (the lie)
  auto rd = step.complete(1);           // snapshot sees only deq
  step.announce(0, Method::kEnqueue, 1);
  step.invoke(0);
  auto re = step.complete(0);

  std::vector<LambdaRecord> recs{{rd.op, rd.y, rd.view},
                                 {re.op, re.y, re.view}};
  History x = x_of_lambda(recs);
  auto spec = make_queue_spec();
  // The sketch shows deq:1 strictly before enq — not linearizable.
  EXPECT_FALSE(linearizable(*spec, x)) << format_history(x);
  // And indeed the actual tight execution here is also ordered, so the
  // non-linearizable sketch correctly reflects a non-linearizable history of
  // A* — the witness property (the sketch IS a history of A*).
}

// Bottom: the actual A* history is not linearizable; then the sketch cannot
// be linearizable either (completeness direction, Lemma 7.3).  Exercised by
// forcing the violation to be visible: deq's snapshot precedes enq's write.
TEST(Figure6, BottomNonLinearizableActualImpliesNonLinearizableSketch) {
  auto q = make_thm51_queue(1);
  AStar astar(2, *q);
  TraceRecorder rec(16);
  AStar traced(2, *q, SnapshotKind::kDoubleCollect, &rec);
  SteppedAStar step(traced);

  step.announce(1, Method::kDequeue);
  step.invoke(1);
  auto rd = step.complete(1);
  step.announce(0, Method::kEnqueue, 1);
  step.invoke(0);
  auto re = step.complete(0);

  History tight = tight_history(rec.trace());
  auto spec = make_queue_spec();
  ASSERT_FALSE(linearizable(*spec, tight));  // actual (tight) violated

  History x = x_of_lambda(std::vector<LambdaRecord>{
      {rd.op, rd.y, rd.view}, {re.op, re.y, re.view}});
  EXPECT_FALSE(linearizable(*spec, x));  // sketch must expose it
}

// The implication of Lemma 7.3 in the enforcing direction: when delays are
// long, A*'s sketch *shows overlap*, and X(λ) linearizable ⟹ the actual A*
// history is linearizable (asynchrony as an ally, Section 6's closing
// intuition).  Here the lie is absorbed: the enqueue's announce lands before
// the dequeue's snapshot, so the sketch overlaps them.
TEST(Figure6, EnforcementWindowAbsorbsLie) {
  auto q = make_thm51_queue(1);
  AStar astar(2, *q);
  SteppedAStar step(astar);

  step.announce(1, Method::kDequeue);
  step.invoke(1);                        // deq -> 1 before any enqueue
  step.announce(0, Method::kEnqueue, 1); // enq announced before deq snaps
  auto rd = step.complete(1);            // deq's view includes enq
  step.invoke(0);
  auto re = step.complete(0);

  History x = x_of_lambda(std::vector<LambdaRecord>{
      {rd.op, rd.y, rd.view}, {re.op, re.y, re.view}});
  auto spec = make_queue_spec();
  // The sketch overlaps enq and deq, so deq:1 is justified: linearizable.
  EXPECT_TRUE(linearizable(*spec, x)) << format_history(x);
}

}  // namespace
}  // namespace selin
