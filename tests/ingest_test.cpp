// Live-ingest path tests: the MPSC session feed (Session::try_publish under
// genuinely concurrent producers — the TSan target of the CI ingest smoke)
// and the IngestServer end to end over a Unix-domain socket: handshake,
// acks, deterministic THROTTLE backpressure, go-back-N duplicate handling,
// protocol errors, the HTTP-ish stats endpoints, idle eviction and TCP.
//
// The raw-socket helper speaks the wire protocol directly (no IngestClient)
// where the test needs to provoke frames a correct client never sends:
// oversized batches, duplicate and gapped sequence numbers, events before
// hello, plain HTTP requests.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "selin/net/ingest_client.hpp"
#include "selin/net/ingest_server.hpp"
#include "selin/net/wire.hpp"
#include "selin/service/monitor_service.hpp"
#include "selin/sim/workload.hpp"
#include "test_util.hpp"

namespace selin::net {
namespace {

using service::MonitorService;
using service::ServiceOptions;
using service::Session;
using service::SessionOptions;

// A short, collision-free socket path (sun_path is ~108 bytes).
std::string test_uds_path(const char* tag) {
  return "/tmp/selin_igt_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// A sequential (single-process) correct queue stream: Enqueue/Dequeue
/// alternating, responses from the sequential spec — accepted by any
/// linearizability monitor.
std::vector<Event> queue_stream(size_t ops) {
  auto spec = make_spec(ObjectKind::kQueue);
  auto state = spec->initial();
  test::OpFactory f;
  std::vector<Event> ev;
  ev.reserve(ops * 2);
  for (size_t i = 0; i < ops; ++i) {
    const Method m = (i % 2 == 0) ? Method::kEnqueue : Method::kDequeue;
    const Value arg = (m == Method::kEnqueue) ? static_cast<Value>(i + 1)
                                              : kNoArg;
    const OpDesc d = f.op(0, m, arg);
    ev.push_back(Event::inv(d));
    ev.push_back(Event::res(d, state->step(m, arg)));
  }
  return ev;
}

// ---- MPSC feed (direct service, no sockets) --------------------------------

// Many producer threads publish into ONE session while the controller
// drains concurrently.  Consensus makes the history correct by construction
// under every interleaving: all producers Decide(7), and since the first
// decision fixes the value, every response is 7 whatever the arrival order.
// A small inbox forces real try_publish rejections (the backpressure path)
// along the way.  This is the TSan coverage of the producer-side feed.
TEST(IngestMpsc, ConcurrentProducersOneSession) {
  constexpr size_t kProducers = 4;
  constexpr size_t kOpsPerProducer = 2000;

  ServiceOptions sopts;
  sopts.lanes = 2;
  MonitorService svc(sopts);
  SessionOptions so;
  so.inbox_capacity = 256;  // small: guarantees overflow rejections
  const auto sid = svc.open("mpsc", make_spec(ObjectKind::kConsensus), so);

  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Session* s = svc.find(sid);
      ASSERT_NE(s, nullptr);
      for (uint32_t i = 0; i < kOpsPerProducer; ++i) {
        const OpDesc d{OpId{static_cast<ProcId>(t), i}, Method::kDecide, 7};
        const Event batch[2] = {Event::inv(d), Event::res(d, 7)};
        while (!s->try_publish(batch)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }

  // The controller drains concurrently with the publishes (the daemon's
  // drain thread, inlined) — but only once the inbox has actually
  // overflowed, so the backpressure path is exercised deterministically:
  // 16000 events cannot fit a 256-event inbox that nobody is draining.
  std::atomic<bool> done{false};
  std::thread controller([&] {
    while (rejected.load(std::memory_order_relaxed) == 0 &&
           !done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    while (!done.load(std::memory_order_acquire)) {
      if (svc.drain_round() == 0) std::this_thread::yield();
    }
    // Producers are gone: absorb whatever is left.
    while (svc.session(sid).backlog() > 0) svc.drain_round();
  });
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  controller.join();

  const Session& s = svc.session(sid);
  EXPECT_TRUE(s.ok()) << "interleaving-independent stream must be accepted";
  EXPECT_EQ(s.events_fed(), kProducers * kOpsPerProducer * 2);
  EXPECT_EQ(s.backlog(), 0u);
  // With a 256-event inbox and 16000 events, backpressure must have fired.
  EXPECT_GT(rejected.load(), 0u) << "inbox bound never exercised";
}

// A settled (rejected) session accepts publishes and discards them: sticky
// verdicts ignore input, so producers never need a special shutdown path.
TEST(IngestMpsc, SettledSessionDiscardsPublishes) {
  MonitorService svc;
  const auto sid = svc.open("settled", make_spec(ObjectKind::kQueue));
  Session* s = svc.find(sid);
  ASSERT_NE(s, nullptr);

  // Dequeue from an empty queue claiming a value: certain rejection.
  const OpDesc bad{OpId{0, 0}, Method::kDequeue, kNoArg};
  const Event batch[2] = {Event::inv(bad), Event::res(bad, 5)};
  ASSERT_TRUE(s->try_publish(batch));
  svc.drain();
  ASSERT_EQ(s->status(), Session::Status::kRejected);
  EXPECT_EQ(s->first_bad_index(), 0u);

  const size_t fed = s->events_fed();
  const OpDesc more{OpId{0, 1}, Method::kEnqueue, 1};
  const Event batch2[2] = {Event::inv(more), Event::res(more, kOk)};
  EXPECT_TRUE(s->try_publish(batch2)) << "settled sessions accept+discard";
  svc.drain();
  EXPECT_EQ(s->events_fed(), fed) << "discarded events must not feed";
  EXPECT_EQ(s->status(), Session::Status::kRejected);
}

// ---- raw wire-protocol connection helper -----------------------------------

struct OwnedFrame {
  FrameHeader header;
  std::vector<uint8_t> body;
};

/// Blocking raw socket speaking frames (or arbitrary bytes) — the
/// misbehaving client IngestClient refuses to be.
class RawConn {
 public:
  ~RawConn() { close(); }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connect_uds(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  bool send_bytes(std::span<const uint8_t> bytes) {
    size_t at = 0;
    while (at < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + at, bytes.size() - at, MSG_NOSIGNAL);
      if (n <= 0) return false;
      at += static_cast<size_t>(n);
    }
    return true;
  }
  bool send_str(std::string_view s) {
    return send_bytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }

  /// Next frame, blocking.  False on EOF/garbage.
  bool read_frame(OwnedFrame& out) {
    for (;;) {
      FrameView f;
      const DecodeStatus st = peek_frame({buf_.data(), buf_.size()}, f);
      if (st == DecodeStatus::kFrame) {
        out.header = f.header;
        out.body.assign(f.body.begin(), f.body.end());
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(
                                                    f.frame_len));
        return true;
      }
      if (st == DecodeStatus::kBad) return false;
      uint8_t tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return false;
      buf_.insert(buf_.end(), tmp, tmp + n);
    }
  }

  /// Reads to EOF (for the HTTP endpoints, which close after the response).
  std::string read_all() {
    std::string out(reinterpret_cast<const char*>(buf_.data()), buf_.size());
    buf_.clear();
    char tmp[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return out;
      out.append(tmp, static_cast<size_t>(n));
    }
  }

  /// kHello handshake; returns the assigned session id (asserts on error).
  uint32_t hello(uint8_t kind = 0, std::string_view name = "raw") {
    std::vector<uint8_t> w;
    append_hello(w, kind, name);
    EXPECT_TRUE(send_bytes(w));
    OwnedFrame f;
    EXPECT_TRUE(read_frame(f));
    EXPECT_EQ(f.header.type, FrameType::kHelloAck)
        << frame_type_name(f.header.type);
    HelloAckBody ack;
    EXPECT_TRUE(parse_hello_ack(f.body, ack));
    return ack.session;
  }

  bool send_events_frame(uint32_t sid, uint32_t seq,
                         std::span<const Event> events) {
    std::vector<uint8_t> w;
    append_events(w, sid, seq, events);
    return send_bytes(w);
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> buf_;
};

// ---- in-process server fixture ---------------------------------------------

/// IngestServer on its own reactor thread, stopped and joined on scope exit.
class ServerFixture {
 public:
  explicit ServerFixture(IngestOptions opts) : server_(std::move(opts)) {
    std::string err;
    ok_ = server_.start(&err);
    EXPECT_TRUE(ok_) << err;
    if (ok_) reactor_ = std::thread([this] { server_.run(); });
  }
  ~ServerFixture() {
    server_.stop();
    if (reactor_.joinable()) reactor_.join();
  }
  IngestServer& operator*() { return server_; }
  IngestServer* operator->() { return &server_; }
  bool ok() const { return ok_; }

 private:
  IngestServer server_;
  std::thread reactor_;
  bool ok_ = false;
};

// ---- end-to-end over UDS ---------------------------------------------------

TEST(IngestServerE2E, CorrectStreamVerdictOkOverUds) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("ok");
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  const auto stream = queue_stream(500);
  IngestClient cli;
  std::string err;
  ASSERT_TRUE(cli.connect_uds(opts.uds_path, &err)) << err;
  HelloAckBody ack;
  ASSERT_TRUE(cli.hello(static_cast<uint8_t>(ObjectKind::kQueue), "s-ok",
                        &ack, &err))
      << err;
  EXPECT_EQ(ack.inbox_capacity, opts.inbox_capacity);

  // Feed in frames of 100 events; a mid-stream verdict must drain first.
  for (size_t at = 0; at < stream.size(); at += 100) {
    const size_t n = std::min<size_t>(100, stream.size() - at);
    ASSERT_TRUE(cli.send_events({stream.data() + at, n}, &err)) << err;
    if (at == 200) {
      VerdictBody v;
      ASSERT_TRUE(cli.verdict(&v, &err)) << err;
      EXPECT_EQ(v.status, WireStatus::kOk);
      EXPECT_EQ(v.events_fed, at + n) << "verdict must wait for the backlog";
    }
  }
  std::string stats;
  ASSERT_TRUE(cli.stats(&stats, &err)) << err;
  EXPECT_NE(stats.find("\"events_fed\""), std::string::npos) << stats;

  VerdictBody fin;
  ASSERT_TRUE(cli.bye(&fin, &err)) << err;
  EXPECT_EQ(fin.status, WireStatus::kOk);
  EXPECT_EQ(fin.events_fed, stream.size());

  const auto t = srv->totals();
  EXPECT_EQ(t.sessions_opened, 1u);
  EXPECT_EQ(t.sessions_closed, 1u);
  EXPECT_EQ(t.events, stream.size());
}

TEST(IngestServerE2E, RejectingStreamFirstBad) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("bad");
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  auto stream = queue_stream(20);
  // Corrupt the tail: one more Dequeue claiming a value never enqueued.
  {
    const OpDesc d{OpId{1, 0}, Method::kDequeue, kNoArg};
    stream.push_back(Event::inv(d));
    stream.push_back(Event::res(d, 424242));
  }

  IngestClient cli;
  std::string err;
  ASSERT_TRUE(cli.connect_uds(opts.uds_path, &err)) << err;
  ASSERT_TRUE(cli.hello(static_cast<uint8_t>(ObjectKind::kQueue), "s-bad",
                        nullptr, &err))
      << err;
  ASSERT_TRUE(cli.send_events(stream, &err)) << err;
  VerdictBody fin;
  ASSERT_TRUE(cli.bye(&fin, &err)) << err;
  EXPECT_EQ(fin.status, WireStatus::kRejected);
  EXPECT_LT(fin.first_bad, stream.size())
      << "first_bad brackets the offending batch";
}

// Deterministic backpressure: with inbox_capacity = 4, an 8-event frame can
// NEVER be accepted — the server must answer kThrottle (not drop, not
// stall).  The client then rewinds and delivers the same events in
// capacity-sized frames, retrying throttles, and the verdict proves nothing
// was lost or reordered.
TEST(IngestServerE2E, ThrottleBackpressureLossless) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("thr");
  opts.inbox_capacity = 4;
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  const auto stream = queue_stream(4);  // 8 events
  RawConn c;
  ASSERT_TRUE(c.connect_uds(opts.uds_path));
  const uint32_t sid = c.hello(static_cast<uint8_t>(ObjectKind::kQueue));

  // Oversized frame: guaranteed throttle, expected_seq still 0.
  ASSERT_TRUE(c.send_events_frame(sid, 0, stream));
  OwnedFrame f;
  ASSERT_TRUE(c.read_frame(f));
  ASSERT_EQ(f.header.type, FrameType::kThrottle)
      << frame_type_name(f.header.type);
  ThrottleBody tb;
  ASSERT_TRUE(parse_throttle(f.body, tb));
  EXPECT_EQ(tb.expected_seq, 0u);

  // Go-back-N recovery: resend in 4-event frames, retrying throttles.
  size_t throttles = 0;
  uint32_t seq = 0;
  for (size_t at = 0; at < stream.size(); at += 4) {
    for (;;) {
      ASSERT_TRUE(c.send_events_frame(sid, seq, {stream.data() + at, 4}));
      ASSERT_TRUE(c.read_frame(f));
      if (f.header.type == FrameType::kAck) {
        EXPECT_EQ(f.header.seq, seq);
        ++seq;
        break;
      }
      ASSERT_EQ(f.header.type, FrameType::kThrottle)
          << frame_type_name(f.header.type);
      ++throttles;
    }
  }

  std::vector<uint8_t> w;
  append_frame(w, FrameHeader{.type = FrameType::kBye, .session = sid});
  ASSERT_TRUE(c.send_bytes(w));
  ASSERT_TRUE(c.read_frame(f));
  ASSERT_EQ(f.header.type, FrameType::kVerdict);
  EXPECT_NE(f.header.flags & kFlagFinal, 0);
  VerdictBody v;
  ASSERT_TRUE(parse_verdict(f.body, v));
  EXPECT_EQ(v.status, WireStatus::kOk) << "throttled events were lost/reordered";
  EXPECT_EQ(v.events_fed, stream.size());

  EXPECT_GE(srv->totals().throttles, 1u + throttles);
}

// Go-back-N duplicate and gap handling: a re-sent accepted seq is re-acked
// without re-feeding; a seq from the future is throttled back to the
// expected one.
TEST(IngestServerE2E, DuplicateReAckedGapThrottled) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("dup");
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  const auto stream = queue_stream(8);  // 16 events
  RawConn c;
  ASSERT_TRUE(c.connect_uds(opts.uds_path));
  const uint32_t sid = c.hello(static_cast<uint8_t>(ObjectKind::kQueue));

  OwnedFrame f;
  ASSERT_TRUE(c.send_events_frame(sid, 0, {stream.data(), 8}));
  ASSERT_TRUE(c.read_frame(f));
  ASSERT_EQ(f.header.type, FrameType::kAck);

  // Duplicate of the accepted frame: idempotent re-ack.
  ASSERT_TRUE(c.send_events_frame(sid, 0, {stream.data(), 8}));
  ASSERT_TRUE(c.read_frame(f));
  EXPECT_EQ(f.header.type, FrameType::kAck);
  EXPECT_EQ(f.header.seq, 0u);

  // Seq gap (3 when 1 is expected): throttle naming the expected seq.
  ASSERT_TRUE(c.send_events_frame(sid, 3, {stream.data() + 8, 8}));
  ASSERT_TRUE(c.read_frame(f));
  ASSERT_EQ(f.header.type, FrameType::kThrottle);
  ThrottleBody tb;
  ASSERT_TRUE(parse_throttle(f.body, tb));
  EXPECT_EQ(tb.expected_seq, 1u);

  // Correct continuation; the verdict proves the duplicate was not re-fed.
  ASSERT_TRUE(c.send_events_frame(sid, 1, {stream.data() + 8, 8}));
  ASSERT_TRUE(c.read_frame(f));
  ASSERT_EQ(f.header.type, FrameType::kAck);

  std::vector<uint8_t> w;
  append_frame(w, FrameHeader{.type = FrameType::kBye, .session = sid});
  ASSERT_TRUE(c.send_bytes(w));
  ASSERT_TRUE(c.read_frame(f));
  VerdictBody v;
  ASSERT_TRUE(parse_verdict(f.body, v));
  EXPECT_EQ(v.status, WireStatus::kOk);
  EXPECT_EQ(v.events_fed, stream.size()) << "duplicate frame was double-fed";
}

TEST(IngestServerE2E, ProtocolErrorsCloseWithKError) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("err");
  opts.max_sessions = 1;
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  const auto stream = queue_stream(2);

  {  // Events before hello.
    RawConn c;
    ASSERT_TRUE(c.connect_uds(opts.uds_path));
    ASSERT_TRUE(c.send_events_frame(0, 0, stream));
    OwnedFrame f;
    ASSERT_TRUE(c.read_frame(f));
    EXPECT_EQ(f.header.type, FrameType::kError);
    EXPECT_FALSE(c.read_frame(f)) << "connection must close after kError";
  }
  {  // Unknown object kind.
    RawConn c;
    ASSERT_TRUE(c.connect_uds(opts.uds_path));
    std::vector<uint8_t> w;
    append_hello(w, 250, "nope");
    ASSERT_TRUE(c.send_bytes(w));
    OwnedFrame f;
    ASSERT_TRUE(c.read_frame(f));
    EXPECT_EQ(f.header.type, FrameType::kError);
  }
  {  // Session cap: first hello fits, second is refused.
    RawConn a, b;
    ASSERT_TRUE(a.connect_uds(opts.uds_path));
    a.hello(static_cast<uint8_t>(ObjectKind::kQueue), "only");
    ASSERT_TRUE(b.connect_uds(opts.uds_path));
    std::vector<uint8_t> w;
    append_hello(w, static_cast<uint8_t>(ObjectKind::kQueue), "too-many");
    ASSERT_TRUE(b.send_bytes(w));
    OwnedFrame f;
    ASSERT_TRUE(b.read_frame(f));
    EXPECT_EQ(f.header.type, FrameType::kError);
  }
  {  // Wire garbage (bad magic): kError, then the connection dies.  (The
     // "GET " prefix is the one garbage spelling that is NOT an error — it
     // switches the connection to HTTP; HttpEndpointsOverUds covers it.)
    RawConn c;
    ASSERT_TRUE(c.connect_uds(opts.uds_path));
    ASSERT_TRUE(c.send_str("XXXXXXXXXXXXXXXXXXXXXXXX"));
    OwnedFrame f;
    ASSERT_TRUE(c.read_frame(f));
    EXPECT_EQ(f.header.type, FrameType::kError);
    EXPECT_FALSE(c.read_frame(f));
  }
  EXPECT_GE(srv->totals().protocol_errors, 4u);
}

TEST(IngestServerE2E, HttpEndpointsOverUds) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("http");
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  // Open one session so /stats has a row to show.
  IngestClient cli;
  std::string err;
  ASSERT_TRUE(cli.connect_uds(opts.uds_path, &err)) << err;
  ASSERT_TRUE(cli.hello(static_cast<uint8_t>(ObjectKind::kQueue), "watched",
                        nullptr, &err))
      << err;
  const auto stream = queue_stream(10);
  ASSERT_TRUE(cli.send_events(stream, &err)) << err;

  const auto get = [&](const std::string& path) {
    RawConn c;
    EXPECT_TRUE(c.connect_uds(opts.uds_path));
    EXPECT_TRUE(c.send_str("GET " + path + " HTTP/1.0\r\n\r\n"));
    return c.read_all();
  };

  const std::string stats = get("/stats");
  EXPECT_NE(stats.find("200 OK"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"server\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"watched\""), std::string::npos) << stats;

  const std::string prom = get("/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("ingest_events_total"), std::string::npos) << prom;

  const std::string json = get("/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos) << json;

  const std::string missing = get("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  EXPECT_GE(srv->totals().http_requests, 4u);
}

TEST(IngestServerE2E, IdleSessionsEvicted) {
  IngestOptions opts;
  opts.uds_path = test_uds_path("idle");
  opts.idle_timeout_ms = 50;
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());

  RawConn c;
  ASSERT_TRUE(c.connect_uds(opts.uds_path));
  c.hello(static_cast<uint8_t>(ObjectKind::kQueue), "sleeper");

  // The reactor sweeps idle connections on its poll cadence; allow a few
  // seconds of slack before declaring the timeout dead.
  bool evicted = false;
  for (int i = 0; i < 200 && !evicted; ++i) {
    evicted = srv->totals().sessions_evicted >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(evicted) << "idle session never evicted";
  OwnedFrame f;
  EXPECT_FALSE(c.read_frame(f)) << "evicted connection must be closed";
}

TEST(IngestServerE2E, TcpEphemeralPort) {
  IngestOptions opts;
  opts.tcp_port = 0;  // ephemeral
  ServerFixture srv(opts);
  ASSERT_TRUE(srv.ok());
  ASSERT_GT(srv->tcp_port(), 0);

  const auto stream = queue_stream(50);
  IngestClient cli;
  std::string err;
  ASSERT_TRUE(cli.connect_tcp("127.0.0.1", srv->tcp_port(), &err)) << err;
  ASSERT_TRUE(cli.hello(static_cast<uint8_t>(ObjectKind::kQueue), "tcp",
                        nullptr, &err))
      << err;
  ASSERT_TRUE(cli.send_events(stream, &err)) << err;
  VerdictBody fin;
  ASSERT_TRUE(cli.bye(&fin, &err)) << err;
  EXPECT_EQ(fin.status, WireStatus::kOk);
  EXPECT_EQ(fin.events_fed, stream.size());
}

}  // namespace
}  // namespace selin::net
