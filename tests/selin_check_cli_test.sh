#!/usr/bin/env bash
# Exit-code and output contract of selin_check, single- and multi-history
# modes (registered as ctest target selin_check_cli).
#
#   single: 0 linearizable | 1 not | 2 usage/parse | 3 overflow
#   multi:  0 all ok | 1 any violation | 2 usage | 3 any overflow
#           | 4 any session error (unreadable/malformed file)
#
# Usage: selin_check_cli_test.sh <path-to-selin_check> <path-to-gen-script>
set -u

bin="$1"
gen="$2"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
fails=0

expect() {
  local want="$1"; shift
  "$@" > "$tmp/out" 2> "$tmp/err"
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: exit $got (want $want): $*" >&2
    sed 's/^/  out: /' "$tmp/out" >&2
    sed 's/^/  err: /' "$tmp/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: exit $got: $*"
  fi
}

expect_grep() {
  local pattern="$1"
  if ! grep -Eq "$pattern" "$tmp/out"; then
    echo "FAIL: output missing /$pattern/" >&2
    sed 's/^/  out: /' "$tmp/out" >&2
    fails=$((fails + 1))
  else
    echo "ok: output has /$pattern/"
  fi
}

bash "$gen" "$tmp/hists" --with-broken

ok_files=("$tmp"/hists/ok_*.hist)

# Overflow sample: 6 concurrently open enqueues, then a response forcing a
# closure far past selin_check's budget is impossible at 2^18 — instead
# craft one with sustained width 20 (frontier 20! >> 2^18 on the closure).
overflow="$tmp/overflow.hist"
: > "$overflow"
for p in $(seq 0 19); do
  echo "inv $p 0 Enqueue $((p + 1))" >> "$overflow"
done
echo "res 0 0 Enqueue 1 true" >> "$overflow"

# ---- single-history mode ---------------------------------------------------
expect 0 "$bin" queue "${ok_files[0]}"
expect 0 "$bin" queue "${ok_files[0]}" --witness --stats
expect 1 "$bin" queue "$tmp/hists/bad_fifo.hist"
expect 2 "$bin" queue "$tmp/hists/broken.hist"
expect 2 "$bin" queue "$tmp/does-not-exist.hist"
expect 2 "$bin" frobnicator "${ok_files[0]}"
expect 2 "$bin" queue "${ok_files[0]}" --bogus-flag
expect 2 "$bin" queue "${ok_files[0]}" --tune            # --tune needs auto
expect 3 "$bin" queue "$overflow"

# ---- multi-history mode ----------------------------------------------------
# All accepting: 0, and the summary table lists every file as OK.
expect 0 "$bin" queue "${ok_files[@]}" --jobs 2
expect_grep '^file +verdict +events$'
expect_grep 'ok_1\.hist +OK +10'

# Any violation: 1, named in the table.
expect 1 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" --jobs 2
expect_grep 'bad_fifo\.hist +VIOLATION'

# Any overflow outranks violations: 3.
expect 3 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" \
  "$overflow" --jobs 2
expect_grep 'overflow\.hist +OVERFLOW'

# Any session error (malformed or unreadable) outranks everything: 4.
expect 4 "$bin" queue "${ok_files[@]}" "$tmp/hists/broken.hist" --jobs 2
expect_grep 'broken\.hist +ERROR'
expect 4 "$bin" queue "${ok_files[0]}" "$tmp/does-not-exist.hist" --jobs 2
# A directory opens but never reads: a dead stream is an ERROR, not EOF/OK.
expect 4 "$bin" queue "${ok_files[0]}" "$tmp/hists" --jobs 2

# --jobs with one file still runs the service path.
expect 0 "$bin" queue "${ok_files[0]}" --jobs 1
# --quiet multi prints only non-OK rows.
expect 1 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" --jobs 2 --quiet
expect_grep 'bad_fifo\.hist +VIOLATION'
if grep -q "ok_1.hist" "$tmp/out"; then
  echo "FAIL: --quiet printed an OK row" >&2
  fails=$((fails + 1))
fi
# Usage errors in multi mode: stdin and --witness are single-only.
expect 2 "$bin" queue "${ok_files[0]}" - --jobs 2
expect 2 "$bin" queue "${ok_files[@]}" --jobs 2 --witness
expect 2 "$bin" queue "${ok_files[@]}" --jobs 0

if [[ "$fails" -ne 0 ]]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all selin_check CLI checks passed"
