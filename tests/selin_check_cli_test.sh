#!/usr/bin/env bash
# Exit-code and output contract of selin_check, single- and multi-history
# modes (registered as ctest target selin_check_cli).
#
#   single: 0 linearizable | 1 not | 2 usage/parse | 3 overflow
#   multi:  0 all ok | 1 any violation | 2 usage | 3 any overflow
#           | 4 any session error (unreadable/malformed file)
#
# Usage: selin_check_cli_test.sh <path-to-selin_check> <path-to-gen-script>
set -u

bin="$1"
gen="$2"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
fails=0

expect() {
  local want="$1"; shift
  "$@" > "$tmp/out" 2> "$tmp/err"
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: exit $got (want $want): $*" >&2
    sed 's/^/  out: /' "$tmp/out" >&2
    sed 's/^/  err: /' "$tmp/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: exit $got: $*"
  fi
}

expect_grep() {
  local pattern="$1"
  if ! grep -Eq "$pattern" "$tmp/out"; then
    echo "FAIL: output missing /$pattern/" >&2
    sed 's/^/  out: /' "$tmp/out" >&2
    fails=$((fails + 1))
  else
    echo "ok: output has /$pattern/"
  fi
}

bash "$gen" "$tmp/hists" --with-broken

ok_files=("$tmp"/hists/ok_*.hist)

# Overflow sample: 6 concurrently open enqueues, then a response forcing a
# closure far past selin_check's budget is impossible at 2^18 — instead
# craft one with sustained width 20 (frontier 20! >> 2^18 on the closure).
overflow="$tmp/overflow.hist"
: > "$overflow"
for p in $(seq 0 19); do
  echo "inv $p 0 Enqueue $((p + 1))" >> "$overflow"
done
echo "res 0 0 Enqueue 1 true" >> "$overflow"

# ---- single-history mode ---------------------------------------------------
expect 0 "$bin" queue "${ok_files[0]}"
expect 0 "$bin" queue "${ok_files[0]}" --witness --stats
expect 1 "$bin" queue "$tmp/hists/bad_fifo.hist"
expect 2 "$bin" queue "$tmp/hists/broken.hist"
expect 2 "$bin" queue "$tmp/does-not-exist.hist"
expect 2 "$bin" frobnicator "${ok_files[0]}"
expect 2 "$bin" queue "${ok_files[0]}" --bogus-flag
expect 2 "$bin" queue "${ok_files[0]}" --tune            # --tune needs auto
expect 3 "$bin" queue "$overflow"

# ---- multi-history mode ----------------------------------------------------
# All accepting: 0, and the summary table lists every file as OK.
expect 0 "$bin" queue "${ok_files[@]}" --jobs 2
expect_grep '^file +verdict +events$'
expect_grep 'ok_1\.hist +OK +10'

# Any violation: 1, named in the table.
expect 1 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" --jobs 2
expect_grep 'bad_fifo\.hist +VIOLATION'

# Any overflow outranks violations: 3.
expect 3 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" \
  "$overflow" --jobs 2
expect_grep 'overflow\.hist +OVERFLOW'

# Any session error (malformed or unreadable) outranks everything: 4.
expect 4 "$bin" queue "${ok_files[@]}" "$tmp/hists/broken.hist" --jobs 2
expect_grep 'broken\.hist +ERROR'
expect 4 "$bin" queue "${ok_files[0]}" "$tmp/does-not-exist.hist" --jobs 2
# A directory opens but never reads: a dead stream is an ERROR, not EOF/OK.
expect 4 "$bin" queue "${ok_files[0]}" "$tmp/hists" --jobs 2

# --jobs with one file still runs the service path.
expect 0 "$bin" queue "${ok_files[0]}" --jobs 1
# --quiet multi prints only non-OK rows.
expect 1 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" --jobs 2 --quiet
expect_grep 'bad_fifo\.hist +VIOLATION'
if grep -q "ok_1.hist" "$tmp/out"; then
  echo "FAIL: --quiet printed an OK row" >&2
  fails=$((fails + 1))
fi
# Usage errors in multi mode: stdin and --witness are single-only.
expect 2 "$bin" queue "${ok_files[0]}" - --jobs 2
expect 2 "$bin" queue "${ok_files[@]}" --jobs 2 --witness
expect 2 "$bin" queue "${ok_files[@]}" --jobs 0

# ---- observability outputs -------------------------------------------------
# A JSON round-trip helper: parses stdin as JSON, checks that a
# dot-separated key path exists, fails loudly otherwise.
json_has() {
  local file="$1"; shift
  if ! python3 - "$file" "$@" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for path in sys.argv[2:]:
    node = doc
    for part in path.split('.'):
        node = node[part]
sys.exit(0)
PY
  then
    echo "FAIL: JSON contract violated ($*) in $file" >&2
    sed 's/^/  out: /' "$file" >&2
    fails=$((fails + 1))
  else
    echo "ok: JSON contract $*"
  fi
}

# --stats-json: one JSON object with the stable EngineStats keys; the
# verdict exit code is unchanged.
expect 0 "$bin" queue "${ok_files[0]}" --quiet --stats-json
json_has "$tmp/out" lanes events_fed rounds_sequential rounds_parallel \
  peak_frontier dedup_probes dedup_hits states_recycled engage_width \
  retreat_width mode_switches tuner_updates probe_batches prefetch_batches \
  filter_in_place_rounds priors_applied

# --metrics -: stdout is a single JSON document that round-trips through a
# parser (the ISSUE acceptance contract), even when attached to a run that
# also traces; verdict exit codes survive.
expect 0 "$bin" queue "${ok_files[0]}" --metrics - --trace "$tmp/trace.jsonl"
json_has "$tmp/out" metrics
if ! python3 -c "
import json, sys
doc = json.load(open('$tmp/out'))
names = {m['name'] for m in doc['metrics']}
assert 'engine_round_ns' in names, names
assert 'engine_events_fed' in names, names
h = next(m for m in doc['metrics'] if m['name'] == 'engine_round_ns'
         and m['labels'].get('mode') == 'seq')
assert h['kind'] == 'histogram' and h['count'] > 0, h
"; then
  echo "FAIL: --metrics - snapshot missing engine instruments" >&2
  fails=$((fails + 1))
else
  echo "ok: --metrics - carries engine instruments"
fi
# Every trace line is itself JSON with the span fields.
if ! python3 -c "
import json
lines = [json.loads(l) for l in open('$tmp/trace.jsonl')]
assert lines, 'empty trace'
for ev in lines:
    for k in ('seq', 'kind', 'session', 't_ns', 'dur_ns', 'p0'):
        assert k in ev, (k, ev)
assert any(ev['kind'] == 'feed_round' for ev in lines)
"; then
  echo "FAIL: --trace output is not well-formed JSONL" >&2
  fails=$((fails + 1))
else
  echo "ok: --trace emits well-formed JSONL spans"
fi

# Exit codes pass through --metrics: a violating history still exits 1 and
# still emits a parseable document.
expect 1 "$bin" queue "$tmp/hists/bad_fifo.hist" --metrics -
json_has "$tmp/out" metrics
# An unwritable metrics target is a usage error.
expect 2 "$bin" queue "${ok_files[0]}" --metrics "$tmp/no-such-dir/m.json"
expect 2 "$bin" queue "${ok_files[0]}" --trace "$tmp/no-such-dir/t.jsonl"

# Multi mode: --metrics - suppresses the table, merges per-session
# registries (session labels) with service drain-round instruments.
expect 1 "$bin" queue "${ok_files[@]}" "$tmp/hists/bad_fifo.hist" --jobs 2 \
  --metrics -
if ! python3 -c "
import json
doc = json.load(open('$tmp/out'))
names = {m['name'] for m in doc['metrics']}
assert 'service_drain_sessions' in names, names
assert 'service_events_drained_total' in names, names
sessions = {m['labels']['session'] for m in doc['metrics']
            if 'session' in m['labels']}
assert len(sessions) == $((${#ok_files[@]} + 1)), sessions
"; then
  echo "FAIL: multi-mode metrics document wrong" >&2
  sed 's/^/  out: /' "$tmp/out" >&2
  fails=$((fails + 1))
else
  echo "ok: multi-mode --metrics - merges session + service registries"
fi
# ---- enforcement replay (--enforced) ---------------------------------------
# A good history re-runs the Figure 11 per-op path clean (exit 0); a
# violating one is flagged by some process's check (exit 1); the sustained-
# width sample blows a checker's budget (exit 3, verdict unknown).
expect 0 "$bin" queue "${ok_files[0]}" --enforced
expect_grep '^ENFORCED OK'
expect 1 "$bin" queue "$tmp/hists/bad_fifo.hist" --enforced
expect_grep '^FLAGGED'
expect 3 "$bin" queue "$overflow" --enforced
expect 2 "$bin" queue "$tmp/hists/broken.hist" --enforced
# Mode guards: --enforced is single-history only and excludes --witness.
expect 2 "$bin" queue "${ok_files[@]}" --jobs 2 --enforced
expect 2 "$bin" queue "${ok_files[0]}" --enforced --witness
# --stats-json surfaces the aggregated checker EngineStats with the same
# pinned key set as membership mode (enforced objects are not opaque to the
# observability plane).
expect 0 "$bin" queue "${ok_files[0]}" --enforced --quiet --stats-json
json_has "$tmp/out" lanes events_fed rounds_sequential rounds_parallel \
  peak_frontier dedup_probes dedup_hits states_recycled engage_width \
  retreat_width mode_switches tuner_updates probe_batches prefetch_batches \
  filter_in_place_rounds priors_applied
# --metrics -: a parseable document with engine instruments attached to the
# enforcement checkers; the verdict exit code passes through.
expect 0 "$bin" queue "${ok_files[0]}" --enforced --metrics -
json_has "$tmp/out" metrics
if ! python3 -c "
import json
doc = json.load(open('$tmp/out'))
names = {m['name'] for m in doc['metrics']}
assert 'engine_events_fed' in names, names
"; then
  echo "FAIL: --enforced --metrics - missing engine instruments" >&2
  sed 's/^/  out: /' "$tmp/out" >&2
  fails=$((fails + 1))
else
  echo "ok: --enforced --metrics - carries engine instruments"
fi
expect 1 "$bin" queue "$tmp/hists/bad_fifo.hist" --enforced --metrics -
json_has "$tmp/out" metrics
# --threads auto works on the enforcement path too.
expect 0 "$bin" queue "${ok_files[0]}" --enforced --threads auto --tune --quiet

# Multi-mode --stats-json: one {file, stats} line per session.
expect 0 "$bin" queue "${ok_files[@]}" --jobs 2 --quiet --stats-json
if ! python3 -c "
import json
lines = [json.loads(l) for l in open('$tmp/out')]
assert len(lines) == ${#ok_files[@]}, lines
for obj in lines:
    assert 'file' in obj and 'stats' in obj, obj
    assert 'events_fed' in obj['stats'], obj
"; then
  echo "FAIL: multi-mode --stats-json lines wrong" >&2
  sed 's/^/  out: /' "$tmp/out" >&2
  fails=$((fails + 1))
else
  echo "ok: multi-mode --stats-json emits one line per session"
fi

if [[ "$fails" -ne 0 ]]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all selin_check CLI checks passed"
