// The sharded parallel frontier engine (src/selin/parallel/).
//
// Two families of coverage:
//  * determinism — `threads == 1` and `threads ∈ {2, 4, 8}` must produce
//    identical verdicts and frontier sizes after *every* event, across all
//    concrete specs, on accepting and rejecting randomized workloads (the
//    closure is a fixpoint, so its content cannot depend on how work was
//    split across shards);
//  * stress — wide-open-op workloads that force multi-round cross-shard
//    handoffs on a live thread pool.  These are the ThreadSanitizer targets
//    wired into the CI tsan job.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "selin/parallel/executor.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;
using test::corrupt_response;
using test::random_exchanger_history;
using test::random_linearizable_history;
using test::random_write_snapshot_history;

constexpr size_t kShardCounts[] = {2, 4, 8};

constexpr ObjectKind kAllKinds[] = {
    ObjectKind::kQueue,   ObjectKind::kStack,    ObjectKind::kSet,
    ObjectKind::kPqueue,  ObjectKind::kCounter,  ObjectKind::kRegister,
    ObjectKind::kConsensus,
};

// Feed `h` through the sequential reference and a parallel monitor in
// lockstep, asserting verdict and frontier-size equality after every event.
void expect_lockstep(const SeqSpec& spec, const History& h, size_t shards,
                     const char* label) {
  LinMonitor ref(spec);
  LinMonitor par(spec, /*max_configs=*/1 << 18, shards);
  for (size_t i = 0; i < h.size(); ++i) {
    ref.feed(h[i]);
    par.feed(h[i]);
    ASSERT_EQ(ref.ok(), par.ok())
        << label << " shards=" << shards << " event " << i;
    ASSERT_EQ(ref.frontier_size(), par.frontier_size())
        << label << " shards=" << shards << " event " << i;
  }
}

TEST(ParallelDeterminism, AllSpecsAcceptingHistories) {
  for (ObjectKind kind : kAllKinds) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      History h = random_linearizable_history(kind, 4, 48, seed * 7 + 1);
      auto spec = make_spec(kind);
      for (size_t shards : kShardCounts) {
        expect_lockstep(*spec, h, shards, object_kind_name(kind));
      }
    }
  }
}

TEST(ParallelDeterminism, AllSpecsRejectingHistories) {
  for (ObjectKind kind : kAllKinds) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      History h = random_linearizable_history(kind, 4, 48, seed * 13 + 5);
      if (!corrupt_response(h, seed)) continue;
      auto spec = make_spec(kind);
      for (size_t shards : kShardCounts) {
        expect_lockstep(*spec, h, shards, object_kind_name(kind));
      }
    }
  }
}

TEST(ParallelDeterminism, OneShotHelperAgrees) {
  for (ObjectKind kind : kAllKinds) {
    auto spec = make_spec(kind);
    History good = random_linearizable_history(kind, 3, 40, 99);
    History bad = good;
    corrupt_response(bad, 3);
    bool ref_good = linearizable(*spec, good);
    bool ref_bad = linearizable(*spec, bad);
    EXPECT_TRUE(ref_good);
    for (size_t shards : kShardCounts) {
      EXPECT_EQ(ref_good, linearizable(*spec, good, 1 << 18, shards));
      EXPECT_EQ(ref_bad, linearizable(*spec, bad, 1 << 18, shards));
    }
  }
}

// ---- set-linearizability ---------------------------------------------------

TEST(ParallelDeterminism, SetLinExchanger) {
  auto spec = make_exchanger_spec();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    History h = random_exchanger_history(4, 24, seed * 31);
    SetLinMonitor ref(*spec);
    for (size_t shards : kShardCounts) {
      SetLinMonitor ref2(*spec);
      SetLinMonitor par(*spec, /*max_configs=*/1 << 18, shards);
      for (size_t i = 0; i < h.size(); ++i) {
        ref2.feed(h[i]);
        par.feed(h[i]);
        ASSERT_EQ(ref2.ok(), par.ok()) << "shards=" << shards << " event " << i;
        ASSERT_EQ(ref2.frontier_size(), par.frontier_size())
            << "shards=" << shards << " event " << i;
      }
    }
  }
}

// ---- interval-linearizability ----------------------------------------------

TEST(ParallelDeterminism, IntervalLinWriteSnapshot) {
  auto spec = make_write_snapshot_interval_spec();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (bool corrupt : {false, true}) {
      History h = random_write_snapshot_history(5, seed * 17 + 3, corrupt);
      for (size_t shards : kShardCounts) {
        IntervalLinMonitor ref(*spec);
        IntervalLinMonitor par(*spec, /*max_configs=*/1 << 18, shards);
        for (size_t i = 0; i < h.size(); ++i) {
          ref.feed(h[i]);
          par.feed(h[i]);
          ASSERT_EQ(ref.ok(), par.ok())
              << "shards=" << shards << " corrupt=" << corrupt << " event "
              << i;
          ASSERT_EQ(ref.frontier_size(), par.frontier_size())
              << "shards=" << shards << " corrupt=" << corrupt << " event "
              << i;
        }
      }
    }
  }
}

// ---- plumbing: objects, leveled checker, clone ----------------------------

TEST(ParallelPlumbing, GenLinObjectThreadsKnob) {
  History h = random_linearizable_history(ObjectKind::kQueue, 3, 40, 5);
  auto seq_obj = make_linearizable_object(make_queue_spec());
  auto par_obj = make_linearizable_object(make_queue_spec(), 1 << 18, 4);
  EXPECT_TRUE(seq_obj->contains(h));
  EXPECT_TRUE(par_obj->contains(h));
  // Per-monitor override: a sequential object handing out parallel monitors.
  auto m = seq_obj->monitor(8);
  for (const Event& e : h) m->feed(e);
  EXPECT_TRUE(m->ok());
  History bad = h;
  corrupt_response(bad, 11);
  EXPECT_EQ(seq_obj->contains(bad), par_obj->contains(bad));
}

TEST(ParallelPlumbing, MonitorCoreCheckerThreads) {
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  AStar astar(2, *q);
  MonitorCore core(2, 1, *obj, SnapshotKind::kDoubleCollect,
                   /*checker_threads=*/4);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    ProcId p = static_cast<ProcId>(rng.below(2));
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    auto r = astar.apply(p, m, arg);
    core.publish(p, r.op, r.y, std::move(r.view));
    ASSERT_TRUE(core.check(0));
  }
}

TEST(ParallelPlumbing, CloneForksParallelMonitor) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec, 1 << 18, 4);
  OpFactory f;
  OpDesc e = f.op(0, Method::kEnqueue, 1);
  m.feed(Event::inv(e));
  m.feed(Event::res(e, kTrue));
  auto fork = m.clone();
  OpDesc d = f.op(0, Method::kDequeue);
  fork->feed(Event::inv(d));
  fork->feed(Event::res(d, 7));  // wrong
  EXPECT_FALSE(fork->ok());
  EXPECT_TRUE(m.ok());  // original untouched
}

// ---- overflow safety (feed-boundary exception discipline) ------------------

TEST(OverflowSafety, StickyAcrossEngines) {
  auto spec = make_queue_spec();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    LinMonitor m(*spec, /*max_configs=*/4, threads);
    OpFactory f;
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 6; ++p) {
      es.push_back(f.op(p, Method::kEnqueue, p + 1));
      m.feed(Event::inv(es.back()));
    }
    EXPECT_FALSE(m.overflowed());
    EXPECT_THROW(m.feed(Event::res(es[0], kTrue)), CheckerOverflow);
    EXPECT_TRUE(m.overflowed());
    // The monitor is poisoned but defined: further feeds are no-ops, the
    // last definite verdict survives, and clones inherit the flag.
    EXPECT_NO_THROW(m.feed(Event::res(es[1], kTrue)));
    EXPECT_NO_THROW(m.feed(Event::inv(f.op(6, Method::kEnqueue, 7))));
    EXPECT_TRUE(m.overflowed());
    EXPECT_EQ(m.frontier_size(), 0u);
    auto fork = m.clone();
    EXPECT_NO_THROW(fork->feed(Event::res(es[2], kTrue)));
  }
}

TEST(OverflowSafety, SetLinSticky) {
  auto spec = make_exchanger_spec();
  OpFactory f;
  for (size_t threads : {size_t{1}, size_t{2}}) {
    SetLinMonitor m(*spec, /*max_configs=*/2, threads);
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 4; ++p) {
      es.push_back(f.op(p, Method::kExchange, p + 1));
      m.feed(Event::inv(es.back()));
    }
    EXPECT_THROW(m.feed(Event::res(es[0], kEmpty)), CheckerOverflow);
    EXPECT_TRUE(m.overflowed());
    EXPECT_NO_THROW(m.feed(Event::res(es[1], kEmpty)));
  }
}

// ---- stress (ThreadSanitizer targets) --------------------------------------

// Maximal open-op concurrency: bursts of 7 concurrent enqueues (a ~13k-config
// closure per response) drained in FIFO order, repeatedly, on one monitor —
// every feed exercises multi-round cross-shard handoff on the live pool.
// Lane pinning is a placement hint only: a pinned executor (no-op on
// single-core hosts and non-Linux platforms) must run phases and monitors
// exactly like an unpinned one.
TEST(ParallelPlumbing, PinnedExecutorMatchesUnpinned) {
  parallel::ExecutorOptions eo;
  eo.lanes = 2;
  eo.pin_lanes = true;
  auto pinned = std::make_shared<parallel::Executor>(eo);
  EXPECT_EQ(pinned->lanes(), 2u);

  std::atomic<size_t> hits{0};
  pinned->run_phase(8, [&](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8u);

  History h = random_linearizable_history(ObjectKind::kQueue, 4, 48, 21);
  auto spec = make_queue_spec();
  LinMonitor ref(*spec);
  LinMonitor onp(*spec, /*max_configs=*/1 << 18, 2, pinned);
  for (size_t i = 0; i < h.size(); ++i) {
    ref.feed(h[i]);
    onp.feed(h[i]);
    ASSERT_EQ(ref.ok(), onp.ok()) << "event " << i;
    ASSERT_EQ(ref.frontier_size(), onp.frontier_size()) << "event " << i;
    ASSERT_EQ(ref.frontier_digest(), onp.frontier_digest()) << "event " << i;
  }
  EXPECT_TRUE(onp.ok());
}

TEST(ParallelStress, WideOpenOpBursts) {
  auto spec = make_queue_spec();
  LinMonitor m(*spec, /*max_configs=*/1 << 20, 4);
  OpFactory f;
  Value v = 1;
  for (int round = 0; round < 4; ++round) {
    std::vector<OpDesc> es;
    for (ProcId p = 0; p < 7; ++p) {
      es.push_back(f.op(p, Method::kEnqueue, v + p));
      m.feed(Event::inv(es.back()));
    }
    for (const OpDesc& e : es) m.feed(Event::res(e, kTrue));
    // Drain in invocation order — a valid linearization, so ok() holds.
    for (ProcId p = 0; p < 7; ++p) {
      OpDesc d = f.op(p, Method::kDequeue);
      m.feed(Event::inv(d));
      m.feed(Event::res(d, v + p));
    }
    ASSERT_TRUE(m.ok());
    ASSERT_EQ(m.frontier_size(), 1u);
    v += 7;
  }
}

// Sustained width: k never-popped overlapping push pairs keep 2^k
// configurations alive, so every later feed re-expands a wide frontier.
TEST(ParallelStress, SustainedWideFrontier) {
  auto spec = make_stack_spec();
  LinMonitor m(*spec, /*max_configs=*/1 << 20, 8);
  OpFactory f;
  Value v = 100;
  for (int k = 0; k < 9; ++k) {
    OpDesc a = f.op(0, Method::kPush, v++);
    OpDesc b = f.op(1, Method::kPush, v++);
    m.feed(Event::inv(a));
    m.feed(Event::inv(b));
    m.feed(Event::res(a, kTrue));
    m.feed(Event::res(b, kTrue));
  }
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m.frontier_size(), size_t{1} << 9);
  // Overlapping push/pop traffic on top of the ambiguous base.
  for (int i = 0; i < 8; ++i) {
    OpDesc push = f.op(2, Method::kPush, v);
    OpDesc pop = f.op(3, Method::kPop);
    m.feed(Event::inv(push));
    m.feed(Event::inv(pop));
    m.feed(Event::res(push, kTrue));
    m.feed(Event::res(pop, v));
    ASSERT_TRUE(m.ok());
    ASSERT_EQ(m.frontier_size(), size_t{1} << 9);
    ++v;
  }
}

}  // namespace
}  // namespace selin
