// The paper's hand-drawn example histories, encoded exactly and checked with
// the membership engine (experiments E1 and E2 of DESIGN.md).
//
//  * Figure 1: two 2-process stack histories with identical partial views
//    (per-process event sequences) where one is linearizable and the other
//    is not — the core of why runtime verification is hard.
//  * Figure 3: two 3-process stack histories, one linearizable with the
//    linearization given in the caption, one not ("the stack cannot be empty
//    when Pop():empty starts").
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace selin {
namespace {

using test::OpFactory;

// Figure 1 (top): Push(1):true by p1 overlaps Pop():1 by p2 such that the
// push *starts before* the pop ends — linearizable.
TEST(Figure1, TopHistoryLinearizable) {
  OpFactory f;
  OpDesc push = f.op(0, Method::kPush, 1);
  OpDesc pop = f.op(1, Method::kPop);
  History top{Event::inv(push), Event::inv(pop), Event::res(push, kTrue),
              Event::res(pop, 1)};
  auto spec = make_stack_spec();
  EXPECT_TRUE(linearizable(*spec, top));
  EXPECT_TRUE(linearizable_bruteforce(*spec, top));
}

// Figure 1 (bottom): Pop():1 completes strictly before Push(1) starts — not
// linearizable, yet both processes observe the same local sequences.
TEST(Figure1, BottomHistoryNotLinearizable) {
  OpFactory f;
  OpDesc push = f.op(0, Method::kPush, 1);
  OpDesc pop = f.op(1, Method::kPop);
  History bottom{Event::inv(pop), Event::res(pop, 1), Event::inv(push),
                 Event::res(push, kTrue)};
  auto spec = make_stack_spec();
  EXPECT_FALSE(linearizable(*spec, bottom));
  EXPECT_FALSE(linearizable_bruteforce(*spec, bottom));
}

TEST(Figure1, PartialViewsIdentical) {
  OpFactory f1, f2;
  OpDesc push1 = f1.op(0, Method::kPush, 1);
  OpDesc pop1 = f1.op(1, Method::kPop);
  History top{Event::inv(push1), Event::inv(pop1), Event::res(push1, kTrue),
              Event::res(pop1, 1)};
  OpDesc push2 = f2.op(0, Method::kPush, 1);
  OpDesc pop2 = f2.op(1, Method::kPop);
  History bottom{Event::inv(pop2), Event::res(pop2, 1), Event::inv(push2),
                 Event::res(push2, kTrue)};
  // Same per-process sequences: the real-time order is the only difference.
  EXPECT_TRUE(equivalent(top, bottom));
}

// Figure 3 (top): linearization ⟨Push(2)⟩⟨Push(1)⟩⟨Pop():1⟩⟨Pop():2⟩.
//   p1: Push(1):true, then Pop():2 (overlapping p3's pop)
//   p2: Push(2):true (overlapping p1's push)
//   p3: Pop():1 (starting after both pushes end)
TEST(Figure3, TopHistoryLinearizable) {
  OpFactory f;
  OpDesc push1 = f.op(0, Method::kPush, 1);
  OpDesc push2 = f.op(1, Method::kPush, 2);
  OpDesc pop3 = f.op(2, Method::kPop);
  OpDesc pop1 = f.op(0, Method::kPop);
  History h{
      Event::inv(push1), Event::inv(push2),   Event::res(push1, kTrue),
      Event::res(push2, kTrue), Event::inv(pop3), Event::inv(pop1),
      Event::res(pop3, 1), Event::res(pop1, 2),
  };
  auto spec = make_stack_spec();
  EXPECT_TRUE(linearizable(*spec, h));

  // The caption's linearization is a valid sequential stack history and a
  // real linearization of h (checked end-to-end through find_linearization).
  auto lin = find_linearization(*spec, h);
  ASSERT_TRUE(lin.has_value());
  EXPECT_TRUE(sequential(*lin));
  EXPECT_TRUE(seq_history_valid(*spec, *lin));
  EXPECT_TRUE(equivalent(comp(h), *lin));
}

// Figure 3 (bottom): Pop():empty while element 1 is in the stack throughout
// — not linearizable.
TEST(Figure3, BottomHistoryNotLinearizable) {
  OpFactory f;
  OpDesc push1 = f.op(0, Method::kPush, 1);
  OpDesc push2 = f.op(1, Method::kPush, 2);
  OpDesc popE = f.op(2, Method::kPop);   // returns empty
  OpDesc pop1 = f.op(0, Method::kPop);   // returns 1
  History h{
      Event::inv(push1),        Event::res(push1, kTrue),
      Event::inv(push2),        Event::res(push2, kTrue),
      Event::inv(popE),         Event::inv(pop1),
      Event::res(pop1, 1),      Event::res(popE, kEmpty),
  };
  auto spec = make_stack_spec();
  EXPECT_FALSE(linearizable(*spec, h));
  EXPECT_FALSE(linearizable_bruteforce(*spec, h));
}

// Figure 3 bottom becomes linearizable if the pop may see an empty stack:
// sanity check that the verdict flips when push2 is removed and pop1
// swallows the only element first.
TEST(Figure3, EmptyPopIsFineWhenStackCanBeEmpty) {
  OpFactory f;
  OpDesc push1 = f.op(0, Method::kPush, 1);
  OpDesc pop1 = f.op(0, Method::kPop);
  OpDesc popE = f.op(2, Method::kPop);
  History h{
      Event::inv(push1), Event::res(push1, kTrue),
      Event::inv(pop1),  Event::res(pop1, 1),
      Event::inv(popE),  Event::res(popE, kEmpty),
  };
  auto spec = make_stack_spec();
  EXPECT_TRUE(linearizable(*spec, h));
}

}  // namespace
}  // namespace selin
