// Differential tests for the enforcement/distributed port onto the modern
// engine: the seed-era sequential checking discipline (MonitorCore defaults)
// and the ported engine path (checker_threads / priors / shared executor)
// must agree on every enforcement decision — bit-identical Outcome
// sequences across threads ∈ {1, 2, auto} for SelfEnforced, identical
// verdict sequences for Decoupled, and identical ABD-backed outcomes under
// lossy/reordered links.  Plus the port's new failure-mode contracts:
// sticky exploration-budget overflow and the shared-executor thread budget.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "selin/msgpass/abd_cluster.hpp"
#include "test_util.hpp"

namespace selin {
namespace {

struct OutcomeRec {
  Value value;
  bool error;
  bool overflow;

  friend bool operator==(const OutcomeRec& a, const OutcomeRec& b) {
    return a.value == b.value && a.error == b.error &&
           a.overflow == b.overflow;
  }
};

// One deterministic single-driver SelfEnforced run: `ops` operations round-
// robin over `procs` process slots, impl chosen by `faulty`.
std::vector<OutcomeRec> run_self_enforced(SelfEnforced::Options options,
                                          bool faulty, size_t procs,
                                          int ops, uint64_t seed) {
  auto q = faulty ? make_thm51_queue() : make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec());
  SelfEnforced se(procs, *q, *obj, std::move(options));
  Rng rng(seed);
  std::vector<OutcomeRec> out;
  out.reserve(ops);
  for (int i = 0; i < ops; ++i) {
    ProcId p = static_cast<ProcId>(i % procs);
    auto [m, arg] = random_op(ObjectKind::kQueue, rng);
    auto o = se.apply(p, m, arg);
    out.push_back(OutcomeRec{o.value, o.error, o.overflow});
  }
  return out;
}

TEST(EnforcedPort, SelfEnforcedOutcomesBitIdenticalAcrossThreadKnobs) {
  // The acceptance-criteria pin: same schedule, same enforcement decisions,
  // whatever the engine execution mode — threads ∈ {seed-era 0, 1, 2, auto,
  // auto|tune with priors and a shared executor}.
  auto exec = std::make_shared<parallel::Executor>(2);
  for (bool faulty : {false, true}) {
    SelfEnforced::Options seed_era;  // the sequential baseline arm
    auto baseline = run_self_enforced(seed_era, faulty, 3, 120, 42);
    if (faulty) {
      // thm51's first dequeue lies; once detected, every later op of the
      // detecting process returns ERROR (Theorem 8.2's sticky prefix).
      size_t errors = 0;
      for (const auto& o : baseline) errors += o.error;
      ASSERT_GT(errors, 0u);
    } else {
      for (const auto& o : baseline) ASSERT_FALSE(o.error);
    }

    std::vector<SelfEnforced::Options> arms(4);
    arms[0].checker_threads = 1;
    arms[1].checker_threads = 2;
    arms[2].checker_threads = engine::auto_threads(2);
    arms[3].checker_threads = engine::auto_tuned_threads(2);
    arms[3].executor = exec;
    arms[3].priors.stride = 8;
    arms[3].priors.stripe = 2;
    for (size_t a = 0; a < arms.size(); ++a) {
      auto got = run_self_enforced(arms[a], faulty, 3, 120, 42);
      ASSERT_EQ(got.size(), baseline.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], baseline[i])
            << "faulty=" << faulty << " arm=" << a << " op=" << i;
      }
    }
  }
}

TEST(EnforcedPort, DecoupledBatchedVerifierMatchesSeedEraVerdicts) {
  // Seed-era shape: verify after every apply.  Ported shape: one batched
  // verifier pass per 32 applies (the amortization the facet measures).
  // Detection granularity differs by design; the *decisions* must agree:
  // correct A never trips either, faulty A trips both, and the ported
  // verdict sequence is identical across engine thread knobs.
  for (bool faulty : {false, true}) {
    auto drive = [&](Decoupled& d, size_t batch) {
      Rng rng(7);
      std::vector<bool> verdicts;
      for (int i = 0; i < 192; ++i) {
        auto [m, arg] = random_op(ObjectKind::kQueue, rng);
        d.apply(static_cast<ProcId>(i % d.producers()), m, arg);
        if ((i + 1) % batch == 0) verdicts.push_back(d.verify_once(0));
      }
      verdicts.push_back(d.verify_once(0));
      return verdicts;
    };

    auto q_seed = faulty ? make_thm51_queue() : make_ms_queue();
    auto obj_seed = make_linearizable_object(make_queue_spec());
    Decoupled seed_era(4, 1, *q_seed, *obj_seed);
    auto seed_verdicts = drive(seed_era, 1);

    std::vector<std::vector<bool>> ported_runs;
    for (size_t threads :
         {size_t{1}, size_t{2}, engine::auto_threads(2)}) {
      auto q = faulty ? make_thm51_queue() : make_ms_queue();
      auto obj = make_linearizable_object(make_queue_spec());
      Decoupled::Options opts;
      opts.checker_threads = threads;
      Decoupled ported(4, 1, *q, *obj, {}, opts);
      ported_runs.push_back(drive(ported, 32));
    }
    for (size_t r = 1; r < ported_runs.size(); ++r) {
      ASSERT_EQ(ported_runs[r], ported_runs[0]) << "faulty=" << faulty;
    }

    bool seed_tripped = false;
    for (bool v : seed_verdicts) seed_tripped |= !v;
    bool ported_tripped = false;
    for (bool v : ported_runs[0]) ported_tripped |= !v;
    EXPECT_EQ(seed_tripped, faulty);
    EXPECT_EQ(ported_tripped, faulty);
    EXPECT_EQ(seed_verdicts.back(), ported_runs[0].back());
  }
}

TEST(EnforcedPort, AbdOutcomesBitIdenticalUnderLossyReorderedLinks) {
  // The whole stack over message passing (Section 9.4) with the adversarial
  // network on: lossy links with retransmission plus reordered delivery.
  // A single sequential driver over a linearizable register makes the
  // response sequence schedule-independent, so every engine arm must
  // produce the same outcomes — and no errors.
  auto run = [&](size_t checker_threads) {
    AbdService::Options net;
    net.replicas = 3;
    net.seed = 11;
    net.max_delay_us = 2;
    net.drop_permille = 80;
    net.reorder = true;
    auto svc = std::make_shared<AbdService>(net);
    auto announce =
        std::make_unique<AbdSnapshot<const SetNode*>>(svc, 2, nullptr, 100);
    auto records =
        std::make_unique<AbdSnapshot<const RecNode*>>(svc, 2, nullptr, 200);
    auto reg = make_abd_register(svc, 1'000'000, 0);
    auto obj = make_linearizable_object(make_register_spec(0));
    SelfEnforced::Options opts;
    opts.checker_threads = checker_threads;
    SelfEnforced se(2, *reg, *obj, std::move(announce), std::move(records),
                    opts);
    std::vector<OutcomeRec> out;
    for (int i = 0; i < 12; ++i) {
      ProcId p = static_cast<ProcId>(i % 2);
      auto o = (i % 3 == 0) ? se.apply(p, Method::kWrite, i)
                            : se.apply(p, Method::kRead);
      out.push_back(OutcomeRec{o.value, o.error, o.overflow});
    }
    EXPECT_EQ(se.error_count(), 0u);
    return out;
  };

  auto baseline = run(0);  // seed-era sequential
  for (size_t threads : {size_t{1}, size_t{2}, engine::auto_threads(2)}) {
    EXPECT_EQ(run(threads), baseline) << "threads knob " << threads;
  }
}

TEST(EnforcedPort, AbdClusterMultiClientLossyScheduleVerifiesOk) {
  // Hundreds of logical clients over a few driver threads, lossy/reordered
  // network, every register session must verify kOk — the bench scenario as
  // a correctness test (scaled down).
  AbdClusterOptions opts;
  opts.replicas = 3;
  opts.keys = 2;
  opts.seed = 5;
  opts.max_delay_us = 0;
  opts.drop_permille = 50;
  opts.reorder = true;
  opts.executor = std::make_shared<parallel::Executor>(2);
  AbdCluster cluster(opts);
  cluster.start_drainer();

  constexpr size_t kThreads = 4;
  constexpr size_t kClientsPerThread = 64;
  constexpr int kOpsPerClient = 4;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> drivers;
  for (size_t t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      Rng rng(100 + t);
      barrier.arrive_and_wait();
      for (int round = 0; round < kOpsPerClient; ++round) {
        for (size_t c = 0; c < kClientsPerThread; ++c) {
          ProcId client = static_cast<ProcId>(t * kClientsPerThread + c);
          uint64_t key = rng.below(opts.keys);
          if (rng.below(2) == 0) {
            cluster.write(client, key, static_cast<Value>(rng.below(1000)));
          } else {
            cluster.read(client, key);
          }
        }
      }
    });
  }
  for (auto& d : drivers) d.join();
  cluster.stop_drainer();

  EXPECT_EQ(cluster.ops(), kThreads * kClientsPerThread * kOpsPerClient);
  EXPECT_TRUE(cluster.all_ok());
  for (uint64_t k = 0; k < opts.keys; ++k) {
    EXPECT_EQ(cluster.session(k).backlog(), 0u);
  }
  EXPECT_GT(cluster.network().messages_dropped(), 0u);
  EXPECT_GT(cluster.stats().events_fed, 0u);
}

TEST(EnforcedPort, AbdClusterDetectsForgedResponse) {
  AbdClusterOptions opts;
  opts.keys = 1;
  AbdCluster cluster(opts);
  ProcId client = 0;
  cluster.write(client, 0, 7);
  EXPECT_EQ(cluster.read(client, 0), 7);
  // Forge a read of a value nobody ever wrote — the observed history is no
  // longer linearizable and the session must settle kRejected.
  OpDesc forged{OpId{1, 1 << 20}, Method::kRead, kNoArg};
  Event events[2] = {Event::inv(forged), Event::res(forged, 424242)};
  cluster.publish_raw(0, events);
  cluster.drain();
  EXPECT_EQ(cluster.verdict(0), service::Session::Status::kRejected);
  EXPECT_FALSE(cluster.all_ok());
  // Sticky: later correct traffic does not resurrect the verdict.
  cluster.write(client, 0, 8);
  cluster.drain();
  EXPECT_EQ(cluster.verdict(0), service::Session::Status::kRejected);
}

TEST(EnforcedPort, OverflowIsStickyAtMonitorCoreLevel) {
  // 20 announced-but-pending enqueues make the closure of any completed
  // op's sketch blow a tiny exploration budget; the overflow must settle
  // the checker sticky-kOverflowed instead of escaping as an exception.
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec(), /*max_configs=*/256);
  constexpr size_t kProcs = 20;
  AStar astar(kProcs, *q);
  SteppedAStar step(astar);
  MonitorCore core(kProcs, 2, *obj);

  for (ProcId p = 1; p < kProcs; ++p) {
    step.announce(p, Method::kEnqueue, p);
  }
  step.announce(0, Method::kEnqueue, 100);
  step.invoke(0);
  auto r = step.complete(0);
  core.publish(0, r.op, r.y, std::move(r.view));

  EXPECT_FALSE(core.check(0));
  EXPECT_EQ(core.check_status(0), MonitorCore::CheckStatus::kOverflowed);
  EXPECT_TRUE(core.overflowed(0));
  // Sticky and silent: further checks keep returning false without
  // re-merging or throwing.
  EXPECT_FALSE(core.check(0));
  EXPECT_TRUE(core.overflowed(0));
  // An independent checker overflows on its own merge of the same records.
  EXPECT_FALSE(core.check(1));
  EXPECT_TRUE(core.overflowed(1));
}

TEST(EnforcedPort, OverflowSurfacesAsStickyErrorInSelfEnforced) {
  auto q = make_ms_queue();
  auto obj = make_linearizable_object(make_queue_spec(), /*max_configs=*/256);
  constexpr size_t kProcs = 20;
  SelfEnforced se(kProcs, *q, *obj);
  SteppedAStar step(se.astar());
  for (ProcId p = 1; p < kProcs; ++p) {
    step.announce(p, Method::kEnqueue, p);
  }
  auto o1 = se.apply(0, Method::kEnqueue, 100);
  EXPECT_TRUE(o1.error);
  EXPECT_TRUE(o1.overflow);
  EXPECT_EQ(o1.value, kError);
  EXPECT_TRUE(se.overflowed(0));
  auto o2 = se.apply(0, Method::kEnqueue, 101);
  EXPECT_TRUE(o2.error);
  EXPECT_TRUE(o2.overflow);
  EXPECT_EQ(se.error_count(), 2u);
}

TEST(EnforcedPort, SharedExecutorBoundsThreadsAcrossEnforcedObjects) {
  // The decoupled-deployment shape: many enforced objects, one injected
  // executor end to end (membership engines + snapshot lanes).  Total
  // worker threads must stay within the executor's lane cap no matter how
  // many objects run.
  auto exec = std::make_shared<parallel::Executor>(2);
  constexpr size_t kObjects = 6;
  std::vector<std::unique_ptr<IConcurrent>> impls;
  std::vector<std::unique_ptr<GenLinObject>> objs;
  std::vector<std::unique_ptr<SelfEnforced>> enforced;
  for (size_t i = 0; i < kObjects; ++i) {
    impls.push_back(make_ms_queue());
    objs.push_back(make_linearizable_object(make_queue_spec(), 1 << 18,
                                            engine::auto_threads(2), exec));
    SelfEnforced::Options opts;
    opts.checker_threads = engine::auto_threads(2);
    opts.executor = exec;
    enforced.push_back(
        std::make_unique<SelfEnforced>(2, *impls[i], *objs[i], opts));
  }
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    for (auto& se : enforced) {
      auto [m, arg] = random_op(ObjectKind::kQueue, rng);
      auto o = se->apply(static_cast<ProcId>(round % 2), m, arg);
      ASSERT_FALSE(o.error);
    }
  }
  EXPECT_LE(exec->threads_spawned(), exec->lanes());
  for (auto& se : enforced) {
    EXPECT_EQ(se->error_count(), 0u);
    EXPECT_GT(se->stats().events_fed, 0u);
  }
}

}  // namespace
}  // namespace selin
