#!/usr/bin/env bash
# Runs the membership-engine benchmarks (bench_lincheck + bench_detection)
# and folds the results into BENCH_lincheck.json at the repo root, so the
# perf trajectory is tracked PR over PR.
#
# Usage: tools/run_bench.sh [build-dir] [--facet all|parallel_scaling]
#
# --facet parallel_scaling re-runs only BM_ParallelFrontierScaling and
# replaces just the `parallel_scaling` facet of BENCH_lincheck.json, leaving
# every other recorded number untouched.  Use it to re-record the scaling
# facet alone on a multi-core host (the facet is meaningless when
# num_cpus < shards, and re-running the full suite there would overwrite
# the tracked single-host trajectory).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/BENCH_lincheck.json"

facet="all"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --facet)
      [[ $# -ge 2 ]] || { echo "error: --facet needs a value" >&2; exit 2; }
      facet="$2"
      shift 2
      ;;
    --*)
      echo "error: unknown flag $1" >&2
      exit 2
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done
case "$facet" in
  all|parallel_scaling) ;;
  *) echo "error: unknown facet '$facet' (all | parallel_scaling)" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [[ ! -x "$build_dir/bench_lincheck" ]]; then
  echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

if [[ "$facet" == "parallel_scaling" ]]; then
  "$build_dir/bench_lincheck" \
      --benchmark_filter='BM_ParallelFrontierScaling' \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
else
  if [[ ! -x "$build_dir/bench_detection" ]]; then
    echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
    exit 1
  fi
  "$build_dir/bench_lincheck" \
      --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
  "$build_dir/bench_detection" \
      --benchmark_out="$tmp/detection.json" --benchmark_out_format=json
fi

python3 - "$facet" "$tmp/lincheck.json" "$tmp/detection.json" "$out" <<'EOF'
import json, sys

mode, lincheck, detection, out = sys.argv[1:5]

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        "context": {k: data["context"].get(k)
                    for k in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                              "library_build_type")},
        "benchmarks": data["benchmarks"],
    }

def parallel_scaling_facet(run):
    """Verified-op throughput of the sharded frontier engine by shard count
    (BM_ParallelFrontierScaling), plus speedups vs one shard.  Meaningful
    scaling requires cores >= shards; num_cpus is recorded alongside so
    single-core hosts aren't misread as regressions.  The one construction
    point for the facet, whichever mode recorded it."""
    per_shard = {}
    for b in run["benchmarks"]:
        name = b.get("name", "")
        if (name.startswith("BM_ParallelFrontierScaling/")
                and b.get("run_type") != "aggregate"
                and "items_per_second" in b):
            per_shard[name.split("/")[1]] = b["items_per_second"]
    if not per_shard:
        return None
    base = per_shard.get("1")
    return {
        "workload": "frontier-width-sweep (2^12-wide stack frontier, "
                    "overlapping push/pop stream)",
        "num_cpus": run["context"].get("num_cpus"),
        "items_per_second_by_shards": per_shard,
        "speedup_vs_1_shard": {
            s: (v / base if base else None) for s, v in per_shard.items()
        },
    }

lincheck_run = load(lincheck)
scaling = parallel_scaling_facet(lincheck_run)

if mode == "parallel_scaling":
    if scaling is None:
        sys.exit("error: no BM_ParallelFrontierScaling results in this run")
    try:
        with open(out) as f:
            result = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        sys.exit(f"error: {out} missing or unreadable; run the full suite first")
    result["parallel_scaling"] = scaling
    with open(out, "w") as f:
        json.dump(result, f, indent=1)
    print(f"updated parallel_scaling facet of {out}")
    sys.exit(0)

result = {"bench_lincheck": lincheck_run, "bench_detection": load(detection)}
if scaling is not None:
    result["parallel_scaling"] = scaling

# Preserve facets recorded by earlier PRs/other hosts when this run did not
# produce them (baseline_string_key is PR 1's string-key engine baseline).
try:
    with open(out) as f:
        prev = json.load(f)
    for key in ("baseline_string_key",):
        if key in prev:
            result[key] = prev[key]
except (FileNotFoundError, json.JSONDecodeError):
    pass

with open(out, "w") as f:
    json.dump(result, f, indent=1)
print(f"wrote {out}")
EOF
