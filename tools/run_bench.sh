#!/usr/bin/env bash
# Runs the membership-engine benchmarks (bench_lincheck + bench_detection)
# and folds the results into BENCH_lincheck.json at the repo root, so the
# perf trajectory is tracked PR over PR.
#
# Usage: tools/run_bench.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="$repo_root/BENCH_lincheck.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [[ ! -x "$build_dir/bench_lincheck" || ! -x "$build_dir/bench_detection" ]]; then
  echo "error: benchmarks not built in $build_dir (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$build_dir/bench_lincheck" \
    --benchmark_out="$tmp/lincheck.json" --benchmark_out_format=json
"$build_dir/bench_detection" \
    --benchmark_out="$tmp/detection.json" --benchmark_out_format=json

python3 - "$tmp/lincheck.json" "$tmp/detection.json" "$out" <<'EOF'
import json, sys

lincheck, detection, out = sys.argv[1], sys.argv[2], sys.argv[3]

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        "context": {k: data["context"].get(k)
                    for k in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                              "library_build_type")},
        "benchmarks": data["benchmarks"],
    }

result = {"bench_lincheck": load(lincheck), "bench_detection": load(detection)}

# Preserve the recorded baseline (string-key engine) if present, so the
# speedup trajectory stays visible.
try:
    with open(out) as f:
        prev = json.load(f)
    if "baseline_string_key" in prev:
        result["baseline_string_key"] = prev["baseline_string_key"]
except (FileNotFoundError, json.JSONDecodeError):
    pass

with open(out, "w") as f:
    json.dump(result, f, indent=1)
print(f"wrote {out}")
EOF
